package mrs_test

import (
	"bytes"
	"flag"
	"fmt"
	"strings"
	"testing"

	mrs "repro"
	"repro/internal/codec"
)

// countProgram is the canonical WordCount written against the public
// API — the Go equivalent of Program 1 in the paper.
type countProgram struct {
	input  []string
	output map[string]int64
	useBy  bool
}

func (p *countProgram) Register(reg *mrs.Registry) error {
	reg.RegisterMap("map", func(key, value []byte, emit mrs.Emitter) error {
		for _, w := range bytes.Fields(value) {
			if err := emit.Emit(w, codec.EncodeVarint(1)); err != nil {
				return err
			}
		}
		return nil
	})
	reg.RegisterReduce("reduce", func(key []byte, values [][]byte, emit mrs.Emitter) error {
		var total int64
		for _, v := range values {
			n, err := codec.DecodeVarint(v)
			if err != nil {
				return err
			}
			total += n
		}
		return emit.Emit(key, codec.EncodeVarint(total))
	})
	return nil
}

func (p *countProgram) Run(job *mrs.Job) error {
	pairs := make([]mrs.Pair, len(p.input))
	for i, line := range p.input {
		pairs[i] = mrs.Pair{Key: codec.EncodeVarint(int64(i)), Value: []byte(line)}
	}
	src, err := job.LocalData(pairs, mrs.OpOpts{Splits: 2, Partition: "roundrobin"})
	if err != nil {
		return err
	}
	out, err := job.MapReduce(src, "map", "reduce",
		mrs.OpOpts{Splits: 2, Combine: "reduce"}, mrs.OpOpts{Splits: 2})
	if err != nil {
		return err
	}
	collected, err := out.Collect()
	if err != nil {
		return err
	}
	p.output = map[string]int64{}
	for _, kv := range collected {
		n, err := codec.DecodeVarint(kv.Value)
		if err != nil {
			return err
		}
		p.output[string(kv.Key)] += n
	}
	return nil
}

// Bypass implements the bypass mode with a plain loop.
func (p *countProgram) Bypass() error {
	p.useBy = true
	p.output = map[string]int64{}
	for _, line := range p.input {
		for _, w := range strings.Fields(line) {
			p.output[w]++
		}
	}
	return nil
}

var testInput = []string{"a b a", "c a b", "c c"}
var testWant = map[string]int64{"a": 3, "b": 2, "c": 3}

func checkOutput(t *testing.T, got map[string]int64) {
	t.Helper()
	if len(got) != len(testWant) {
		t.Errorf("got %v, want %v", got, testWant)
	}
	for w, n := range testWant {
		if got[w] != n {
			t.Errorf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
}

func TestAllImplementationsAgree(t *testing.T) {
	for _, impl := range []string{"serial", "mock", "threads", "local", "bypass"} {
		t.Run(impl, func(t *testing.T) {
			p := &countProgram{input: testInput}
			if err := mrs.Run(p, mrs.Options{Implementation: impl}); err != nil {
				t.Fatal(err)
			}
			checkOutput(t, p.output)
			if impl == "bypass" && !p.useBy {
				t.Error("bypass mode did not call Bypass")
			}
		})
	}
}

func TestUnknownImplementation(t *testing.T) {
	if err := mrs.Run(&countProgram{}, mrs.Options{Implementation: "quantum"}); err == nil {
		t.Error("unknown implementation accepted")
	}
}

func TestSlaveRequiresMaster(t *testing.T) {
	if err := mrs.Run(&countProgram{}, mrs.Options{Implementation: "slave"}); err == nil {
		t.Error("slave without master address accepted")
	}
}

func TestBypassWithoutImplementation(t *testing.T) {
	p := &onlyMR{}
	if err := mrs.Run(p, mrs.Options{Implementation: "bypass"}); err == nil {
		t.Error("bypass accepted for program without Bypass method")
	}
}

type onlyMR struct{}

func (*onlyMR) Register(reg *mrs.Registry) error { return nil }
func (*onlyMR) Run(job *mrs.Job) error           { return nil }

func TestRunErrorPropagates(t *testing.T) {
	p := &failingProgram{}
	err := mrs.Run(p, mrs.Options{})
	if err == nil || !strings.Contains(err.Error(), "run failed") {
		t.Errorf("got %v", err)
	}
}

type failingProgram struct{}

func (*failingProgram) Register(reg *mrs.Registry) error { return nil }
func (*failingProgram) Run(job *mrs.Job) error           { return fmt.Errorf("run failed") }

func TestRandomDeterminism(t *testing.T) {
	a := mrs.Random(1, 2, 3).Uint64()
	b := mrs.Random(1, 2, 3).Uint64()
	if a != b {
		t.Error("Random not deterministic")
	}
	c := mrs.Random(1, 3, 2).Uint64()
	if a == c {
		t.Error("Random insensitive to argument order")
	}
}

func TestBindFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := mrs.BindFlags(fs)
	err := fs.Parse([]string{
		"-mrs=threads", "-mrs-workers=7", "-mrs-seed=99",
		"-mrs-shared=/tmp/x", "-mrs-min-slaves=3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Implementation != "threads" || o.Workers != 7 || o.Seed != 99 ||
		o.SharedDir != "/tmp/x" || o.MinSlaves != 3 {
		t.Errorf("parsed options: %+v", o)
	}
}

func TestLocalImplementationUsesCluster(t *testing.T) {
	p := &countProgram{input: testInput}
	if err := mrs.Run(p, mrs.Options{Implementation: "local", Slaves: 3}); err != nil {
		t.Fatal(err)
	}
	checkOutput(t, p.output)
}

func TestMasterSlaveEndToEnd(t *testing.T) {
	// Drive the explicit master/slave modes the way separate processes
	// would, but in-process: start the master in a goroutine with a
	// port file, then a slave against the discovered address.
	dir := t.TempDir()
	portFile := dir + "/master.port"
	p := &countProgram{input: testInput}
	masterErr := make(chan error, 1)
	go func() {
		masterErr <- mrs.Run(p, mrs.Options{
			Implementation: "master",
			PortFile:       portFile,
			MinSlaves:      1,
		})
	}()
	addr := waitForPortFile(t, portFile)
	slaveErr := make(chan error, 1)
	go func() {
		q := &countProgram{}
		slaveErr <- mrs.Run(q, mrs.Options{Implementation: "slave", MasterAddr: addr})
	}()
	if err := <-masterErr; err != nil {
		t.Fatalf("master: %v", err)
	}
	if err := <-slaveErr; err != nil {
		t.Fatalf("slave: %v", err)
	}
	checkOutput(t, p.output)
}

func TestLocalSharedDirMode(t *testing.T) {
	p := &countProgram{input: testInput}
	err := mrs.Run(p, mrs.Options{
		Implementation: "local",
		Slaves:         2,
		SharedDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkOutput(t, p.output)
}
