#!/bin/sh
# Flag/doc coverage gate (tier 1 of scripts/verify.sh).
#
# Extracts every flag registered by mrs.BindFlags (flags.go) and fails
# unless each one is documented:
#   - in docs/OBSERVABILITY.md, the canonical flag reference ("the full
#     standard flag set"), and
#   - somewhere in the user-facing doc set (README.md + docs/*.md),
#     which OBSERVABILITY.md membership already implies but is checked
#     independently so the rule survives a reference-table move.
# Also fails if any docs/*.md file referenced from the top-level docs
# does not exist, so renames can't leave dangling links.
set -eu
cd "$(dirname "$0")/.."

fail=0

flags="$(grep -oE '"mrs(-[a-z0-9-]+)?"' flags.go | tr -d '"' | sort -u)"
if [ -z "$flags" ]; then
	echo "check_docs: FAIL: no flag registrations found in flags.go" >&2
	exit 1
fi

for f in $flags; do
	if ! grep -q -- "-$f" docs/OBSERVABILITY.md; then
		echo "check_docs: FAIL: flag -$f missing from docs/OBSERVABILITY.md flag table" >&2
		fail=1
	fi
	if ! grep -q -- "-$f" README.md docs/*.md; then
		echo "check_docs: FAIL: flag -$f not documented anywhere in README.md or docs/" >&2
		fail=1
	fi
done

# Doc files referenced from the top-level docs must exist.
refs="$(grep -ohE 'docs/[A-Za-z0-9_-]+\.md' README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md | sort -u)"
for r in $refs; do
	if [ ! -f "$r" ]; then
		echo "check_docs: FAIL: $r is referenced but does not exist" >&2
		fail=1
	fi
done

if [ "$fail" -ne 0 ]; then
	exit 1
fi
n="$(echo "$flags" | wc -l | tr -d ' ')"
echo "check_docs: OK ($n flags documented, doc cross-references resolve)"
