#!/bin/sh
# Two-tier verification.
#
#   Tier 1 (default): build + full test suite. The repo's correctness
#   gate; chaos tests run too unless -short is requested via TIER1_SHORT.
#
#   Tier 2 (VERIFY_TIER=2 or "all"): race detector, every test twice.
#   Catches data races in the control/data planes and flakiness in the
#   fault-injection suite (same-seed reruns must behave identically).
#
# Usage:
#   scripts/verify.sh            # tier 1
#   VERIFY_TIER=2 scripts/verify.sh
#   VERIFY_TIER=all scripts/verify.sh
set -eu
cd "$(dirname "$0")/.."

tier="${VERIFY_TIER:-1}"

if [ "$tier" = "1" ] || [ "$tier" = "all" ]; then
	echo "== tier 1: go build ./... && go test ./..."
	go build ./...
	go vet ./...
	if [ "${TIER1_SHORT:-}" = "1" ]; then
		go test -short ./...
	else
		go test ./...
	fi
fi

if [ "$tier" = "2" ] || [ "$tier" = "all" ]; then
	echo "== tier 2: go test -race -count=2 ./..."
	go test -race -count=2 ./...
	echo "== tier 2: pipelined-scheduler stress (race, repeated)"
	go test -race -count=4 \
		-run 'Pipeline|Narrow|Barriered|AllExecutorsAgree|Chaos' \
		./internal/core ./internal/cluster
fi

echo "verify: OK (tier $tier)"
