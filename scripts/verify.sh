#!/bin/sh
# Two-tier verification.
#
#   Tier 1 (default): build + full test suite. The repo's correctness
#   gate; chaos tests run too unless -short is requested via TIER1_SHORT.
#
#   Tier 2 (VERIFY_TIER=2 or "all"): race detector, every test twice.
#   Catches data races in the control/data planes and flakiness in the
#   fault-injection suite (same-seed reruns must behave identically).
#
# Usage:
#   scripts/verify.sh            # tier 1
#   VERIFY_TIER=2 scripts/verify.sh
#   VERIFY_TIER=all scripts/verify.sh
set -eu
cd "$(dirname "$0")/.."

tier="${VERIFY_TIER:-1}"

if [ "$tier" = "1" ] || [ "$tier" = "all" ]; then
	echo "== tier 1: go build ./... && go test ./..."
	go build ./...
	go vet ./...
	echo "== tier 1: flag/doc coverage (scripts/check_docs.sh)"
	scripts/check_docs.sh
	if [ "${TIER1_SHORT:-}" = "1" ]; then
		go test -short ./...
	else
		go test ./...
	fi
fi

if [ "$tier" = "2" ] || [ "$tier" = "all" ]; then
	echo "== tier 2: go test -race -count=2 ./..."
	go test -race -count=2 ./...
	echo "== tier 2: pipelined-scheduler stress (race, repeated)"
	go test -race -count=4 \
		-run 'Pipeline|Narrow|Barriered|AllExecutorsAgree|Chaos' \
		./internal/core ./internal/cluster
	echo "== tier 2: parallel-shuffle stress (race, fault injection, prefetch+compression)"
	go test -race -count=2 \
		-run 'ParallelFetchByteIdentical|ChaosWithPrefetchAndCompression' \
		./internal/cluster
	echo "== tier 2: block data-plane stress (race, non-default codecs, negotiation, cross-mode)"
	go test -race -count=2 \
		-run 'CodecGrid|CodecSerialMatchesCluster|AddBlock|BlockBucket|Negotiation|TranscodeBetween' \
		./internal/cluster ./internal/bucket ./internal/shuffle
	echo "== tier 2: columnar data-plane stress (race, key encodings, transcode, row-only fallback)"
	go test -race -count=2 \
		-run 'Columnar|BlockEncoding|AcceptsBlock|BlockMagicIsLegacyPoison' \
		./internal/kvio ./internal/shuffle ./internal/bucket ./internal/wirecodec
	echo "== tier 2: block framing fuzz (corpus + 10s of new inputs)"
	go test -run '^$' -fuzz 'FuzzBlockReader' -fuzztime 10s ./internal/kvio
	echo "== tier 2: allocation regression guard (scripts/alloc_thresholds.txt)"
	bench="$(go test -run '^$' -bench 'BenchmarkSorterAdd|BenchmarkSortGroupInMemory' \
		-benchmem -benchtime 100x ./internal/shuffle/
	go test -run '^$' -bench 'BenchmarkWriterWrite|BenchmarkReaderRead|BenchmarkBlock' \
		-benchmem -benchtime 1000x ./internal/kvio/)"
	echo "$bench"
	echo "$bench" | awk '
		NR == FNR { if ($0 !~ /^#/ && NF == 2) limit[$1] = $2; next }
		/allocs\/op/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			for (i = 1; i <= NF; i++) if ($i == "allocs/op") allocs = $(i-1)
			if (name in limit) {
				checked[name] = 1
				if (allocs + 0 > limit[name] + 0) {
					printf "FAIL %s: %s allocs/op > limit %s\n", name, allocs, limit[name]
					bad = 1
				}
			}
		}
		END {
			for (n in limit) if (!(n in checked)) {
				printf "FAIL %s: benchmark missing from output\n", n
				bad = 1
			}
			exit bad
		}' scripts/alloc_thresholds.txt -
	echo "== tier 2: multi-tenant stress (race, two concurrent pipelined jobs + GC + fair share)"
	go test -race -count=2 \
		-run 'ConcurrentJobs|FairShare|JobGC|AdmissionQueue|PerJob' \
		./internal/cluster ./internal/sched
	echo "== tier 2: resident-dataset stress (race, cache + affinity + chaos slave death)"
	go test -race -count=2 \
		-run 'Resident' \
		./internal/core ./internal/sched ./internal/slave ./internal/cluster
	echo "== tier 2: crash-recovery stress (race, repeated master crash/restart cycles)"
	go test -race -count=3 \
		-run 'MasterCrash|PlannedMaster|Recover|Resume|Journal' \
		./internal/cluster ./internal/master ./internal/journal ./internal/sched
	echo "== tier 2: hierarchical control-plane stress (race, sub-master tree + drain + speculation)"
	go test -race -count=2 \
		-run 'Hierarchical|SubMaster|Elastic|Drain|Speculat|Resignin|Tree|Escalates' \
		./internal/cluster ./internal/submaster ./internal/sched
	echo "== tier 2: journal replay fuzz (corpus + 10s of new inputs)"
	go test -run '^$' -fuzz 'FuzzJournalReplay' -fuzztime 10s ./internal/journal
	echo "== tier 2: traced pipelined job end-to-end"
	trace="$(mktemp -t mrs-verify-XXXXXX.trace)"
	go run ./examples/pso -mrs=local -mrs-slaves 2 \
		-outer 5 -dims 20 -inner 10 -swarms 4 -tasks 4 \
		-mrs-trace "$trace" >/dev/null
	go run ./cmd/mrs-tracecheck -min-spans 1 -max-errors 0 "$trace"
	rm -f "$trace"
fi

echo "verify: OK (tier $tier)"
