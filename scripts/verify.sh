#!/bin/sh
# Two-tier verification.
#
#   Tier 1 (default): build + full test suite. The repo's correctness
#   gate; chaos tests run too unless -short is requested via TIER1_SHORT.
#
#   Tier 2 (VERIFY_TIER=2 or "all"): race detector, every test twice.
#   Catches data races in the control/data planes and flakiness in the
#   fault-injection suite (same-seed reruns must behave identically).
#
# Usage:
#   scripts/verify.sh            # tier 1
#   VERIFY_TIER=2 scripts/verify.sh
#   VERIFY_TIER=all scripts/verify.sh
set -eu
cd "$(dirname "$0")/.."

tier="${VERIFY_TIER:-1}"

if [ "$tier" = "1" ] || [ "$tier" = "all" ]; then
	echo "== tier 1: go build ./... && go test ./..."
	go build ./...
	go vet ./...
	if [ "${TIER1_SHORT:-}" = "1" ]; then
		go test -short ./...
	else
		go test ./...
	fi
fi

if [ "$tier" = "2" ] || [ "$tier" = "all" ]; then
	echo "== tier 2: go test -race -count=2 ./..."
	go test -race -count=2 ./...
	echo "== tier 2: pipelined-scheduler stress (race, repeated)"
	go test -race -count=4 \
		-run 'Pipeline|Narrow|Barriered|AllExecutorsAgree|Chaos' \
		./internal/core ./internal/cluster
	echo "== tier 2: traced pipelined job end-to-end"
	trace="$(mktemp -t mrs-verify-XXXXXX.trace)"
	go run ./examples/pso -mrs=local -mrs-slaves 2 \
		-outer 5 -dims 20 -inner 10 -swarms 4 -tasks 4 \
		-mrs-trace "$trace" >/dev/null
	go run ./cmd/mrs-tracecheck -min-spans 1 -max-errors 0 "$trace"
	rm -f "$trace"
fi

echo "verify: OK (tier $tier)"
