package mrs

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
)

// BindFlags registers the standard mrs command-line options on a flag
// set and returns a pointer whose fields are filled at parse time. The
// flag names follow the paper's convention of keeping configuration to
// "a short list of command-line options".
func BindFlags(fs *flag.FlagSet) *Options {
	o := &Options{}
	fs.StringVar(&o.Implementation, "mrs", "serial",
		"execution mode: serial|mock|threads|local|master|submaster|slave|bypass")
	fs.IntVar(&o.Workers, "mrs-workers", 4, "worker goroutines for -mrs=threads")
	fs.IntVar(&o.Slaves, "mrs-slaves", 2, "slave count for -mrs=local")
	fs.IntVar(&o.SubMasters, "mrs-submasters", 0,
		"sub-master count for -mrs=local (0 = flat master-slave star)")
	fs.Float64Var(&o.Speculation, "mrs-speculation", 0,
		"speculative-execution slowness factor (0 disables; e.g. 2 duplicates a task running 2x the op's median)")
	fs.StringVar(&o.MasterAddr, "mrs-master", "", "master host:port (for -mrs=slave and -mrs=submaster)")
	fs.StringVar(&o.Addr, "mrs-addr", "", "listen address (for -mrs=master and -mrs=submaster)")
	fs.StringVar(&o.PortFile, "mrs-portfile", "", "file to write the master address to")
	fs.StringVar(&o.SharedDir, "mrs-shared", "", "shared directory for filesystem-staged data")
	fs.StringVar(&o.MockDir, "mrs-mockdir", "", "directory for -mrs=mock intermediate files")
	fs.IntVar(&o.MinSlaves, "mrs-min-slaves", 1, "slaves to wait for before running (master)")
	fs.DurationVar(&o.MinSlavesTimeout, "mrs-slave-timeout", 60*time.Second,
		"how long the master waits for -mrs-min-slaves")
	fs.Uint64Var(&o.Seed, "mrs-seed", 42, "base seed for mrs.Random streams")
	fs.BoolVar(&o.NoPipeline, "mrs-no-pipeline", false,
		"disable split-level pipelining (barriered ablation)")
	fs.StringVar(&o.TracePath, "mrs-trace", "",
		"write a Chrome trace-event JSON task timeline to this file")
	fs.StringVar(&o.DebugAddr, "mrs-debug-addr", "",
		"serve /debug/status, /debug/metrics, /debug/pprof on this address")
	fs.IntVar(&o.Prefetch, "mrs-prefetch", 0,
		"input-fetch window per task (0 = default, 1 = sequential streaming)")
	fs.BoolVar(&o.Compress, "mrs-compress", false,
		"store and serve intermediate buckets flate-compressed")
	fs.StringVar(&o.Codec, "mrs-codec", "",
		"block data-plane codec: identity|deflate|lz (empty = legacy per-record framing)")
	fs.StringVar(&o.BlockEncoding, "mrs-block-encoding", "",
		"block encoding: row|columnar|columnar-raw|columnar-dict|columnar-delta (empty = row)")
	fs.IntVar(&o.BlockSize, "mrs-block-size", 0,
		"record-block flush threshold in bytes (0 = default 64 KiB)")
	fs.Int64Var(&o.ResidentBudget, "mrs-resident-budget", core.DefaultResidentBudget,
		"per-worker resident dataset cache budget in bytes (0 disables)")
	return o
}

// Main parses os.Args with the standard mrs flags plus any flags the
// caller registered on flag.CommandLine, runs the program, and exits
// non-zero on error. It is the Go analogue of mrs.main(ProgramClass).
func Main(p Program) {
	opts := BindFlags(flag.CommandLine)
	flag.Parse()
	if err := Run(p, *opts); err != nil {
		fmt.Fprintf(os.Stderr, "mrs: %v\n", err)
		os.Exit(1)
	}
}
