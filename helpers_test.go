package mrs_test

import (
	"os"
	"strings"
	"testing"
	"time"
)

// waitForPortFile polls for the master's port file and returns the
// address it contains — the same discovery mechanism Program 3 uses.
func waitForPortFile(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		data, err := os.ReadFile(path)
		if err == nil && len(data) > 0 {
			return strings.TrimSpace(string(data))
		}
		if time.Now().After(deadline) {
			t.Fatalf("port file %s never appeared", path)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
