package mrs

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/kvio"
)

// This file provides typed adaptors over the []byte-level MapReduce
// interfaces: write map and reduce logic against Go types, and the
// adaptors handle encoding. This recovers much of the convenience the
// Python original gets for free from dynamic typing (§IV-A), without
// giving up the explicit wire format.

// Codec converts one Go type to and from its byte encoding.
type Codec[T any] struct {
	Encode func(T) []byte
	Decode func([]byte) (T, error)
}

// String is the codec for string keys/values.
func String() Codec[string] {
	return Codec[string]{
		Encode: func(s string) []byte { return []byte(s) },
		Decode: func(b []byte) (string, error) { return string(b), nil },
	}
}

// Int64 is the codec for int64 counters (compact varint encoding).
func Int64() Codec[int64] {
	return Codec[int64]{
		Encode: codec.EncodeVarint,
		Decode: codec.DecodeVarint,
	}
}

// Float64 is the codec for float64 values.
func Float64() Codec[float64] {
	return Codec[float64]{
		Encode: codec.EncodeFloat64,
		Decode: codec.DecodeFloat64,
	}
}

// Float64Slice is the codec for numeric vectors.
func Float64Slice() Codec[[]float64] {
	return Codec[[]float64]{
		Encode: codec.EncodeFloat64Slice,
		Decode: codec.DecodeFloat64Slice,
	}
}

// Bytes is the identity codec.
func Bytes() Codec[[]byte] {
	return Codec[[]byte]{
		Encode: func(b []byte) []byte { return b },
		Decode: func(b []byte) ([]byte, error) { return b, nil },
	}
}

// TypedEmit is the emit callback seen by typed map/reduce functions.
type TypedEmit[K, V any] func(key K, value V) error

// TypedMap adapts a typed map function to the framework's MapFunc.
// Input records decode with (ki, vi); emitted records encode with
// (ko, vo).
func TypedMap[KI, VI, KO, VO any](
	ki Codec[KI], vi Codec[VI], ko Codec[KO], vo Codec[VO],
	fn func(key KI, value VI, emit TypedEmit[KO, VO]) error,
) MapFunc {
	return func(key, value []byte, emit kvio.Emitter) error {
		k, err := ki.Decode(key)
		if err != nil {
			return fmt.Errorf("mrs: decoding map key: %w", err)
		}
		v, err := vi.Decode(value)
		if err != nil {
			return fmt.Errorf("mrs: decoding map value: %w", err)
		}
		return fn(k, v, func(ok KO, ov VO) error {
			return emit.Emit(ko.Encode(ok), vo.Encode(ov))
		})
	}
}

// TypedReduce adapts a typed reduce function to the framework's
// ReduceFunc. Keys decode with kc; input and output values with vc
// (reduce preserves the value type, matching the paper's definition
// reduce: (K2, list(V2)) -> list(V2)).
func TypedReduce[K, V any](
	kc Codec[K], vc Codec[V],
	fn func(key K, values []V, emit TypedEmit[K, V]) error,
) ReduceFunc {
	return func(key []byte, values [][]byte, emit kvio.Emitter) error {
		k, err := kc.Decode(key)
		if err != nil {
			return fmt.Errorf("mrs: decoding reduce key: %w", err)
		}
		vs := make([]V, len(values))
		for i, raw := range values {
			v, err := vc.Decode(raw)
			if err != nil {
				return fmt.Errorf("mrs: decoding reduce value %d: %w", i, err)
			}
			vs[i] = v
		}
		return fn(k, vs, func(ok K, ov V) error {
			return emit.Emit(kc.Encode(ok), vc.Encode(ov))
		})
	}
}

// CollectTyped decodes a dataset's records with the given codecs.
func CollectTyped[K, V any](d *Dataset, kc Codec[K], vc Codec[V]) ([]K, []V, error) {
	pairs, err := d.Collect()
	if err != nil {
		return nil, nil, err
	}
	keys := make([]K, len(pairs))
	values := make([]V, len(pairs))
	for i, p := range pairs {
		if keys[i], err = kc.Decode(p.Key); err != nil {
			return nil, nil, fmt.Errorf("mrs: decoding key %d: %w", i, err)
		}
		if values[i], err = vc.Decode(p.Value); err != nil {
			return nil, nil, fmt.Errorf("mrs: decoding value %d: %w", i, err)
		}
	}
	return keys, values, nil
}

// TypedPairs encodes typed records as a dataset's literal pairs.
func TypedPairs[K, V any](kc Codec[K], vc Codec[V], keys []K, values []V) ([]Pair, error) {
	if len(keys) != len(values) {
		return nil, fmt.Errorf("mrs: %d keys but %d values", len(keys), len(values))
	}
	pairs := make([]Pair, len(keys))
	for i := range keys {
		pairs[i] = Pair{Key: kc.Encode(keys[i]), Value: vc.Encode(values[i])}
	}
	return pairs, nil
}
