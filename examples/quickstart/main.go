// Quickstart: the complete Mrs WordCount experience of Program 1 in
// the paper, in Go. Run it with no arguments for serial execution, or
// pick another mode:
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -mrs=threads
//	go run ./examples/quickstart -mrs=local -mrs-slaves=4
package main

import (
	"bytes"
	"fmt"

	mrs "repro"
	"repro/internal/codec"
)

// WordCount is a mrs program: named map/reduce functions plus a Run
// method that queues the operations.
type WordCount struct{}

var document = []string{
	"the mapreduce parallel programming model is designed for large scale data processing",
	"but its benefits are also helpful for computationally intensive algorithms",
	"mrs is a lightweight mapreduce implementation that is well suited for scientific computing",
	"it is designed to be simple for both programmers and users",
	"programs are easy to write easy to run and fast",
}

func (WordCount) Register(reg *mrs.Registry) error {
	reg.RegisterMap("map", func(key, value []byte, emit mrs.Emitter) error {
		for _, word := range bytes.Fields(value) {
			if err := emit.Emit(word, codec.EncodeVarint(1)); err != nil {
				return err
			}
		}
		return nil
	})
	reg.RegisterReduce("reduce", func(key []byte, values [][]byte, emit mrs.Emitter) error {
		var total int64
		for _, v := range values {
			n, err := codec.DecodeVarint(v)
			if err != nil {
				return err
			}
			total += n
		}
		return emit.Emit(key, codec.EncodeVarint(total))
	})
	return nil
}

func (WordCount) Run(job *mrs.Job) error {
	pairs := make([]mrs.Pair, len(document))
	for i, line := range document {
		pairs[i] = mrs.Pair{Key: codec.EncodeVarint(int64(i + 1)), Value: []byte(line)}
	}
	src, err := job.LocalData(pairs, mrs.OpOpts{Splits: 2, Partition: "roundrobin"})
	if err != nil {
		return err
	}
	out, err := job.MapReduce(src, "map", "reduce",
		mrs.OpOpts{Splits: 2, Combine: "reduce"},
		mrs.OpOpts{Splits: 1})
	if err != nil {
		return err
	}
	counts, err := out.Collect()
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %s\n", "WORD", "COUNT")
	for _, kv := range counts {
		n, err := codec.DecodeVarint(kv.Value)
		if err != nil {
			return err
		}
		if n > 1 {
			fmt.Printf("%-16s %d\n", kv.Key, n)
		}
	}
	return nil
}

func main() {
	mrs.Main(WordCount{})
}
