// PiEstimator: the paper's computationally intensive workload (§V-B,
// Figure 3) — a Monte Carlo estimate of pi from quasi-random Halton
// points, "computational in nature, with no data on disk".
//
//	go run ./examples/pi -samples 100000000 -tasks 8 -mrs=threads
//	go run ./examples/pi -samples 1000000000 -mrs=local -mrs-slaves=4
//	go run ./examples/pi -tier cpython    # simulate the CPython tier
package main

import (
	"flag"
	"fmt"
	"math"

	mrs "repro"
	"repro/internal/interp"
	"repro/internal/piest"
)

var (
	samples = flag.Uint64("samples", 10_000_000, "number of Halton sample points")
	tasks   = flag.Int("tasks", 8, "number of map tasks")
	tier    = flag.String("tier", "c", "simulated runtime tier: c|java|pypy|cpython")
)

type program struct {
	cfg piest.Config
}

func (p *program) Register(reg *mrs.Registry) error {
	t, err := interp.ByName(*tier)
	if err != nil {
		return err
	}
	p.cfg = piest.Config{Samples: *samples, Tasks: *tasks, Tier: t}
	piest.Register(reg, p.cfg)
	return nil
}

func (p *program) Run(job *mrs.Job) error {
	res, err := piest.Run(job, p.cfg)
	if err != nil {
		return err
	}
	fmt.Printf("samples   %d\n", res.Total)
	fmt.Printf("inside    %d\n", res.Inside)
	fmt.Printf("pi        %.10f\n", res.Pi)
	fmt.Printf("true pi   %.10f\n", math.Pi)
	fmt.Printf("abs error %.3e\n", res.Error())
	fmt.Printf("elapsed   %v\n", res.Elapsed)
	return nil
}

func main() {
	mrs.Main(&program{})
}
