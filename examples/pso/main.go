// Apiary PSO on Rosenbrock-250: the paper's iterative scientific
// workload (§V-B, Figure 4). Subswarms of particles advance several
// inner iterations per map task; reduce tasks merge migrated bests
// around the subswarm ring; a convergence check runs overlapped with
// the next iteration. The -serial flag runs the identical dynamics in
// a plain loop — both paths must print the same best values.
//
//	go run ./examples/pso -outer 50 -mrs=threads
//	go run ./examples/pso -dims 250 -target 1e-5 -outer 5000 -mrs=local
//	go run ./examples/pso -serial -outer 50
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	mrs "repro"
	"repro/internal/pso"
)

var (
	function = flag.String("function", "rosenbrock", "objective: rosenbrock|sphere|rastrigin|griewank|ackley")
	dims     = flag.Int("dims", 250, "dimensions (the paper uses Rosenbrock-250)")
	swarms   = flag.Int("swarms", 8, "number of subswarms (islands)")
	size     = flag.Int("size", 5, "particles per subswarm")
	inner    = flag.Int("inner", 100, "PSO iterations per map task")
	outer    = flag.Int("outer", 25, "MapReduce iterations")
	target   = flag.Float64("target", 0, "stop when best <= target (0: run all iterations)")
	seed     = flag.Uint64("seed", 42, "random seed")
	tasks    = flag.Int("tasks", 4, "map/reduce splits")
	check    = flag.Int("check", 1, "convergence check cadence (outer iterations)")
	serial   = flag.Bool("serial", false, "run the serial baseline instead of MapReduce")
)

func config() pso.Config {
	return pso.Config{
		Function:   *function,
		Dims:       *dims,
		NumSwarms:  *swarms,
		SwarmSize:  *size,
		InnerIters: *inner,
		MaxOuter:   *outer,
		Target:     *target,
		Seed:       *seed,
		Tasks:      *tasks,
		CheckEvery: *check,
	}
}

type program struct{}

func (program) Register(reg *mrs.Registry) error {
	return pso.Register(reg, config())
}

func (program) Run(job *mrs.Job) error {
	res, err := pso.RunMapReduce(job, config())
	if err != nil {
		return err
	}
	report(res)
	return nil
}

// Bypass runs the serial implementation — the paper's bypass mode
// sharing code with the MapReduce implementation.
func (program) Bypass() error {
	res, err := pso.RunSerial(config())
	if err != nil {
		return err
	}
	report(res)
	return nil
}

func report(res *pso.Result) {
	fmt.Printf("%-8s %-14s %-14s %s\n", "ITER", "EVALS", "BEST", "ELAPSED")
	for _, p := range res.History {
		fmt.Printf("%-8d %-14d %-14.6g %v\n", p.OuterIter, p.Evaluations, p.Best, p.Elapsed.Round(1e6))
	}
	fmt.Printf("\nbest %.8g after %d outer iterations (%d evaluations) in %v; converged=%v\n",
		res.Best, res.OuterIters, res.Evaluations, res.Elapsed.Round(1e6), res.Converged)
	if res.OuterIters > 0 {
		fmt.Printf("per-iteration wall time: %v\n",
			(res.Elapsed / time.Duration(res.OuterIters)).Round(10*time.Microsecond))
	}
}

func main() {
	opts := mrs.BindFlags(flag.CommandLine)
	flag.Parse()
	if *serial {
		if err := (program{}).Bypass(); err != nil {
			fmt.Fprintf(os.Stderr, "pso: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := mrs.Run(program{}, *opts); err != nil {
		fmt.Fprintf(os.Stderr, "pso: %v\n", err)
		os.Exit(1)
	}
}
