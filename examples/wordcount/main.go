// WordCount over a generated Gutenberg-style corpus — the paper's
// first performance workload (§V-B). The example generates a scaled
// synthetic corpus (nested directories, Zipf words), counts it with
// the requested execution mode, and prints the most frequent words.
//
//	go run ./examples/wordcount -files 200 -mrs=threads
//	go run ./examples/wordcount -files 500 -mrs=local -mrs-slaves=4 -mrs-shared=/tmp/wcshare
//
// To run across real processes (the cluster experience):
//
//	go build -o /tmp/wc ./examples/wordcount
//	/tmp/wc -mrs=master -mrs-portfile=/tmp/wc.port -files 500 &
//	/tmp/wc -mrs=slave -mrs-master=$(cat /tmp/wc.port) &
//	/tmp/wc -mrs=slave -mrs-master=$(cat /tmp/wc.port) &
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	mrs "repro"
	"repro/internal/corpus"
	"repro/internal/wordcount"
)

var (
	files     = flag.Int("files", 200, "documents to generate")
	meanWords = flag.Int("mean-words", 2000, "average words per document")
	dir       = flag.String("dir", "", "corpus directory (default: temp dir)")
	topN      = flag.Int("top", 15, "how many top words to print")
	tasks     = flag.Int("tasks", 8, "reduce-side splits")
)

type program struct{}

func (program) Register(reg *mrs.Registry) error {
	wordcount.Register(reg)
	return nil
}

func (program) Run(job *mrs.Job) error {
	root := *dir
	if root == "" {
		d, err := os.MkdirTemp("", "mrs-corpus-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		root = d
	}
	genStart := time.Now()
	paths, stats, err := corpus.Generate(root, corpus.Spec{
		Files:     *files,
		MeanWords: *meanWords,
		Seed:      7,
	})
	if err != nil {
		return err
	}
	fmt.Printf("generated %d files, %d tokens, %d dirs in %v\n",
		stats.Files, stats.Tokens, stats.Directories, time.Since(genStart).Round(time.Millisecond))

	countStart := time.Now()
	out, err := wordcount.Run(job, paths, wordcount.Options{
		MapSplits:    *tasks,
		ReduceSplits: *tasks,
	})
	if err != nil {
		return err
	}
	pairs, err := out.Collect()
	if err != nil {
		return err
	}
	counts, err := wordcount.Counts(pairs)
	if err != nil {
		return err
	}
	elapsed := time.Since(countStart)
	fmt.Printf("counted %d distinct words in %v (%.1f Mtokens/s)\n",
		len(counts), elapsed.Round(time.Millisecond),
		float64(stats.Tokens)/elapsed.Seconds()/1e6)
	fmt.Printf("\n%-16s %s\n", "WORD", "COUNT")
	for _, wc := range wordcount.Top(counts, *topN) {
		fmt.Printf("%-16s %d\n", wc.Word, wc.Count)
	}
	return nil
}

func main() {
	mrs.Main(program{})
}
