// Iterative MapReduce k-means — one of the iterative algorithms the
// paper's introduction motivates ([2]). The point set is a static
// dataset; each iteration broadcasts the current centroids to the map
// tasks as operation parameters, so per-iteration cost is pure
// framework overhead — the quantity Mrs is built to minimize.
//
//	go run ./examples/kmeans -points 5000 -k 5 -mrs=threads
//	go run ./examples/kmeans -points 20000 -mrs=local -mrs-slaves=4
package main

import (
	"flag"
	"fmt"
	"math"
	"time"

	mrs "repro"
	"repro/internal/core"
	"repro/internal/kmeans"
)

var (
	k       = flag.Int("k", 5, "clusters")
	dims    = flag.Int("dims", 8, "dimensions")
	nPoints = flag.Int("points", 5000, "points to generate")
	iters   = flag.Int("iters", 40, "max iterations")
	tasks   = flag.Int("tasks", 4, "map splits")
	seed    = flag.Uint64("seed", 17, "random seed")
	scatter = flag.Bool("scatter", false,
		"un-clustered point set: k-means keeps iterating to -iters instead of converging in ~2 (the iterative/residency demo mode)")
)

// scatterPoints is a deterministic smooth un-clustered point set.
// Gaussian blobs converge in about two iterations (assignments lock in
// immediately); on scattered data the centroids keep moving, which is
// what exercises the warm resident-cache path across many supersteps.
func scatterPoints(n, dims int) [][]float64 {
	points := make([][]float64, n)
	for i := range points {
		p := make([]float64, dims)
		for d := range p {
			p[d] = math.Sin(float64(i*(d+3)+1)) * 10
		}
		points[i] = p
	}
	return points
}

type program struct{}

func cfg() kmeans.Config {
	return kmeans.Config{
		K: *k, Dims: *dims, MaxIters: *iters,
		Tasks: *tasks, Seed: *seed,
	}
}

func (program) Register(reg *mrs.Registry) error {
	kmeans.Register(reg)
	return nil
}

func (program) Run(job *mrs.Job) error {
	c := cfg()
	genStart := time.Now()
	var points, trueCenters [][]float64
	if *scatter {
		points = scatterPoints(*nPoints, c.Dims)
	} else {
		var err error
		points, trueCenters, err = kmeans.GeneratePoints(c, *nPoints)
		if err != nil {
			return err
		}
	}
	init, err := kmeans.InitialCentroidsPlusPlus(c, points)
	if err != nil {
		return err
	}
	if *scatter {
		fmt.Printf("generated %d scattered (un-clustered) points in %v\n",
			len(points), time.Since(genStart).Round(time.Millisecond))
	} else {
		fmt.Printf("generated %d points around %d true centers in %v\n",
			len(points), len(trueCenters), time.Since(genStart).Round(time.Millisecond))
	}
	fmt.Printf("initial inertia (k-means++ seeds): %.1f\n", kmeans.Inertia(points, init))

	src, err := job.LocalData(kmeans.PointPairs(points), core.OpOpts{
		Splits: c.Tasks, Partition: "roundrobin"})
	if err != nil {
		return err
	}
	res, err := kmeans.RunMapReduce(job, c, src, init)
	if err != nil {
		return err
	}
	fmt.Printf("converged in %d iterations (%v, %v/iter); final max movement %.3g\n",
		res.Iterations, res.Elapsed.Round(time.Millisecond),
		(res.Elapsed / time.Duration(res.Iterations)).Round(time.Microsecond), res.Moved)
	if *scatter {
		fmt.Printf("final inertia: %.1f\n", kmeans.Inertia(points, res.Centroids))
	} else {
		fmt.Printf("final inertia: %.1f (true-center floor: %.1f)\n",
			kmeans.Inertia(points, res.Centroids), kmeans.Inertia(points, trueCenters))
	}
	for i, c := range res.Centroids {
		if len(c) > 4 {
			c = c[:4]
		}
		fmt.Printf("centroid %d ≈ %.2f...\n", i, c)
	}
	return nil
}

func main() {
	mrs.Main(program{})
}
