// Package mrs is a Go implementation of Mrs, the lightweight MapReduce
// framework for scientific computing described in McNabb, Lund & Seppi,
// "Mrs: MapReduce for Scientific Computing in Python" (SC 2012 PyHPC).
//
// A program supplies named map and reduce functions and a Run method
// that queues operations on a Job; mrs runs it under any of several
// execution modes selected at startup (mirroring the paper's §IV-A):
//
//   - serial: everything sequential and in memory — for development.
//   - mock: the exact task decomposition of the distributed mode, one
//     process, intermediate data in inspectable files — for debugging.
//   - threads: in-process parallel execution (Go needs no separate
//     processes; the paper's GIL discussion does not apply).
//   - master / slave: the distributed runtime — XML-RPC control plane,
//     HTTP or shared-filesystem data plane, heartbeats, task affinity,
//     and failure recovery.
//   - submaster: a middle control tier for large fleets — signs in to
//     the master as one aggregated worker and schedules its own shard
//     of slaves (see docs/DESIGN.md, "Hierarchical control plane").
//   - local: a convenience that boots a master plus N slaves inside
//     one process over real localhost sockets.
//   - bypass: calls the program's Bypass method, skipping mrs almost
//     entirely.
//
// Every mode must produce identical output for the same program; a
// difference indicates a bug in the program (or in mrs).
package mrs

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kvio"
	"repro/internal/master"
	"repro/internal/obs"
	"repro/internal/prand"
	"repro/internal/slave"
	"repro/internal/submaster"
)

// Re-exported core types: these are the vocabulary of a mrs program.
type (
	// Job queues operations; see core.Job.
	Job = core.Job
	// Dataset is a handle to queued output; see core.Dataset.
	Dataset = core.Dataset
	// OpOpts tunes one operation; see core.OpOpts.
	OpOpts = core.OpOpts
	// Registry holds named map/reduce functions.
	Registry = core.Registry
	// Emitter receives emitted records.
	Emitter = kvio.Emitter
	// Pair is a key-value record.
	Pair = kvio.Pair
	// MapFunc and ReduceFunc are the user function signatures.
	MapFunc    = core.MapFunc
	ReduceFunc = core.ReduceFunc
)

// NewRegistry returns an empty function registry.
func NewRegistry() *Registry { return core.NewRegistry() }

// Program is a mrs application. Register installs the program's
// functions into a registry (this happens in every process — master,
// slaves, and local modes alike); Run drives the job.
type Program interface {
	Register(reg *Registry) error
	Run(job *Job) error
}

// Bypasser is optionally implemented by programs that support the
// bypass execution mode: a plain serial entry point sharing code with
// the MapReduce implementation (§IV-A).
type Bypasser interface {
	Bypass() error
}

// Options selects and configures the execution mode.
type Options struct {
	// Implementation: "serial" (default), "mock", "threads", "local",
	// "master", "slave", or "bypass".
	Implementation string
	// Workers is the thread count for "threads" (default 4).
	Workers int
	// Slaves is the worker count for "local" (default 2).
	Slaves int
	// SubMasters, when positive, interposes this many sub-masters
	// between the master and the slaves in "local" mode: the master
	// sees only the sub-masters, each of which owns a shard of the
	// fleet (see docs/DESIGN.md, "Hierarchical control plane"). 0
	// keeps the flat star.
	SubMasters int
	// Speculation enables speculative straggler re-execution when
	// positive: a task whose only running attempt has taken longer
	// than Speculation times the operation's median attempt duration
	// gets a duplicate attempt on another node; the first completion
	// wins and output stays byte-identical. Applies to "local" and
	// "master" (and sets the shard-local factor in "submaster").
	Speculation float64
	// MasterAddr is the master's host:port (required for "slave").
	MasterAddr string
	// Addr is the master listen address ("master"; default 127.0.0.1:0).
	Addr string
	// PortFile receives the master's host:port once listening.
	PortFile string
	// SharedDir switches the distributed data plane to filesystem
	// staging in this directory (must be shared across machines).
	SharedDir string
	// MockDir is where "mock" leaves its intermediate files (default:
	// a temp dir removed afterwards).
	MockDir string
	// MinSlaves makes a master wait for this many slaves before
	// running (default 1).
	MinSlaves int
	// MinSlavesTimeout bounds that wait (default 60s).
	MinSlavesTimeout time.Duration
	// Seed is the program's base random seed (see Random).
	Seed uint64
	// NoPipeline disables split-level pipelining, restoring the fully
	// barriered driver (one operation materialized at a time, in queue
	// order). Pipelining is on by default; this toggle exists as a
	// performance ablation and a debugging aid.
	NoPipeline bool
	// TracePath, when set, records every task attempt and writes a
	// Chrome trace-event JSON timeline there when the job finishes
	// (open it in chrome://tracing or Perfetto). See
	// docs/OBSERVABILITY.md.
	TracePath string
	// DebugAddr, when set, serves the observability surface —
	// /debug/status, /debug/metrics (Prometheus text), /debug/pprof —
	// on this address, in every mode including slave. The master
	// additionally always mounts the same surface on its own port.
	DebugAddr string
	// Prefetch is the input-fetch window: while one input bucket is
	// consumed, the next Prefetch-1 are fetched concurrently. 0 selects
	// the default width; 1 restores sequential streaming (ablation).
	// Output is byte-identical at any width.
	Prefetch int
	// Compress writes intermediate buckets flate-compressed, and the
	// data servers send the compressed bytes to peers that accept them
	// (wire compression). Output is byte-identical either way.
	Compress bool
	// Codec selects the compression codec intermediate buckets are
	// written with in the block-framed data plane ("identity",
	// "deflate", "lz"; "" keeps the legacy per-record framing). Data
	// servers negotiate per request, so nodes running different codecs
	// — or none — interoperate, and output is byte-identical under
	// every setting. Wins over Compress when both are set.
	Codec string
	// BlockEncoding selects the block encoding intermediate buckets
	// are written with: "row" (the default record-block layout) or
	// "columnar" / "columnar-raw" / "columnar-dict" / "columnar-delta"
	// (key and value columns stored separately, with the named key
	// encoding; plain "columnar" picks the key encoding per block).
	// Data servers negotiate per request and transcode for peers that
	// only read row blocks, so mixed-version fleets interoperate and
	// output is byte-identical under every setting.
	BlockEncoding string
	// BlockSize overrides the record-block flush threshold in bytes
	// (0 = default, 64 KiB). Larger blocks compress better; smaller
	// blocks cost less memory per stream.
	BlockSize int
	// ResidentBudget is the per-worker resident dataset cache budget in
	// bytes: input splits of operations queued with OpOpts.Resident are
	// fetched once and served from worker memory on later iterations
	// (LRU-evicted under this budget, reclaimed by per-job GC). <= 0
	// disables the cache; output is byte-identical either way. See
	// docs/ITERATIVE.md.
	ResidentBudget int64
}

func (o *Options) fill() {
	if o.Implementation == "" {
		o.Implementation = "serial"
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Slaves <= 0 {
		o.Slaves = 2
	}
	if o.MinSlaves <= 0 {
		o.MinSlaves = 1
	}
	if o.MinSlavesTimeout <= 0 {
		o.MinSlavesTimeout = 60 * time.Second
	}
}

// Run executes the program under the selected implementation and
// returns when it completes (for "slave": when the master shuts down).
func Run(p Program, opts Options) error {
	opts.fill()
	reg := core.NewRegistry()
	if err := p.Register(reg); err != nil {
		return fmt.Errorf("mrs: registering functions: %w", err)
	}

	rt := obs.New(nil)
	if opts.TracePath != "" {
		rt.StartTrace()
	}
	if opts.DebugAddr != "" {
		dbg, err := obs.ServeDebug(opts.DebugAddr, rt, func() string {
			return fmt.Sprintf("mrs -mrs=%s\n", opts.Implementation)
		})
		if err != nil {
			return fmt.Errorf("mrs: debug server: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "mrs: debug surface at http://%s/debug/status\n", dbg.Addr())
	}

	switch opts.Implementation {
	case "bypass":
		b, ok := p.(Bypasser)
		if !ok {
			return fmt.Errorf("mrs: program does not implement Bypass")
		}
		return b.Bypass()

	case "serial":
		exec := core.NewSerial(reg)
		exec.SetObserver(rt)
		exec.SetResidentBudget(opts.ResidentBudget)
		exec.SetPrefetch(opts.Prefetch)
		exec.SetCompress(opts.Compress)
		if err := exec.SetCodec(opts.Codec); err != nil {
			return fmt.Errorf("mrs: %w", err)
		}
		if err := exec.SetBlockEncoding(opts.BlockEncoding); err != nil {
			return fmt.Errorf("mrs: %w", err)
		}
		exec.SetBlockSize(opts.BlockSize)
		return runWithExecutor(p, exec, opts, rt)

	case "mock":
		exec, err := core.NewMockParallel(reg, opts.MockDir)
		if err != nil {
			return err
		}
		exec.SetObserver(rt)
		exec.SetResidentBudget(opts.ResidentBudget)
		exec.SetPrefetch(opts.Prefetch)
		exec.SetCompress(opts.Compress)
		if err := exec.SetCodec(opts.Codec); err != nil {
			return fmt.Errorf("mrs: %w", err)
		}
		if err := exec.SetBlockEncoding(opts.BlockEncoding); err != nil {
			return fmt.Errorf("mrs: %w", err)
		}
		exec.SetBlockSize(opts.BlockSize)
		return runWithExecutor(p, exec, opts, rt)

	case "threads":
		exec := core.NewThreads(reg, opts.Workers)
		exec.SetObserver(rt)
		exec.SetResidentBudget(opts.ResidentBudget)
		exec.SetPrefetch(opts.Prefetch)
		exec.SetCompress(opts.Compress)
		if err := exec.SetCodec(opts.Codec); err != nil {
			return fmt.Errorf("mrs: %w", err)
		}
		if err := exec.SetBlockEncoding(opts.BlockEncoding); err != nil {
			return fmt.Errorf("mrs: %w", err)
		}
		exec.SetBlockSize(opts.BlockSize)
		return runWithExecutor(p, exec, opts, rt)

	case "local":
		c, err := cluster.Start(reg, cluster.Options{
			Slaves:            opts.Slaves,
			SubMasters:        opts.SubMasters,
			SpeculationFactor: opts.Speculation,
			SharedDir:         opts.SharedDir,
			Obs:               rt,
			Prefetch:          opts.Prefetch,
			Compress:          opts.Compress,
			Codec:             opts.Codec,
			BlockEncoding:     opts.BlockEncoding,
			BlockSize:         opts.BlockSize,
			ResidentBudget:    opts.ResidentBudget,
		})
		if err != nil {
			return err
		}
		defer c.Close()
		return runManaged(p, c.M, opts, rt)

	case "master":
		m, err := master.New(master.Options{
			Addr:              opts.Addr,
			PortFile:          opts.PortFile,
			SharedDir:         opts.SharedDir,
			SpeculationFactor: opts.Speculation,
			Obs:               rt,
			Compress:          opts.Compress,
			Codec:             opts.Codec,
			BlockEncoding:     opts.BlockEncoding,
			BlockSize:         opts.BlockSize,
		})
		if err != nil {
			return err
		}
		defer m.Close()
		ctx, cancel := context.WithTimeout(context.Background(), opts.MinSlavesTimeout)
		defer cancel()
		if err := m.WaitForSlaves(ctx, opts.MinSlaves); err != nil {
			return err
		}
		return runManaged(p, m, opts, rt)

	case "submaster":
		// A middle-tier control node: signs in to the master upward as
		// one aggregated worker, serves the same protocol downward to
		// its own shard of slaves. Control plane only — no program
		// functions run here, but Register still happens above so the
		// binary is the same one the slaves run.
		if opts.MasterAddr == "" {
			return fmt.Errorf("mrs: submaster mode requires MasterAddr")
		}
		sm, err := submaster.New(submaster.Options{
			MasterAddr:        opts.MasterAddr,
			Addr:              opts.Addr,
			PortFile:          opts.PortFile,
			Obs:               rt,
			SpeculationFactor: opts.Speculation,
		})
		if err != nil {
			return err
		}
		return sm.Run(context.Background())

	case "slave":
		if opts.MasterAddr == "" {
			return fmt.Errorf("mrs: slave mode requires MasterAddr")
		}
		s, err := slave.New(reg, slave.Options{
			MasterAddr:     opts.MasterAddr,
			SharedDir:      opts.SharedDir,
			Obs:            rt,
			Prefetch:       opts.Prefetch,
			Compress:       opts.Compress,
			Codec:          opts.Codec,
			BlockEncoding:  opts.BlockEncoding,
			BlockSize:      opts.BlockSize,
			ResidentBudget: opts.ResidentBudget,
		})
		if err != nil {
			return err
		}
		return s.Run(context.Background())
	}
	return fmt.Errorf("mrs: unknown implementation %q", opts.Implementation)
}

// runWithExecutor owns the executor's lifetime.
func runWithExecutor(p Program, exec core.Executor, opts Options, rt *obs.Runtime) error {
	defer exec.Close()
	return runJob(p, exec, opts, rt)
}

func runJob(p Program, exec core.Executor, opts Options, rt *obs.Runtime) error {
	job := core.NewJobWith(exec, core.JobOptions{Pipeline: !opts.NoPipeline, Obs: rt})
	runErr := p.Run(job)
	closeErr := job.Close()
	// Every task is finished once Close returns, so the trace is complete.
	if terr := writeTrace(opts.TracePath, rt); terr != nil && runErr == nil && closeErr == nil {
		closeErr = terr
	}
	if runErr != nil {
		return runErr
	}
	return closeErr
}

// runManaged drives the program as one managed job on the master's
// multi-tenant manager — the same submission path a shared fleet uses
// for many concurrent programs, degenerated to a single tenant. Wait
// resolves only after the job's driver has fully drained, so the trace
// is complete when it returns.
func runManaged(p Program, m *master.Master, opts Options, rt *obs.Runtime) error {
	mj, err := m.Jobs().Submit("mrs", core.JobOptions{Pipeline: !opts.NoPipeline, Obs: rt}, p.Run)
	if err != nil {
		return err
	}
	runErr := mj.Wait()
	if terr := writeTrace(opts.TracePath, rt); terr != nil && runErr == nil {
		runErr = terr
	}
	return runErr
}

func writeTrace(path string, rt *obs.Runtime) error {
	if path == "" || rt == nil || rt.Trace == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mrs: trace: %w", err)
	}
	if err := rt.Trace.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("mrs: trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("mrs: trace: %w", err)
	}
	fmt.Fprintf(os.Stderr, "mrs: wrote %d task spans to %s\n", rt.Trace.NumSpans(), path)
	return nil
}

// Random returns an independent pseudorandom stream for the argument
// tuple, the Go analogue of mrs.MapReduce.random(*args) (§IV-A): any
// combination of up-to-~300 integers (task index, iteration, particle
// id, …) deterministically names its own Mersenne Twister stream, so
// stochastic programs give identical results in every execution mode.
func Random(seed uint64, args ...uint64) *prand.MT {
	return prand.Random(seed, args...)
}
