// mrs-bench regenerates every table and figure of the paper's
// evaluation (§V). Each experiment prints the same rows/series the
// paper reports; EXPERIMENTS.md records paper-vs-measured values.
//
//	mrs-bench -exp all
//	mrs-bench -exp wordcount -scale 0.01
//	mrs-bench -exp pi-a -live-max 10000000
//	mrs-bench -exp pso -outer 40
//	mrs-bench -exp iter
//	mrs-bench -exp crossover | script | prog
package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/hadoopsim"
	"repro/internal/interp"
	"repro/internal/journal"
	"repro/internal/kmeans"
	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/pbs"
	"repro/internal/piest"
	"repro/internal/pso"
	"repro/internal/shuffle"
	"repro/internal/wirecodec"
	"repro/internal/wordcount"
)

var (
	exp      = flag.String("exp", "all", "experiment: prog|script|wordcount|pi-a|pi-b|crossover|pso|iter|shuffle|tenancy|recovery|fleet|all")
	scale    = flag.Float64("scale", 0.003, "corpus scale for -exp wordcount (1.0 = the paper's 31,173 files)")
	liveMax  = flag.Uint64("live-max", 4_000_000, "largest sample count to run live for pi experiments")
	outer    = flag.Int("outer", 30, "outer iterations for -exp pso")
	dims     = flag.Int("dims", 250, "dimensions for -exp pso")
	slaves   = flag.Int("slaves", 4, "slaves for distributed measurements")
	iterN    = flag.Int("iters", 50, "iterations for -exp iter overhead measurement")
	iterJSON = flag.String("iter-json", "BENCH_iter.json", "file for -exp iter machine-readable results (empty disables)")
	shufJSON = flag.String("shuffle-json", "BENCH_shuffle.json", "file for -exp shuffle machine-readable results (empty disables)")
	shufRTT  = flag.Duration("shuffle-rtt", 4*time.Millisecond, "simulated mean per-fetch network delay for -exp shuffle")
	tenJSON  = flag.String("tenancy-json", "BENCH_tenancy.json", "file for -exp tenancy machine-readable results (empty disables)")
	recJSON  = flag.String("recovery-json", "BENCH_recovery.json", "file for -exp recovery machine-readable results (empty disables)")
	recReps  = flag.Int("recovery-reps", 5, "repetitions per config for the -exp recovery overhead measurement")
	fltJSON  = flag.String("fleet-json", "BENCH_fleet.json", "file for -exp fleet machine-readable results (empty disables)")
	trackers = flag.Int("trackers", 21, "simulated Hadoop TaskTrackers (paper: 21 nodes)")
	csvDir   = flag.String("csv", "", "directory to also write figure series as CSV files")
)

// writeCSV writes rows to <csvDir>/<name>.csv when -csv is set.
func writeCSV(name string, header []string, rows [][]string) error {
	if *csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	fmt.Printf("(wrote %s)\n", filepath.Join(*csvDir, name+".csv"))
	return f.Close()
}

func main() {
	flag.Parse()
	run := func(name string, fn func() error) {
		fmt.Printf("\n===== %s =====\n\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "mrs-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	all := *exp == "all"
	if all || *exp == "prog" {
		run("EXP-PROG: Programs 1 & 2 (code comparison)", expProg)
	}
	if all || *exp == "script" {
		run("EXP-SCRIPT: Programs 3 & 4 (startup scripts)", expScript)
	}
	if all || *exp == "wordcount" {
		run("EXP-WC: WordCount on the Gutenberg-style corpus", expWordCount)
	}
	if all || *exp == "pi-a" {
		run("EXP-PI-A: Figure 3a (pi, pure-interpreter inner loop)", func() error { return expPi(false) })
	}
	if all || *exp == "pi-b" {
		run("EXP-PI-B: Figure 3b (pi, C inner loop)", func() error { return expPi(true) })
	}
	if all || *exp == "crossover" {
		run("EXP-CROSS: task-time crossover claims", expCrossover)
	}
	if all || *exp == "pso" {
		run("EXP-PSO: Figure 4 (Apiary PSO, Rosenbrock)", expPSO)
	}
	if all || *exp == "iter" {
		run("EXP-ITER: per-iteration overhead and the 2471-iteration extrapolation", expIter)
	}
	if all || *exp == "shuffle" {
		run("EXP-SHUFFLE: parallel shuffle fetch and wire compression decomposition", expShuffle)
	}
	if all || *exp == "tenancy" {
		run("EXP-TENANCY: one fleet, many jobs — throughput and small-job latency", expTenancy)
	}
	if all || *exp == "recovery" {
		run("EXP-RECOVERY: journal overhead and crash-replay latency", expRecovery)
	}
	if all || *exp == "fleet" {
		run("EXP-FLEET: control-plane scaling and speculative straggler rescue", expFleet)
	}
}

func expProg() error {
	fmt.Print(pbs.NewProgramComparison().String())
	return nil
}

func expScript() error {
	fmt.Print(pbs.Compare(8, 1<<30, 1000).String())
	fmt.Println("\n(mrs-submit -scripts prints both scripts in full)")
	return nil
}

// hadoopCluster builds the calibrated simulator.
func hadoopCluster() (*hadoopsim.Cluster, error) {
	return hadoopsim.NewCluster(*trackers, hadoopsim.DefaultProfile())
}

func expWordCount() error {
	hc, err := hadoopCluster()
	if err != nil {
		return err
	}
	type row struct {
		name  string
		spec  corpus.Spec
		paper string
	}
	rows := []row{
		{"full (31,173 files)", corpus.PaperFullSpec(*scale, 7),
			"Hadoop startup alone ~9 min; Mrs total < 9 min"},
		{"subset (8,316 files)", corpus.PaperSubsetSpec(*scale, 7),
			"Hadoop 1 min prep / 16 min total; Mrs 2 min total"},
	}
	// Keep the bench runnable on a laptop: scale token volume with the
	// same factor as the file count.
	for i := range rows {
		rows[i].spec.MeanWords = int(float64(rows[i].spec.MeanWords) * *scale * 10)
		if rows[i].spec.MeanWords < 50 {
			rows[i].spec.MeanWords = 50
		}
	}

	fmt.Printf("corpus scale %.4f (files and tokens scaled together)\n\n", *scale)
	fmt.Printf("%-22s %8s %12s %14s %14s %16s %16s\n",
		"dataset", "files", "tokens", "mrs-total", "mrs/file", "hadoop-scan(sim)", "hadoop-total(sim)")
	for _, r := range rows {
		dir, err := os.MkdirTemp("", "mrs-bench-wc-*")
		if err != nil {
			return err
		}
		paths, stats, err := corpus.Generate(dir, r.spec)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}

		reg := core.NewRegistry()
		wordcount.Register(reg)
		c, err := cluster.Start(reg, cluster.Options{Slaves: *slaves})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		start := time.Now()
		job := core.NewJob(c.Executor())
		out, err := wordcount.Run(job, paths, wordcount.Options{MapSplits: *slaves * 2, ReduceSplits: *slaves})
		if err == nil {
			_, err = out.Collect()
		}
		job.Close()
		c.Close()
		mrsTotal := time.Since(start)
		os.RemoveAll(dir)
		if err != nil {
			return err
		}

		// Hadoop side, simulated with the *unscaled* paper file count
		// (the simulator is analytic, so no scaling is needed). Per-map
		// compute uses a documented 2012-era Hadoop map throughput of
		// ~26k tokens/s per slot (calibrated from the paper's subset
		// total: 16 min - 1 min prep over 8,316 files of ~64k tokens).
		const hadoopTokensPerSec = 26000.0
		fullFiles := int(float64(stats.Files) / *scale)
		tokensPerFile := float64(stats.Tokens) / float64(stats.Files) / (*scale * 10)
		mapTime := time.Duration(tokensPerFile / hadoopTokensPerSec * float64(time.Second))
		sim, err := hc.Run(hadoopsim.Job{
			Maps: fullFiles, Reduces: *trackers * 2,
			MapTime: mapTime, ReduceTime: 5 * time.Second,
			InputFiles: fullFiles,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %8d %12d %14s %14s %16s %16s\n",
			r.name, stats.Files, stats.Tokens,
			mrsTotal.Round(time.Millisecond),
			(mrsTotal / time.Duration(maxInt(stats.Files, 1))).Round(time.Microsecond),
			sim.InputScan.Round(time.Second),
			sim.Makespan.Round(time.Second))
		fmt.Printf("%-22s paper: %s\n", "", r.paper)
	}
	fmt.Println("\nnote: mrs columns are live measurements on the local cluster at the")
	fmt.Println("requested scale; hadoop columns are the calibrated simulator at the")
	fmt.Println("paper's full file counts. Shape check: Hadoop's input scan alone")
	fmt.Println("exceeds the whole (scaled-up) Mrs run, as in §V-B.")
	return nil
}

// measureMrsOverhead times empty identity-map iterations on a live
// local cluster, returning (startup, per-iteration overhead).
func measureMrsOverhead(iters int) (time.Duration, time.Duration, error) {
	reg := core.NewRegistry()
	reg.RegisterMap("identity", func(k, v []byte, e kvio.Emitter) error { return e.Emit(k, v) })
	bootStart := time.Now()
	c, err := cluster.Start(reg, cluster.Options{Slaves: *slaves})
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	startup := time.Since(bootStart)
	job := core.NewJob(c.Executor())
	defer job.Close()
	ds, err := job.LocalData(
		[]kvio.Pair{{Key: codec.EncodeVarint(1), Value: []byte("x")}},
		core.OpOpts{Splits: *slaves, Partition: "roundrobin"})
	if err != nil {
		return 0, 0, err
	}
	if err := ds.Wait(); err != nil {
		return 0, 0, err
	}
	iterStart := time.Now()
	for i := 0; i < iters; i++ {
		ds, err = job.Map(ds, "identity", core.OpOpts{Splits: *slaves})
		if err != nil {
			return 0, 0, err
		}
		if err := ds.Wait(); err != nil {
			return 0, 0, err
		}
	}
	perIter := time.Since(iterStart) / time.Duration(iters)
	return startup, perIter, nil
}

func expPi(cInner bool) error {
	hc, err := hadoopCluster()
	if err != nil {
		return err
	}
	hadoopOverhead, err := hc.OverheadEmpty()
	if err != nil {
		return err
	}
	fmt.Println("calibrating: measuring Go per-sample cost and live Mrs overhead...")
	perSample := interp.CalibrateSampleCost(1 << 21)
	startup, mrsOverhead, err := measureMrsOverhead(20)
	if err != nil {
		return err
	}
	fmt.Printf("per-sample (tier C) = %v; mrs startup = %v; mrs per-op overhead = %v; hadoop per-op overhead (sim) = %v\n\n",
		perSample, startup.Round(time.Millisecond), mrsOverhead.Round(time.Millisecond), hadoopOverhead.Round(time.Second))

	var series []interp.Model
	par := *slaves
	mk := func(name string, tier interp.Tier, overhead, boot time.Duration) interp.Model {
		return interp.Model{Name: name, Startup: boot, Overhead: overhead,
			SampleCost: tier.Scale(perSample), Parallelism: par}
	}
	hadoop := mk("hadoop/java", interp.Java, hadoopOverhead, 0)
	if cInner {
		series = []interp.Model{hadoop,
			mk("mrs/c(ctypes)", interp.C, mrsOverhead, startup),
			mk("mrs/pypy+c", interp.PyPy, mrsOverhead, startup)}
	} else {
		series = []interp.Model{hadoop,
			mk("mrs/cpython", interp.CPython, mrsOverhead, startup),
			mk("mrs/pypy", interp.PyPy, mrsOverhead, startup)}
	}

	header := []string{"samples"}
	for _, s := range series {
		header = append(header, s.Name+"_seconds")
	}
	header = append(header, "mrs_live_c_seconds")
	var csvRows [][]string

	fmt.Printf("%-12s", "samples")
	for _, s := range series {
		fmt.Printf(" %16s", s.Name)
	}
	fmt.Printf(" %16s\n", "mrs live (tier C)")
	for e := 0; e <= 9; e++ {
		n := uint64(1)
		for i := 0; i < e; i++ {
			n *= 10
		}
		row := []string{strconv.FormatUint(n, 10)}
		fmt.Printf("%-12d", n)
		for _, s := range series {
			d := s.Predict(n)
			fmt.Printf(" %16s", d.Round(time.Millisecond))
			row = append(row, strconv.FormatFloat(d.Seconds(), 'g', 6, 64))
		}
		if n <= *liveMax {
			live, err := livePi(n)
			if err != nil {
				return err
			}
			fmt.Printf(" %16s", live.Round(time.Millisecond))
			row = append(row, strconv.FormatFloat(live.Seconds(), 'g', 6, 64))
		} else {
			fmt.Printf(" %16s", "-")
			row = append(row, "")
		}
		csvRows = append(csvRows, row)
		fmt.Println()
	}
	figName := "fig3a"
	if cInner {
		figName = "fig3b"
	}
	if err := writeCSV(figName, header, csvRows); err != nil {
		return err
	}
	fmt.Println("\nshape check: on the left every mrs series sits orders of magnitude")
	fmt.Println("below hadoop (overhead-dominated); on the right the slopes are the")
	fmt.Println("language factors. In Figure 3b the C series stays below hadoop/java")
	fmt.Println("everywhere, as the paper reports.")
	return nil
}

// livePi actually runs the pi program on an in-process parallel
// executor and returns the wall time.
func livePi(n uint64) (time.Duration, error) {
	cfg := piest.Config{Samples: n, Tasks: *slaves * 2}
	reg := core.NewRegistry()
	piest.Register(reg, cfg)
	exec := core.NewThreads(reg, *slaves)
	defer exec.Close()
	job := core.NewJob(exec)
	defer job.Close()
	res, err := piest.Run(job, cfg)
	if err != nil {
		return 0, err
	}
	return res.Elapsed, nil
}

func expCrossover() error {
	hc, err := hadoopCluster()
	if err != nil {
		return err
	}
	hadoopOverhead, err := hc.OverheadEmpty()
	if err != nil {
		return err
	}
	perSample := 30 * time.Nanosecond // cancels out; any base works
	mrsOverhead := 300 * time.Millisecond
	hadoop := interp.Model{Name: "hadoop/java", Overhead: hadoopOverhead,
		SampleCost: interp.Java.Scale(perSample), Parallelism: 1}
	fmt.Printf("%-14s %20s %22s\n", "mrs tier", "crossover samples", "hadoop task time there")
	for _, tier := range []interp.Tier{interp.CPython, interp.PyPy, interp.C} {
		m := interp.Model{Name: tier.Name, Overhead: mrsOverhead,
			SampleCost: tier.Scale(perSample), Parallelism: 1}
		n := interp.CrossoverSamples(m, hadoop)
		if n == 0 {
			fmt.Printf("%-14s %20s %22s\n", tier.Name, "never", "mrs wins at all sizes")
			continue
		}
		taskTime := time.Duration(float64(n) * float64(hadoop.SampleCost))
		fmt.Printf("%-14s %20d %22s\n", tier.Name, n, taskTime.Round(time.Second))
	}
	fmt.Println("\npaper: advantage while task times < ~32 s (pure Python), extended to")
	fmt.Println("~40 s with C+PyPy; with the C inner loop Mrs is faster everywhere.")
	return nil
}

func expPSO() error {
	cfg := pso.Config{
		Function:   "rosenbrock",
		Dims:       *dims,
		NumSwarms:  8,
		SwarmSize:  5,
		InnerIters: 100,
		Seed:       42,
		MaxOuter:   *outer,
		Tasks:      *slaves,
		CheckEvery: 1,
	}
	fmt.Printf("Apiary, %s-%d, %d subswarms x %d particles, %d inner iterations/map\n\n",
		cfg.Function, cfg.Dims, cfg.NumSwarms, cfg.SwarmSize, cfg.InnerIters)

	serialRes, err := pso.RunSerial(cfg)
	if err != nil {
		return err
	}

	reg := core.NewRegistry()
	if err := pso.Register(reg, cfg); err != nil {
		return err
	}
	c, err := cluster.Start(reg, cluster.Options{Slaves: *slaves})
	if err != nil {
		return err
	}
	defer c.Close()
	job := core.NewJob(c.Executor())
	defer job.Close()
	mrRes, err := pso.RunMapReduce(job, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("%-8s %-12s %-14s %-14s %-12s %-12s\n",
		"iter", "evals", "best(serial)", "best(mr)", "t(serial)", "t(mr)")
	var csvRows [][]string
	for i := range serialRes.History {
		s := serialRes.History[i]
		var m pso.Point
		if i < len(mrRes.History) {
			m = mrRes.History[i]
		}
		match := " "
		if s.Best != m.Best {
			match = "!"
		}
		fmt.Printf("%-8d %-12d %-14.6g %-14.6g %-12s %-12s %s\n",
			s.OuterIter, s.Evaluations, s.Best, m.Best,
			s.Elapsed.Round(time.Millisecond), m.Elapsed.Round(time.Millisecond), match)
		csvRows = append(csvRows, []string{
			strconv.Itoa(s.OuterIter),
			strconv.FormatInt(s.Evaluations, 10),
			strconv.FormatFloat(s.Best, 'g', 8, 64),
			strconv.FormatFloat(m.Best, 'g', 8, 64),
			strconv.FormatFloat(s.Elapsed.Seconds(), 'g', 6, 64),
			strconv.FormatFloat(m.Elapsed.Seconds(), 'g', 6, 64),
		})
	}
	if err := writeCSV("fig4", []string{
		"iter", "evaluations", "best_serial", "best_mr", "t_serial_seconds", "t_mr_seconds",
	}, csvRows); err != nil {
		return err
	}
	fmt.Printf("\nserial: best %.6g in %v (%v/iter)\n", serialRes.Best,
		serialRes.Elapsed.Round(time.Millisecond),
		(serialRes.Elapsed / time.Duration(maxInt(serialRes.OuterIters, 1))).Round(time.Microsecond))
	fmt.Printf("mapreduce (distributed, %d slaves): best %.6g in %v (%v/iter)\n",
		*slaves, mrRes.Best, mrRes.Elapsed.Round(time.Millisecond),
		(mrRes.Elapsed / time.Duration(maxInt(mrRes.OuterIters, 1))).Round(time.Microsecond))
	fmt.Println("\nshape check: identical best-vs-evaluations trajectories (the '!' column")
	fmt.Println("is empty), so parallelism changes only the time axis, as in Figure 4.")
	return nil
}

// splitKeyPairs returns one key per hash split of n, so an n-split
// dataset of these keys carries exactly one record per split.
func splitKeyPairs(n int) []kvio.Pair {
	pairs := make([]kvio.Pair, 0, n)
	seen := make(map[int]bool)
	for i := 0; len(pairs) < n && i < 100*n; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		if s := partition.Hash(k, 0, n); !seen[s] {
			seen[s] = true
			pairs = append(pairs, kvio.Pair{Key: k, Value: []byte("x")})
		}
	}
	return pairs
}

// staggerSleep is the rotating straggler's task time in the chain
// measurement: in iteration i, the reduce task of split (i mod slaves)
// sleeps this long.
const staggerSleep = 20 * time.Millisecond

// measureChainOverhead times a queued chain of iters narrow reduces
// with a rotating straggler on a live cluster — the whole chain
// enqueued up front, one wait at the end — and returns the
// per-operation time plus the job's observed cost breakdown.
// Barriered, every iteration pays the straggler; pipelined, each
// split's chain advances independently so a given split pays only
// every (slaves)th iteration. With pipelined=false the job runs the
// barriered ablation over the identical chain.
func measureChainOverhead(iters int, pipelined bool) (time.Duration, core.JobStats, error) {
	n := *slaves
	reg := core.NewRegistry()
	reg.RegisterReduce("stagger", func(k []byte, vs [][]byte, e kvio.Emitter) error {
		i, err := strconv.Atoi(string(vs[0]))
		if err != nil {
			return err
		}
		if i%n == partition.Hash(k, 0, n) {
			time.Sleep(staggerSleep)
		}
		return e.Emit(k, []byte(strconv.Itoa(i+1)))
	})
	rt := obs.New(nil)
	c, err := cluster.Start(reg, cluster.Options{Slaves: n, Obs: rt})
	if err != nil {
		return 0, core.JobStats{}, err
	}
	defer c.Close()
	job := core.NewJobWith(c.Executor(), core.JobOptions{Pipeline: pipelined, Obs: rt})
	defer job.Close()
	pairs := splitKeyPairs(n)
	for i := range pairs {
		pairs[i].Value = []byte("0")
	}
	ds, err := job.LocalData(pairs, core.OpOpts{Splits: n})
	if err != nil {
		return 0, core.JobStats{}, err
	}
	if err := ds.Wait(); err != nil {
		return 0, core.JobStats{}, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		ds, err = job.Reduce(ds, "stagger", core.OpOpts{Splits: n, KeyAligned: true})
		if err != nil {
			return 0, core.JobStats{}, err
		}
	}
	if err := ds.Wait(); err != nil {
		return 0, core.JobStats{}, err
	}
	return time.Since(start) / time.Duration(iters), job.Stats(), nil
}

// iterWallMS converts per-iteration durations to milliseconds for the
// machine-readable results file.
func iterWallMS(walls []time.Duration) []float64 {
	out := make([]float64, len(walls))
	for i, d := range walls {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// residencyRun is one cell of the EXP-ITER residency ablation: the
// k-means assignment superstep repeated over an invariant point set on
// a live fleet, with the resident cache and split-level pipelining
// each on or off.
type residencyRun struct {
	Resident  bool
	Pipelined bool
	First     time.Duration   // iteration 1 (cold: everything misses)
	Warm      time.Duration   // mean of iterations 2..N
	IterWall  []time.Duration // every iteration's wall clock
	Hits      int64
	Misses    int64
}

// hitRate is Hits/(Hits+Misses), or 0 with no resident traffic.
func (r residencyRun) hitRate() float64 {
	if r.Hits+r.Misses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Hits+r.Misses)
}

// measureResidency runs iters supersteps of kmeans assign+update over
// one LocalData point set. The input dataset never changes, so with
// Resident on, iteration 1 shuffles it to the slaves and every later
// iteration reads it from their resident caches.
func measureResidency(iters int, resident, pipelined bool) (residencyRun, error) {
	out := residencyRun{Resident: resident, Pipelined: pipelined}
	// Low K and high Dims keep the assignment I/O-bound (flops per input
	// byte scale with K/8), so the saved per-iteration shuffle dominates
	// the warm wall clock instead of drowning in distance arithmetic.
	cfg := kmeans.Config{K: 2, Dims: 64, MaxIters: iters, Epsilon: 1e-300, Tasks: *slaves, Seed: 5}
	points, _, err := kmeans.GeneratePoints(cfg, 12000)
	if err != nil {
		return out, err
	}
	centroids, err := kmeans.InitialCentroidsPlusPlus(cfg, points)
	if err != nil {
		return out, err
	}
	reg := core.NewRegistry()
	kmeans.Register(reg)
	budget := int64(0)
	if resident {
		budget = core.DefaultResidentBudget
	}
	rt := obs.New(nil)
	c, err := cluster.Start(reg, cluster.Options{Slaves: *slaves, ResidentBudget: budget, Obs: rt})
	if err != nil {
		return out, err
	}
	defer c.Close()
	job := core.NewJobWith(c.Executor(), core.JobOptions{Pipeline: pipelined, Obs: rt})
	defer job.Close()
	src, err := job.LocalData(kmeans.PointPairs(points), core.OpOpts{Splits: cfg.Tasks, Partition: "roundrobin"})
	if err != nil {
		return out, err
	}
	if err := src.Wait(); err != nil {
		return out, err
	}
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		mapped, err := job.Map(src, kmeans.AssignName, core.OpOpts{
			Splits:    1,
			Partition: "constant",
			Combine:   kmeans.UpdateName,
			Params:    kmeans.EncodeCentroids(centroids),
			Resident:  resident,
		})
		if err != nil {
			return out, err
		}
		reduced, err := job.Reduce(mapped, kmeans.UpdateName,
			core.OpOpts{Splits: 1, Partition: "constant", KeyAligned: true})
		if err != nil {
			return out, err
		}
		if _, err := reduced.Collect(); err != nil {
			return out, err
		}
		out.IterWall = append(out.IterWall, time.Since(t0))
		_ = reduced.Free()
		_ = mapped.Free()
	}
	out.First = out.IterWall[0]
	var warm time.Duration
	for _, d := range out.IterWall[1:] {
		warm += d
	}
	if len(out.IterWall) > 1 {
		out.Warm = warm / time.Duration(len(out.IterWall)-1)
	}
	snap := rt.M().Snapshot()
	out.Hits = snap[obs.MetricResidentHits]
	out.Misses = snap[obs.MetricResidentMisses]
	return out, nil
}

func expIter() error {
	hc, err := hadoopCluster()
	if err != nil {
		return err
	}
	hadoopOverhead, err := hc.OverheadEmpty()
	if err != nil {
		return err
	}
	startup, perIter, err := measureMrsOverhead(*iterN)
	if err != nil {
		return err
	}
	perPipelined, pipeStats, err := measureChainOverhead(*iterN, true)
	if err != nil {
		return err
	}
	perBarriered, _, err := measureChainOverhead(*iterN, false)
	if err != nil {
		return err
	}
	const paperIters = 2471
	fmt.Printf("%-44s %14s\n", "quantity", "value")
	fmt.Printf("%-44s %14s   (paper: ~2 s)\n", "mrs cluster startup (measured)", startup.Round(time.Millisecond))
	fmt.Printf("%-44s %14s   (paper: ~0.3 s)\n", "mrs per-operation overhead (measured)", perIter.Round(time.Microsecond))
	fmt.Printf("%-44s %14s\n", "mrs per-op, straggler chain, pipelined", perPipelined.Round(time.Microsecond))
	fmt.Printf("%-44s %14s\n", "mrs per-op, straggler chain, barriered", perBarriered.Round(time.Microsecond))
	speedup := float64(perBarriered) / float64(perPipelined)
	fmt.Printf("%-44s %13.2fx\n", "split-level pipelining speedup", speedup)
	fmt.Printf("%-44s %14s   (paper: >=30 s)\n", "hadoop per-operation overhead (simulated)", hadoopOverhead.Round(time.Second))
	ratio := float64(hadoopOverhead) / float64(perIter)
	fmt.Printf("%-44s %14.0fx  (paper: ~100x, 'two orders of magnitude')\n", "overhead ratio", ratio)
	fmt.Printf("%-44s %14s   (paper: ~20 h)\n", "hadoop, 2471 PSO iterations (extrapolated)",
		(time.Duration(paperIters) * hadoopOverhead).Round(time.Minute))
	fmt.Printf("%-44s %14s\n", "mrs, 2471 PSO iterations (extrapolated)",
		(time.Duration(paperIters) * perIter).Round(time.Second))

	// Overhead decomposition of the pipelined chain, from Job.Stats():
	// summed task wall time split into schedule (executor queueing, RPC,
	// retries), compute, and shuffle (blocked reading input buckets).
	var agg core.OpStats
	var nOps int64
	for _, op := range pipeStats.Ops {
		if op.Func != "stagger" {
			continue
		}
		nOps++
		agg.Tasks += op.Tasks
		agg.WallNS += op.WallNS
		agg.ScheduleNS += op.ScheduleNS
		agg.ComputeNS += op.ComputeNS
		agg.ShuffleNS += op.ShuffleNS
		agg.InBytes += op.InBytes
		agg.OutBytes += op.OutBytes
	}
	perOpUS := func(ns int64) float64 {
		if nOps == 0 {
			return 0
		}
		return float64(ns) / float64(nOps) / float64(time.Microsecond)
	}
	share := func(ns int64) float64 {
		if agg.WallNS == 0 {
			return 0
		}
		return 100 * float64(ns) / float64(agg.WallNS)
	}
	fmt.Printf("\noverhead decomposition, pipelined straggler chain (%d ops, %d tasks):\n", nOps, agg.Tasks)
	fmt.Printf("  %-10s %14s %8s\n", "component", "per op", "share")
	fmt.Printf("  %-10s %13.0fus %7.1f%%\n", "schedule", perOpUS(agg.ScheduleNS), share(agg.ScheduleNS))
	fmt.Printf("  %-10s %13.0fus %7.1f%%\n", "compute", perOpUS(agg.ComputeNS), share(agg.ComputeNS))
	fmt.Printf("  %-10s %13.0fus %7.1f%%\n", "shuffle", perOpUS(agg.ShuffleNS), share(agg.ShuffleNS))
	fmt.Printf("  %-10s %13.0fus %7.1f%%\n", "wall", perOpUS(agg.WallNS), 100.0)

	// Residency ablation: the k-means assignment superstep with the
	// resident cache and pipelining each toggled. The invariant point
	// set shuffles once when resident; every warm iteration serves it
	// from the slaves' caches (docs/ITERATIVE.md discusses this table).
	resIters := *iterN
	if resIters > 30 {
		resIters = 30 // per-iteration cost stabilizes well before 30
	}
	var cells []residencyRun
	for _, cfg := range []struct{ resident, pipelined bool }{
		{false, false}, {false, true}, {true, false}, {true, true},
	} {
		cell, err := measureResidency(resIters, cfg.resident, cfg.pipelined)
		if err != nil {
			return err
		}
		cells = append(cells, cell)
	}
	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	fmt.Printf("\nresidency ablation (kmeans assign superstep, %d iters, %d slaves, 12k points):\n",
		resIters, *slaves)
	fmt.Printf("  %-9s %-9s %12s %12s %7s %7s %9s\n",
		"resident", "pipeline", "iter 1", "warm/iter", "hits", "misses", "hit rate")
	for _, cell := range cells {
		rate := "-"
		if cell.Hits+cell.Misses > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*cell.hitRate())
		}
		fmt.Printf("  %-9s %-9s %12s %12s %7d %7d %9s\n",
			onOff(cell.Resident), onOff(cell.Pipelined),
			cell.First.Round(time.Microsecond), cell.Warm.Round(time.Microsecond),
			cell.Hits, cell.Misses, rate)
	}
	residentOn, residentOff := cells[3], cells[1] // pipelined pair
	warmSpeedup := 0.0
	if residentOn.Warm > 0 {
		warmSpeedup = float64(residentOff.Warm) / float64(residentOn.Warm)
	}
	fmt.Printf("  warm per-iteration speedup (pipelined, resident on vs off): %.2fx\n", warmSpeedup)

	if *iterJSON != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"experiment":                    "iter",
			"slaves":                        *slaves,
			"iters":                         *iterN,
			"startup_ms":                    float64(startup) / float64(time.Millisecond),
			"per_op_waited_us":              float64(perIter) / float64(time.Microsecond),
			"per_op_straggler_pipelined_us": float64(perPipelined) / float64(time.Microsecond),
			"per_op_straggler_barriered_us": float64(perBarriered) / float64(time.Microsecond),
			"straggler_sleep_ms":            float64(staggerSleep) / float64(time.Millisecond),
			"pipeline_speedup":              speedup,
			"hadoop_per_op_ms_sim":          float64(hadoopOverhead) / float64(time.Millisecond),
			"overhead_ratio":                ratio,
			"tasks_traced":                  agg.Tasks,
			"per_op_schedule_us":            perOpUS(agg.ScheduleNS),
			"per_op_compute_us":             perOpUS(agg.ComputeNS),
			"per_op_shuffle_us":             perOpUS(agg.ShuffleNS),
			"per_op_wall_us":                perOpUS(agg.WallNS),
			"schedule_share_pct":            share(agg.ScheduleNS),
			"compute_share_pct":             share(agg.ComputeNS),
			"shuffle_share_pct":             share(agg.ShuffleNS),
			"residency_iters":               resIters,
			"resident_hits":                 residentOn.Hits,
			"resident_misses":               residentOn.Misses,
			"resident_hit_rate":             residentOn.hitRate(),
			"resident_on_first_iter_ms":     float64(residentOn.First) / float64(time.Millisecond),
			"resident_on_warm_iter_ms":      float64(residentOn.Warm) / float64(time.Millisecond),
			"resident_off_first_iter_ms":    float64(residentOff.First) / float64(time.Millisecond),
			"resident_off_warm_iter_ms":     float64(residentOff.Warm) / float64(time.Millisecond),
			"resident_warm_speedup":         warmSpeedup,
			"resident_on_iter_wall_ms":      iterWallMS(residentOn.IterWall),
			"resident_off_iter_wall_ms":     iterWallMS(residentOff.IterWall),
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*iterJSON, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\n(wrote %s)\n", *iterJSON)
	}
	return nil
}

// shuffleRegistry builds the fan-out workload for -exp shuffle: each
// map input expands into many small keyed records (no combiner, so the
// full volume crosses the wire), and the reduce counts values per key.
func shuffleRegistry(recsPerMap int) *core.Registry {
	reg := core.NewRegistry()
	reg.RegisterMap("fan", func(key, value []byte, emit kvio.Emitter) error {
		base, err := codec.DecodeVarint(key)
		if err != nil {
			return err
		}
		for j := 0; j < recsPerMap; j++ {
			k := fmt.Sprintf("k%06d", (int(base)*recsPerMap+j)%997)
			if err := emit.Emit([]byte(k), value); err != nil {
				return err
			}
		}
		return nil
	})
	reg.RegisterReduce("count", func(key []byte, values [][]byte, emit kvio.Emitter) error {
		return emit.Emit(key, codec.EncodeVarint(int64(len(values))))
	})
	return reg
}

// expShuffle measures the data-plane changes in isolation: a reduce
// whose every task fetches mapSplits input buckets over HTTP, swept
// across prefetch width {1, 8} x wire compression {off, on} x simulated
// per-fetch delay {0, -shuffle-rtt}. Reduce shuffle time comes from the
// job's per-op timing breakdown (time tasks spent blocked on input);
// raw-vs-wire bytes come from the obs counters the store maintains.
func expShuffle() error {
	const (
		mapSplits    = 16
		reduceSplits = 4
		recsPerMap   = 200
	)
	// A compressible but non-degenerate payload: repeated words, like
	// the text workloads the paper benchmarks, so compressors pay a
	// realistic match-finding cost instead of the all-zeros fast path.
	words := []string{"science", "compute", "cluster", "shuffle", "record",
		"block", "codec", "paper", "reduce", "emit", "varint", "bucket"}
	var payload []byte
	for i := 0; len(payload) < 256; i++ {
		payload = append(payload, words[(i*7+3)%len(words)]...)
		payload = append(payload, ' ')
	}

	type cfgT struct {
		width    int
		compress bool
		rtt      time.Duration
		codec    string
		recs     int // records per map split
	}
	var grid []cfgT
	for _, rtt := range []time.Duration{0, *shufRTT} {
		for _, compress := range []bool{false, true} {
			for _, width := range []int{1, 8} {
				grid = append(grid, cfgT{width, compress, rtt, "", recsPerMap})
			}
		}
	}
	// Codec sweep: the block data plane under each registered codec, at
	// sequential and parallel fetch widths, no simulated RTT, and a 20x
	// record volume so codec CPU rises above scheduling noise.
	for _, name := range []string{wirecodec.IdentityName, wirecodec.DeflateName, wirecodec.LZName} {
		for _, width := range []int{1, 8} {
			grid = append(grid, cfgT{width, false, 0, name, 20 * recsPerMap})
		}
	}

	var inputs []kvio.Pair
	for i := 0; i < mapSplits; i++ {
		inputs = append(inputs, kvio.Pair{Key: codec.EncodeVarint(int64(i)), Value: payload})
	}

	type rowT struct {
		Prefetch         int     `json:"prefetch"`
		Compress         bool    `json:"compress"`
		Codec            string  `json:"codec"`
		RecsPerMap       int     `json:"records_per_map"`
		RTTMeanMS        float64 `json:"rtt_mean_ms"`
		WallMS           float64 `json:"wall_ms"`
		CPUMS            float64 `json:"cpu_ms"`
		ReduceShuffleMS  float64 `json:"reduce_shuffle_ms_total"`
		ShufflePerTaskMS float64 `json:"reduce_shuffle_ms_per_task"`
		RawDirectBytes   int64   `json:"raw_direct_bytes"`
		WireDirectBytes  int64   `json:"wire_direct_bytes"`
		CodecWireBytes   int64   `json:"codec_wire_bytes"`
	}
	var rows []rowT

	fmt.Printf("M=%d map splits, R=%d reduce splits, %d records/map, %d slaves\n\n",
		mapSplits, reduceSplits, recsPerMap, *slaves)
	fmt.Printf("%-9s %-9s %-9s %-8s %12s %10s %16s %12s %12s\n",
		"prefetch", "compress", "codec", "rtt", "wall", "cpu", "shuffle(total)", "raw-bytes", "wire-bytes")
	for _, cfg := range grid {
		var inj *fault.Injector
		if cfg.rtt > 0 {
			// DelayRate 1 with MaxDelay = 2x the target mean: every data
			// fetch (and RPC) pays a deterministic uniform (0, 2rtt] delay.
			inj = fault.New(fault.Config{Seed: 7, DelayRate: 1, MaxDelay: 2 * cfg.rtt})
		}
		rt := obs.New(nil)
		c, err := cluster.Start(shuffleRegistry(cfg.recs), cluster.Options{
			Slaves:   *slaves,
			Prefetch: cfg.width,
			Compress: cfg.compress,
			Codec:    cfg.codec,
			Chaos:    inj,
			Obs:      rt,
		})
		if err != nil {
			return err
		}
		job := core.NewJobWith(c.Executor(), core.JobOptions{Pipeline: true, Obs: rt})
		src, err := job.LocalData(inputs, core.OpOpts{Splits: mapSplits, Partition: "roundrobin"})
		if err != nil {
			return err
		}
		start := time.Now()
		cpuBefore := processCPU()
		out, err := job.MapReduce(src, "fan", "count",
			core.OpOpts{Splits: mapSplits}, core.OpOpts{Splits: reduceSplits})
		if err == nil {
			_, err = out.Collect()
		}
		cpuUsed := processCPU() - cpuBefore
		wall := time.Since(start)
		stats := job.Stats()
		job.Close()
		c.Close()
		if err != nil {
			return err
		}

		var shuffleNS int64
		var tasks int64
		for _, op := range stats.Ops {
			if op.Func == "count" {
				shuffleNS += op.ShuffleNS
				tasks += op.Tasks
			}
		}
		snap := rt.M().Snapshot()
		row := rowT{
			Prefetch:        cfg.width,
			Compress:        cfg.compress,
			Codec:           cfg.codec,
			RecsPerMap:      cfg.recs,
			RTTMeanMS:       float64(cfg.rtt) / float64(time.Millisecond),
			WallMS:          float64(wall) / float64(time.Millisecond),
			CPUMS:           float64(cpuUsed) / float64(time.Millisecond),
			ReduceShuffleMS: float64(shuffleNS) / float64(time.Millisecond),
			RawDirectBytes:  snap[obs.MetricShuffleBytesDirect],
			WireDirectBytes: snap[obs.MetricWireBytesDirect],
		}
		if cfg.codec != "" {
			row.CodecWireBytes = snap[obs.MetricWireBytesCodec(cfg.codec)]
		}
		if tasks > 0 {
			row.ShufflePerTaskMS = row.ReduceShuffleMS / float64(tasks)
		}
		rows = append(rows, row)
		codecLabel := cfg.codec
		if codecLabel == "" {
			codecLabel = "-"
		}
		fmt.Printf("%-9d %-9v %-9s %-8s %12s %8.1fms %15.1fms %12d %12d\n",
			cfg.width, cfg.compress, codecLabel, cfg.rtt,
			wall.Round(time.Millisecond), row.CPUMS, row.ReduceShuffleMS,
			row.RawDirectBytes, row.WireDirectBytes)
	}

	// Headline numbers: prefetch speedup under simulated RTT (compression
	// off), and the wire saving from compression (no RTT needed).
	pick := func(width int, compress bool, rtt bool) rowT {
		for _, r := range rows {
			if r.Prefetch == width && r.Compress == compress && (r.RTTMeanMS > 0) == rtt {
				return r
			}
		}
		return rowT{}
	}
	seq, par := pick(1, false, true), pick(8, false, true)
	speedup := 0.0
	if par.ReduceShuffleMS > 0 {
		speedup = seq.ReduceShuffleMS / par.ReduceShuffleMS
	}
	comp := pick(1, true, false)
	saving := 0.0
	if comp.RawDirectBytes > 0 {
		saving = 100 * (1 - float64(comp.WireDirectBytes)/float64(comp.RawDirectBytes))
	}
	fmt.Printf("\nprefetch speedup (shuffle time, width 8 vs 1, rtt %s): %.2fx\n", *shufRTT, speedup)
	fmt.Printf("wire compression saving (direct path): %.1f%%\n", saving)

	// Codec headline: lz vs deflate, summed over both widths. The point
	// of the in-repo LZ codec is cheaper CPU at comparable wire savings.
	codecSum := func(name string) (cpu, wall float64, wire int64) {
		for _, r := range rows {
			if r.Codec == name {
				cpu += r.CPUMS
				wall += r.WallMS
				wire += r.WireDirectBytes
			}
		}
		return
	}
	lzCPU, lzWall, lzWire := codecSum(wirecodec.LZName)
	dfCPU, dfWall, dfWire := codecSum(wirecodec.DeflateName)
	cpuRatio := 0.0
	if lzCPU > 0 {
		cpuRatio = dfCPU / lzCPU
	}
	fmt.Printf("codec sweep: lz cpu %.1fms wall %.1fms wire %d | deflate cpu %.1fms wall %.1fms wire %d | deflate/lz cpu %.2fx\n",
		lzCPU, lzWall, lzWire, dfCPU, dfWall, dfWire, cpuRatio)

	colRows, colSpeedup, err := columnarSweep()
	if err != nil {
		return err
	}

	if *shufJSON != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"experiment":        "shuffle",
			"slaves":            *slaves,
			"map_splits":        mapSplits,
			"reduce_splits":     reduceSplits,
			"records_per_map":   recsPerMap,
			"rtt_mean_ms":       float64(*shufRTT) / float64(time.Millisecond),
			"rows":              rows,
			"prefetch_speedup":  speedup,
			"wire_saving_pct":   saving,
			"codec_cpu_ms":      map[string]float64{"lz": lzCPU, "deflate": dfCPU},
			"codec_wall_ms":     map[string]float64{"lz": lzWall, "deflate": dfWall},
			"lz_vs_deflate_cpu": cpuRatio,
			"columnar_rows":     colRows,
			// Headline: identity-codec sort-CPU ratio row/columnar-dict
			// on the repetitive-key text payload.
			"columnar_sort_speedup": colSpeedup,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*shufJSON, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\n(wrote %s)\n", *shufJSON)
	}
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{
			strconv.Itoa(r.Prefetch), strconv.FormatBool(r.Compress), r.Codec,
			strconv.FormatFloat(r.RTTMeanMS, 'g', 4, 64),
			strconv.FormatFloat(r.WallMS, 'g', 6, 64),
			strconv.FormatFloat(r.CPUMS, 'g', 6, 64),
			strconv.FormatFloat(r.ReduceShuffleMS, 'g', 6, 64),
			strconv.FormatInt(r.RawDirectBytes, 10),
			strconv.FormatInt(r.WireDirectBytes, 10),
		})
	}
	return writeCSV("shuffle", []string{
		"prefetch", "compress", "codec", "rtt_ms", "wall_ms", "cpu_ms", "reduce_shuffle_ms", "raw_bytes", "wire_bytes",
	}, csvRows)
}

// columnarRowT is one cell of the columnar block sweep: an in-process
// measurement over pre-encoded streams, so decode CPU (block parsing)
// and sort CPU (grouping in the shuffle sorter) are reported
// separately instead of folded into whole-job CPU.
type columnarRowT struct {
	Payload     string  `json:"payload"`
	Encoding    string  `json:"encoding"`
	Codec       string  `json:"codec"`
	Records     int     `json:"records"`
	WireBytes   int     `json:"wire_bytes"`
	DecodeCPUMS float64 `json:"decode_cpu_ms"`
	SortCPUMS   float64 `json:"sort_cpu_ms"`
}

// columnarSweep measures the columnar block format against row blocks:
// encoding {row, columnar-raw, columnar-dict, columnar-delta} x codec
// {identity, deflate, lz}, over a repetitive-key text payload (the
// word-count shape: few distinct keys, short values) and a k-means
// payload (tiny cluster-id keys, fixed-width vectors). Each cell
// reports the encoded stream size and, per full pass, the CPU to
// decode the blocks and the CPU to group them in the shuffle sorter —
// the reduce-side hot path. The headline ratio is identity-codec sort
// CPU, row vs columnar-dict, on the text payload: the columnar fast
// path resolves each dictionary entry to its group once per block, so
// repetitive keys skip the per-record hash-and-compare entirely.
func columnarSweep() ([]columnarRowT, float64, error) {
	words := []string{"science", "compute", "cluster", "shuffle", "record",
		"block", "codec", "paper", "reduce", "emit", "varint", "bucket"}
	var text []kvio.Pair
	for i := 0; i < 200_000; i++ {
		text = append(text, kvio.Pair{
			Key:   []byte(fmt.Sprintf("k%06d", i%997)),
			Value: []byte(words[i%len(words)]),
		})
	}
	vec := make([]byte, 64)
	for i := range vec {
		vec[i] = byte(i * 37)
	}
	var km []kvio.Pair
	for i := 0; i < 100_000; i++ {
		km = append(km, kvio.Pair{Key: codec.EncodeVarint(int64(i % 32)), Value: vec})
	}
	payloads := []struct {
		name  string
		pairs []kvio.Pair
	}{{"text", text}, {"kmeans", km}}

	const reps = 10
	var out []columnarRowT
	fmt.Printf("\ncolumnar sweep (%d decode+sort passes per cell):\n", reps)
	fmt.Printf("%-8s %-15s %-9s %12s %12s %12s\n",
		"payload", "encoding", "codec", "wire-bytes", "decode-cpu", "sort-cpu")
	for _, p := range payloads {
		for _, encName := range []string{kvio.EncRow, kvio.EncColumnarRaw, kvio.EncColumnarDict, kvio.EncColumnarDelta} {
			enc, err := kvio.ParseBlockEncoding(encName)
			if err != nil {
				return nil, 0, err
			}
			for _, codecName := range []string{wirecodec.IdentityName, wirecodec.DeflateName, wirecodec.LZName} {
				c, ok := wirecodec.Lookup(codecName)
				if !ok {
					return nil, 0, fmt.Errorf("unknown codec %q", codecName)
				}
				var buf bytes.Buffer
				bw := kvio.NewBlockWriterEnc(&buf, c, kvio.DefaultBlockSize, enc)
				for _, pr := range p.pairs {
					if err := bw.Write(pr); err != nil {
						return nil, 0, err
					}
				}
				if err := bw.Close(); err != nil {
					return nil, 0, err
				}
				stream := buf.Bytes()

				// One untimed decode retains the blocks so the sort
				// passes pay no parsing cost at all.
				var rowBlocks [][]byte
				var rowRecs []int
				var colBlocks []*kvio.ColumnarBlock
				decode := func(retain bool) error {
					br, err := kvio.NewBlockReader(bytes.NewReader(stream))
					if err != nil {
						return err
					}
					defer br.Release()
					for {
						rows, cb, recs, err := br.NextAny()
						if err == io.EOF {
							return nil
						}
						if err != nil {
							return err
						}
						if retain {
							if cb != nil {
								colBlocks = append(colBlocks, cb)
							} else {
								rowBlocks = append(rowBlocks, rows)
								rowRecs = append(rowRecs, recs)
							}
						}
					}
				}
				if err := decode(true); err != nil {
					return nil, 0, err
				}
				cpu0 := processCPU()
				for r := 0; r < reps; r++ {
					if err := decode(false); err != nil {
						return nil, 0, err
					}
				}
				decodeCPU := processCPU() - cpu0

				// Sort pass: feed the retained blocks and drain the
				// groups. Blocks are adopted by reference, never
				// mutated, so the same set feeds every pass.
				sortPass := func() error {
					s := shuffle.NewSorter(shuffle.Options{SpillBytes: 1 << 62})
					defer s.Close()
					for i, b := range rowBlocks {
						if _, err := s.AddBlock(b, rowRecs[i]); err != nil {
							return err
						}
					}
					for _, cb := range colBlocks {
						if _, err := s.AddColumnar(cb); err != nil {
							return err
						}
					}
					return s.Groups(func(key []byte, values [][]byte) error { return nil })
				}
				cpu0 = processCPU()
				for r := 0; r < reps; r++ {
					if err := sortPass(); err != nil {
						return nil, 0, err
					}
				}
				sortCPU := processCPU() - cpu0

				row := columnarRowT{
					Payload:     p.name,
					Encoding:    encName,
					Codec:       codecName,
					Records:     len(p.pairs),
					WireBytes:   len(stream),
					DecodeCPUMS: float64(decodeCPU) / float64(time.Millisecond) / reps,
					SortCPUMS:   float64(sortCPU) / float64(time.Millisecond) / reps,
				}
				out = append(out, row)
				fmt.Printf("%-8s %-15s %-9s %12d %10.2fms %10.2fms\n",
					row.Payload, row.Encoding, row.Codec, row.WireBytes,
					row.DecodeCPUMS, row.SortCPUMS)
			}
		}
	}

	pick := func(payload, encoding, codecName string) columnarRowT {
		for _, r := range out {
			if r.Payload == payload && r.Encoding == encoding && r.Codec == codecName {
				return r
			}
		}
		return columnarRowT{}
	}
	rowCell := pick("text", kvio.EncRow, wirecodec.IdentityName)
	dictCell := pick("text", kvio.EncColumnarDict, wirecodec.IdentityName)
	speedup := 0.0
	if dictCell.SortCPUMS > 0 {
		speedup = rowCell.SortCPUMS / dictCell.SortCPUMS
	}
	fmt.Printf("columnar sort speedup (text, identity, row vs columnar-dict): %.2fx (wire %d -> %d bytes)\n",
		speedup, rowCell.WireBytes, dictCell.WireBytes)
	return out, speedup, nil
}

// tenancyBenchRegistry: a map whose cost is a fixed sleep (so task
// duration is deterministic and the experiment measures scheduling,
// not CPU contention) and a counting reduce.
func tenancyBenchRegistry(taskCost time.Duration) *core.Registry {
	reg := core.NewRegistry()
	reg.RegisterMap("ten_spin", func(key, value []byte, emit kvio.Emitter) error {
		time.Sleep(taskCost)
		return emit.Emit(key, value)
	})
	reg.RegisterReduce("ten_count", func(key []byte, values [][]byte, emit kvio.Emitter) error {
		return emit.Emit(key, codec.EncodeVarint(int64(len(values))))
	})
	return reg
}

// expTenancy measures what multi-tenancy buys: the same fixed workload
// — a batch of heavy jobs plus one 1-task job submitted behind them —
// run against one fleet at MaxConcurrentJobs 1 (jobs serialized, the
// pre-tenancy behavior) and 4 (fair-share sharing). Reported per
// config: fleet makespan, aggregate task throughput, and the small
// job's submit-to-done latency — the headline being how fair share
// collapses small-job latency while leaving throughput intact.
func expTenancy() error {
	const (
		heavyJobs  = 3 // + the small job = 4 concurrent tenants at width 4
		heavyTasks = 24
		taskCost   = 10 * time.Millisecond
	)
	reg := tenancyBenchRegistry(taskCost)

	heavyInputs := make([]kvio.Pair, heavyTasks)
	for i := range heavyInputs {
		heavyInputs[i] = kvio.Pair{Key: codec.EncodeVarint(int64(i)), Value: []byte("x")}
	}
	smallInputs := []kvio.Pair{{Key: codec.EncodeVarint(0), Value: []byte("x")}}

	runProgram := func(job *core.Job, inputs []kvio.Pair, splits int) error {
		src, err := job.LocalData(inputs, core.OpOpts{Splits: splits, Partition: "roundrobin"})
		if err != nil {
			return err
		}
		out, err := job.Map(src, "ten_spin", core.OpOpts{Splits: splits})
		if err != nil {
			return err
		}
		pairs, err := out.Collect()
		if err != nil {
			return err
		}
		if len(pairs) != len(inputs) {
			return fmt.Errorf("tenancy job: %d records out, want %d", len(pairs), len(inputs))
		}
		return nil
	}

	type rowT struct {
		MaxConcurrent  int     `json:"max_concurrent_jobs"`
		HeavyJobs      int     `json:"heavy_jobs"`
		TasksTotal     int     `json:"tasks_total"`
		FleetWallMS    float64 `json:"fleet_wall_ms"`
		ThroughputTPS  float64 `json:"fleet_tasks_per_sec"`
		SmallLatencyMS float64 `json:"small_job_latency_ms"`
	}
	var rows []rowT

	fmt.Printf("%d heavy jobs x %d tasks (%s each) + one 1-task job, %d slaves x 2 slots\n\n",
		heavyJobs, heavyTasks, taskCost, *slaves)
	fmt.Printf("%-20s %12s %14s %18s\n", "max-concurrent-jobs", "fleet-wall", "tasks/sec", "small-job-latency")
	for _, maxJobs := range []int{1, 4} {
		c, err := cluster.Start(reg, cluster.Options{
			Slaves:            *slaves,
			MaxConcurrentJobs: maxJobs,
			SlaveConcurrency:  2,
		})
		if err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < heavyJobs; i++ {
			if _, err := c.Submit(fmt.Sprintf("heavy%d", i), core.JobOptions{Pipeline: true}, func(job *core.Job) error {
				return runProgram(job, heavyInputs, heavyTasks)
			}); err != nil {
				c.Close()
				return err
			}
		}
		smallStart := time.Now()
		small, err := c.Submit("small", core.JobOptions{Pipeline: true}, func(job *core.Job) error {
			return runProgram(job, smallInputs, 1)
		})
		if err != nil {
			c.Close()
			return err
		}
		if err := small.Wait(); err != nil {
			c.Close()
			return err
		}
		smallLatency := time.Since(smallStart)
		c.Jobs().WaitAll()
		wall := time.Since(start)
		c.Close()

		tasks := heavyJobs*heavyTasks + 1
		row := rowT{
			MaxConcurrent:  maxJobs,
			HeavyJobs:      heavyJobs,
			TasksTotal:     tasks,
			FleetWallMS:    float64(wall) / float64(time.Millisecond),
			SmallLatencyMS: float64(smallLatency) / float64(time.Millisecond),
		}
		if wall > 0 {
			row.ThroughputTPS = float64(tasks) / wall.Seconds()
		}
		rows = append(rows, row)
		fmt.Printf("%-20d %12s %14.1f %18s\n",
			maxJobs, wall.Round(time.Millisecond), row.ThroughputTPS, smallLatency.Round(time.Millisecond))
	}

	serialized, shared := rows[0], rows[1]
	latencyDrop := 0.0
	if shared.SmallLatencyMS > 0 {
		latencyDrop = serialized.SmallLatencyMS / shared.SmallLatencyMS
	}
	fmt.Printf("\nsmall-job latency, serialized vs shared fleet: %.1fx lower with 4 concurrent jobs\n", latencyDrop)

	if *tenJSON != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"experiment":              "tenancy",
			"slaves":                  *slaves,
			"heavy_jobs":              heavyJobs,
			"heavy_tasks_per_job":     heavyTasks,
			"task_cost_ms":            float64(taskCost) / float64(time.Millisecond),
			"rows":                    rows,
			"small_job_latency_ratio": latencyDrop,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*tenJSON, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\n(wrote %s)\n", *tenJSON)
	}
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{
			strconv.Itoa(r.MaxConcurrent),
			strconv.FormatFloat(r.FleetWallMS, 'g', 6, 64),
			strconv.FormatFloat(r.ThroughputTPS, 'g', 6, 64),
			strconv.FormatFloat(r.SmallLatencyMS, 'g', 6, 64),
		})
	}
	return writeCSV("tenancy", []string{
		"max_concurrent_jobs", "fleet_wall_ms", "tasks_per_sec", "small_job_latency_ms",
	}, csvRows)
}

// recoveryWorkload runs the EXP-TENANCY heavy batch (3 jobs x 24 tasks
// of fixed 10ms cost on a shared fleet) against a cluster with or
// without a journal and returns the fleet makespan.
func recoveryWorkload(journalDir string) (time.Duration, error) {
	const (
		heavyJobs  = 3
		heavyTasks = 24
		taskCost   = 10 * time.Millisecond
	)
	reg := tenancyBenchRegistry(taskCost)
	inputs := make([]kvio.Pair, heavyTasks)
	for i := range inputs {
		inputs[i] = kvio.Pair{Key: codec.EncodeVarint(int64(i)), Value: []byte("x")}
	}
	c, err := cluster.Start(reg, cluster.Options{
		Slaves:            *slaves,
		MaxConcurrentJobs: 4,
		SlaveConcurrency:  2,
		JournalDir:        journalDir,
	})
	if err != nil {
		return 0, err
	}
	defer c.Close()
	start := time.Now()
	for i := 0; i < heavyJobs; i++ {
		if _, err := c.Submit(fmt.Sprintf("heavy%d", i), core.JobOptions{Pipeline: true}, func(job *core.Job) error {
			src, err := job.LocalData(inputs, core.OpOpts{Splits: heavyTasks, Partition: "roundrobin"})
			if err != nil {
				return err
			}
			out, err := job.Map(src, "ten_spin", core.OpOpts{Splits: heavyTasks})
			if err != nil {
				return err
			}
			pairs, err := out.Collect()
			if err != nil {
				return err
			}
			if len(pairs) != heavyTasks {
				return fmt.Errorf("recovery workload: %d records out, want %d", len(pairs), heavyTasks)
			}
			return nil
		}); err != nil {
			return 0, err
		}
	}
	c.Jobs().WaitAll()
	return time.Since(start), nil
}

// syntheticJournal writes the journal of a long-lived master: a
// sequence of jobs of 64 tasks each, every job run to completion, for
// n task completions in total. It abandons the journal (no final
// checkpoint) so a subsequent Open replays what a recovering master
// would. checkpointRecords follows journal.Options semantics (negative
// disables compaction; Open then replays every event ever written).
func syntheticJournal(dir string, n, checkpointRecords int) error {
	const tasksPerJob = 64
	j, _, err := journal.Open(dir, journal.Options{CheckpointRecords: checkpointRecords})
	if err != nil {
		return err
	}
	job := int64(0)
	for i := 0; i < n; i++ {
		if i%tasksPerJob == 0 {
			job++
			ev := journal.Event{Kind: journal.EvJobSubmitted, Job: job, Name: "bench", SpecHash: journal.SpecHash("bench", true)}
			if err := j.Append(ev); err != nil {
				return err
			}
		}
		ev := journal.Event{
			Kind:    journal.EvTaskDone,
			Job:     job,
			Dataset: 1,
			Task:    i % tasksPerJob,
			Outputs: []journal.Manifest{{Name: fmt.Sprintf("b%d", i), URL: fmt.Sprintf("file:///tmp/b%d", i), Records: 100, Bytes: 4096}},
			InBytes: 4096,
		}
		if err := j.Append(ev); err != nil {
			return err
		}
		if i%tasksPerJob == tasksPerJob-1 {
			if err := j.Append(journal.Event{Kind: journal.EvJobDone, Job: job}); err != nil {
				return err
			}
		}
	}
	j.Abandon()
	return nil
}

// expRecovery quantifies what durability costs and what recovery
// saves: the journal's overhead on the EXP-TENANCY fleet throughput
// (<3% is the acceptance target), and how replay latency scales with
// journal size — with compaction disabled (worst case) and with the
// default record-count checkpointing that bounds the tail a restart
// must replay.
func expRecovery() error {
	reps := *recReps
	if reps < 1 {
		reps = 1
	}
	fmt.Printf("journal overhead on the EXP-TENANCY workload (%d interleaved reps, best-of):\n\n", reps)
	// One throwaway run warms the scheduler and page cache; then the
	// configs alternate so drift hits both equally, and best-of-reps
	// discards scheduling noise.
	if _, err := recoveryWorkload(""); err != nil {
		return err
	}
	var wallOff, wallOn time.Duration
	for r := 0; r < reps; r++ {
		off, err := recoveryWorkload("")
		if err != nil {
			return err
		}
		if wallOff == 0 || off < wallOff {
			wallOff = off
		}
		dir, err := os.MkdirTemp("", "mrs-bench-journal-*")
		if err != nil {
			return err
		}
		on, err := recoveryWorkload(dir)
		os.RemoveAll(dir)
		if err != nil {
			return err
		}
		if wallOn == 0 || on < wallOn {
			wallOn = on
		}
	}
	overheadPct := 100 * (float64(wallOn) - float64(wallOff)) / float64(wallOff)
	fmt.Printf("%-28s %12s\n", "config", "fleet-wall")
	fmt.Printf("%-28s %12s\n", "journal off", wallOff.Round(time.Millisecond))
	fmt.Printf("%-28s %12s\n", "journal on", wallOn.Round(time.Millisecond))
	fmt.Printf("%-28s %11.2f%%   (target: < 3%%)\n", "overhead", overheadPct)

	type replayRow struct {
		Events      int     `json:"events"`
		Compacted   bool    `json:"compacted"`
		OpenMS      float64 `json:"open_ms"`
		EventsPerMS float64 `json:"events_per_ms"`
	}
	var replay []replayRow
	fmt.Printf("\nreplay latency vs journal size (master restart cost):\n\n")
	fmt.Printf("%-10s %-11s %12s %14s\n", "events", "compacted", "open-time", "events/ms")
	for _, cfg := range []struct {
		n          int
		checkpoint int
	}{
		{1000, -1}, {10000, -1}, {50000, -1}, // compaction off: full replay
		{50000, 0}, // default checkpointing: bounded tail
	} {
		dir, err := os.MkdirTemp("", "mrs-bench-replay-*")
		if err != nil {
			return err
		}
		if err := syntheticJournal(dir, cfg.n, cfg.checkpoint); err != nil {
			os.RemoveAll(dir)
			return err
		}
		start := time.Now()
		j, st, err := journal.Open(dir, journal.Options{})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		open := time.Since(start)
		var got int64
		for _, jr := range st.Jobs {
			got += jr.TasksDone
		}
		if got != int64(cfg.n) {
			j.Abandon()
			os.RemoveAll(dir)
			return fmt.Errorf("replay recovered %d completions, want %d", got, cfg.n)
		}
		j.Abandon()
		os.RemoveAll(dir)
		row := replayRow{
			Events:    cfg.n,
			Compacted: cfg.checkpoint >= 0,
			OpenMS:    float64(open) / float64(time.Millisecond),
		}
		if row.OpenMS > 0 {
			row.EventsPerMS = float64(cfg.n) / row.OpenMS
		}
		replay = append(replay, row)
		fmt.Printf("%-10d %-11v %12s %14.0f\n", cfg.n, row.Compacted, open.Round(time.Microsecond), row.EventsPerMS)
	}
	fmt.Println("\nshape check: uncompacted replay is linear in journal size; with the")
	fmt.Println("default checkpointing the restart replays checkpoint + a bounded tail,")
	fmt.Println("so recovery latency stays flat no matter how long the master ran.")

	if *recJSON != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"experiment":           "recovery",
			"slaves":               *slaves,
			"reps":                 reps,
			"wall_off_ms":          float64(wallOff) / float64(time.Millisecond),
			"wall_on_ms":           float64(wallOn) / float64(time.Millisecond),
			"journal_overhead_pct": overheadPct,
			"overhead_target_pct":  3.0,
			"replay":               replay,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*recJSON, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\n(wrote %s)\n", *recJSON)
	}
	return nil
}

// fleetRegistry builds the EXP-FLEET workload: a map whose cost is a
// fixed sleep (sleeping slaves cost no CPU, so 64 of them fit on a
// laptop and the measurement isolates control-plane throughput), with
// an optional one-shot straggler — the first execution of key 0 in
// each cluster's lifetime stalls.
func fleetRegistry(taskCost, stall time.Duration) *core.Registry {
	reg := core.NewRegistry()
	var stalled int32
	reg.RegisterMap("fleet_spin", func(key, value []byte, emit kvio.Emitter) error {
		d := taskCost
		if stall > 0 {
			if n, err := codec.DecodeVarint(key); err == nil && n == 0 &&
				atomic.CompareAndSwapInt32(&stalled, 0, 1) {
				d = stall
			}
		}
		time.Sleep(d)
		return emit.Emit(key, value)
	})
	return reg
}

// fleetRun boots one fleet configuration, drives tasksPerSlave x
// slaves one-record map tasks through it, and returns the job wall
// time (boot and teardown excluded) plus the run's metric snapshot.
func fleetRun(slaveN, subMasters int, specFactor float64, tasksPerSlave int, taskCost, stall time.Duration) (time.Duration, map[string]int64, error) {
	rt := obs.New(nil)
	c, err := cluster.Start(fleetRegistry(taskCost, stall), cluster.Options{
		Slaves:                slaveN,
		SubMasters:            subMasters,
		SpeculationFactor:     specFactor,
		SpeculationMinRuntime: 60 * time.Millisecond,
		Obs:                   rt,
	})
	if err != nil {
		return 0, nil, err
	}
	defer c.Close()
	job := core.NewJobWith(c.Executor(), core.JobOptions{Pipeline: true, Obs: rt})
	defer job.Close()
	tasks := tasksPerSlave * slaveN
	inputs := make([]kvio.Pair, tasks)
	for i := range inputs {
		inputs[i] = kvio.Pair{Key: codec.EncodeVarint(int64(i)), Value: []byte("x")}
	}
	src, err := job.LocalData(inputs, core.OpOpts{Splits: tasks, Partition: "roundrobin"})
	if err != nil {
		return 0, nil, err
	}
	if err := src.Wait(); err != nil {
		return 0, nil, err
	}
	start := time.Now()
	out, err := job.Map(src, "fleet_spin", core.OpOpts{Splits: 1})
	if err != nil {
		return 0, nil, err
	}
	// Time through Wait (every task done), not Collect: collection
	// drags each output bucket to the driver one HTTP fetch at a time,
	// which would swamp the control-plane signal at 64 slaves.
	if err := out.Wait(); err != nil {
		return 0, nil, err
	}
	wall := time.Since(start)
	pairs, err := out.Collect()
	if err != nil {
		return 0, nil, err
	}
	if len(pairs) != tasks {
		return 0, nil, fmt.Errorf("fleet run: %d records out, want %d", len(pairs), tasks)
	}
	return wall, rt.M().Snapshot(), nil
}

// fleetSubMasters is the tree shape the sweep uses: one sub-master
// per eight slaves, at least one.
func fleetSubMasters(slaveN int) int {
	if k := slaveN / 8; k > 1 {
		return k
	}
	return 1
}

// expFleet measures what the hierarchical control plane and
// speculative execution buy, on simulated (sleep-cost) slaves so the
// fleet sizes stay laptop-runnable:
//
//   - Scaling sweep: {1,4,16,64} slaves x {flat star, sub-master tree}
//     x {speculation off, on}, each pushing tasksPerSlave fixed-cost
//     tasks per slave. Throughput should scale near-linearly with the
//     tree (the acceptance bar is within 20% of linear from 16 to 64),
//     and uniform-duration speculation should cost ~nothing.
//   - Straggler rescue: a mid-size tree fleet where one task stalls
//     ~10x the normal cost, speculation off vs on. Off pays the full
//     stall; on re-executes the straggler elsewhere and the job
//     finishes early.
func expFleet() error {
	// taskCost is sized so the aggregate completion rate at 64 slaves
	// (64/taskCost = 320 tasks/s) stays well inside what one core can
	// route through the XML-RPC control plane (~1k tasks/s): the sweep
	// should measure how assignment scales with fleet size, not the
	// simulating machine's RPC ceiling.
	const (
		tasksPerSlave = 6
		taskCost      = 200 * time.Millisecond
		stall         = 2 * time.Second
		specFactor    = 2.0
	)
	type rowT struct {
		Slaves       int     `json:"slaves"`
		SubMasters   int     `json:"submasters"`
		Speculation  float64 `json:"speculation_factor"`
		Tasks        int     `json:"tasks"`
		WallMS       float64 `json:"wall_ms"`
		TasksPerSec  float64 `json:"tasks_per_sec"`
		BatchReports int64   `json:"batch_reports"`
		Speculative  int64   `json:"speculative_attempts"`
	}
	var rows []rowT

	fmt.Printf("scaling sweep: %d tasks/slave x %s/task (sleep-cost, so slaves are cheap to simulate)\n\n",
		tasksPerSlave, taskCost)
	fmt.Printf("%-8s %-12s %-12s %8s %12s %12s\n",
		"slaves", "submasters", "speculation", "tasks", "wall", "tasks/sec")
	for _, n := range []int{1, 4, 16, 64} {
		for _, tree := range []bool{false, true} {
			for _, spec := range []bool{false, true} {
				subs := 0
				if tree {
					subs = fleetSubMasters(n)
				}
				factor := 0.0
				if spec {
					factor = specFactor
				}
				wall, snap, err := fleetRun(n, subs, factor, tasksPerSlave, taskCost, 0)
				if err != nil {
					return err
				}
				tasks := tasksPerSlave * n
				row := rowT{
					Slaves:       n,
					SubMasters:   subs,
					Speculation:  factor,
					Tasks:        tasks,
					WallMS:       float64(wall) / float64(time.Millisecond),
					BatchReports: snap[obs.MetricMasterBatchReports],
					Speculative:  snap[obs.MetricSchedSpeculative],
				}
				if wall > 0 {
					row.TasksPerSec = float64(tasks) / wall.Seconds()
				}
				rows = append(rows, row)
				fmt.Printf("%-8d %-12d %-12.1f %8d %12s %12.1f\n",
					n, subs, factor, tasks, wall.Round(time.Millisecond), row.TasksPerSec)
			}
		}
	}

	// Headline: how close the 16 -> 64 throughput step is to the ideal
	// 4x, with the tree and without (speculation off in both).
	pick := func(n int, tree bool) rowT {
		for _, r := range rows {
			if r.Slaves == n && (r.SubMasters > 0) == tree && r.Speculation == 0 {
				return r
			}
		}
		return rowT{}
	}
	linFrac := func(tree bool) float64 {
		lo, hi := pick(16, tree), pick(64, tree)
		if lo.TasksPerSec == 0 {
			return 0
		}
		return hi.TasksPerSec / lo.TasksPerSec / 4.0
	}
	treeFrac, flatFrac := linFrac(true), linFrac(false)
	fmt.Printf("\n16->64 slave throughput scaling (1.0 = perfectly linear): tree %.2f, flat %.2f (target: tree >= 0.80)\n",
		treeFrac, flatFrac)

	// Straggler rescue at 16 slaves under the tree: one task stalls
	// 40x; speculation off waits it out, on re-executes it elsewhere.
	const stragglerSlaves = 16
	fmt.Printf("\nstraggler rescue (%d slaves, %d sub-masters, one task stalls %s):\n\n",
		stragglerSlaves, fleetSubMasters(stragglerSlaves), stall)
	specRows := map[string]rowT{}
	for _, spec := range []bool{false, true} {
		factor := 0.0
		if spec {
			factor = specFactor
		}
		wall, snap, err := fleetRun(stragglerSlaves, fleetSubMasters(stragglerSlaves), factor,
			tasksPerSlave, taskCost, stall)
		if err != nil {
			return err
		}
		row := rowT{
			Slaves:      stragglerSlaves,
			SubMasters:  fleetSubMasters(stragglerSlaves),
			Speculation: factor,
			Tasks:       tasksPerSlave * stragglerSlaves,
			WallMS:      float64(wall) / float64(time.Millisecond),
			Speculative: snap[obs.MetricSchedSpeculative],
		}
		key := "off"
		if spec {
			key = "on"
		}
		specRows[key] = row
		fmt.Printf("speculation %-4s wall %12s speculative attempts %d\n",
			key, wall.Round(time.Millisecond), row.Speculative)
	}
	rescue := 0.0
	if on := specRows["on"]; on.WallMS > 0 {
		rescue = specRows["off"].WallMS / on.WallMS
	}
	fmt.Printf("\nstraggler-wait reduction with speculation: %.2fx\n", rescue)

	if *fltJSON != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"experiment":                 "fleet",
			"tasks_per_slave":            tasksPerSlave,
			"task_cost_ms":               float64(taskCost) / float64(time.Millisecond),
			"stall_ms":                   float64(stall) / float64(time.Millisecond),
			"rows":                       rows,
			"linear_16_to_64_tree":       treeFrac,
			"linear_16_to_64_flat":       flatFrac,
			"linear_target":              0.80,
			"straggler_wall_off_ms":      specRows["off"].WallMS,
			"straggler_wall_on_ms":       specRows["on"].WallMS,
			"straggler_rescue_speedup":   rescue,
			"straggler_spec_attempts_on": specRows["on"].Speculative,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*fltJSON, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\n(wrote %s)\n", *fltJSON)
	}
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{
			strconv.Itoa(r.Slaves), strconv.Itoa(r.SubMasters),
			strconv.FormatFloat(r.Speculation, 'g', 4, 64),
			strconv.Itoa(r.Tasks),
			strconv.FormatFloat(r.WallMS, 'g', 6, 64),
			strconv.FormatFloat(r.TasksPerSec, 'g', 6, 64),
		})
	}
	return writeCSV("fleet", []string{
		"slaves", "submasters", "speculation_factor", "tasks", "wall_ms", "tasks_per_sec",
	}, csvRows)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
