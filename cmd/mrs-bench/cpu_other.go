//go:build !unix

package main

import "time"

// processCPU is unavailable off unix; codec CPU columns read 0 there.
func processCPU() time.Duration { return 0 }
