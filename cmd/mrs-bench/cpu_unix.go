//go:build unix

package main

import (
	"syscall"
	"time"
)

// processCPU returns the process's cumulative user+system CPU time.
// The shuffle codec sweep reports deltas of this around each run: the
// whole cluster is in-process, so the delta captures the codec's
// compress/decompress cost alongside the (constant) job work.
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	toDur := func(tv syscall.Timeval) time.Duration {
		return time.Duration(tv.Sec)*time.Second + time.Duration(tv.Usec)*time.Microsecond
	}
	return toDur(ru.Utime) + toDur(ru.Stime)
}
