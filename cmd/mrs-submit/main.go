// mrs-submit reproduces the subjective evaluation of §V-A: it emits
// the PBS startup scripts for a mrs job (Program 3) and a Hadoop job
// (Program 4), the WordCount sources (Programs 1 and 2), and the
// quantified comparison tables.
//
//	mrs-submit                 # comparison tables
//	mrs-submit -scripts        # also print both startup scripts
//	mrs-submit -programs       # also print both WordCount programs
//	mrs-submit -nodes 21 -stage-gb 4 -files 31173
//
// With -journal it instead runs a durable wordcount job over the
// argument files on an embedded local cluster, journaling job state so
// an interrupted run can be picked up where it left off:
//
//	mrs-submit -journal /tmp/j data/*.txt             # submit
//	mrs-submit -journal /tmp/j -list-jobs             # inspect the journal
//	mrs-submit -journal /tmp/j -resume 1 data/*.txt   # resume job 1
//
// A resume must re-offer the same input files: the journal replays
// completed tasks by position in the deterministic task sequence, so a
// changed program would produce a mismatched spec hash and be refused.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/kvio"
	"repro/internal/master"
	"repro/internal/pbs"
	"repro/internal/wordcount"
)

var (
	nodes        = flag.Int("nodes", 8, "allocation size in nodes")
	stageGB      = flag.Float64("stage-gb", 1, "gigabytes staged into HDFS (Hadoop only)")
	files        = flag.Int("files", 1000, "input file count")
	showScripts  = flag.Bool("scripts", false, "print both startup scripts")
	showPrograms = flag.Bool("programs", false, "print both WordCount programs")

	journalDir = flag.String("journal", "", "journal directory: run a durable wordcount job over the argument files")
	resumeID   = flag.Int64("resume", 0, "resume the journaled job with this id instead of submitting a new one (requires -journal)")
	listJobs   = flag.Bool("list-jobs", false, "list the jobs recorded in -journal and exit")
	jobSlaves  = flag.Int("slaves", 2, "embedded cluster size for -journal runs")
)

func main() {
	flag.Parse()
	if *journalDir != "" {
		if err := jobMode(); err != nil {
			fmt.Fprintf(os.Stderr, "mrs-submit: %v\n", err)
			os.Exit(1)
		}
		return
	}
	cmp := pbs.Compare(*nodes, int64(*stageGB*float64(1<<30)), *files)

	fmt.Println("== Startup comparison (Programs 3 & 4; EXP-SCRIPT) ==")
	fmt.Println()
	fmt.Print(cmp.String())
	fmt.Println()

	prog := pbs.NewProgramComparison()
	fmt.Println("== Program comparison (Programs 1 & 2; EXP-PROG) ==")
	fmt.Println()
	fmt.Print(prog.String())

	if *showScripts {
		fmt.Println()
		fmt.Println("---- mrs startup script ----")
		fmt.Println(cmp.Mrs.Text)
		fmt.Println("---- hadoop startup script ----")
		fmt.Println(cmp.Hadoop.Text)
	}
	if *showPrograms {
		fmt.Println()
		fmt.Println("---- WordCount in mrs-go ----")
		fmt.Println(prog.MrsSource)
		fmt.Println("---- WordCount in Hadoop/Java ----")
		fmt.Println(prog.HadoopSource)
	}
}

// jobMode serves -journal: list the journal's jobs, or run (submit or
// resume) a wordcount job over the argument files with durable state.
func jobMode() error {
	if *listJobs {
		return printJobs()
	}
	paths := flag.Args()
	if len(paths) == 0 {
		return fmt.Errorf("-journal needs input files as arguments (or -list-jobs)")
	}
	reg := core.NewRegistry()
	wordcount.Register(reg)
	// The shared data dir lives next to the journal so completed tasks'
	// bucket manifests survive a process restart and recovery can
	// re-advertise them instead of re-running the work.
	sharedDir := filepath.Join(*journalDir, "shared")
	if err := os.MkdirAll(sharedDir, 0o755); err != nil {
		return err
	}
	c, err := cluster.Start(reg, cluster.Options{
		Slaves:     *jobSlaves,
		SharedDir:  sharedDir,
		JournalDir: *journalDir,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	var pairs []kvio.Pair
	driver := func(job *core.Job) error {
		out, err := wordcount.Run(job, paths, wordcount.Options{
			MapSplits:    *jobSlaves * 2,
			ReduceSplits: *jobSlaves,
		})
		if err != nil {
			return err
		}
		pairs, err = out.Collect()
		return err
	}

	var mj *master.ManagedJob
	if *resumeID != 0 {
		mj, err = c.Jobs().Resume(core.JobID(*resumeID), "wordcount", core.JobOptions{Pipeline: true}, driver)
		if err != nil {
			return fmt.Errorf("resume job %d: %w", *resumeID, err)
		}
		fmt.Printf("resumed job %d over %d files\n", *resumeID, len(paths))
	} else {
		mj, err = c.Jobs().Submit("wordcount", core.JobOptions{Pipeline: true}, driver)
		if err != nil {
			return err
		}
		fmt.Printf("submitted job %d over %d files (resume with -resume %d if interrupted)\n",
			mj.ID(), len(paths), mj.ID())
	}
	if err := mj.Wait(); err != nil {
		return fmt.Errorf("job %d: %w", mj.ID(), err)
	}

	var total int64
	for _, p := range pairs {
		n, err := codec.DecodeVarint(p.Value)
		if err != nil {
			return err
		}
		total += n
	}
	fmt.Printf("job %d done: %d distinct words, %d total\n", mj.ID(), len(pairs), total)
	return nil
}

// printJobs renders the journal's folded job table without taking the
// journal lock, so it works while a master is live.
func printJobs() error {
	st, err := journal.Inspect(*journalDir)
	if err != nil {
		return err
	}
	if len(st.Jobs) == 0 {
		fmt.Println("journal holds no jobs")
		return nil
	}
	ids := make([]int64, 0, len(st.Jobs))
	for id := range st.Jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Printf("%-6s %-16s %-9s %10s %14s  %s\n", "job", "name", "state", "tasks-done", "shuffle-bytes", "error")
	for _, id := range ids {
		jr := st.Jobs[id]
		fmt.Printf("%-6d %-16s %-9s %10d %14d  %s\n", jr.ID, jr.Name, jr.State, jr.TasksDone, jr.ShuffleBytes, jr.Error)
		if len(jr.NodeTasks) > 0 {
			fmt.Printf("       per node: %s\n", nodeTaskSummary(jr.NodeTasks))
		}
	}
	return nil
}

// nodeTaskSummary renders a job's per-node completion counts, busiest
// node first. Under a hierarchical control plane the node is the
// reporting sub-master, so the line shows how work spread over the
// shards rather than over individual slaves.
func nodeTaskSummary(counts map[string]int64) string {
	type nc struct {
		node string
		n    int64
	}
	rows := make([]nc, 0, len(counts))
	for node, n := range counts {
		rows = append(rows, nc{node, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].node < rows[j].node
	})
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = fmt.Sprintf("%s=%d", r.node, r.n)
	}
	return strings.Join(parts, " ")
}
