// mrs-submit reproduces the subjective evaluation of §V-A: it emits
// the PBS startup scripts for a mrs job (Program 3) and a Hadoop job
// (Program 4), the WordCount sources (Programs 1 and 2), and the
// quantified comparison tables.
//
//	mrs-submit                 # comparison tables
//	mrs-submit -scripts        # also print both startup scripts
//	mrs-submit -programs       # also print both WordCount programs
//	mrs-submit -nodes 21 -stage-gb 4 -files 31173
package main

import (
	"flag"
	"fmt"

	"repro/internal/pbs"
)

var (
	nodes        = flag.Int("nodes", 8, "allocation size in nodes")
	stageGB      = flag.Float64("stage-gb", 1, "gigabytes staged into HDFS (Hadoop only)")
	files        = flag.Int("files", 1000, "input file count")
	showScripts  = flag.Bool("scripts", false, "print both startup scripts")
	showPrograms = flag.Bool("programs", false, "print both WordCount programs")
)

func main() {
	flag.Parse()
	cmp := pbs.Compare(*nodes, int64(*stageGB*float64(1<<30)), *files)

	fmt.Println("== Startup comparison (Programs 3 & 4; EXP-SCRIPT) ==")
	fmt.Println()
	fmt.Print(cmp.String())
	fmt.Println()

	prog := pbs.NewProgramComparison()
	fmt.Println("== Program comparison (Programs 1 & 2; EXP-PROG) ==")
	fmt.Println()
	fmt.Print(prog.String())

	if *showScripts {
		fmt.Println()
		fmt.Println("---- mrs startup script ----")
		fmt.Println(cmp.Mrs.Text)
		fmt.Println("---- hadoop startup script ----")
		fmt.Println(cmp.Hadoop.Text)
	}
	if *showPrograms {
		fmt.Println()
		fmt.Println("---- WordCount in mrs-go ----")
		fmt.Println(prog.MrsSource)
		fmt.Println("---- WordCount in Hadoop/Java ----")
		fmt.Println(prog.HadoopSource)
	}
}
