// mrs-launch starts a mrs program as one master process plus N slave
// processes on the local machine — the private-cluster launcher of
// §IV ("the script for private clusters starts the master and uses
// pssh to start slaves"), with fork/exec standing in for ssh. The
// master's address travels through a port file, exactly as in
// Program 3.
//
//	go build -o /tmp/wc ./examples/wordcount
//	mrs-launch -n 4 /tmp/wc -files 300
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

var (
	n       = flag.Int("n", 2, "number of slave processes")
	timeout = flag.Duration("timeout", 30*time.Second, "how long to wait for the port file")
	shared  = flag.String("shared", "", "shared directory for filesystem-staged data (optional)")
)

func main() {
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: mrs-launch [-n slaves] <program> [program args...]")
		os.Exit(2)
	}
	if err := launch(flag.Arg(0), flag.Args()[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "mrs-launch: %v\n", err)
		os.Exit(1)
	}
}

func launch(bin string, args []string) error {
	dir, err := os.MkdirTemp("", "mrs-launch-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	portFile := filepath.Join(dir, "master.port")

	// Start the master (the user's program in master mode).
	masterArgs := append([]string{
		"-mrs=master",
		"-mrs-portfile=" + portFile,
		fmt.Sprintf("-mrs-min-slaves=%d", *n),
	}, args...)
	if *shared != "" {
		masterArgs = append([]string{"-mrs-shared=" + *shared}, masterArgs...)
	}
	master := exec.Command(bin, masterArgs...)
	master.Stdout = os.Stdout
	master.Stderr = os.Stderr
	if err := master.Start(); err != nil {
		return fmt.Errorf("starting master: %w", err)
	}

	// Wait for the port file (Program 3, step 3).
	addr, err := waitPortFile(portFile, *timeout)
	if err != nil {
		master.Process.Kill()
		master.Wait()
		return err
	}
	fmt.Fprintf(os.Stderr, "mrs-launch: master at %s; starting %d slaves\n", addr, *n)

	// Start the slaves (Program 3, step 4 — pssh/pbsdsh equivalent).
	slaves := make([]*exec.Cmd, *n)
	for i := range slaves {
		slaveArgs := append([]string{"-mrs=slave", "-mrs-master=" + addr}, args...)
		if *shared != "" {
			slaveArgs = append([]string{"-mrs-shared=" + *shared}, slaveArgs...)
		}
		s := exec.Command(bin, slaveArgs...)
		s.Stdout = os.Stderr // keep program output (master stdout) clean
		s.Stderr = os.Stderr
		if err := s.Start(); err != nil {
			master.Process.Kill()
			return fmt.Errorf("starting slave %d: %w", i, err)
		}
		slaves[i] = s
	}

	masterErr := master.Wait()
	// Slaves exit on their own when the master tells them to shut down.
	for i, s := range slaves {
		if err := s.Wait(); err != nil && masterErr == nil {
			fmt.Fprintf(os.Stderr, "mrs-launch: slave %d: %v\n", i, err)
		}
	}
	return masterErr
}

func waitPortFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		data, err := os.ReadFile(path)
		if err == nil && len(data) > 0 {
			return strings.TrimSpace(string(data)), nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("port file %s did not appear within %v", path, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
