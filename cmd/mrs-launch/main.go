// mrs-launch starts a mrs program as one master process plus N slave
// processes on the local machine — the private-cluster launcher of
// §IV ("the script for private clusters starts the master and uses
// pssh to start slaves"), with fork/exec standing in for ssh. The
// master's address travels through a port file, exactly as in
// Program 3.
//
//	go build -o /tmp/wc ./examples/wordcount
//	mrs-launch -n 4 /tmp/wc -files 300
//
// With -submasters the launcher builds the hierarchical control plane
// instead of the flat star: it starts that many sub-master processes
// against the master, waits for each one's port file, and points the
// slaves at the sub-masters round-robin, so the master only ever
// talks to the middle tier:
//
//	mrs-launch -n 16 -submasters 4 /tmp/wc -files 300
//
// -drain speaks to an already-running master instead of launching
// anything: it takes one node (by id or advertised address, as shown
// by the master's /debug/status page) out of rotation, requeuing its
// leases immediately, and exits:
//
//	mrs-launch -master 10.0.0.1:40123 -drain 10.0.0.7:40200
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/rpcproto"
	"repro/internal/xmlrpc"
)

var (
	n          = flag.Int("n", 2, "number of slave processes")
	submasters = flag.Int("submasters", 0, "sub-master processes to interpose between master and slaves (0 = flat star)")
	timeout    = flag.Duration("timeout", 30*time.Second, "how long to wait for each port file")
	shared     = flag.String("shared", "", "shared directory for filesystem-staged data (optional)")
	masterAddr = flag.String("master", "", "running master's host:port (for -drain)")
	drain      = flag.String("drain", "", "drain this node (id or address) out of the -master fleet and exit")
)

func main() {
	flag.Parse()
	if *drain != "" {
		if err := drainNode(*masterAddr, *drain); err != nil {
			fmt.Fprintf(os.Stderr, "mrs-launch: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: mrs-launch [-n slaves] [-submasters k] <program> [program args...]")
		fmt.Fprintln(os.Stderr, "       mrs-launch -master <host:port> -drain <node-id-or-addr>")
		os.Exit(2)
	}
	if err := launch(flag.Arg(0), flag.Args()[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "mrs-launch: %v\n", err)
		os.Exit(1)
	}
}

// drainNode asks a running master to take one node out of rotation.
// The node's leases requeue immediately and its next poll is told to
// shut down — elastic scale-down without waiting out a heartbeat
// timeout.
func drainNode(master, target string) error {
	if master == "" {
		return fmt.Errorf("-drain requires -master host:port")
	}
	client := xmlrpc.NewClient("http://" + master + xmlrpc.RPCPath)
	defer client.CloseIdle()
	if _, err := client.Call(rpcproto.MethodDrain, target); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mrs-launch: draining %s\n", target)
	return nil
}

func launch(bin string, args []string) error {
	dir, err := os.MkdirTemp("", "mrs-launch-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	portFile := filepath.Join(dir, "master.port")

	// Start the master (the user's program in master mode). With a
	// sub-master tier the master's direct children are the sub-masters,
	// so that is what it waits for.
	minSlaves := *n
	if *submasters > 0 {
		minSlaves = *submasters
	}
	masterArgs := append([]string{
		"-mrs=master",
		"-mrs-portfile=" + portFile,
		fmt.Sprintf("-mrs-min-slaves=%d", minSlaves),
	}, args...)
	if *shared != "" {
		masterArgs = append([]string{"-mrs-shared=" + *shared}, masterArgs...)
	}
	master := exec.Command(bin, masterArgs...)
	master.Stdout = os.Stdout
	master.Stderr = os.Stderr
	if err := master.Start(); err != nil {
		return fmt.Errorf("starting master: %w", err)
	}

	// Wait for the port file (Program 3, step 3).
	addr, err := waitPortFile(portFile, *timeout)
	if err != nil {
		master.Process.Kill()
		master.Wait()
		return err
	}

	// With -submasters, interpose the middle tier: each sub-master
	// signs in to the master, writes its own port file, and the slaves
	// are dealt out round-robin below.
	var procs []*exec.Cmd
	controlAddrs := []string{addr}
	if *submasters > 0 {
		fmt.Fprintf(os.Stderr, "mrs-launch: master at %s; starting %d sub-masters\n", addr, *submasters)
		controlAddrs = nil
		for i := 0; i < *submasters; i++ {
			smPort := filepath.Join(dir, fmt.Sprintf("submaster%d.port", i))
			smArgs := append([]string{
				"-mrs=submaster",
				"-mrs-master=" + addr,
				"-mrs-portfile=" + smPort,
			}, args...)
			sm := exec.Command(bin, smArgs...)
			sm.Stdout = os.Stderr
			sm.Stderr = os.Stderr
			if err := sm.Start(); err != nil {
				master.Process.Kill()
				return fmt.Errorf("starting sub-master %d: %w", i, err)
			}
			procs = append(procs, sm)
			smAddr, err := waitPortFile(smPort, *timeout)
			if err != nil {
				master.Process.Kill()
				return fmt.Errorf("sub-master %d: %w", i, err)
			}
			controlAddrs = append(controlAddrs, smAddr)
		}
	}
	fmt.Fprintf(os.Stderr, "mrs-launch: starting %d slaves\n", *n)

	// Start the slaves (Program 3, step 4 — pssh/pbsdsh equivalent).
	// Each slave's control parent is the master, or its round-robin
	// sub-master when a middle tier exists.
	for i := 0; i < *n; i++ {
		parent := controlAddrs[i%len(controlAddrs)]
		slaveArgs := append([]string{"-mrs=slave", "-mrs-master=" + parent}, args...)
		if *shared != "" {
			slaveArgs = append([]string{"-mrs-shared=" + *shared}, slaveArgs...)
		}
		s := exec.Command(bin, slaveArgs...)
		s.Stdout = os.Stderr // keep program output (master stdout) clean
		s.Stderr = os.Stderr
		if err := s.Start(); err != nil {
			master.Process.Kill()
			return fmt.Errorf("starting slave %d: %w", i, err)
		}
		procs = append(procs, s)
	}

	masterErr := master.Wait()
	// Slaves and sub-masters exit on their own when told to shut down.
	for i, p := range procs {
		if err := p.Wait(); err != nil && masterErr == nil {
			fmt.Fprintf(os.Stderr, "mrs-launch: worker process %d: %v\n", i, err)
		}
	}
	return masterErr
}

func waitPortFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		data, err := os.ReadFile(path)
		if err == nil && len(data) > 0 {
			return strings.TrimSpace(string(data)), nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("port file %s did not appear within %v", path, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
