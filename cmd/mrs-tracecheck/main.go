// mrs-tracecheck validates a Chrome trace-event JSON file written by
// the -mrs-trace flag (or obs.Tracer.WriteChromeTrace directly) and
// prints a one-line summary of what it contains. It is the schema
// checker used by scripts/verify.sh tier 2, and a quick sanity tool for
// operators before loading a trace into chrome://tracing or Perfetto.
//
//	mrs-tracecheck out.trace
//	mrs-tracecheck -min-spans 1 out.trace
//	mrs-tracecheck -want-spans 24 out.trace
//
// Exit status is non-zero if the file is unreadable, is not a valid
// trace per obs.ValidateChromeTrace, or violates -min-spans /
// -want-spans.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

var (
	minSpans  = flag.Int("min-spans", 0, "fail unless the trace has at least this many task spans")
	wantSpans = flag.Int("want-spans", -1, "fail unless the trace has exactly this many task spans")
	maxErrors = flag.Int("max-errors", -1, "fail if more than this many spans carry an error (-1 = no limit)")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mrs-tracecheck [flags] trace.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	st, err := obs.ValidateChromeTrace(data)
	if err != nil {
		fail("%s: invalid trace: %v", path, err)
	}
	fmt.Printf("%s: ok: %d spans, %d workers, %d datasets, max attempt %d, %d errors\n",
		path, st.Spans, st.Workers, st.Datasets, st.MaxAttempt, st.Errors)

	if st.Spans < *minSpans {
		fail("%s: %d spans, want at least %d", path, st.Spans, *minSpans)
	}
	if *wantSpans >= 0 && st.Spans != *wantSpans {
		fail("%s: %d spans, want exactly %d", path, st.Spans, *wantSpans)
	}
	if *maxErrors >= 0 && st.Errors > *maxErrors {
		fail("%s: %d spans carry errors, allowed %d", path, st.Errors, *maxErrors)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mrs-tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
