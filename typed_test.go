package mrs_test

import (
	"strings"
	"testing"

	mrs "repro"
)

// typedProgram is WordCount written entirely against the typed API.
type typedProgram struct {
	input  []string
	output map[string]int64
}

func (p *typedProgram) Register(reg *mrs.Registry) error {
	reg.RegisterMap("map", mrs.TypedMap(
		mrs.Int64(), mrs.String(), mrs.String(), mrs.Int64(),
		func(lineNo int64, line string, emit mrs.TypedEmit[string, int64]) error {
			for _, w := range strings.Fields(line) {
				if err := emit(w, 1); err != nil {
					return err
				}
			}
			return nil
		}))
	reg.RegisterReduce("reduce", mrs.TypedReduce(
		mrs.String(), mrs.Int64(),
		func(word string, counts []int64, emit mrs.TypedEmit[string, int64]) error {
			var total int64
			for _, c := range counts {
				total += c
			}
			return emit(word, total)
		}))
	return nil
}

func (p *typedProgram) Run(job *mrs.Job) error {
	keys := make([]int64, len(p.input))
	for i := range keys {
		keys[i] = int64(i)
	}
	pairs, err := mrs.TypedPairs(mrs.Int64(), mrs.String(), keys, p.input)
	if err != nil {
		return err
	}
	src, err := job.LocalData(pairs, mrs.OpOpts{Splits: 2, Partition: "roundrobin"})
	if err != nil {
		return err
	}
	out, err := job.MapReduce(src, "map", "reduce",
		mrs.OpOpts{Splits: 2, Combine: "reduce"}, mrs.OpOpts{Splits: 2})
	if err != nil {
		return err
	}
	words, counts, err := mrs.CollectTyped(out, mrs.String(), mrs.Int64())
	if err != nil {
		return err
	}
	p.output = map[string]int64{}
	for i, w := range words {
		p.output[w] += counts[i]
	}
	return nil
}

func TestTypedWordCount(t *testing.T) {
	p := &typedProgram{input: testInput}
	for _, impl := range []string{"serial", "threads", "local"} {
		p.output = nil
		if err := mrs.Run(p, mrs.Options{Implementation: impl}); err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		checkOutput(t, p.output)
	}
}

func TestTypedCodecs(t *testing.T) {
	s := mrs.String()
	if got, err := s.Decode(s.Encode("héllo")); err != nil || got != "héllo" {
		t.Errorf("string codec: %q, %v", got, err)
	}
	i := mrs.Int64()
	if got, err := i.Decode(i.Encode(-42)); err != nil || got != -42 {
		t.Errorf("int64 codec: %d, %v", got, err)
	}
	f := mrs.Float64()
	if got, err := f.Decode(f.Encode(2.5)); err != nil || got != 2.5 {
		t.Errorf("float64 codec: %v, %v", got, err)
	}
	fs := mrs.Float64Slice()
	if got, err := fs.Decode(fs.Encode([]float64{1, 2})); err != nil || len(got) != 2 || got[1] != 2 {
		t.Errorf("[]float64 codec: %v, %v", got, err)
	}
	b := mrs.Bytes()
	if got, err := b.Decode(b.Encode([]byte{7})); err != nil || got[0] != 7 {
		t.Errorf("bytes codec: %v, %v", got, err)
	}
}

func TestTypedPairsLengthMismatch(t *testing.T) {
	if _, err := mrs.TypedPairs(mrs.Int64(), mrs.String(), []int64{1}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestTypedMapDecodeError(t *testing.T) {
	fn := mrs.TypedMap(mrs.Int64(), mrs.String(), mrs.String(), mrs.Int64(),
		func(k int64, v string, emit mrs.TypedEmit[string, int64]) error { return nil })
	// Int64 varint codec rejects this malformed key.
	err := fn([]byte{0x80}, []byte("x"), nil)
	if err == nil {
		t.Error("malformed key accepted")
	}
}
