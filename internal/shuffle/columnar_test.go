package shuffle

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/kvio"
	"repro/internal/wirecodec"
)

// columnarBlock builds one decoded columnar block of pairs with the
// given key encoding — exactly what kvio.BlockReader.NextAny hands a
// consumer.
func columnarBlock(tb testing.TB, pairs []kvio.Pair, keyEnc int) *kvio.ColumnarBlock {
	tb.Helper()
	if len(pairs) == 0 {
		return nil
	}
	var buf bytes.Buffer
	w := kvio.NewBlockWriterEnc(&buf, wirecodec.Identity(), 0, kvio.BlockEncoding{Columnar: true, KeyEnc: keyEnc})
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	r, err := kvio.NewBlockReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		tb.Fatal(err)
	}
	defer r.Release()
	_, cb, _, err := r.NextAny()
	if err != nil {
		tb.Fatal(err)
	}
	if cb == nil || cb.Len() != len(pairs) {
		tb.Fatalf("columnar helper produced %v records, want one block of %d", cb, len(pairs))
	}
	if _, _, _, err := r.NextAny(); err != io.EOF {
		tb.Fatalf("columnar helper split %d pairs across blocks", len(pairs))
	}
	return cb
}

// collectColumnar mirrors collect but feeds the sorter decoded columnar
// blocks, one per batch.
func collectColumnar(t *testing.T, opts Options, batches [][]kvio.Pair, keyEnc int) (map[string][]string, []string) {
	t.Helper()
	s := NewSorter(opts)
	defer s.Close()
	for _, batch := range batches {
		cb := columnarBlock(t, batch, keyEnc)
		if cb == nil {
			continue
		}
		n, err := s.AddColumnar(cb)
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for _, p := range batch {
			want += int64(len(p.Key) + len(p.Value))
		}
		if n != want {
			t.Fatalf("AddColumnar returned %d payload bytes, want %d", n, want)
		}
	}
	groups := map[string][]string{}
	var order []string
	err := s.Groups(func(key []byte, values [][]byte) error {
		var vs []string
		for _, v := range values {
			vs = append(vs, string(v))
		}
		groups[string(key)] = vs
		order = append(order, string(key))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return groups, order
}

// TestAddColumnarMatchesAdd: feeding the same records through the
// columnar fast path must produce byte-identical grouping to
// per-record Add — for every key encoding, on the sort and combiner
// paths, with and without spilling.
func TestAddColumnarMatchesAdd(t *testing.T) {
	var pairs []kvio.Pair
	for i := 0; i < 3000; i++ {
		pairs = append(pairs, kvio.StrPair(fmt.Sprintf("key-%03d", i%89), codecVarint(int64(i%7))))
	}
	batches := [][]kvio.Pair{pairs[:1000], pairs[1000:1003], pairs[1003:1003], pairs[1003:]}
	cases := []struct {
		name string
		opts func() Options
	}{
		{"sort", func() Options { return Options{} }},
		{"sort-spill", func() Options { return Options{SpillBytes: 4 << 10, TempDir: t.TempDir()} }},
		{"combine", func() Options { return Options{Combine: sumCombine} }},
		{"combine-spill", func() Options { return Options{Combine: sumCombine, SpillBytes: 4 << 10, TempDir: t.TempDir()} }},
	}
	for _, keyEnc := range []int{kvio.KeyEncRaw, kvio.KeyEncDict, kvio.KeyEncDelta} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("enc=%d/%s", keyEnc, tc.name), func(t *testing.T) {
				want, wantOrder := collect(t, tc.opts(), pairs)
				got, gotOrder := collectColumnar(t, tc.opts(), batches, keyEnc)
				if !equalStrings(wantOrder, gotOrder) {
					t.Fatalf("key order differs: %v vs %v", gotOrder, wantOrder)
				}
				for k, vs := range want {
					if !equalStrings(vs, got[k]) {
						t.Errorf("key %q: Add %v, AddColumnar %v", k, vs, got[k])
					}
				}
			})
		}
	}
}

// TestAddColumnarMixedFraming: row and columnar inputs interleaving in
// either order must still match pure per-record Add. This exercises
// both sides of the single-form invariant — columnar-first flattens
// its groups when row input arrives, row-first keeps the flat buffer.
func TestAddColumnarMixedFraming(t *testing.T) {
	var pairs []kvio.Pair
	for i := 0; i < 900; i++ {
		pairs = append(pairs, kvio.StrPair(fmt.Sprintf("key-%02d", i%23), fmt.Sprintf("v%d", i)))
	}
	for _, tc := range []struct {
		name       string
		firstIsRow bool
	}{
		{"columnar-then-row", false},
		{"row-then-columnar", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, wantOrder := collect(t, Options{}, pairs)
			s := NewSorter(Options{})
			defer s.Close()
			thirds := [][]kvio.Pair{pairs[:300], pairs[300:600], pairs[600:]}
			for i, batch := range thirds {
				rowTurn := (i%2 == 0) == tc.firstIsRow
				if rowTurn {
					for _, p := range batch {
						if err := s.Add(p); err != nil {
							t.Fatal(err)
						}
					}
				} else {
					if _, err := s.AddColumnar(columnarBlock(t, batch, kvio.KeyEncDict)); err != nil {
						t.Fatal(err)
					}
				}
			}
			got := map[string][]string{}
			var gotOrder []string
			err := s.Groups(func(key []byte, values [][]byte) error {
				var vs []string
				for _, v := range values {
					vs = append(vs, string(v))
				}
				got[string(key)] = vs
				gotOrder = append(gotOrder, string(key))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if !equalStrings(wantOrder, gotOrder) {
				t.Fatalf("key order differs: %v vs %v", gotOrder, wantOrder)
			}
			for k, vs := range want {
				if !equalStrings(vs, got[k]) {
					t.Errorf("key %q: Add %v, mixed %v", k, vs, got[k])
				}
			}
		})
	}
}

func TestAddColumnarSpills(t *testing.T) {
	s := NewSorter(Options{SpillBytes: 1 << 10, TempDir: t.TempDir()})
	defer s.Close()
	var pairs []kvio.Pair
	for i := 0; i < 200; i++ {
		pairs = append(pairs, kvio.StrPair(fmt.Sprintf("key-%d", i%7), "some-value-payload"))
	}
	if _, err := s.AddColumnar(columnarBlock(t, pairs, kvio.KeyEncDict)); err != nil {
		t.Fatal(err)
	}
	if s.Spills() == 0 {
		t.Error("expected AddColumnar to trigger a spill")
	}
	if s.Added() != int64(len(pairs)) {
		t.Errorf("Added = %d, want %d", s.Added(), len(pairs))
	}
}

func TestAddColumnarAfterCloseFails(t *testing.T) {
	cb := columnarBlock(t, []kvio.Pair{kvio.StrPair("a", "1")}, kvio.KeyEncRaw)
	s := NewSorter(Options{})
	s.Close()
	if _, err := s.AddColumnar(cb); err == nil {
		t.Fatal("AddColumnar after Close should fail")
	}
}

// BenchmarkSorterAddColumnar measures the per-record cost of the
// columnar fast path on repetitive keys. The dict case is the headline:
// per-record work is an index lookup and a value append.
func BenchmarkSorterAddColumnar(b *testing.B) {
	const blockRecs = 2048
	for _, mk := range []struct {
		name   string
		keyEnc int
	}{
		{"dict", kvio.KeyEncDict},
		{"raw", kvio.KeyEncRaw},
	} {
		b.Run(mk.name, func(b *testing.B) {
			pairs := make([]kvio.Pair, blockRecs)
			for i := range pairs {
				pairs[i] = kvio.StrPair(fmt.Sprintf("some-moderate-key-%03d", i%97), "v")
			}
			cb := columnarBlock(b, pairs, mk.keyEnc)
			b.ReportAllocs()
			s := NewSorter(Options{})
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i += blockRecs {
				if _, err := s.AddColumnar(cb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
