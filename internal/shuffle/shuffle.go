// Package shuffle implements the sort-and-group stage between map and
// reduce: records are accumulated, sorted by key, optionally combined
// (the "local reduce" optimization from the original MapReduce paper,
// used by both the Mrs and Hadoop WordCount measurements in §V), and
// delivered as (key, values) groups. Buffers that exceed a spill
// threshold are sorted and written to temporary run files, which are
// k-way merged on read — the classic external sort, so a reduce split
// can exceed memory.
//
// Record bytes are stored in a chunked arena: buffering n records costs
// O(n · recordSize / chunkSize) allocations instead of 2n, and a spill
// releases the whole slab at once. When a combiner is configured the
// sorter additionally groups records by key in a hash table as they
// arrive, deferring the comparison sort to the (much smaller) set of
// distinct keys; values within a key keep insertion order, so the
// delivered groups are byte-identical to the sort-everything path.
package shuffle

import (
	"bytes"
	"container/heap"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/kvio"
)

// CombineFunc merges the values of a single key into (usually fewer)
// values. It must be associative and commutative in the values for the
// final answer to be independent of spill boundaries; this mirrors the
// requirement on MapReduce combiners.
type CombineFunc func(key []byte, values [][]byte) ([][]byte, error)

// Options configures a Sorter.
type Options struct {
	// SpillBytes is the approximate in-memory payload limit before a
	// sorted run is spilled to disk. Zero means never spill.
	SpillBytes int64
	// TempDir is where run files are created. Empty means os.TempDir().
	TempDir string
	// Combine, if non-nil, is applied to each key group as runs are
	// spilled and again during the final merge.
	Combine CombineFunc
}

// arenaChunk is the slab size for record storage. Large enough that
// chunk allocations are rare against typical record sizes, small enough
// that a mostly-empty final chunk wastes little.
const arenaChunk = 256 << 10

// arena is a chunked bump allocator for record bytes. Old chunks stay
// alive only while slices returned by copy reference them; reset reuses
// the current chunk for the next fill.
type arena struct {
	buf []byte // current chunk: len = bytes used, cap = chunk size
}

// copy appends b to the arena and returns the arena-owned copy.
func (a *arena) copy(b []byte) []byte {
	if len(b) > cap(a.buf)-len(a.buf) {
		size := arenaChunk
		if len(b) > size {
			size = len(b) // oversized records get a dedicated chunk
		}
		a.buf = make([]byte, 0, size)
	}
	n := len(a.buf)
	a.buf = append(a.buf, b...)
	return a.buf[n:len(a.buf):len(a.buf)]
}

// reset forgets everything allocated, reusing the current chunk. The
// caller must have dropped every slice copy returned since the last
// reset.
func (a *arena) reset() { a.buf = a.buf[:0] }

// hashGroup is one distinct key and its values in insertion order; the
// combiner path accumulates these instead of flat pairs.
type hashGroup struct {
	key    []byte
	values [][]byte
}

// Sorter accumulates pairs and then yields key groups in sorted order.
// Usage: Add*, then Groups (exactly once), then Close.
//
// Two in-memory forms exist: a flat pair buffer that is stably sorted
// on demand (buf) and a hash-grouped form with one entry per distinct
// key (groups). A combiner always uses groups. Without a combiner the
// forms never coexist: columnar input prefers groups (the key column
// makes grouping cheap), and row input arriving afterwards flattens
// the groups back into buf. Both forms deliver byte-identical output —
// per-key value order is insertion order either way, and cross-key
// order is irrelevant because keys are emitted sorted.
type Sorter struct {
	opts    Options
	ar      arena
	buf     []kvio.Pair    // sort path (no combiner)
	groups  []hashGroup    // grouped path: one entry per distinct key
	idx     map[string]int // grouped path: key -> index into groups
	dictIdx []int          // AddColumnar scratch: dict entry -> group index
	bufSize int64
	runs    []string // spilled run file paths
	closed  bool

	// stats
	added   int64
	spills  int
	spilled int64
}

// NewSorter returns an empty Sorter.
func NewSorter(opts Options) *Sorter {
	return &Sorter{opts: opts}
}

// Add buffers one record, spilling if the memory threshold is crossed.
// The pair's bytes are copied into the sorter's arena, so the caller
// may reuse the slices immediately (e.g. from kvio.Reader.ReadShared).
func (s *Sorter) Add(p kvio.Pair) error {
	if s.closed {
		return fmt.Errorf("shuffle: Add after Close")
	}
	if s.opts.Combine != nil {
		s.addHash(p, false)
	} else {
		s.flattenGroups()
		s.buf = append(s.buf, kvio.Pair{Key: s.ar.copy(p.Key), Value: s.ar.copy(p.Value)})
		s.bufSize += int64(len(p.Key) + len(p.Value))
	}
	s.added++
	return s.maybeSpill()
}

// AddBlock adopts a decoded record block whose ownership has been
// transferred to the sorter (kvio.BlockReader.NextBlock's contract) and
// buffers every record in it by aliasing into the block buffer — the
// zero-copy handoff from the block data plane: one decode, no
// per-record arena copies. The block is retained until the next spill
// or Close drops the references. recs is the block header's record
// count and is verified against the scan; pass -1 to skip the check.
// Returns the summed key+value payload bytes the block contributed,
// which is what callers charge to their raw-byte input accounting.
func (s *Sorter) AddBlock(block []byte, recs int) (int64, error) {
	if s.closed {
		return 0, fmt.Errorf("shuffle: AddBlock after Close")
	}
	if s.opts.Combine == nil {
		s.flattenGroups()
	}
	var payload int64
	n, err := kvio.ScanRecords(block, func(key, value []byte) error {
		payload += int64(len(key) + len(value))
		p := kvio.Pair{Key: key, Value: value}
		if s.opts.Combine != nil {
			s.addHash(p, true)
		} else {
			s.buf = append(s.buf, p)
			s.bufSize += int64(len(key) + len(value))
		}
		s.added++
		return nil
	})
	if err != nil {
		return payload, err
	}
	if recs >= 0 && n != recs {
		return payload, fmt.Errorf("shuffle: block scanned %d records, header said %d", n, recs)
	}
	return payload, s.maybeSpill()
}

// AddColumnar adopts a decoded columnar block (ownership transferred by
// kvio.BlockReader.NextAny) and buffers every record by aliasing the
// block's column buffers: sorting and grouping work runs against the
// key column, and value bytes are never copied or compared. It prefers
// the hash-grouped form even without a combiner — one group per
// distinct key is exactly what repetitive shuffle keys collapse to.
// Dictionary-encoded blocks take a fast path: each dict entry resolves
// to its group once per block, after which every record costs an index
// lookup and an append, with no per-record hashing or key comparisons.
// Returns the summed key+value payload bytes the block contributed.
func (s *Sorter) AddColumnar(cb *kvio.ColumnarBlock) (int64, error) {
	if s.closed {
		return 0, fmt.Errorf("shuffle: AddColumnar after Close")
	}
	n := cb.Len()
	payload := cb.PayloadBytes()
	if s.opts.Combine == nil && len(s.buf) > 0 {
		// Row input got here first; keep the single-form invariant and
		// stay flat.
		for i := 0; i < n; i++ {
			s.buf = append(s.buf, kvio.Pair{Key: cb.Key(i), Value: cb.Value(i)})
		}
		s.bufSize += payload
		s.added += int64(n)
		return payload, s.maybeSpill()
	}
	if dn := cb.DictLen(); dn >= 0 {
		dg := s.dictIdx[:0]
		for j := 0; j < dn; j++ {
			dg = append(dg, s.groupIndex(cb.DictKey(j), true))
		}
		s.dictIdx = dg
		for i := 0; i < n; i++ {
			v := cb.Value(i)
			g := &s.groups[dg[cb.DictIndex(i)]]
			g.values = append(g.values, v)
			s.bufSize += int64(len(v))
		}
	} else {
		for i := 0; i < n; i++ {
			s.addHash(kvio.Pair{Key: cb.Key(i), Value: cb.Value(i)}, true)
		}
	}
	s.added += int64(n)
	return payload, s.maybeSpill()
}

// maybeSpill spills the in-memory buffer when it crosses the threshold.
func (s *Sorter) maybeSpill() error {
	if s.opts.SpillBytes > 0 && s.bufSize >= s.opts.SpillBytes {
		return s.spill()
	}
	return nil
}

// flattenGroups converts the hash-grouped form back into flat pairs so
// row-framed input can share the buffer. Only reachable on mixed
// framing without a combiner. Per-key value order is preserved; the
// extra key references are charged to bufSize the way the flat path
// would have counted them.
func (s *Sorter) flattenGroups() {
	if len(s.groups) == 0 {
		return
	}
	for i := range s.groups {
		g := &s.groups[i]
		for _, v := range g.values {
			s.buf = append(s.buf, kvio.Pair{Key: g.key, Value: v})
		}
		s.bufSize += int64((len(g.values) - 1) * len(g.key))
	}
	clear(s.groups)
	s.groups = s.groups[:0]
	if s.idx != nil {
		clear(s.idx)
	}
}

// groupIndex returns the index of key's hash group, creating an empty
// one on first sight. The map lookup with a string(key) conversion is
// allocation free for existing keys; only the first record of a
// distinct key pays for the map entry. owned means the key bytes
// already belong to the sorter (an adopted block) and need no arena
// copy.
func (s *Sorter) groupIndex(key []byte, owned bool) int {
	if s.idx == nil {
		s.idx = make(map[string]int, 1+len(s.groups))
		for i := range s.groups {
			s.idx[string(s.groups[i].key)] = i
		}
	}
	if i, ok := s.idx[string(key)]; ok {
		return i
	}
	if !owned {
		key = s.ar.copy(key)
	}
	s.groups = append(s.groups, hashGroup{key: key})
	s.idx[string(key)] = len(s.groups) - 1
	s.bufSize += int64(len(key))
	return len(s.groups) - 1
}

// addHash accumulates p into the hash-grouped form. owned means p's
// bytes already belong to the sorter (an adopted block).
func (s *Sorter) addHash(p kvio.Pair, owned bool) {
	i := s.groupIndex(p.Key, owned)
	value := p.Value
	if !owned {
		value = s.ar.copy(value)
	}
	g := &s.groups[i]
	g.values = append(g.values, value)
	s.bufSize += int64(len(value))
}

// AddStream drains a record stream into the sorter. Records are read
// through the reader's shared buffer — Add copies them anyway.
func (s *Sorter) AddStream(r *kvio.Reader) error {
	for {
		p, err := r.ReadShared()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := s.Add(p); err != nil {
			return err
		}
	}
}

// Added returns the number of records added.
func (s *Sorter) Added() int64 { return s.added }

// Spills returns how many run files were written.
func (s *Sorter) Spills() int { return s.spills }

// sortBuf stably sorts the in-memory buffer by key. Stability keeps
// value order deterministic across implementations, which the Mrs
// debugging story (serial == parallel output) depends on.
func (s *Sorter) sortBuf() {
	sort.SliceStable(s.buf, func(i, j int) bool {
		return bytes.Compare(s.buf[i].Key, s.buf[j].Key) < 0
	})
}

// forEachMemGroup yields the in-memory content as combined key groups
// in ascending key order. It does not disturb the hash index: the
// grouped path sorts an index permutation, not the groups themselves.
func (s *Sorter) forEachMemGroup(fn func(key []byte, values [][]byte) error) error {
	if s.opts.Combine != nil || len(s.groups) > 0 {
		order := make([]int, len(s.groups))
		for i := range order {
			order[i] = i
		}
		// Keys are distinct by construction, so the unstable sort is
		// deterministic.
		sort.Slice(order, func(a, b int) bool {
			return bytes.Compare(s.groups[order[a]].key, s.groups[order[b]].key) < 0
		})
		for _, i := range order {
			g := &s.groups[i]
			vals, err := s.combine(g.key, g.values)
			if err != nil {
				return err
			}
			if err := fn(g.key, vals); err != nil {
				return err
			}
		}
		return nil
	}
	s.sortBuf()
	return forEachGroup(s.buf, func(key []byte, values [][]byte) error {
		values, err := s.combine(key, values)
		if err != nil {
			return err
		}
		return fn(key, values)
	})
}

// spill sorts, combines, and writes the current buffer as a run file.
func (s *Sorter) spill() error {
	if len(s.buf) == 0 && len(s.groups) == 0 {
		return nil
	}
	f, err := os.CreateTemp(s.opts.TempDir, "mrs-spill-*.run")
	if err != nil {
		return fmt.Errorf("shuffle: creating spill file: %w", err)
	}
	w := kvio.NewWriter(f)
	err = s.forEachMemGroup(func(key []byte, values [][]byte) error {
		for _, v := range values {
			if werr := w.Write(kvio.Pair{Key: key, Value: v}); werr != nil {
				return werr
			}
		}
		return nil
	})
	if err == nil {
		err = w.Flush()
	}
	w.Release()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	s.runs = append(s.runs, f.Name())
	s.spills++
	s.spilled += s.bufSize
	// Drop every reference into the arena before reusing it.
	clear(s.buf)
	s.buf = s.buf[:0]
	clear(s.groups)
	s.groups = s.groups[:0]
	if s.idx != nil {
		clear(s.idx)
	}
	s.ar.reset()
	s.bufSize = 0
	return nil
}

func (s *Sorter) combine(key []byte, values [][]byte) ([][]byte, error) {
	if s.opts.Combine == nil {
		return values, nil
	}
	return s.opts.Combine(key, values)
}

// Groups yields each key with all of its values, keys in ascending
// order, by calling fn. Returning a non-nil error from fn aborts the
// iteration. The key and value slices are only valid during the call.
func (s *Sorter) Groups(fn func(key []byte, values [][]byte) error) error {
	if s.closed {
		return fmt.Errorf("shuffle: Groups after Close")
	}
	if len(s.runs) == 0 {
		return s.forEachMemGroup(fn)
	}
	// Spill the remainder so everything is in sorted runs, then merge.
	if err := s.spill(); err != nil {
		return err
	}
	return s.mergeRuns(fn)
}

// Close removes any spill files and releases buffers. It is safe to
// call multiple times.
func (s *Sorter) Close() error {
	s.closed = true
	var first error
	for _, path := range s.runs {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	s.runs = nil
	s.buf = nil
	s.groups = nil
	s.idx = nil
	s.ar = arena{}
	return first
}

// forEachGroup walks a key-sorted pair slice and invokes fn once per
// distinct key with the values in encounter order.
func forEachGroup(sorted []kvio.Pair, fn func(key []byte, values [][]byte) error) error {
	i := 0
	var values [][]byte
	for i < len(sorted) {
		j := i + 1
		for j < len(sorted) && bytes.Equal(sorted[j].Key, sorted[i].Key) {
			j++
		}
		values = values[:0]
		for k := i; k < j; k++ {
			values = append(values, sorted[k].Value)
		}
		if err := fn(sorted[i].Key, values); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// ---------------------------------------------------------------------------
// k-way merge of run files

type runHead struct {
	pair kvio.Pair
	r    *kvio.Reader
	f    *os.File
	seq  int // tie-break: earlier runs first, preserving stability
}

func (rh *runHead) close() {
	rh.r.Release()
	rh.f.Close()
}

type runHeap []*runHead

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	c := bytes.Compare(h[i].pair.Key, h[j].pair.Key)
	if c != 0 {
		return c < 0
	}
	return h[i].seq < h[j].seq
}
func (h runHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.(*runHead)) }
func (h *runHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h runHeap) top() *runHead { return h[0] }
func (h *runHeap) closeAll() {
	for _, rh := range *h {
		rh.close()
	}
}

func (s *Sorter) mergeRuns(fn func(key []byte, values [][]byte) error) error {
	var h runHeap
	defer h.closeAll()
	for seq, path := range s.runs {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("shuffle: opening run: %w", err)
		}
		rh := &runHead{r: kvio.NewReader(f), f: f, seq: seq}
		p, err := rh.r.Read()
		if err == io.EOF {
			rh.close()
			continue
		}
		if err != nil {
			rh.close()
			return err
		}
		rh.pair = p
		h = append(h, rh)
	}
	heap.Init(&h)

	var (
		curKey  []byte
		haveKey bool // distinguishes "no current group" from the empty key
		values  [][]byte
	)
	flush := func() error {
		if !haveKey {
			return nil
		}
		vals, err := s.combine(curKey, values)
		if err != nil {
			return err
		}
		if err := fn(curKey, vals); err != nil {
			return err
		}
		haveKey = false
		values = values[:0]
		return nil
	}
	for h.Len() > 0 {
		rh := h.top()
		if haveKey && !bytes.Equal(rh.pair.Key, curKey) {
			if err := flush(); err != nil {
				return err
			}
		}
		if !haveKey {
			curKey = append(curKey[:0], rh.pair.Key...)
			haveKey = true
		}
		values = append(values, rh.pair.Value)
		p, err := rh.r.Read()
		if err == io.EOF {
			rh.close()
			heap.Pop(&h) // exhausted runs leave the heap, so closeAll skips them
			continue
		} else if err != nil {
			return err
		} else {
			rh.pair = p
			heap.Fix(&h, 0)
		}
	}
	return flush()
}
