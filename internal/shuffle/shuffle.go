// Package shuffle implements the sort-and-group stage between map and
// reduce: records are accumulated, sorted by key, optionally combined
// (the "local reduce" optimization from the original MapReduce paper,
// used by both the Mrs and Hadoop WordCount measurements in §V), and
// delivered as (key, values) groups. Buffers that exceed a spill
// threshold are sorted and written to temporary run files, which are
// k-way merged on read — the classic external sort, so a reduce split
// can exceed memory.
package shuffle

import (
	"bytes"
	"container/heap"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/kvio"
)

// CombineFunc merges the values of a single key into (usually fewer)
// values. It must be associative and commutative in the values for the
// final answer to be independent of spill boundaries; this mirrors the
// requirement on MapReduce combiners.
type CombineFunc func(key []byte, values [][]byte) ([][]byte, error)

// Options configures a Sorter.
type Options struct {
	// SpillBytes is the approximate in-memory payload limit before a
	// sorted run is spilled to disk. Zero means never spill.
	SpillBytes int64
	// TempDir is where run files are created. Empty means os.TempDir().
	TempDir string
	// Combine, if non-nil, is applied to each key group as runs are
	// spilled and again during the final merge.
	Combine CombineFunc
}

// Sorter accumulates pairs and then yields key groups in sorted order.
// Usage: Add*, then Groups (exactly once), then Close.
type Sorter struct {
	opts    Options
	buf     []kvio.Pair
	bufSize int64
	runs    []string // spilled run file paths
	closed  bool

	// stats
	added   int64
	spills  int
	spilled int64
}

// NewSorter returns an empty Sorter.
func NewSorter(opts Options) *Sorter {
	return &Sorter{opts: opts}
}

// Add buffers one record, spilling if the memory threshold is crossed.
func (s *Sorter) Add(p kvio.Pair) error {
	if s.closed {
		return fmt.Errorf("shuffle: Add after Close")
	}
	s.buf = append(s.buf, p)
	s.bufSize += int64(len(p.Key) + len(p.Value))
	s.added++
	if s.opts.SpillBytes > 0 && s.bufSize >= s.opts.SpillBytes {
		return s.spill()
	}
	return nil
}

// AddStream drains a record stream into the sorter.
func (s *Sorter) AddStream(r *kvio.Reader) error {
	for {
		p, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := s.Add(p); err != nil {
			return err
		}
	}
}

// Added returns the number of records added.
func (s *Sorter) Added() int64 { return s.added }

// Spills returns how many run files were written.
func (s *Sorter) Spills() int { return s.spills }

// sortBuf stably sorts the in-memory buffer by key. Stability keeps
// value order deterministic across implementations, which the Mrs
// debugging story (serial == parallel output) depends on.
func (s *Sorter) sortBuf() {
	sort.SliceStable(s.buf, func(i, j int) bool {
		return bytes.Compare(s.buf[i].Key, s.buf[j].Key) < 0
	})
}

// spill sorts, combines, and writes the current buffer as a run file.
func (s *Sorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	s.sortBuf()
	f, err := os.CreateTemp(s.opts.TempDir, "mrs-spill-*.run")
	if err != nil {
		return fmt.Errorf("shuffle: creating spill file: %w", err)
	}
	w := kvio.NewWriter(f)
	err = forEachGroup(s.buf, func(key []byte, values [][]byte) error {
		values, cerr := s.combine(key, values)
		if cerr != nil {
			return cerr
		}
		for _, v := range values {
			if werr := w.Write(kvio.Pair{Key: key, Value: v}); werr != nil {
				return werr
			}
		}
		return nil
	})
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	s.runs = append(s.runs, f.Name())
	s.spills++
	s.spilled += s.bufSize
	s.buf = s.buf[:0]
	s.bufSize = 0
	return nil
}

func (s *Sorter) combine(key []byte, values [][]byte) ([][]byte, error) {
	if s.opts.Combine == nil {
		return values, nil
	}
	return s.opts.Combine(key, values)
}

// Groups yields each key with all of its values, keys in ascending
// order, by calling fn. Returning a non-nil error from fn aborts the
// iteration. The key and value slices are only valid during the call.
func (s *Sorter) Groups(fn func(key []byte, values [][]byte) error) error {
	if s.closed {
		return fmt.Errorf("shuffle: Groups after Close")
	}
	if len(s.runs) == 0 {
		s.sortBuf()
		return forEachGroup(s.buf, func(key []byte, values [][]byte) error {
			values, err := s.combine(key, values)
			if err != nil {
				return err
			}
			return fn(key, values)
		})
	}
	// Spill the remainder so everything is in sorted runs, then merge.
	if err := s.spill(); err != nil {
		return err
	}
	return s.mergeRuns(fn)
}

// Close removes any spill files. It is safe to call multiple times.
func (s *Sorter) Close() error {
	s.closed = true
	var first error
	for _, path := range s.runs {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	s.runs = nil
	s.buf = nil
	return first
}

// forEachGroup walks a key-sorted pair slice and invokes fn once per
// distinct key with the values in encounter order.
func forEachGroup(sorted []kvio.Pair, fn func(key []byte, values [][]byte) error) error {
	i := 0
	var values [][]byte
	for i < len(sorted) {
		j := i + 1
		for j < len(sorted) && bytes.Equal(sorted[j].Key, sorted[i].Key) {
			j++
		}
		values = values[:0]
		for k := i; k < j; k++ {
			values = append(values, sorted[k].Value)
		}
		if err := fn(sorted[i].Key, values); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// ---------------------------------------------------------------------------
// k-way merge of run files

type runHead struct {
	pair kvio.Pair
	r    *kvio.Reader
	f    *os.File
	seq  int // tie-break: earlier runs first, preserving stability
}

type runHeap []*runHead

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	c := bytes.Compare(h[i].pair.Key, h[j].pair.Key)
	if c != 0 {
		return c < 0
	}
	return h[i].seq < h[j].seq
}
func (h runHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.(*runHead)) }
func (h *runHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h runHeap) top() *runHead { return h[0] }
func (h *runHeap) closeAll() {
	for _, rh := range *h {
		rh.f.Close()
	}
}

func (s *Sorter) mergeRuns(fn func(key []byte, values [][]byte) error) error {
	var h runHeap
	defer h.closeAll()
	for seq, path := range s.runs {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("shuffle: opening run: %w", err)
		}
		rh := &runHead{r: kvio.NewReader(f), f: f, seq: seq}
		p, err := rh.r.Read()
		if err == io.EOF {
			f.Close()
			continue
		}
		if err != nil {
			f.Close()
			return err
		}
		rh.pair = p
		h = append(h, rh)
	}
	heap.Init(&h)

	var (
		curKey  []byte
		haveKey bool // distinguishes "no current group" from the empty key
		values  [][]byte
	)
	flush := func() error {
		if !haveKey {
			return nil
		}
		vals, err := s.combine(curKey, values)
		if err != nil {
			return err
		}
		if err := fn(curKey, vals); err != nil {
			return err
		}
		haveKey = false
		values = values[:0]
		return nil
	}
	for h.Len() > 0 {
		rh := h.top()
		if haveKey && !bytes.Equal(rh.pair.Key, curKey) {
			if err := flush(); err != nil {
				return err
			}
		}
		if !haveKey {
			curKey = append(curKey[:0], rh.pair.Key...)
			haveKey = true
		}
		values = append(values, rh.pair.Value)
		p, err := rh.r.Read()
		if err == io.EOF {
			rh.f.Close()
			heap.Pop(&h) // exhausted runs leave the heap, so closeAll skips them
			continue
		} else if err != nil {
			return err
		} else {
			rh.pair = p
			heap.Fix(&h, 0)
		}
	}
	return flush()
}
