package shuffle

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/codec"
	"repro/internal/kvio"
)

// collect runs a sorter over pairs and returns the groups as a map and
// the key order observed.
func collect(t *testing.T, opts Options, pairs []kvio.Pair) (map[string][]string, []string) {
	t.Helper()
	s := NewSorter(opts)
	defer s.Close()
	for _, p := range pairs {
		if err := s.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	groups := map[string][]string{}
	var order []string
	err := s.Groups(func(key []byte, values [][]byte) error {
		k := string(key)
		if _, dup := groups[k]; dup {
			t.Fatalf("key %q delivered twice", k)
		}
		var vs []string
		for _, v := range values {
			vs = append(vs, string(v))
		}
		groups[k] = vs
		order = append(order, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return groups, order
}

func TestInMemoryGrouping(t *testing.T) {
	pairs := []kvio.Pair{
		kvio.StrPair("b", "1"),
		kvio.StrPair("a", "2"),
		kvio.StrPair("b", "3"),
		kvio.StrPair("c", "4"),
		kvio.StrPair("a", "5"),
	}
	groups, order := collect(t, Options{}, pairs)
	if want := []string{"a", "b", "c"}; !equalStrings(order, want) {
		t.Errorf("key order = %v, want %v", order, want)
	}
	if !equalStrings(groups["a"], []string{"2", "5"}) {
		t.Errorf("group a = %v (value order must be stable)", groups["a"])
	}
	if !equalStrings(groups["b"], []string{"1", "3"}) {
		t.Errorf("group b = %v", groups["b"])
	}
}

func TestEmptySorter(t *testing.T) {
	groups, _ := collect(t, Options{}, nil)
	if len(groups) != 0 {
		t.Errorf("expected no groups, got %v", groups)
	}
}

func TestSpillingMatchesInMemory(t *testing.T) {
	var pairs []kvio.Pair
	for i := 0; i < 5000; i++ {
		pairs = append(pairs, kvio.StrPair(fmt.Sprintf("key-%03d", i%97), fmt.Sprintf("v%d", i)))
	}
	mem, memOrder := collect(t, Options{}, pairs)
	tmp := t.TempDir()
	spill, spillOrder := collect(t, Options{SpillBytes: 4 << 10, TempDir: tmp}, pairs)
	if !equalStrings(memOrder, spillOrder) {
		t.Fatalf("key orders differ: %d vs %d keys", len(memOrder), len(spillOrder))
	}
	for k, vs := range mem {
		if !equalStrings(vs, spill[k]) {
			t.Errorf("key %q: in-memory %v, spilled %v", k, vs, spill[k])
		}
	}
}

func TestSpillActuallySpills(t *testing.T) {
	s := NewSorter(Options{SpillBytes: 1 << 10, TempDir: t.TempDir()})
	defer s.Close()
	for i := 0; i < 1000; i++ {
		if err := s.Add(kvio.StrPair(fmt.Sprintf("key-%d", i), "some-value-payload")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spills() == 0 {
		t.Error("expected at least one spill")
	}
	if s.Added() != 1000 {
		t.Errorf("Added = %d", s.Added())
	}
}

func sumCombine(key []byte, values [][]byte) ([][]byte, error) {
	var total int64
	for _, v := range values {
		n, err := codec.DecodeVarint(v)
		if err != nil {
			return nil, err
		}
		total += n
	}
	return [][]byte{codec.EncodeVarint(total)}, nil
}

func TestCombinerInMemory(t *testing.T) {
	s := NewSorter(Options{Combine: sumCombine})
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Add(kvio.Pair{Key: []byte("x"), Value: codec.EncodeVarint(1)}); err != nil {
			t.Fatal(err)
		}
	}
	var got int64
	var count int
	err := s.Groups(func(key []byte, values [][]byte) error {
		count = len(values)
		n, err := codec.DecodeVarint(values[0])
		got = n
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 || got != 10 {
		t.Errorf("combined group: %d values, total %d; want 1 value, total 10", count, got)
	}
}

func TestCombinerAcrossSpills(t *testing.T) {
	// The combiner runs per spill and again at merge; the total must be
	// exact regardless of spill boundaries.
	s := NewSorter(Options{Combine: sumCombine, SpillBytes: 256, TempDir: t.TempDir()})
	defer s.Close()
	const n = 2000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i%7)
		if err := s.Add(kvio.Pair{Key: []byte(key), Value: codec.EncodeVarint(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spills() == 0 {
		t.Fatal("test requires spills; lower the threshold")
	}
	totals := map[string]int64{}
	err := s.Groups(func(key []byte, values [][]byte) error {
		if len(values) != 1 {
			return fmt.Errorf("key %q: %d values after final combine", key, len(values))
		}
		v, err := codec.DecodeVarint(values[0])
		totals[string(key)] = v
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range totals {
		sum += v
	}
	if sum != n {
		t.Errorf("grand total %d, want %d", sum, n)
	}
}

func TestGroupsPropertyAgainstReferenceModel(t *testing.T) {
	f := func(raw [][2][]byte) bool {
		pairs := make([]kvio.Pair, len(raw))
		for i, kv := range raw {
			pairs[i] = kvio.Pair{Key: kv[0], Value: kv[1]}
		}
		// Reference model: map from key to values in input order.
		want := map[string][]string{}
		for _, p := range pairs {
			want[string(p.Key)] = append(want[string(p.Key)], string(p.Value))
		}
		s := NewSorter(Options{SpillBytes: 64, TempDir: t.TempDir()})
		defer s.Close()
		for _, p := range pairs {
			if err := s.Add(p); err != nil {
				return false
			}
		}
		got := map[string][]string{}
		var keys []string
		err := s.Groups(func(key []byte, values [][]byte) error {
			var vs []string
			for _, v := range values {
				vs = append(vs, string(v))
			}
			got[string(key)] = vs
			keys = append(keys, string(key))
			return nil
		})
		if err != nil {
			return false
		}
		if !sort.StringsAreSorted(keys) {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for k, vs := range want {
			gvs, ok := got[k]
			if !ok || len(gvs) != len(vs) {
				return false
			}
			// External merge preserves per-key value order because runs
			// are spilled in input order and merged with seq tie-break.
			for i := range vs {
				if gvs[i] != vs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddAfterCloseFails(t *testing.T) {
	s := NewSorter(Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(kvio.StrPair("a", "b")); err == nil {
		t.Error("Add after Close should fail")
	}
	if err := s.Groups(func([]byte, [][]byte) error { return nil }); err == nil {
		t.Error("Groups after Close should fail")
	}
}

func TestGroupsErrorPropagation(t *testing.T) {
	s := NewSorter(Options{})
	defer s.Close()
	if err := s.Add(kvio.StrPair("a", "1")); err != nil {
		t.Fatal(err)
	}
	sentinel := fmt.Errorf("stop")
	if err := s.Groups(func([]byte, [][]byte) error { return sentinel }); err != sentinel {
		t.Errorf("got %v, want sentinel", err)
	}
}

func TestAddStream(t *testing.T) {
	data := kvio.Marshal([]kvio.Pair{kvio.StrPair("a", "1"), kvio.StrPair("a", "2")})
	s := NewSorter(Options{})
	defer s.Close()
	if err := s.AddStream(kvio.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
	if s.Added() != 2 {
		t.Errorf("Added = %d, want 2", s.Added())
	}
}

func TestBinaryKeysSortedBytewise(t *testing.T) {
	pairs := []kvio.Pair{
		{Key: []byte{0xFF}, Value: []byte("hi")},
		{Key: []byte{0x00}, Value: []byte("lo")},
		{Key: []byte{0x7F}, Value: []byte("mid")},
	}
	_, order := collect(t, Options{}, pairs)
	want := []string{"\x00", "\x7f", "\xff"}
	if !equalStrings(order, want) {
		t.Errorf("order = %q, want %q", order, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAddCopiesCallerSlices(t *testing.T) {
	// Add must not retain the caller's slices: reusing one buffer for
	// every record (the ReadShared pattern) must still group correctly.
	for _, combine := range []CombineFunc{nil, sumCombine} {
		s := NewSorter(Options{Combine: combine})
		buf := make([]byte, 8)
		for i := 0; i < 10; i++ {
			k := append(buf[:0], []byte(fmt.Sprintf("k%d", i%3))...)
			if err := s.Add(kvio.Pair{Key: k, Value: codec.EncodeVarint(1)}); err != nil {
				t.Fatal(err)
			}
		}
		var keys []string
		var total int64
		err := s.Groups(func(key []byte, values [][]byte) error {
			keys = append(keys, string(key))
			for _, v := range values {
				n, err := codec.DecodeVarint(v)
				if err != nil {
					return err
				}
				total += n
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := []string{"k0", "k1", "k2"}; !equalStrings(keys, want) {
			t.Errorf("combine=%v: keys = %v, want %v", combine != nil, keys, want)
		}
		if total != 10 {
			t.Errorf("combine=%v: total = %d, want 10", combine != nil, total)
		}
		s.Close()
	}
}

func TestHashPathMatchesSortPathByteForByte(t *testing.T) {
	// The combiner fast path must deliver byte-identical groups to the
	// plain sort path. Use an identity "combiner" that keeps all values
	// so the two paths produce comparable output.
	identity := func(key []byte, values [][]byte) ([][]byte, error) { return values, nil }
	var pairs []kvio.Pair
	for i := 0; i < 3000; i++ {
		pairs = append(pairs, kvio.StrPair(fmt.Sprintf("key-%03d", (i*37)%113), fmt.Sprintf("v%d", i)))
	}
	for _, spill := range []int64{0, 2 << 10} {
		sortG, sortOrder := collect(t, Options{SpillBytes: spill, TempDir: t.TempDir()}, pairs)
		hashG, hashOrder := collect(t, Options{SpillBytes: spill, TempDir: t.TempDir(), Combine: identity}, pairs)
		if !equalStrings(sortOrder, hashOrder) {
			t.Fatalf("spill=%d: key orders differ", spill)
		}
		for k, vs := range sortG {
			if !equalStrings(vs, hashG[k]) {
				t.Errorf("spill=%d key %q: sort %v, hash %v", spill, k, vs, hashG[k])
			}
		}
	}
}

func BenchmarkSorterAdd(b *testing.B) {
	// The headline allocation benchmark: steady-state cost of buffering
	// one record without a combiner. Arena storage should amortize to
	// well under one allocation per record.
	p := kvio.StrPair("some-moderate-key", "v")
	b.ReportAllocs()
	s := NewSorter(Options{})
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Add(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSorterAddCombine(b *testing.B) {
	// Hash-group path: repeated keys hit the map fast path and append
	// only the value to the arena.
	keys := make([][]byte, 512)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%04d", i))
	}
	val := []byte("v")
	b.ReportAllocs()
	s := NewSorter(Options{Combine: sumCombine})
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Add(kvio.Pair{Key: keys[i%len(keys)], Value: val}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortGroupInMemory(b *testing.B) {
	pairs := make([]kvio.Pair, 10000)
	for i := range pairs {
		pairs[i] = kvio.StrPair(fmt.Sprintf("key-%04d", i%500), "v")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSorter(Options{})
		for _, p := range pairs {
			if err := s.Add(p); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Groups(func([]byte, [][]byte) error { return nil }); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

func BenchmarkSortGroupExternal(b *testing.B) {
	pairs := make([]kvio.Pair, 10000)
	for i := range pairs {
		pairs[i] = kvio.StrPair(fmt.Sprintf("key-%04d", i%500), "v")
	}
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSorter(Options{SpillBytes: 16 << 10, TempDir: dir})
		for _, p := range pairs {
			if err := s.Add(p); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Groups(func([]byte, [][]byte) error { return nil }); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// blockPayload frames pairs as a legacy record run — exactly the
// decoded payload a kvio.BlockReader hands over via NextBlock.
func blockPayload(t *testing.T, pairs []kvio.Pair) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := kvio.NewWriter(&buf)
	defer w.Release()
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// collectBlocks mirrors collect but feeds the sorter through the
// zero-copy block handoff, one block per batch of pairs.
func collectBlocks(t *testing.T, opts Options, batches [][]kvio.Pair) (map[string][]string, []string) {
	t.Helper()
	s := NewSorter(opts)
	defer s.Close()
	for _, batch := range batches {
		n, err := s.AddBlock(blockPayload(t, batch), len(batch))
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for _, p := range batch {
			want += int64(len(p.Key) + len(p.Value))
		}
		if n != want {
			t.Fatalf("AddBlock returned %d payload bytes, want %d", n, want)
		}
	}
	groups := map[string][]string{}
	var order []string
	err := s.Groups(func(key []byte, values [][]byte) error {
		var vs []string
		for _, v := range values {
			vs = append(vs, string(v))
		}
		groups[string(key)] = vs
		order = append(order, string(key))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return groups, order
}

// TestAddBlockMatchesAdd: feeding the same records through AddBlock
// must produce byte-identical grouping to per-record Add, on both the
// sort path and the combiner hash path, with and without spilling.
func TestAddBlockMatchesAdd(t *testing.T) {
	var pairs []kvio.Pair
	for i := 0; i < 3000; i++ {
		pairs = append(pairs, kvio.StrPair(fmt.Sprintf("key-%03d", i%89), codecVarint(int64(i%7))))
	}
	batches := [][]kvio.Pair{pairs[:1000], pairs[1000:1003], pairs[1003:1003], pairs[1003:]}
	cases := []struct {
		name string
		opts func() Options
	}{
		{"sort", func() Options { return Options{} }},
		{"sort-spill", func() Options { return Options{SpillBytes: 4 << 10, TempDir: t.TempDir()} }},
		{"combine", func() Options { return Options{Combine: sumCombine} }},
		{"combine-spill", func() Options { return Options{Combine: sumCombine, SpillBytes: 4 << 10, TempDir: t.TempDir()} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, wantOrder := collect(t, tc.opts(), pairs)
			got, gotOrder := collectBlocks(t, tc.opts(), batches)
			if !equalStrings(wantOrder, gotOrder) {
				t.Fatalf("key order differs: %v vs %v", gotOrder, wantOrder)
			}
			for k, vs := range want {
				if !equalStrings(vs, got[k]) {
					t.Errorf("key %q: Add %v, AddBlock %v", k, vs, got[k])
				}
			}
		})
	}
}

// codecVarint is a tiny helper so combiner cases use summable values.
func codecVarint(n int64) string {
	return string(codec.EncodeVarint(n))
}

func TestAddBlockRecordCountMismatch(t *testing.T) {
	s := NewSorter(Options{})
	defer s.Close()
	payload := blockPayload(t, []kvio.Pair{kvio.StrPair("a", "1"), kvio.StrPair("b", "2")})
	if _, err := s.AddBlock(payload, 3); err == nil {
		t.Fatal("AddBlock accepted a wrong header record count")
	}
	s2 := NewSorter(Options{})
	defer s2.Close()
	if _, err := s2.AddBlock(payload, -1); err != nil {
		t.Fatalf("AddBlock with recs=-1 should skip the check: %v", err)
	}
	if s2.Added() != 2 {
		t.Errorf("Added = %d, want 2", s2.Added())
	}
}

func TestAddBlockSpills(t *testing.T) {
	s := NewSorter(Options{SpillBytes: 1 << 10, TempDir: t.TempDir()})
	defer s.Close()
	var pairs []kvio.Pair
	for i := 0; i < 200; i++ {
		pairs = append(pairs, kvio.StrPair(fmt.Sprintf("key-%d", i), "some-value-payload"))
	}
	if _, err := s.AddBlock(blockPayload(t, pairs), len(pairs)); err != nil {
		t.Fatal(err)
	}
	if s.Spills() == 0 {
		t.Error("expected AddBlock to trigger a spill")
	}
}

func TestAddBlockAfterCloseFails(t *testing.T) {
	s := NewSorter(Options{})
	s.Close()
	if _, err := s.AddBlock(blockPayload(t, []kvio.Pair{kvio.StrPair("a", "1")}), 1); err == nil {
		t.Fatal("AddBlock after Close should fail")
	}
}

func TestAddBlockRejectsGarbage(t *testing.T) {
	s := NewSorter(Options{})
	defer s.Close()
	if _, err := s.AddBlock([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, -1); err == nil {
		t.Fatal("AddBlock accepted a malformed record run")
	}
}
