package wordcount

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kvio"
)

func TestMapEmitsOnePerToken(t *testing.T) {
	var e kvio.SliceEmitter
	if err := Map(nil, []byte("  to be   or not to be "), &e); err != nil {
		t.Fatal(err)
	}
	if len(e.Pairs) != 6 {
		t.Fatalf("emitted %d pairs, want 6", len(e.Pairs))
	}
	if string(e.Pairs[0].Key) != "to" {
		t.Errorf("first token %q", e.Pairs[0].Key)
	}
	for _, p := range e.Pairs {
		n, err := codec.DecodeVarint(p.Value)
		if err != nil || n != 1 {
			t.Errorf("token %q count %d err %v", p.Key, n, err)
		}
	}
}

func TestMapEmptyLine(t *testing.T) {
	var e kvio.SliceEmitter
	if err := Map(nil, []byte("   \t  "), &e); err != nil {
		t.Fatal(err)
	}
	if len(e.Pairs) != 0 {
		t.Errorf("blank line emitted %v", e.Pairs)
	}
}

func TestReduceSums(t *testing.T) {
	var e kvio.SliceEmitter
	values := [][]byte{codec.EncodeVarint(3), codec.EncodeVarint(4), codec.EncodeVarint(1)}
	if err := Reduce([]byte("w"), values, &e); err != nil {
		t.Fatal(err)
	}
	if len(e.Pairs) != 1 {
		t.Fatalf("emitted %d pairs", len(e.Pairs))
	}
	n, err := codec.DecodeVarint(e.Pairs[0].Value)
	if err != nil || n != 8 {
		t.Errorf("sum = %d, err %v", n, err)
	}
}

func TestReduceBadValue(t *testing.T) {
	var e kvio.SliceEmitter
	if err := Reduce([]byte("w"), [][]byte{[]byte("junk-that-is-long")}, &e); err == nil {
		t.Error("expected error for malformed count")
	}
}

func TestEndToEndOnFiles(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"a.txt": "apple banana apple\ncherry\n",
		"b.txt": "banana banana\r\napple\n",
		"c.txt": "",
	}
	var paths []string
	for name, content := range files {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	reg := core.NewRegistry()
	Register(reg)
	exec := core.NewSerial(reg)
	defer exec.Close()
	job := core.NewJob(exec)
	defer job.Close()
	out, err := Run(job, paths, Options{ReduceSplits: 2})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	counts, err := Counts(pairs)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"apple": 3, "banana": 3, "cherry": 1}
	if len(counts) != len(want) {
		t.Errorf("got %v", counts)
	}
	for w, n := range want {
		if counts[w] != n {
			t.Errorf("count[%q] = %d, want %d", w, counts[w], n)
		}
	}
}

func TestCombinerAblationSameAnswer(t *testing.T) {
	input := []kvio.Pair{
		kvio.StrPair("1", "x y x"),
		kvio.StrPair("2", "y y z x"),
	}
	run := func(disable bool) map[string]int64 {
		reg := core.NewRegistry()
		Register(reg)
		exec := core.NewSerial(reg)
		defer exec.Close()
		job := core.NewJob(exec)
		defer job.Close()
		src, err := job.LocalData(input, core.OpOpts{Splits: 2, Partition: "roundrobin"})
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunOn(job, src, Options{DisableCombiner: disable})
		if err != nil {
			t.Fatal(err)
		}
		pairs, err := out.Collect()
		if err != nil {
			t.Fatal(err)
		}
		counts, err := Counts(pairs)
		if err != nil {
			t.Fatal(err)
		}
		return counts
	}
	with, without := run(false), run(true)
	if len(with) != len(without) {
		t.Fatalf("combiner changed the answer: %v vs %v", with, without)
	}
	for w, n := range with {
		if without[w] != n {
			t.Errorf("count[%q]: with=%d without=%d", w, n, without[w])
		}
	}
}

func TestTop(t *testing.T) {
	counts := map[string]int64{"a": 5, "b": 9, "c": 5, "d": 1}
	top := Top(counts, 3)
	if len(top) != 3 {
		t.Fatalf("got %d entries", len(top))
	}
	if top[0].Word != "b" || top[0].Count != 9 {
		t.Errorf("top[0] = %+v", top[0])
	}
	// Tie between a and c broken alphabetically.
	if top[1].Word != "a" || top[2].Word != "c" {
		t.Errorf("tie break wrong: %+v", top)
	}
	if got := Top(counts, 100); len(got) != 4 {
		t.Errorf("Top clamps to map size: %d", len(got))
	}
}

func TestCountsMergesDuplicateWords(t *testing.T) {
	// Output split boundaries can deliver the same word from different
	// splits only if partitioning were broken; Counts still merges.
	pairs := []kvio.Pair{
		{Key: []byte("w"), Value: codec.EncodeVarint(2)},
		{Key: []byte("w"), Value: codec.EncodeVarint(3)},
	}
	counts, err := Counts(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if counts["w"] != 5 {
		t.Errorf("merged count = %d", counts["w"])
	}
}

func TestSplitBytesMatchesPerFile(t *testing.T) {
	dir := t.TempDir()
	content := ""
	for i := 0; i < 100; i++ {
		content += "pear plum pear\n"
	}
	path := filepath.Join(dir, "big.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	run := func(splitBytes int64) map[string]int64 {
		reg := core.NewRegistry()
		Register(reg)
		exec := core.NewSerial(reg)
		defer exec.Close()
		job := core.NewJob(exec)
		defer job.Close()
		out, err := Run(job, []string{path}, Options{SplitBytes: splitBytes, MapSplits: 4})
		if err != nil {
			t.Fatal(err)
		}
		pairs, err := out.Collect()
		if err != nil {
			t.Fatal(err)
		}
		counts, err := Counts(pairs)
		if err != nil {
			t.Fatal(err)
		}
		return counts
	}
	whole := run(0)
	chunked := run(128)
	if whole["pear"] != 200 || chunked["pear"] != 200 || whole["plum"] != chunked["plum"] {
		t.Errorf("whole %v vs chunked %v", whole, chunked)
	}
}
