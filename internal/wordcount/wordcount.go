// Package wordcount implements the canonical WordCount program
// (Program 1 of the Mrs paper): the map emits (word, 1) for every
// whitespace-separated token and the reduce sums the counts. The
// reduce function doubles as the combiner, exactly as the paper's
// measured configuration does ("we make use of this optimization in
// both the Mrs version and the java version").
package wordcount

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kvio"
)

// Function names registered by Register.
const (
	MapName    = "wordcount_map"
	ReduceName = "wordcount_reduce"
)

// Map emits (word, 1) for each token of the input line.
func Map(key, value []byte, emit kvio.Emitter) error {
	for _, w := range bytes.Fields(value) {
		if err := emit.Emit(w, codec.EncodeVarint(1)); err != nil {
			return err
		}
	}
	return nil
}

// Reduce sums counts; it is also the combiner.
func Reduce(key []byte, values [][]byte, emit kvio.Emitter) error {
	var total int64
	for _, v := range values {
		n, err := codec.DecodeVarint(v)
		if err != nil {
			return fmt.Errorf("wordcount: bad count for %q: %w", key, err)
		}
		total += n
	}
	return emit.Emit(key, codec.EncodeVarint(total))
}

// Register adds the WordCount functions to a registry.
func Register(reg *core.Registry) {
	reg.RegisterMap(MapName, Map)
	reg.RegisterReduce(ReduceName, Reduce)
}

// Options tunes a WordCount run.
type Options struct {
	// MapSplits is the number of reduce-side splits produced by the map
	// (default: number of input splits).
	MapSplits int
	// ReduceSplits is the number of output splits (default MapSplits).
	ReduceSplits int
	// Combiner enables map-side combining (default true in Run; set
	// DisableCombiner to turn it off for the ablation).
	DisableCombiner bool
	// SplitBytes, when positive, divides large files into byte-range
	// splits of roughly this size so map parallelism does not depend
	// on file count (Hadoop's input-split model).
	SplitBytes int64
}

// Run counts words in the files and returns the queued output dataset.
// The caller owns the job.
func Run(job *core.Job, paths []string, opts Options) (*core.Dataset, error) {
	var src *core.Dataset
	var err error
	if opts.SplitBytes > 0 {
		src, err = job.TextFileDataSplit(paths, opts.SplitBytes)
	} else {
		src, err = job.TextFileData(paths)
	}
	if err != nil {
		return nil, err
	}
	return RunOn(job, src, opts)
}

// RunOn counts words in an existing dataset.
func RunOn(job *core.Job, src *core.Dataset, opts Options) (*core.Dataset, error) {
	mapSplits := opts.MapSplits
	if mapSplits <= 0 {
		mapSplits = src.NumSplits()
	}
	reduceSplits := opts.ReduceSplits
	if reduceSplits <= 0 {
		reduceSplits = mapSplits
	}
	combine := ReduceName
	if opts.DisableCombiner {
		combine = ""
	}
	return job.MapReduce(src, MapName, ReduceName,
		core.OpOpts{Splits: mapSplits, Combine: combine},
		core.OpOpts{Splits: reduceSplits})
}

// Counts converts collected WordCount output into a map.
func Counts(pairs []kvio.Pair) (map[string]int64, error) {
	out := make(map[string]int64, len(pairs))
	for _, p := range pairs {
		n, err := codec.DecodeVarint(p.Value)
		if err != nil {
			return nil, fmt.Errorf("wordcount: bad count for %q: %w", p.Key, err)
		}
		out[string(p.Key)] += n
	}
	return out, nil
}

// Top returns the n most frequent words (ties broken alphabetically).
func Top(counts map[string]int64, n int) []struct {
	Word  string
	Count int64
} {
	type wc struct {
		Word  string
		Count int64
	}
	all := make([]wc, 0, len(counts))
	for w, c := range counts {
		all = append(all, wc{w, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Word < all[j].Word
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		Word  string
		Count int64
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Word  string
			Count int64
		}{all[i].Word, all[i].Count}
	}
	return out
}
