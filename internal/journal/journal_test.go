package journal

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

func submitEv(job int64, name string) Event {
	return Event{Kind: EvJobSubmitted, Job: job, Name: name, SpecHash: SpecHash(name, true)}
}

func taskEv(job int64, dataset, task int, bytes int64) Event {
	return Event{
		Kind: EvTaskDone, Job: job, Dataset: dataset, Task: task, InBytes: bytes,
		Outputs: []Manifest{{Name: "b0", URL: "file:///tmp/b0", Records: 3, Bytes: bytes}},
	}
}

// append a few events, close cleanly, reopen: full state back.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Jobs) != 0 {
		t.Fatalf("fresh journal has %d jobs", len(st.Jobs))
	}
	must := func(ev Event) {
		t.Helper()
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	must(submitEv(1, "wordcount"))
	must(taskEv(1, 0, 0, 100))
	must(taskEv(1, 0, 1, 50))
	must(Event{Kind: EvJobWeight, Job: 1, Weight: 4})
	must(submitEv(2, "pi"))
	must(Event{Kind: EvJobDone, Job: 2})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	jr := st2.Job(1)
	if jr == nil || jr.Name != "wordcount" || jr.State != JobRunning {
		t.Fatalf("job 1 record = %+v", jr)
	}
	if jr.TasksDone != 2 || jr.ShuffleBytes != 150 {
		t.Fatalf("job 1 aggregates = %d tasks, %d bytes", jr.TasksDone, jr.ShuffleBytes)
	}
	if jr.Weight != 4 {
		t.Fatalf("job 1 weight = %d", jr.Weight)
	}
	if got := jr.TaskOutputs(0, 1); len(got) != 1 || got[0].URL != "file:///tmp/b0" {
		t.Fatalf("task outputs = %+v", got)
	}
	if jr2 := st2.Job(2); jr2 == nil || jr2.State != JobDone || jr2.Tasks != nil {
		t.Fatalf("job 2 record = %+v", st2.Job(2))
	}
	if st2.MaxJobID != 2 {
		t.Fatalf("MaxJobID = %d", st2.MaxJobID)
	}
}

// Abandon simulates a crash: no final checkpoint, but every appended
// record survives replay.
func TestAbandonReplaysAll(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(submitEv(1, "wc"))
	for i := 0; i < 10; i++ {
		j.Append(taskEv(1, 0, i, 10))
	}
	j.Abandon()

	_, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if jr := st.Job(1); jr == nil || jr.TasksDone != 10 {
		t.Fatalf("after abandon, job 1 = %+v", st.Job(1))
	}
}

// Torn final record (the usual crash shape): every earlier record
// replays, the tear is truncated away, and new appends land cleanly.
func TestTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(submitEv(1, "wc"))
	j.Append(taskEv(1, 0, 0, 10))
	j.Append(taskEv(1, 0, 1, 10))
	j.Abandon()

	logPath := filepath.Join(dir, LogName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear off the last 5 bytes of the final record.
	if err := os.WriteFile(logPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	jr := st.Job(1)
	if jr == nil || jr.TasksDone != 1 {
		t.Fatalf("after torn tail, job 1 = %+v", jr)
	}
	// The tear is gone: appending and replaying again must work.
	if err := j2.Append(taskEv(1, 0, 7, 10)); err != nil {
		t.Fatal(err)
	}
	j2.Abandon()
	_, st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if jr := st2.Job(1); jr.TasksDone != 2 || jr.TaskOutputs(0, 7) == nil {
		t.Fatalf("after re-append, job 1 = %+v", jr)
	}
}

// A flipped checksum byte mid-log ends replay at the last intact record
// before the flip — and never panics.
func TestFlippedChecksumByte(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(submitEv(1, "wc"))
	j.Append(taskEv(1, 0, 0, 10))
	j.Append(taskEv(1, 0, 1, 10))
	j.Abandon()

	logPath := filepath.Join(dir, LogName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Find the second record's CRC field and flip a byte in it.
	off := len(magic)
	n0 := binary.LittleEndian.Uint32(data[off:])
	crcOff := off + 8 + int(n0) + 4
	data[crcOff] ^= 0xFF
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	jr := st.Job(1)
	if jr == nil || jr.Name != "wc" {
		t.Fatalf("intact prefix lost: %+v", jr)
	}
	if jr.TasksDone != 0 {
		t.Fatalf("replay crossed a corrupt record: TasksDone = %d", jr.TasksDone)
	}
}

// A truncated checkpoint is ignored; replay falls back to the log.
func TestTruncatedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(submitEv(1, "wc"))
	j.Append(taskEv(1, 0, 0, 10))
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint record lives only in the log tail.
	j.Append(taskEv(1, 0, 1, 10))
	j.Abandon()

	cpPath := filepath.Join(dir, CheckpointName)
	data, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cpPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	_, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint is gone, so only the post-checkpoint tail survives: the
	// point is that replay neither panics nor trusts half a checkpoint.
	jr := st.Job(1)
	if jr == nil {
		t.Fatal("log tail lost with checkpoint")
	}
	if jr.TaskOutputs(0, 1) == nil {
		t.Fatalf("tail record lost: %+v", jr)
	}
}

// Crash between checkpoint rename and log truncation: the log still
// holds events the checkpoint already folded in; idempotent replay must
// not double-count them.
func TestCrashBetweenCheckpointAndTruncate(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(submitEv(1, "wc"))
	j.Append(taskEv(1, 0, 0, 10))
	j.Append(taskEv(1, 0, 1, 10))
	logBefore, err := os.ReadFile(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	j.Abandon()
	// Restore the pre-truncation log: checkpoint and log now overlap.
	if err := os.WriteFile(filepath.Join(dir, LogName), logBefore, 0o644); err != nil {
		t.Fatal(err)
	}

	_, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	jr := st.Job(1)
	if jr.TasksDone != 2 || jr.ShuffleBytes != 20 {
		t.Fatalf("overlap double-counted: %d tasks, %d bytes", jr.TasksDone, jr.ShuffleBytes)
	}
}

// Double-open on one directory fails fast via the lock file; a
// released (crashed) journal unlocks automatically.
func TestLockFailsFast(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open on a live journal succeeded")
	}
	j.Abandon()
	j2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	j2.Close()
}

// Record-count compaction truncates the log and survives replay.
func TestRecordCountCheckpoint(t *testing.T) {
	dir := t.TempDir()
	met := obs.NewMetrics()
	j, _, err := Open(dir, Options{Metrics: met, CheckpointRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(submitEv(1, "wc"))
	for i := 0; i < 7; i++ {
		j.Append(taskEv(1, 0, i, 10))
	}
	if got := met.Get(obs.MetricJournalTruncations); got < 2 {
		t.Fatalf("truncations = %d, want >= 2", got)
	}
	if got := met.Get(obs.MetricJournalRecords); got != 8 {
		t.Fatalf("records = %d, want 8", got)
	}
	info, err := os.Stat(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	// After the last compaction at 6 appends, at most 2 records remain.
	if info.Size() > 1024 {
		t.Fatalf("log not compacted: %d bytes", info.Size())
	}
	j.Abandon()
	_, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if jr := st.Job(1); jr.TasksDone != 7 {
		t.Fatalf("after compaction, TasksDone = %d", jr.TasksDone)
	}
}

// Timer-driven compaction via the fake clock.
func TestClockDrivenCheckpoint(t *testing.T) {
	dir := t.TempDir()
	fc := clock.NewFake(time.Unix(1000, 0))
	met := obs.NewMetrics()
	j, _, err := Open(dir, Options{
		Clock: fc, Metrics: met,
		CheckpointEvery:   time.Minute,
		CheckpointRecords: -1, // isolate the timer path
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Append(submitEv(1, "wc"))
	j.Append(taskEv(1, 0, 0, 10))
	fc.Advance(2 * time.Minute)
	deadline := time.Now().Add(2 * time.Second)
	for met.Get(obs.MetricJournalTruncations) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timer checkpoint never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if st, ok := readCheckpoint(filepath.Join(dir, CheckpointName)); !ok || st.Job(1) == nil {
		t.Fatal("checkpoint missing or unreadable after timer compaction")
	}
}

// Events stamped by the injected clock.
func TestClockStamps(t *testing.T) {
	dir := t.TempDir()
	start := time.Unix(5000, 0)
	fc := clock.NewFake(start)
	j, _, err := Open(dir, Options{Clock: fc, CheckpointRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(submitEv(1, "wc"))
	fc.Advance(3 * time.Second)
	j.Append(taskEv(1, 0, 0, 10))
	j.Abandon()
	events, _ := readLog(filepath.Join(dir, LogName))
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].UnixNano != start.UnixNano() {
		t.Fatalf("event 0 stamp = %d", events[0].UnixNano)
	}
	if events[1].UnixNano != start.Add(3*time.Second).UnixNano() {
		t.Fatalf("event 1 stamp = %d", events[1].UnixNano)
	}
}

// Inspect reads a live journal without taking the lock.
func TestInspectWhileLocked(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Append(submitEv(1, "wc"))
	j.Append(Event{Kind: EvJobFailed, Job: 1, Error: "boom"})
	st, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	jr := st.Job(1)
	if jr == nil || jr.State != JobFailed || jr.Error != "boom" {
		t.Fatalf("inspect = %+v", jr)
	}
	if _, err := Inspect(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("Inspect of a missing dir succeeded")
	}
}

// Apply idempotency invariants used by replay.
func TestApplyIdempotent(t *testing.T) {
	st := NewState()
	events := []Event{
		submitEv(3, "wc"),
		taskEv(3, 0, 0, 10),
		taskEv(3, 0, 0, 10),  // duplicate completion
		submitEv(3, "other"), // re-submit must not rename
		{Kind: EvJobDone, Job: 3},
		taskEv(3, 0, 1, 10), // completion after done: dropped
	}
	for _, ev := range events {
		st.Apply(ev)
	}
	jr := st.Job(3)
	if jr.TasksDone != 1 || jr.ShuffleBytes != 10 {
		t.Fatalf("duplicate counted: %+v", jr)
	}
	if jr.Name != "wc" {
		t.Fatalf("re-submit renamed job: %q", jr.Name)
	}
	if jr.State != JobDone || jr.Tasks != nil {
		t.Fatalf("post-done completion resurrected tasks: %+v", jr)
	}
	// Job 0 (unmanaged) is never folded.
	st.Apply(Event{Kind: EvTaskDone, Job: 0, Dataset: 0, Task: 0})
	if len(st.Jobs) != 1 {
		t.Fatalf("job 0 folded: %v", st.Jobs)
	}
	// Clone is deep.
	c := st.Clone()
	if !reflect.DeepEqual(c, st) {
		t.Fatal("clone differs")
	}
	c.Apply(submitEv(9, "x"))
	if st.Job(9) != nil {
		t.Fatal("clone shares state")
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(submitEv(1, "wc")); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// An empty or garbage log file never errors Open — it is restarted.
func TestGarbageLogRestarts(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LogName), []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Jobs) != 0 {
		t.Fatalf("garbage produced jobs: %v", st.Jobs)
	}
	if err := j.Append(submitEv(1, "wc")); err != nil {
		t.Fatal(err)
	}
	j.Abandon()
	_, st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Job(1) == nil {
		t.Fatal("append after garbage restart lost")
	}
}

// The decoder rejects absurd length prefixes without allocating.
func TestDecodeRecordsBadLength(t *testing.T) {
	frame := make([]byte, 8)
	binary.LittleEndian.PutUint32(frame, 1<<31)
	events, off := DecodeRecords(frame)
	if len(events) != 0 || off != 0 {
		t.Fatalf("decoded %d events at off %d", len(events), off)
	}
}

func TestSpecHashDistinguishes(t *testing.T) {
	a := SpecHash("wordcount", true)
	if a != SpecHash("wordcount", true) {
		t.Fatal("hash not deterministic")
	}
	if a == SpecHash("wordcount", false) || a == SpecHash("pi", true) {
		t.Fatal("hash collision across specs")
	}
}

// FuzzJournalReplay fuzzes the record decoder: arbitrary bytes must
// decode some intact prefix without panicking, and re-encoding that
// prefix must decode back to itself (round-trip stability).
func FuzzJournalReplay(f *testing.F) {
	// Seed with a valid two-record log body.
	var seed []byte
	for _, ev := range []Event{submitEv(1, "wc"), taskEv(1, 0, 0, 10)} {
		payload, _ := json.Marshal(ev)
		rec := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
		copy(rec[8:], payload)
		seed = append(seed, rec...)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		events, off := DecodeRecords(data)
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("offset %d out of range [0,%d]", off, len(data))
		}
		// Folding arbitrary decoded events must not panic either.
		st := NewState()
		for _, ev := range events {
			st.Apply(ev)
		}
		// The intact prefix re-decodes identically.
		again, off2 := DecodeRecords(data[:off])
		if off2 != off || len(again) != len(events) {
			t.Fatalf("prefix re-decode: %d events at %d, want %d at %d",
				len(again), off2, len(events), off)
		}
	})
}
