// Package journal is the master's write-ahead log of job lifecycle
// state — the piece that turns the runtime into a durable job service.
// Everything a restarted master needs to pick a job back up is recorded
// as it happens: job submissions (with a hash of the submitted program
// so a resume cannot silently attach a different driver), task
// completions with their output bucket manifests, job completion and
// failure, and tenant fair-share weight changes.
//
// The on-disk format is deliberately boring. The log is an append-only
// file of length-prefixed, checksummed records:
//
//	8-byte magic "MRSJRNL1"
//	repeated { uint32 LE payload length | uint32 LE CRC-32C | JSON payload }
//
// Periodically the journal compacts: the folded State is written to a
// checkpoint file (same magic, one record) via the classic
// tmp+fsync+rename dance, and the log is truncated back to its header.
// Replay therefore applies the checkpoint (if intact) and then re-plays
// the log tail; Apply is idempotent, so the crash window between
// checkpoint rename and log truncation — where the log still holds
// events the checkpoint already folded in — replays harmlessly.
//
// Corruption never panics and never loses the intact prefix: a torn
// final record (the normal shape of a crash mid-append), a flipped
// checksum byte, or garbage simply ends replay at the last record that
// framed and checksummed correctly, and Open truncates the tear away so
// new appends start from a clean boundary. A corrupt checkpoint is
// ignored entirely and replay falls back to whatever the log holds.
//
// A lock file (flock) makes double-recovery fail fast: two live masters
// replaying one directory would both believe they own the fleet. A
// crashed process releases the lock with its file descriptors, so
// recovery after a real crash needs no manual unlocking.
//
// Timestamps and the periodic checkpoint ticker come from the
// injectable clock (internal/clock), keeping recovery tests fully
// deterministic.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/bucket"
	"repro/internal/clock"
	"repro/internal/hash"
	"repro/internal/obs"
)

// File names inside a journal directory.
const (
	LogName        = "journal.log"
	CheckpointName = "checkpoint"
	LockName       = "LOCK"
)

// magic identifies journal files (log and checkpoint alike).
var magic = []byte("MRSJRNL1")

// maxRecordLen bounds one record's payload, guarding replay against a
// corrupt length prefix claiming gigabytes.
const maxRecordLen = 64 << 20

// DefaultCheckpointRecords is how many appended records trigger a
// compaction when Options.CheckpointRecords is zero.
const DefaultCheckpointRecords = 1024

// castagnoli is the CRC-32C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Event kinds.
const (
	EvJobSubmitted = "job_submitted"
	EvTaskDone     = "task_done"
	EvJobDone      = "job_done"
	EvJobFailed    = "job_failed"
	EvJobWeight    = "job_weight"
)

// Job lifecycle states as folded into a JobRecord.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Manifest describes one output bucket of a journaled task completion —
// exactly a bucket.Descriptor, kept as its own type so the wire format
// of the journal is explicit and fuzzable in isolation.
type Manifest struct {
	Name    string `json:"name,omitempty"`
	URL     string `json:"url"`
	Records int64  `json:"records,omitempty"`
	Bytes   int64  `json:"bytes,omitempty"`
}

// Descriptor converts the manifest back to the store's descriptor type.
func (m Manifest) Descriptor() bucket.Descriptor {
	return bucket.Descriptor{Name: m.Name, URL: m.URL, Records: m.Records, Bytes: m.Bytes}
}

// FromDescriptors converts task outputs into journal manifests.
func FromDescriptors(descs []bucket.Descriptor) []Manifest {
	out := make([]Manifest, len(descs))
	for i, d := range descs {
		out[i] = Manifest{Name: d.Name, URL: d.URL, Records: d.Records, Bytes: d.Bytes}
	}
	return out
}

// Event is one journal record. Only the fields relevant to the Kind are
// set; unknown kinds replay as no-ops so older masters can read logs
// written by newer ones.
type Event struct {
	Kind string `json:"kind"`
	// Job is the managed job the event belongs to.
	Job int64 `json:"job,omitempty"`
	// Name and SpecHash identify the submitted program (EvJobSubmitted).
	Name     string `json:"name,omitempty"`
	SpecHash string `json:"spec_hash,omitempty"`
	// Dataset/Task key a completion; Outputs are its bucket manifests and
	// InBytes its consumed input bytes (EvTaskDone).
	Dataset int        `json:"dataset,omitempty"`
	Task    int        `json:"task,omitempty"`
	Outputs []Manifest `json:"outputs,omitempty"`
	InBytes int64      `json:"in_bytes,omitempty"`
	// Node is the control-plane node that reported the completion
	// (EvTaskDone; "" in logs from pre-hierarchy masters).
	Node string `json:"node,omitempty"`
	// Weight is the job's new fair-share weight (EvJobWeight).
	Weight int `json:"weight,omitempty"`
	// Error is the failure message (EvJobFailed).
	Error string `json:"error,omitempty"`
	// UnixNano is the clock stamp assigned at append time.
	UnixNano int64 `json:"t,omitempty"`
}

// SpecHash fingerprints a job submission: resuming a journaled job
// requires presenting the same name and driver shape, so a client
// cannot silently reattach a different program to a half-finished job.
func SpecHash(name string, pipeline bool) string {
	s := name
	if pipeline {
		s += "|pipelined"
	}
	return fmt.Sprintf("%016x", hash.FNV1a64String(s))
}

// TaskKey names a task within a job's record map: dataset (queue
// position, deterministic across re-drives of the same program) and
// task index within the operation.
func TaskKey(dataset, task int) string {
	return fmt.Sprintf("d%d.t%d", dataset, task)
}

// JobRecord is the folded state of one journaled job.
type JobRecord struct {
	ID       int64  `json:"id"`
	Name     string `json:"name,omitempty"`
	SpecHash string `json:"spec_hash,omitempty"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	// Weight is the job's last journaled fair-share weight (0 = default).
	Weight int `json:"weight,omitempty"`
	// TasksDone and ShuffleBytes restore the job's control-plane stats
	// on recovery, so a recovered master reports the same JobStats a
	// never-crashed one would.
	TasksDone    int64 `json:"tasks_done,omitempty"`
	ShuffleBytes int64 `json:"shuffle_bytes,omitempty"`
	// NodeTasks counts completions per reporting node (slave or
	// sub-master), so mrs-submit -list-jobs can show how work spread
	// over the fleet; empty for logs from pre-hierarchy masters.
	NodeTasks map[string]int64 `json:"node_tasks,omitempty"`
	// Tasks maps TaskKey(dataset, task) to the completion's output
	// bucket manifests; cleared once the job finishes (its data is
	// reclaimed fleet-wide then, so the manifests dangle).
	Tasks map[string][]Manifest `json:"tasks,omitempty"`
}

// TaskOutputs returns the journaled manifests for one completed task
// (nil if the task never completed).
func (jr *JobRecord) TaskOutputs(dataset, task int) []Manifest {
	if jr == nil {
		return nil
	}
	return jr.Tasks[TaskKey(dataset, task)]
}

// State is the compacted view of a journal: every job it has seen and
// the highest job id issued, which seeds the restarted manager's id
// counter so resumed and fresh jobs never collide.
type State struct {
	MaxJobID int64                `json:"max_job_id,omitempty"`
	Jobs     map[int64]*JobRecord `json:"jobs,omitempty"`
}

// NewState returns an empty state.
func NewState() *State {
	return &State{Jobs: map[int64]*JobRecord{}}
}

// Job returns the record for a job id (nil if unknown).
func (s *State) Job(id int64) *JobRecord {
	if s == nil {
		return nil
	}
	return s.Jobs[id]
}

func (s *State) jobRecord(id int64) *JobRecord {
	jr, ok := s.Jobs[id]
	if !ok {
		jr = &JobRecord{ID: id, State: JobRunning, Tasks: map[string][]Manifest{}}
		s.Jobs[id] = jr
	}
	if id > s.MaxJobID {
		s.MaxJobID = id
	}
	return jr
}

// Apply folds one event into the state. Apply is idempotent — replaying
// any prefix of the log on top of a checkpoint that already contains it
// converges to the same state — and tolerant: events for unknown kinds
// or out-of-order jobs never error, they just contribute what they can.
func (s *State) Apply(ev Event) {
	if ev.Job == 0 && ev.Kind != "" {
		// Job 0 is the unmanaged single-job namespace; it is never
		// journaled (nothing can resume it), so nothing to fold.
		return
	}
	switch ev.Kind {
	case EvJobSubmitted:
		jr := s.jobRecord(ev.Job)
		if jr.Name == "" {
			jr.Name = ev.Name
		}
		if jr.SpecHash == "" {
			jr.SpecHash = ev.SpecHash
		}
	case EvTaskDone:
		jr := s.jobRecord(ev.Job)
		if jr.State != JobRunning {
			// The job already finished (and its buckets were reclaimed);
			// a replayed pre-checkpoint completion must not resurrect
			// dangling manifests.
			return
		}
		key := TaskKey(ev.Dataset, ev.Task)
		if _, dup := jr.Tasks[key]; !dup {
			jr.TasksDone++
			jr.ShuffleBytes += ev.InBytes
			if ev.Node != "" {
				if jr.NodeTasks == nil {
					jr.NodeTasks = map[string]int64{}
				}
				jr.NodeTasks[ev.Node]++
			}
		}
		jr.Tasks[key] = append([]Manifest(nil), ev.Outputs...)
	case EvJobDone:
		jr := s.jobRecord(ev.Job)
		jr.State = JobDone
		jr.Tasks = nil
	case EvJobFailed:
		jr := s.jobRecord(ev.Job)
		jr.State = JobFailed
		jr.Error = ev.Error
		jr.Tasks = nil
	case EvJobWeight:
		s.jobRecord(ev.Job).Weight = ev.Weight
	}
}

// Clone deep-copies the state (JSON round trip: the state is small and
// this cannot drift from the serialized form).
func (s *State) Clone() *State {
	blob, err := json.Marshal(s)
	if err != nil {
		return NewState()
	}
	out := NewState()
	if err := json.Unmarshal(blob, out); err != nil {
		return NewState()
	}
	if out.Jobs == nil {
		out.Jobs = map[int64]*JobRecord{}
	}
	return out
}

// Options tunes a journal.
type Options struct {
	// Clock stamps events and drives the periodic checkpoint (nil = wall
	// clock).
	Clock clock.Clock
	// Metrics receives mrs_journal_records_total and
	// mrs_journal_truncations_total (nil disables).
	Metrics *obs.Metrics
	// CheckpointEvery compacts on a clock ticker (0 disables the timer;
	// record-count compaction still applies).
	CheckpointEvery time.Duration
	// CheckpointRecords compacts after this many appended records
	// (0 selects DefaultCheckpointRecords, negative disables).
	CheckpointRecords int
}

// Journal is an open, locked journal directory.
type Journal struct {
	dir  string
	opts Options
	clk  clock.Clock

	mu              sync.Mutex
	log             *os.File
	lock            *os.File
	state           *State
	sinceCheckpoint int
	closed          bool

	ticker   clock.Ticker
	tickStop chan struct{}
}

// Open locks dir, replays checkpoint + log tail into the returned
// recovered State (a snapshot; the journal keeps its own copy current),
// truncates any torn tail so appends restart from a clean record
// boundary, and begins accepting appends. Opening a directory another
// live journal holds fails fast with a lock error.
func Open(dir string, opts Options) (*Journal, *State, error) {
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.CheckpointRecords == 0 {
		opts.CheckpointRecords = DefaultCheckpointRecords
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	lock, err := acquireLock(filepath.Join(dir, LockName))
	if err != nil {
		return nil, nil, err
	}

	st := NewState()
	if cp, ok := readCheckpoint(filepath.Join(dir, CheckpointName)); ok {
		st = cp
	}
	events, validLen := readLog(filepath.Join(dir, LogName))
	for _, ev := range events {
		st.Apply(ev)
	}

	log, err := os.OpenFile(filepath.Join(dir, LogName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		lock.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if validLen < int64(len(magic)) {
		// Fresh (or hopelessly mangled) log: restart it.
		validLen = int64(len(magic))
		if err := log.Truncate(0); err == nil {
			_, err = log.Write(magic)
		}
		if err != nil {
			log.Close()
			lock.Close()
			return nil, nil, fmt.Errorf("journal: writing log header: %w", err)
		}
	} else if err := log.Truncate(validLen); err != nil {
		log.Close()
		lock.Close()
		return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
	}
	if _, err := log.Seek(validLen, 0); err != nil {
		log.Close()
		lock.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}

	j := &Journal{dir: dir, opts: opts, clk: opts.Clock, log: log, lock: lock, state: st}
	if opts.CheckpointEvery > 0 {
		ticker := opts.Clock.NewTicker(opts.CheckpointEvery)
		stop := make(chan struct{})
		j.ticker, j.tickStop = ticker, stop
		go func() {
			for {
				select {
				case <-stop:
					return
				case <-ticker.Chan():
					_ = j.Checkpoint()
				}
			}
		}()
	}
	return j, st.Clone(), nil
}

// Inspect replays a journal directory read-only, without taking the
// lock — how tooling lists resumable jobs (possibly while a master is
// live on the same directory).
func Inspect(dir string) (*State, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	st := NewState()
	if cp, ok := readCheckpoint(filepath.Join(dir, CheckpointName)); ok {
		st = cp
	}
	events, _ := readLog(filepath.Join(dir, LogName))
	for _, ev := range events {
		st.Apply(ev)
	}
	return st, nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// State returns a snapshot of the folded state.
func (j *Journal) State() *State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Clone()
}

// Append folds the event into the state and writes it to the log. The
// event is stamped with the journal's clock unless already stamped.
// Appends are not individually fsynced — the OS page cache rides out
// process crashes, and Sync/Close/Checkpoint flush for machine-level
// durability points.
func (j *Journal) Append(ev Event) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	if ev.UnixNano == 0 {
		ev.UnixNano = j.clk.Now().UnixNano()
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("journal: encoding event: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[8:], payload)
	if _, err := j.log.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.state.Apply(ev)
	j.sinceCheckpoint++
	j.opts.Metrics.Add(obs.MetricJournalRecords, 1)
	if j.opts.CheckpointRecords > 0 && j.sinceCheckpoint >= j.opts.CheckpointRecords {
		return j.checkpointLocked()
	}
	return nil
}

// Sync flushes appended records to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.log.Sync()
}

// Checkpoint writes the compacted state atomically and truncates the
// log back to its header.
func (j *Journal) Checkpoint() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	return j.checkpointLocked()
}

func (j *Journal) checkpointLocked() error {
	payload, err := json.Marshal(j.state)
	if err != nil {
		return fmt.Errorf("journal: encoding checkpoint: %w", err)
	}
	tmp := filepath.Join(j.dir, CheckpointName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	frame := make([]byte, len(magic)+8+len(payload))
	copy(frame, magic)
	binary.LittleEndian.PutUint32(frame[len(magic):], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[len(magic)+4:], crc32.Checksum(payload, castagnoli))
	copy(frame[len(magic)+8:], payload)
	if _, err := f.Write(frame); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, CheckpointName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	// Make the rename durable before dropping the log records it folds.
	if d, err := os.Open(j.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	if err := j.log.Truncate(int64(len(magic))); err != nil {
		return fmt.Errorf("journal: truncating log: %w", err)
	}
	if _, err := j.log.Seek(int64(len(magic)), 0); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.sinceCheckpoint = 0
	j.opts.Metrics.Add(obs.MetricJournalTruncations, 1)
	return nil
}

// Close compacts one final time, fsyncs, closes the files, and releases
// the directory lock — the clean-shutdown path. It is safe to call
// twice.
func (j *Journal) Close() error {
	j.stopTicker()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	err := j.checkpointLocked()
	if serr := j.log.Sync(); err == nil {
		err = serr
	}
	j.closeFilesLocked()
	return err
}

// Abandon drops the journal exactly as a killed process would: no final
// checkpoint, no fsync — whatever the OS has is what recovery gets. The
// lock releases with the file descriptor, as it would on process death.
// Tests use this to simulate master crashes.
func (j *Journal) Abandon() {
	j.stopTicker()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closeFilesLocked()
}

func (j *Journal) stopTicker() {
	j.mu.Lock()
	ticker, stop := j.ticker, j.tickStop
	j.ticker, j.tickStop = nil, nil
	j.mu.Unlock()
	if ticker != nil {
		ticker.Stop()
		close(stop)
	}
}

func (j *Journal) closeFilesLocked() {
	j.closed = true
	j.log.Close()
	// Closing the fd releases the flock.
	j.lock.Close()
}

// ---------------------------------------------------------------------------
// Decoding (shared by replay, Inspect, and the fuzz targets)

// DecodeRecords parses framed records from raw bytes (no magic header)
// and returns every intact prefix record plus the offset where the
// intact prefix ends. It never panics: a bad length, checksum, or JSON
// body simply ends the prefix.
func DecodeRecords(data []byte) ([]Event, int64) {
	var events []Event
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < 8 {
			return events, off
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		if n > maxRecordLen || int64(n) > int64(len(rest)-8) {
			return events, off
		}
		payload := rest[8 : 8+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			return events, off
		}
		var ev Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return events, off
		}
		events = append(events, ev)
		off += 8 + int64(n)
	}
}

// readLog returns the intact prefix events of a log file and the byte
// length of that prefix (including the magic header). A missing file or
// bad header yields no events and length 0.
func readLog(path string) ([]Event, int64) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		return nil, 0
	}
	events, off := DecodeRecords(data[len(magic):])
	return events, int64(len(magic)) + off
}

// readCheckpoint parses a checkpoint file: magic plus exactly one
// framed State record. Any corruption ignores the checkpoint entirely
// (replay then falls back to the log).
func readCheckpoint(path string) (*State, bool) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) < len(magic)+8 || string(data[:len(magic)]) != string(magic) {
		return nil, false
	}
	body := data[len(magic):]
	n := binary.LittleEndian.Uint32(body[0:4])
	if n > maxRecordLen || int64(n) != int64(len(body)-8) {
		return nil, false
	}
	payload := body[8:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(body[4:8]) {
		return nil, false
	}
	st := NewState()
	if err := json.Unmarshal(payload, st); err != nil {
		return nil, false
	}
	if st.Jobs == nil {
		st.Jobs = map[int64]*JobRecord{}
	}
	return st, true
}

// acquireLock takes an exclusive, non-blocking flock on path. The lock
// outlives nothing: process death (or Journal close) releases it.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %s is locked by another live master: %w", path, err)
	}
	return f, nil
}
