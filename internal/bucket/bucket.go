// Package bucket manages intermediate data between tasks. Each task
// writes its output partitioned into buckets (one per destination
// split); each bucket is addressable by URL so a consumer task can read
// it later, possibly from another machine.
//
// Three URL schemes mirror the data paths in §IV-B of the Mrs paper:
//
//	mem:<store>/<name>   in-memory, single-process execution modes
//	file://<path>        shared-filesystem staging (the fault-tolerant path)
//	http://host/data/<…> direct slave-to-slave serving via the built-in
//	                     HTTP server (the high-performance path)
//
// A Store owns buckets created locally. Opening a URL resolves mem and
// file buckets locally and fetches http buckets over the network.
package bucket

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/hash"
	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/wirecodec"
)

// CompressExt marks a bucket file stored whole-stream flate-compressed
// in the legacy (pre-block) at-rest form. The suffix makes compressed
// buckets self-describing: any reader that sees it (local open, file://
// URL, the data server) knows to decompress, so producers and consumers
// need not agree on configuration.
const CompressExt = ".fz"

// BlockExt marks a bucket file stored in kvio block framing. The full
// at-rest suffix is BlockExt plus the block codec's extension —
// ".mrb" (identity blocks), ".mrb.fz" (deflate blocks), ".mrb.lz" —
// so the data server knows the at-rest codec without opening the file
// and can serve it verbatim to a client that accepts that codec.
const BlockExt = ".mrb"

// ColExt marks a bucket file whose blocks are columnar frames (kvio's
// second block kind: key and value columns with per-column codecs).
// Like BlockExt it composes with the codec extension — ".mrc",
// ".mrc.fz", ".mrc.lz" — so the data server knows both the at-rest
// codec and the block kind without opening the file, which is what lets
// it transcode down to row blocks for pre-columnar peers.
const ColExt = ".mrc"

// Descriptor identifies a finished bucket.
type Descriptor struct {
	// Name is the store-relative bucket name, e.g. "ds3/t2/s1".
	Name string
	// URL locates the bucket for consumers ("mem:", "file://", "http://").
	URL string
	// Records and Bytes describe the contents (framing excluded).
	Records int64
	Bytes   int64
}

// storeSeq distinguishes mem: URLs of different stores in one process.
var (
	storeSeqMu sync.Mutex
	storeSeq   int
)

// Store creates and resolves buckets.
type Store struct {
	id      int
	dir     string // if non-empty, buckets are files under dir
	baseURL string // if non-empty, file buckets advertise baseURL/<name>

	mu           sync.Mutex
	mem          map[string][]byte  // record-stream payloads for mem buckets
	client       *http.Client       // overrides the shared fetch client (fault injection)
	compress     bool               // write new file buckets legacy flate-compressed
	codec        wirecodec.Codec    // if set, write new file buckets block-framed with this codec
	blockEnc     kvio.BlockEncoding // block kind + key encoding for new file buckets
	blockSize    int                // target uncompressed bytes per block (0 = kvio default)
	rowOnlyFetch bool               // test hook: fetch like a pre-columnar peer
	metrics      *obs.Metrics       // wire-byte counters (nil-safe)
}

// NewMemStore returns a Store that keeps buckets in memory. Its
// descriptors are only meaningful within this process.
func NewMemStore() *Store {
	storeSeqMu.Lock()
	storeSeq++
	id := storeSeq
	storeSeqMu.Unlock()
	return &Store{id: id, mem: map[string][]byte{}}
}

// NewFileStore returns a Store that writes buckets as files under dir.
// If baseURL is non-empty (e.g. "http://10.0.0.7:9123/data"), finished
// buckets advertise baseURL/<name>; otherwise they advertise file://
// URLs, which is correct when dir is on a shared filesystem.
func NewFileStore(dir, baseURL string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bucket: creating store dir: %w", err)
	}
	return &Store{dir: dir, baseURL: strings.TrimRight(baseURL, "/")}, nil
}

// Dir returns the store's directory ("" for memory stores).
func (s *Store) Dir() string { return s.dir }

// SetHTTPClient overrides the HTTP client used for remote bucket
// fetches — the hook internal/fault uses to perturb the data path.
func (s *Store) SetHTTPClient(c *http.Client) {
	s.mu.Lock()
	s.client = c
	s.mu.Unlock()
}

func (s *Store) fetchClient() *http.Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.client != nil {
		return s.client
	}
	return httpClient
}

// CloseIdle closes the fetch client's idle keep-alive connections.
// Call it when a node shuts down: a pooled (or dial-racing) connection
// that never carries another request otherwise counts as active on the
// peer's server until the net/http new-connection grace period expires,
// stalling its graceful Shutdown.
func (s *Store) CloseIdle() {
	s.fetchClient().CloseIdleConnections()
}

// SetCompress controls whether new file buckets are written in the
// legacy whole-stream flate form (mem buckets never are — they never
// leave the process). Already-written buckets are unaffected; readers
// handle every at-rest form regardless of this setting. SetCodec
// supersedes this: when a block codec is set it wins.
func (s *Store) SetCompress(on bool) {
	s.mu.Lock()
	s.compress = on
	s.mu.Unlock()
}

// SetCodec switches new file buckets to kvio block framing with the
// named registered codec ("identity", "deflate", "lz"). An empty name
// reverts to the legacy per-record forms. Mem buckets are unaffected:
// they never leave the process, so framing buys them nothing.
func (s *Store) SetCodec(name string) error {
	if name == "" {
		s.mu.Lock()
		s.codec = nil
		s.mu.Unlock()
		return nil
	}
	c, ok := wirecodec.Lookup(name)
	if !ok {
		return fmt.Errorf("bucket: unknown codec %q (have %s)", name, strings.Join(wirecodec.Names(), ", "))
	}
	s.mu.Lock()
	s.codec = c
	s.mu.Unlock()
	return nil
}

// SetBlockEncoding sets the block encoding for new file buckets:
// "row" (the default), "columnar" (per-block automatic key encoding),
// or a pinned "columnar-raw"/"columnar-dict"/"columnar-delta". Columnar
// framing implies block framing, so if no block codec is set new
// buckets are written as identity-codec blocks rather than falling
// back to the legacy per-record forms.
func (s *Store) SetBlockEncoding(name string) error {
	enc, err := kvio.ParseBlockEncoding(name)
	if err != nil {
		return fmt.Errorf("bucket: %w", err)
	}
	s.mu.Lock()
	s.blockEnc = enc
	s.mu.Unlock()
	return nil
}

// SetRowOnlyFetch makes the store's HTTP fetches look like they come
// from a pre-columnar peer (no block-kind advertisement), forcing
// serving peers onto the row-block transcode fallback. Test hook for
// mixed-version fleets.
func (s *Store) SetRowOnlyFetch(on bool) {
	s.mu.Lock()
	s.rowOnlyFetch = on
	s.mu.Unlock()
}

func (s *Store) rowOnlyFetchOn() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rowOnlyFetch
}

// SetBlockSize sets the target uncompressed payload per block for new
// block-framed buckets; 0 restores the kvio default.
func (s *Store) SetBlockSize(n int) {
	s.mu.Lock()
	s.blockSize = n
	s.mu.Unlock()
}

func (s *Store) codecOn() (wirecodec.Codec, kvio.BlockEncoding, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.codec
	if c == nil && s.blockEnc.Columnar {
		c = wirecodec.Identity()
	}
	return c, s.blockEnc, s.blockSize
}

// SetMetrics wires the registry that receives the store's wire-byte
// counters. A nil registry (the default) discards them.
func (s *Store) SetMetrics(m *obs.Metrics) {
	s.mu.Lock()
	s.metrics = m
	s.mu.Unlock()
}

func (s *Store) compressOn() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compress
}

// wireCounter returns the wire-byte counter for a URL scheme's data
// path (nil, a no-op, when metrics are not wired or the path is local).
func (s *Store) wireCounter(metric string) *obs.Counter {
	s.mu.Lock()
	m := s.metrics
	s.mu.Unlock()
	return m.Counter(metric)
}

// counting wraps rc so every wire byte lands in the per-path counter,
// the per-codec counter for codecName, and the per-block-kind counter
// for encName.
func (s *Store) counting(rc io.ReadCloser, pathMetric, codecName, encName string) io.ReadCloser {
	return &countingReadCloser{
		rc: rc,
		c:  s.wireCounter(pathMetric),
		c2: s.wireCounter(obs.MetricWireBytesCodec(codecName)),
		c3: s.wireCounter(obs.MetricWireBytesEncoding(encName)),
	}
}

// blockExtIndex finds the block-framing marker (row or columnar) in an
// at-rest path, returning the marker's length so the codec extension
// after it can be extracted.
func blockExtIndex(path string) (idx, markerLen int) {
	if i := strings.Index(path, BlockExt); i >= 0 {
		return i, len(BlockExt)
	}
	if i := strings.Index(path, ColExt); i >= 0 {
		return i, len(ColExt)
	}
	return -1, 0
}

// fileCodecName classifies an at-rest file path by the codec its wire
// bytes are compressed with, for the per-codec counters.
func fileCodecName(path string) string {
	if i, n := blockExtIndex(path); i >= 0 {
		ext := path[i+n:]
		for _, name := range wirecodec.Names() {
			if c, _ := wirecodec.Lookup(name); c.Ext() == ext {
				return name
			}
		}
		return wirecodec.IdentityName
	}
	if strings.HasSuffix(path, CompressExt) {
		return wirecodec.DeflateName
	}
	return wirecodec.IdentityName
}

// fileEncodingName classifies an at-rest file path by block kind for
// the per-encoding counters; legacy record files count as row.
func fileEncodingName(path string) string {
	if strings.Contains(path, ColExt) {
		return wirecodec.BlockKindColumnar
	}
	return wirecodec.BlockKindRow
}

// InMemory reports whether this store keeps buckets in memory.
func (s *Store) InMemory() bool { return s.dir == "" }

// deflateCodec returns the registry's deflate codec, which owns the
// pooled flate state the legacy ".fz" at-rest form is built on.
func deflateCodec() wirecodec.Codec {
	c, ok := wirecodec.Lookup(wirecodec.DeflateName)
	if !ok {
		panic("wirecodec: deflate not registered")
	}
	return c
}

// Writer accumulates one bucket's records.
type Writer struct {
	store *Store
	name  string
	// memory path
	buf *bytes.Buffer
	// file path: records accumulate in tmp and are renamed to path on
	// Close, so a bucket is only ever observed complete. Duplicate task
	// attempts (reassignment races, lease requeues) then cannot expose
	// a half-written file to a concurrent reader — last rename wins and
	// both attempts produced identical content.
	f    *os.File
	tmp  string
	path string
	cw   io.WriteCloser // legacy compression layer between records and f, if on

	w      *kvio.Writer      // legacy per-record framing
	bw     *kvio.BlockWriter // block framing (when the store has a codec)
	closed bool
}

// CreateOpts carries per-bucket overrides of the store's data-plane
// defaults; zero values inherit the store settings. This is how a
// per-dataset codec or block-encoding pin (core.OpOpts) reaches the
// files a task writes.
type CreateOpts struct {
	// Codec overrides the store's block codec by registered name.
	Codec string
	// BlockEncoding overrides the store's block encoding ("row",
	// "columnar", "columnar-raw", "columnar-dict", "columnar-delta").
	BlockEncoding string
}

// Create starts a new bucket with the given store-relative name. Name
// components are sanitized into a flat, safe file name. With a block
// codec set the file is written block-framed and published with the
// BlockExt+codec (or ColExt+codec, for columnar encodings) suffix; with
// legacy compression on it is written through whole-stream flate under
// CompressExt. Record counts and payload bytes in the descriptor are
// always pre-compression.
func (s *Store) Create(name string) (*Writer, error) {
	return s.CreateOpts(name, CreateOpts{})
}

// CreateOpts is Create with per-bucket data-plane overrides.
func (s *Store) CreateOpts(name string, opts CreateOpts) (*Writer, error) {
	if name == "" {
		return nil, fmt.Errorf("bucket: empty bucket name")
	}
	if s.dir == "" {
		buf := &bytes.Buffer{}
		return &Writer{store: s, name: name, buf: buf, w: kvio.NewWriter(buf)}, nil
	}
	c, enc, blockSize := s.codecOn()
	if opts.BlockEncoding != "" {
		var err error
		if enc, err = kvio.ParseBlockEncoding(opts.BlockEncoding); err != nil {
			return nil, fmt.Errorf("bucket: %w", err)
		}
		if !enc.Columnar && opts.Codec == "" && s.dirCodec() == nil {
			c = nil // pinned back to row on a store with no codec: legacy forms
		}
	}
	if opts.Codec != "" {
		oc, ok := wirecodec.Lookup(opts.Codec)
		if !ok {
			return nil, fmt.Errorf("bucket: unknown codec %q (have %s)", opts.Codec, strings.Join(wirecodec.Names(), ", "))
		}
		c = oc
	}
	if c == nil && enc.Columnar {
		c = wirecodec.Identity()
	}
	path := filepath.Join(s.dir, flatten(name))
	f, err := os.CreateTemp(s.dir, "."+flatten(name)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("bucket: creating %s: %w", path, err)
	}
	w := &Writer{store: s, name: name, f: f, tmp: f.Name(), path: path}
	if c != nil {
		if enc.Columnar {
			w.path += ColExt + c.Ext()
		} else {
			w.path += BlockExt + c.Ext()
		}
		w.bw = kvio.NewBlockWriterEnc(f, c, blockSize, enc)
	} else if s.compressOn() {
		w.path += CompressExt
		w.cw = deflateCodec().NewWriter(f)
		w.w = kvio.NewWriter(w.cw)
	} else {
		w.w = kvio.NewWriter(f)
	}
	return w, nil
}

// dirCodec returns the store's configured block codec without the
// columnar-implies-blocks defaulting codecOn applies.
func (s *Store) dirCodec() wirecodec.Codec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.codec
}

// Write appends one record to the bucket.
func (w *Writer) Write(p kvio.Pair) error {
	if w.closed {
		return fmt.Errorf("bucket: write after close")
	}
	if w.bw != nil {
		return w.bw.Write(p)
	}
	return w.w.Write(p)
}

// Emit implements kvio.Emitter.
func (w *Writer) Emit(key, value []byte) error {
	return w.Write(kvio.Pair{Key: key, Value: value})
}

// Close finalizes the bucket and returns its descriptor.
func (w *Writer) Close() (Descriptor, error) {
	if w.closed {
		return Descriptor{}, fmt.Errorf("bucket: double close")
	}
	w.closed = true
	var (
		d   Descriptor
		err error
	)
	if w.bw != nil {
		d = Descriptor{Name: w.name, Records: w.bw.Count(), Bytes: w.bw.Bytes()}
		err = w.bw.Close()
		if n := w.bw.ColumnarBlocks(); n > 0 {
			w.store.wireCounter(obs.MetricBlocksColumnar).Add(n)
		}
	} else {
		d = Descriptor{Name: w.name, Records: w.w.Count(), Bytes: w.w.Bytes()}
		err = w.w.Flush()
		w.w.Release()
		if w.cw != nil {
			if cerr := w.cw.Close(); err == nil {
				err = cerr // flushes the final flate block, recycles pooled state
			}
			w.cw = nil
		}
	}
	if err != nil {
		if w.f != nil {
			w.f.Close()
			os.Remove(w.tmp)
		}
		return Descriptor{}, err
	}
	s := w.store
	if w.buf != nil {
		s.mu.Lock()
		s.mem[w.name] = w.buf.Bytes()
		s.mu.Unlock()
		d.URL = fmt.Sprintf("mem:%d/%s", s.id, w.name)
		return d, nil
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return Descriptor{}, err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return Descriptor{}, fmt.Errorf("bucket: publishing %s: %w", w.path, err)
	}
	if s.baseURL != "" {
		// http URLs never carry the compression suffix: the data server
		// resolves the at-rest form and negotiates the wire encoding.
		d.URL = s.baseURL + "/" + url.PathEscape(flatten(w.name))
	} else {
		d.URL = "file://" + w.path
	}
	return d, nil
}

// Put stores a complete pair slice as a bucket in one call.
func (s *Store) Put(name string, pairs []kvio.Pair) (Descriptor, error) {
	w, err := s.Create(name)
	if err != nil {
		return Descriptor{}, err
	}
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			return Descriptor{}, err
		}
	}
	return w.Close()
}

// Remove deletes a local bucket by name; used when datasets are freed
// between iterations to bound storage.
func (s *Store) Remove(name string) error {
	if s.dir == "" {
		s.mu.Lock()
		delete(s.mem, name)
		s.mu.Unlock()
		return nil
	}
	// A bucket may exist in any at-rest form depending on the codec and
	// compression settings when it was written; remove every variant.
	path := filepath.Join(s.dir, flatten(name))
	err := os.Remove(path)
	for _, suffix := range atRestSuffixes() {
		if ferr := os.Remove(path + suffix); err != nil && ferr == nil {
			err = nil
		}
	}
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// atRestSuffixes lists every non-plain at-rest suffix a bucket file can
// carry: a row-block and a columnar form per registered codec, plus the
// legacy flate form.
func atRestSuffixes() []string {
	names := wirecodec.Names()
	out := make([]string, 0, 2*len(names)+1)
	for _, name := range names {
		c, _ := wirecodec.Lookup(name)
		out = append(out, BlockExt+c.Ext(), ColExt+c.Ext())
	}
	return append(out, CompressExt)
}

// RemoveJob deletes every local bucket in one job's namespace (names
// prefixed "j<job>/", stored flattened as "j<job>_"), in either
// at-rest form. This is the slave- and master-side reclaim that runs
// when a job completes; the flattened prefix keeps "j1_" from matching
// "j10_..." because the separator is part of the prefix. Returns how
// many buckets were removed.
func (s *Store) RemoveJob(job int64) (int, error) {
	prefix := fmt.Sprintf("j%d/", job)
	if s.dir == "" {
		s.mu.Lock()
		n := 0
		for name := range s.mem {
			if strings.HasPrefix(name, prefix) {
				delete(s.mem, name)
				n++
			}
		}
		s.mu.Unlock()
		return n, nil
	}
	flat := flatten(prefix)
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	var firstErr error
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), flat) {
			continue
		}
		if rerr := os.Remove(filepath.Join(s.dir, e.Name())); rerr != nil && !os.IsNotExist(rerr) {
			if firstErr == nil {
				firstErr = rerr
			}
			continue
		}
		n++
	}
	return n, firstErr
}

// atRest describes one resolved at-rest bucket file.
type atRest struct {
	path        string
	blockCodec  wirecodec.Codec // non-nil: block-framed file, blocks under this codec
	columnar    bool            // block file holds columnar frames (ColExt)
	legacyFlate bool            // legacy whole-stream flate file
}

// resolveAtRest finds which at-rest form exists for the plain path:
// the plain legacy file, a block file (row or columnar, any registered
// codec's suffix), or the legacy flate file.
func resolveAtRest(path string) (atRest, error) {
	if _, err := os.Stat(path); err == nil {
		return atRest{path: path}, nil
	}
	for _, name := range wirecodec.Names() {
		c, _ := wirecodec.Lookup(name)
		if p := path + BlockExt + c.Ext(); statOK(p) {
			return atRest{path: p, blockCodec: c}, nil
		}
		if p := path + ColExt + c.Ext(); statOK(p) {
			return atRest{path: p, blockCodec: c, columnar: true}, nil
		}
	}
	if _, err := os.Stat(path + CompressExt); err == nil {
		return atRest{path: path + CompressExt, legacyFlate: true}, nil
	}
	return atRest{}, fmt.Errorf("bucket: %s: %w", path, os.ErrNotExist)
}

func statOK(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// OpenLocal returns a reader for a bucket created by this store,
// undoing any whole-stream compression. Block-framed files come back
// verbatim — block compression lives inside the framing and the stream
// is self-describing, so record consumers go through kvio.NewAnyReader.
func (s *Store) OpenLocal(name string) (io.ReadCloser, error) {
	if s.dir == "" {
		s.mu.Lock()
		data, ok := s.mem[name]
		s.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("bucket: no mem bucket %q", name)
		}
		return io.NopCloser(bytes.NewReader(data)), nil
	}
	ar, err := resolveAtRest(filepath.Join(s.dir, flatten(name)))
	if err != nil {
		return nil, err
	}
	f, err := os.Open(ar.path)
	if err != nil {
		return nil, err
	}
	if ar.legacyFlate {
		return &drainReadCloser{r: deflateCodec().NewReader(f), under: f}, nil
	}
	return f, nil
}

// ServeName maps an escaped bucket file name (as it appears in an http
// URL path) back to a served file path, for use by the data server.
func (s *Store) ServeName(escaped string) (string, error) {
	name, err := url.PathUnescape(escaped)
	if err != nil {
		return "", err
	}
	if strings.ContainsAny(name, "/\\") || name == "" || strings.HasPrefix(name, ".") {
		return "", fmt.Errorf("bucket: illegal bucket name %q", name)
	}
	if s.dir == "" {
		return "", fmt.Errorf("bucket: memory store cannot serve files")
	}
	return filepath.Join(s.dir, name), nil
}

// flatten converts a hierarchical bucket name into a safe flat file name.
func flatten(name string) string {
	r := strings.NewReplacer("/", "_", "\\", "_", "..", "_", ":", "_")
	return r.Replace(name)
}

// ---------------------------------------------------------------------------
// Opening by URL

// HTTPTimeout bounds a single bucket fetch.
const HTTPTimeout = 30 * time.Second

// DefaultTransport is the tuned transport behind the shared bucket
// fetch client. net/http's default of 2 idle connections per host
// serializes connection reuse as soon as fetches run in parallel: with
// prefetch width k, k−2 of the concurrent fetches to one slave would
// tear down and redial on every bucket. Fault-injection wrappers should
// use this as their base RoundTripper so chaos runs keep the same
// connection behavior.
var DefaultTransport = &http.Transport{
	MaxIdleConns:        64,
	MaxIdleConnsPerHost: 16,
	IdleConnTimeout:     90 * time.Second,
}

// httpClient is shared so connections are reused between fetches.
var httpClient = &http.Client{Timeout: HTTPTimeout, Transport: DefaultTransport}

// Open resolves a bucket URL. mem: URLs must belong to this store;
// file:// URLs are opened directly; http:// URLs are fetched with
// bounded retries (transient fetch failures are expected during slave
// churn and must not kill a reduce task immediately). Whole-stream
// compression (a legacy CompressExt suffix or a deflate
// Content-Encoding) is transparently undone; block-framed streams come
// back verbatim — their compression lives inside the framing, which
// kvio.NewAnyReader decodes — so wire-byte counters see the compressed
// size either way and record consumers the decoded size.
func (s *Store) Open(rawURL string) (io.ReadCloser, error) {
	switch {
	case strings.HasPrefix(rawURL, "mem:"):
		rest := strings.TrimPrefix(rawURL, "mem:")
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			return nil, fmt.Errorf("bucket: malformed mem URL %q", rawURL)
		}
		if fmt.Sprintf("%d", s.id) != rest[:slash] {
			return nil, fmt.Errorf("bucket: mem URL %q belongs to another store", rawURL)
		}
		return s.OpenLocal(rest[slash+1:])
	case strings.HasPrefix(rawURL, "file://"):
		path := strings.TrimPrefix(rawURL, "file://")
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		rc := s.counting(f, obs.MetricWireBytesShared, fileCodecName(path), fileEncodingName(path))
		// ".mrb.fz"/".mrc.fz" end in ".fz" too, but block files carry no
		// outer compression layer — only a bare CompressExt means legacy
		// flate.
		if i, _ := blockExtIndex(path); i < 0 && strings.HasSuffix(path, CompressExt) {
			return &drainReadCloser{r: deflateCodec().NewReader(rc), under: rc}, nil
		}
		return rc, nil
	case strings.HasPrefix(rawURL, "http://"), strings.HasPrefix(rawURL, "https://"):
		return s.openHTTP(rawURL)
	}
	return nil, fmt.Errorf("bucket: unsupported URL %q", rawURL)
}

// FetchRetries is how many times an http bucket fetch is attempted.
const FetchRetries = 5

func (s *Store) openHTTP(rawURL string) (io.ReadCloser, error) {
	// Jitter is seeded from the URL so a given fetch's retry schedule is
	// reproducible while distinct fetches desynchronize (no retry storms
	// hammering a recovering slave in lockstep).
	retry := fault.NewBackoff(hash.FNV1a64String(rawURL))
	client := s.fetchClient()
	var lastErr error
	for attempt := 1; attempt <= FetchRetries; attempt++ {
		if attempt > 1 {
			time.Sleep(retry.Delay(attempt - 1))
		}
		req, err := http.NewRequest(http.MethodGet, rawURL, nil)
		if err != nil {
			return nil, err
		}
		// Advertise every registered block codec so a block-serving peer
		// can send (or cheaply transcode to) the best mutual one, and
		// deflate so a legacy compressing server can send its at-rest
		// bytes verbatim. Servers that know neither header ignore both
		// and serve identity — the mixed-version fallback.
		req.Header.Set(wirecodec.RequestHeader, wirecodec.AcceptHeader())
		// Advertise both block kinds; a peer holding columnar data can
		// then send it verbatim instead of transcoding to row blocks.
		// The rowOnlyFetch hook omits the header to look pre-columnar.
		if !s.rowOnlyFetchOn() {
			req.Header.Set(wirecodec.BlockAcceptHeader, wirecodec.AcceptBlocksHeader())
		}
		req.Header.Set("Accept-Encoding", "deflate")
		resp, err := client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("bucket: GET %s: %s", rawURL, resp.Status)
			if resp.StatusCode == http.StatusNotFound {
				// The bucket is gone (slave died and restarted); no
				// point hammering.
				return nil, lastErr
			}
			continue
		}
		// Per-codec accounting: a block response names its codec in
		// CodecHeader; a legacy response is deflate or identity per
		// Content-Encoding.
		codecName := resp.Header.Get(wirecodec.CodecHeader)
		deflated := resp.Header.Get("Content-Encoding") == "deflate"
		if codecName == "" {
			codecName = wirecodec.IdentityName
			if deflated {
				codecName = wirecodec.DeflateName
			}
		}
		encName := resp.Header.Get(wirecodec.BlockEncHeader)
		if encName == "" {
			encName = wirecodec.BlockKindRow
		}
		rc := s.counting(resp.Body, obs.MetricWireBytesDirect, codecName, encName)
		if deflated {
			return &drainReadCloser{r: deflateCodec().NewReader(rc), under: rc}, nil
		}
		return rc, nil
	}
	return nil, lastErr
}

// countingReadCloser adds every byte read to the wire counters: the
// per-path total, the per-codec split, and the per-block-kind split.
type countingReadCloser struct {
	rc io.ReadCloser
	c  *obs.Counter
	c2 *obs.Counter
	c3 *obs.Counter
}

func (c *countingReadCloser) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	if n > 0 {
		c.c.Add(int64(n))
		c.c2.Add(int64(n))
		c.c3.Add(int64(n))
	}
	return n, err
}

func (c *countingReadCloser) Close() error { return c.rc.Close() }

// drainReadCloser decompresses a whole-stream codec layer and closes
// both layers.
type drainReadCloser struct {
	r     io.ReadCloser // the codec layer
	under io.ReadCloser
}

func (f *drainReadCloser) Read(p []byte) (int, error) { return f.r.Read(p) }

func (f *drainReadCloser) Close() error {
	// flate knows the stream ended from the final-block bit without ever
	// observing the underlying reader's EOF, so an HTTP response body
	// would look partially read and the connection would be torn down
	// instead of returned to the keep-alive pool. Drain the (normally
	// zero) remainder so the transport sees EOF and reuses the socket.
	io.CopyN(io.Discard, f.under, 512)
	if f.r != nil {
		f.r.Close() // recycles the codec's pooled state
		f.r = nil
	}
	return f.under.Close()
}

// Fetch reads an entire bucket into memory. Unlike Open, a remote fetch
// that dies mid-stream is retried whole — the caller gets either the
// complete payload or an error, which is what the parallel prefetcher
// needs (a half-delivered bucket cannot be resumed).
//
// The returned slice is freshly allocated and owned by the caller: it is
// never pooled or reused by the store, so callers may retain it
// indefinitely (the resident dataset cache depends on this).
func (s *Store) Fetch(rawURL string) ([]byte, error) {
	remote := strings.HasPrefix(rawURL, "http://") || strings.HasPrefix(rawURL, "https://")
	retry := fault.NewBackoff(hash.FNV1a64String(rawURL) + 2)
	var lastErr error
	for attempt := 1; attempt <= FetchRetries; attempt++ {
		if attempt > 1 {
			time.Sleep(retry.Delay(attempt - 1))
		}
		rc, err := s.Open(rawURL)
		if err != nil {
			return nil, err // Open already retried transport errors
		}
		data, err := io.ReadAll(rc)
		rc.Close()
		if err == nil {
			return data, nil
		}
		lastErr = fmt.Errorf("bucket: fetching %s: %w", rawURL, err)
		if !remote {
			return nil, lastErr // local reads don't heal by retrying
		}
	}
	return nil, lastErr
}

// acceptsDeflate reports whether the request allows a deflate response.
func acceptsDeflate(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if enc == "deflate" {
			return true
		}
	}
	return false
}

// ServeBucket writes the bucket file at path (as resolved by ServeName)
// to an HTTP response, negotiating the wire form per at-rest variant:
//
//   - plain legacy file: served verbatim (every client reads it).
//   - legacy flate file: verbatim with Content-Encoding: deflate when
//     the client accepts deflate (zero-CPU wire compression), otherwise
//     decompressed into the response.
//   - block file: verbatim with CodecHeader set when the client's
//     advertised codec list (RequestHeader) includes the at-rest codec;
//     transcoded block-to-block to the best mutual codec otherwise
//     (identity fallback — a client advertising only unknown codecs
//     still gets blocks it can decode); flattened to a legacy record
//     stream for clients that sent no codec advertisement at all,
//     deflate-wrapped when they accept it. Mixed-version fleets always
//     land on a form both sides speak.
func ServeBucket(w http.ResponseWriter, r *http.Request, path string) {
	ar, err := resolveAtRest(path)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	if ar.blockCodec != nil {
		serveBlockBucket(w, r, ar)
		return
	}
	if !ar.legacyFlate {
		http.ServeFile(w, r, ar.path)
		return
	}
	f, err := os.Open(ar.path)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	defer f.Close()
	if acceptsDeflate(r) {
		w.Header().Set("Content-Encoding", "deflate")
		if fi, err := f.Stat(); err == nil {
			w.Header().Set("Content-Length", fmt.Sprint(fi.Size()))
		}
		io.Copy(w, f)
		return
	}
	fr := deflateCodec().NewReader(f)
	io.Copy(w, fr)
	fr.Close()
}

// serveBlockBucket serves one block-framed at-rest file, picking the
// wire form the client can decode along both negotiation axes: the
// codec (RequestHeader) and the block kind (BlockAcceptHeader). A
// columnar file served to a peer that never advertised block kinds —
// a pre-columnar build — is transcoded down to row blocks, so
// mixed-version fleets keep exchanging data.
func serveBlockBucket(w http.ResponseWriter, r *http.Request, ar atRest) {
	f, err := os.Open(ar.path)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	defer f.Close()
	accepted := wirecodec.ParseAccept(r.Header.Get(wirecodec.RequestHeader))
	kind := wirecodec.BlockKindRow
	if ar.columnar {
		kind = wirecodec.BlockKindColumnar
	}
	kindOK := wirecodec.AcceptsBlock(r.Header.Get(wirecodec.BlockAcceptHeader), kind)
	switch {
	case kindOK && wirecodec.Accepts(accepted, ar.blockCodec.Name()):
		// Best case: the at-rest bytes are already in a codec and block
		// kind the client decodes — send them verbatim, zero CPU.
		w.Header().Set(wirecodec.CodecHeader, ar.blockCodec.Name())
		w.Header().Set(wirecodec.BlockEncHeader, kind)
		if fi, err := f.Stat(); err == nil {
			w.Header().Set("Content-Length", fmt.Sprint(fi.Size()))
		}
		io.Copy(w, f)
	case kindOK && len(accepted) > 0:
		// A block-capable client that can't decode the at-rest codec:
		// transcode block-to-block into the best mutual codec. Columnar
		// frames are recompressed column-wise without re-parsing records.
		// Unknown advertised names fall through to identity inside
		// Negotiate, so this arm is also the forward-compatibility path.
		to := wirecodec.Negotiate(accepted)
		w.Header().Set(wirecodec.CodecHeader, to.Name())
		w.Header().Set(wirecodec.BlockEncHeader, kind)
		kvio.TranscodeBlocks(w, f, to)
	case len(accepted) > 0:
		// Block-capable but row-only client (a pre-columnar build) and a
		// columnar file: flatten every frame into row blocks under the
		// best mutual codec — the mixed-version fallback.
		to := wirecodec.Negotiate(accepted)
		w.Header().Set(wirecodec.CodecHeader, to.Name())
		w.Header().Set(wirecodec.BlockEncHeader, wirecodec.BlockKindRow)
		kvio.TranscodeToRowBlocks(w, f, to)
	case acceptsDeflate(r):
		// Pre-block client that speaks the legacy deflate negotiation:
		// flatten blocks to a record stream under Content-Encoding.
		w.Header().Set("Content-Encoding", "deflate")
		cw := deflateCodec().NewWriter(w)
		kvio.TranscodeToRecords(cw, f)
		cw.Close()
	default:
		// Identity legacy client.
		kvio.TranscodeToRecords(w, f)
	}
}

// ReadAll opens a URL and decodes every record. Remote fetches that die
// mid-stream (connection dropped partway through the body) are retried
// whole, since a partial record stream is useless to the caller.
func (s *Store) ReadAll(rawURL string) ([]kvio.Pair, error) {
	remote := strings.HasPrefix(rawURL, "http://") || strings.HasPrefix(rawURL, "https://")
	retry := fault.NewBackoff(hash.FNV1a64String(rawURL) + 1)
	var lastErr error
	for attempt := 1; attempt <= FetchRetries; attempt++ {
		if attempt > 1 {
			time.Sleep(retry.Delay(attempt - 1))
		}
		rc, err := s.Open(rawURL)
		if err != nil {
			return nil, err // Open already retried transport errors
		}
		// Sniffing reader: the stream may be either framing depending on
		// the producer's codec setting and the server's negotiation.
		r := kvio.NewAnyReader(rc)
		pairs, err := r.ReadAll()
		r.Release()
		rc.Close()
		if err == nil {
			return pairs, nil
		}
		lastErr = fmt.Errorf("bucket: reading %s: %w", rawURL, err)
		if !remote {
			return nil, lastErr // local reads don't heal by retrying
		}
	}
	return nil, lastErr
}

// ReadAllMulti concatenates the records of several buckets in order.
func (s *Store) ReadAllMulti(urls []string) ([]kvio.Pair, error) {
	var out []kvio.Pair
	for _, u := range urls {
		pairs, err := s.ReadAll(u)
		if err != nil {
			return nil, err
		}
		out = append(out, pairs...)
	}
	return out, nil
}
