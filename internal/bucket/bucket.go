// Package bucket manages intermediate data between tasks. Each task
// writes its output partitioned into buckets (one per destination
// split); each bucket is addressable by URL so a consumer task can read
// it later, possibly from another machine.
//
// Three URL schemes mirror the data paths in §IV-B of the Mrs paper:
//
//	mem:<store>/<name>   in-memory, single-process execution modes
//	file://<path>        shared-filesystem staging (the fault-tolerant path)
//	http://host/data/<…> direct slave-to-slave serving via the built-in
//	                     HTTP server (the high-performance path)
//
// A Store owns buckets created locally. Opening a URL resolves mem and
// file buckets locally and fetches http buckets over the network.
package bucket

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/hash"
	"repro/internal/kvio"
	"repro/internal/obs"
)

// CompressExt marks a bucket file stored flate-compressed. The suffix
// makes compressed buckets self-describing: any reader that sees it
// (local open, file:// URL, the data server) knows to decompress, so
// producers and consumers need not agree on configuration.
const CompressExt = ".fz"

// Descriptor identifies a finished bucket.
type Descriptor struct {
	// Name is the store-relative bucket name, e.g. "ds3/t2/s1".
	Name string
	// URL locates the bucket for consumers ("mem:", "file://", "http://").
	URL string
	// Records and Bytes describe the contents (framing excluded).
	Records int64
	Bytes   int64
}

// storeSeq distinguishes mem: URLs of different stores in one process.
var (
	storeSeqMu sync.Mutex
	storeSeq   int
)

// Store creates and resolves buckets.
type Store struct {
	id      int
	dir     string // if non-empty, buckets are files under dir
	baseURL string // if non-empty, file buckets advertise baseURL/<name>

	mu       sync.Mutex
	mem      map[string][]byte // record-stream payloads for mem buckets
	client   *http.Client      // overrides the shared fetch client (fault injection)
	compress bool              // write new file buckets flate-compressed
	metrics  *obs.Metrics      // wire-byte counters (nil-safe)
}

// NewMemStore returns a Store that keeps buckets in memory. Its
// descriptors are only meaningful within this process.
func NewMemStore() *Store {
	storeSeqMu.Lock()
	storeSeq++
	id := storeSeq
	storeSeqMu.Unlock()
	return &Store{id: id, mem: map[string][]byte{}}
}

// NewFileStore returns a Store that writes buckets as files under dir.
// If baseURL is non-empty (e.g. "http://10.0.0.7:9123/data"), finished
// buckets advertise baseURL/<name>; otherwise they advertise file://
// URLs, which is correct when dir is on a shared filesystem.
func NewFileStore(dir, baseURL string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bucket: creating store dir: %w", err)
	}
	return &Store{dir: dir, baseURL: strings.TrimRight(baseURL, "/")}, nil
}

// Dir returns the store's directory ("" for memory stores).
func (s *Store) Dir() string { return s.dir }

// SetHTTPClient overrides the HTTP client used for remote bucket
// fetches — the hook internal/fault uses to perturb the data path.
func (s *Store) SetHTTPClient(c *http.Client) {
	s.mu.Lock()
	s.client = c
	s.mu.Unlock()
}

func (s *Store) fetchClient() *http.Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.client != nil {
		return s.client
	}
	return httpClient
}

// CloseIdle closes the fetch client's idle keep-alive connections.
// Call it when a node shuts down: a pooled (or dial-racing) connection
// that never carries another request otherwise counts as active on the
// peer's server until the net/http new-connection grace period expires,
// stalling its graceful Shutdown.
func (s *Store) CloseIdle() {
	s.fetchClient().CloseIdleConnections()
}

// SetCompress controls whether new file buckets are written
// flate-compressed (mem buckets never are — they never leave the
// process). Already-written buckets are unaffected; readers handle
// both forms regardless of this setting.
func (s *Store) SetCompress(on bool) {
	s.mu.Lock()
	s.compress = on
	s.mu.Unlock()
}

// SetMetrics wires the registry that receives the store's wire-byte
// counters. A nil registry (the default) discards them.
func (s *Store) SetMetrics(m *obs.Metrics) {
	s.mu.Lock()
	s.metrics = m
	s.mu.Unlock()
}

func (s *Store) compressOn() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compress
}

// wireCounter returns the wire-byte counter for a URL scheme's data
// path (nil, a no-op, when metrics are not wired or the path is local).
func (s *Store) wireCounter(metric string) *obs.Counter {
	s.mu.Lock()
	m := s.metrics
	s.mu.Unlock()
	return m.Counter(metric)
}

// InMemory reports whether this store keeps buckets in memory.
func (s *Store) InMemory() bool { return s.dir == "" }

// flate writers and readers carry megabyte-scale dictionaries and
// tables whose initialization dwarfs the compression work for typical
// bucket sizes, so both are pooled and Reset between buckets.
var (
	flateWriterPool sync.Pool
	flateReaderPool sync.Pool
)

func newFlateWriter(dst io.Writer) *flate.Writer {
	if v := flateWriterPool.Get(); v != nil {
		fw := v.(*flate.Writer)
		fw.Reset(dst)
		return fw
	}
	// BestSpeed: shuffle data is written once and read once; cheap
	// compression that halves the wire beats a better ratio that stalls
	// the producer. The error is impossible for a valid level.
	fw, _ := flate.NewWriter(dst, flate.BestSpeed)
	return fw
}

func putFlateWriter(fw *flate.Writer) { flateWriterPool.Put(fw) }

func newFlateReader(src io.Reader) io.ReadCloser {
	if v := flateReaderPool.Get(); v != nil {
		fr := v.(io.ReadCloser)
		fr.(flate.Resetter).Reset(src, nil)
		return fr
	}
	return flate.NewReader(src)
}

func putFlateReader(fr io.ReadCloser) { flateReaderPool.Put(fr) }

// Writer accumulates one bucket's records.
type Writer struct {
	store *Store
	name  string
	// memory path
	buf *bytes.Buffer
	// file path: records accumulate in tmp and are renamed to path on
	// Close, so a bucket is only ever observed complete. Duplicate task
	// attempts (reassignment races, lease requeues) then cannot expose
	// a half-written file to a concurrent reader — last rename wins and
	// both attempts produced identical content.
	f    *os.File
	tmp  string
	path string
	fw   *flate.Writer // compression layer between records and f, if on

	w      *kvio.Writer
	closed bool
}

// Create starts a new bucket with the given store-relative name. Name
// components are sanitized into a flat, safe file name. When the store
// compresses, the file is written through flate and published with the
// CompressExt suffix; record counts and payload bytes in the descriptor
// are always pre-compression.
func (s *Store) Create(name string) (*Writer, error) {
	if name == "" {
		return nil, fmt.Errorf("bucket: empty bucket name")
	}
	if s.dir == "" {
		buf := &bytes.Buffer{}
		return &Writer{store: s, name: name, buf: buf, w: kvio.NewWriter(buf)}, nil
	}
	path := filepath.Join(s.dir, flatten(name))
	f, err := os.CreateTemp(s.dir, "."+flatten(name)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("bucket: creating %s: %w", path, err)
	}
	w := &Writer{store: s, name: name, f: f, tmp: f.Name(), path: path}
	if s.compressOn() {
		w.path += CompressExt
		w.fw = newFlateWriter(f)
		w.w = kvio.NewWriter(w.fw)
	} else {
		w.w = kvio.NewWriter(f)
	}
	return w, nil
}

// Write appends one record to the bucket.
func (w *Writer) Write(p kvio.Pair) error {
	if w.closed {
		return fmt.Errorf("bucket: write after close")
	}
	return w.w.Write(p)
}

// Emit implements kvio.Emitter.
func (w *Writer) Emit(key, value []byte) error {
	return w.Write(kvio.Pair{Key: key, Value: value})
}

// Close finalizes the bucket and returns its descriptor.
func (w *Writer) Close() (Descriptor, error) {
	if w.closed {
		return Descriptor{}, fmt.Errorf("bucket: double close")
	}
	w.closed = true
	d := Descriptor{Name: w.name, Records: w.w.Count(), Bytes: w.w.Bytes()}
	err := w.w.Flush()
	w.w.Release()
	if w.fw != nil {
		if cerr := w.fw.Close(); err == nil {
			err = cerr // flushes the final flate block
		}
		putFlateWriter(w.fw)
		w.fw = nil
	}
	if err != nil {
		if w.f != nil {
			w.f.Close()
			os.Remove(w.tmp)
		}
		return Descriptor{}, err
	}
	s := w.store
	if w.buf != nil {
		s.mu.Lock()
		s.mem[w.name] = w.buf.Bytes()
		s.mu.Unlock()
		d.URL = fmt.Sprintf("mem:%d/%s", s.id, w.name)
		return d, nil
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return Descriptor{}, err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return Descriptor{}, fmt.Errorf("bucket: publishing %s: %w", w.path, err)
	}
	if s.baseURL != "" {
		// http URLs never carry the compression suffix: the data server
		// resolves the at-rest form and negotiates the wire encoding.
		d.URL = s.baseURL + "/" + url.PathEscape(flatten(w.name))
	} else {
		d.URL = "file://" + w.path
	}
	return d, nil
}

// Put stores a complete pair slice as a bucket in one call.
func (s *Store) Put(name string, pairs []kvio.Pair) (Descriptor, error) {
	w, err := s.Create(name)
	if err != nil {
		return Descriptor{}, err
	}
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			return Descriptor{}, err
		}
	}
	return w.Close()
}

// Remove deletes a local bucket by name; used when datasets are freed
// between iterations to bound storage.
func (s *Store) Remove(name string) error {
	if s.dir == "" {
		s.mu.Lock()
		delete(s.mem, name)
		s.mu.Unlock()
		return nil
	}
	// A bucket may exist in either at-rest form depending on the
	// compression setting when it was written; remove both.
	path := filepath.Join(s.dir, flatten(name))
	err := os.Remove(path)
	if ferr := os.Remove(path + CompressExt); err != nil && ferr == nil {
		err = nil
	}
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// RemoveJob deletes every local bucket in one job's namespace (names
// prefixed "j<job>/", stored flattened as "j<job>_"), in either
// at-rest form. This is the slave- and master-side reclaim that runs
// when a job completes; the flattened prefix keeps "j1_" from matching
// "j10_..." because the separator is part of the prefix. Returns how
// many buckets were removed.
func (s *Store) RemoveJob(job int64) (int, error) {
	prefix := fmt.Sprintf("j%d/", job)
	if s.dir == "" {
		s.mu.Lock()
		n := 0
		for name := range s.mem {
			if strings.HasPrefix(name, prefix) {
				delete(s.mem, name)
				n++
			}
		}
		s.mu.Unlock()
		return n, nil
	}
	flat := flatten(prefix)
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	var firstErr error
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), flat) {
			continue
		}
		if rerr := os.Remove(filepath.Join(s.dir, e.Name())); rerr != nil && !os.IsNotExist(rerr) {
			if firstErr == nil {
				firstErr = rerr
			}
			continue
		}
		n++
	}
	return n, firstErr
}

// OpenLocal returns a reader for a bucket created by this store,
// decompressing the at-rest form if needed.
func (s *Store) OpenLocal(name string) (io.ReadCloser, error) {
	if s.dir == "" {
		s.mu.Lock()
		data, ok := s.mem[name]
		s.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("bucket: no mem bucket %q", name)
		}
		return io.NopCloser(bytes.NewReader(data)), nil
	}
	path := filepath.Join(s.dir, flatten(name))
	f, err := os.Open(path)
	if err == nil {
		return f, nil
	}
	fz, ferr := os.Open(path + CompressExt)
	if ferr != nil {
		return nil, err // report the plain-path error
	}
	return &flateReadCloser{r: newFlateReader(fz), under: fz}, nil
}

// ServeName maps an escaped bucket file name (as it appears in an http
// URL path) back to a served file path, for use by the data server.
func (s *Store) ServeName(escaped string) (string, error) {
	name, err := url.PathUnescape(escaped)
	if err != nil {
		return "", err
	}
	if strings.ContainsAny(name, "/\\") || name == "" || strings.HasPrefix(name, ".") {
		return "", fmt.Errorf("bucket: illegal bucket name %q", name)
	}
	if s.dir == "" {
		return "", fmt.Errorf("bucket: memory store cannot serve files")
	}
	return filepath.Join(s.dir, name), nil
}

// flatten converts a hierarchical bucket name into a safe flat file name.
func flatten(name string) string {
	r := strings.NewReplacer("/", "_", "\\", "_", "..", "_", ":", "_")
	return r.Replace(name)
}

// ---------------------------------------------------------------------------
// Opening by URL

// HTTPTimeout bounds a single bucket fetch.
const HTTPTimeout = 30 * time.Second

// DefaultTransport is the tuned transport behind the shared bucket
// fetch client. net/http's default of 2 idle connections per host
// serializes connection reuse as soon as fetches run in parallel: with
// prefetch width k, k−2 of the concurrent fetches to one slave would
// tear down and redial on every bucket. Fault-injection wrappers should
// use this as their base RoundTripper so chaos runs keep the same
// connection behavior.
var DefaultTransport = &http.Transport{
	MaxIdleConns:        64,
	MaxIdleConnsPerHost: 16,
	IdleConnTimeout:     90 * time.Second,
}

// httpClient is shared so connections are reused between fetches.
var httpClient = &http.Client{Timeout: HTTPTimeout, Transport: DefaultTransport}

// Open resolves a bucket URL. mem: URLs must belong to this store;
// file:// URLs are opened directly; http:// URLs are fetched with
// bounded retries (transient fetch failures are expected during slave
// churn and must not kill a reduce task immediately). Compressed
// buckets (CompressExt suffix or a deflate Content-Encoding) are
// transparently decompressed; wire-byte counters see the compressed
// size, record consumers the decoded size.
func (s *Store) Open(rawURL string) (io.ReadCloser, error) {
	switch {
	case strings.HasPrefix(rawURL, "mem:"):
		rest := strings.TrimPrefix(rawURL, "mem:")
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			return nil, fmt.Errorf("bucket: malformed mem URL %q", rawURL)
		}
		if fmt.Sprintf("%d", s.id) != rest[:slash] {
			return nil, fmt.Errorf("bucket: mem URL %q belongs to another store", rawURL)
		}
		return s.OpenLocal(rest[slash+1:])
	case strings.HasPrefix(rawURL, "file://"):
		f, err := os.Open(strings.TrimPrefix(rawURL, "file://"))
		if err != nil {
			return nil, err
		}
		var rc io.ReadCloser = &countingReadCloser{rc: f, c: s.wireCounter(obs.MetricWireBytesShared)}
		if strings.HasSuffix(rawURL, CompressExt) {
			rc = &flateReadCloser{r: newFlateReader(rc), under: rc}
		}
		return rc, nil
	case strings.HasPrefix(rawURL, "http://"), strings.HasPrefix(rawURL, "https://"):
		return s.openHTTP(rawURL)
	}
	return nil, fmt.Errorf("bucket: unsupported URL %q", rawURL)
}

// FetchRetries is how many times an http bucket fetch is attempted.
const FetchRetries = 5

func (s *Store) openHTTP(rawURL string) (io.ReadCloser, error) {
	// Jitter is seeded from the URL so a given fetch's retry schedule is
	// reproducible while distinct fetches desynchronize (no retry storms
	// hammering a recovering slave in lockstep).
	retry := fault.NewBackoff(hash.FNV1a64String(rawURL))
	client := s.fetchClient()
	var lastErr error
	for attempt := 1; attempt <= FetchRetries; attempt++ {
		if attempt > 1 {
			time.Sleep(retry.Delay(attempt - 1))
		}
		req, err := http.NewRequest(http.MethodGet, rawURL, nil)
		if err != nil {
			return nil, err
		}
		// Advertise deflate so a compressing server can send its at-rest
		// bytes verbatim. Servers that don't compress ignore this.
		req.Header.Set("Accept-Encoding", "deflate")
		resp, err := client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("bucket: GET %s: %s", rawURL, resp.Status)
			if resp.StatusCode == http.StatusNotFound {
				// The bucket is gone (slave died and restarted); no
				// point hammering.
				return nil, lastErr
			}
			continue
		}
		var rc io.ReadCloser = &countingReadCloser{rc: resp.Body, c: s.wireCounter(obs.MetricWireBytesDirect)}
		if resp.Header.Get("Content-Encoding") == "deflate" {
			rc = &flateReadCloser{r: newFlateReader(rc), under: rc}
		}
		return rc, nil
	}
	return nil, lastErr
}

// countingReadCloser adds every byte read to a wire counter.
type countingReadCloser struct {
	rc io.ReadCloser
	c  *obs.Counter
}

func (c *countingReadCloser) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	if n > 0 {
		c.c.Add(int64(n))
	}
	return n, err
}

func (c *countingReadCloser) Close() error { return c.rc.Close() }

// flateReadCloser decompresses a stream and closes both layers.
type flateReadCloser struct {
	r     io.ReadCloser // the flate layer
	under io.ReadCloser
}

func (f *flateReadCloser) Read(p []byte) (int, error) { return f.r.Read(p) }

func (f *flateReadCloser) Close() error {
	// flate knows the stream ended from the final-block bit without ever
	// observing the underlying reader's EOF, so an HTTP response body
	// would look partially read and the connection would be torn down
	// instead of returned to the keep-alive pool. Drain the (normally
	// zero) remainder so the transport sees EOF and reuses the socket.
	io.CopyN(io.Discard, f.under, 512)
	if f.r != nil {
		f.r.Close()
		putFlateReader(f.r)
		f.r = nil
	}
	return f.under.Close()
}

// Fetch reads an entire bucket into memory. Unlike Open, a remote fetch
// that dies mid-stream is retried whole — the caller gets either the
// complete payload or an error, which is what the parallel prefetcher
// needs (a half-delivered bucket cannot be resumed).
func (s *Store) Fetch(rawURL string) ([]byte, error) {
	remote := strings.HasPrefix(rawURL, "http://") || strings.HasPrefix(rawURL, "https://")
	retry := fault.NewBackoff(hash.FNV1a64String(rawURL) + 2)
	var lastErr error
	for attempt := 1; attempt <= FetchRetries; attempt++ {
		if attempt > 1 {
			time.Sleep(retry.Delay(attempt - 1))
		}
		rc, err := s.Open(rawURL)
		if err != nil {
			return nil, err // Open already retried transport errors
		}
		data, err := io.ReadAll(rc)
		rc.Close()
		if err == nil {
			return data, nil
		}
		lastErr = fmt.Errorf("bucket: fetching %s: %w", rawURL, err)
		if !remote {
			return nil, lastErr // local reads don't heal by retrying
		}
	}
	return nil, lastErr
}

// acceptsDeflate reports whether the request allows a deflate response.
func acceptsDeflate(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if enc == "deflate" {
			return true
		}
	}
	return false
}

// ServeBucket writes the bucket file at path (as resolved by ServeName)
// to an HTTP response, handling the compressed at-rest variant: if the
// client accepts deflate the compressed bytes are sent verbatim with
// Content-Encoding set (wire compression at zero CPU cost), otherwise
// the server decompresses into the response.
func ServeBucket(w http.ResponseWriter, r *http.Request, path string) {
	if _, err := os.Stat(path); err == nil {
		http.ServeFile(w, r, path)
		return
	}
	f, err := os.Open(path + CompressExt)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	defer f.Close()
	if acceptsDeflate(r) {
		w.Header().Set("Content-Encoding", "deflate")
		if fi, err := f.Stat(); err == nil {
			w.Header().Set("Content-Length", fmt.Sprint(fi.Size()))
		}
		io.Copy(w, f)
		return
	}
	fr := newFlateReader(f)
	io.Copy(w, fr)
	fr.Close()
	putFlateReader(fr)
}

// ReadAll opens a URL and decodes every record. Remote fetches that die
// mid-stream (connection dropped partway through the body) are retried
// whole, since a partial record stream is useless to the caller.
func (s *Store) ReadAll(rawURL string) ([]kvio.Pair, error) {
	remote := strings.HasPrefix(rawURL, "http://") || strings.HasPrefix(rawURL, "https://")
	retry := fault.NewBackoff(hash.FNV1a64String(rawURL) + 1)
	var lastErr error
	for attempt := 1; attempt <= FetchRetries; attempt++ {
		if attempt > 1 {
			time.Sleep(retry.Delay(attempt - 1))
		}
		rc, err := s.Open(rawURL)
		if err != nil {
			return nil, err // Open already retried transport errors
		}
		r := kvio.NewReader(rc)
		pairs, err := r.ReadAll()
		r.Release()
		rc.Close()
		if err == nil {
			return pairs, nil
		}
		lastErr = fmt.Errorf("bucket: reading %s: %w", rawURL, err)
		if !remote {
			return nil, lastErr // local reads don't heal by retrying
		}
	}
	return nil, lastErr
}

// ReadAllMulti concatenates the records of several buckets in order.
func (s *Store) ReadAllMulti(urls []string) ([]kvio.Pair, error) {
	var out []kvio.Pair
	for _, u := range urls {
		pairs, err := s.ReadAll(u)
		if err != nil {
			return nil, err
		}
		out = append(out, pairs...)
	}
	return out, nil
}
