// Package bucket manages intermediate data between tasks. Each task
// writes its output partitioned into buckets (one per destination
// split); each bucket is addressable by URL so a consumer task can read
// it later, possibly from another machine.
//
// Three URL schemes mirror the data paths in §IV-B of the Mrs paper:
//
//	mem:<store>/<name>   in-memory, single-process execution modes
//	file://<path>        shared-filesystem staging (the fault-tolerant path)
//	http://host/data/<…> direct slave-to-slave serving via the built-in
//	                     HTTP server (the high-performance path)
//
// A Store owns buckets created locally. Opening a URL resolves mem and
// file buckets locally and fetches http buckets over the network.
package bucket

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/hash"
	"repro/internal/kvio"
)

// Descriptor identifies a finished bucket.
type Descriptor struct {
	// Name is the store-relative bucket name, e.g. "ds3/t2/s1".
	Name string
	// URL locates the bucket for consumers ("mem:", "file://", "http://").
	URL string
	// Records and Bytes describe the contents (framing excluded).
	Records int64
	Bytes   int64
}

// storeSeq distinguishes mem: URLs of different stores in one process.
var (
	storeSeqMu sync.Mutex
	storeSeq   int
)

// Store creates and resolves buckets.
type Store struct {
	id      int
	dir     string // if non-empty, buckets are files under dir
	baseURL string // if non-empty, file buckets advertise baseURL/<name>

	mu     sync.Mutex
	mem    map[string][]byte // record-stream payloads for mem buckets
	client *http.Client      // overrides the shared fetch client (fault injection)
}

// NewMemStore returns a Store that keeps buckets in memory. Its
// descriptors are only meaningful within this process.
func NewMemStore() *Store {
	storeSeqMu.Lock()
	storeSeq++
	id := storeSeq
	storeSeqMu.Unlock()
	return &Store{id: id, mem: map[string][]byte{}}
}

// NewFileStore returns a Store that writes buckets as files under dir.
// If baseURL is non-empty (e.g. "http://10.0.0.7:9123/data"), finished
// buckets advertise baseURL/<name>; otherwise they advertise file://
// URLs, which is correct when dir is on a shared filesystem.
func NewFileStore(dir, baseURL string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bucket: creating store dir: %w", err)
	}
	return &Store{dir: dir, baseURL: strings.TrimRight(baseURL, "/")}, nil
}

// Dir returns the store's directory ("" for memory stores).
func (s *Store) Dir() string { return s.dir }

// SetHTTPClient overrides the HTTP client used for remote bucket
// fetches — the hook internal/fault uses to perturb the data path.
func (s *Store) SetHTTPClient(c *http.Client) {
	s.mu.Lock()
	s.client = c
	s.mu.Unlock()
}

func (s *Store) fetchClient() *http.Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.client != nil {
		return s.client
	}
	return httpClient
}

// InMemory reports whether this store keeps buckets in memory.
func (s *Store) InMemory() bool { return s.dir == "" }

// Writer accumulates one bucket's records.
type Writer struct {
	store *Store
	name  string
	// memory path
	buf *bytes.Buffer
	// file path: records accumulate in tmp and are renamed to path on
	// Close, so a bucket is only ever observed complete. Duplicate task
	// attempts (reassignment races, lease requeues) then cannot expose
	// a half-written file to a concurrent reader — last rename wins and
	// both attempts produced identical content.
	f    *os.File
	tmp  string
	path string

	w      *kvio.Writer
	closed bool
}

// Create starts a new bucket with the given store-relative name. Name
// components are sanitized into a flat, safe file name.
func (s *Store) Create(name string) (*Writer, error) {
	if name == "" {
		return nil, fmt.Errorf("bucket: empty bucket name")
	}
	if s.dir == "" {
		buf := &bytes.Buffer{}
		return &Writer{store: s, name: name, buf: buf, w: kvio.NewWriter(buf)}, nil
	}
	path := filepath.Join(s.dir, flatten(name))
	f, err := os.CreateTemp(s.dir, "."+flatten(name)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("bucket: creating %s: %w", path, err)
	}
	return &Writer{store: s, name: name, f: f, tmp: f.Name(), path: path, w: kvio.NewWriter(f)}, nil
}

// Write appends one record to the bucket.
func (w *Writer) Write(p kvio.Pair) error {
	if w.closed {
		return fmt.Errorf("bucket: write after close")
	}
	return w.w.Write(p)
}

// Emit implements kvio.Emitter.
func (w *Writer) Emit(key, value []byte) error {
	return w.Write(kvio.Pair{Key: key, Value: value})
}

// Close finalizes the bucket and returns its descriptor.
func (w *Writer) Close() (Descriptor, error) {
	if w.closed {
		return Descriptor{}, fmt.Errorf("bucket: double close")
	}
	w.closed = true
	if err := w.w.Flush(); err != nil {
		if w.f != nil {
			w.f.Close()
			os.Remove(w.tmp)
		}
		return Descriptor{}, err
	}
	d := Descriptor{Name: w.name, Records: w.w.Count(), Bytes: w.w.Bytes()}
	s := w.store
	if w.buf != nil {
		s.mu.Lock()
		s.mem[w.name] = w.buf.Bytes()
		s.mu.Unlock()
		d.URL = fmt.Sprintf("mem:%d/%s", s.id, w.name)
		return d, nil
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return Descriptor{}, err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return Descriptor{}, fmt.Errorf("bucket: publishing %s: %w", w.path, err)
	}
	if s.baseURL != "" {
		d.URL = s.baseURL + "/" + url.PathEscape(flatten(w.name))
	} else {
		d.URL = "file://" + w.path
	}
	return d, nil
}

// Put stores a complete pair slice as a bucket in one call.
func (s *Store) Put(name string, pairs []kvio.Pair) (Descriptor, error) {
	w, err := s.Create(name)
	if err != nil {
		return Descriptor{}, err
	}
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			return Descriptor{}, err
		}
	}
	return w.Close()
}

// Remove deletes a local bucket by name; used when datasets are freed
// between iterations to bound storage.
func (s *Store) Remove(name string) error {
	if s.dir == "" {
		s.mu.Lock()
		delete(s.mem, name)
		s.mu.Unlock()
		return nil
	}
	err := os.Remove(filepath.Join(s.dir, flatten(name)))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// OpenLocal returns a reader for a bucket created by this store.
func (s *Store) OpenLocal(name string) (io.ReadCloser, error) {
	if s.dir == "" {
		s.mu.Lock()
		data, ok := s.mem[name]
		s.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("bucket: no mem bucket %q", name)
		}
		return io.NopCloser(bytes.NewReader(data)), nil
	}
	f, err := os.Open(filepath.Join(s.dir, flatten(name)))
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ServeName maps an escaped bucket file name (as it appears in an http
// URL path) back to a served file path, for use by the data server.
func (s *Store) ServeName(escaped string) (string, error) {
	name, err := url.PathUnescape(escaped)
	if err != nil {
		return "", err
	}
	if strings.ContainsAny(name, "/\\") || name == "" || strings.HasPrefix(name, ".") {
		return "", fmt.Errorf("bucket: illegal bucket name %q", name)
	}
	if s.dir == "" {
		return "", fmt.Errorf("bucket: memory store cannot serve files")
	}
	return filepath.Join(s.dir, name), nil
}

// flatten converts a hierarchical bucket name into a safe flat file name.
func flatten(name string) string {
	r := strings.NewReplacer("/", "_", "\\", "_", "..", "_", ":", "_")
	return r.Replace(name)
}

// ---------------------------------------------------------------------------
// Opening by URL

// HTTPTimeout bounds a single bucket fetch.
const HTTPTimeout = 30 * time.Second

// httpClient is shared so connections are reused between fetches.
var httpClient = &http.Client{Timeout: HTTPTimeout}

// Open resolves a bucket URL. mem: URLs must belong to this store;
// file:// URLs are opened directly; http:// URLs are fetched with
// bounded retries (transient fetch failures are expected during slave
// churn and must not kill a reduce task immediately).
func (s *Store) Open(rawURL string) (io.ReadCloser, error) {
	switch {
	case strings.HasPrefix(rawURL, "mem:"):
		rest := strings.TrimPrefix(rawURL, "mem:")
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			return nil, fmt.Errorf("bucket: malformed mem URL %q", rawURL)
		}
		if fmt.Sprintf("%d", s.id) != rest[:slash] {
			return nil, fmt.Errorf("bucket: mem URL %q belongs to another store", rawURL)
		}
		return s.OpenLocal(rest[slash+1:])
	case strings.HasPrefix(rawURL, "file://"):
		return os.Open(strings.TrimPrefix(rawURL, "file://"))
	case strings.HasPrefix(rawURL, "http://"), strings.HasPrefix(rawURL, "https://"):
		return s.openHTTP(rawURL)
	}
	return nil, fmt.Errorf("bucket: unsupported URL %q", rawURL)
}

// FetchRetries is how many times an http bucket fetch is attempted.
const FetchRetries = 5

func (s *Store) openHTTP(rawURL string) (io.ReadCloser, error) {
	// Jitter is seeded from the URL so a given fetch's retry schedule is
	// reproducible while distinct fetches desynchronize (no retry storms
	// hammering a recovering slave in lockstep).
	retry := fault.NewBackoff(hash.FNV1a64String(rawURL))
	client := s.fetchClient()
	var lastErr error
	for attempt := 1; attempt <= FetchRetries; attempt++ {
		if attempt > 1 {
			time.Sleep(retry.Delay(attempt - 1))
		}
		resp, err := client.Get(rawURL)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("bucket: GET %s: %s", rawURL, resp.Status)
			if resp.StatusCode == http.StatusNotFound {
				// The bucket is gone (slave died and restarted); no
				// point hammering.
				return nil, lastErr
			}
			continue
		}
		return resp.Body, nil
	}
	return nil, lastErr
}

// ReadAll opens a URL and decodes every record. Remote fetches that die
// mid-stream (connection dropped partway through the body) are retried
// whole, since a partial record stream is useless to the caller.
func (s *Store) ReadAll(rawURL string) ([]kvio.Pair, error) {
	remote := strings.HasPrefix(rawURL, "http://") || strings.HasPrefix(rawURL, "https://")
	retry := fault.NewBackoff(hash.FNV1a64String(rawURL) + 1)
	var lastErr error
	for attempt := 1; attempt <= FetchRetries; attempt++ {
		if attempt > 1 {
			time.Sleep(retry.Delay(attempt - 1))
		}
		rc, err := s.Open(rawURL)
		if err != nil {
			return nil, err // Open already retried transport errors
		}
		pairs, err := kvio.NewReader(rc).ReadAll()
		rc.Close()
		if err == nil {
			return pairs, nil
		}
		lastErr = fmt.Errorf("bucket: reading %s: %w", rawURL, err)
		if !remote {
			return nil, lastErr // local reads don't heal by retrying
		}
	}
	return nil, lastErr
}

// ReadAllMulti concatenates the records of several buckets in order.
func (s *Store) ReadAllMulti(urls []string) ([]kvio.Pair, error) {
	var out []kvio.Pair
	for _, u := range urls {
		pairs, err := s.ReadAll(u)
		if err != nil {
			return nil, err
		}
		out = append(out, pairs...)
	}
	return out, nil
}
