package bucket

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/wirecodec"
)

func TestColumnarBucketRoundTripLocal(t *testing.T) {
	for _, codecName := range wirecodec.Names() {
		t.Run(codecName, func(t *testing.T) {
			dir := t.TempDir()
			s, err := NewFileStore(dir, "")
			if err != nil {
				t.Fatal(err)
			}
			if err := s.SetCodec(codecName); err != nil {
				t.Fatal(err)
			}
			if err := s.SetBlockEncoding(kvio.EncColumnarDict); err != nil {
				t.Fatal(err)
			}
			in := compressiblePairs()
			d, err := s.Put("ds1/t0/s0", in)
			if err != nil {
				t.Fatal(err)
			}
			c, _ := wirecodec.Lookup(codecName)
			wantSuffix := ColExt + c.Ext()
			if !strings.HasSuffix(d.URL, wantSuffix) {
				t.Fatalf("columnar file URL %q should carry %s", d.URL, wantSuffix)
			}
			if d.Bytes != payloadBytes(in) || d.Records != int64(len(in)) {
				t.Errorf("descriptor %d records / %d bytes, want %d / %d",
					d.Records, d.Bytes, len(in), payloadBytes(in))
			}
			got, err := s.ReadAll(d.URL)
			if err != nil {
				t.Fatal(err)
			}
			if !pairsEqual(got, in) {
				t.Fatal("columnar round trip via URL lost data")
			}
		})
	}
}

// TestColumnarImpliesBlocks: columnar framing with no block codec set
// still writes block files (identity codec) — the legacy per-record
// forms have no columnar representation.
func TestColumnarImpliesBlocks(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewFileStore(dir, "")
	m := obs.NewMetrics()
	s.SetMetrics(m)
	if err := s.SetBlockEncoding(kvio.EncColumnar); err != nil {
		t.Fatal(err)
	}
	in := compressiblePairs()
	d, err := s.Put("ds1/t0/s0", in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(d.URL, ColExt) {
		t.Fatalf("URL %q should end in bare %s (identity columnar blocks)", d.URL, ColExt)
	}
	got, err := s.ReadAll(d.URL)
	if err != nil || !pairsEqual(got, in) {
		t.Fatalf("identity columnar round trip: %v", err)
	}
	if n := m.Get(obs.MetricBlocksColumnar); n == 0 {
		t.Error("writing a columnar bucket incremented no columnar-block counter")
	}
}

func TestSetBlockEncodingRejectsUnknown(t *testing.T) {
	s := NewMemStore()
	if err := s.SetBlockEncoding("zebra"); err == nil {
		t.Fatal("SetBlockEncoding accepted an unknown encoding")
	}
	if err := s.SetBlockEncoding(""); err != nil {
		t.Fatalf("SetBlockEncoding(\"\") should mean row: %v", err)
	}
}

// TestCreateOptsOverrides: per-bucket codec and encoding pins win over
// the store defaults in both directions.
func TestCreateOptsOverrides(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewFileStore(dir, "")
	in := compressiblePairs()

	// Plain store, bucket pinned columnar+lz.
	w, err := s.CreateOpts("ds1/t0/s0", CreateOpts{Codec: wirecodec.LZName, BlockEncoding: kvio.EncColumnarDelta})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range in {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	d, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := ColExt + wirecodec.LZExt; !strings.HasSuffix(d.URL, want) {
		t.Fatalf("pinned bucket URL %q should carry %s", d.URL, want)
	}
	if got, err := s.ReadAll(d.URL); err != nil || !pairsEqual(got, in) {
		t.Fatalf("pinned columnar bucket round trip: %v", err)
	}

	// Columnar store, bucket pinned back to row: legacy form again.
	if err := s.SetBlockEncoding(kvio.EncColumnar); err != nil {
		t.Fatal(err)
	}
	w2, err := s.CreateOpts("ds1/t0/s1", CreateOpts{BlockEncoding: kvio.EncRow})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := w2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(d2.URL, ColExt) || strings.Contains(d2.URL, BlockExt) {
		t.Fatalf("row-pinned bucket URL %q should be a legacy file", d2.URL)
	}

	if _, err := s.CreateOpts("ds1/t0/s2", CreateOpts{Codec: "zstd-from-the-future"}); err == nil {
		t.Fatal("CreateOpts accepted an unknown codec")
	}
	if _, err := s.CreateOpts("ds1/t0/s3", CreateOpts{BlockEncoding: "zebra"}); err == nil {
		t.Fatal("CreateOpts accepted an unknown encoding")
	}
}

func TestRemoveColumnarBucket(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewFileStore(dir, "")
	if err := s.SetCodec(wirecodec.LZName); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBlockEncoding(kvio.EncColumnar); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("ds1/t0/s0", compressiblePairs()); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("ds1/t0/s0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenLocal("ds1/t0/s0"); err == nil {
		t.Fatal("columnar bucket survived Remove")
	}
}

// columnarServer is a file store serving lz columnar buckets of in.
func columnarServer(t *testing.T, in []kvio.Pair) (*Store, string, func()) {
	t.Helper()
	dir := t.TempDir()
	server, _ := NewFileStore(dir, "")
	if err := server.SetCodec(wirecodec.LZName); err != nil {
		t.Fatal(err)
	}
	if err := server.SetBlockEncoding(kvio.EncColumnarDict); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Put("ds1/t0/s0", in); err != nil {
		t.Fatal(err)
	}
	srv := serveStore(server)
	return server, srv.URL + "/data/ds1_t0_s0", srv.Close
}

// TestColumnarBucketServedVerbatim: a columnar-capable client that
// decodes the at-rest codec gets the file bytes untouched, with both
// negotiation headers set.
func TestColumnarBucketServedVerbatim(t *testing.T) {
	in := compressiblePairs()
	server, url, done := columnarServer(t, in)
	defer done()

	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set(wirecodec.RequestHeader, wirecodec.AcceptHeader())
	req.Header.Set(wirecodec.BlockAcceptHeader, wirecodec.AcceptBlocksHeader())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(wirecodec.CodecHeader); got != wirecodec.LZName {
		t.Errorf("CodecHeader = %q, want %q", got, wirecodec.LZName)
	}
	if got := resp.Header.Get(wirecodec.BlockEncHeader); got != wirecodec.BlockKindColumnar {
		t.Errorf("BlockEncHeader = %q, want columnar", got)
	}
	atRestBytes, err := os.ReadFile(server.Dir() + "/ds1_t0_s0" + ColExt + wirecodec.LZExt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, atRestBytes) {
		t.Error("verbatim response differs from the at-rest file")
	}
	r := kvio.NewAnyReader(bytes.NewReader(body))
	defer r.Release()
	got, err := r.ReadAll()
	if err != nil || !pairsEqual(got, in) {
		t.Fatalf("verbatim columnar body mis-decodes: %v", err)
	}
}

// TestColumnarRowOnlyClientGetsRowBlocks is the mixed-version fallback:
// a block-capable client that never advertises block kinds (a
// pre-columnar build) is served the columnar file transcoded down to
// row blocks it can parse.
func TestColumnarRowOnlyClientGetsRowBlocks(t *testing.T) {
	in := compressiblePairs()
	_, url, done := columnarServer(t, in)
	defer done()

	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set(wirecodec.RequestHeader, wirecodec.AcceptHeader())
	// No BlockAcceptHeader: exactly what a pre-columnar peer sends.
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(wirecodec.BlockEncHeader); got != wirecodec.BlockKindRow {
		t.Errorf("BlockEncHeader = %q, want row", got)
	}
	br, err := kvio.NewBlockReader(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Release()
	var got []kvio.Pair
	for {
		rows, cb, _, err := br.NextAny()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if cb != nil {
			t.Fatal("row-only client received a columnar frame")
		}
		if _, err := kvio.ScanRecords(rows, func(k, v []byte) error {
			got = append(got, kvio.Pair{Key: k, Value: v}.Clone())
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !pairsEqual(got, in) {
		t.Fatal("row-block fallback lost data")
	}
}

// TestColumnarLegacyClientGetsRecords: a pre-block client (no codec
// advertisement at all) still reads a columnar bucket as a plain
// legacy record stream.
func TestColumnarLegacyClientGetsRecords(t *testing.T) {
	in := compressiblePairs()
	_, url, done := columnarServer(t, in)
	defer done()

	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Accept-Encoding", "identity") // suppress Go's implicit gzip
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	kr := kvio.NewReader(resp.Body) // strictly the legacy reader
	defer kr.Release()
	got, err := kr.ReadAll()
	if err != nil || !pairsEqual(got, in) {
		t.Fatalf("legacy client on columnar bucket: %v", err)
	}
}

// TestSetRowOnlyFetch: a store in row-only-fetch mode pulls a columnar
// bucket through the fallback and the per-encoding wire counters show
// every byte moved as row blocks.
func TestSetRowOnlyFetch(t *testing.T) {
	in := compressiblePairs()
	_, url, done := columnarServer(t, in)
	defer done()

	m := obs.NewMetrics()
	client := NewMemStore()
	client.SetMetrics(m)
	client.SetRowOnlyFetch(true)
	got, err := client.ReadAll(url)
	if err != nil || !pairsEqual(got, in) {
		t.Fatalf("row-only fetch: %v", err)
	}
	if n := m.Get(obs.MetricWireBytesEncoding(wirecodec.BlockKindColumnar)); n != 0 {
		t.Errorf("row-only fetch counted %d columnar wire bytes", n)
	}
	if n := m.Get(obs.MetricWireBytesEncoding(wirecodec.BlockKindRow)); n == 0 {
		t.Error("row-only fetch counted no row wire bytes")
	}

	// And with the hook off, the same fetch moves columnar bytes.
	m2 := obs.NewMetrics()
	client2 := NewMemStore()
	client2.SetMetrics(m2)
	got2, err := client2.ReadAll(url)
	if err != nil || !pairsEqual(got2, in) {
		t.Fatalf("columnar fetch: %v", err)
	}
	if n := m2.Get(obs.MetricWireBytesEncoding(wirecodec.BlockKindColumnar)); n == 0 {
		t.Error("columnar-capable fetch counted no columnar wire bytes")
	}
	if n := m2.Get(obs.MetricBlocksColumnar); n != 0 {
		t.Errorf("mem client wrote no buckets but counted %d columnar blocks", n)
	}
}
