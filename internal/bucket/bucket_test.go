package bucket

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/kvio"
)

var samplePairs = []kvio.Pair{
	kvio.StrPair("alpha", "1"),
	kvio.StrPair("beta", "2"),
	kvio.StrPair("gamma", "3"),
}

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore()
	d, err := s.Put("ds1/t0/s0", samplePairs)
	if err != nil {
		t.Fatal(err)
	}
	if d.Records != 3 {
		t.Errorf("Records = %d, want 3", d.Records)
	}
	if !strings.HasPrefix(d.URL, "mem:") {
		t.Errorf("URL = %q, want mem scheme", d.URL)
	}
	got, err := s.ReadAll(d.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0].Key) != "alpha" {
		t.Errorf("got %v", got)
	}
}

func TestMemStoreIsolation(t *testing.T) {
	a := NewMemStore()
	b := NewMemStore()
	d, err := a.Put("x", samplePairs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadAll(d.URL); err == nil {
		t.Error("store b resolved store a's mem URL")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Put("ds2/t1/s3", samplePairs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(d.URL, "file://") {
		t.Errorf("URL = %q, want file scheme", d.URL)
	}
	got, err := s.ReadAll(d.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[2].Value) != "3" {
		t.Errorf("got %v", got)
	}
}

func TestFileStoreCrossStoreRead(t *testing.T) {
	// file:// URLs must be readable by a different store (shared fs).
	dir := t.TempDir()
	a, _ := NewFileStore(dir, "")
	d, err := a.Put("shared", samplePairs)
	if err != nil {
		t.Fatal(err)
	}
	b := NewMemStore()
	got, err := b.ReadAll(d.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("got %d pairs", len(got))
	}
}

func TestFileStoreBaseURL(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir, "http://node7:9999/data/")
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Put("ds1/t0/s0", samplePairs)
	if err != nil {
		t.Fatal(err)
	}
	want := "http://node7:9999/data/ds1_t0_s0"
	if d.URL != want {
		t.Errorf("URL = %q, want %q", d.URL, want)
	}
}

func TestHTTPFetch(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewFileStore(dir, "")
	if _, err := s.Put("ds1/t0/s0", samplePairs); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/data/")
		path, err := s.ServeName(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		http.ServeFile(w, r, path)
	}))
	defer srv.Close()

	client := NewMemStore()
	got, err := client.ReadAll(srv.URL + "/data/ds1_t0_s0")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[1].Key) != "beta" {
		t.Errorf("got %v", got)
	}
}

func TestHTTPFetch404(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	s := NewMemStore()
	if _, err := s.ReadAll(srv.URL + "/data/nope"); err == nil {
		t.Error("expected error for 404")
	}
}

func TestServeNameRejectsTraversal(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewFileStore(dir, "")
	for _, bad := range []string{"..%2Fetc", "a%2Fb", ".hidden", ""} {
		if _, err := s.ServeName(bad); err == nil {
			t.Errorf("ServeName(%q) accepted a dangerous name", bad)
		}
	}
}

func TestRemove(t *testing.T) {
	mem := NewMemStore()
	d, _ := mem.Put("x", samplePairs)
	if err := mem.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.ReadAll(d.URL); err == nil {
		t.Error("mem bucket still readable after Remove")
	}
	if err := mem.Remove("x"); err != nil {
		t.Errorf("Remove should be idempotent: %v", err)
	}

	dir := t.TempDir()
	fs, _ := NewFileStore(dir, "")
	fs.Put("y", samplePairs)
	if err := fs.Remove("y"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "y")); !os.IsNotExist(err) {
		t.Error("file bucket still exists after Remove")
	}
	if err := fs.Remove("y"); err != nil {
		t.Errorf("Remove should be idempotent: %v", err)
	}
}

func TestWriterEmitInterface(t *testing.T) {
	s := NewMemStore()
	w, err := s.Create("e")
	if err != nil {
		t.Fatal(err)
	}
	var em kvio.Emitter = w
	if err := em.Emit([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	d, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if d.Records != 1 {
		t.Errorf("Records = %d", d.Records)
	}
}

func TestWriteAfterClose(t *testing.T) {
	s := NewMemStore()
	w, _ := s.Create("x")
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(samplePairs[0]); err == nil {
		t.Error("write after close should fail")
	}
	if _, err := w.Close(); err == nil {
		t.Error("double close should fail")
	}
}

func TestEmptyBucket(t *testing.T) {
	s := NewMemStore()
	d, err := s.Put("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadAll(d.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestCreateEmptyNameFails(t *testing.T) {
	s := NewMemStore()
	if _, err := s.Create(""); err == nil {
		t.Error("expected error for empty name")
	}
}

func TestReadAllMulti(t *testing.T) {
	s := NewMemStore()
	d1, _ := s.Put("a", samplePairs[:1])
	d2, _ := s.Put("b", samplePairs[1:])
	got, err := s.ReadAllMulti([]string{d1.URL, d2.URL})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0].Key) != "alpha" || string(got[2].Key) != "gamma" {
		t.Errorf("got %v", got)
	}
}

func TestUnsupportedScheme(t *testing.T) {
	s := NewMemStore()
	if _, err := s.Open("gopher://x"); err == nil {
		t.Error("expected unsupported scheme error")
	}
	if _, err := s.Open("mem:nodelimiter"); err == nil {
		t.Error("expected malformed mem URL error")
	}
}

func TestFlattenCollisionAvoidance(t *testing.T) {
	// Distinct hierarchical names must not collide after flattening in
	// common dataset/task/split naming.
	names := []string{"ds1/t0/s0", "ds1/t0/s1", "ds1/t1/s0", "ds10/t0/s0"}
	seen := map[string]string{}
	for _, n := range names {
		f := flatten(n)
		if prev, ok := seen[f]; ok {
			t.Errorf("flatten collision: %q and %q -> %q", prev, n, f)
		}
		seen[f] = n
	}
}

func BenchmarkMemBucketWrite(b *testing.B) {
	s := NewMemStore()
	for i := 0; i < b.N; i++ {
		w, _ := s.Create(fmt.Sprintf("bench-%d", i))
		for _, p := range samplePairs {
			w.Write(p)
		}
		w.Close()
		s.Remove(fmt.Sprintf("bench-%d", i))
	}
}
