package bucket

import (
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/wirecodec"
)

func TestBlockBucketRoundTripLocal(t *testing.T) {
	for _, name := range wirecodec.Names() {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := NewFileStore(dir, "")
			if err != nil {
				t.Fatal(err)
			}
			if err := s.SetCodec(name); err != nil {
				t.Fatal(err)
			}
			in := compressiblePairs()
			d, err := s.Put("ds1/t0/s0", in)
			if err != nil {
				t.Fatal(err)
			}
			c, _ := wirecodec.Lookup(name)
			wantSuffix := BlockExt + c.Ext()
			if !strings.HasSuffix(d.URL, wantSuffix) {
				t.Fatalf("block file URL %q should carry %s", d.URL, wantSuffix)
			}
			if d.Bytes != payloadBytes(in) || d.Records != int64(len(in)) {
				t.Errorf("descriptor %d records / %d bytes, want %d / %d",
					d.Records, d.Bytes, len(in), payloadBytes(in))
			}
			if name != wirecodec.IdentityName {
				fi, err := os.Stat(strings.TrimPrefix(d.URL, "file://"))
				if err != nil {
					t.Fatal(err)
				}
				if fi.Size() >= d.Bytes {
					t.Errorf("%s at-rest size %d not smaller than payload %d", name, fi.Size(), d.Bytes)
				}
			}
			// Via the URL and via OpenLocal + sniffing reader.
			got, err := s.ReadAll(d.URL)
			if err != nil {
				t.Fatal(err)
			}
			if !pairsEqual(got, in) {
				t.Fatal("block round trip via URL lost data")
			}
			rc, err := s.OpenLocal("ds1/t0/s0")
			if err != nil {
				t.Fatal(err)
			}
			defer rc.Close()
			r := kvio.NewAnyReader(rc)
			defer r.Release()
			got, err = r.ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			if !pairsEqual(got, in) {
				t.Fatal("block round trip via OpenLocal lost data")
			}
		})
	}
}

func TestSetCodecRejectsUnknown(t *testing.T) {
	s := NewMemStore()
	if err := s.SetCodec("zstd-from-the-future"); err == nil {
		t.Fatal("SetCodec accepted an unregistered codec")
	}
	if err := s.SetCodec(""); err != nil {
		t.Fatalf("SetCodec(\"\") should clear the codec: %v", err)
	}
}

func TestRemoveBlockBucket(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewFileStore(dir, "")
	for _, name := range wirecodec.Names() {
		if err := s.SetCodec(name); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Put("ds1/t0/s0", compressiblePairs()); err != nil {
			t.Fatal(err)
		}
		if err := s.Remove("ds1/t0/s0"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := s.OpenLocal("ds1/t0/s0"); err == nil {
			t.Fatalf("%s bucket survived Remove", name)
		}
	}
}

// TestBlockBucketServedVerbatim: a client advertising the at-rest codec
// gets the file bytes untouched — the zero-CPU path — with the codec
// named in the response header, and the wire counters see the
// compressed size split per codec.
func TestBlockBucketServedVerbatim(t *testing.T) {
	dir := t.TempDir()
	server, _ := NewFileStore(dir, "")
	if err := server.SetCodec(wirecodec.LZName); err != nil {
		t.Fatal(err)
	}
	in := compressiblePairs()
	if _, err := server.Put("ds1/t0/s0", in); err != nil {
		t.Fatal(err)
	}
	srv := serveStore(server)
	defer srv.Close()
	url := srv.URL + "/data/ds1_t0_s0"

	// Raw HTTP first: response must name the codec and match the file.
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set(wirecodec.RequestHeader, wirecodec.AcceptHeader())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(wirecodec.CodecHeader); got != wirecodec.LZName {
		t.Errorf("CodecHeader = %q, want %q", got, wirecodec.LZName)
	}
	atRestBytes, err := os.ReadFile(dir + "/ds1_t0_s0" + BlockExt + wirecodec.LZExt)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(atRestBytes) {
		t.Error("verbatim response differs from the at-rest file")
	}

	// Through the store client: decoded records and per-codec counters.
	m := obs.NewMetrics()
	client := NewMemStore()
	client.SetMetrics(m)
	got, err := client.ReadAll(url)
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(got, in) {
		t.Fatal("block HTTP round trip lost data")
	}
	wire := m.Get(obs.MetricWireBytesDirect)
	perCodec := m.Get(obs.MetricWireBytesCodec(wirecodec.LZName))
	if wire == 0 || wire >= payloadBytes(in) {
		t.Errorf("wire bytes = %d, want 0 < wire < raw %d", wire, payloadBytes(in))
	}
	if perCodec != wire {
		t.Errorf("per-codec wire bytes = %d, want %d (all bytes moved under lz)", perCodec, wire)
	}
}

// TestNegotiationUnknownCodecFallsBackToIdentity is the mixed-version
// guarantee: a client advertising only a codec this server has never
// heard of still gets blocks — identity-encoded — and decodes the
// byte-identical record sequence.
func TestNegotiationUnknownCodecFallsBackToIdentity(t *testing.T) {
	dir := t.TempDir()
	server, _ := NewFileStore(dir, "")
	if err := server.SetCodec(wirecodec.LZName); err != nil {
		t.Fatal(err)
	}
	in := compressiblePairs()
	if _, err := server.Put("ds1/t0/s0", in); err != nil {
		t.Fatal(err)
	}
	srv := serveStore(server)
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/data/ds1_t0_s0", nil)
	req.Header.Set(wirecodec.RequestHeader, "zstd-from-the-future")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(wirecodec.CodecHeader); got != wirecodec.IdentityName {
		t.Errorf("CodecHeader = %q, want identity fallback", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The body must be identity-encoded blocks: byte-identical to the
	// at-rest file transcoded to identity, and decodable without lz.
	r := kvio.NewAnyReader(strings.NewReader(string(body)))
	defer r.Release()
	pairs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(pairs, in) {
		t.Fatal("identity-fallback response lost data")
	}
	// Every payload byte is uncompressed: the body must be at least as
	// large as the raw payload.
	if int64(len(body)) < payloadBytes(in) {
		t.Errorf("identity body %d bytes < payload %d; still compressed?", len(body), payloadBytes(in))
	}
}

// TestBlockBucketLegacyClients: pre-block clients (no codec header) get
// a legacy record stream they can already parse — deflate-wrapped when
// they accept it, identity otherwise.
func TestBlockBucketLegacyClients(t *testing.T) {
	dir := t.TempDir()
	server, _ := NewFileStore(dir, "")
	if err := server.SetCodec(wirecodec.DeflateName); err != nil {
		t.Fatal(err)
	}
	in := compressiblePairs()
	if _, err := server.Put("ds1/t0/s0", in); err != nil {
		t.Fatal(err)
	}
	srv := serveStore(server)
	defer srv.Close()
	url := srv.URL + "/data/ds1_t0_s0"

	// Identity legacy client: plain record stream, no headers needed.
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Accept-Encoding", "identity") // suppress Go's implicit gzip
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("identity legacy client got Content-Encoding %q", enc)
	}
	if ch := resp.Header.Get(wirecodec.CodecHeader); ch != "" {
		t.Fatalf("legacy client got CodecHeader %q", ch)
	}
	kr := kvio.NewReader(resp.Body) // strictly the legacy reader
	defer kr.Release()
	got, err := kr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(got, in) {
		t.Fatal("legacy identity client lost data")
	}

	// Deflate legacy client: the old wire form, via the store with its
	// codec advertisement stripped (simulating a pre-block binary).
	req2, _ := http.NewRequest(http.MethodGet, url, nil)
	req2.Header.Set("Accept-Encoding", "deflate")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if enc := resp2.Header.Get("Content-Encoding"); enc != "deflate" {
		t.Fatalf("deflate legacy client got Content-Encoding %q", enc)
	}
	dc, _ := wirecodec.Lookup(wirecodec.DeflateName)
	fr := dc.NewReader(resp2.Body)
	kr2 := kvio.NewReader(fr)
	got2, err := kr2.ReadAll()
	kr2.Release()
	fr.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(got2, in) {
		t.Fatal("legacy deflate client lost data")
	}
}

// TestBlockBucketTranscodeBetweenCodecs: a client that decodes deflate
// but not lz gets the lz at-rest file transcoded block-to-block.
func TestBlockBucketTranscodeBetweenCodecs(t *testing.T) {
	dir := t.TempDir()
	server, _ := NewFileStore(dir, "")
	if err := server.SetCodec(wirecodec.LZName); err != nil {
		t.Fatal(err)
	}
	in := compressiblePairs()
	if _, err := server.Put("ds1/t0/s0", in); err != nil {
		t.Fatal(err)
	}
	srv := serveStore(server)
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/data/ds1_t0_s0", nil)
	req.Header.Set(wirecodec.RequestHeader, "deflate,identity")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(wirecodec.CodecHeader); got != wirecodec.DeflateName {
		t.Errorf("CodecHeader = %q, want deflate (best mutual)", got)
	}
	r := kvio.NewAnyReader(resp.Body)
	defer r.Release()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(got, in) {
		t.Fatal("transcoded response lost data")
	}
}
