package bucket

import (
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/kvio"
	"repro/internal/obs"
)

func pairsEqual(a, b []kvio.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if string(a[i].Key) != string(b[i].Key) || string(a[i].Value) != string(b[i].Value) {
			return false
		}
	}
	return true
}

// compressiblePairs have enough redundancy that flate must shrink them.
func compressiblePairs() []kvio.Pair {
	var pairs []kvio.Pair
	for i := 0; i < 200; i++ {
		pairs = append(pairs, kvio.StrPair("repeated-key-material", strings.Repeat("abcdef", 20)))
	}
	return pairs
}

func payloadBytes(pairs []kvio.Pair) int64 {
	var n int64
	for _, p := range pairs {
		n += int64(len(p.Key) + len(p.Value))
	}
	return n
}

func TestCompressedBucketRoundTripLocal(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	s.SetCompress(true)
	in := compressiblePairs()
	d, err := s.Put("ds1/t0/s0", in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(d.URL, CompressExt) {
		t.Fatalf("compressed file URL %q should carry %s", d.URL, CompressExt)
	}
	if d.Bytes != payloadBytes(in) {
		t.Errorf("Descriptor.Bytes = %d, want pre-compression %d", d.Bytes, payloadBytes(in))
	}
	// The at-rest file must actually be smaller than the payload.
	fi, err := os.Stat(strings.TrimPrefix(d.URL, "file://"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= d.Bytes {
		t.Errorf("at-rest size %d not smaller than payload %d", fi.Size(), d.Bytes)
	}
	// Via the URL and via OpenLocal.
	for _, read := range []func() ([]kvio.Pair, error){
		func() ([]kvio.Pair, error) { return s.ReadAll(d.URL) },
		func() ([]kvio.Pair, error) {
			rc, err := s.OpenLocal("ds1/t0/s0")
			if err != nil {
				return nil, err
			}
			defer rc.Close()
			r := kvio.NewReader(rc)
			defer r.Release()
			return r.ReadAll()
		},
	} {
		got, err := read()
		if err != nil {
			t.Fatal(err)
		}
		if !pairsEqual(got, in) {
			t.Fatal("compressed round trip lost data")
		}
	}
}

func TestRemoveCompressedBucket(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewFileStore(dir, "")
	s.SetCompress(true)
	if _, err := s.Put("ds1/t0/s0", compressiblePairs()); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("ds1/t0/s0"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ds1_t0_s0"+CompressExt)); !os.IsNotExist(err) {
		t.Error("compressed bucket file survived Remove")
	}
	if err := s.Remove("ds1/t0/s0"); err != nil {
		t.Errorf("second Remove: %v", err)
	}
}

// serveStore exposes a store over HTTP the way master/slave do.
func serveStore(s *Store) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/data/")
		path, err := s.ServeName(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ServeBucket(w, r, path)
	}))
}

func TestCompressedBucketOverHTTP(t *testing.T) {
	dir := t.TempDir()
	server, _ := NewFileStore(dir, "")
	server.SetCompress(true)
	in := compressiblePairs()
	if _, err := server.Put("ds1/t0/s0", in); err != nil {
		t.Fatal(err)
	}
	srv := serveStore(server)
	defer srv.Close()
	url := srv.URL + "/data/ds1_t0_s0"

	// The store client advertises deflate, so the wire bytes it counts
	// must be the compressed size.
	m := obs.NewMetrics()
	client := NewMemStore()
	client.SetMetrics(m)
	got, err := client.ReadAll(url)
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(got, in) {
		t.Fatal("HTTP compressed round trip lost data")
	}
	raw := payloadBytes(in)
	wire := m.Get(obs.MetricWireBytesDirect)
	if wire == 0 || wire >= raw {
		t.Errorf("wire bytes = %d, want 0 < wire < raw %d", wire, raw)
	}

	// A client that does not accept deflate must get the identity form:
	// the server decompresses for it.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("identity client got Content-Encoding %q", enc)
	}
	r := kvio.NewReader(resp.Body)
	defer r.Release()
	got, err = r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(got, in) {
		t.Fatal("identity-encoding round trip lost data")
	}
}

func TestUncompressedServerIgnoresAcceptEncoding(t *testing.T) {
	dir := t.TempDir()
	server, _ := NewFileStore(dir, "")
	in := compressiblePairs()
	if _, err := server.Put("ds1/t0/s0", in); err != nil {
		t.Fatal(err)
	}
	srv := serveStore(server)
	defer srv.Close()

	m := obs.NewMetrics()
	client := NewMemStore()
	client.SetMetrics(m)
	got, err := client.ReadAll(srv.URL + "/data/ds1_t0_s0")
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(got, in) {
		t.Fatal("round trip lost data")
	}
	if wire := m.Get(obs.MetricWireBytesDirect); wire < payloadBytes(in) {
		t.Errorf("identity wire bytes = %d, want >= payload %d", wire, payloadBytes(in))
	}
}

func TestFileWireBytesCounted(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewFileStore(dir, "")
	s.SetCompress(true)
	in := compressiblePairs()
	d, err := s.Put("ds1/t0/s0", in)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	s.SetMetrics(m)
	if _, err := s.ReadAll(d.URL); err != nil {
		t.Fatal(err)
	}
	wire := m.Get(obs.MetricWireBytesShared)
	if wire == 0 || wire >= payloadBytes(in) {
		t.Errorf("shared wire bytes = %d, want 0 < wire < raw %d", wire, payloadBytes(in))
	}
}

// TestConnectionReuseAcrossFetches is the transport-tuning satellite:
// many sequential bucket fetches against one host must share a single
// TCP connection instead of redialing (the symptom of an untuned
// MaxIdleConnsPerHost once fetches overlap).
func TestConnectionReuseAcrossFetches(t *testing.T) {
	dir := t.TempDir()
	server, _ := NewFileStore(dir, "")
	const buckets = 24
	for i := 0; i < buckets; i++ {
		name := "ds1/t" + string(rune('a'+i)) + "/s0"
		if _, err := server.Put(name, compressiblePairs()); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	conns := map[string]bool{}
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/data/")
		path, err := server.ServeName(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ServeBucket(w, r, path)
	}))
	srv.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			mu.Lock()
			conns[c.RemoteAddr().String()] = true
			mu.Unlock()
		}
	}
	srv.Start()
	defer srv.Close()

	client := NewMemStore()
	for i := 0; i < buckets; i++ {
		name := "ds1_t" + string(rune('a'+i)) + "_s0"
		if _, err := client.ReadAll(srv.URL + "/data/" + name); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	n := len(conns)
	mu.Unlock()
	if n != 1 {
		t.Errorf("%d buckets used %d connections; sequential fetches must reuse one", buckets, n)
	}
}
