package core

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/bucket"
	"repro/internal/codec"
)

// TextFileDataSplit queues text files as a source dataset where large
// files are divided into byte-range splits of roughly splitBytes each
// (Hadoop's input-split model): a split owns every line that starts
// inside its range, so map parallelism no longer depends on file count.
// Records are (varint byte-offset-of-line, line).
func (j *Job) TextFileDataSplit(paths []string, splitBytes int64) (*Dataset, error) {
	if splitBytes <= 0 {
		return nil, fmt.Errorf("core: splitBytes must be positive")
	}
	var urls []string
	for _, path := range paths {
		info, err := os.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("core: stat %s: %w", path, err)
		}
		size := info.Size()
		if size == 0 {
			urls = append(urls, rangeURL(path, 0, 0))
			continue
		}
		for start := int64(0); start < size; start += splitBytes {
			length := splitBytes
			if start+length > size {
				length = size - start
			}
			urls = append(urls, rangeURL(path, start, length))
		}
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("core: no input files")
	}
	op := &Operation{
		Kind:   OpFile,
		Input:  -1,
		Splits: len(urls),
		// Paths carries the range URLs; MaterializeFiles special-cases
		// the fragment syntax via the format below.
		Paths: urls,
	}
	ds, err := j.enqueueRanged(op, len(urls))
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// enqueueRanged is enqueue for range-format file sources.
func (j *Job) enqueueRanged(op *Operation, splits int) (*Dataset, error) {
	op.rangeFormat = true
	return j.enqueue(op, splits)
}

func rangeURL(path string, start, length int64) string {
	return fmt.Sprintf("file://%s#%d+%d", path, start, length)
}

// parseRangeURL splits a "file://path#start+len" URL.
func parseRangeURL(u string) (path string, start, length int64, err error) {
	rest, ok := strings.CutPrefix(u, "file://")
	if !ok {
		return "", 0, 0, fmt.Errorf("core: range URL %q lacks file scheme", u)
	}
	path, frag, ok := strings.Cut(rest, "#")
	if !ok {
		return "", 0, 0, fmt.Errorf("core: range URL %q lacks fragment", u)
	}
	s, l, ok := strings.Cut(frag, "+")
	if !ok {
		return "", 0, 0, fmt.Errorf("core: range fragment %q malformed", frag)
	}
	if start, err = strconv.ParseInt(s, 10, 64); err != nil {
		return "", 0, 0, err
	}
	if length, err = strconv.ParseInt(l, 10, 64); err != nil {
		return "", 0, 0, err
	}
	if start < 0 || length < 0 {
		return "", 0, 0, fmt.Errorf("core: negative range in %q", u)
	}
	return path, start, length, nil
}

// materializeRangedFiles wraps range URLs as a lines-range dataset.
func materializeRangedFiles(op *Operation) (*Materialized, error) {
	m := NewMaterialized(len(op.Paths), FormatLinesRange)
	for s, u := range op.Paths {
		if _, _, _, err := parseRangeURL(u); err != nil {
			return nil, err
		}
		if err := m.AddBucket(s, bucket.Descriptor{URL: u}); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// forEachLineRange yields (varint line-start-offset, line) for every
// line starting within [start, start+length) of the file. If start > 0
// the reader first skips the tail of the line begun in the previous
// range; the final line is read to completion even past the range end.
func forEachLineRange(u string, fn func(key, value []byte) error) error {
	path, start, length, err := parseRangeURL(u)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	pos := start
	if start > 0 {
		// Align to the first line that starts inside the range: seek to
		// start-1 so a newline exactly at start-1 makes the line at
		// `start` ours.
		if _, err := f.Seek(start-1, io.SeekStart); err != nil {
			return err
		}
		r := bufio.NewReaderSize(f, 64<<10)
		skipped, err := r.ReadBytes('\n')
		if err == io.EOF {
			return nil // the range begins inside the file's final line
		}
		if err != nil {
			return err
		}
		pos = start - 1 + int64(len(skipped))
		return scanLines(r, pos, start+length, fn)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return scanLines(bufio.NewReaderSize(f, 64<<10), 0, start+length, fn)
}

// scanLines emits lines starting at pos while pos < limit.
func scanLines(r *bufio.Reader, pos, limit int64, fn func(key, value []byte) error) error {
	for pos < limit {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			lineStart := pos
			pos += int64(len(line))
			trimmed := line
			if n := len(trimmed); n > 0 && trimmed[n-1] == '\n' {
				trimmed = trimmed[:n-1]
			}
			if n := len(trimmed); n > 0 && trimmed[n-1] == '\r' {
				trimmed = trimmed[:n-1]
			}
			if ferr := fn(codec.EncodeVarint(lineStart), trimmed); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}
