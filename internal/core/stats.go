package core

// OpStats is one operation's aggregated task-cost breakdown, summed
// over its finished tasks. The decomposition is
//
//	WallNS = ScheduleNS + ExecNS
//	ExecNS = ComputeNS + ShuffleNS
//
// where WallNS is driver-observed elapsed time from task submission to
// completion (including executor queueing, RPC, and any retries),
// ExecNS is the successful attempt's measured execution time, ShuffleNS
// is the part of ExecNS spent blocked reading input buckets, and
// ComputeNS is the remainder.
type OpStats struct {
	Dataset int
	Kind    string // "map" / "reduce"
	Func    string
	Tasks   int64

	WallNS     int64
	ScheduleNS int64
	ComputeNS  int64
	ShuffleNS  int64

	InBytes    int64
	InRecords  int64
	OutBytes   int64
	OutRecords int64

	// ResidentHits/ResidentMisses are the op's resident-cache lookup
	// outcomes (zero unless the op was queued with OpOpts.Resident).
	// Hits/(Hits+Misses) is the warm hit rate.
	ResidentHits   int64
	ResidentMisses int64
}

// JobStats is the job-wide roll-up of every operation's OpStats,
// snapshotted by Job.Stats. Totals are sums over all finished tasks.
type JobStats struct {
	Ops   []OpStats
	Tasks int64

	WallNS     int64
	ScheduleNS int64
	ComputeNS  int64
	ShuffleNS  int64

	InBytes  int64
	OutBytes int64

	ResidentHits   int64
	ResidentMisses int64
}

// Stats snapshots the per-operation cost breakdown accumulated so far.
// It can be called while the job is running (partial totals) or after
// Close (final totals). Source operations (file/local materialization)
// run no tasks and are omitted.
func (j *Job) Stats() JobStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out JobStats
	for _, d := range j.states {
		if d.op.Input < 0 || d.agg.tasks == 0 {
			continue
		}
		sched := d.agg.wallNS - d.agg.execNS
		if sched < 0 {
			sched = 0
		}
		compute := d.agg.execNS - d.agg.shuffleNS
		if compute < 0 {
			compute = 0
		}
		op := OpStats{
			Dataset:    d.op.Dataset,
			Kind:       d.op.Kind.String(),
			Func:       d.op.FuncName,
			Tasks:      d.agg.tasks,
			WallNS:     d.agg.wallNS,
			ScheduleNS: sched,
			ComputeNS:  compute,
			ShuffleNS:  d.agg.shuffleNS,
			InBytes:    d.agg.inBytes,
			InRecords:  d.agg.inRecords,
			OutBytes:   d.agg.outBytes,
			OutRecords: d.agg.outRecords,

			ResidentHits:   d.agg.residentHits,
			ResidentMisses: d.agg.residentMisses,
		}
		out.Ops = append(out.Ops, op)
		out.Tasks += op.Tasks
		out.WallNS += op.WallNS
		out.ScheduleNS += op.ScheduleNS
		out.ComputeNS += op.ComputeNS
		out.ShuffleNS += op.ShuffleNS
		out.InBytes += op.InBytes
		out.OutBytes += op.OutBytes
		out.ResidentHits += op.ResidentHits
		out.ResidentMisses += op.ResidentMisses
	}
	return out
}
