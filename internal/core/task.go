package core

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"repro/internal/bucket"
	"repro/internal/codec"
	"repro/internal/kvio"
	"repro/internal/partition"
	"repro/internal/shuffle"
)

// DefaultSpillBytes is the default reduce-side external-sort threshold.
const DefaultSpillBytes = 256 << 20

// TaskEnv carries the per-process resources a task needs. Both local
// executors and slave processes construct one.
type TaskEnv struct {
	// Store creates output buckets and resolves input URLs.
	Store *bucket.Store
	// Reg resolves function names.
	Reg *Registry
	// TempDir holds external-sort spill files ("" = os.TempDir()).
	TempDir string
	// SpillBytes overrides the external-sort threshold (0 = default).
	SpillBytes int64
}

func (env *TaskEnv) spillBytes() int64 {
	if env.SpillBytes > 0 {
		return env.SpillBytes
	}
	return DefaultSpillBytes
}

// TaskSpec fully describes one task; it is what travels from the master
// to a slave.
type TaskSpec struct {
	// Op is the operation this task belongs to.
	Op *Operation
	// TaskIndex is the task's index within the operation (== the input
	// split it consumes).
	TaskIndex int
	// InputURLs are the buckets making up the consumed split, in
	// producer-task order.
	InputURLs []string
	// InputFormat is the split's record format (FormatKV or FormatLines).
	InputFormat string
}

// TaskResult reports a finished task's output buckets, one per output
// split.
type TaskResult struct {
	Dataset   int
	TaskIndex int
	Outputs   []bucket.Descriptor
}

// ExecTask dispatches on the operation kind.
func ExecTask(env *TaskEnv, spec *TaskSpec) (*TaskResult, error) {
	switch spec.Op.Kind {
	case OpMap:
		return execMapTask(env, spec)
	case OpReduce:
		return execReduceTask(env, spec)
	default:
		return nil, fmt.Errorf("core: cannot execute %s operation as a task", spec.Op.Kind)
	}
}

// partitionedEmitter routes emitted records into per-split bucket writers.
type partitionedEmitter struct {
	parter  partition.Func
	splits  int
	serial  int64
	writers []*bucket.Writer
	// ownSplit, when >= 0, enforces the narrow-reduce alignment
	// promise: every emitted record must route to this split (the
	// task's own index). Downstream tasks may already be consuming the
	// task's split, so a violation must fail the task rather than
	// silently scatter records the scheduler assumed were aligned.
	ownSplit int
}

func (e *partitionedEmitter) Emit(key, value []byte) error {
	s := e.parter(key, e.serial, e.splits)
	e.serial++
	if s < 0 || s >= e.splits {
		return fmt.Errorf("core: partitioner returned split %d of %d", s, e.splits)
	}
	if e.ownSplit >= 0 && s != e.ownSplit {
		return fmt.Errorf("core: key-aligned reduce emitted key %q routing to split %d, not its own split %d",
			key, s, e.ownSplit)
	}
	return e.writers[s].Emit(key, value)
}

// makeWriters creates the output bucket writers for a task.
func makeWriters(env *TaskEnv, op *Operation, taskIndex int) ([]*bucket.Writer, error) {
	writers := make([]*bucket.Writer, op.Splits)
	for s := range writers {
		w, err := env.Store.Create(BucketName(op.Dataset, taskIndex, s))
		if err != nil {
			return nil, err
		}
		writers[s] = w
	}
	return writers, nil
}

// closeWriters finalizes all writers, collecting descriptors.
func closeWriters(writers []*bucket.Writer) ([]bucket.Descriptor, error) {
	descs := make([]bucket.Descriptor, len(writers))
	for i, w := range writers {
		d, err := w.Close()
		if err != nil {
			return nil, err
		}
		descs[i] = d
	}
	return descs, nil
}

func execMapTask(env *TaskEnv, spec *TaskSpec) (*TaskResult, error) {
	op := spec.Op
	mapFn, err := env.Reg.Map(op.FuncName, op.Params)
	if err != nil {
		return nil, err
	}
	parter, err := partition.ByName(op.Partition)
	if err != nil {
		return nil, err
	}
	writers, err := makeWriters(env, op, spec.TaskIndex)
	if err != nil {
		return nil, err
	}

	if op.CombineName == "" {
		// Direct path: emitted records go straight to their bucket.
		emit := &partitionedEmitter{parter: parter, splits: op.Splits, writers: writers, ownSplit: -1}
		err = forEachInputRecord(env, spec, func(key, value []byte) error {
			return mapFn(key, value, emit)
		})
		if err != nil {
			return nil, fmt.Errorf("core: map task %d of ds%d: %w", spec.TaskIndex, op.Dataset, err)
		}
	} else {
		// Combining path: per-split sorters apply the combiner before
		// records are written (map-side combine).
		combineFn, cerr := env.Reg.Reduce(op.CombineName, op.Params)
		if cerr != nil {
			return nil, cerr
		}
		combine := CombineAdapter(combineFn)
		sorters := make([]*shuffle.Sorter, op.Splits)
		for s := range sorters {
			sorters[s] = shuffle.NewSorter(shuffle.Options{
				SpillBytes: env.spillBytes(),
				TempDir:    env.TempDir,
				Combine:    combine,
			})
			defer sorters[s].Close()
		}
		var serial int64
		emit := kvio.FuncEmitter(func(key, value []byte) error {
			s := parter(key, serial, op.Splits)
			serial++
			if s < 0 || s >= op.Splits {
				return fmt.Errorf("core: partitioner returned split %d of %d", s, op.Splits)
			}
			return sorters[s].Add(kvio.Pair{
				Key:   append([]byte(nil), key...),
				Value: append([]byte(nil), value...),
			})
		})
		err = forEachInputRecord(env, spec, func(key, value []byte) error {
			return mapFn(key, value, emit)
		})
		if err != nil {
			return nil, fmt.Errorf("core: map task %d of ds%d: %w", spec.TaskIndex, op.Dataset, err)
		}
		for s, sorter := range sorters {
			w := writers[s]
			err := sorter.Groups(func(key []byte, values [][]byte) error {
				for _, v := range values {
					if werr := w.Emit(key, v); werr != nil {
						return werr
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}

	outputs, err := closeWriters(writers)
	if err != nil {
		return nil, err
	}
	return &TaskResult{Dataset: op.Dataset, TaskIndex: spec.TaskIndex, Outputs: outputs}, nil
}

func execReduceTask(env *TaskEnv, spec *TaskSpec) (*TaskResult, error) {
	op := spec.Op
	reduceFn, err := env.Reg.Reduce(op.FuncName, op.Params)
	if err != nil {
		return nil, err
	}
	parter, err := partition.ByName(op.Partition)
	if err != nil {
		return nil, err
	}
	var combine shuffle.CombineFunc
	if op.CombineName != "" {
		combineFn, cerr := env.Reg.Reduce(op.CombineName, op.Params)
		if cerr != nil {
			return nil, cerr
		}
		combine = CombineAdapter(combineFn)
	}
	sorter := shuffle.NewSorter(shuffle.Options{
		SpillBytes: env.spillBytes(),
		TempDir:    env.TempDir,
		Combine:    combine,
	})
	defer sorter.Close()
	err = forEachInputRecord(env, spec, func(key, value []byte) error {
		return sorter.Add(kvio.Pair{
			Key:   append([]byte(nil), key...),
			Value: append([]byte(nil), value...),
		})
	})
	if err != nil {
		return nil, fmt.Errorf("core: reduce task %d of ds%d (input): %w", spec.TaskIndex, op.Dataset, err)
	}

	writers, err := makeWriters(env, op, spec.TaskIndex)
	if err != nil {
		return nil, err
	}
	ownSplit := -1
	if op.Narrow {
		ownSplit = spec.TaskIndex
	}
	emit := &partitionedEmitter{parter: parter, splits: op.Splits, writers: writers, ownSplit: ownSplit}
	err = sorter.Groups(func(key []byte, values [][]byte) error {
		return reduceFn(key, values, emit)
	})
	if err != nil {
		return nil, fmt.Errorf("core: reduce task %d of ds%d: %w", spec.TaskIndex, op.Dataset, err)
	}
	outputs, err := closeWriters(writers)
	if err != nil {
		return nil, err
	}
	return &TaskResult{Dataset: op.Dataset, TaskIndex: spec.TaskIndex, Outputs: outputs}, nil
}

// CombineAdapter turns a reduce function into a shuffle combiner. Per
// the combiner contract, emitted keys must equal the group key; only
// the values are retained.
func CombineAdapter(fn ReduceFunc) shuffle.CombineFunc {
	return func(key []byte, values [][]byte) ([][]byte, error) {
		var e kvio.SliceEmitter
		if err := fn(key, values, &e); err != nil {
			return nil, err
		}
		out := make([][]byte, len(e.Pairs))
		for i, p := range e.Pairs {
			if !bytes.Equal(p.Key, key) {
				return nil, fmt.Errorf("core: combiner changed key %q to %q", key, p.Key)
			}
			out[i] = p.Value
		}
		return out, nil
	}
}

// forEachInputRecord streams every record of the task's input split.
// The key/value slices passed to fn are not retained by the iterator.
func forEachInputRecord(env *TaskEnv, spec *TaskSpec, fn func(key, value []byte) error) error {
	for _, u := range spec.InputURLs {
		if spec.InputFormat == FormatLinesRange {
			// Ranged text inputs open their own file handle to seek.
			if err := forEachLineRange(u, fn); err != nil {
				return err
			}
			continue
		}
		rc, err := env.Store.Open(u)
		if err != nil {
			return fmt.Errorf("opening input %s: %w", u, err)
		}
		var ferr error
		switch spec.InputFormat {
		case "", FormatKV:
			ferr = forEachKVRecord(rc, fn)
		case FormatLines:
			ferr = forEachLine(rc, fn)
		default:
			ferr = fmt.Errorf("core: unknown input format %q", spec.InputFormat)
		}
		cerr := rc.Close()
		if ferr != nil {
			return ferr
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}

func forEachKVRecord(r io.Reader, fn func(key, value []byte) error) error {
	kr := kvio.NewReader(r)
	for {
		p, err := kr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(p.Key, p.Value); err != nil {
			return err
		}
	}
}

// forEachLine yields (varint line number, line) records; line numbers
// start at 1 and lines exclude the trailing newline (and any '\r').
func forEachLine(r io.Reader, fn func(key, value []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	lineNo := int64(0)
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if err := fn(codec.EncodeVarint(lineNo), line); err != nil {
			return err
		}
	}
	return sc.Err()
}
