package core

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"

	"repro/internal/bucket"
	"repro/internal/clock"
	"repro/internal/codec"
	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/shuffle"
)

// DefaultSpillBytes is the default reduce-side external-sort threshold.
const DefaultSpillBytes = 256 << 20

// TaskEnv carries the per-process resources a task needs. Both local
// executors and slave processes construct one.
type TaskEnv struct {
	// Store creates output buckets and resolves input URLs.
	Store *bucket.Store
	// Reg resolves function names.
	Reg *Registry
	// TempDir holds external-sort spill files ("" = os.TempDir()).
	TempDir string
	// SpillBytes overrides the external-sort threshold (0 = default).
	SpillBytes int64
	// Clock stamps task timings (nil = wall clock). Tests inject a fake
	// clock so trace output is deterministic.
	Clock clock.Clock
	// Obs receives task-engine counters (tasks executed, shuffle bytes
	// by data path). Nil disables metrics at zero cost.
	Obs *obs.Runtime
	// Prefetch is the input-fetch window: while bucket i is being
	// consumed, buckets i+1..i+Prefetch-1 are fetched concurrently.
	// 0 selects DefaultPrefetch; 1 disables overlap (sequential
	// streaming, the pre-prefetch behavior).
	Prefetch int
	// Resident is the worker-local resident dataset cache serving
	// Resident-marked input splits from memory (nil disables). Slaves
	// share one cache across all job environments; local executors own
	// one per process.
	Resident *ResidentCache
}

// DefaultPrefetch is the input-fetch window when TaskEnv.Prefetch is 0.
// Wide enough to hide one slow peer behind several fast ones, narrow
// enough that a reduce task buffers only a few map buckets.
const DefaultPrefetch = 4

func (env *TaskEnv) prefetchWidth() int {
	if env.Prefetch > 0 {
		return env.Prefetch
	}
	return DefaultPrefetch
}

func (env *TaskEnv) spillBytes() int64 {
	if env.SpillBytes > 0 {
		return env.SpillBytes
	}
	return DefaultSpillBytes
}

func (env *TaskEnv) clk() clock.Clock {
	if env.Clock != nil {
		return env.Clock
	}
	return clock.Real{}
}

// TaskSpec fully describes one task; it is what travels from the master
// to a slave.
type TaskSpec struct {
	// Op is the operation this task belongs to.
	Op *Operation
	// Job is the namespace the task runs in: its output buckets are
	// created under this job's prefix, and the distributed runtime uses
	// it for per-job scheduling, working dirs, and GC. 0 is the default
	// single-job namespace.
	Job JobID
	// TraceID identifies this task in the observability layer; it is
	// issued by the Job driver's tracer at submit time and travels with
	// the task (over RPC in the distributed runtime). 0 = untraced.
	TraceID int64
	// TaskIndex is the task's index within the operation (== the input
	// split it consumes).
	TaskIndex int
	// InputDataset is the id of the dataset the consumed split belongs
	// to (Op.Input as the driver saw it). It travels to slaves — which
	// otherwise never learn dataset identities — because it is one third
	// of the resident-cache key (job, input dataset, split).
	InputDataset int
	// InputURLs are the buckets making up the consumed split, in
	// producer-task order.
	InputURLs []string
	// InputFormat is the split's record format (FormatKV or FormatLines).
	InputFormat string
}

// TaskResult reports a finished task's output buckets, one per output
// split.
type TaskResult struct {
	Dataset   int
	TaskIndex int
	Outputs   []bucket.Descriptor
	// Timing is the attempt's measured cost breakdown, filled by
	// ExecTask on the process that ran the task.
	Timing obs.Timing
}

// ExecTask dispatches on the operation kind. On success the result
// carries a Timing breakdown: total wall time, time blocked reading
// input buckets (shuffle), and input/output byte and record counts.
func ExecTask(env *TaskEnv, spec *TaskSpec) (*TaskResult, error) {
	clk := env.clk()
	start := clk.Now()
	st := &inputStats{}
	var res *TaskResult
	var err error
	switch spec.Op.Kind {
	case OpMap:
		res, err = execMapTask(env, spec, st)
	case OpReduce:
		res, err = execReduceTask(env, spec, st)
	default:
		return nil, fmt.Errorf("core: cannot execute %s operation as a task", spec.Op.Kind)
	}
	env.Obs.M().Add("mrs_tasks_executed_total", 1)
	if err != nil {
		env.Obs.M().Add("mrs_task_errors_total", 1)
		return nil, err
	}
	res.Timing = obs.Timing{
		WallNS:         clk.Now().Sub(start).Nanoseconds(),
		ShuffleNS:      st.readNS,
		InBytes:        st.bytes,
		InRecords:      st.records,
		ResidentHits:   st.residentHits,
		ResidentMisses: st.residentMisses,
	}
	for _, d := range res.Outputs {
		res.Timing.OutBytes += d.Bytes
		res.Timing.OutRecords += d.Records
	}
	return res, nil
}

// inputStats accumulates what a task consumed: bytes and records read,
// the wall time spent blocked inside Read calls on input streams (the
// task's shuffle cost), and resident-cache lookup outcomes.
type inputStats struct {
	bytes   int64
	records int64
	readNS  int64
	// residentHits/residentMisses record the task's resident-cache
	// lookup (at most one per task; both zero off the resident path).
	residentHits   int64
	residentMisses int64
}

// timedReader wraps an input stream, charging each Read's wall time to
// st. Granularity is one Read call (typically a bufio fill, ~64 KiB),
// which keeps clock overhead negligible relative to the I/O being
// measured. count adds stream bytes to st.bytes as well; it is set for
// line-oriented formats, where the stream is the payload. KV formats
// count decoded key+value payload at the record layer instead, so the
// raw-byte stats stay framing- and codec-independent.
type timedReader struct {
	r     io.Reader
	clk   clock.Clock
	st    *inputStats
	count bool
}

func (t *timedReader) Read(p []byte) (int, error) {
	begin := t.clk.Now()
	n, err := t.r.Read(p)
	t.st.readNS += t.clk.Now().Sub(begin).Nanoseconds()
	if t.count {
		t.st.bytes += int64(n)
	}
	return n, err
}

// shuffleMetric classifies an input URL by data path: direct
// slave-to-slave HTTP, shared-directory files, or in-process memory
// buckets.
func shuffleMetric(u string) string {
	switch {
	case strings.HasPrefix(u, "http://"), strings.HasPrefix(u, "https://"):
		return "mrs_shuffle_bytes_direct_total"
	case strings.HasPrefix(u, "file://"):
		return "mrs_shuffle_bytes_shared_total"
	default:
		return "mrs_shuffle_bytes_local_total"
	}
}

// partitionedEmitter routes emitted records into per-split bucket writers.
type partitionedEmitter struct {
	parter  partition.Func
	splits  int
	serial  int64
	writers []*bucket.Writer
	// ownSplit, when >= 0, enforces the narrow-reduce alignment
	// promise: every emitted record must route to this split (the
	// task's own index). Downstream tasks may already be consuming the
	// task's split, so a violation must fail the task rather than
	// silently scatter records the scheduler assumed were aligned.
	ownSplit int
}

func (e *partitionedEmitter) Emit(key, value []byte) error {
	s := e.parter(key, e.serial, e.splits)
	e.serial++
	if s < 0 || s >= e.splits {
		return fmt.Errorf("core: partitioner returned split %d of %d", s, e.splits)
	}
	if e.ownSplit >= 0 && s != e.ownSplit {
		return fmt.Errorf("core: key-aligned reduce emitted key %q routing to split %d, not its own split %d",
			key, s, e.ownSplit)
	}
	return e.writers[s].Emit(key, value)
}

// makeWriters creates the output bucket writers for a task, in the
// task's job namespace.
func makeWriters(env *TaskEnv, spec *TaskSpec) ([]*bucket.Writer, error) {
	op := spec.Op
	writers := make([]*bucket.Writer, op.Splits)
	opts := bucket.CreateOpts{Codec: op.Codec, BlockEncoding: op.BlockEncoding}
	for s := range writers {
		w, err := env.Store.CreateOpts(BucketNameJob(spec.Job, op.Dataset, spec.TaskIndex, s), opts)
		if err != nil {
			return nil, err
		}
		writers[s] = w
	}
	return writers, nil
}

// closeWriters finalizes all writers, collecting descriptors.
func closeWriters(writers []*bucket.Writer) ([]bucket.Descriptor, error) {
	descs := make([]bucket.Descriptor, len(writers))
	for i, w := range writers {
		d, err := w.Close()
		if err != nil {
			return nil, err
		}
		descs[i] = d
	}
	return descs, nil
}

func execMapTask(env *TaskEnv, spec *TaskSpec, st *inputStats) (*TaskResult, error) {
	op := spec.Op
	mapFn, err := env.Reg.Map(op.FuncName, op.Params)
	if err != nil {
		return nil, err
	}
	parter, err := partition.ByName(op.Partition)
	if err != nil {
		return nil, err
	}
	writers, err := makeWriters(env, spec)
	if err != nil {
		return nil, err
	}

	if op.CombineName == "" {
		// Direct path: emitted records go straight to their bucket.
		emit := &partitionedEmitter{parter: parter, splits: op.Splits, writers: writers, ownSplit: -1}
		err = forEachInputRecord(env, spec, st, func(key, value []byte) error {
			return mapFn(key, value, emit)
		})
		if err != nil {
			return nil, fmt.Errorf("core: map task %d of ds%d: %w", spec.TaskIndex, op.Dataset, err)
		}
	} else {
		// Combining path: per-split sorters apply the combiner before
		// records are written (map-side combine).
		combineFn, cerr := env.Reg.Reduce(op.CombineName, op.Params)
		if cerr != nil {
			return nil, cerr
		}
		combine := CombineAdapter(combineFn)
		sorters := make([]*shuffle.Sorter, op.Splits)
		for s := range sorters {
			sorters[s] = shuffle.NewSorter(shuffle.Options{
				SpillBytes: env.spillBytes(),
				TempDir:    env.TempDir,
				Combine:    combine,
			})
			defer sorters[s].Close()
		}
		var serial int64
		emit := kvio.FuncEmitter(func(key, value []byte) error {
			s := parter(key, serial, op.Splits)
			serial++
			if s < 0 || s >= op.Splits {
				return fmt.Errorf("core: partitioner returned split %d of %d", s, op.Splits)
			}
			// Add copies into the sorter's arena; no caller-side clone.
			return sorters[s].Add(kvio.Pair{Key: key, Value: value})
		})
		err = forEachInputRecord(env, spec, st, func(key, value []byte) error {
			return mapFn(key, value, emit)
		})
		if err != nil {
			return nil, fmt.Errorf("core: map task %d of ds%d: %w", spec.TaskIndex, op.Dataset, err)
		}
		for s, sorter := range sorters {
			w := writers[s]
			err := sorter.Groups(func(key []byte, values [][]byte) error {
				for _, v := range values {
					if werr := w.Emit(key, v); werr != nil {
						return werr
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}

	outputs, err := closeWriters(writers)
	if err != nil {
		return nil, err
	}
	return &TaskResult{Dataset: op.Dataset, TaskIndex: spec.TaskIndex, Outputs: outputs}, nil
}

func execReduceTask(env *TaskEnv, spec *TaskSpec, st *inputStats) (*TaskResult, error) {
	op := spec.Op
	reduceFn, err := env.Reg.Reduce(op.FuncName, op.Params)
	if err != nil {
		return nil, err
	}
	parter, err := partition.ByName(op.Partition)
	if err != nil {
		return nil, err
	}
	var combine shuffle.CombineFunc
	if op.CombineName != "" {
		combineFn, cerr := env.Reg.Reduce(op.CombineName, op.Params)
		if cerr != nil {
			return nil, cerr
		}
		combine = CombineAdapter(combineFn)
	}
	sorter := shuffle.NewSorter(shuffle.Options{
		SpillBytes: env.spillBytes(),
		TempDir:    env.TempDir,
		Combine:    combine,
	})
	defer sorter.Close()
	// Legacy-framed inputs: Add copies into the sorter's arena, so the
	// iterator's shared buffers can be handed over directly.
	// Block-framed inputs: the whole decoded block is adopted by the
	// sorter and records alias into it — one decode, zero copies.
	err = forEachInput(env, spec, st, recordSink{
		fn: func(key, value []byte) error {
			return sorter.Add(kvio.Pair{Key: key, Value: value})
		},
		block: sorter.AddBlock,
		col:   sorter.AddColumnar,
	})
	if err != nil {
		return nil, fmt.Errorf("core: reduce task %d of ds%d (input): %w", spec.TaskIndex, op.Dataset, err)
	}

	writers, err := makeWriters(env, spec)
	if err != nil {
		return nil, err
	}
	ownSplit := -1
	if op.Narrow {
		ownSplit = spec.TaskIndex
	}
	emit := &partitionedEmitter{parter: parter, splits: op.Splits, writers: writers, ownSplit: ownSplit}
	err = sorter.Groups(func(key []byte, values [][]byte) error {
		return reduceFn(key, values, emit)
	})
	if err != nil {
		return nil, fmt.Errorf("core: reduce task %d of ds%d: %w", spec.TaskIndex, op.Dataset, err)
	}
	outputs, err := closeWriters(writers)
	if err != nil {
		return nil, err
	}
	return &TaskResult{Dataset: op.Dataset, TaskIndex: spec.TaskIndex, Outputs: outputs}, nil
}

// CombineAdapter turns a reduce function into a shuffle combiner. Per
// the combiner contract, emitted keys must equal the group key; only
// the values are retained.
func CombineAdapter(fn ReduceFunc) shuffle.CombineFunc {
	return func(key []byte, values [][]byte) ([][]byte, error) {
		var e kvio.SliceEmitter
		if err := fn(key, values, &e); err != nil {
			return nil, err
		}
		out := make([][]byte, len(e.Pairs))
		for i, p := range e.Pairs {
			if !bytes.Equal(p.Key, key) {
				return nil, fmt.Errorf("core: combiner changed key %q to %q", key, p.Key)
			}
			out[i] = p.Value
		}
		return out, nil
	}
}

// forEachInputRecord streams every record of the task's input split,
// accounting records, bytes, and read-blocked time into st. The
// key/value slices passed to fn are only valid during the call; fn must
// not retain them.
//
// When the fetch window is wider than 1 and the split spans several
// buckets, upcoming buckets are fetched concurrently while the current
// one is consumed. Delivery stays strictly in URL order — parallelism
// changes only *when* bytes move, never the record sequence fn sees —
// so serial, threaded, and distributed runs remain byte-identical, and
// the narrow-reduce alignment checks are untouched.
func forEachInputRecord(env *TaskEnv, spec *TaskSpec, st *inputStats, fn func(key, value []byte) error) error {
	return forEachInput(env, spec, st, recordSink{fn: fn})
}

// recordSink is how a task consumes one input stream. fn receives every
// record, with the usual shared-buffer lifetime. block, when non-nil
// and the stream arrives block-framed, receives whole decoded record
// blocks instead — ownership of the buffer transfers to the sink
// (kvio.BlockReader.NextBlock's contract) and it returns the summed
// key+value payload bytes it consumed. That is the zero-copy handoff
// into the shuffle sorter; streams in any other framing fall back to
// fn, so a sink always sees every record exactly once either way.
// col, when non-nil, receives whole columnar blocks (ownership
// transfers, same as block); without it columnar frames are flattened
// into row form and delivered through block or fn.
type recordSink struct {
	fn    func(key, value []byte) error
	block func(block []byte, recs int) (int64, error)
	col   func(cb *kvio.ColumnarBlock) (int64, error)
}

// forEachInput streams every input split of the task into sink,
// accounting records, payload bytes, and read-blocked time into st.
func forEachInput(env *TaskEnv, spec *TaskSpec, st *inputStats, sink recordSink) error {
	// KV streams count decoded key+value payload here at the record
	// layer — identical across legacy framing, block framing, and every
	// codec — while line formats count stream bytes in the timedReader.
	countPayload := spec.InputFormat == "" || spec.InputFormat == FormatKV
	inner := sink
	sink.fn = func(key, value []byte) error {
		st.records++
		if countPayload {
			st.bytes += int64(len(key) + len(value))
		}
		return inner.fn(key, value)
	}
	if inner.block != nil {
		sink.block = func(block []byte, recs int) (int64, error) {
			n, err := inner.block(block, recs)
			st.records += int64(recs)
			if countPayload {
				st.bytes += n
			}
			return n, err
		}
	}
	if inner.col != nil {
		sink.col = func(cb *kvio.ColumnarBlock) (int64, error) {
			recs := cb.Len()
			n, err := inner.col(cb)
			st.records += int64(recs)
			if countPayload {
				st.bytes += n
			}
			return n, err
		}
	}
	clk := env.clk()
	if spec.Op.Resident && env.Resident != nil && spec.InputFormat != FormatLinesRange {
		return forEachInputResident(env, spec, st, sink, countPayload)
	}
	if w := env.prefetchWidth(); w > 1 && len(spec.InputURLs) > 1 && spec.InputFormat != FormatLinesRange {
		return forEachInputPrefetched(env, spec, st, sink, w, countPayload)
	}
	for _, u := range spec.InputURLs {
		if spec.InputFormat == FormatLinesRange {
			// Ranged text inputs open their own file handle to seek;
			// their bytes are charged to compute, not shuffle.
			if err := forEachLineRange(u, sink.fn); err != nil {
				return err
			}
			continue
		}
		// The Open itself blocks on the remote request round trip, so it
		// is shuffle wait just like the Reads that follow (and just like
		// the prefetched path, which charges whole-fetch waits).
		begin := clk.Now()
		rc, err := env.Store.Open(u)
		st.readNS += clk.Now().Sub(begin).Nanoseconds()
		if err != nil {
			return fmt.Errorf("opening input %s: %w", u, err)
		}
		before := st.bytes
		tr := &timedReader{r: rc, clk: clk, st: st, count: !countPayload}
		ferr := consumeStream(tr, spec.InputFormat, sink)
		cerr := rc.Close()
		env.Obs.M().Add(shuffleMetric(u), st.bytes-before)
		if ferr != nil {
			return ferr
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}

// fetched is one prefetched bucket payload (decoded record-stream
// bytes) or the error that fetching it produced.
type fetched struct {
	data []byte
	err  error
}

// forEachInputPrefetched is the parallel-fetch path: a window of
// width whole-bucket fetches is kept in flight, each delivering into
// its own single-slot channel so results arrive in URL order. The time
// spent waiting for bucket i (its fetch not yet complete) is charged to
// st.readNS — the same "blocked on input" semantics the streaming path
// measures — while the raw byte and per-path metrics accounting is
// unchanged. Each fetch runs through Store.Fetch, so per-fetch retries
// and fault-injection hooks apply exactly as they do when streaming;
// a fetch that dies mid-body is retried whole rather than surfacing a
// truncated stream.
func forEachInputPrefetched(env *TaskEnv, spec *TaskSpec, st *inputStats, sink recordSink, width int, countPayload bool) error {
	clk := env.clk()
	urls := spec.InputURLs
	results := make([]chan fetched, len(urls))
	launch := func(i int) {
		// Buffered: if the consumer aborts early, in-flight fetches park
		// their result and exit instead of leaking.
		ch := make(chan fetched, 1)
		results[i] = ch
		u := urls[i]
		go func() {
			data, err := env.Store.Fetch(u)
			ch <- fetched{data: data, err: err}
		}()
	}
	for i := 0; i < width && i < len(urls); i++ {
		launch(i)
	}
	for i, u := range urls {
		begin := clk.Now()
		res := <-results[i]
		st.readNS += clk.Now().Sub(begin).Nanoseconds()
		results[i] = nil // the payload is released as soon as it is consumed
		if next := i + width; next < len(urls) {
			launch(next)
		}
		if res.err != nil {
			return fmt.Errorf("opening input %s: %w", u, res.err)
		}
		before := st.bytes
		// The timedReader keeps accounting identical to the streaming
		// path; reads from memory add ~nothing to readNS.
		tr := &timedReader{r: bytes.NewReader(res.data), clk: clk, st: st, count: !countPayload}
		ferr := consumeStream(tr, spec.InputFormat, sink)
		env.Obs.M().Add(shuffleMetric(u), st.bytes-before)
		if ferr != nil {
			return ferr
		}
	}
	return nil
}

// forEachInputResident serves a Resident-marked input split through the
// worker-local cache. A hit replays the previously fetched bucket
// payloads from memory — no store traffic, near-zero shuffle wait, and
// the identical byte stream the fetch produced, so record order and
// results cannot differ from a cold read. A miss runs the same windowed
// whole-bucket fetch as the prefetched path, retains the payloads, and
// inserts them after the task consumed every bucket successfully (a
// failed task caches nothing). The cache key is (job, input dataset,
// split); the fetch plan (URL list) is stored alongside and must match
// exactly on lookup, so a changed plan — re-executed producers after a
// slave loss, say — invalidates rather than serves stale bytes.
func forEachInputResident(env *TaskEnv, spec *TaskSpec, st *inputStats, sink recordSink, countPayload bool) error {
	clk := env.clk()
	urls := spec.InputURLs
	key := ResidentKey{Job: spec.Job, Dataset: spec.InputDataset, Split: spec.TaskIndex}
	if payloads, ok := env.Resident.Get(key, urls); ok {
		st.residentHits++
		env.Obs.M().Add(obs.MetricResidentHits, 1)
		for _, data := range payloads {
			tr := &timedReader{r: bytes.NewReader(data), clk: clk, st: st, count: !countPayload}
			if err := consumeStream(tr, spec.InputFormat, sink); err != nil {
				return err
			}
		}
		return nil
	}
	st.residentMisses++
	env.Obs.M().Add(obs.MetricResidentMisses, 1)
	width := env.prefetchWidth()
	results := make([]chan fetched, len(urls))
	launch := func(i int) {
		ch := make(chan fetched, 1)
		results[i] = ch
		u := urls[i]
		go func() {
			data, err := env.Store.Fetch(u)
			ch <- fetched{data: data, err: err}
		}()
	}
	for i := 0; i < width && i < len(urls); i++ {
		launch(i)
	}
	retained := make([][]byte, 0, len(urls))
	for i, u := range urls {
		begin := clk.Now()
		res := <-results[i]
		st.readNS += clk.Now().Sub(begin).Nanoseconds()
		results[i] = nil
		if next := i + width; next < len(urls) {
			launch(next)
		}
		if res.err != nil {
			return fmt.Errorf("opening input %s: %w", u, res.err)
		}
		retained = append(retained, res.data)
		before := st.bytes
		tr := &timedReader{r: bytes.NewReader(res.data), clk: clk, st: st, count: !countPayload}
		ferr := consumeStream(tr, spec.InputFormat, sink)
		env.Obs.M().Add(shuffleMetric(u), st.bytes-before)
		if ferr != nil {
			return ferr
		}
	}
	env.Resident.Put(key, urls, retained)
	return nil
}

// consumeStream dispatches one bucket stream to the format's iterator.
func consumeStream(r io.Reader, format string, sink recordSink) error {
	switch format {
	case "", FormatKV:
		return consumeKVStream(r, sink)
	case FormatLines:
		return forEachLine(r, sink.fn)
	default:
		return fmt.Errorf("core: unknown input format %q", format)
	}
}

// consumeKVStream reads a KV bucket stream in either framing — the
// sniffing reader accepts legacy per-record streams and block streams
// alike, so mixed-version inputs within one task are fine. When the
// stream is block-framed and the sink takes blocks, whole decoded
// blocks are handed over without touching individual records.
func consumeKVStream(r io.Reader, sink recordSink) error {
	kr := kvio.NewAnyReader(r)
	defer kr.Release()
	if br, ok := kr.(*kvio.BlockReader); ok && sink.block != nil {
		for {
			blk, cb, recs, err := br.NextAny()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if cb != nil {
				if sink.col != nil {
					if _, err := sink.col(cb); err != nil {
						return err
					}
					continue
				}
				// No columnar sink: flatten to row form. The sink adopts
				// the buffer, so each block gets a fresh one.
				blk = cb.AppendRows(nil)
			}
			if _, err := sink.block(blk, recs); err != nil {
				return err
			}
		}
	}
	for {
		// Records go through the reader's shared buffer: the sink does
		// not retain its arguments, and this halves per-record
		// allocations.
		p, err := kr.ReadShared()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := sink.fn(p.Key, p.Value); err != nil {
			return err
		}
	}
}

// forEachLine yields (varint line number, line) records; line numbers
// start at 1 and lines exclude the trailing newline (and any '\r').
func forEachLine(r io.Reader, fn func(key, value []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	lineNo := int64(0)
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if err := fn(codec.EncodeVarint(lineNo), line); err != nil {
			return err
		}
	}
	return sc.Err()
}
