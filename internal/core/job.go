package core

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bucket"
	"repro/internal/clock"
	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/partition"
)

// Executor runs tasks. Implementations: Serial, MockParallel, Threads
// (this package, all sharing one async worker-pool runner) and the
// distributed master (internal/master).
//
// The contract is asynchronous: Submit hands one task to the executor
// and returns immediately; done is invoked exactly once, from some
// other goroutine, never synchronously from inside Submit. That lets
// the Job submit follow-on tasks from inside completion callbacks
// while holding its own lock without deadlocking.
type Executor interface {
	// Submit schedules one task for execution. done receives the task's
	// result or error (after the executor's own retry policy, if any,
	// is exhausted).
	Submit(spec *TaskSpec, done func(*TaskResult, error))
	// Store is the executor's local bucket store; the driver uses it to
	// materialize source data and to fetch results for Collect.
	Store() *bucket.Store
	// Free releases a dataset's storage, best effort.
	Free(m *Materialized)
	// Close releases executor resources.
	Close() error
}

// JobID identifies a job within a shared runtime. ID 0 is the default
// job of a directly-constructed driver (serial, mock, threads, or a
// bare master executor) and keeps all legacy naming; managed jobs
// submitted through a JobManager get positive IDs, which namespace
// their buckets, scheduler state, metrics, and trace timelines.
type JobID int64

// JobOptions tunes the Job driver.
type JobOptions struct {
	// Pipeline enables the split-level pipelined DAG runner: every
	// queued operation is scheduled immediately, a task starts as soon
	// as its input split is ready, and narrow (key-aligned) reduces
	// release their splits one task at a time so iteration i+1 can
	// overlap iteration i's stragglers. When false the driver falls
	// back to the barriered behaviour — strict queue order, one
	// operation materialized fully before the next starts — kept as an
	// ablation (BenchmarkPipelineAblation).
	Pipeline bool
	// Obs wires the driver into an observability runtime: task submit
	// events go to its tracer (issuing the trace IDs that travel with
	// tasks) and driver counters to its metrics. Nil disables both.
	Obs *obs.Runtime
	// Clock stamps driver-side timings (nil = Obs's clock, or the wall
	// clock).
	Clock clock.Clock
	// ID is the job's identity in a multi-tenant runtime. The zero value
	// is the default single-job namespace; a JobManager assigns positive
	// IDs so concurrent jobs keep their buckets, scheduling state, and
	// observability apart.
	ID JobID
}

// Job is the handle a Program's Run method uses to queue operations.
// Queueing methods never block on execution: the Job is a DAG
// scheduler that submits every runnable task to the executor the
// moment its input split is ready, and builds each dataset's
// Materialized incrementally as per-task completion events land.
// Wait/Collect/Stats resolve as soon as their own dataset completes,
// not when the whole queue prefix does — which is what lets iterative
// programs overlap convergence checks with subsequent iterations
// (§IV/§V-B of the Mrs paper).
type Job struct {
	exec     Executor
	pipeline bool
	obs      *obs.Runtime
	clk      clock.Clock
	id       JobID

	mu     sync.Mutex
	cond   *sync.Cond
	states []*dsState
	err    error
	closed bool
}

// dsState is the scheduler's view of one queued dataset.
type dsState struct {
	op     *Operation
	splits int // output split count (== op.Splits)
	nTasks int // tasks to run (== input split count; 0 for sources)
	// narrow marks a key-aligned reduce whose output split s depends
	// only on its own task s (see Operation.KeyAligned).
	narrow bool

	out       *Materialized
	submitted []bool
	taskDone  []bool
	ndone     int

	started  bool // a task was submitted or the source materialized
	complete bool
	failed   bool
	err      error
	done     chan struct{} // closed when complete (success or failure)

	// Deferred Free bookkeeping: Free records intent; storage is
	// released once the dataset and every consumer queued so far have
	// completed.
	freeWanted     bool
	freed          bool
	nConsumers     int
	nConsumersDone int

	// Per-task submit times and completed-task cost aggregates feeding
	// Job.Stats.
	submitAt []time.Time
	agg      opAgg

	// urlMemo caches per-split input URL lists once this dataset has
	// fully materialized — the BSP superstep fast path. An iterative
	// program consumes the same invariant dataset every iteration; the
	// first consumer plans the fetch (walks the materialization), later
	// iterations reuse the pinned plan verbatim.
	urlMemo [][]string
}

// opAgg accumulates the cost breakdown of one operation's finished
// tasks (successful attempts only).
type opAgg struct {
	tasks      int64
	wallNS     int64 // elapsed submit → done, includes queueing/retries
	execNS     int64 // executing-attempt wall time (Timing.WallNS)
	shuffleNS  int64
	inBytes    int64
	inRecords  int64
	outBytes   int64
	outRecords int64
	// Resident-cache lookup outcomes across the op's tasks.
	residentHits   int64
	residentMisses int64
}

// NewJob starts a pipelined job driver over the executor.
func NewJob(exec Executor) *Job {
	return NewJobWith(exec, JobOptions{Pipeline: true})
}

// NewJobWith starts a job driver with explicit options.
func NewJobWith(exec Executor, opts JobOptions) *Job {
	clk := opts.Clock
	if clk == nil {
		clk = opts.Obs.Clk()
	}
	j := &Job{exec: exec, pipeline: opts.Pipeline, obs: opts.Obs, clk: clk, id: opts.ID}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// ID returns the job's identity (0 for the default single-job driver).
func (j *Job) ID() JobID { return j.id }

// Pipelined reports whether split-level pipelining is enabled.
func (j *Job) Pipelined() bool { return j.pipeline }

// enqueue registers an operation and immediately schedules whatever is
// runnable. The pending set is the states slice itself — unbounded, so
// iterative programs can queue arbitrarily many operations ahead
// without deadlocking the driver.
func (j *Job) enqueue(op *Operation, splits int) (*Dataset, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, fmt.Errorf("core: job is closed")
	}
	op.Dataset = len(j.states)
	if err := op.Validate(); err != nil {
		return nil, err
	}
	st := &dsState{op: op, splits: op.Splits, done: make(chan struct{})}
	if op.Input >= 0 {
		if op.Input >= len(j.states) {
			return nil, fmt.Errorf("core: op %d: unknown input dataset %d", op.Dataset, op.Input)
		}
		in := j.states[op.Input]
		in.nConsumers++
		st.nTasks = in.splits
		st.narrow = narrowReduce(op, in)
		op.Narrow = st.narrow
		st.submitted = make([]bool, st.nTasks)
		st.taskDone = make([]bool, st.nTasks)
		st.submitAt = make([]time.Time, st.nTasks)
		st.out = NewMaterialized(op.Splits, FormatKV)
	}
	j.states = append(j.states, st)
	j.scheduleLocked()
	return &Dataset{job: j, id: op.Dataset, splits: splits}, nil
}

// narrowReduce decides whether op is a narrow (split-aligned) reduce
// over its input: the program promised key-preserving output
// (KeyAligned), producer and consumer share a key-pure partitioner and
// a split count, and the input is in KV format. Then every key of
// input split s re-partitions back to output split s, so split s is
// complete the moment task s finishes — the other tasks' buckets for s
// are provably empty.
func narrowReduce(op *Operation, in *dsState) bool {
	if op.Kind != OpReduce || !op.KeyAligned {
		return false
	}
	switch in.op.Kind {
	case OpMap, OpReduce, OpLocal:
	default:
		return false
	}
	if op.Splits != in.splits {
		return false
	}
	if !partition.KeyPure(op.Partition) || !partition.KeyPure(in.op.Partition) {
		return false
	}
	return normPartName(op.Partition) == normPartName(in.op.Partition)
}

func normPartName(name string) string {
	if name == "" {
		return "hash"
	}
	return name
}

// scheduleLocked submits every task whose input split is ready. It is
// re-run after each enqueue and each task completion; it must be called
// with j.mu held.
func (j *Job) scheduleLocked() {
	for id := 0; id < len(j.states); id++ {
		d := j.states[id]
		if d.complete {
			continue
		}
		if j.err != nil && !d.started {
			j.failLocked(d, fmt.Errorf("core: dataset %d skipped: upstream failure", id))
			continue
		}
		if !j.pipeline && id > 0 && !j.states[id-1].complete {
			// Barriered ablation: strict queue order, one operation at
			// a time to full materialization.
			break
		}
		if d.op.Input < 0 {
			if !d.started {
				j.runSourceLocked(d)
			}
			continue
		}
		in := j.states[d.op.Input]
		if in.failed {
			j.failLocked(d, fmt.Errorf("core: dataset %d skipped: upstream failure", id))
			continue
		}
		for t := 0; t < d.nTasks; t++ {
			if d.submitted[t] || !j.inputReadyLocked(in, t) {
				continue
			}
			d.submitted[t] = true
			d.started = true
			d.submitAt[t] = j.clk.Now()
			spec := &TaskSpec{
				Op:           d.op,
				Job:          j.id,
				TaskIndex:    t,
				InputDataset: d.op.Input,
				InputURLs:    j.inputURLsLocked(in, t),
				InputFormat:  in.out.Format,
			}
			spec.TraceID = j.obs.T().TaskSubmittedJob(int64(j.id), d.op.Dataset, t, d.op.Kind.String(), d.op.FuncName)
			j.obs.M().Add("mrs_tasks_submitted_total", 1)
			dd, tt := d, t
			j.exec.Submit(spec, func(res *TaskResult, err error) {
				j.taskFinished(dd, tt, res, err)
			})
		}
	}
}

// inputURLsLocked returns the bucket URLs making up input split t. Once
// the input dataset has fully materialized its fetch plan is frozen, so
// the per-split URL list is computed once and pinned on the dataset —
// iteration i+1's tasks (and any other later consumer) reuse iteration
// i's plan instead of re-walking the materialization per task. Until
// then (narrow pipelined consumption of an in-flight producer) the plan
// is built fresh, since remaining buckets are still landing.
func (j *Job) inputURLsLocked(in *dsState, t int) []string {
	if !in.complete || in.failed {
		return in.out.URLs(t)
	}
	if in.urlMemo == nil {
		in.urlMemo = make([][]string, in.splits)
	}
	if t >= len(in.urlMemo) {
		return in.out.URLs(t)
	}
	if in.urlMemo[t] == nil {
		in.urlMemo[t] = in.out.URLs(t)
	} else {
		j.obs.M().Add(obs.MetricPlanReuse, 1)
	}
	return in.urlMemo[t]
}

// inputReadyLocked reports whether split t of the input dataset is
// ready to be consumed: the whole dataset completed, or — pipelined,
// narrow producers only — its own task t did.
func (j *Job) inputReadyLocked(in *dsState, t int) bool {
	if in.complete && !in.failed {
		return true
	}
	if !j.pipeline {
		return false
	}
	return in.narrow && t < len(in.taskDone) && in.taskDone[t]
}

// runSourceLocked materializes a source operation driver-side.
func (j *Job) runSourceLocked(d *dsState) {
	d.started = true
	var m *Materialized
	var err error
	switch {
	case d.op.Kind == OpLocal:
		m, err = MaterializeLocal(j.exec.Store(), d.op, j.id)
	case d.op.rangeFormat:
		m, err = materializeRangedFiles(d.op)
	default:
		m, err = MaterializeFiles(d.op)
	}
	if err != nil {
		j.failLocked(d, err)
		return
	}
	d.out = m
	j.completeLocked(d)
}

// taskFinished is the executor's completion callback for one task.
func (j *Job) taskFinished(d *dsState, t int, res *TaskResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case d.complete:
		// Late result after the dataset already failed; drop it.
	case err != nil:
		j.failLocked(d, err)
	case res == nil || len(res.Outputs) != d.splits:
		n := 0
		if res != nil {
			n = len(res.Outputs)
		}
		j.failLocked(d, fmt.Errorf("core: op %d task %d returned %d outputs, want %d",
			d.op.Dataset, t, n, d.splits))
	case !d.taskDone[t]:
		for s, desc := range res.Outputs {
			if err := d.out.SetTaskBucket(t, s, desc); err != nil {
				j.failLocked(d, err)
				return
			}
		}
		d.taskDone[t] = true
		d.ndone++
		elapsed := j.clk.Now().Sub(d.submitAt[t]).Nanoseconds()
		if elapsed < res.Timing.WallNS {
			elapsed = res.Timing.WallNS
		}
		d.agg.tasks++
		d.agg.wallNS += elapsed
		d.agg.execNS += res.Timing.WallNS
		d.agg.shuffleNS += res.Timing.ShuffleNS
		d.agg.inBytes += res.Timing.InBytes
		d.agg.inRecords += res.Timing.InRecords
		d.agg.outBytes += res.Timing.OutBytes
		d.agg.outRecords += res.Timing.OutRecords
		d.agg.residentHits += res.Timing.ResidentHits
		d.agg.residentMisses += res.Timing.ResidentMisses
		if d.ndone == d.nTasks {
			j.completeLocked(d)
		}
	}
	j.scheduleLocked()
}

// completeLocked marks a dataset finished (success or failure), wakes
// waiters, and advances deferred-free bookkeeping.
func (j *Job) completeLocked(d *dsState) {
	if d.complete {
		return
	}
	d.complete = true
	close(d.done)
	j.cond.Broadcast()
	if d.op.Input >= 0 {
		in := j.states[d.op.Input]
		in.nConsumersDone++
		j.maybeFreeLocked(in)
	}
	j.maybeFreeLocked(d)
}

func (j *Job) failLocked(d *dsState, err error) {
	if d.complete {
		return
	}
	d.failed = true
	d.err = err
	if j.err == nil {
		j.err = err
	}
	j.completeLocked(d)
}

// maybeFreeLocked releases a dataset's storage once Free was requested,
// the dataset completed, and every consumer queued so far completed.
func (j *Job) maybeFreeLocked(st *dsState) {
	if !st.freeWanted || st.freed || !st.complete || st.failed || st.out == nil {
		return
	}
	if st.nConsumersDone < st.nConsumers {
		return
	}
	st.freed = true
	j.exec.Free(st.out)
}

// Close blocks until every queued operation has completed (in-flight
// work is never abandoned) and reports the first execution error.
func (j *Job) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	for !j.allCompleteLocked() {
		j.cond.Wait()
	}
	j.mu.Unlock()
	return j.Err()
}

func (j *Job) allCompleteLocked() bool {
	for _, d := range j.states {
		if !d.complete {
			return false
		}
	}
	return true
}

// Err returns the first execution error, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// OpOpts tunes a queued operation. The zero value picks reasonable
// defaults, matching the paper's "reasonable but overridable defaults".
type OpOpts struct {
	// Splits is the number of output splits (default: same as input;
	// for sources, 1).
	Splits int
	// Partition names the output partitioner (default "hash").
	Partition string
	// Combine names a registered reduce function used as a combiner.
	Combine string
	// Params is opaque per-operation state delivered to map/reduce
	// factories on every executing process (broadcast variables).
	Params []byte
	// KeyAligned promises (reduces only) that the function emits only
	// keys from its own input group. When the structural conditions
	// also hold (shared key-pure partitioner, equal split count) the
	// scheduler runs the reduce "narrow": each output split is released
	// downstream as soon as its own task finishes, instead of after the
	// whole shuffle barrier. The promise is enforced — a task that
	// emits a foreign key fails rather than corrupting downstream
	// reads.
	KeyAligned bool
	// Resident marks the operation's input as an invariant dataset to
	// pin in worker-local memory (see Operation.Resident): the first
	// consumption of each split populates a per-worker cache, and every
	// later Resident consumer of the same split — the same map re-queued
	// by the next iteration of an iterative program, or an overlapped
	// convergence check — is served from warm local state instead of
	// re-shuffling. Purely a placement/data-movement hint; results are
	// byte-identical with or without it.
	Resident bool
	// Codec pins this operation's output-bucket wire codec by name,
	// overriding the executor-wide setting (see Operation.Codec).
	Codec string
	// BlockEncoding pins this operation's output block encoding (see
	// Operation.BlockEncoding).
	BlockEncoding string
}

func (o OpOpts) splitsOr(def int) int {
	if o.Splits > 0 {
		return o.Splits
	}
	return def
}

// LocalData queues literal pairs as a source dataset.
func (j *Job) LocalData(pairs []kvio.Pair, opts OpOpts) (*Dataset, error) {
	splits := opts.splitsOr(1)
	cp := make([]kvio.Pair, len(pairs))
	for i, p := range pairs {
		cp[i] = p.Clone()
	}
	return j.enqueue(&Operation{
		Kind:       OpLocal,
		Input:      -1,
		Splits:     splits,
		Partition:  opts.Partition,
		LocalPairs: cp,
	}, splits)
}

// TextFileData queues text files as a source dataset, one split per
// file; records are (line number, line).
func (j *Job) TextFileData(paths []string) (*Dataset, error) {
	return j.enqueue(&Operation{
		Kind:   OpFile,
		Input:  -1,
		Splits: len(paths),
		Paths:  append([]string(nil), paths...),
	}, len(paths))
}

// Map queues a map operation over src.
func (j *Job) Map(src *Dataset, funcName string, opts OpOpts) (*Dataset, error) {
	splits := opts.splitsOr(src.splits)
	return j.enqueue(&Operation{
		Kind:          OpMap,
		Input:         src.id,
		FuncName:      funcName,
		CombineName:   opts.Combine,
		Splits:        splits,
		Partition:     opts.Partition,
		Params:        append([]byte(nil), opts.Params...),
		Resident:      opts.Resident,
		Codec:         opts.Codec,
		BlockEncoding: opts.BlockEncoding,
	}, splits)
}

// Reduce queues a reduce operation over src. src must be partitioned by
// key (i.e. be the output of a map or reduce with a key-based
// partitioner) for reduce semantics to hold globally.
func (j *Job) Reduce(src *Dataset, funcName string, opts OpOpts) (*Dataset, error) {
	splits := opts.splitsOr(src.splits)
	return j.enqueue(&Operation{
		Kind:          OpReduce,
		Input:         src.id,
		FuncName:      funcName,
		CombineName:   opts.Combine,
		Splits:        splits,
		Partition:     opts.Partition,
		Params:        append([]byte(nil), opts.Params...),
		KeyAligned:    opts.KeyAligned,
		Resident:      opts.Resident,
		Codec:         opts.Codec,
		BlockEncoding: opts.BlockEncoding,
	}, splits)
}

// MapReduce queues a map followed by a reduce; mapOpts.Splits sets the
// number of reduce tasks.
func (j *Job) MapReduce(src *Dataset, mapName, reduceName string, mapOpts, reduceOpts OpOpts) (*Dataset, error) {
	mid, err := j.Map(src, mapName, mapOpts)
	if err != nil {
		return nil, err
	}
	return j.Reduce(mid, reduceName, reduceOpts)
}

// wait blocks until dataset id completes; returns the materialization.
func (j *Job) wait(id int) (*Materialized, error) {
	j.mu.Lock()
	if id < 0 || id >= len(j.states) {
		j.mu.Unlock()
		return nil, fmt.Errorf("core: unknown dataset %d", id)
	}
	st := j.states[id]
	ch := st.done
	j.mu.Unlock()
	<-ch
	j.mu.Lock()
	defer j.mu.Unlock()
	if st.failed {
		if st.err != nil {
			return nil, st.err
		}
		return nil, j.err
	}
	return st.out, nil
}

// Dataset is a handle to a queued (possibly not yet computed) dataset.
type Dataset struct {
	job    *Job
	id     int
	splits int
}

// ID returns the dataset's id (its position in the operation queue).
func (d *Dataset) ID() int { return d.id }

// NumSplits returns the dataset's split count.
func (d *Dataset) NumSplits() int { return d.splits }

// Wait blocks until the dataset has been computed.
func (d *Dataset) Wait() error {
	_, err := d.job.wait(d.id)
	return err
}

// collectWorkers bounds the per-split fetch concurrency in Collect.
const collectWorkers = 8

// Collect waits for the dataset and fetches every record, splits in
// order, each split's buckets in producer order. For reduce outputs
// this yields records sorted by key within each split. Split fetches
// run on a bounded worker pool; the returned order is unaffected.
func (d *Dataset) Collect() ([]kvio.Pair, error) {
	m, err := d.job.wait(d.id)
	if err != nil {
		return nil, err
	}
	if d.job.freeRequested(d.id) {
		return nil, fmt.Errorf("core: dataset %d was freed", d.id)
	}
	store := d.job.exec.Store()
	n := m.NumSplits()
	perSplit := make([][]kvio.Pair, n)
	errs := make([]error, n)
	workers := collectWorkers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	splitCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range splitCh {
				perSplit[s], errs[s] = store.ReadAllMulti(m.URLs(s))
			}
		}()
	}
	for s := 0; s < n; s++ {
		splitCh <- s
	}
	close(splitCh)
	wg.Wait()
	var out []kvio.Pair
	for s := 0; s < n; s++ {
		if errs[s] != nil {
			return nil, errs[s]
		}
		out = append(out, perSplit[s]...)
	}
	return out, nil
}

func (j *Job) freeRequested(id int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.states[id].freeWanted
}

// CollectSorted is Collect with a global bytewise key sort applied,
// convenient for comparing outputs across executors.
func (d *Dataset) CollectSorted() ([]kvio.Pair, error) {
	pairs, err := d.Collect()
	if err != nil {
		return nil, err
	}
	sort.SliceStable(pairs, func(i, k int) bool {
		return bytes.Compare(pairs[i].Key, pairs[k].Key) < 0
	})
	return pairs, nil
}

// DatasetStats summarizes a computed dataset.
type DatasetStats struct {
	Splits  int
	Buckets int
	Records int64
	Bytes   int64
}

// Stats waits for the dataset and reports its physical shape; handy
// for progress reporting and for verifying combiner effectiveness.
func (d *Dataset) Stats() (DatasetStats, error) {
	m, err := d.job.wait(d.id)
	if err != nil {
		return DatasetStats{}, err
	}
	s := DatasetStats{
		Splits:  m.NumSplits(),
		Records: m.Records(),
		Bytes:   m.Bytes(),
	}
	for _, split := range m.Splits {
		s.Buckets += len(split)
	}
	return s, nil
}

// Free releases the dataset's storage without blocking: the intent is
// recorded and storage is reclaimed as soon as the dataset and every
// consumer queued so far have completed. Iterative programs call this
// on datasets from finished iterations; a Free on a still-running
// iteration no longer stalls the driver goroutine.
func (d *Dataset) Free() error {
	j := d.job
	j.mu.Lock()
	st := j.states[d.id]
	st.freeWanted = true
	j.maybeFreeLocked(st)
	j.mu.Unlock()
	return nil
}

// ---------------------------------------------------------------------------
// Source materialization (shared by all executors)

// MaterializeLocal partitions literal pairs into splits and stores them
// as buckets in the given store, under job's bucket namespace.
func MaterializeLocal(store *bucket.Store, op *Operation, job JobID) (*Materialized, error) {
	parter, err := partition.ByName(op.Partition)
	if err != nil {
		return nil, err
	}
	perSplit := make([][]kvio.Pair, op.Splits)
	for serial, p := range op.LocalPairs {
		s := parter(p.Key, int64(serial), op.Splits)
		if s < 0 || s >= op.Splits {
			return nil, fmt.Errorf("core: partitioner returned split %d of %d", s, op.Splits)
		}
		perSplit[s] = append(perSplit[s], p)
	}
	m := NewMaterialized(op.Splits, FormatKV)
	for s, pairs := range perSplit {
		d, err := store.Put(BucketNameJob(job, op.Dataset, 0, s), pairs)
		if err != nil {
			return nil, err
		}
		if err := m.AddBucket(s, d); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// MaterializeFiles wraps file paths as a lines-format dataset, one
// split per file. Paths must be accessible to every task executor
// (shared filesystem), matching the paper's cluster assumptions.
func MaterializeFiles(op *Operation) (*Materialized, error) {
	m := NewMaterialized(len(op.Paths), FormatLines)
	for s, path := range op.Paths {
		d := bucket.Descriptor{URL: "file://" + path}
		if err := m.AddBucket(s, d); err != nil {
			return nil, err
		}
	}
	return m, nil
}
