package core

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bucket"
	"repro/internal/kvio"
	"repro/internal/partition"
)

// Executor runs operations. Implementations: Serial, MockParallel,
// Threads (this package) and the distributed master (internal/master).
type Executor interface {
	// RunOp executes a map or reduce operation given the materialized
	// input and returns the output materialization.
	RunOp(op *Operation, input *Materialized) (*Materialized, error)
	// Store is the executor's local bucket store; the driver uses it to
	// materialize source data and to fetch results for Collect.
	Store() *bucket.Store
	// Free releases a dataset's storage, best effort.
	Free(m *Materialized)
	// Close releases executor resources.
	Close() error
}

// Job is the handle a Program's Run method uses to queue operations.
// Queueing methods never block on execution; a background driver
// executes operations in queue order (asynchronously, which is what
// lets iterative programs overlap convergence checks with subsequent
// iterations). Wait/Collect block until the named dataset is complete.
type Job struct {
	exec Executor

	mu      sync.Mutex
	ops     []*Operation
	results []*Materialized
	done    []chan struct{}
	failed  map[int]bool
	err     error

	queue  chan int
	closed bool
	wg     sync.WaitGroup
}

// NewJob starts a job driver over the executor.
func NewJob(exec Executor) *Job {
	j := &Job{
		exec:   exec,
		failed: map[int]bool{},
		queue:  make(chan int, 1024),
	}
	j.wg.Add(1)
	go j.driveLoop()
	return j
}

// driveLoop executes queued operations in order.
func (j *Job) driveLoop() {
	defer j.wg.Done()
	for id := range j.queue {
		j.mu.Lock()
		op := j.ops[id]
		jobErr := j.err
		var input *Materialized
		if op.Input >= 0 {
			input = j.results[op.Input]
		}
		inputFailed := op.Input >= 0 && j.failed[op.Input]
		j.mu.Unlock()

		var m *Materialized
		var err error
		switch {
		case jobErr != nil || inputFailed:
			err = fmt.Errorf("core: dataset %d skipped: upstream failure", id)
		case op.Kind == OpLocal:
			m, err = MaterializeLocal(j.exec.Store(), op)
		case op.Kind == OpFile && op.rangeFormat:
			m, err = materializeRangedFiles(op)
		case op.Kind == OpFile:
			m, err = MaterializeFiles(op)
		default:
			m, err = j.exec.RunOp(op, input)
		}

		j.mu.Lock()
		if err != nil {
			j.failed[id] = true
			if j.err == nil {
				j.err = err
			}
		} else {
			j.results[id] = m
		}
		close(j.done[id])
		j.mu.Unlock()
	}
}

// enqueue registers and queues an operation, returning its dataset.
func (j *Job) enqueue(op *Operation, splits int) (*Dataset, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil, fmt.Errorf("core: job is closed")
	}
	op.Dataset = len(j.ops)
	if err := op.Validate(); err != nil {
		j.mu.Unlock()
		return nil, err
	}
	j.ops = append(j.ops, op)
	j.results = append(j.results, nil)
	j.done = append(j.done, make(chan struct{}))
	j.mu.Unlock()
	j.queue <- op.Dataset
	return &Dataset{job: j, id: op.Dataset, splits: splits}, nil
}

// Close stops the driver after all queued operations finish. The
// runner harness calls this when Run returns.
func (j *Job) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	close(j.queue)
	j.wg.Wait()
	return j.Err()
}

// Err returns the first execution error, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// OpOpts tunes a queued operation. The zero value picks reasonable
// defaults, matching the paper's "reasonable but overridable defaults".
type OpOpts struct {
	// Splits is the number of output splits (default: same as input;
	// for sources, 1).
	Splits int
	// Partition names the output partitioner (default "hash").
	Partition string
	// Combine names a registered reduce function used as a combiner.
	Combine string
	// Params is opaque per-operation state delivered to map/reduce
	// factories on every executing process (broadcast variables).
	Params []byte
}

func (o OpOpts) splitsOr(def int) int {
	if o.Splits > 0 {
		return o.Splits
	}
	return def
}

// LocalData queues literal pairs as a source dataset.
func (j *Job) LocalData(pairs []kvio.Pair, opts OpOpts) (*Dataset, error) {
	splits := opts.splitsOr(1)
	cp := make([]kvio.Pair, len(pairs))
	for i, p := range pairs {
		cp[i] = p.Clone()
	}
	return j.enqueue(&Operation{
		Kind:       OpLocal,
		Input:      -1,
		Splits:     splits,
		Partition:  opts.Partition,
		LocalPairs: cp,
	}, splits)
}

// TextFileData queues text files as a source dataset, one split per
// file; records are (line number, line).
func (j *Job) TextFileData(paths []string) (*Dataset, error) {
	return j.enqueue(&Operation{
		Kind:   OpFile,
		Input:  -1,
		Splits: len(paths),
		Paths:  append([]string(nil), paths...),
	}, len(paths))
}

// Map queues a map operation over src.
func (j *Job) Map(src *Dataset, funcName string, opts OpOpts) (*Dataset, error) {
	splits := opts.splitsOr(src.splits)
	return j.enqueue(&Operation{
		Kind:        OpMap,
		Input:       src.id,
		FuncName:    funcName,
		CombineName: opts.Combine,
		Splits:      splits,
		Partition:   opts.Partition,
		Params:      append([]byte(nil), opts.Params...),
	}, splits)
}

// Reduce queues a reduce operation over src. src must be partitioned by
// key (i.e. be the output of a map or reduce with a key-based
// partitioner) for reduce semantics to hold globally.
func (j *Job) Reduce(src *Dataset, funcName string, opts OpOpts) (*Dataset, error) {
	splits := opts.splitsOr(src.splits)
	return j.enqueue(&Operation{
		Kind:        OpReduce,
		Input:       src.id,
		FuncName:    funcName,
		CombineName: opts.Combine,
		Splits:      splits,
		Partition:   opts.Partition,
		Params:      append([]byte(nil), opts.Params...),
	}, splits)
}

// MapReduce queues a map followed by a reduce; mapOpts.Splits sets the
// number of reduce tasks.
func (j *Job) MapReduce(src *Dataset, mapName, reduceName string, mapOpts, reduceOpts OpOpts) (*Dataset, error) {
	mid, err := j.Map(src, mapName, mapOpts)
	if err != nil {
		return nil, err
	}
	return j.Reduce(mid, reduceName, reduceOpts)
}

// wait blocks until dataset id completes; returns the materialization.
func (j *Job) wait(id int) (*Materialized, error) {
	j.mu.Lock()
	if id < 0 || id >= len(j.done) {
		j.mu.Unlock()
		return nil, fmt.Errorf("core: unknown dataset %d", id)
	}
	ch := j.done[id]
	j.mu.Unlock()
	<-ch
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed[id] {
		return nil, j.err
	}
	return j.results[id], nil
}

// Dataset is a handle to a queued (possibly not yet computed) dataset.
type Dataset struct {
	job    *Job
	id     int
	splits int
}

// ID returns the dataset's id (its position in the operation queue).
func (d *Dataset) ID() int { return d.id }

// NumSplits returns the dataset's split count.
func (d *Dataset) NumSplits() int { return d.splits }

// Wait blocks until the dataset has been computed.
func (d *Dataset) Wait() error {
	_, err := d.job.wait(d.id)
	return err
}

// Collect waits for the dataset and fetches every record, splits in
// order, each split's buckets in producer order. For reduce outputs
// this yields records sorted by key within each split.
func (d *Dataset) Collect() ([]kvio.Pair, error) {
	m, err := d.job.wait(d.id)
	if err != nil {
		return nil, err
	}
	store := d.job.exec.Store()
	var out []kvio.Pair
	for s := range m.Splits {
		pairs, err := store.ReadAllMulti(m.URLs(s))
		if err != nil {
			return nil, err
		}
		out = append(out, pairs...)
	}
	return out, nil
}

// CollectSorted is Collect with a global bytewise key sort applied,
// convenient for comparing outputs across executors.
func (d *Dataset) CollectSorted() ([]kvio.Pair, error) {
	pairs, err := d.Collect()
	if err != nil {
		return nil, err
	}
	sort.SliceStable(pairs, func(i, k int) bool {
		return bytes.Compare(pairs[i].Key, pairs[k].Key) < 0
	})
	return pairs, nil
}

// DatasetStats summarizes a computed dataset.
type DatasetStats struct {
	Splits  int
	Buckets int
	Records int64
	Bytes   int64
}

// Stats waits for the dataset and reports its physical shape; handy
// for progress reporting and for verifying combiner effectiveness.
func (d *Dataset) Stats() (DatasetStats, error) {
	m, err := d.job.wait(d.id)
	if err != nil {
		return DatasetStats{}, err
	}
	s := DatasetStats{
		Splits:  m.NumSplits(),
		Records: m.Records(),
		Bytes:   m.Bytes(),
	}
	for _, split := range m.Splits {
		s.Buckets += len(split)
	}
	return s, nil
}

// Free waits for the dataset and then releases its storage. Iterative
// programs call this on datasets from finished iterations.
func (d *Dataset) Free() error {
	m, err := d.job.wait(d.id)
	if err != nil {
		return err
	}
	d.job.exec.Free(m)
	return nil
}

// ---------------------------------------------------------------------------
// Source materialization (shared by all executors)

// MaterializeLocal partitions literal pairs into splits and stores them
// as buckets in the given store.
func MaterializeLocal(store *bucket.Store, op *Operation) (*Materialized, error) {
	parter, err := partition.ByName(op.Partition)
	if err != nil {
		return nil, err
	}
	perSplit := make([][]kvio.Pair, op.Splits)
	for serial, p := range op.LocalPairs {
		s := parter(p.Key, int64(serial), op.Splits)
		if s < 0 || s >= op.Splits {
			return nil, fmt.Errorf("core: partitioner returned split %d of %d", s, op.Splits)
		}
		perSplit[s] = append(perSplit[s], p)
	}
	m := NewMaterialized(op.Splits, FormatKV)
	for s, pairs := range perSplit {
		d, err := store.Put(BucketName(op.Dataset, 0, s), pairs)
		if err != nil {
			return nil, err
		}
		if err := m.AddBucket(s, d); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// MaterializeFiles wraps file paths as a lines-format dataset, one
// split per file. Paths must be accessible to every task executor
// (shared filesystem), matching the paper's cluster assumptions.
func MaterializeFiles(op *Operation) (*Materialized, error) {
	m := NewMaterialized(len(op.Paths), FormatLines)
	for s, path := range op.Paths {
		d := bucket.Descriptor{URL: "file://" + path}
		if err := m.AddBucket(s, d); err != nil {
			return nil, err
		}
	}
	return m, nil
}
