// Package core implements the Mrs programming model: programs queue
// map and reduce operations over lazy datasets, and pluggable executors
// (serial, mock-parallel, in-process parallel, or the distributed
// master/slave runtime in internal/master and internal/slave) run them.
//
// The model follows §IV-A of the paper:
//
//   - A Program's Run method receives a *Job and queues operations.
//   - Operations form a linear queue; each produces a Dataset.
//   - Queueing never blocks, so an iterative program can queue the next
//     iteration (and a convergence check) while earlier operations are
//     still executing — the low per-iteration overhead that the paper's
//     PSO results depend on.
//   - All executors must produce identical results for the same
//     program; differences indicate a bug (the paper's debugging story).
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/kvio"
)

// MapFunc is a map function: called once per input record; emits any
// number of output records.
type MapFunc func(key, value []byte, emit kvio.Emitter) error

// ReduceFunc is a reduce function: called once per key with all values;
// emits any number of output records (commonly one).
type ReduceFunc func(key []byte, values [][]byte, emit kvio.Emitter) error

// ErrNotRegistered reports a map/reduce name that the registry lacks.
var ErrNotRegistered = errors.New("core: function not registered")

// MapFactory builds a map function from per-operation parameters; the
// framework's broadcast mechanism for state that changes between
// iterations (e.g. k-means centroids). Params travel with the task
// over RPC, so every slave builds an identical function.
type MapFactory func(params []byte) (MapFunc, error)

// ReduceFactory is the reduce-side analogue of MapFactory.
type ReduceFactory func(params []byte) (ReduceFunc, error)

// Registry maps function names to implementations. A program registers
// its functions under stable names so that slave processes (which hold
// their own instance of the same program) can resolve tasks received
// over RPC — the same mechanism Mrs gets from Python introspection.
type Registry struct {
	mu          sync.RWMutex
	maps        map[string]MapFunc
	reduces     map[string]ReduceFunc
	mapFacts    map[string]MapFactory
	reduceFacts map[string]ReduceFactory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		maps:        map[string]MapFunc{},
		reduces:     map[string]ReduceFunc{},
		mapFacts:    map[string]MapFactory{},
		reduceFacts: map[string]ReduceFactory{},
	}
}

// RegisterMap adds a named map function.
func (r *Registry) RegisterMap(name string, fn MapFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maps[name] = fn
}

// RegisterReduce adds a named reduce function. Reduce functions also
// serve as combiners when referenced by an operation's CombineName.
func (r *Registry) RegisterReduce(name string, fn ReduceFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reduces[name] = fn
}

// RegisterMapFactory adds a named parameterized map constructor.
func (r *Registry) RegisterMapFactory(name string, f MapFactory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mapFacts[name] = f
}

// RegisterReduceFactory adds a named parameterized reduce constructor.
func (r *Registry) RegisterReduceFactory(name string, f ReduceFactory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reduceFacts[name] = f
}

// Map resolves a map function with optional per-operation parameters.
// Plain registrations win; otherwise a factory is consulted.
func (r *Registry) Map(name string, params []byte) (MapFunc, error) {
	r.mu.RLock()
	fn, ok := r.maps[name]
	fact, fok := r.mapFacts[name]
	r.mu.RUnlock()
	if ok {
		return fn, nil
	}
	if fok {
		return fact(params)
	}
	return nil, fmt.Errorf("%w: map %q", ErrNotRegistered, name)
}

// Reduce resolves a reduce function with optional parameters.
func (r *Registry) Reduce(name string, params []byte) (ReduceFunc, error) {
	r.mu.RLock()
	fn, ok := r.reduces[name]
	fact, fok := r.reduceFacts[name]
	r.mu.RUnlock()
	if ok {
		return fn, nil
	}
	if fok {
		return fact(params)
	}
	return nil, fmt.Errorf("%w: reduce %q", ErrNotRegistered, name)
}

// Names returns the sorted registered map and reduce names (diagnostics).
func (r *Registry) Names() (maps, reduces []string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n := range r.maps {
		maps = append(maps, n)
	}
	for n := range r.reduces {
		reduces = append(reduces, n)
	}
	sort.Strings(maps)
	sort.Strings(reduces)
	return maps, reduces
}

// OpKind discriminates operation types.
type OpKind int

// Operation kinds.
const (
	// OpLocal materializes literal pairs supplied by the program.
	OpLocal OpKind = iota
	// OpFile declares text files as a source dataset (one split per
	// file; records are (line number, line)).
	OpFile
	// OpMap applies a map function to every record of the input.
	OpMap
	// OpReduce groups each input split by key and applies a reduce
	// function.
	OpReduce
)

// String names the kind for logs.
func (k OpKind) String() string {
	switch k {
	case OpLocal:
		return "local"
	case OpFile:
		return "file"
	case OpMap:
		return "map"
	case OpReduce:
		return "reduce"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Operation describes one queued step. Operations are immutable once
// queued and fully serializable (functions travel by name), so the same
// struct drives both local executors and the RPC protocol.
type Operation struct {
	// Dataset is the id of the dataset this operation produces; it
	// equals the operation's index in the job queue.
	Dataset int
	// Kind selects the behaviour.
	Kind OpKind
	// Input is the id of the input dataset (sources use -1).
	Input int
	// FuncName is the map or reduce function name (OpMap/OpReduce).
	FuncName string
	// CombineName optionally names a reduce function applied as a
	// combiner on the producing side (map-side combine for OpMap).
	CombineName string
	// Splits is the number of output splits.
	Splits int
	// Partition names the partitioner routing output records to splits.
	Partition string
	// Paths lists input files (OpFile only).
	Paths []string
	// LocalPairs carries literal data (OpLocal only).
	LocalPairs []kvio.Pair
	// Params is opaque per-operation state handed to map/reduce
	// factories (the broadcast channel for iteration-varying state
	// such as k-means centroids). It travels with every task.
	Params []byte

	// KeyAligned is the program's promise that this reduce emits only
	// keys from its own input group (key-preserving output). It is the
	// opt-in half of the "narrow reduce" optimization: combined with a
	// key-pure partitioner shared with the producing operation and an
	// equal split count, output split s depends only on input split s,
	// so downstream tasks may start as soon as task s finishes instead
	// of waiting for the whole shuffle barrier.
	KeyAligned bool
	// Narrow is set by the Job when KeyAligned plus the structural
	// conditions actually hold for this queue. It travels with every
	// task so the task engine can *enforce* the alignment promise: a
	// narrow reduce task errors if an emitted key would route outside
	// the task's own split, instead of silently corrupting downstream
	// reads.
	Narrow bool

	// Resident marks this operation's *input* as an invariant dataset
	// worth pinning in worker-local memory: each task's input split is
	// fetched once, cached under (job, input dataset, split) on the
	// worker that ran it, and served from memory when any later task —
	// typically the same op re-queued by the next iteration — consumes
	// the same split again. The scheduler prefers placing such tasks on
	// the caching worker (cache affinity) but falls back to a re-fetch
	// anywhere, so residency never changes results, only data movement.
	Resident bool

	// Codec pins the wire codec of this operation's output buckets by
	// registered name ("identity", "deflate", "lz"), overriding the
	// executor-wide setting. Empty inherits. Like all data-plane
	// settings it never changes results, only bytes at rest and on the
	// wire.
	Codec string
	// BlockEncoding pins the block encoding of this operation's output
	// buckets ("row", "columnar", "columnar-raw", "columnar-dict",
	// "columnar-delta"), overriding the executor-wide setting. Empty
	// inherits.
	BlockEncoding string

	// rangeFormat marks an OpFile whose Paths are byte-range URLs
	// (TextFileDataSplit). Master-side only; slaves see the range
	// format through the task spec's InputFormat.
	rangeFormat bool
}

// Validate performs structural checks before an operation is queued.
func (op *Operation) Validate() error {
	if op.Splits <= 0 {
		return fmt.Errorf("core: op %d (%s): splits must be positive, got %d", op.Dataset, op.Kind, op.Splits)
	}
	switch op.Kind {
	case OpLocal:
		// Any pairs, including none, are fine.
	case OpFile:
		if len(op.Paths) == 0 {
			return fmt.Errorf("core: op %d: file op needs at least one path", op.Dataset)
		}
	case OpMap, OpReduce:
		if op.Input < 0 {
			return fmt.Errorf("core: op %d (%s): missing input dataset", op.Dataset, op.Kind)
		}
		if op.FuncName == "" {
			return fmt.Errorf("core: op %d (%s): missing function name", op.Dataset, op.Kind)
		}
	default:
		return fmt.Errorf("core: op %d: unknown kind %d", op.Dataset, int(op.Kind))
	}
	return nil
}

// Format identifies how a split's bytes decode into records.
const (
	// FormatKV is the kvio record-stream format.
	FormatKV = "kv"
	// FormatLines is raw text whose records are (varint line number,
	// line bytes without the trailing newline).
	FormatLines = "lines"
	// FormatLinesRange is raw text addressed by byte range: bucket URLs
	// carry a "#start+length" fragment, records are (varint byte offset
	// of the line start, line bytes). A range owns every line that
	// *starts* inside it, Hadoop's text-split convention, so adjacent
	// ranges neither drop nor duplicate lines.
	FormatLinesRange = "lines-range"
)
