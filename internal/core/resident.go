package core

import (
	"sync"

	"repro/internal/obs"
)

// DefaultResidentBudget is the resident-cache byte budget when a
// positive budget is requested without an explicit size.
const DefaultResidentBudget = 256 << 20

// ResidentKey identifies one cached input split: the consuming job, the
// dataset the split belongs to, and the split index. Every iteration of
// an iterative program consumes the same invariant dataset under the
// same key, which is what makes the cache useful across supersteps.
type ResidentKey struct {
	Job     JobID
	Dataset int
	Split   int
}

// residentEntry is one cached split: the raw fetched bucket payloads in
// InputURLs order, plus the URL list itself so a plan change (different
// producers after recovery, say) invalidates the entry instead of
// serving stale bytes.
type residentEntry struct {
	key      ResidentKey
	urls     []string
	payloads [][]byte
	bytes    int64
	// LRU chain (most-recent at head).
	prev, next *residentEntry
}

// ResidentCache is the worker-local resident dataset tier: invariant
// input splits, marked with OpOpts.Resident, are fetched once and then
// served from memory on every later iteration. Entries are evicted in
// LRU order under a byte budget, and DropJob releases a job's entries
// when the master's GC broadcast retires it. All methods are safe for
// concurrent use and nil-safe (a nil cache never hits, never stores).
type ResidentCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	items  map[ResidentKey]*residentEntry
	head   *residentEntry // most recently used
	tail   *residentEntry // least recently used
	m      *obs.Metrics
}

// NewResidentCache returns a cache bounded by budget bytes of cached
// payload. A non-positive budget returns nil: the disabled cache.
func NewResidentCache(budget int64) *ResidentCache {
	if budget <= 0 {
		return nil
	}
	return &ResidentCache{
		budget: budget,
		items:  make(map[ResidentKey]*residentEntry),
	}
}

// SetMetrics directs eviction and byte accounting to m
// (mrs_resident_evictions_total, inserted/reclaimed byte counters).
// Hit/miss counters are charged by the task engine, which knows the
// per-task context.
func (c *ResidentCache) SetMetrics(m *obs.Metrics) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m = m
	c.mu.Unlock()
}

// Get returns the cached payloads for key if present AND the cached
// fetch plan matches urls exactly; any mismatch is a miss (and drops
// the stale entry). The returned slices are shared — callers must treat
// them as read-only.
func (c *ResidentCache) Get(key ResidentKey, urls []string) ([][]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return nil, false
	}
	if !sameURLs(e.urls, urls) {
		c.removeLocked(e, obs.MetricResidentInvalidations)
		return nil, false
	}
	c.touchLocked(e)
	return e.payloads, true
}

// Put caches the payloads fetched for key under the fetch plan urls,
// evicting least-recently-used entries until the budget holds. An entry
// larger than the whole budget is not cached at all (it would only
// flush everything else for a single-use tenancy).
func (c *ResidentCache) Put(key ResidentKey, urls []string, payloads [][]byte) {
	if c == nil {
		return
	}
	var size int64
	for _, p := range payloads {
		size += int64(len(p))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return
	}
	if old, ok := c.items[key]; ok {
		c.removeLocked(old, "")
	}
	e := &residentEntry{
		key:      key,
		urls:     append([]string(nil), urls...),
		payloads: payloads,
		bytes:    size,
	}
	c.items[key] = e
	c.pushFrontLocked(e)
	c.used += size
	c.m.Add(obs.MetricResidentInsertedBytes, size)
	for c.used > c.budget && c.tail != nil && c.tail != e {
		c.removeLocked(c.tail, obs.MetricResidentEvictions)
	}
}

// DropJob releases every entry belonging to job (the per-job GC hook)
// and returns the bytes reclaimed.
func (c *ResidentCache) DropJob(job JobID) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var freed int64
	for k, e := range c.items {
		if k.Job == job {
			freed += e.bytes
			c.removeLocked(e, "")
		}
	}
	return freed
}

// Bytes reports the cached payload bytes currently pinned.
func (c *ResidentCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len reports the number of cached splits.
func (c *ResidentCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// removeLocked unlinks e, releases its bytes, and charges metric (when
// non-empty) plus the reclaimed-bytes counter.
func (c *ResidentCache) removeLocked(e *residentEntry, metric string) {
	delete(c.items, e.key)
	c.unlinkLocked(e)
	c.used -= e.bytes
	if metric != "" {
		c.m.Add(metric, 1)
	}
	c.m.Add(obs.MetricResidentReclaimedBytes, e.bytes)
}

func (c *ResidentCache) touchLocked(e *residentEntry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

func (c *ResidentCache) pushFrontLocked(e *residentEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *ResidentCache) unlinkLocked(e *residentEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func sameURLs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
