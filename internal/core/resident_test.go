package core

import (
	"testing"

	"repro/internal/kvio"
	"repro/internal/obs"
)

func rkey(job, ds, split int) ResidentKey {
	return ResidentKey{Job: JobID(job), Dataset: ds, Split: split}
}

func payload(n int) [][]byte {
	return [][]byte{make([]byte, n)}
}

// TestResidentCacheHitAndPlanInvalidation covers the basic contract:
// a Put is served back only while the fetch plan matches, and a plan
// change drops the stale entry instead of serving it.
func TestResidentCacheHitAndPlanInvalidation(t *testing.T) {
	c := NewResidentCache(1 << 20)
	m := obs.NewMetrics()
	c.SetMetrics(m)

	urls := []string{"u/a", "u/b"}
	if _, ok := c.Get(rkey(1, 0, 0), urls); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(rkey(1, 0, 0), urls, [][]byte{[]byte("xx"), []byte("yyy")})
	got, ok := c.Get(rkey(1, 0, 0), urls)
	if !ok || len(got) != 2 || string(got[1]) != "yyy" {
		t.Fatalf("Get = %v, %v; want cached payloads", got, ok)
	}
	if c.Bytes() != 5 || c.Len() != 1 {
		t.Fatalf("Bytes/Len = %d/%d, want 5/1", c.Bytes(), c.Len())
	}

	// Same key, different producers (post-recovery plan): must miss AND
	// drop the stale entry.
	if _, ok := c.Get(rkey(1, 0, 0), []string{"u/a", "u/c"}); ok {
		t.Fatal("plan mismatch served stale payloads")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("stale entry not dropped: Len=%d Bytes=%d", c.Len(), c.Bytes())
	}
	snap := m.Snapshot()
	if snap[obs.MetricResidentInvalidations] != 1 {
		t.Errorf("invalidations = %d, want 1", snap[obs.MetricResidentInvalidations])
	}
	if snap[obs.MetricResidentReclaimedBytes] != 5 {
		t.Errorf("reclaimed bytes = %d, want 5", snap[obs.MetricResidentReclaimedBytes])
	}
}

// TestResidentCacheLRUEviction fills the cache past its budget and
// checks that the least-recently-used entry goes first — and that a
// Get refreshes recency.
func TestResidentCacheLRUEviction(t *testing.T) {
	c := NewResidentCache(300)
	m := obs.NewMetrics()
	c.SetMetrics(m)
	urls := []string{"u"}

	c.Put(rkey(1, 0, 0), urls, payload(100)) // A
	c.Put(rkey(1, 0, 1), urls, payload(100)) // B
	c.Put(rkey(1, 0, 2), urls, payload(100)) // C: full

	// Touch A so B is now least-recent.
	if _, ok := c.Get(rkey(1, 0, 0), urls); !ok {
		t.Fatal("A missing before eviction")
	}
	c.Put(rkey(1, 0, 3), urls, payload(100)) // D evicts B

	if _, ok := c.Get(rkey(1, 0, 1), urls); ok {
		t.Error("LRU entry B survived eviction")
	}
	for _, split := range []int{0, 2, 3} {
		if _, ok := c.Get(rkey(1, 0, split), urls); !ok {
			t.Errorf("split %d evicted, want resident", split)
		}
	}
	if got := m.Snapshot()[obs.MetricResidentEvictions]; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if c.Bytes() != 300 {
		t.Errorf("Bytes = %d, want 300", c.Bytes())
	}
}

// TestResidentCacheOversizeAndReplace: an entry larger than the whole
// budget is never cached, and re-Putting a key replaces its bytes
// rather than double-counting.
func TestResidentCacheOversizeAndReplace(t *testing.T) {
	c := NewResidentCache(100)
	urls := []string{"u"}
	c.Put(rkey(1, 0, 0), urls, payload(101))
	if c.Len() != 0 {
		t.Fatal("oversize entry was cached")
	}
	c.Put(rkey(1, 0, 0), urls, payload(40))
	c.Put(rkey(1, 0, 0), urls, payload(60))
	if c.Bytes() != 60 || c.Len() != 1 {
		t.Fatalf("replace leaked bytes: Bytes=%d Len=%d, want 60/1", c.Bytes(), c.Len())
	}
}

// TestResidentCacheDropJob is the GC hook: retiring a job frees exactly
// its entries and reports the bytes reclaimed.
func TestResidentCacheDropJob(t *testing.T) {
	c := NewResidentCache(1 << 20)
	urls := []string{"u"}
	c.Put(rkey(1, 0, 0), urls, payload(10))
	c.Put(rkey(1, 2, 1), urls, payload(20))
	c.Put(rkey(2, 0, 0), urls, payload(40))

	if freed := c.DropJob(1); freed != 30 {
		t.Errorf("DropJob(1) freed %d bytes, want 30", freed)
	}
	if c.Len() != 1 || c.Bytes() != 40 {
		t.Errorf("after DropJob: Len=%d Bytes=%d, want 1/40", c.Len(), c.Bytes())
	}
	if _, ok := c.Get(rkey(2, 0, 0), urls); !ok {
		t.Error("DropJob(1) removed job 2's entry")
	}
}

// TestResidentCacheNilSafe: the disabled cache (nil) accepts every call
// and never hits — the executors rely on this instead of branching.
func TestResidentCacheNilSafe(t *testing.T) {
	var c *ResidentCache
	if c = NewResidentCache(0); c != nil {
		t.Fatal("zero budget should disable the cache")
	}
	c.SetMetrics(obs.NewMetrics())
	c.Put(rkey(1, 0, 0), []string{"u"}, payload(1))
	if _, ok := c.Get(rkey(1, 0, 0), []string{"u"}); ok {
		t.Fatal("nil cache hit")
	}
	if c.DropJob(1) != 0 || c.Bytes() != 0 || c.Len() != 0 {
		t.Fatal("nil cache reported state")
	}
}

// TestResidentIterativeByteIdentity runs the same iterative program on
// the threads executor with the resident cache on and off; outputs must
// be byte-identical and the warm run must actually hit. This is the
// in-process half of the tentpole's correctness gate (the cluster half
// lives in internal/cluster).
func TestResidentIterativeByteIdentity(t *testing.T) {
	run := func(budget int64) ([][]kvio.Pair, map[string]int64) {
		exec := NewThreads(testRegistry(), 3)
		rt := obs.New(nil)
		exec.SetObserver(rt)
		exec.SetResidentBudget(budget)
		defer exec.Close()

		job := NewJobWith(exec, JobOptions{Pipeline: true, Obs: rt})
		src, err := job.LocalData(linesAsPairs(), OpOpts{Splits: 3, Partition: "roundrobin"})
		if err != nil {
			t.Fatal(err)
		}
		// Iterate over the invariant src dataset: each iteration maps the
		// same resident input, so all but the first fetch should hit.
		var outs [][]kvio.Pair
		for i := 0; i < 4; i++ {
			mapped, err := job.Map(src, "split", OpOpts{Splits: 3, Resident: true, Combine: "sum"})
			if err != nil {
				t.Fatal(err)
			}
			red, err := job.Reduce(mapped, "sum", OpOpts{Splits: 2})
			if err != nil {
				t.Fatal(err)
			}
			pairs, err := red.CollectSorted()
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, pairs)
			_ = red.Free()
			_ = mapped.Free()
		}
		if err := job.Close(); err != nil {
			t.Fatal(err)
		}
		return outs, rt.M().Snapshot()
	}

	cold, coldSnap := run(0)
	warm, warmSnap := run(DefaultResidentBudget)
	if len(cold) != len(warm) {
		t.Fatalf("iteration count mismatch: %d vs %d", len(cold), len(warm))
	}
	for i := range cold {
		if !equalPairs(cold[i], warm[i]) {
			t.Errorf("iteration %d output diverged between resident and non-resident runs", i)
		}
	}
	if coldSnap[obs.MetricResidentHits] != 0 {
		t.Errorf("disabled cache recorded %d hits", coldSnap[obs.MetricResidentHits])
	}
	hits, misses := warmSnap[obs.MetricResidentHits], warmSnap[obs.MetricResidentMisses]
	// 4 iterations × 3 splits of the invariant input: iteration 1 misses,
	// the rest hit.
	if misses != 3 {
		t.Errorf("warm misses = %d, want 3", misses)
	}
	if hits != 9 {
		t.Errorf("warm hits = %d, want 9", hits)
	}
	if warmSnap[obs.MetricPlanReuse] == 0 {
		t.Error("BSP fast path never reused an input plan")
	}
}

func equalPairs(a, b []kvio.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if string(a[i].Key) != string(b[i].Key) || string(a[i].Value) != string(b[i].Value) {
			return false
		}
	}
	return true
}
