package core

import (
	"fmt"

	"repro/internal/bucket"
)

// Materialized is the physical representation of a computed dataset:
// for each split, the ordered list of buckets holding its records
// (one bucket per producing task). Order matters — concatenating a
// split's buckets in task order yields a deterministic record sequence.
//
// Under the pipelined runner a Materialized is built incrementally:
// SetTaskBucket records buckets at their task index as completion
// events land, leaving zero-value placeholders for tasks that have not
// reported yet. Accessors skip placeholders, so a consumer reading an
// incomplete (narrow) split sees exactly the buckets delivered so far
// in task order.
type Materialized struct {
	// Splits[s] lists the buckets that together form split s, indexed
	// by producing task. A zero-value Descriptor (empty URL) marks a
	// task whose bucket has not been recorded.
	Splits [][]bucket.Descriptor
	// Format tells consumers how to decode the bucket payloads.
	Format string
}

// NewMaterialized allocates an empty materialization with n splits.
func NewMaterialized(n int, format string) *Materialized {
	return &Materialized{Splits: make([][]bucket.Descriptor, n), Format: format}
}

// NumSplits returns the split count.
func (m *Materialized) NumSplits() int { return len(m.Splits) }

// Records totals the record counts of all buckets.
func (m *Materialized) Records() int64 {
	var n int64
	for _, split := range m.Splits {
		for _, d := range split {
			n += d.Records
		}
	}
	return n
}

// Bytes totals the payload bytes of all buckets.
func (m *Materialized) Bytes() int64 {
	var n int64
	for _, split := range m.Splits {
		for _, d := range split {
			n += d.Bytes
		}
	}
	return n
}

// URLs returns the bucket URLs of split s in task order, skipping
// placeholders for tasks that have not reported their bucket yet.
func (m *Materialized) URLs(s int) []string {
	urls := make([]string, 0, len(m.Splits[s]))
	for _, d := range m.Splits[s] {
		if d.URL == "" {
			continue
		}
		urls = append(urls, d.URL)
	}
	return urls
}

// BucketNames returns every bucket name in the materialization;
// used to free datasets between iterations.
func (m *Materialized) BucketNames() []string {
	var names []string
	for _, split := range m.Splits {
		for _, d := range split {
			if d.Name != "" {
				names = append(names, d.Name)
			}
		}
	}
	return names
}

// AddBucket appends a bucket descriptor to split s.
func (m *Materialized) AddBucket(s int, d bucket.Descriptor) error {
	if s < 0 || s >= len(m.Splits) {
		return fmt.Errorf("core: split %d out of range [0,%d)", s, len(m.Splits))
	}
	m.Splits[s] = append(m.Splits[s], d)
	return nil
}

// SetTaskBucket records task's output bucket for split s at its task
// index, growing the split with placeholders as needed so buckets stay
// in producer-task order no matter what order completions arrive in.
func (m *Materialized) SetTaskBucket(task, s int, d bucket.Descriptor) error {
	if s < 0 || s >= len(m.Splits) {
		return fmt.Errorf("core: split %d out of range [0,%d)", s, len(m.Splits))
	}
	if task < 0 {
		return fmt.Errorf("core: negative task index %d", task)
	}
	for len(m.Splits[s]) <= task {
		m.Splits[s] = append(m.Splits[s], bucket.Descriptor{})
	}
	m.Splits[s][task] = d
	return nil
}

// BucketName builds the canonical bucket name for (dataset, task, split)
// in the default job namespace.
func BucketName(dataset, task, split int) string {
	return fmt.Sprintf("ds%d/t%d/s%d", dataset, task, split)
}

// BucketNameJob is BucketName inside a job's namespace. Job 0 — the
// default job of a directly-constructed executor — keeps the legacy
// unprefixed names, so single-job runs (and their on-disk layout) are
// unchanged; every managed job gets a j<id>/ prefix, which is what lets
// one fleet hold several jobs' intermediate data apart and reclaim one
// job's buckets without touching another's.
func BucketNameJob(job JobID, dataset, task, split int) string {
	if job == 0 {
		return BucketName(dataset, task, split)
	}
	return fmt.Sprintf("j%d/ds%d/t%d/s%d", job, dataset, task, split)
}
