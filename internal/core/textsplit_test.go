package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/codec"
)

// rangedLines runs forEachLineRange over the whole file split into
// chunks of the given size and returns all (offset, line) records.
func rangedLines(t *testing.T, path string, chunk int64) map[int64]string {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]string{}
	size := info.Size()
	for start := int64(0); start < size || start == 0; start += chunk {
		length := chunk
		if start+length > size {
			length = size - start
		}
		err := forEachLineRange(rangeURL(path, start, length), func(key, value []byte) error {
			off, err := codec.DecodeVarint(key)
			if err != nil {
				return err
			}
			if prev, dup := got[off]; dup {
				return fmt.Errorf("offset %d seen twice (%q, %q)", off, prev, value)
			}
			got[off] = string(value)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if size == 0 {
			break
		}
	}
	return got
}

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "input.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRangeSplitsCoverEveryLineExactlyOnce(t *testing.T) {
	content := "first line\nsecond\nthird line here\nfourth\nfinal without newline"
	path := writeTemp(t, content)
	wantLines := strings.Split(content, "\n")
	for _, chunk := range []int64{1, 3, 7, 10, 100} {
		got := rangedLines(t, path, chunk)
		if len(got) != len(wantLines) {
			t.Fatalf("chunk %d: got %d lines, want %d: %v", chunk, len(got), len(wantLines), got)
		}
		offset := int64(0)
		for _, want := range wantLines {
			line, ok := got[offset]
			if !ok || line != want {
				t.Errorf("chunk %d: offset %d = %q, want %q", chunk, offset, line, want)
			}
			offset += int64(len(want)) + 1
		}
	}
}

func TestRangeSplitsPropertyAgainstWholeRead(t *testing.T) {
	f := func(rawLines []string, chunkSel uint8) bool {
		// Build file content from sanitized lines.
		var sb strings.Builder
		var want []string
		for _, l := range rawLines {
			l = strings.Map(func(r rune) rune {
				if r == '\n' || r == '\r' {
					return '.'
				}
				return r
			}, l)
			want = append(want, l)
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
		path := writeTemp(t, sb.String())
		chunk := int64(chunkSel%32) + 1
		got := rangedLines(t, path, chunk)
		if len(got) != len(want) {
			return false
		}
		offset := int64(0)
		for _, w := range want {
			if got[offset] != w {
				return false
			}
			offset += int64(len(w)) + 1
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRangeHandlesCRLF(t *testing.T) {
	path := writeTemp(t, "a\r\nbb\r\n")
	got := rangedLines(t, path, 2)
	if got[0] != "a" || got[3] != "bb" {
		t.Errorf("got %v", got)
	}
}

func TestEmptyFileRange(t *testing.T) {
	path := writeTemp(t, "")
	got := rangedLines(t, path, 4)
	if len(got) != 0 {
		t.Errorf("empty file produced %v", got)
	}
}

func TestTextFileDataSplitWordCount(t *testing.T) {
	// End to end: one big file, many splits, counts must match the
	// per-file path.
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "alpha beta gamma line%d\n", i%10)
	}
	path := writeTemp(t, sb.String())

	exec := NewSerial(testRegistry())
	defer exec.Close()
	job := NewJob(exec)
	defer job.Close()
	src, err := job.TextFileDataSplit([]string{path}, 256)
	if err != nil {
		t.Fatal(err)
	}
	if src.NumSplits() < 10 {
		t.Fatalf("expected many splits, got %d", src.NumSplits())
	}
	out, err := job.MapReduce(src, "split", "sum", OpOpts{Splits: 4, Combine: "sum"}, OpOpts{Splits: 2})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	counts := countsFromPairs(t, pairs)
	if counts["alpha"] != 200 || counts["beta"] != 200 || counts["gamma"] != 200 {
		t.Errorf("counts: %v", counts)
	}
	if counts["line3"] != 20 {
		t.Errorf("line3 count = %d", counts["line3"])
	}
}

func TestTextFileDataSplitMultipleFilesThreads(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 3; i++ {
		p := filepath.Join(dir, fmt.Sprintf("f%d.txt", i))
		if err := os.WriteFile(p, []byte(strings.Repeat("x y\n", 50)), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	exec := NewThreads(testRegistry(), 4)
	defer exec.Close()
	job := NewJob(exec)
	defer job.Close()
	src, err := job.TextFileDataSplit(paths, 64)
	if err != nil {
		t.Fatal(err)
	}
	out, err := job.MapReduce(src, "split", "sum", OpOpts{Splits: 3, Combine: "sum"}, OpOpts{Splits: 1})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	counts := countsFromPairs(t, pairs)
	if counts["x"] != 150 || counts["y"] != 150 {
		t.Errorf("counts: %v", counts)
	}
}

func TestTextFileDataSplitValidation(t *testing.T) {
	exec := NewSerial(testRegistry())
	defer exec.Close()
	job := NewJob(exec)
	defer job.Close()
	if _, err := job.TextFileDataSplit([]string{"x"}, 0); err == nil {
		t.Error("zero splitBytes accepted")
	}
	if _, err := job.TextFileDataSplit(nil, 100); err == nil {
		t.Error("no files accepted")
	}
	if _, err := job.TextFileDataSplit([]string{"/does/not/exist"}, 100); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseRangeURL(t *testing.T) {
	path, start, length, err := parseRangeURL("file:///tmp/x.txt#100+50")
	if err != nil || path != "/tmp/x.txt" || start != 100 || length != 50 {
		t.Errorf("got %q %d %d %v", path, start, length, err)
	}
	for _, bad := range []string{
		"http://x#1+2", "file:///x", "file:///x#1", "file:///x#a+b", "file:///x#-1+5",
	} {
		if _, _, _, err := parseRangeURL(bad); err == nil {
			t.Errorf("parseRangeURL(%q) accepted", bad)
		}
	}
}
