package core

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/bucket"
	"repro/internal/obs"
)

// LocalExecutor runs tasks in the current process. It provides three of
// the paper's four execution modes:
//
//   - Serial: one worker, in-memory buckets. Deterministic, simplest to
//     debug.
//   - MockParallel: one worker, file-backed buckets; the work is split
//     into exactly the tasks the distributed runtime would run, and all
//     intermediate data lands in files that can be inspected.
//   - Threads: N workers, in-memory buckets. (In Python the GIL forces
//     Mrs to use processes; Go goroutines give real parallelism, so
//     this mode has no Python counterpart but the same semantics.)
//
// The fourth mode, Bypass, doesn't execute operations at all; the
// public mrs package dispatches it before a Job exists.
//
// All three modes share one asynchronous runner: an unbounded FIFO task
// queue drained by `workers` goroutines. Submit never blocks and never
// invokes the completion callback synchronously — the same contract the
// distributed master provides — so every executor drives the Job's
// pipelined DAG scheduler through the identical code path.
type LocalExecutor struct {
	env     *TaskEnv
	workers int
	ownsDir string // temp dir to remove on Close ("" if none)
	obs     *obs.Runtime

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []localTask // unbounded pending set
	started bool
	closed  bool
	wg      sync.WaitGroup
}

type localTask struct {
	spec *TaskSpec
	done func(*TaskResult, error)
}

func newLocal(env *TaskEnv, workers int, ownsDir string) *LocalExecutor {
	e := &LocalExecutor{env: env, workers: workers, ownsDir: ownsDir}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// NewSerial returns the serial executor.
func NewSerial(reg *Registry) *LocalExecutor {
	return newLocal(&TaskEnv{Store: bucket.NewMemStore(), Reg: reg}, 1, "")
}

// NewMockParallel returns the mock-parallel executor. dir receives the
// intermediate data files; if empty a temp dir is created and removed
// on Close.
func NewMockParallel(reg *Registry, dir string) (*LocalExecutor, error) {
	owns := ""
	if dir == "" {
		d, err := os.MkdirTemp("", "mrs-mock-*")
		if err != nil {
			return nil, err
		}
		dir = d
		owns = d
	}
	store, err := bucket.NewFileStore(dir, "")
	if err != nil {
		return nil, err
	}
	return newLocal(&TaskEnv{Store: store, Reg: reg, TempDir: dir}, 1, owns), nil
}

// NewThreads returns an in-process parallel executor with n workers.
func NewThreads(reg *Registry, n int) *LocalExecutor {
	if n < 1 {
		n = 1
	}
	return newLocal(&TaskEnv{Store: bucket.NewMemStore(), Reg: reg}, n, "")
}

// Store implements Executor.
func (e *LocalExecutor) Store() *bucket.Store { return e.env.Store }

// SetSpillBytes overrides the external-sort threshold (testing and the
// spill ablation bench).
func (e *LocalExecutor) SetSpillBytes(n int64) { e.env.SpillBytes = n }

// SetPrefetch sets the input-fetch window (0 = default, 1 = sequential).
// Must be called before the first Submit.
func (e *LocalExecutor) SetPrefetch(n int) { e.env.Prefetch = n }

// SetResidentBudget installs a resident dataset cache with the given
// byte budget (<= 0 removes it). Local executors are one process, so a
// "warm worker" is just process memory — but the cache still spares
// Resident iterative workloads their per-iteration store reads, and it
// lets the residency ablations run on every execution mode. Must be
// called before the first Submit.
func (e *LocalExecutor) SetResidentBudget(n int64) {
	e.env.Resident = NewResidentCache(n)
	if e.env.Resident != nil {
		e.env.Resident.SetMetrics(e.env.Obs.M())
		obs.RegisterResidentGauge(e.env.Obs.M())
	}
}

// SetCompress makes the executor's store write compressed buckets.
// Only meaningful for file-backed stores (MockParallel); memory stores
// ignore it. Must be called before the first Submit.
func (e *LocalExecutor) SetCompress(on bool) { e.env.Store.SetCompress(on) }

// SetCodec selects the registered compression codec the executor's
// store writes block-framed buckets with ("" disables block framing;
// unknown names error). Like SetCompress, only file-backed stores write
// at rest; memory stores ignore it. Must be called before the first
// Submit.
func (e *LocalExecutor) SetCodec(name string) error { return e.env.Store.SetCodec(name) }

// SetBlockEncoding selects the block encoding the executor's store
// writes block-framed buckets with ("row", "columnar",
// "columnar-raw", "columnar-dict", "columnar-delta"; "" = row).
// Unknown names error. Must be called before the first Submit.
func (e *LocalExecutor) SetBlockEncoding(name string) error {
	return e.env.Store.SetBlockEncoding(name)
}

// SetBlockSize overrides the record-block flush threshold in bytes
// (0 = default). Must be called before the first Submit.
func (e *LocalExecutor) SetBlockSize(n int) { e.env.Store.SetBlockSize(n) }

// SetObserver wires the executor into an observability runtime: worker
// start/finish events go to its tracer (lanes named worker-0..N-1), the
// task engine reports into its metrics, and a queue-depth gauge is
// registered. Must be called before the first Submit.
func (e *LocalExecutor) SetObserver(rt *obs.Runtime) {
	e.obs = rt
	e.env.Obs = rt
	e.env.Store.SetMetrics(rt.M())
	if e.env.Resident != nil {
		// Set in either order with SetResidentBudget.
		e.env.Resident.SetMetrics(rt.M())
		obs.RegisterResidentGauge(rt.M())
	}
	if e.env.Clock == nil && rt != nil {
		e.env.Clock = rt.Clk()
	}
	rt.M().SetGauge("mrs_local_queue_depth", func() int64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return int64(len(e.queue))
	})
}

// Submit implements Executor: the task joins the FIFO queue and is
// executed by one of the worker goroutines (started lazily on first
// use).
func (e *LocalExecutor) Submit(spec *TaskSpec, done func(*TaskResult, error)) {
	e.mu.Lock()
	if !e.started {
		e.started = true
		for w := 0; w < e.workers; w++ {
			e.wg.Add(1)
			go e.worker(w)
		}
	}
	e.queue = append(e.queue, localTask{spec: spec, done: done})
	e.cond.Signal()
	e.mu.Unlock()
}

// worker drains the queue until Close; the queue is fully drained even
// when Close races with late submissions, so every Submit's callback
// fires exactly once.
func (e *LocalExecutor) worker(idx int) {
	defer e.wg.Done()
	name := fmt.Sprintf("worker-%d", idx)
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		t := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()
		// Local executors run each task exactly once, so the span is
		// always attempt 1.
		e.obs.T().TaskStarted(t.spec.TraceID, 1, name)
		res, err := ExecTask(e.env, t.spec)
		if err != nil {
			e.obs.T().TaskFinished(t.spec.TraceID, 1, name, obs.Timing{}, err.Error())
		} else {
			e.obs.T().TaskFinished(t.spec.TraceID, 1, name, res.Timing, "")
		}
		t.done(res, err)
	}
}

// Free implements Executor.
func (e *LocalExecutor) Free(m *Materialized) {
	for _, name := range m.BucketNames() {
		_ = e.env.Store.Remove(name)
	}
}

// Close implements Executor: waits for in-flight and queued tasks to
// finish, then releases resources.
func (e *LocalExecutor) Close() error {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
	if e.ownsDir != "" {
		return os.RemoveAll(e.ownsDir)
	}
	return nil
}
