package core

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/bucket"
)

// LocalExecutor runs tasks in the current process. It provides three of
// the paper's four execution modes:
//
//   - Serial: one worker, in-memory buckets. Deterministic, simplest to
//     debug.
//   - MockParallel: one worker, file-backed buckets; the work is split
//     into exactly the tasks the distributed runtime would run, and all
//     intermediate data lands in files that can be inspected.
//   - Threads: N workers, in-memory buckets. (In Python the GIL forces
//     Mrs to use processes; Go goroutines give real parallelism, so
//     this mode has no Python counterpart but the same semantics.)
//
// The fourth mode, Bypass, doesn't execute operations at all; the
// public mrs package dispatches it before a Job exists.
type LocalExecutor struct {
	env     *TaskEnv
	workers int
	ownsDir string // temp dir to remove on Close ("" if none)
}

// NewSerial returns the serial executor.
func NewSerial(reg *Registry) *LocalExecutor {
	return &LocalExecutor{
		env:     &TaskEnv{Store: bucket.NewMemStore(), Reg: reg},
		workers: 1,
	}
}

// NewMockParallel returns the mock-parallel executor. dir receives the
// intermediate data files; if empty a temp dir is created and removed
// on Close.
func NewMockParallel(reg *Registry, dir string) (*LocalExecutor, error) {
	owns := ""
	if dir == "" {
		d, err := os.MkdirTemp("", "mrs-mock-*")
		if err != nil {
			return nil, err
		}
		dir = d
		owns = d
	}
	store, err := bucket.NewFileStore(dir, "")
	if err != nil {
		return nil, err
	}
	return &LocalExecutor{
		env:     &TaskEnv{Store: store, Reg: reg, TempDir: dir},
		workers: 1,
		ownsDir: owns,
	}, nil
}

// NewThreads returns an in-process parallel executor with n workers.
func NewThreads(reg *Registry, n int) *LocalExecutor {
	if n < 1 {
		n = 1
	}
	return &LocalExecutor{
		env:     &TaskEnv{Store: bucket.NewMemStore(), Reg: reg},
		workers: n,
	}
}

// Store implements Executor.
func (e *LocalExecutor) Store() *bucket.Store { return e.env.Store }

// SetSpillBytes overrides the external-sort threshold (testing and the
// spill ablation bench).
func (e *LocalExecutor) SetSpillBytes(n int64) { e.env.SpillBytes = n }

// RunOp implements Executor: it runs one task per input split, with up
// to `workers` tasks in flight.
func (e *LocalExecutor) RunOp(op *Operation, input *Materialized) (*Materialized, error) {
	if input == nil {
		return nil, fmt.Errorf("core: %s op %d has no input", op.Kind, op.Dataset)
	}
	nTasks := input.NumSplits()
	out := NewMaterialized(op.Splits, FormatKV)
	if nTasks == 0 {
		return out, nil
	}
	results := make([]*TaskResult, nTasks)
	errs := make([]error, nTasks)

	if e.workers == 1 {
		for t := 0; t < nTasks; t++ {
			results[t], errs[t] = ExecTask(e.env, &TaskSpec{
				Op:          op,
				TaskIndex:   t,
				InputURLs:   input.URLs(t),
				InputFormat: input.Format,
			})
			if errs[t] != nil {
				return nil, errs[t]
			}
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, e.workers)
		for t := 0; t < nTasks; t++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(t int) {
				defer wg.Done()
				defer func() { <-sem }()
				results[t], errs[t] = ExecTask(e.env, &TaskSpec{
					Op:          op,
					TaskIndex:   t,
					InputURLs:   input.URLs(t),
					InputFormat: input.Format,
				})
			}(t)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	// Assemble output splits in task order for determinism.
	for t := 0; t < nTasks; t++ {
		for s, d := range results[t].Outputs {
			if err := out.AddBucket(s, d); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Free implements Executor.
func (e *LocalExecutor) Free(m *Materialized) {
	for _, name := range m.BucketNames() {
		_ = e.env.Store.Remove(name)
	}
}

// Close implements Executor.
func (e *LocalExecutor) Close() error {
	if e.ownsDir != "" {
		return os.RemoveAll(e.ownsDir)
	}
	return nil
}
