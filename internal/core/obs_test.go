package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// runTracedWordCount runs the standard wordcount pipeline on a serial
// executor under a fake clock and returns the exported Chrome trace
// plus the job's cost breakdown.
func runTracedWordCount(t *testing.T) ([]byte, JobStats, *obs.Runtime) {
	t.Helper()
	clk := clock.NewFake(time.Unix(1_000_000, 0))
	rt := obs.New(clk)
	rt.StartTrace()

	exec := NewSerial(testRegistry())
	exec.SetObserver(rt)
	defer exec.Close()

	job := NewJobWith(exec, JobOptions{Pipeline: true, Obs: rt, Clock: clk})
	src, err := job.LocalData(linesAsPairs(), OpOpts{Splits: 2, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := job.MapReduce(src, "split", "sum", OpOpts{Splits: 3}, OpOpts{Splits: 3})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	checkCounts(t, pairs)

	var buf bytes.Buffer
	if err := rt.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), job.Stats(), rt
}

// TestTraceDeterministicOnFakeClock: a serial run under the fake clock
// must produce a byte-identical trace every time — timestamps come from
// the injected clock and span ordering is canonical, so goroutine
// interleaving cannot leak into the file.
func TestTraceDeterministicOnFakeClock(t *testing.T) {
	a, _, _ := runTracedWordCount(t)
	b, _, _ := runTracedWordCount(t)
	if !bytes.Equal(a, b) {
		t.Errorf("two identical runs produced different traces:\n%s\n---\n%s", a, b)
	}
	st, err := obs.ValidateChromeTrace(a)
	if err != nil {
		t.Fatalf("invalid trace: %v\n%s", err, a)
	}
	// 2 map tasks (one per input split) + 3 reduce tasks, each a single
	// attempt on the serial executor's one worker lane.
	if st.Spans != 5 || st.Workers != 1 || st.MaxAttempt != 1 || st.Errors != 0 {
		t.Errorf("trace stats = %+v, want 5 spans / 1 worker / max attempt 1", st)
	}
}

// TestJobStatsAndMetrics checks that the span count, the metrics
// counters, and Job.Stats agree on how much work ran.
func TestJobStatsAndMetrics(t *testing.T) {
	trace, stats, rt := runTracedWordCount(t)
	st, err := obs.ValidateChromeTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	if int64(st.Spans) != stats.Tasks {
		t.Errorf("trace has %d spans but Job.Stats counts %d tasks", st.Spans, stats.Tasks)
	}
	if got := rt.M().Get("mrs_tasks_submitted_total"); got != stats.Tasks {
		t.Errorf("mrs_tasks_submitted_total = %d, want %d", got, stats.Tasks)
	}
	if got := rt.M().Get("mrs_tasks_executed_total"); got != stats.Tasks {
		t.Errorf("mrs_tasks_executed_total = %d, want %d", got, stats.Tasks)
	}
	if len(stats.Ops) != 2 {
		t.Fatalf("got %d ops, want map + reduce: %+v", len(stats.Ops), stats.Ops)
	}
	wantTasks := map[string]int64{"map": 2, "reduce": 3} // maps: one per input split
	var wall, parts int64
	for _, op := range stats.Ops {
		if op.Tasks != wantTasks[op.Kind] {
			t.Errorf("op %s/%s ran %d tasks, want %d", op.Kind, op.Func, op.Tasks, wantTasks[op.Kind])
		}
		if op.OutRecords == 0 || op.OutBytes == 0 {
			t.Errorf("op %s/%s reported no output: %+v", op.Kind, op.Func, op)
		}
		wall += op.WallNS
		parts += op.ScheduleNS + op.ComputeNS + op.ShuffleNS
	}
	if wall != stats.WallNS {
		t.Errorf("op wall sum %d != job wall %d", wall, stats.WallNS)
	}
	if parts != wall {
		t.Errorf("schedule+compute+shuffle = %d, want wall %d", parts, wall)
	}
	// The reduce stage read the map stage's buckets through the store,
	// so some shuffle bytes were classified (serial store = local).
	if got := rt.M().Get("mrs_shuffle_bytes_local_total"); got == 0 {
		t.Error("mrs_shuffle_bytes_local_total = 0, want > 0")
	}
}
