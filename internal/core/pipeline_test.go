package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/kvio"
)

// TestPipelineUnboundedQueue proves the DAG runner's pending set is
// unbounded: the old driver's bounded queue (capacity 1024) deadlocked
// any program that queued more operations ahead than that.
func TestPipelineUnboundedQueue(t *testing.T) {
	exec := NewThreads(testRegistry(), 4)
	defer exec.Close()
	job := NewJob(exec)
	ds, err := job.LocalData([]kvio.Pair{{Key: []byte("k"), Value: []byte("v")}}, OpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	const chain = 1500 // > the old 1024-slot queue
	for i := 0; i < chain; i++ {
		ds, err = job.Map(ds, "identity", OpOpts{})
		if err != nil {
			t.Fatalf("queueing op %d: %v", i, err)
		}
	}
	pairs, err := ds.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || string(pairs[0].Key) != "k" || string(pairs[0].Value) != "v" {
		t.Fatalf("chain output = %v", pairs)
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNarrowDecision checks which queued reduces the scheduler treats
// as narrow (split-aligned).
func TestNarrowDecision(t *testing.T) {
	reg := testRegistry()
	reg.RegisterReduce("first", func(key []byte, values [][]byte, emit kvio.Emitter) error {
		return emit.Emit(key, values[0])
	})
	exec := NewSerial(reg)
	defer exec.Close()
	job := NewJob(exec)
	src, err := job.LocalData(linesAsPairs(), OpOpts{Splits: 2, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := job.Map(src, "split", OpOpts{Splits: 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		queue  func() (*Dataset, error)
		narrow bool
	}{
		{"aligned-hash", func() (*Dataset, error) {
			return job.Reduce(mapped, "first", OpOpts{Splits: 3, KeyAligned: true})
		}, true},
		{"no-promise", func() (*Dataset, error) {
			return job.Reduce(mapped, "first", OpOpts{Splits: 3})
		}, false},
		{"split-mismatch", func() (*Dataset, error) {
			return job.Reduce(mapped, "first", OpOpts{Splits: 2, KeyAligned: true})
		}, false},
		{"serial-partitioner-input", func() (*Dataset, error) {
			// src is roundrobin-partitioned: not key-pure, so keys of
			// split s are not guaranteed to re-partition back to s.
			return job.Reduce(src, "first", OpOpts{Splits: 2, KeyAligned: true})
		}, false},
	}
	for _, tc := range cases {
		ds, err := tc.queue()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		job.mu.Lock()
		narrow := job.states[ds.ID()].narrow
		job.mu.Unlock()
		if narrow != tc.narrow {
			t.Errorf("%s: narrow = %v, want %v", tc.name, narrow, tc.narrow)
		}
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNarrowEnforcement: a reduce that breaks its KeyAligned promise by
// re-keying must fail its task instead of silently scattering records
// downstream tasks were told would stay aligned.
func TestNarrowEnforcement(t *testing.T) {
	reg := testRegistry()
	reg.RegisterReduce("rekey", func(key []byte, values [][]byte, emit kvio.Emitter) error {
		return emit.Emit([]byte("all"), values[0])
	})
	exec := NewThreads(reg, 2)
	defer exec.Close()
	job := NewJob(exec)
	src, err := job.LocalData(linesAsPairs(), OpOpts{Splits: 2, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := job.Map(src, "split", OpOpts{Splits: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := job.Reduce(mapped, "rekey", OpOpts{Splits: 4, KeyAligned: true})
	if err != nil {
		t.Fatal(err)
	}
	err = out.Wait()
	if err == nil || !strings.Contains(err.Error(), "not its own split") {
		t.Errorf("Wait err = %v, want alignment violation", err)
	}
	if job.Close() == nil {
		t.Error("job should report failure")
	}
}

// TestFreeNonBlocking: Free on a dataset whose consumer is still
// running must return immediately (recording intent), keep the storage
// alive until the consumer finishes, and release it afterwards.
func TestFreeNonBlocking(t *testing.T) {
	reg := testRegistry()
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	reg.RegisterMap("gate", func(key, value []byte, emit kvio.Emitter) error {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return emit.Emit(key, value)
	})
	exec := NewSerial(reg)
	defer exec.Close()
	job := NewJob(exec)
	src, err := job.LocalData(linesAsPairs(), OpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	srcMat, err := job.wait(src.ID()) // sources materialize at enqueue
	if err != nil {
		t.Fatal(err)
	}
	srcURL := srcMat.URLs(0)[0]
	gated, err := job.Map(src, "gate", OpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the consumer task is now running against src's buckets

	freed := make(chan struct{})
	go func() {
		_ = src.Free()
		close(freed)
	}()
	select {
	case <-freed:
	case <-time.After(5 * time.Second):
		t.Fatal("Free blocked on a still-consumed dataset")
	}
	// Storage must survive until the consumer completes.
	if rc, err := exec.Store().Open(srcURL); err != nil {
		t.Fatalf("src bucket released while consumer running: %v", err)
	} else {
		rc.Close()
	}
	close(release)
	if err := gated.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	// Consumer done and job drained: the deferred free must have fired.
	if rc, err := exec.Store().Open(srcURL); err == nil {
		rc.Close()
		t.Error("src bucket still readable after deferred free")
	}
	// Collect on a freed dataset fails deterministically.
	if _, err := src.Collect(); err == nil {
		t.Error("Collect succeeded on freed dataset")
	}
	// The consumer's own output is unaffected.
	if _, err := gated.Collect(); err != nil {
		t.Errorf("consumer Collect: %v", err)
	}
}

// TestBarrieredAblationAgrees: the Pipeline=false ablation must produce
// byte-identical output to the pipelined default.
func TestBarrieredAblationAgrees(t *testing.T) {
	run := func(opts JobOptions) []kvio.Pair {
		exec := NewThreads(testRegistry(), 4)
		defer exec.Close()
		job := NewJobWith(exec, opts)
		src, err := job.LocalData(linesAsPairs(), OpOpts{Splits: 2, Partition: "roundrobin"})
		if err != nil {
			t.Fatal(err)
		}
		ds, err := job.Map(src, "split", OpOpts{Splits: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			ds, err = job.Reduce(ds, "sum", OpOpts{Splits: 3, KeyAligned: true})
			if err != nil {
				t.Fatal(err)
			}
		}
		pairs, err := ds.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Close(); err != nil {
			t.Fatal(err)
		}
		return pairs
	}
	pipelined := run(JobOptions{Pipeline: true})
	barriered := run(JobOptions{Pipeline: false})
	if len(pipelined) != len(barriered) {
		t.Fatalf("record counts differ: %d vs %d", len(pipelined), len(barriered))
	}
	for i := range pipelined {
		if !bytes.Equal(pipelined[i].Key, barriered[i].Key) || !bytes.Equal(pipelined[i].Value, barriered[i].Value) {
			t.Fatalf("record %d differs: %v vs %v", i, pipelined[i], barriered[i])
		}
	}
	checkCounts(t, pipelined)
}

// TestCollectParallelPreservesOrder: the bounded-pool Collect must
// return exactly the sequential per-split concatenation.
func TestCollectParallelPreservesOrder(t *testing.T) {
	exec := NewThreads(testRegistry(), 4)
	defer exec.Close()
	job := NewJob(exec)
	src, err := job.LocalData(linesAsPairs(), OpOpts{Splits: 3, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := job.MapReduce(src, "split", "sum", OpOpts{Splits: 5}, OpOpts{Splits: 20})
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	m, err := job.wait(out.ID())
	if err != nil {
		t.Fatal(err)
	}
	var want []kvio.Pair
	for s := range m.Splits {
		pairs, err := exec.Store().ReadAllMulti(m.URLs(s))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, pairs...)
	}
	if len(got) != len(want) {
		t.Fatalf("Collect returned %d records, sequential read %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("record %d out of order: %q vs %q", i, got[i].Key, want[i].Key)
		}
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
}
