package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/codec"
	"repro/internal/kvio"
)

// testRegistry builds a registry with wordcount-style functions plus a
// few pathological ones for error paths.
func testRegistry() *Registry {
	reg := NewRegistry()
	reg.RegisterMap("split", func(key, value []byte, emit kvio.Emitter) error {
		for _, w := range strings.Fields(string(value)) {
			if err := emit.Emit([]byte(w), codec.EncodeVarint(1)); err != nil {
				return err
			}
		}
		return nil
	})
	reg.RegisterReduce("sum", func(key []byte, values [][]byte, emit kvio.Emitter) error {
		var total int64
		for _, v := range values {
			n, err := codec.DecodeVarint(v)
			if err != nil {
				return err
			}
			total += n
		}
		return emit.Emit(key, codec.EncodeVarint(total))
	})
	reg.RegisterMap("identity", func(key, value []byte, emit kvio.Emitter) error {
		return emit.Emit(key, value)
	})
	reg.RegisterMap("boom", func(key, value []byte, emit kvio.Emitter) error {
		return fmt.Errorf("map exploded")
	})
	reg.RegisterReduce("boomr", func(key []byte, values [][]byte, emit kvio.Emitter) error {
		return fmt.Errorf("reduce exploded")
	})
	return reg
}

var corpusLines = []string{
	"the quick brown fox",
	"the lazy dog",
	"the fox jumps over the lazy dog",
	"quick quick quick",
}

// wantCounts is the reference WordCount answer for corpusLines.
var wantCounts = map[string]int64{
	"the": 4, "quick": 4, "brown": 1, "fox": 2,
	"lazy": 2, "dog": 2, "jumps": 1, "over": 1,
}

func linesAsPairs() []kvio.Pair {
	pairs := make([]kvio.Pair, len(corpusLines))
	for i, l := range corpusLines {
		pairs[i] = kvio.Pair{Key: codec.EncodeVarint(int64(i + 1)), Value: []byte(l)}
	}
	return pairs
}

func countsFromPairs(t *testing.T, pairs []kvio.Pair) map[string]int64 {
	t.Helper()
	got := map[string]int64{}
	for _, p := range pairs {
		n, err := codec.DecodeVarint(p.Value)
		if err != nil {
			t.Fatalf("bad count for %q: %v", p.Key, err)
		}
		got[string(p.Key)] += n
	}
	return got
}

func runWordCount(t *testing.T, exec Executor, mapSplits, reduceSplits int, combine string) []kvio.Pair {
	t.Helper()
	job := NewJob(exec)
	src, err := job.LocalData(linesAsPairs(), OpOpts{Splits: 2, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := job.MapReduce(src, "split", "sum",
		OpOpts{Splits: mapSplits, Combine: combine},
		OpOpts{Splits: reduceSplits})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	return pairs
}

func checkCounts(t *testing.T, pairs []kvio.Pair) {
	t.Helper()
	got := countsFromPairs(t, pairs)
	if len(got) != len(wantCounts) {
		t.Errorf("got %d distinct words, want %d: %v", len(got), len(wantCounts), got)
	}
	for w, n := range wantCounts {
		if got[w] != n {
			t.Errorf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
}

func TestWordCountSerial(t *testing.T) {
	exec := NewSerial(testRegistry())
	defer exec.Close()
	checkCounts(t, runWordCount(t, exec, 3, 3, ""))
}

func TestWordCountSerialWithCombiner(t *testing.T) {
	exec := NewSerial(testRegistry())
	defer exec.Close()
	pairs := runWordCount(t, exec, 3, 3, "sum")
	checkCounts(t, pairs)
	// With the combiner the reduce output must still be one record per
	// word (8 words).
	if len(pairs) != len(wantCounts) {
		t.Errorf("got %d records, want %d", len(pairs), len(wantCounts))
	}
}

func TestWordCountMockParallel(t *testing.T) {
	dir := t.TempDir()
	exec, err := NewMockParallel(testRegistry(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	checkCounts(t, runWordCount(t, exec, 3, 3, ""))
	// Mock parallel must leave inspectable intermediate files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Error("mock parallel left no intermediate files")
	}
}

func TestPerOpDataPlanePins(t *testing.T) {
	// One operation pins its output buckets to columnar-dict over lz
	// while the store keeps its legacy default: the pinned dataset's
	// files must be columnar at rest, every other dataset legacy, and
	// the answers unchanged.
	dir := t.TempDir()
	exec, err := NewMockParallel(testRegistry(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	job := NewJob(exec)
	src, err := job.LocalData(linesAsPairs(), OpOpts{Splits: 3, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := job.MapReduce(src, "split", "sum",
		OpOpts{Splits: 4, Codec: "lz", BlockEncoding: "columnar-dict"},
		OpOpts{Splits: 2})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	checkCounts(t, pairs)

	var columnar, plain int
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		if strings.HasSuffix(path, ".mrc.lz") {
			columnar++
		} else {
			plain++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if columnar == 0 {
		t.Error("pinned map op left no columnar at-rest files")
	}
	if plain == 0 {
		t.Error("unpinned datasets left no legacy files; pin leaked store-wide")
	}
}

func TestWordCountThreads(t *testing.T) {
	exec := NewThreads(testRegistry(), 4)
	defer exec.Close()
	checkCounts(t, runWordCount(t, exec, 5, 3, "sum"))
}

func TestAllExecutorsAgreeExactly(t *testing.T) {
	// The paper's debugging invariant: every implementation produces
	// identical answers. Compare the full sorted record streams.
	collect := func(exec Executor) []kvio.Pair {
		job := NewJob(exec)
		src, err := job.LocalData(linesAsPairs(), OpOpts{Splits: 3, Partition: "roundrobin"})
		if err != nil {
			t.Fatal(err)
		}
		out, err := job.MapReduce(src, "split", "sum", OpOpts{Splits: 4, Combine: "sum"}, OpOpts{Splits: 2})
		if err != nil {
			t.Fatal(err)
		}
		pairs, err := out.CollectSorted()
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Close(); err != nil {
			t.Fatal(err)
		}
		exec.Close()
		return pairs
	}
	mock, err := NewMockParallel(testRegistry(), "")
	if err != nil {
		t.Fatal(err)
	}
	serial := collect(NewSerial(testRegistry()))
	mockP := collect(mock)
	threads := collect(NewThreads(testRegistry(), 8))
	for name, other := range map[string][]kvio.Pair{"mock": mockP, "threads": threads} {
		if len(other) != len(serial) {
			t.Fatalf("%s: %d records vs serial %d", name, len(other), len(serial))
		}
		for i := range serial {
			if !bytes.Equal(serial[i].Key, other[i].Key) || !bytes.Equal(serial[i].Value, other[i].Value) {
				t.Errorf("%s: record %d differs: %v vs %v", name, i, other[i], serial[i])
			}
		}
	}
}

func TestTextFileData(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i, content := range []string{
		"the quick brown fox\nthe lazy dog\n",
		"the fox jumps over the lazy dog\nquick quick quick",
	} {
		p := filepath.Join(dir, fmt.Sprintf("doc%d.txt", i))
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	exec := NewSerial(testRegistry())
	defer exec.Close()
	job := NewJob(exec)
	src, err := job.TextFileData(paths)
	if err != nil {
		t.Fatal(err)
	}
	if src.NumSplits() != 2 {
		t.Errorf("NumSplits = %d, want 2", src.NumSplits())
	}
	out, err := job.MapReduce(src, "split", "sum", OpOpts{Splits: 2}, OpOpts{Splits: 2})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, pairs)
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIterativeChaining(t *testing.T) {
	// Queue a chain of identity maps (an "iterative" program) before
	// waiting on anything; the final result must survive the pipeline.
	exec := NewThreads(testRegistry(), 4)
	defer exec.Close()
	job := NewJob(exec)
	ds, err := job.LocalData([]kvio.Pair{kvio.StrPair("k", "v")}, OpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		ds, err = job.Map(ds, "identity", OpOpts{Splits: 2})
		if err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := ds.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || string(pairs[0].Key) != "k" || string(pairs[0].Value) != "v" {
		t.Errorf("after 25 iterations got %v", pairs)
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeReleasesStorage(t *testing.T) {
	exec := NewSerial(testRegistry())
	defer exec.Close()
	job := NewJob(exec)
	defer job.Close()
	ds, err := job.LocalData([]kvio.Pair{kvio.StrPair("a", "b")}, OpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := job.Map(ds, "identity", OpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mapped.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Free(); err != nil {
		t.Fatal(err)
	}
	// The freed dataset is gone; collecting it must now fail.
	if _, err := ds.Collect(); err == nil {
		t.Error("Collect succeeded on freed dataset")
	}
	// But the downstream dataset is intact.
	pairs, err := mapped.Collect()
	if err != nil || len(pairs) != 1 {
		t.Errorf("downstream dataset affected by Free: %v, %v", pairs, err)
	}
}

func TestMapErrorPropagates(t *testing.T) {
	exec := NewSerial(testRegistry())
	defer exec.Close()
	job := NewJob(exec)
	ds, _ := job.LocalData([]kvio.Pair{kvio.StrPair("a", "b")}, OpOpts{})
	bad, err := job.Map(ds, "boom", OpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Wait(); err == nil || !strings.Contains(err.Error(), "map exploded") {
		t.Errorf("Wait err = %v, want map exploded", err)
	}
	// Downstream ops are skipped, and the job reports failure.
	after, err := job.Map(bad, "identity", OpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := after.Wait(); err == nil {
		t.Error("downstream dataset did not fail")
	}
	if err := job.Close(); err == nil {
		t.Error("job.Close did not report failure")
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	exec := NewSerial(testRegistry())
	defer exec.Close()
	job := NewJob(exec)
	defer job.Close()
	ds, _ := job.LocalData([]kvio.Pair{kvio.StrPair("a", "b")}, OpOpts{})
	bad, err := job.Reduce(ds, "boomr", OpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Wait(); err == nil || !strings.Contains(err.Error(), "reduce exploded") {
		t.Errorf("Wait err = %v", err)
	}
}

func TestUnregisteredFunction(t *testing.T) {
	exec := NewSerial(testRegistry())
	defer exec.Close()
	job := NewJob(exec)
	defer job.Close()
	ds, _ := job.LocalData([]kvio.Pair{kvio.StrPair("a", "b")}, OpOpts{})
	bad, err := job.Map(ds, "no-such-map", OpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Wait(); err == nil {
		t.Error("expected unregistered function error")
	}
}

func TestQueueValidation(t *testing.T) {
	exec := NewSerial(testRegistry())
	defer exec.Close()
	job := NewJob(exec)
	defer job.Close()
	if _, err := job.TextFileData(nil); err == nil {
		t.Error("TextFileData(nil) should fail validation")
	}
	ds, _ := job.LocalData(nil, OpOpts{})
	if _, err := job.Map(ds, "", OpOpts{}); err == nil {
		t.Error("Map with empty name should fail validation")
	}
}

func TestQueueAfterClose(t *testing.T) {
	exec := NewSerial(testRegistry())
	defer exec.Close()
	job := NewJob(exec)
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := job.LocalData(nil, OpOpts{}); err == nil {
		t.Error("queueing after Close should fail")
	}
}

func TestEmptyInput(t *testing.T) {
	exec := NewSerial(testRegistry())
	defer exec.Close()
	job := NewJob(exec)
	defer job.Close()
	ds, err := job.LocalData(nil, OpOpts{Splits: 3})
	if err != nil {
		t.Fatal(err)
	}
	out, err := job.MapReduce(ds, "split", "sum", OpOpts{}, OpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Errorf("empty input produced %v", pairs)
	}
}

func TestRegistryErrors(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Map("x", nil); err == nil {
		t.Error("expected error for missing map")
	}
	if _, err := reg.Reduce("x", nil); err == nil {
		t.Error("expected error for missing reduce")
	}
	reg.RegisterMap("m", func(k, v []byte, e kvio.Emitter) error { return nil })
	reg.RegisterReduce("r", func(k []byte, vs [][]byte, e kvio.Emitter) error { return nil })
	maps, reduces := reg.Names()
	if len(maps) != 1 || maps[0] != "m" || len(reduces) != 1 || reduces[0] != "r" {
		t.Errorf("Names = %v, %v", maps, reduces)
	}
}

func TestCombinerKeyChangeRejected(t *testing.T) {
	reg := testRegistry()
	reg.RegisterReduce("keychanger", func(key []byte, values [][]byte, emit kvio.Emitter) error {
		return emit.Emit([]byte("different"), values[0])
	})
	exec := NewSerial(reg)
	defer exec.Close()
	job := NewJob(exec)
	defer job.Close()
	ds, _ := job.LocalData([]kvio.Pair{kvio.StrPair("a", "b")}, OpOpts{})
	out, err := job.Map(ds, "identity", OpOpts{Combine: "keychanger"})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Wait(); err == nil || !strings.Contains(err.Error(), "combiner changed key") {
		t.Errorf("Wait err = %v, want combiner key error", err)
	}
}

func TestSpillingExecutorMatchesDefault(t *testing.T) {
	mk := func(spill int64) []kvio.Pair {
		exec, err := NewMockParallel(testRegistry(), "")
		if err != nil {
			t.Fatal(err)
		}
		defer exec.Close()
		exec.SetSpillBytes(spill)
		return runWordCount(t, exec, 2, 2, "")
	}
	a := mk(0)  // default, no spills at this size
	b := mk(32) // spill constantly
	ga, gb := countsFromPairs(t, a), countsFromPairs(t, b)
	if len(ga) != len(gb) {
		t.Fatalf("different word sets: %v vs %v", ga, gb)
	}
	for k, v := range ga {
		if gb[k] != v {
			t.Errorf("count[%q]: %d vs %d", k, v, gb[k])
		}
	}
}

func TestOperationValidate(t *testing.T) {
	cases := []struct {
		op Operation
		ok bool
	}{
		{Operation{Kind: OpLocal, Input: -1, Splits: 1}, true},
		{Operation{Kind: OpLocal, Input: -1, Splits: 0}, false},
		{Operation{Kind: OpFile, Input: -1, Splits: 1, Paths: []string{"x"}}, true},
		{Operation{Kind: OpFile, Input: -1, Splits: 1}, false},
		{Operation{Kind: OpMap, Input: 0, Splits: 1, FuncName: "m"}, true},
		{Operation{Kind: OpMap, Input: -1, Splits: 1, FuncName: "m"}, false},
		{Operation{Kind: OpMap, Input: 0, Splits: 1}, false},
		{Operation{Kind: OpReduce, Input: 0, Splits: 1, FuncName: "r"}, true},
		{Operation{Kind: OpKind(99), Splits: 1}, false},
	}
	for i, c := range cases {
		err := c.op.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{OpLocal: "local", OpFile: "file", OpMap: "map", OpReduce: "reduce"} {
		if k.String() != want {
			t.Errorf("OpKind %d String = %q", int(k), k.String())
		}
	}
	if !strings.Contains(OpKind(42).String(), "42") {
		t.Error("unknown OpKind String should include the number")
	}
}

func BenchmarkWordCountSerial(b *testing.B) {
	exec := NewSerial(testRegistry())
	defer exec.Close()
	for i := 0; i < b.N; i++ {
		job := NewJob(exec)
		src, _ := job.LocalData(linesAsPairs(), OpOpts{Splits: 2, Partition: "roundrobin"})
		out, _ := job.MapReduce(src, "split", "sum", OpOpts{Combine: "sum"}, OpOpts{})
		if _, err := out.Collect(); err != nil {
			b.Fatal(err)
		}
		job.Close()
	}
}

func BenchmarkIterationOverheadThreads(b *testing.B) {
	// Per-iteration overhead of the in-process pipeline: one identity
	// map + collect per iteration, minimal data. This is the Go
	// analogue of the paper's 0.3 s/iteration Mrs measurement.
	exec := NewThreads(testRegistry(), 4)
	defer exec.Close()
	job := NewJob(exec)
	defer job.Close()
	ds, _ := job.LocalData([]kvio.Pair{kvio.StrPair("k", "v")}, OpOpts{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		ds, err = job.Map(ds, "identity", OpOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if err := ds.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMapFactoryReceivesParams(t *testing.T) {
	reg := testRegistry()
	reg.RegisterMapFactory("tagger", func(params []byte) (MapFunc, error) {
		tag := append([]byte(nil), params...)
		return func(key, value []byte, emit kvio.Emitter) error {
			return emit.Emit(key, tag)
		}, nil
	})
	exec := NewSerial(reg)
	defer exec.Close()
	job := NewJob(exec)
	defer job.Close()
	ds, _ := job.LocalData([]kvio.Pair{kvio.StrPair("k", "v")}, OpOpts{})
	out, err := job.Map(ds, "tagger", OpOpts{Params: []byte("iteration-7")})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || string(pairs[0].Value) != "iteration-7" {
		t.Errorf("got %v", pairs)
	}
}

func TestReduceFactoryReceivesParams(t *testing.T) {
	reg := testRegistry()
	reg.RegisterReduceFactory("threshold", func(params []byte) (ReduceFunc, error) {
		min, err := codec.DecodeVarint(params)
		if err != nil {
			return nil, err
		}
		return func(key []byte, values [][]byte, emit kvio.Emitter) error {
			if int64(len(values)) >= min {
				return emit.Emit(key, codec.EncodeVarint(int64(len(values))))
			}
			return nil
		}, nil
	})
	exec := NewSerial(reg)
	defer exec.Close()
	job := NewJob(exec)
	defer job.Close()
	ds, _ := job.LocalData([]kvio.Pair{
		kvio.StrPair("a", "1"), kvio.StrPair("a", "2"), kvio.StrPair("b", "3"),
	}, OpOpts{})
	out, err := job.Reduce(ds, "threshold", OpOpts{Params: codec.EncodeVarint(2)})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || string(pairs[0].Key) != "a" {
		t.Errorf("threshold reduce got %v", pairs)
	}
}

func TestFactoryErrorPropagates(t *testing.T) {
	reg := testRegistry()
	reg.RegisterMapFactory("bad", func(params []byte) (MapFunc, error) {
		return nil, fmt.Errorf("cannot build from %q", params)
	})
	exec := NewSerial(reg)
	defer exec.Close()
	job := NewJob(exec)
	defer job.Close()
	ds, _ := job.LocalData([]kvio.Pair{kvio.StrPair("k", "v")}, OpOpts{})
	out, err := job.Map(ds, "bad", OpOpts{Params: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Wait(); err == nil || !strings.Contains(err.Error(), "cannot build") {
		t.Errorf("Wait err = %v", err)
	}
}

func TestPlainRegistrationShadowsFactory(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterMap("f", func(k, v []byte, e kvio.Emitter) error { return e.Emit(k, []byte("plain")) })
	reg.RegisterMapFactory("f", func(params []byte) (MapFunc, error) {
		return func(k, v []byte, e kvio.Emitter) error { return e.Emit(k, []byte("factory")) }, nil
	})
	fn, err := reg.Map("f", nil)
	if err != nil {
		t.Fatal(err)
	}
	var e kvio.SliceEmitter
	fn(nil, nil, &e)
	if string(e.Pairs[0].Value) != "plain" {
		t.Error("factory shadowed plain registration")
	}
}

func TestDatasetStats(t *testing.T) {
	exec := NewSerial(testRegistry())
	defer exec.Close()
	job := NewJob(exec)
	defer job.Close()
	src, err := job.LocalData(linesAsPairs(), OpOpts{Splits: 2, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := job.Map(src, "split", OpOpts{Splits: 3})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := mapped.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Splits != 3 {
		t.Errorf("Splits = %d", stats.Splits)
	}
	if stats.Buckets != 6 { // 2 tasks x 3 splits
		t.Errorf("Buckets = %d", stats.Buckets)
	}
	var want int64
	for _, n := range wantCounts {
		want += n
	}
	if stats.Records != want {
		t.Errorf("Records = %d, want %d (total tokens)", stats.Records, want)
	}
	if stats.Bytes == 0 {
		t.Error("Bytes = 0")
	}
}

func TestCombinerShrinksIntermediateData(t *testing.T) {
	// Measurable effect of the combiner: fewer intermediate records.
	measure := func(combine string) int64 {
		exec := NewSerial(testRegistry())
		defer exec.Close()
		job := NewJob(exec)
		defer job.Close()
		src, _ := job.LocalData(linesAsPairs(), OpOpts{Splits: 2, Partition: "roundrobin"})
		mapped, err := job.Map(src, "split", OpOpts{Splits: 2, Combine: combine})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := mapped.Stats()
		if err != nil {
			t.Fatal(err)
		}
		return stats.Records
	}
	with, without := measure("sum"), measure("")
	if with >= without {
		t.Errorf("combiner did not shrink data: %d vs %d records", with, without)
	}
}

func TestDAGFanOut(t *testing.T) {
	// Two independent consumers of the same dataset: both must see it.
	exec := NewThreads(testRegistry(), 4)
	defer exec.Close()
	job := NewJob(exec)
	defer job.Close()
	src, err := job.LocalData(linesAsPairs(), OpOpts{Splits: 2, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	a, err := job.MapReduce(src, "split", "sum", OpOpts{Splits: 2}, OpOpts{Splits: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := job.Map(src, "identity", OpOpts{Splits: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, mustCollect(t, a))
	ident := mustCollect(t, b)
	if len(ident) != len(corpusLines) {
		t.Errorf("identity branch lost records: %d", len(ident))
	}
}

func mustCollect(t *testing.T, d *Dataset) []kvio.Pair {
	t.Helper()
	pairs, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}
