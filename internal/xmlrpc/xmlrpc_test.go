package xmlrpc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTripValue(t *testing.T, v any) any {
	t.Helper()
	data, err := MarshalResponse(v)
	if err != nil {
		t.Fatalf("marshal %v: %v", v, err)
	}
	got, err := UnmarshalResponse(data)
	if err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	return got
}

func TestScalarRoundTrips(t *testing.T) {
	cases := []any{
		int64(0), int64(-42), int64(1 << 40),
		true, false,
		"hello", "", "with <xml> & entities", "unicode: π≈3.14159",
		3.14159, -1e300, 0.0,
	}
	for _, v := range cases {
		got := roundTripValue(t, v)
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip %#v -> %#v", v, got)
		}
	}
}

func TestIntNormalization(t *testing.T) {
	// Plain int marshals as <int> and comes back int64.
	got := roundTripValue(t, 7)
	if got != int64(7) {
		t.Errorf("got %#v, want int64(7)", got)
	}
}

func TestBase64RoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		got := roundTripValue(t, b)
		gb, ok := got.([]byte)
		if !ok {
			return false
		}
		if len(gb) == 0 && len(b) == 0 {
			return true
		}
		return reflect.DeepEqual(gb, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		if !isValidXMLText(s) {
			return true // XML cannot carry arbitrary control bytes
		}
		return roundTripValue(t, s) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// isValidXMLText reports whether s survives XML 1.0 encoding.
func isValidXMLText(s string) bool {
	for _, r := range s {
		if r == 0x09 || r == 0x0A || r == 0x0D {
			continue
		}
		if r < 0x20 || r == 0xFFFD || r == 0xFFFE || r == 0xFFFF {
			return false
		}
	}
	return true
}

func TestArrayRoundTrip(t *testing.T) {
	v := []any{int64(1), "two", 3.0, true, []any{int64(4)}}
	got := roundTripValue(t, v)
	if !reflect.DeepEqual(got, v) {
		t.Errorf("got %#v, want %#v", got, v)
	}
}

func TestEmptyArray(t *testing.T) {
	got := roundTripValue(t, []any{})
	if arr, ok := got.([]any); !ok || len(arr) != 0 {
		t.Errorf("got %#v", got)
	}
}

func TestStringSliceMarshalsAsArray(t *testing.T) {
	got := roundTripValue(t, []string{"a", "b"})
	want := []any{"a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %#v, want %#v", got, want)
	}
}

func TestStructRoundTrip(t *testing.T) {
	v := map[string]any{
		"id":     int64(7),
		"name":   "task",
		"urls":   []any{"http://a", "http://b"},
		"nested": map[string]any{"x": 1.5},
		"flag":   true,
	}
	got := roundTripValue(t, v)
	if !reflect.DeepEqual(got, v) {
		t.Errorf("got %#v, want %#v", got, v)
	}
}

func TestNilMarshalsAsEmptyString(t *testing.T) {
	got := roundTripValue(t, nil)
	if got != "" {
		t.Errorf("got %#v, want empty string", got)
	}
}

func TestUnsupportedType(t *testing.T) {
	if _, err := MarshalResponse(struct{}{}); err == nil {
		t.Error("expected error for unsupported type")
	}
}

func TestCallRoundTrip(t *testing.T) {
	data, err := MarshalCall("task_done", []any{int64(3), "ok", []any{"u1", "u2"}})
	if err != nil {
		t.Fatal(err)
	}
	method, args, err := UnmarshalCall(data)
	if err != nil {
		t.Fatal(err)
	}
	if method != "task_done" {
		t.Errorf("method = %q", method)
	}
	want := []any{int64(3), "ok", []any{"u1", "u2"}}
	if !reflect.DeepEqual(args, want) {
		t.Errorf("args = %#v, want %#v", args, want)
	}
}

func TestCallNoArgs(t *testing.T) {
	data, err := MarshalCall("ping", nil)
	if err != nil {
		t.Fatal(err)
	}
	method, args, err := UnmarshalCall(data)
	if err != nil || method != "ping" || len(args) != 0 {
		t.Errorf("method=%q args=%v err=%v", method, args, err)
	}
}

func TestFaultRoundTrip(t *testing.T) {
	data, err := MarshalFault(&Fault{Code: 42, Message: "boom <&>"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = UnmarshalResponse(data)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("got %v, want *Fault", err)
	}
	if f.Code != 42 || f.Message != "boom <&>" {
		t.Errorf("fault = %+v", f)
	}
}

func TestPythonInteropFormats(t *testing.T) {
	// Accept documents in the exact shapes CPython's xmlrpc.client
	// produces: i4 tags, untyped <value> strings, whitespace.
	doc := `<?xml version="1.0"?>
<methodResponse>
  <params>
    <param>
      <value><array><data>
        <value><i4>12</i4></value>
        <value>bare string</value>
        <value><boolean>1</boolean></value>
        <value><double>2.5</double></value>
      </data></array></value>
    </param>
  </params>
</methodResponse>`
	got, err := UnmarshalResponse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := []any{int64(12), "bare string", true, 2.5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %#v, want %#v", got, want)
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	srv := NewServer()
	srv.Register("echo", func(args []any) (any, error) {
		return args, nil
	})
	srv.Register("add", func(args []any) (any, error) {
		a, ok1 := args[0].(int64)
		b, ok2 := args[1].(int64)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("add wants two ints")
		}
		return a + b, nil
	})
	srv.Register("fail", func(args []any) (any, error) {
		return nil, &Fault{Code: 99, Message: "deliberate"}
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	sum, err := c.Call("add", int64(2), int64(40))
	if err != nil {
		t.Fatal(err)
	}
	if sum != int64(42) {
		t.Errorf("add = %v", sum)
	}

	echoed, err := c.Call("echo", "x", int64(1), true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(echoed, []any{"x", int64(1), true}) {
		t.Errorf("echo = %#v", echoed)
	}

	_, err = c.Call("fail")
	var f *Fault
	if !errors.As(err, &f) || f.Code != 99 {
		t.Errorf("fail call: %v", err)
	}

	_, err = c.Call("nosuchmethod")
	if !errors.As(err, &f) || f.Code != -32601 {
		t.Errorf("missing method: %v", err)
	}
}

func TestServerErrorBecomesFault(t *testing.T) {
	srv := NewServer()
	srv.Register("oops", func(args []any) (any, error) {
		return nil, errors.New("plain error")
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	_, err := NewClient(ts.URL).Call("oops")
	var f *Fault
	if !errors.As(err, &f) || !strings.Contains(f.Message, "plain error") {
		t.Errorf("got %v", err)
	}
}

func TestServerRejectsGET(t *testing.T) {
	ts := httptest.NewServer(NewServer())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
}

func TestServerMalformedBody(t *testing.T) {
	ts := httptest.NewServer(NewServer())
	defer ts.Close()
	resp, err := http.Post(ts.URL, "text/xml", strings.NewReader("this is not xml"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Must come back as a parse fault, not a transport error.
	c := NewClient(ts.URL)
	_, cerr := c.Call("x")
	_ = cerr // different doc; just ensure no panic on the malformed one
	if resp.StatusCode != http.StatusOK {
		t.Errorf("malformed body status = %d (should still be a fault document)", resp.StatusCode)
	}
}

func TestDoubleSpecials(t *testing.T) {
	for _, v := range []float64{math.MaxFloat64, math.SmallestNonzeroFloat64} {
		got := roundTripValue(t, v)
		if got != v {
			t.Errorf("double %v -> %v", v, got)
		}
	}
}

func BenchmarkCallRoundTrip(b *testing.B) {
	srv := NewServer()
	srv.Register("ping", func(args []any) (any, error) { return true, nil })
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("ping"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalTaskStruct(b *testing.B) {
	task := map[string]any{
		"task_id":   int64(123),
		"dataset":   int64(7),
		"kind":      "map",
		"func":      "wordcount_map",
		"splits":    int64(16),
		"partition": "hash",
		"urls":      []any{"http://n1:9000/data/a", "http://n2:9000/data/b"},
	}
	for i := 0; i < b.N; i++ {
		if _, err := MarshalResponse(task); err != nil {
			b.Fatal(err)
		}
	}
}

// TestNestedValuePropertyRoundTrip builds random nested structures of
// the supported types and checks exact round trips through the wire
// format — the closest thing to a fuzzer the control plane gets.
func TestNestedValuePropertyRoundTrip(t *testing.T) {
	var build func(r *rand.Rand, depth int) any
	build = func(r *rand.Rand, depth int) any {
		choice := r.Intn(6)
		if depth <= 0 {
			choice = r.Intn(4)
		}
		switch choice {
		case 0:
			return int64(r.Uint64())
		case 1:
			return r.Intn(2) == 0
		case 2:
			return float64(r.Intn(1<<20)) / 64 // dyadic: exact in text
		case 3:
			return fmt.Sprintf("s-%d", r.Intn(1000))
		case 4:
			n := r.Intn(4)
			arr := make([]any, n)
			for i := range arr {
				arr[i] = build(r, depth-1)
			}
			return arr
		default:
			n := r.Intn(4)
			st := map[string]any{}
			for i := 0; i < n; i++ {
				st[fmt.Sprintf("k%d", i)] = build(r, depth-1)
			}
			return st
		}
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		v := build(r, 4)
		got := roundTripValue(t, v)
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("trial %d: %#v -> %#v", trial, v, got)
		}
	}
}
