package xmlrpc

import (
	"encoding/xml"
	"fmt"
	"io"
)

// findAndParseValue scans forward to the next <value> element and
// parses it; used for the single value inside <fault>.
func findAndParseValue(d *xml.Decoder) (any, error) {
	for {
		tok, err := d.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("xmlrpc: no value found")
		}
		if err != nil {
			return nil, err
		}
		if se, ok := tok.(xml.StartElement); ok && se.Name.Local == "value" {
			return parseValue(d)
		}
	}
}
