// Package xmlrpc implements the XML-RPC protocol over HTTP. The Mrs
// paper chose XML-RPC for master/slave communication *because it ships
// with the Python standard library* even though faster protocols exist
// (§IV-B); we reproduce that choice on top of net/http and encoding/xml
// to preserve the measured control-plane characteristics.
//
// Supported value types and their Go mappings:
//
//	<int>/<i4>      int64
//	<boolean>       bool
//	<double>        float64
//	<string>        string
//	<base64>        []byte
//	<array>         []any
//	<struct>        map[string]any
//
// Faults are returned as *Fault errors.
package xmlrpc

import (
	"bytes"
	"encoding/base64"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Fault is an XML-RPC fault response.
type Fault struct {
	Code    int64
	Message string
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("xmlrpc: fault %d: %s", f.Code, f.Message)
}

// ---------------------------------------------------------------------------
// Marshalling

// MarshalCall encodes a method call document.
func MarshalCall(method string, args []any) ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(xml.Header)
	b.WriteString("<methodCall><methodName>")
	if err := xml.EscapeText(&b, []byte(method)); err != nil {
		return nil, err
	}
	b.WriteString("</methodName><params>")
	for _, a := range args {
		b.WriteString("<param>")
		if err := writeValue(&b, a); err != nil {
			return nil, err
		}
		b.WriteString("</param>")
	}
	b.WriteString("</params></methodCall>")
	return b.Bytes(), nil
}

// MarshalResponse encodes a successful method response with one result.
func MarshalResponse(result any) ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(xml.Header)
	b.WriteString("<methodResponse><params><param>")
	if err := writeValue(&b, result); err != nil {
		return nil, err
	}
	b.WriteString("</param></params></methodResponse>")
	return b.Bytes(), nil
}

// MarshalFault encodes a fault response.
func MarshalFault(f *Fault) ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(xml.Header)
	b.WriteString("<methodResponse><fault>")
	err := writeValue(&b, map[string]any{
		"faultCode":   f.Code,
		"faultString": f.Message,
	})
	if err != nil {
		return nil, err
	}
	b.WriteString("</fault></methodResponse>")
	return b.Bytes(), nil
}

func writeValue(b *bytes.Buffer, v any) error {
	b.WriteString("<value>")
	switch x := v.(type) {
	case nil:
		// XML-RPC has no null in the base spec; encode as empty string.
		b.WriteString("<string></string>")
	case int:
		b.WriteString("<int>")
		b.WriteString(strconv.FormatInt(int64(x), 10))
		b.WriteString("</int>")
	case int64:
		b.WriteString("<int>")
		b.WriteString(strconv.FormatInt(x, 10))
		b.WriteString("</int>")
	case bool:
		if x {
			b.WriteString("<boolean>1</boolean>")
		} else {
			b.WriteString("<boolean>0</boolean>")
		}
	case float64:
		b.WriteString("<double>")
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		b.WriteString("</double>")
	case string:
		b.WriteString("<string>")
		if err := xml.EscapeText(b, []byte(x)); err != nil {
			return err
		}
		b.WriteString("</string>")
	case []byte:
		b.WriteString("<base64>")
		b.WriteString(base64.StdEncoding.EncodeToString(x))
		b.WriteString("</base64>")
	case []any:
		b.WriteString("<array><data>")
		for _, e := range x {
			if err := writeValue(b, e); err != nil {
				return err
			}
		}
		b.WriteString("</data></array>")
	case []string:
		b.WriteString("<array><data>")
		for _, e := range x {
			if err := writeValue(b, e); err != nil {
				return err
			}
		}
		b.WriteString("</data></array>")
	case map[string]any:
		b.WriteString("<struct>")
		for _, k := range sortedKeys(x) {
			b.WriteString("<member><name>")
			if err := xml.EscapeText(b, []byte(k)); err != nil {
				return err
			}
			b.WriteString("</name>")
			if err := writeValue(b, x[k]); err != nil {
				return err
			}
			b.WriteString("</member>")
		}
		b.WriteString("</struct>")
	default:
		return fmt.Errorf("xmlrpc: unsupported type %T", v)
	}
	b.WriteString("</value>")
	return nil
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort; structs are small
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// ---------------------------------------------------------------------------
// Unmarshalling

// UnmarshalCall parses a method call document.
func UnmarshalCall(data []byte) (method string, args []any, err error) {
	d := xml.NewDecoder(bytes.NewReader(data))
	if err := expectStart(d, "methodCall"); err != nil {
		return "", nil, err
	}
	for {
		tok, err := d.Token()
		if err == io.EOF {
			return method, args, nil
		}
		if err != nil {
			return "", nil, err
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch se.Name.Local {
		case "methodName":
			s, err := readCharData(d, "methodName")
			if err != nil {
				return "", nil, err
			}
			method = s
		case "value":
			v, err := parseValue(d)
			if err != nil {
				return "", nil, err
			}
			args = append(args, v)
		}
	}
}

// UnmarshalResponse parses a method response; faults become *Fault errors.
func UnmarshalResponse(data []byte) (any, error) {
	d := xml.NewDecoder(bytes.NewReader(data))
	if err := expectStart(d, "methodResponse"); err != nil {
		return nil, err
	}
	for {
		tok, err := d.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("xmlrpc: response with no value")
		}
		if err != nil {
			return nil, err
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch se.Name.Local {
		case "fault":
			v, err := findAndParseValue(d)
			if err != nil {
				return nil, err
			}
			st, ok := v.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("xmlrpc: malformed fault")
			}
			f := &Fault{}
			if c, ok := st["faultCode"].(int64); ok {
				f.Code = c
			}
			if s, ok := st["faultString"].(string); ok {
				f.Message = s
			}
			return nil, f
		case "value":
			return parseValue(d)
		}
	}
}

func expectStart(d *xml.Decoder, name string) error {
	for {
		tok, err := d.Token()
		if err != nil {
			return fmt.Errorf("xmlrpc: expected <%s>: %w", name, err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			if se.Name.Local != name {
				return fmt.Errorf("xmlrpc: expected <%s>, got <%s>", name, se.Name.Local)
			}
			return nil
		}
	}
}

// readCharData consumes character data until the close tag of elem.
func readCharData(d *xml.Decoder, elem string) (string, error) {
	var sb strings.Builder
	for {
		tok, err := d.Token()
		if err != nil {
			return "", err
		}
		switch t := tok.(type) {
		case xml.CharData:
			sb.Write(t)
		case xml.EndElement:
			if t.Name.Local == elem {
				return sb.String(), nil
			}
		case xml.StartElement:
			return "", fmt.Errorf("xmlrpc: unexpected <%s> inside <%s>", t.Name.Local, elem)
		}
	}
}

// parseValue parses the contents of an already-opened <value> element
// through its closing tag.
func parseValue(d *xml.Decoder) (any, error) {
	var text strings.Builder
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.CharData:
			text.Write(t)
		case xml.EndElement:
			// </value> with no typed child: per spec, the text is a string.
			if t.Name.Local == "value" {
				return text.String(), nil
			}
		case xml.StartElement:
			v, err := parseTyped(d, t.Name.Local)
			if err != nil {
				return nil, err
			}
			// consume until </value>
			if err := skipToEnd(d, "value"); err != nil {
				return nil, err
			}
			return v, nil
		}
	}
}

func skipToEnd(d *xml.Decoder, elem string) error {
	depth := 0
	for {
		tok, err := d.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
		case xml.EndElement:
			if depth == 0 && t.Name.Local == elem {
				return nil
			}
			depth--
		}
	}
}

func parseTyped(d *xml.Decoder, typ string) (any, error) {
	switch typ {
	case "int", "i4", "i8":
		s, err := readCharData(d, typ)
		if err != nil {
			return nil, err
		}
		return strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	case "boolean":
		s, err := readCharData(d, typ)
		if err != nil {
			return nil, err
		}
		switch strings.TrimSpace(s) {
		case "1", "true":
			return true, nil
		case "0", "false":
			return false, nil
		}
		return nil, fmt.Errorf("xmlrpc: bad boolean %q", s)
	case "double":
		s, err := readCharData(d, typ)
		if err != nil {
			return nil, err
		}
		return strconv.ParseFloat(strings.TrimSpace(s), 64)
	case "string":
		return readCharData(d, typ)
	case "base64":
		s, err := readCharData(d, typ)
		if err != nil {
			return nil, err
		}
		return base64.StdEncoding.DecodeString(strings.Map(dropSpace, s))
	case "array":
		return parseArray(d)
	case "struct":
		return parseStruct(d)
	case "nil":
		if err := skipToEnd(d, "nil"); err != nil {
			return nil, err
		}
		return nil, nil
	}
	return nil, fmt.Errorf("xmlrpc: unknown value type <%s>", typ)
}

func dropSpace(r rune) rune {
	switch r {
	case ' ', '\t', '\n', '\r':
		return -1
	}
	return r
}

func parseArray(d *xml.Decoder) (any, error) {
	out := []any{}
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local == "value" {
				v, err := parseValue(d)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			}
		case xml.EndElement:
			if t.Name.Local == "array" {
				return out, nil
			}
		}
	}
}

func parseStruct(d *xml.Decoder) (any, error) {
	out := map[string]any{}
	var name string
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "name":
				s, err := readCharData(d, "name")
				if err != nil {
					return nil, err
				}
				name = s
			case "value":
				v, err := parseValue(d)
				if err != nil {
					return nil, err
				}
				out[name] = v
			}
		case xml.EndElement:
			if t.Name.Local == "struct" {
				return out, nil
			}
		}
	}
}
