package xmlrpc

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// RPCPath is the conventional endpoint path.
const RPCPath = "/RPC2"

// Handler is a registered server method.
type Handler func(args []any) (any, error)

// Server dispatches XML-RPC calls to registered handlers. It
// implements http.Handler and is mounted at RPCPath by convention.
type Server struct {
	mu      sync.RWMutex
	methods map[string]Handler
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{methods: map[string]Handler{}}
}

// Register adds a method. Re-registering a name replaces the handler.
func (s *Server) Register(name string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.methods[name] = h
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "xmlrpc requires POST", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	method, args, err := UnmarshalCall(body)
	if err != nil {
		s.writeFault(w, &Fault{Code: -32700, Message: "parse error: " + err.Error()})
		return
	}
	s.mu.RLock()
	h, ok := s.methods[method]
	s.mu.RUnlock()
	if !ok {
		s.writeFault(w, &Fault{Code: -32601, Message: fmt.Sprintf("method %q not found", method)})
		return
	}
	result, err := h(args)
	if err != nil {
		if f, isFault := err.(*Fault); isFault {
			s.writeFault(w, f)
		} else {
			s.writeFault(w, &Fault{Code: 1, Message: err.Error()})
		}
		return
	}
	resp, err := MarshalResponse(result)
	if err != nil {
		s.writeFault(w, &Fault{Code: 2, Message: "marshal error: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/xml")
	w.Write(resp)
}

func (s *Server) writeFault(w http.ResponseWriter, f *Fault) {
	data, err := MarshalFault(f)
	if err != nil {
		http.Error(w, f.Message, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/xml")
	w.Write(data)
}

// Intercept wraps an outgoing call. call performs the real round trip;
// an interceptor may refuse it, delay it, invoke it more than once
// (duplicate delivery), or discard its response — the mechanism behind
// internal/fault's chaos injection, also usable for tracing.
type Intercept func(method string, call func() (any, error)) (any, error)

// Client calls a remote XML-RPC endpoint.
type Client struct {
	// URL is the full endpoint, e.g. "http://host:1234/RPC2".
	URL string
	// HTTPClient may be replaced for custom timeouts; the default has
	// a generous timeout sized for long-poll task requests.
	HTTPClient *http.Client
	// Intercept, when non-nil, wraps every Call.
	Intercept Intercept
}

// DefaultTimeout bounds a single RPC round trip.
const DefaultTimeout = 60 * time.Second

// NewClient returns a client for the endpoint URL.
func NewClient(url string) *Client {
	return &Client{URL: url, HTTPClient: &http.Client{Timeout: DefaultTimeout}}
}

// CloseIdle closes the client's pooled keep-alive connections. A caller
// that is done with the endpoint should call this: a pooled connection
// that never carries another request (including one parked by a dial
// race between concurrent calls) otherwise counts against the server's
// graceful Shutdown until net/http's new-connection grace period.
func (c *Client) CloseIdle() {
	if c.HTTPClient != nil {
		c.HTTPClient.CloseIdleConnections()
	}
}

// Call invokes a remote method. Server faults come back as *Fault.
func (c *Client) Call(method string, args ...any) (any, error) {
	if c.Intercept != nil {
		return c.Intercept(method, func() (any, error) { return c.call(method, args) })
	}
	return c.call(method, args)
}

func (c *Client) call(method string, args []any) (any, error) {
	body, err := MarshalCall(method, args)
	if err != nil {
		return nil, err
	}
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{Timeout: DefaultTimeout}
	}
	resp, err := httpClient.Post(c.URL, "text/xml", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("xmlrpc: %s: %w", method, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("xmlrpc: %s: HTTP %s", method, resp.Status)
	}
	return UnmarshalResponse(data)
}
