package cluster

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/piest"
)

// resumeTenants re-drives both tenant programs by their original job
// ids on a restarted master. A job whose first attempt already finished
// (its Wait returned nil) is not resumed.
func resumeTenants(t *testing.T, c *Cluster, wcID, piID core.JobID, wcPairs *[]kvio.Pair, piRes **piest.Result, resumeWC, resumePi bool) {
	t.Helper()
	if resumeWC {
		wc, err := c.Jobs().Resume(wcID, "wordcount", core.JobOptions{Pipeline: true}, func(job *core.Job) error {
			var err error
			*wcPairs, err = wordCountRun(job)
			return err
		})
		if err != nil {
			t.Fatalf("resume wordcount: %v", err)
		}
		if err := wc.Wait(); err != nil {
			t.Fatalf("resumed wordcount: %v", err)
		}
	}
	if resumePi {
		pi, err := c.Jobs().Resume(piID, "pi", core.JobOptions{Pipeline: true}, func(job *core.Job) error {
			var err error
			*piRes, err = piest.Run(job, piCfg)
			return err
		})
		if err != nil {
			t.Fatalf("resume pi: %v", err)
		}
		if err := pi.Wait(); err != nil {
			t.Fatalf("resumed pi: %v", err)
		}
	}
}

// crashResumeRun boots a journaled cluster, submits the two tenants,
// kills the master after at least k task completions, restarts it from
// the journal, resumes whatever did not finish, and returns both
// outputs plus the shared metrics runtime.
func crashResumeRun(t *testing.T, k int, inj *fault.Injector) ([]kvio.Pair, *piest.Result, *obs.Runtime) {
	t.Helper()
	rt := obs.New(nil)
	opts := Options{
		Slaves:           3,
		SlaveConcurrency: 2,
		SharedDir:        t.TempDir(),
		JournalDir:       t.TempDir(),
		Obs:              rt,
	}
	if inj != nil {
		opts.Chaos = inj
		opts.HeartbeatInterval = 50 * time.Millisecond
		opts.HeartbeatTimeout = 250 * time.Millisecond
		opts.MaxAttempts = 10
		opts.TaskLease = 1 * time.Second
	}
	c, err := Start(tenancyRegistry(piCfg), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var (
		wcPairs []kvio.Pair
		piRes   *piest.Result
	)
	wc, err := c.Submit("wordcount", core.JobOptions{Pipeline: true}, func(job *core.Job) error {
		var err error
		wcPairs, err = wordCountRun(job)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Submit("pi", core.JobOptions{Pipeline: true}, func(job *core.Job) error {
		var err error
		piRes, err = piest.Run(job, piCfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the master once at least k tasks have completed (and been
	// journaled). Both tenants keep the fleet busy, so completions
	// accumulate quickly.
	deadline := time.Now().Add(30 * time.Second)
	for c.Master().Stats().TasksDone < int64(k) {
		if time.Now().After(deadline) {
			t.Fatalf("TasksDone = %d, want >= %d", c.Master().Stats().TasksDone, k)
		}
		time.Sleep(time.Millisecond)
	}
	c.CrashMaster()

	// The in-flight drivers fail; a tenant that happened to finish
	// before the crash keeps its output and is not resumed.
	wcErr := wc.Wait()
	piErr := pi.Wait()

	if err := c.RestartMaster(); err != nil {
		t.Fatal(err)
	}
	resumeTenants(t, c, wc.ID(), pi.ID(), &wcPairs, &piRes, wcErr != nil, piErr != nil)

	if got := rt.M().Get(obs.MetricMasterRecoveries); got < 1 {
		t.Errorf("%s = %d, want >= 1", obs.MetricMasterRecoveries, got)
	}
	if wcErr != nil && piErr != nil && k >= 2 {
		if got := rt.M().Get(obs.MetricRecoveredTasks); got < 1 {
			t.Errorf("%s = %d after crash at >= %d completions, want >= 1", obs.MetricRecoveredTasks, got, k)
		}
	}
	return wcPairs, piRes, rt
}

// TestMasterCrashMidJobByteIdentical is the headline recovery run
// (satellite a): kill the master after K journaled completions — K
// swept across mid-map and mid-reduce — restart it from the journal,
// resume both tenants by job id, and require output byte-identical to
// an uninterrupted serial run.
func TestMasterCrashMidJobByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery suite skipped in -short mode")
	}
	wantWC, wantPi := serialBaselines(t)
	for _, k := range []int{2, 6} {
		gotWC, gotPi, _ := crashResumeRun(t, k, nil)
		if !samePairs(wantWC, gotWC) {
			t.Errorf("k=%d: wordcount output diverged after crash-resume: %d records vs %d serial",
				k, len(gotWC), len(wantWC))
		}
		if gotPi == nil || gotPi.Inside != wantPi.Inside || gotPi.Total != wantPi.Total || gotPi.Pi != wantPi.Pi {
			t.Errorf("k=%d: pi diverged after crash-resume: got %+v, want %+v", k, gotPi, wantPi)
		}
	}
}

// The same crash-resume run, but with RPC and data-path fault injection
// active on every slave throughout — the journal must stay coherent
// even when the reports it records arrive through a faulty control
// plane (drops force duplicate task_done deliveries; only accepted
// completions may be journaled).
func TestMasterCrashByteIdenticalUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery suite skipped in -short mode")
	}
	wantWC, wantPi := serialBaselines(t)
	inj := fault.New(fault.Config{
		Seed:       42,
		RefuseRate: 0.05,
		DropRate:   0.04,
		DupRate:    0.04,
		DelayRate:  0.05,
		MaxDelay:   20 * time.Millisecond,
	})
	gotWC, gotPi, _ := crashResumeRun(t, 4, inj)
	if !samePairs(wantWC, gotWC) {
		t.Errorf("wordcount output diverged after chaotic crash-resume: %d records vs %d serial",
			len(gotWC), len(wantWC))
	}
	if gotPi == nil || gotPi.Inside != wantPi.Inside || gotPi.Total != wantPi.Total || gotPi.Pi != wantPi.Pi {
		t.Errorf("pi diverged after chaotic crash-resume: got %+v, want %+v", gotPi, wantPi)
	}
}

// A master crash scheduled through the fault plan restarts on its own
// (the cluster arms the restart timer), the fleet re-signs in, and the
// restarted master serves new work.
func TestPlannedMasterCrashAutoRestarts(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery suite skipped in -short mode")
	}
	cfg := fault.Config{
		Seed:               11,
		MasterCrashes:      1,
		Window:             200 * time.Millisecond,
		MasterRestartAfter: 150 * time.Millisecond,
	}
	// The plan is deterministic and must target the master exactly once.
	plan := cfg.Plan(2)
	if len(plan) != 1 || plan[0].Kind != fault.PlanMasterCrash || plan[0].Slave != -1 {
		t.Fatalf("plan = %+v, want one master crash", plan)
	}
	if !reflect.DeepEqual(plan, cfg.Plan(2)) {
		t.Fatal("master-crash plan not deterministic")
	}

	c, err := Start(tenancyRegistry(piCfg), Options{
		Slaves:     2,
		SharedDir:  t.TempDir(),
		JournalDir: t.TempDir(),
		Chaos:      fault.New(cfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	first := c.Master()
	deadline := time.Now().Add(10 * time.Second)
	for c.Master() == first {
		if time.Now().After(deadline) {
			t.Fatal("planned master crash never produced a restarted master")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The restarted master serves a full job through the re-signed-in
	// fleet.
	var pairs []kvio.Pair
	mj, err := c.Submit("after-restart", core.JobOptions{Pipeline: true}, func(job *core.Job) error {
		var err error
		pairs, err = wordCountRun(job)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mj.Wait(); err != nil {
		t.Fatalf("job on restarted master: %v", err)
	}
	if len(pairs) == 0 {
		t.Fatal("restarted master produced no output")
	}
}

// Enabling master crashes must not perturb the slave crash/hang
// schedule an existing seed produces: the slave events are a strict
// prefix of the extended plan.
func TestMasterCrashPlanPreservesSlaveSchedule(t *testing.T) {
	base := fault.Config{Seed: 42, Crashes: 1, Hangs: 1, Window: time.Second}
	withMaster := base
	withMaster.MasterCrashes = 2
	a, b := base.Plan(4), withMaster.Plan(4)
	if len(b) != len(a)+2 {
		t.Fatalf("extended plan has %d events, want %d", len(b), len(a)+2)
	}
	if !reflect.DeepEqual(a, b[:len(a)]) {
		t.Errorf("slave schedule changed when master crashes were enabled:\nbase: %+v\nwith: %+v", a, b[:len(a)])
	}
	for _, ev := range b[len(a):] {
		if ev.Kind != fault.PlanMasterCrash || ev.Slave != -1 || ev.Dur <= 0 {
			t.Errorf("bad master-crash event %+v", ev)
		}
	}
}
