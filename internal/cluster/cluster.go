// Package cluster boots a complete master + N-slave deployment on
// localhost TCP for examples, tests, and benchmarks. The control plane
// (XML-RPC over HTTP), the data plane (HTTP bucket serving or shared-
// filesystem staging), heartbeats, and scheduling are all the real
// distributed code paths; only the machines are local.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/master"
	"repro/internal/slave"
)

// Options configures a local cluster.
type Options struct {
	// Slaves is the worker count (default 2).
	Slaves int
	// SharedDir switches the data plane to filesystem staging in the
	// given directory (the fault-tolerant mode). Empty selects direct
	// HTTP serving between slaves.
	SharedDir string
	// Master options forwarded (heartbeats, retries, affinity).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	MaxAttempts       int
	DisableAffinity   bool
}

// Cluster is a running local deployment.
type Cluster struct {
	M *master.Master

	mu      sync.Mutex
	slaves  []*slaveHandle
	nextIdx int
}

type slaveHandle struct {
	s      *slave.Slave
	cancel context.CancelFunc
	err    error
	done   chan struct{} // closed when Run returns; err is set before the close
}

// Start boots the master and slaves and waits until all slaves have
// signed in.
func Start(reg *core.Registry, opts Options) (*Cluster, error) {
	if opts.Slaves <= 0 {
		opts.Slaves = 2
	}
	m, err := master.New(master.Options{
		SharedDir:         opts.SharedDir,
		HeartbeatInterval: opts.HeartbeatInterval,
		HeartbeatTimeout:  opts.HeartbeatTimeout,
		MaxAttempts:       opts.MaxAttempts,
		DisableAffinity:   opts.DisableAffinity,
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{M: m}
	for i := 0; i < opts.Slaves; i++ {
		if _, err := c.AddSlave(reg, opts.SharedDir); err != nil {
			c.Close()
			return nil, err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.WaitForSlaves(ctx, opts.Slaves); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// AddSlave starts one more slave (usable mid-run, e.g. in elasticity
// tests) and returns its index.
func (c *Cluster) AddSlave(reg *core.Registry, sharedDir string) (int, error) {
	s, err := slave.New(reg, slave.Options{
		MasterAddr: c.M.Addr(),
		SharedDir:  sharedDir,
	})
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &slaveHandle{s: s, cancel: cancel, done: make(chan struct{})}
	go func() {
		h.err = s.Run(ctx)
		close(h.done)
	}()
	c.mu.Lock()
	c.slaves = append(c.slaves, h)
	idx := len(c.slaves) - 1
	c.mu.Unlock()
	return idx, nil
}

// Executor returns the cluster's core.Executor (the master).
func (c *Cluster) Executor() core.Executor { return c.M }

// NumSlaves returns the number of slaves the harness ever started.
func (c *Cluster) NumSlaves() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.slaves)
}

// Slave returns the i-th slave (for inspecting task counts).
func (c *Cluster) Slave(i int) *slave.Slave {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slaves[i].s
}

// KillSlave abruptly stops slave i: its loop is cancelled and its data
// server dies with it, simulating a crashed worker.
func (c *Cluster) KillSlave(i int) error {
	c.mu.Lock()
	if i < 0 || i >= len(c.slaves) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no slave %d", i)
	}
	h := c.slaves[i]
	c.mu.Unlock()
	h.cancel()
	select {
	case <-h.done:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("cluster: slave %d did not stop", i)
	}
	return nil
}

// Close shuts down the whole cluster: master first (which tells slaves
// to shut down via get_task), then force-cancels stragglers.
func (c *Cluster) Close() error {
	err := c.M.Close()
	c.mu.Lock()
	handles := append([]*slaveHandle(nil), c.slaves...)
	c.mu.Unlock()
	for _, h := range handles {
		select {
		case <-h.done:
		case <-time.After(3 * time.Second):
			h.cancel()
			<-h.done
		}
	}
	return err
}
