// Package cluster boots a complete master + N-slave deployment on
// localhost TCP for examples, tests, and benchmarks. The control plane
// (XML-RPC over HTTP), the data plane (HTTP bucket serving or shared-
// filesystem staging), heartbeats, and scheduling are all the real
// distributed code paths; only the machines are local.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/bucket"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/master"
	"repro/internal/obs"
	"repro/internal/slave"
	"repro/internal/submaster"
)

// Options configures a local cluster.
type Options struct {
	// Slaves is the worker count (default 2).
	Slaves int
	// SharedDir switches the data plane to filesystem staging in the
	// given directory (the fault-tolerant mode). Empty selects direct
	// HTTP serving between slaves.
	SharedDir string
	// JournalDir, when set, gives the master a durable job journal so it
	// can be crashed (CrashMaster) and restarted (RestartMaster) without
	// losing completed work. Required for master-crash chaos plans.
	JournalDir string
	// Master options forwarded (heartbeats, retries, affinity).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	MaxAttempts       int
	DisableAffinity   bool
	// TaskLease, when set, forwards to the master: running assignments
	// older than the lease are requeued (recovery from lost get_task
	// responses under chaos). Leave zero outside fault tests.
	TaskLease time.Duration
	// Chaos, when non-nil, injects faults into every slave's RPC and
	// data path and applies the injector's crash/hang plan to the
	// cluster. Slave i gets the stream role "slave<i>".
	Chaos *fault.Injector
	// Obs is one observability runtime shared by the master and every
	// slave (the whole cluster is in-process, so local task-engine
	// metrics and master trace events naturally aggregate). Nil gives
	// the master a private metrics-only runtime.
	Obs *obs.Runtime
	// Prefetch is the per-slave input-fetch window (0 = default,
	// 1 = sequential streaming).
	Prefetch int
	// Compress makes every node write (and therefore serve) its buckets
	// flate-compressed.
	Compress bool
	// Codec selects the compression codec every node writes its
	// block-framed buckets with ("identity", "deflate", "lz"; "" keeps
	// the legacy per-record framing). When both Codec and Compress are
	// set, Codec wins. Unknown names fail Start.
	Codec string
	// BlockEncoding selects the block encoding every node writes its
	// buckets with ("row", "columnar", "columnar-raw", "columnar-dict",
	// "columnar-delta"; "" = row). Unknown names fail Start.
	BlockEncoding string
	// RowOnlyFetch makes every slave fetch like a pre-columnar peer
	// (no columnar-accept header), forcing servers into the
	// row-transcode fallback — the mixed-version ablation.
	RowOnlyFetch bool
	// BlockSize overrides the record-block flush threshold in bytes
	// (0 = default).
	BlockSize int
	// MaxConcurrentJobs bounds how many managed jobs the master runs at
	// once (0 = master default). Jobs past the bound queue in
	// submission order.
	MaxConcurrentJobs int
	// SlaveConcurrency is how many tasks each slave runs at once
	// (default 1). Raise it so one fleet can serve several jobs' tasks
	// simultaneously.
	SlaveConcurrency int
	// ResidentBudget is the per-slave resident dataset cache budget in
	// bytes (<= 0 disables residency on the whole fleet).
	ResidentBudget int64
	// SubMasters > 0 boots a two-level control plane: that many
	// sub-master nodes sign in to the master, and the slaves attach to
	// them round-robin instead of to the master directly. 0 keeps the
	// classic flat star.
	SubMasters int
	// SpeculationFactor enables straggler re-execution on the master's
	// scheduler (and each sub-master's): a task running longer than
	// factor × the job's median attempt duration gets a duplicate
	// attempt, first completion wins. 0 disables.
	SpeculationFactor float64
	// SpeculationMinRuntime floors the speculation trigger (0 =
	// default); only meaningful with SpeculationFactor set.
	SpeculationMinRuntime time.Duration
}

// Cluster is a running local deployment.
type Cluster struct {
	M *master.Master

	chaos        *fault.Injector
	obs          *obs.Runtime
	prefetch     int
	compress     bool
	codec        string
	blockEnc     string
	rowOnly      bool
	blockSize    int
	slaveCon     int
	resident     int64
	heartbeatIvl time.Duration
	heartbeatTO  time.Duration
	specFactor   float64

	mopts      master.Options // as built by Start, for RestartMaster
	masterAddr string         // concrete listen address of the first master

	mu         sync.Mutex
	slaves     []*slaveHandle
	submasters []*smHandle
	timers     []*time.Timer // pending chaos events, stopped on Close
	nextIdx    int
}

type slaveHandle struct {
	s      *slave.Slave
	addr   string // control-plane address the slave signs in to
	cancel context.CancelFunc
	err    error
	done   chan struct{} // closed when Run returns; err is set before the close
}

type smHandle struct {
	sm     *submaster.SubMaster
	cancel context.CancelFunc
	err    error
	done   chan struct{}
}

// Start boots the master and slaves and waits until all slaves have
// signed in.
func Start(reg *core.Registry, opts Options) (*Cluster, error) {
	if opts.Slaves <= 0 {
		opts.Slaves = 2
	}
	mopts := master.Options{
		SharedDir:             opts.SharedDir,
		JournalDir:            opts.JournalDir,
		HeartbeatInterval:     opts.HeartbeatInterval,
		HeartbeatTimeout:      opts.HeartbeatTimeout,
		MaxAttempts:           opts.MaxAttempts,
		DisableAffinity:       opts.DisableAffinity,
		TaskLease:             opts.TaskLease,
		Obs:                   opts.Obs,
		Compress:              opts.Compress,
		Codec:                 opts.Codec,
		BlockEncoding:         opts.BlockEncoding,
		RowOnlyFetch:          opts.RowOnlyFetch,
		BlockSize:             opts.BlockSize,
		MaxConcurrentJobs:     opts.MaxConcurrentJobs,
		SpeculationFactor:     opts.SpeculationFactor,
		SpeculationMinRuntime: opts.SpeculationMinRuntime,
	}
	m, err := master.New(mopts)
	if err != nil {
		return nil, err
	}
	c := &Cluster{M: m, chaos: opts.Chaos, obs: opts.Obs, prefetch: opts.Prefetch, compress: opts.Compress, codec: opts.Codec, blockEnc: opts.BlockEncoding, rowOnly: opts.RowOnlyFetch, blockSize: opts.BlockSize, slaveCon: opts.SlaveConcurrency, resident: opts.ResidentBudget, heartbeatIvl: opts.HeartbeatInterval, heartbeatTO: opts.HeartbeatTimeout, specFactor: opts.SpeculationFactor, mopts: mopts, masterAddr: m.Addr()}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < opts.SubMasters; i++ {
		if _, err := c.AddSubMaster(); err != nil {
			c.Close()
			return nil, err
		}
	}
	if opts.SubMasters > 0 {
		// The master's fleet is the sub-masters; slaves are invisible to
		// it. Wait for the tree's middle tier before hanging leaves on it.
		if err := m.WaitForSlaves(ctx, opts.SubMasters); err != nil {
			c.Close()
			return nil, err
		}
	}
	for i := 0; i < opts.Slaves; i++ {
		if _, err := c.AddSlave(reg, opts.SharedDir); err != nil {
			c.Close()
			return nil, err
		}
	}
	if opts.SubMasters > 0 {
		if err := c.waitForChildren(ctx, opts.Slaves); err != nil {
			c.Close()
			return nil, err
		}
	} else if err := m.WaitForSlaves(ctx, opts.Slaves); err != nil {
		c.Close()
		return nil, err
	}
	c.scheduleChaos(opts.Slaves)
	return c, nil
}

// waitForChildren blocks until the sub-masters hold n signed-in leaves
// between them.
func (c *Cluster) waitForChildren(ctx context.Context, n int) error {
	for {
		total := 0
		c.mu.Lock()
		for _, h := range c.submasters {
			if h != nil {
				total += h.sm.ChildCount()
			}
		}
		c.mu.Unlock()
		if total >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: waiting for %d leaves (have %d): %w", n, total, ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// slaveRole names the fault stream of slave i; the same naming is used
// for decisions and for crash/hang plan targeting so a chaos run's
// schedule is stable across executions.
func slaveRole(i int) string { return fmt.Sprintf("slave%d", i) }

// scheduleChaos arms the injector's crash/hang plan against this
// cluster. Crashes cancel the slave's Run loop (its data server dies
// too); hangs stall the slave's RPC paths past the heartbeat timeout so
// the master reaps it and the slave must re-sign in.
func (c *Cluster) scheduleChaos(nSlaves int) {
	if c.chaos == nil {
		return
	}
	for _, ev := range c.chaos.Plan(nSlaves) {
		ev := ev
		var fire func()
		switch ev.Kind {
		case fault.PlanCrash:
			fire = func() { _ = c.KillSlave(ev.Slave) }
		case fault.PlanHang:
			fire = func() { c.chaos.HangFor(slaveRole(ev.Slave), ev.Dur) }
		case fault.PlanMasterCrash:
			restartAfter := ev.Dur
			fire = func() {
				c.CrashMaster()
				c.mu.Lock()
				c.timers = append(c.timers, time.AfterFunc(restartAfter, func() { _ = c.RestartMaster() }))
				c.mu.Unlock()
			}
		default:
			continue
		}
		c.mu.Lock()
		c.timers = append(c.timers, time.AfterFunc(ev.At, fire))
		c.mu.Unlock()
	}
}

// AddSubMaster starts one more sub-master node (attached to the
// master) and returns its index. Slaves added afterwards spread over
// the sub-masters round-robin.
func (c *Cluster) AddSubMaster() (int, error) {
	sm, err := submaster.New(submaster.Options{
		MasterAddr:        c.masterAddr,
		Obs:               c.obs,
		HeartbeatInterval: c.heartbeatIvl,
		HeartbeatTimeout:  c.heartbeatTO,
		SpeculationFactor: c.specFactor,
	})
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &smHandle{sm: sm, cancel: cancel, done: make(chan struct{})}
	go func() {
		h.err = sm.Run(ctx)
		close(h.done)
	}()
	c.mu.Lock()
	idx := len(c.submasters)
	c.submasters = append(c.submasters, h)
	c.mu.Unlock()
	return idx, nil
}

// NumSubMasters returns how many sub-masters the harness ever started.
func (c *Cluster) NumSubMasters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.submasters)
}

// SubMaster returns the i-th sub-master.
func (c *Cluster) SubMaster(i int) *submaster.SubMaster {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submasters[i].sm
}

// KillSubMaster abruptly stops sub-master i: its control server dies
// with its Run loop, orphaning its children mid-job (they retry, fail,
// and die; the master's heartbeat timeout requeues the shard's leases).
func (c *Cluster) KillSubMaster(i int) error {
	c.mu.Lock()
	if i < 0 || i >= len(c.submasters) || c.submasters[i] == nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no submaster %d", i)
	}
	h := c.submasters[i]
	c.mu.Unlock()
	h.cancel()
	select {
	case <-h.done:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("cluster: submaster %d did not stop", i)
	}
	return nil
}

// Drain asks the master to take a node (by id or advertised address)
// out of rotation; see master.Drain.
func (c *Cluster) Drain(target string) bool {
	return c.Master().Drain(target)
}

// controlAddr picks the control plane a new slave signs in to: the
// master in the flat topology, a sub-master (round-robin) in the tree.
func (c *Cluster) controlAddr(idx int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.submasters) == 0 {
		return c.masterAddr
	}
	return c.submasters[idx%len(c.submasters)].sm.Addr()
}

// AddSlave starts one more slave (usable mid-run, e.g. in elasticity
// tests) and returns its index. With sub-masters running, the slave
// attaches to one of them; it receives work immediately if a job is in
// flight.
func (c *Cluster) AddSlave(reg *core.Registry, sharedDir string) (int, error) {
	c.mu.Lock()
	idx := c.nextIdx
	c.nextIdx++
	c.mu.Unlock()
	return c.addSlaveAt(reg, sharedDir, idx, c.controlAddr(idx))
}

// AddSlaveAt is AddSlave with an explicit control-plane address (a
// specific sub-master, or the master itself for a mixed topology).
func (c *Cluster) AddSlaveAt(reg *core.Registry, sharedDir, controlAddr string) (int, error) {
	c.mu.Lock()
	idx := c.nextIdx
	c.nextIdx++
	c.mu.Unlock()
	return c.addSlaveAt(reg, sharedDir, idx, controlAddr)
}

func (c *Cluster) addSlaveAt(reg *core.Registry, sharedDir string, idx int, controlAddr string) (int, error) {
	sopts := slave.Options{
		MasterAddr:     controlAddr,
		SharedDir:      sharedDir,
		Obs:            c.obs,
		Prefetch:       c.prefetch,
		Compress:       c.compress,
		Codec:          c.codec,
		BlockEncoding:  c.blockEnc,
		RowOnlyFetch:   c.rowOnly,
		BlockSize:      c.blockSize,
		Concurrency:    c.slaveCon,
		ResidentBudget: c.resident,
	}
	if c.chaos != nil {
		role := slaveRole(idx)
		sopts.RPCIntercept = c.chaos.Intercept(role)
		// The injector wraps the tuned shared transport so chaos runs
		// keep the same connection-reuse behavior as clean runs.
		sopts.DataClient = &http.Client{
			Timeout:   bucket.HTTPTimeout,
			Transport: c.chaos.RoundTripper(role, bucket.DefaultTransport),
		}
		sopts.BackoffSeed = uint64(idx) + 1
	}
	s, err := slave.New(reg, sopts)
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &slaveHandle{s: s, addr: controlAddr, cancel: cancel, done: make(chan struct{})}
	go func() {
		h.err = s.Run(ctx)
		close(h.done)
	}()
	c.mu.Lock()
	for len(c.slaves) <= idx {
		c.slaves = append(c.slaves, nil)
	}
	c.slaves[idx] = h
	c.mu.Unlock()
	return idx, nil
}

// Master returns the current master under the cluster lock — after a
// RestartMaster the public M field points at the replacement, and this
// accessor is the race-safe way to observe the swap.
func (c *Cluster) Master() *master.Master {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.M
}

// CrashMaster kills the master abruptly: no journal flush, no shutdown
// broadcast, in-flight RPCs severed — the process-kill simulation.
// In-flight jobs fail with sched.ErrClosed; resume them by job id on
// the restarted master.
func (c *Cluster) CrashMaster() {
	c.Master().Crash()
}

// RestartMaster boots a fresh master from the journal on the crashed
// master's address, so slaves (which retry and then re-sign-in via the
// unknown-slave fault) reconnect without reconfiguration. It replaces
// the cluster's M.
func (c *Cluster) RestartMaster() error {
	c.mu.Lock()
	mopts := c.mopts
	mopts.Addr = c.masterAddr
	c.mu.Unlock()
	var m *master.Master
	var err error
	// The crashed listener's port can linger briefly; retry the bind.
	for i := 0; i < 100; i++ {
		m, err = master.New(mopts)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("cluster: restart master: %w", err)
	}
	c.mu.Lock()
	c.M = m
	c.mu.Unlock()
	return nil
}

// Executor returns the cluster's core.Executor (the master).
func (c *Cluster) Executor() core.Executor { return c.Master() }

// Jobs returns the master's job manager, for submitting several
// programs against this one fleet.
func (c *Cluster) Jobs() *master.JobManager { return c.Master().Jobs() }

// Submit admits a named program to the shared fleet; see
// master.JobManager.Submit.
func (c *Cluster) Submit(name string, opts core.JobOptions, run func(*core.Job) error) (*master.ManagedJob, error) {
	return c.Master().Jobs().Submit(name, opts, run)
}

// NumSlaves returns the number of slaves the harness ever started.
func (c *Cluster) NumSlaves() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.slaves)
}

// Slave returns the i-th slave (for inspecting task counts).
func (c *Cluster) Slave(i int) *slave.Slave {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slaves[i].s
}

// KillSlave abruptly stops slave i: its loop is cancelled and its data
// server dies with it, simulating a crashed worker.
func (c *Cluster) KillSlave(i int) error {
	c.mu.Lock()
	if i < 0 || i >= len(c.slaves) || c.slaves[i] == nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no slave %d", i)
	}
	h := c.slaves[i]
	c.mu.Unlock()
	h.cancel()
	select {
	case <-h.done:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("cluster: slave %d did not stop", i)
	}
	return nil
}

// Close shuts down the whole cluster top-down: master first (which
// tells its nodes to shut down via get_task), then sub-masters (which
// relay the shutdown to their children), then force-cancels stragglers.
func (c *Cluster) Close() error {
	c.mu.Lock()
	timers := c.timers
	c.timers = nil
	c.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	err := c.Master().Close()
	c.mu.Lock()
	smHandles := append([]*smHandle(nil), c.submasters...)
	handles := append([]*slaveHandle(nil), c.slaves...)
	c.mu.Unlock()
	for _, h := range smHandles {
		if h == nil {
			continue
		}
		select {
		case <-h.done:
		case <-time.After(3 * time.Second):
			// A sub-master with no children holds no idle slot and never
			// polls, so it cannot hear the shutdown; close it directly.
			h.sm.Close()
			select {
			case <-h.done:
			case <-time.After(3 * time.Second):
				h.cancel()
				<-h.done
			}
		}
	}
	for _, h := range handles {
		if h == nil {
			continue
		}
		select {
		case <-h.done:
		case <-time.After(3 * time.Second):
			h.cancel()
			<-h.done
		}
	}
	return err
}
