package cluster

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kvio"
	"repro/internal/obs"
)

// chaosInput is a larger corpus than inputLines so jobs run long enough
// for mid-run crashes and hangs to land while work is in flight.
func chaosInput() []kvio.Pair {
	var pairs []kvio.Pair
	for i := 0; i < 24; i++ {
		line := inputLines[i%len(inputLines)]
		pairs = append(pairs, kvio.Pair{Key: codec.EncodeVarint(int64(i)), Value: []byte(line)})
	}
	return pairs
}

// runIterativeJob models the paper's iterative workloads: several map
// iterations over the same dataset (slowmap keeps tasks in flight long
// enough for faults to hit them) followed by a mapreduce, collected in
// sorted order so outputs are byte-comparable across runs. rt (may be
// nil) receives the job's trace and metrics.
func runIterativeJob(t *testing.T, c *Cluster, rt *obs.Runtime) []kvio.Pair {
	t.Helper()
	job := core.NewJobWith(c.Executor(), core.JobOptions{Pipeline: true, Obs: rt})
	ds, err := job.LocalData(chaosInput(), core.OpOpts{Splits: 4, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ds, err = job.Map(ds, "slowmap", core.OpOpts{Splits: 4})
		if err != nil {
			t.Fatal(err)
		}
	}
	mid, err := job.MapReduce(ds, "split", "sum",
		core.OpOpts{Splits: 4, Combine: "sum"}, core.OpOpts{Splits: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A narrow follow-on reduce (re-summing single totals is the
	// identity) keeps the split-level release path under fault pressure
	// too.
	out, err := job.Reduce(mid, "sum", core.OpOpts{Splits: 2, KeyAligned: true})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := out.CollectSorted()
	if err != nil {
		t.Fatalf("chaos job did not complete: %v", err)
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	return pairs
}

func samePairs(a, b []kvio.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

// TestChaosIterativeConvergesDespiteFaults is the headline chaos run:
// RPC refusals, dropped responses, duplicated deliveries, latency,
// one slave crash and one slave hang — and the iterative job must
// still produce output byte-identical to a fault-free run. Shared-dir
// mode is used because it is the fault-tolerant data path (a crashed
// slave's buckets survive on the shared filesystem).
func TestChaosIterativeConvergesDespiteFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}

	clean, err := Start(testRegistry(), Options{Slaves: 4, SharedDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	want := runIterativeJob(t, clean, nil)
	clean.Close()
	if len(want) == 0 {
		t.Fatal("fault-free run produced no output")
	}

	cfg := fault.Config{
		Seed:       42,
		RefuseRate: 0.05,
		DropRate:   0.04,
		DupRate:    0.04,
		DelayRate:  0.05,
		MaxDelay:   20 * time.Millisecond,
		Crashes:    1,
		Hangs:      1,
		HangDur:    600 * time.Millisecond,
		Window:     1200 * time.Millisecond,
	}
	inj := fault.New(cfg)
	rt := obs.New(nil)
	rt.StartTrace()
	c, err := Start(testRegistry(), Options{
		Slaves:            4,
		SharedDir:         t.TempDir(),
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		MaxAttempts:       10,
		TaskLease:         1 * time.Second,
		Chaos:             inj,
		Obs:               rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got := runIterativeJob(t, c, rt)
	if !samePairs(want, got) {
		t.Errorf("chaos output diverged: %d records vs %d fault-free", len(got), len(want))
	}

	// Retries the scheduler performed must be visible in the trace:
	// whenever a task failed or was requeued, some recorded attempt is
	// numbered > 1.
	retried := rt.M().Get("mrs_sched_task_failures_total") + rt.M().Get("mrs_sched_requeued_total")
	maxAttempt := 0
	for _, s := range rt.Trace.Spans() {
		if s.Attempt > maxAttempt {
			maxAttempt = s.Attempt
		}
	}
	if retried > 0 && maxAttempt < 2 {
		t.Errorf("%d failures/requeues recorded but trace max attempt = %d, want >= 2",
			retried, maxAttempt)
	}

	// The planned crash must actually have lost a slave (the hang may
	// also be reaped, so accept >= 1). The reaper notices on its own
	// schedule; poll past the plan window.
	deadline := time.Now().Add(5 * time.Second)
	for c.M.Stats().SlavesLost < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("SlavesLost = %d, want >= 1", c.M.Stats().SlavesLost)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Fault injection actually happened: the recorded schedule must
	// contain at least one injected fault (rates ~5% over hundreds of
	// RPCs make a fault-free schedule astronomically unlikely).
	events := inj.Events()
	faulty := 0
	for _, ev := range events {
		if ev.Decision.Faulty() {
			faulty++
		}
	}
	if faulty == 0 {
		t.Errorf("no faults injected across %d recorded decisions", len(events))
	}

	// Determinism: every recorded decision replays identically from the
	// pure (seed, stream, ordinal) function, and a fresh injector with
	// the same config derives the identical crash/hang plan. This is
	// exactly what "rerunning with the same seed reproduces the
	// schedule" means: the schedule is a function of the config, not of
	// goroutine interleaving.
	for _, ev := range events {
		if d := cfg.DecisionAt(ev.Stream, ev.Ordinal); d != ev.Decision {
			t.Fatalf("decision for (%s, %d) not reproducible: recorded %+v, replayed %+v",
				ev.Stream, ev.Ordinal, ev.Decision, d)
		}
	}
	if !reflect.DeepEqual(inj.Plan(4), fault.New(cfg).Plan(4)) {
		t.Error("same-config injectors derived different crash/hang plans")
	}
}

// TestChaosHTTPDataPath exercises the direct slave-to-slave HTTP data
// plane under data-path faults (refused connections, mid-body drops)
// plus control-plane faults — but no crashes, since a dead slave's
// HTTP-served buckets are unrecoverable by design (shared-dir is the
// fault-tolerant mode).
func TestChaosHTTPDataPath(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	inj := fault.New(fault.Config{
		Seed:       7,
		RefuseRate: 0.05,
		DropRate:   0.05,
		DupRate:    0.03,
		DelayRate:  0.05,
		MaxDelay:   20 * time.Millisecond,
	})
	c, err := Start(testRegistry(), Options{
		Slaves:            3,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
		MaxAttempts:       10,
		TaskLease:         1 * time.Second,
		Chaos:             inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	checkCounts(t, runWordCount(t, c))

	dataFaults := 0
	for _, ev := range inj.Events() {
		if len(ev.Stream) > 5 && ev.Stream[len(ev.Stream)-5:] == "/data" && ev.Decision.Faulty() {
			dataFaults++
		}
	}
	if dataFaults == 0 {
		t.Log("note: no data-path faults drawn this run (rates are probabilistic per stream)")
	}
}

// TestClusterSurvivesSlaveCrash (satellite b): 4 slaves in shared-dir
// mode, one killed outright mid-map; the job completes with correct
// counts and the master records the loss.
func TestClusterSurvivesSlaveCrash(t *testing.T) {
	c, err := Start(testRegistry(), Options{
		Slaves:            4,
		SharedDir:         t.TempDir(),
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job := core.NewJob(c.Executor())
	ds, err := job.LocalData(chaosInput(), core.OpOpts{Splits: 8, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := job.MapReduce(ds, "slowsplit", "sum",
		core.OpOpts{Splits: 8, Combine: "sum"}, core.OpOpts{Splits: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Kill one slave while map tasks are in flight.
	time.Sleep(100 * time.Millisecond)
	if err := c.KillSlave(1); err != nil {
		t.Fatal(err)
	}
	pairs, err := out.Collect()
	if err != nil {
		t.Fatalf("job did not survive the crash: %v", err)
	}
	got := map[string]int64{}
	for _, p := range pairs {
		n, err := codec.DecodeVarint(p.Value)
		if err != nil {
			t.Fatal(err)
		}
		got[string(p.Key)] += n
	}
	for w, n := range wantCounts {
		if got[w] != n*4 { // chaosInput repeats the corpus 4x
			t.Errorf("count[%q] = %d, want %d", w, got[w], n*4)
		}
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for c.M.Stats().SlavesLost != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("SlavesLost = %d, want 1", c.M.Stats().SlavesLost)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
