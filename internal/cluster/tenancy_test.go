package cluster

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kvio"
	"repro/internal/master"
	"repro/internal/piest"
)

// tenancyRegistry is the wordcount test registry plus the pi
// estimator's functions, so one fleet can serve both programs.
func tenancyRegistry(picfg piest.Config) *core.Registry {
	reg := testRegistry()
	piest.Register(reg, picfg)
	return reg
}

var piCfg = piest.Config{Samples: 1 << 14, Tasks: 4}

// wordCountRun is the wordcount program as a managed-job driver: it
// must Collect inside the run, before the manager reclaims the job's
// buckets.
func wordCountRun(job *core.Job) ([]kvio.Pair, error) {
	src, err := job.LocalData(inputPairs(), core.OpOpts{Splits: 3, Partition: "roundrobin"})
	if err != nil {
		return nil, err
	}
	out, err := job.MapReduce(src, "split", "sum",
		core.OpOpts{Splits: 4, Combine: "sum"}, core.OpOpts{Splits: 2})
	if err != nil {
		return nil, err
	}
	return out.Collect()
}

// serialBaselines runs both programs in the serial executor — the
// reference output every distributed mode must reproduce exactly.
func serialBaselines(t *testing.T) ([]kvio.Pair, *piest.Result) {
	t.Helper()
	exec := core.NewSerial(tenancyRegistry(piCfg))
	defer exec.Close()

	wcJob := core.NewJob(exec)
	wcPairs, err := wordCountRun(wcJob)
	if err != nil {
		t.Fatal(err)
	}
	if err := wcJob.Close(); err != nil {
		t.Fatal(err)
	}

	piJob := core.NewJob(exec)
	piRes, err := piest.Run(piJob, piCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := piJob.Close(); err != nil {
		t.Fatal(err)
	}
	return wcPairs, piRes
}

// runTenants submits wordcount and pi concurrently to one fleet and
// returns both outputs.
func runTenants(t *testing.T, c *Cluster) ([]kvio.Pair, *piest.Result) {
	t.Helper()
	var (
		wcPairs []kvio.Pair
		piRes   *piest.Result
	)
	wc, err := c.Submit("wordcount", core.JobOptions{Pipeline: true}, func(job *core.Job) error {
		var err error
		wcPairs, err = wordCountRun(job)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Submit("pi", core.JobOptions{Pipeline: true}, func(job *core.Job) error {
		var err error
		piRes, err = piest.Run(job, piCfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Wait(); err != nil {
		t.Fatalf("wordcount job: %v", err)
	}
	if err := pi.Wait(); err != nil {
		t.Fatalf("pi job: %v", err)
	}
	if wc.State() != master.JobDone || pi.State() != master.JobDone {
		t.Fatalf("job states = %s, %s, want done, done", wc.State(), pi.State())
	}
	return wcPairs, piRes
}

func checkTenants(t *testing.T, wantWC, gotWC []kvio.Pair, wantPi, gotPi *piest.Result) {
	t.Helper()
	if !samePairs(wantWC, gotWC) {
		t.Errorf("concurrent wordcount output diverged from serial: %d records vs %d", len(gotWC), len(wantWC))
	}
	if gotPi.Inside != wantPi.Inside || gotPi.Total != wantPi.Total || gotPi.Pi != wantPi.Pi {
		t.Errorf("concurrent pi = %v/%v (%v), serial %v/%v (%v)",
			gotPi.Inside, gotPi.Total, gotPi.Pi, wantPi.Inside, wantPi.Total, wantPi.Pi)
	}
}

// Two programs sharing one master + slave fleet must each produce
// output byte-identical to their serial runs.
func TestConcurrentJobsMatchSerial(t *testing.T) {
	wantWC, wantPi := serialBaselines(t)

	c, err := Start(tenancyRegistry(piCfg), Options{
		Slaves:           3,
		SlaveConcurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	gotWC, gotPi := runTenants(t, c)
	checkTenants(t, wantWC, gotWC, wantPi, gotPi)
}

// The same two concurrent tenants, but under injected chaos — RPC
// refusals, drops, duplications, latency, a crash and a hang. Both
// outputs must still match serial exactly.
func TestConcurrentJobsUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	wantWC, wantPi := serialBaselines(t)

	inj := fault.New(fault.Config{
		Seed:       42,
		RefuseRate: 0.05,
		DropRate:   0.04,
		DupRate:    0.04,
		DelayRate:  0.05,
		MaxDelay:   20 * time.Millisecond,
		Crashes:    1,
		Hangs:      1,
		HangDur:    600 * time.Millisecond,
		Window:     1200 * time.Millisecond,
	})
	c, err := Start(tenancyRegistry(piCfg), Options{
		Slaves:            4,
		SharedDir:         t.TempDir(),
		SlaveConcurrency:  2,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		MaxAttempts:       10,
		TaskLease:         1 * time.Second,
		Chaos:             inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	gotWC, gotPi := runTenants(t, c)
	checkTenants(t, wantWC, gotWC, wantPi, gotPi)
}

// jobFiles counts on-disk bucket files belonging to the given job in
// one store directory (job buckets flatten to a "j<id>_" prefix).
func jobFiles(t *testing.T, dir string, job int64) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	n := 0
	prefix := fmt.Sprintf("j%d_", job)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) {
			n++
		}
	}
	// Per-job scratch dirs ("job<id>-*") count too: GC must reclaim
	// them with the buckets.
	scratch, _ := filepath.Glob(filepath.Join(dir, fmt.Sprintf("job%d-*", job)))
	return n + len(scratch)
}

// A completed job's data must be reclaimed from every slave's disk
// while the fleet keeps serving another job.
func TestJobGCReclaimsSlaveDisk(t *testing.T) {
	c, err := Start(tenancyRegistry(piCfg), Options{Slaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sawFiles := false
	first, err := c.Submit("first", core.JobOptions{Pipeline: true}, func(job *core.Job) error {
		pairs, err := wordCountRun(job)
		if err != nil {
			return err
		}
		if len(pairs) == 0 {
			return fmt.Errorf("no output")
		}
		// While the job is live its buckets are on the slaves' disks.
		for i := 0; i < c.NumSlaves(); i++ {
			if jobFiles(t, c.Slave(i).StoreDir(), 1) > 0 {
				sawFiles = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Wait(); err != nil {
		t.Fatal(err)
	}
	if first.ID() != 1 {
		t.Fatalf("first job id = %d, want 1", first.ID())
	}
	if !sawFiles {
		t.Fatal("first job left no bucket files on any slave while running; GC test observes nothing")
	}

	// A second tenant keeps the fleet busy; its get_task polls carry
	// the first job's GC broadcast.
	second, err := c.Submit("second", core.JobOptions{Pipeline: true}, func(job *core.Job) error {
		pairs, err := wordCountRun(job)
		if err != nil {
			return err
		}
		if len(pairs) == 0 {
			return fmt.Errorf("no output")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Wait(); err != nil {
		t.Fatal(err)
	}

	// Every slave polls continuously, so the broadcast lands promptly;
	// allow a little slack for the loop to come around.
	deadline := time.Now().Add(5 * time.Second)
	for {
		left := 0
		for i := 0; i < c.NumSlaves(); i++ {
			left += jobFiles(t, c.Slave(i).StoreDir(), 1)
		}
		if left == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job's files still on slave disks: %d", left)
		}
		time.Sleep(20 * time.Millisecond)
	}
	var gcs int64
	for i := 0; i < c.NumSlaves(); i++ {
		gcs += c.Slave(i).JobGCs()
	}
	if gcs == 0 {
		t.Fatal("no slave performed a job GC")
	}
	// The master's own store (source buckets) is reclaimed too.
	if n := jobFiles(t, c.M.Store().Dir(), 1); n != 0 {
		t.Fatalf("master still holds %d files of the completed job", n)
	}
}

// With MaxConcurrentJobs 1, a second submission waits in the admission
// queue until the first job's driver finishes.
func TestAdmissionQueueBounds(t *testing.T) {
	c, err := Start(tenancyRegistry(piCfg), Options{Slaves: 2, MaxConcurrentJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	first, err := c.Submit("blocker", core.JobOptions{Pipeline: true}, func(job *core.Job) error {
		close(started)
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	second, err := c.Submit("waiter", core.JobOptions{Pipeline: true}, func(job *core.Job) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The second job must sit in the admission queue while the first
	// holds the only slot.
	for i := 0; i < 10; i++ {
		if st := second.State(); st != master.JobQueued {
			t.Fatalf("second job state = %s while first is running, want queued", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(release)
	if err := first.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := second.Wait(); err != nil {
		t.Fatal(err)
	}
	if first.State() != master.JobDone || second.State() != master.JobDone {
		t.Fatalf("states = %s, %s, want done, done", first.State(), second.State())
	}
}

// /debug/status keeps its classic aggregate fields and adds a per-job
// table once the manager has hosted jobs.
func TestStatusPageListsJobs(t *testing.T) {
	c, err := Start(tenancyRegistry(piCfg), Options{Slaves: 2, SlaveConcurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	runTenants(t, c)

	resp, err := http.Get("http://" + c.M.Addr() + "/debug/status")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, want := range []string{
		"mrs master",        // classic header
		"slaves live:",      // classic aggregate fields…
		"sched:",            //
		"tasks:",            // …all still present
		"jobs:",             // new per-job table
		`job 1 "wordcount"`, //
		`job 2 "pi"`,        //
		"done",              // both completed
		"bytes shuffled",    //
	} {
		if !strings.Contains(page, want) {
			t.Errorf("status page missing %q:\n%s", want, page)
		}
	}
}
