package cluster

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/kvio"
	"repro/internal/obs"
)

var errFlaky = errors.New("flaky: first attempt fails")

// TestClusterMetricsAndTrace runs a pipelined wordcount on a real
// cluster with the observability runtime attached and cross-checks the
// three accounting surfaces against each other: the trace span count,
// the shared metric counters, and Job.Stats.
func TestClusterMetricsAndTrace(t *testing.T) {
	rt := obs.New(nil)
	rt.StartTrace()
	c, err := Start(testRegistry(), Options{Slaves: 2, Obs: rt})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job := core.NewJobWith(c.Executor(), core.JobOptions{Pipeline: true, Obs: rt})
	src, err := job.LocalData(inputPairs(), core.OpOpts{Splits: 3, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := job.MapReduce(src, "split", "sum",
		core.OpOpts{Splits: 4, Combine: "sum"}, core.OpOpts{Splits: 2})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, p := range pairs {
		got[string(p.Key)]++
	}
	stats := job.Stats()
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantCounts) {
		t.Errorf("got %d words, want %d", len(got), len(wantCounts))
	}

	// 3 map tasks (one per source split) + 4 reduce tasks (one per map
	// output split).
	if stats.Tasks != 7 {
		t.Errorf("Job.Stats.Tasks = %d, want 7", stats.Tasks)
	}
	m := rt.M()
	if n := m.Get("mrs_tasks_submitted_total"); n != stats.Tasks {
		t.Errorf("mrs_tasks_submitted_total = %d, want %d", n, stats.Tasks)
	}
	// Every submitted task was assigned and completed exactly once (no
	// faults in this run), and the slaves' task engines executed them.
	if n := m.Get("mrs_sched_completed_total"); n != stats.Tasks {
		t.Errorf("mrs_sched_completed_total = %d, want %d", n, stats.Tasks)
	}
	if n := m.Get("mrs_sched_assigned_total"); n < stats.Tasks {
		t.Errorf("mrs_sched_assigned_total = %d, want >= %d", n, stats.Tasks)
	}
	if n := m.Get("mrs_tasks_executed_total"); n < stats.Tasks {
		t.Errorf("mrs_tasks_executed_total = %d, want >= %d", n, stats.Tasks)
	}
	// The reduce stage pulled map output across slaves over HTTP, so
	// direct shuffle bytes were classified and the driver saw input.
	if n := m.Get("mrs_shuffle_bytes_direct_total"); n == 0 {
		t.Error("mrs_shuffle_bytes_direct_total = 0, want > 0")
	}
	if stats.InBytes == 0 || stats.ShuffleNS == 0 {
		t.Errorf("Job.Stats shuffle accounting empty: in=%d shuffleNS=%d",
			stats.InBytes, stats.ShuffleNS)
	}

	// The trace agrees: one finished span per completed task, and the
	// export is a valid Chrome trace.
	var buf bytes.Buffer
	if err := rt.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	if int64(st.Spans) != stats.Tasks {
		t.Errorf("trace has %d spans, want %d", st.Spans, stats.Tasks)
	}
	if st.Workers != 2 {
		t.Errorf("trace names %d workers, want 2", st.Workers)
	}
}

// TestTraceShowsRetriedAttempts forces a deterministic first-attempt
// failure and checks the retry is visible in the trace: the failed
// attempt carries an error and the task's successful attempt is
// numbered > 1.
func TestTraceShowsRetriedAttempts(t *testing.T) {
	var calls atomic.Int64
	reg := testRegistry()
	reg.RegisterMap("flaky", func(key, value []byte, emit kvio.Emitter) error {
		if calls.Add(1) == 1 {
			return errFlaky
		}
		return emit.Emit(key, value)
	})

	rt := obs.New(nil)
	rt.StartTrace()
	c, err := Start(reg, Options{Slaves: 2, MaxAttempts: 4, Obs: rt})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job := core.NewJobWith(c.Executor(), core.JobOptions{Obs: rt})
	src, err := job.LocalData(inputPairs(), core.OpOpts{Splits: 2, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := job.Map(src, "flaky", core.OpOpts{Splits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := out.Collect(); err != nil {
		t.Fatalf("job did not survive the flaky first attempt: %v", err)
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}

	spans := rt.Trace.Spans()
	maxAttempt, errored := 0, 0
	for _, s := range spans {
		if s.Attempt > maxAttempt {
			maxAttempt = s.Attempt
		}
		if s.Err != "" {
			errored++
		}
	}
	if maxAttempt < 2 {
		t.Errorf("max attempt in trace = %d, want >= 2 after a forced failure", maxAttempt)
	}
	if errored == 0 {
		t.Error("no errored span recorded for the failed attempt")
	}
	if n := rt.M().Get("mrs_sched_task_failures_total"); n < 1 {
		t.Errorf("mrs_sched_task_failures_total = %d, want >= 1", n)
	}
	if n := rt.M().Get("mrs_sched_retries_total"); n < 1 {
		t.Errorf("mrs_sched_retries_total = %d, want >= 1", n)
	}
}
