package cluster

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/wirecodec"
)

// TestCodecGridByteIdentical is the block data plane's correctness
// gate: the same shuffle-heavy job under legacy framing (plain and
// old-style whole-stream deflate) and under every registered block
// codec, each at prefetch width 1 and 8, over the direct HTTP data
// plane — every output must be byte-identical. The grid deliberately
// mixes the pre-block wire format with the registry codecs, so a fleet
// upgraded one binary at a time keeps producing the same answers.
func TestCodecGridByteIdentical(t *testing.T) {
	type config struct {
		codec    string
		encoding string
		rowOnly  bool
		compress bool
		prefetch int
	}
	var configs []config
	for _, p := range []int{1, 8} {
		configs = append(configs,
			config{codec: "", compress: false, prefetch: p}, // legacy plain
			config{codec: "", compress: true, prefetch: p},  // old-style deflate
		)
		for _, name := range wirecodec.Names() {
			configs = append(configs, config{codec: name, prefetch: p})
			// The columnar plane under every key encoding.
			for _, enc := range []string{"columnar-raw", "columnar-dict", "columnar-delta"} {
				configs = append(configs, config{codec: name, encoding: enc, prefetch: p})
			}
		}
	}
	// The mixed-version cell: every node writes columnar, but fetches
	// like a pre-columnar peer, so each data server takes the
	// row-transcode fallback on every request.
	configs = append(configs, config{codec: wirecodec.LZName, encoding: "columnar-dict", rowOnly: true, prefetch: 8})
	var want []kvio.Pair
	for _, cfg := range configs {
		cfg := cfg
		name := fmt.Sprintf("codec=%s,compress=%v,prefetch=%d", cfg.codec, cfg.compress, cfg.prefetch)
		if cfg.codec == "" {
			name = fmt.Sprintf("legacy,compress=%v,prefetch=%d", cfg.compress, cfg.prefetch)
		}
		if cfg.encoding != "" {
			name = fmt.Sprintf("codec=%s,enc=%s,prefetch=%d", cfg.codec, cfg.encoding, cfg.prefetch)
			if cfg.rowOnly {
				name += ",row-only-peer"
			}
		}
		t.Run(name, func(t *testing.T) {
			rt := obs.New(nil)
			c, err := Start(testRegistry(), Options{
				Slaves:        3,
				Prefetch:      cfg.prefetch,
				Compress:      cfg.compress,
				Codec:         cfg.codec,
				BlockEncoding: cfg.encoding,
				RowOnlyFetch:  cfg.rowOnly,
				Obs:           rt,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			got := runShuffleJob(t, c, rt)
			if len(got) == 0 {
				t.Fatal("job produced no output")
			}
			if want == nil {
				want = got
			} else if !samePairs(want, got) {
				t.Errorf("%s output diverged from baseline: %d records vs %d",
					name, len(got), len(want))
			}
			if cfg.encoding != "" {
				// Columnar cells: columnar blocks were actually written,
				// and the wire split shows whether peers fetched them
				// (homogeneous fleet) or forced the row fallback
				// (row-only mixed-version cell).
				snap := rt.M().Snapshot()
				if snap[obs.MetricBlocksColumnar] == 0 {
					t.Error("no columnar blocks written under a columnar encoding")
				}
				wire := snap[obs.MetricWireBytesDirect]
				colWire := snap[obs.MetricWireBytesEncoding("columnar")]
				rowWire := snap[obs.MetricWireBytesEncoding("row")]
				if cfg.rowOnly {
					if colWire != 0 {
						t.Errorf("row-only peers moved %d columnar wire bytes", colWire)
					}
					if rowWire != wire {
						t.Errorf("row wire bytes = %d, want all direct traffic %d", rowWire, wire)
					}
				} else if colWire != wire {
					t.Errorf("columnar wire bytes = %d, want all direct traffic %d", colWire, wire)
				}
			}
			if cfg.codec == "" {
				return
			}
			// Homogeneous block fleet: every direct-path wire byte moved
			// under the configured codec, so the per-codec counter must
			// equal the per-path wire counter; and a compressing codec
			// must actually undercut the decoded payload.
			snap := rt.M().Snapshot()
			raw := snap[obs.MetricShuffleBytesDirect]
			wire := snap[obs.MetricWireBytesDirect]
			perCodec := snap[obs.MetricWireBytesCodec(cfg.codec)]
			if raw == 0 {
				t.Fatal("no direct-path shuffle bytes recorded")
			}
			if wire == 0 {
				t.Fatal("no direct-path wire bytes recorded")
			}
			if perCodec != wire {
				t.Errorf("per-codec wire bytes = %d, want %d (all traffic under %s)",
					perCodec, wire, cfg.codec)
			}
			if cfg.codec == wirecodec.IdentityName {
				// Identity blocks add framing on top of the payload.
				if wire < raw {
					t.Errorf("identity wire bytes = %d below payload %d; compressed?", wire, raw)
				}
			} else if wire >= raw {
				t.Errorf("%s wire bytes = %d, want < payload %d", cfg.codec, wire, raw)
			}
		})
	}
}

// TestCodecSerialMatchesCluster closes the cross-mode half of the
// grid: the serial executor (memory buckets, legacy framing), the mock
// executor with each block codec at rest (file buckets), and an lz
// cluster must all produce byte-identical output. A codec is a storage
// and wire detail; it must never be observable in job results.
func TestCodecSerialMatchesCluster(t *testing.T) {
	rt := obs.New(nil)
	c, err := Start(testRegistry(), Options{Slaves: 3, Codec: wirecodec.LZName, Obs: rt})
	if err != nil {
		t.Fatal(err)
	}
	want := runShuffleJob(t, c, rt)
	c.Close()
	if len(want) == 0 {
		t.Fatal("cluster run produced no output")
	}

	serial := core.NewSerial(testRegistry())
	got := runShuffleJobOn(t, serial, nil)
	serial.Close()
	if !samePairs(want, got) {
		t.Errorf("serial output diverged from lz cluster: %d records vs %d", len(got), len(want))
	}

	for _, name := range wirecodec.Names() {
		exec, err := core.NewMockParallel(testRegistry(), t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := exec.SetCodec(name); err != nil {
			t.Fatal(err)
		}
		got := runShuffleJobOn(t, exec, nil)
		exec.Close()
		if !samePairs(want, got) {
			t.Errorf("mock codec=%s output diverged from lz cluster: %d records vs %d",
				name, len(got), len(want))
		}
	}
}
