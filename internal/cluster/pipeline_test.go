package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvio"
	"repro/internal/partition"
)

// TestAllExecutorsAgreeExactly extends the core invariant test of the
// same name across the network: serial, mock-parallel, threads, and a
// real master/slave cluster must produce byte-identical sorted record
// streams — and the pipelined scheduler must agree with the barriered
// ablation on every executor. The program ends in a narrow follow-on
// reduce so the split-level release path is on the line for all of
// them.
func TestAllExecutorsAgreeExactly(t *testing.T) {
	program := func(exec core.Executor, opts core.JobOptions) []kvio.Pair {
		job := core.NewJobWith(exec, opts)
		src, err := job.LocalData(inputPairs(), core.OpOpts{Splits: 3, Partition: "roundrobin"})
		if err != nil {
			t.Fatal(err)
		}
		mid, err := job.MapReduce(src, "split", "sum",
			core.OpOpts{Splits: 4, Combine: "sum"}, core.OpOpts{Splits: 2})
		if err != nil {
			t.Fatal(err)
		}
		out, err := job.Reduce(mid, "sum", core.OpOpts{Splits: 2, KeyAligned: true})
		if err != nil {
			t.Fatal(err)
		}
		pairs, err := out.CollectSorted()
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Close(); err != nil {
			t.Fatal(err)
		}
		return pairs
	}

	type run struct {
		name  string
		pairs []kvio.Pair
	}
	var runs []run
	for _, pipelined := range []bool{true, false} {
		opts := core.JobOptions{Pipeline: pipelined}
		suffix := "/pipelined"
		if !pipelined {
			suffix = "/barriered"
		}

		serial := core.NewSerial(testRegistry())
		runs = append(runs, run{"serial" + suffix, program(serial, opts)})
		serial.Close()

		mock, err := core.NewMockParallel(testRegistry(), "")
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{"mock" + suffix, program(mock, opts)})
		mock.Close()

		threads := core.NewThreads(testRegistry(), 8)
		runs = append(runs, run{"threads" + suffix, program(threads, opts)})
		threads.Close()

		c, err := Start(testRegistry(), Options{Slaves: 2})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{"cluster" + suffix, program(c.Executor(), opts)})
		c.Close()
	}

	base := runs[0]
	if len(base.pairs) == 0 {
		t.Fatalf("%s produced no output", base.name)
	}
	for _, r := range runs[1:] {
		if len(r.pairs) != len(base.pairs) {
			t.Fatalf("%s: %d records vs %s %d", r.name, len(r.pairs), base.name, len(base.pairs))
			continue
		}
		for i := range base.pairs {
			if !bytes.Equal(base.pairs[i].Key, r.pairs[i].Key) ||
				!bytes.Equal(base.pairs[i].Value, r.pairs[i].Value) {
				t.Errorf("%s: record %d differs: %v vs %v", r.name, i, r.pairs[i], base.pairs[i])
			}
		}
	}
}

// TestPipelineOverlapsIterations is the pipelining acceptance test: on
// a two-slave cluster, a downstream map task must start while the
// slowest task of a narrow reduce is still running — iteration i+1
// overlapping iteration i's straggler. The barriered ablation must show
// no such overlap.
func TestPipelineOverlapsIterations(t *testing.T) {
	// Two keys that the default hash partitioner routes to different
	// splits of 2, so the slow and fast work land on distinct tasks.
	var slowKey, fastKey string
	for i := 0; i < 1000 && (slowKey == "" || fastKey == ""); i++ {
		k := fmt.Sprintf("k%d", i)
		switch partition.Hash([]byte(k), 0, 2) {
		case 0:
			if slowKey == "" {
				slowKey = k
			}
		default:
			if fastKey == "" {
				fastKey = k
			}
		}
	}
	if slowKey == "" || fastKey == "" {
		t.Fatal("no keys found covering both hash splits")
	}

	run := func(pipelined bool, window time.Duration) bool {
		slowRelease := make(chan struct{})
		fastSeen := make(chan struct{})
		var once sync.Once
		reg := testRegistry()
		reg.RegisterReduce("slowred", func(key []byte, values [][]byte, emit kvio.Emitter) error {
			if string(key) == slowKey {
				select {
				case <-slowRelease:
				case <-time.After(30 * time.Second):
					return fmt.Errorf("slow reduce never released")
				}
			}
			return emit.Emit(key, values[0])
		})
		reg.RegisterMap("recorder", func(key, value []byte, emit kvio.Emitter) error {
			if string(key) == fastKey {
				once.Do(func() { close(fastSeen) })
			}
			return emit.Emit(key, value)
		})

		c, err := Start(reg, Options{Slaves: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		job := core.NewJobWith(c.Executor(), core.JobOptions{Pipeline: pipelined})
		// Hash partitioning puts each key in its own source split.
		src, err := job.LocalData([]kvio.Pair{
			{Key: []byte(slowKey), Value: []byte("s")},
			{Key: []byte(fastKey), Value: []byte("f")},
		}, core.OpOpts{Splits: 2})
		if err != nil {
			t.Fatal(err)
		}
		red, err := job.Reduce(src, "slowred", core.OpOpts{Splits: 2, KeyAligned: true})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := job.Map(red, "recorder", core.OpOpts{Splits: 2})
		if err != nil {
			t.Fatal(err)
		}
		// The slow split's reduce task is still blocked on slowRelease:
		// did the downstream map of the fast split run anyway?
		overlapped := false
		select {
		case <-fastSeen:
			overlapped = true
		case <-time.After(window):
		}
		close(slowRelease)
		if err := rec.Wait(); err != nil {
			t.Fatal(err)
		}
		pairs, err := rec.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != 2 {
			t.Fatalf("pipelined=%v: %d records out, want 2", pipelined, len(pairs))
		}
		if err := job.Close(); err != nil {
			t.Fatal(err)
		}
		return overlapped
	}

	if !run(true, 8*time.Second) {
		t.Error("pipelined: downstream map never overlapped the straggling reduce task")
	}
	if run(false, 1500*time.Millisecond) {
		t.Error("barriered: overlap observed despite the barrier")
	}
}
