package cluster

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/rpcproto"
)

// serialWordCount computes the reference output for byte-identity
// comparisons.
func serialWordCount(t *testing.T) []kvio.Pair {
	t.Helper()
	exec := core.NewSerial(testRegistry())
	defer exec.Close()
	job := core.NewJob(exec)
	defer job.Close()
	src, err := job.LocalData(inputPairs(), core.OpOpts{Splits: 3, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := job.MapReduce(src, "split", "sum", core.OpOpts{Splits: 4, Combine: "sum"}, core.OpOpts{Splits: 2})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := out.CollectSorted()
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

func checkByteIdentical(t *testing.T, want, got []kvio.Pair) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("serial %d records, distributed %d", len(want), len(got))
	}
	for i := range want {
		if !bytes.Equal(want[i].Key, got[i].Key) || !bytes.Equal(want[i].Value, got[i].Value) {
			t.Errorf("record %d: serial %v, distributed %v", i, want[i], got[i])
		}
	}
}

func TestHierarchicalWordCount(t *testing.T) {
	// Two sub-masters, three leaves: the master never sees a slave, yet
	// the job's answer is the same as the flat topology's.
	rt := obs.New(nil)
	c, err := Start(testRegistry(), Options{Slaves: 3, SubMasters: 2, Obs: rt})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	checkCounts(t, runWordCount(t, c))

	nodes := c.Master().Nodes()
	if len(nodes) != 2 {
		t.Fatalf("master sees %d nodes, want 2 sub-masters: %+v", len(nodes), nodes)
	}
	for _, n := range nodes {
		if n.Kind != rpcproto.NodeKindSubmaster {
			t.Errorf("node %s kind = %q, want submaster", n.ID, n.Kind)
		}
	}
	fetched := int64(0)
	for i := 0; i < c.NumSubMasters(); i++ {
		fetched += c.SubMaster(i).TasksFetched()
	}
	if fetched == 0 {
		t.Error("no tasks flowed through the sub-masters")
	}
	if rt.M().Get(obs.MetricSubmasterBatches) == 0 {
		t.Error("no report batches were sent upward")
	}
	if rt.M().Get(obs.MetricMasterBatchReports) == 0 {
		t.Error("master counted no batch reports")
	}
}

func TestHierarchicalSharedFS(t *testing.T) {
	c, err := Start(testRegistry(), Options{Slaves: 2, SubMasters: 1, SharedDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	checkCounts(t, runWordCount(t, c))
}

func TestElasticJoinMidJobByteIdentical(t *testing.T) {
	// A slave that joins mid-job starts pulling work immediately, and
	// the output is byte-identical to the serial run.
	want := serialWordCount(t)

	reg := testRegistry()
	c, err := Start(reg, Options{Slaves: 1, SubMasters: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job := core.NewJob(c.Executor())
	var pairs []kvio.Pair
	for i := 0; i < 16; i++ {
		pairs = append(pairs, kvio.Pair{Key: codec.EncodeVarint(int64(i)), Value: []byte("x y z")})
	}
	src, err := job.LocalData(pairs, core.OpOpts{Splits: 16, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := job.Map(src, "slowmap", core.OpOpts{Splits: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Let the lone slave start chewing, then grow the fleet mid-job.
	time.Sleep(60 * time.Millisecond)
	joined, err := c.AddSlave(reg, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Wait(); err != nil {
		t.Fatal(err)
	}
	if n := c.Slave(joined).TasksRun(); n == 0 {
		t.Error("mid-job joiner ran no tasks")
	}
	job.Close()

	// And the cluster still computes exact answers afterwards.
	jobD := core.NewJob(c.Executor())
	srcD, _ := jobD.LocalData(inputPairs(), core.OpOpts{Splits: 3, Partition: "roundrobin"})
	outD, _ := jobD.MapReduce(srcD, "split", "sum", core.OpOpts{Splits: 4, Combine: "sum"}, core.OpOpts{Splits: 2})
	got, err := outD.CollectSorted()
	if err != nil {
		t.Fatal(err)
	}
	jobD.Close()
	checkByteIdentical(t, want, got)
}

func TestDrainReturnsLeases(t *testing.T) {
	// Draining a node mid-job requeues its leases immediately — the job
	// finishes on the survivors without waiting out a heartbeat timeout
	// — and the drained node's loop exits cleanly.
	rt := obs.New(nil)
	c, err := Start(testRegistry(), Options{Slaves: 2, Obs: rt})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job := core.NewJob(c.Executor())
	var pairs []kvio.Pair
	for i := 0; i < 16; i++ {
		pairs = append(pairs, kvio.Pair{Key: codec.EncodeVarint(int64(i)), Value: []byte("x")})
	}
	src, _ := job.LocalData(pairs, core.OpOpts{Splits: 16, Partition: "roundrobin"})
	out, err := job.Map(src, "slowmap", core.OpOpts{Splits: 1})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	nodes := c.Master().Nodes()
	if len(nodes) != 2 {
		t.Fatalf("master sees %d nodes, want 2", len(nodes))
	}
	if !c.Drain(nodes[0].ID) {
		t.Fatalf("drain of %s refused", nodes[0].ID)
	}
	if err := out.Wait(); err != nil {
		t.Fatalf("job did not survive the drain: %v", err)
	}
	job.Close()

	// The drained node learns of the drain on its next poll and is
	// forgotten; no heartbeat-timeout reap is involved.
	deadline := time.Now().Add(5 * time.Second)
	for len(c.Master().Nodes()) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("drained node still registered: %+v", c.Master().Nodes())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.Master().Stats().SlavesLost; got != 0 {
		t.Errorf("drain counted as a death: SlavesLost = %d", got)
	}
}

func TestSpeculativeDuplicateFirstWins(t *testing.T) {
	// One task attempt stalls (first execution only); with speculation
	// on, the master launches a duplicate on the other slave, the fast
	// copy wins, and the job finishes long before the stall ends.
	reg := testRegistry()
	var stalled atomic.Bool
	reg.RegisterMap("stallonce", func(key, value []byte, emit kvio.Emitter) error {
		if n, err := codec.DecodeVarint(key); err == nil && n == 0 && stalled.CompareAndSwap(false, true) {
			time.Sleep(2 * time.Second)
		} else {
			time.Sleep(20 * time.Millisecond)
		}
		return emit.Emit(key, value)
	})

	rt := obs.New(nil)
	c, err := Start(reg, Options{
		Slaves:            2,
		Obs:               rt,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  10 * time.Second, // only speculation may rescue the stall
		SpeculationFactor: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job := core.NewJob(c.Executor())
	var pairs []kvio.Pair
	for i := 0; i < 10; i++ {
		pairs = append(pairs, kvio.Pair{Key: codec.EncodeVarint(int64(i)), Value: []byte("v")})
	}
	src, _ := job.LocalData(pairs, core.OpOpts{Splits: 10, Partition: "roundrobin"})
	out, err := job.Map(src, "stallonce", core.OpOpts{Splits: 1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := out.Wait(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	job.Close()

	if elapsed >= 2*time.Second {
		t.Errorf("job waited out the straggler (%v); speculation did not rescue it", elapsed)
	}
	if rt.M().Get(obs.MetricSchedSpeculative) == 0 {
		t.Error("no speculative attempt was launched")
	}
	if rt.M().Get(obs.MetricSchedSpeculativeWins) == 0 {
		t.Error("no speculative attempt won")
	}
	// The stalled original eventually reports; its completion must be
	// counted as late, not crash anything. Give it time to land.
	deadline := time.Now().Add(4 * time.Second)
	for rt.M().Get(obs.MetricSchedLateReports) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("losing attempt's completion never counted late")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestSubMasterCrashMidJob(t *testing.T) {
	// Killing a sub-master orphans its shard; the master's heartbeat
	// timeout requeues the shard's leases and the surviving sub-master's
	// shard finishes the job.
	c, err := Start(testRegistry(), Options{
		Slaves:            4,
		SubMasters:        2,
		SharedDir:         t.TempDir(),
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job := core.NewJob(c.Executor())
	var pairs []kvio.Pair
	for i := 0; i < 30; i++ {
		pairs = append(pairs, kvio.Pair{Key: codec.EncodeVarint(int64(i)), Value: []byte("x y z")})
	}
	src, _ := job.LocalData(pairs, core.OpOpts{Splits: 30, Partition: "roundrobin"})
	out, err := job.MapReduce(src, "slowsplit", "sum", core.OpOpts{Splits: 2}, core.OpOpts{Splits: 1})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := c.KillSubMaster(0); err != nil {
		t.Fatal(err)
	}
	if err := out.Wait(); err != nil {
		t.Fatalf("job did not survive sub-master death: %v", err)
	}
	job.Close()
}

func TestSlaveResigninTargetsSubmasterAfterMasterRestart(t *testing.T) {
	// A master restart invalidates the sub-master's upward identity but
	// is invisible one level down: the sub-master re-signs in, its
	// children never do, and the next job still computes exactly.
	c, err := Start(testRegistry(), Options{
		Slaves:     2,
		SubMasters: 1,
		SharedDir:  t.TempDir(),
		JournalDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	checkCounts(t, runWordCount(t, c))

	c.CrashMaster()
	if err := c.RestartMaster(); err != nil {
		t.Fatal(err)
	}

	checkCounts(t, runWordCount(t, c))
	if got := c.SubMaster(0).Resignins(); got == 0 {
		t.Error("sub-master never re-signed in after the master restart")
	}
	for i := 0; i < c.NumSlaves(); i++ {
		if got := c.Slave(i).Resignins(); got != 0 {
			t.Errorf("slave %d re-signed in %d times; the restart should be invisible to leaves", i, got)
		}
	}
}
