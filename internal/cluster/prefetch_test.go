package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kvio"
	"repro/internal/obs"
)

// prefetchInput is a corpus with long, repetitive lines: large enough
// that input and shuffle transfers dominate, and compressible enough
// that wire compression visibly undercuts the raw byte counts (the
// short chaosInput lines are smaller than the flate framing overhead).
func prefetchInput() []kvio.Pair {
	var pairs []kvio.Pair
	for i := 0; i < 24; i++ {
		line := strings.Repeat(inputLines[i%len(inputLines)]+" ", 40)
		pairs = append(pairs, kvio.Pair{Key: codec.EncodeVarint(int64(i)), Value: []byte(line)})
	}
	return pairs
}

// runShuffleJob runs a map-reduce whose reduce splits each fetch many
// map outputs (M=6 map splits × R=3 reduce splits over HTTP), which is
// the shape the parallel prefetch accelerates. Collected sorted so
// outputs are byte-comparable across configurations.
func runShuffleJob(t *testing.T, c *Cluster, rt *obs.Runtime) []kvio.Pair {
	t.Helper()
	return runShuffleJobOn(t, c.Executor(), rt)
}

// runShuffleJobOn is the executor-generic form, so the same job can be
// compared across serial, mock, and cluster modes.
func runShuffleJobOn(t *testing.T, exec core.Executor, rt *obs.Runtime) []kvio.Pair {
	t.Helper()
	job := core.NewJobWith(exec, core.JobOptions{Pipeline: true, Obs: rt})
	src, err := job.LocalData(prefetchInput(), core.OpOpts{Splits: 6, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := job.MapReduce(src, "split", "sum",
		core.OpOpts{Splits: 6, Combine: "sum"}, core.OpOpts{Splits: 3})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := out.CollectSorted()
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	return pairs
}

// TestParallelFetchByteIdentical is the tentpole's correctness gate:
// the same job at prefetch width 1 (sequential streaming) and width 8,
// each with wire compression off and on, over the direct HTTP data
// plane — all four outputs must be byte-identical.
func TestParallelFetchByteIdentical(t *testing.T) {
	type config struct {
		prefetch int
		compress bool
	}
	configs := []config{
		{prefetch: 1, compress: false},
		{prefetch: 8, compress: false},
		{prefetch: 1, compress: true},
		{prefetch: 8, compress: true},
	}
	var want []kvio.Pair
	for _, cfg := range configs {
		cfg := cfg
		name := fmt.Sprintf("prefetch=%d,compress=%v", cfg.prefetch, cfg.compress)
		t.Run(name, func(t *testing.T) {
			rt := obs.New(nil)
			c, err := Start(testRegistry(), Options{
				Slaves:   3,
				Prefetch: cfg.prefetch,
				Compress: cfg.compress,
				Obs:      rt,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			got := runShuffleJob(t, c, rt)
			if len(got) == 0 {
				t.Fatal("job produced no output")
			}
			if want == nil {
				want = got
			} else if !samePairs(want, got) {
				t.Errorf("%s output diverged from baseline: %d records vs %d",
					name, len(got), len(want))
			}
			if cfg.compress {
				// Wire compression must actually have engaged: bytes moved
				// over the direct path are fewer than the decoded payload.
				snap := rt.M().Snapshot()
				raw := snap[obs.MetricShuffleBytesDirect]
				wire := snap[obs.MetricWireBytesDirect]
				if raw == 0 {
					t.Fatal("no direct-path shuffle bytes recorded")
				}
				if wire == 0 || wire >= raw {
					t.Errorf("wire bytes = %d, want >0 and < raw %d", wire, raw)
				}
			}
		})
	}
}

// TestChaosWithPrefetchAndCompression reruns the headline chaos job
// with the parallel prefetcher and wire compression enabled: RPC and
// data-path faults, a crash and a hang, and the output must still be
// byte-identical to a fault-free run with both features off. This
// proves the whole-fetch retry inside Store.Fetch composes with the
// prefetch window under injected mid-stream failures.
func TestChaosWithPrefetchAndCompression(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}

	clean, err := Start(testRegistry(), Options{Slaves: 4, SharedDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	want := runIterativeJob(t, clean, nil)
	clean.Close()
	if len(want) == 0 {
		t.Fatal("fault-free run produced no output")
	}

	inj := fault.New(fault.Config{
		Seed:       1234,
		RefuseRate: 0.05,
		DropRate:   0.04,
		DupRate:    0.04,
		DelayRate:  0.05,
		MaxDelay:   20 * time.Millisecond,
		Crashes:    1,
		Hangs:      1,
		HangDur:    600 * time.Millisecond,
		Window:     1200 * time.Millisecond,
	})
	c, err := Start(testRegistry(), Options{
		Slaves:            4,
		SharedDir:         t.TempDir(),
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		MaxAttempts:       10,
		TaskLease:         1 * time.Second,
		Chaos:             inj,
		Prefetch:          8,
		Compress:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got := runIterativeJob(t, c, nil)
	if !samePairs(want, got) {
		t.Errorf("chaos output with prefetch+compression diverged: %d records vs %d fault-free",
			len(got), len(want))
	}
}
