package cluster

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kvio"
)

func testRegistry() *core.Registry {
	reg := core.NewRegistry()
	reg.RegisterMap("split", func(key, value []byte, emit kvio.Emitter) error {
		for _, w := range strings.Fields(string(value)) {
			if err := emit.Emit([]byte(w), codec.EncodeVarint(1)); err != nil {
				return err
			}
		}
		return nil
	})
	reg.RegisterReduce("sum", func(key []byte, values [][]byte, emit kvio.Emitter) error {
		var total int64
		for _, v := range values {
			n, err := codec.DecodeVarint(v)
			if err != nil {
				return err
			}
			total += n
		}
		return emit.Emit(key, codec.EncodeVarint(total))
	})
	reg.RegisterMap("identity", func(key, value []byte, emit kvio.Emitter) error {
		return emit.Emit(key, value)
	})
	reg.RegisterMap("slowmap", func(key, value []byte, emit kvio.Emitter) error {
		time.Sleep(30 * time.Millisecond)
		return emit.Emit(key, value)
	})
	reg.RegisterMap("slowsplit", func(key, value []byte, emit kvio.Emitter) error {
		time.Sleep(30 * time.Millisecond)
		for _, w := range strings.Fields(string(value)) {
			if err := emit.Emit([]byte(w), codec.EncodeVarint(1)); err != nil {
				return err
			}
		}
		return nil
	})
	reg.RegisterMap("boom", func(key, value []byte, emit kvio.Emitter) error {
		return fmt.Errorf("deliberate map failure")
	})
	return reg
}

var inputLines = []string{
	"a b c a",
	"b b c",
	"d a",
	"c c c d",
	"e",
	"a e e",
}

var wantCounts = map[string]int64{"a": 4, "b": 3, "c": 5, "d": 2, "e": 3}

func inputPairs() []kvio.Pair {
	pairs := make([]kvio.Pair, len(inputLines))
	for i, l := range inputLines {
		pairs[i] = kvio.Pair{Key: codec.EncodeVarint(int64(i)), Value: []byte(l)}
	}
	return pairs
}

func runWordCount(t *testing.T, c *Cluster) map[string]int64 {
	t.Helper()
	job := core.NewJob(c.Executor())
	src, err := job.LocalData(inputPairs(), core.OpOpts{Splits: 3, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := job.MapReduce(src, "split", "sum",
		core.OpOpts{Splits: 4, Combine: "sum"}, core.OpOpts{Splits: 2})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, p := range pairs {
		n, err := codec.DecodeVarint(p.Value)
		if err != nil {
			t.Fatal(err)
		}
		got[string(p.Key)] += n
	}
	// Job close is separate from cluster close: the cluster can run
	// many jobs.
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	return got
}

func checkCounts(t *testing.T, got map[string]int64) {
	t.Helper()
	if len(got) != len(wantCounts) {
		t.Errorf("got %d words, want %d: %v", len(got), len(wantCounts), got)
	}
	for w, n := range wantCounts {
		if got[w] != n {
			t.Errorf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
}

func TestDistributedWordCountHTTP(t *testing.T) {
	c, err := Start(testRegistry(), Options{Slaves: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	checkCounts(t, runWordCount(t, c))
	stats := c.M.Stats()
	if stats.TasksDone == 0 {
		t.Error("no tasks recorded as done")
	}
}

func TestDistributedWordCountSharedFS(t *testing.T) {
	c, err := Start(testRegistry(), Options{Slaves: 3, SharedDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	checkCounts(t, runWordCount(t, c))
}

func TestDistributedMatchesSerial(t *testing.T) {
	// The paper's core debugging invariant, across the network this time.
	exec := core.NewSerial(testRegistry())
	job := core.NewJob(exec)
	src, _ := job.LocalData(inputPairs(), core.OpOpts{Splits: 3, Partition: "roundrobin"})
	out, _ := job.MapReduce(src, "split", "sum", core.OpOpts{Splits: 4, Combine: "sum"}, core.OpOpts{Splits: 2})
	serialPairs, err := out.CollectSorted()
	if err != nil {
		t.Fatal(err)
	}
	job.Close()
	exec.Close()

	c, err := Start(testRegistry(), Options{Slaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	jobD := core.NewJob(c.Executor())
	srcD, _ := jobD.LocalData(inputPairs(), core.OpOpts{Splits: 3, Partition: "roundrobin"})
	outD, _ := jobD.MapReduce(srcD, "split", "sum", core.OpOpts{Splits: 4, Combine: "sum"}, core.OpOpts{Splits: 2})
	distPairs, err := outD.CollectSorted()
	if err != nil {
		t.Fatal(err)
	}
	jobD.Close()

	if len(serialPairs) != len(distPairs) {
		t.Fatalf("serial %d records, distributed %d", len(serialPairs), len(distPairs))
	}
	for i := range serialPairs {
		if !bytes.Equal(serialPairs[i].Key, distPairs[i].Key) ||
			!bytes.Equal(serialPairs[i].Value, distPairs[i].Value) {
			t.Errorf("record %d: serial %v, distributed %v", i, serialPairs[i], distPairs[i])
		}
	}
}

func TestWorkSpreadsAcrossSlaves(t *testing.T) {
	c, err := Start(testRegistry(), Options{Slaves: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	job := core.NewJob(c.Executor())
	// Enough slow tasks that a single slave cannot grab them all.
	var pairs []kvio.Pair
	for i := 0; i < 12; i++ {
		pairs = append(pairs, kvio.Pair{Key: codec.EncodeVarint(int64(i)), Value: []byte("x")})
	}
	src, _ := job.LocalData(pairs, core.OpOpts{Splits: 12, Partition: "roundrobin"})
	out, _ := job.Map(src, "slowmap", core.OpOpts{Splits: 1})
	if err := out.Wait(); err != nil {
		t.Fatal(err)
	}
	job.Close()
	busy := 0
	for i := 0; i < c.NumSlaves(); i++ {
		if c.Slave(i).TasksRun() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d slaves did work; scheduler not spreading", busy)
	}
}

func TestIterativeAffinity(t *testing.T) {
	c, err := Start(testRegistry(), Options{Slaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	job := core.NewJob(c.Executor())
	ds, err := job.LocalData(inputPairs(), core.OpOpts{Splits: 2, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ds, err = job.Map(ds, "identity", core.OpOpts{Splits: 2})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Wait(); err != nil {
		t.Fatal(err)
	}
	job.Close()
	// After the chain, both task indices should have stable owners.
	for idx := 0; idx < 2; idx++ {
		if owner := c.M.Scheduler().Affinity(idx); owner == "" {
			t.Errorf("no affinity recorded for task index %d", idx)
		}
	}
}

func TestSlaveFailureRecoveryDuringOp(t *testing.T) {
	// Shared-FS mode: kill a slave mid-operation; completed data
	// survives on the shared dir and running tasks are reassigned.
	c, err := Start(testRegistry(), Options{
		Slaves:            3,
		SharedDir:         t.TempDir(),
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job := core.NewJob(c.Executor())
	var pairs []kvio.Pair
	for i := 0; i < 30; i++ {
		pairs = append(pairs, kvio.Pair{Key: codec.EncodeVarint(int64(i)), Value: []byte("x y z")})
	}
	src, _ := job.LocalData(pairs, core.OpOpts{Splits: 30, Partition: "roundrobin"})
	out, err := job.MapReduce(src, "slowsplit", "sum", core.OpOpts{Splits: 2}, core.OpOpts{Splits: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Let work start, then kill one slave.
	time.Sleep(100 * time.Millisecond)
	if err := c.KillSlave(0); err != nil {
		t.Fatal(err)
	}
	if err := out.Wait(); err != nil {
		t.Fatalf("job did not survive slave death: %v", err)
	}
	job.Close()
	// The reaper notices the death on its own schedule; the job may
	// well finish first, so poll rather than assert immediately.
	deadline := time.Now().Add(3 * time.Second)
	for c.M.Stats().SlavesLost != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("SlavesLost = %d, want 1", c.M.Stats().SlavesLost)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestTaskErrorFailsJob(t *testing.T) {
	c, err := Start(testRegistry(), Options{Slaves: 2, MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	job := core.NewJob(c.Executor())
	src, _ := job.LocalData(inputPairs(), core.OpOpts{Splits: 2})
	out, err := job.Map(src, "boom", core.OpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	err = out.Wait()
	if err == nil || !strings.Contains(err.Error(), "deliberate map failure") {
		t.Errorf("Wait err = %v", err)
	}
	job.Close()
}

func TestElasticAddSlave(t *testing.T) {
	reg := testRegistry()
	c, err := Start(reg, Options{Slaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.AddSlave(reg, ""); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.M.NumSlaves() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second slave never signed in")
		}
		time.Sleep(10 * time.Millisecond)
	}
	checkCounts(t, runWordCount(t, c))
}

func TestMultipleJobsOneCluster(t *testing.T) {
	c, err := Start(testRegistry(), Options{Slaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		checkCounts(t, runWordCount(t, c))
	}
}

func TestFreeDeletesSlaveBuckets(t *testing.T) {
	// Free on a distributed dataset piggybacks delete commands on
	// get_task; slaves then remove their buckets, so a later Collect
	// must fail to fetch them.
	c, err := Start(testRegistry(), Options{Slaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	job := core.NewJob(c.Executor())
	defer job.Close()
	src, _ := job.LocalData(inputPairs(), core.OpOpts{Splits: 2, Partition: "roundrobin"})
	out, err := job.Map(src, "identity", core.OpOpts{Splits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := out.Collect(); err != nil {
		t.Fatal(err)
	}
	if err := out.Free(); err != nil {
		t.Fatal(err)
	}
	// Slaves poll continuously; within a couple of poll cycles the
	// buckets must be gone.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := out.Collect(); err != nil {
			return // buckets deleted, fetch failed as expected
		}
		if time.Now().After(deadline) {
			t.Fatal("slave buckets still fetchable after Free")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func TestAffinityDisabledStillCorrect(t *testing.T) {
	c, err := Start(testRegistry(), Options{Slaves: 2, DisableAffinity: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	checkCounts(t, runWordCount(t, c))
	if owner := c.M.Scheduler().Affinity(0); owner != "" {
		t.Errorf("affinity recorded despite DisableAffinity: %q", owner)
	}
}
