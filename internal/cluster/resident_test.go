package cluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/obs"
	"repro/internal/pso"
)

func kmeansTestConfig() kmeans.Config {
	// Epsilon well below any real centroid movement so the run uses all
	// MaxIters iterations — enough supersteps for the resident cache to
	// show a clear warm-hit majority.
	return kmeans.Config{K: 4, Dims: 4, MaxIters: 10, Epsilon: 1e-12, Tasks: 3, Seed: 11}
}

// slowPoints is a deterministic un-clustered point set: k-means on
// smooth data keeps moving centroids for many iterations (the generated
// Gaussian blobs converge in two, which starves the warm path).
func slowPoints(n, dims int) [][]float64 {
	points := make([][]float64, n)
	for i := range points {
		p := make([]float64, dims)
		for d := range p {
			p[d] = math.Sin(float64(i*(d+3)+1)) * 10
		}
		points[i] = p
	}
	return points
}

// runClusterKMeans runs the iterative k-means workload on a live
// master+slaves fleet with the given resident budget and returns the
// result plus the fleet's metrics snapshot.
func runClusterKMeans(t *testing.T, budget int64, points, init [][]float64) (*kmeans.Result, map[string]int64) {
	t.Helper()
	cfg := kmeansTestConfig()
	reg := core.NewRegistry()
	kmeans.Register(reg)
	rt := obs.New(nil)
	c, err := Start(reg, Options{Slaves: 3, ResidentBudget: budget, Obs: rt})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	job := core.NewJobWith(c.Executor(), core.JobOptions{Pipeline: true, Obs: rt})
	defer job.Close()
	src, err := job.LocalData(kmeans.PointPairs(points), core.OpOpts{Splits: cfg.Tasks, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := kmeans.RunMapReduce(job, cfg, src, init)
	if err != nil {
		t.Fatal(err)
	}
	return res, rt.M().Snapshot()
}

func sameCentroids(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				return false
			}
		}
	}
	return true
}

// closeCentroids compares against the serial plain-loop reference,
// which sums points in a different order than the per-split partials
// (same 1e-9 bound as TestMapReduceMatchesSerialExactly).
func closeCentroids(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for d := range a[i] {
			if math.Abs(a[i][d]-b[i][d]) > 1e-9 {
				return false
			}
		}
	}
	return true
}

// TestResidentKMeansByteIdenticalOnCluster is the tentpole's
// acceptance gate: resident k-means on a live fleet must produce
// exactly the centroids of the non-resident fleet run (bitwise — the
// cache is a pure data-plane optimization) and match the serial
// reference, with warm hits dominating cold misses.
func TestResidentKMeansByteIdenticalOnCluster(t *testing.T) {
	cfg := kmeansTestConfig()
	points := slowPoints(180, cfg.Dims)
	init, err := kmeans.InitialCentroidsPlusPlus(cfg, points)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := kmeans.RunSerial(cfg, points, init)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Iterations < 5 {
		t.Fatalf("test corpus converged in %d iterations; need at least 5 for a warm-path run",
			serial.Iterations)
	}

	cold, coldSnap := runClusterKMeans(t, 0, points, init)
	warm, warmSnap := runClusterKMeans(t, core.DefaultResidentBudget, points, init)

	if cold.Iterations != warm.Iterations || warm.Iterations != serial.Iterations {
		t.Errorf("iterations: cold %d, warm %d, serial %d",
			cold.Iterations, warm.Iterations, serial.Iterations)
	}
	if !sameCentroids(cold.Centroids, warm.Centroids) {
		t.Error("resident run centroids diverged from non-resident run")
	}
	if !closeCentroids(warm.Centroids, serial.Centroids) {
		t.Error("resident fleet centroids diverged from serial reference")
	}

	if hits := coldSnap[obs.MetricResidentHits]; hits != 0 {
		t.Errorf("budget 0 recorded %d resident hits", hits)
	}
	hits, misses := warmSnap[obs.MetricResidentHits], warmSnap[obs.MetricResidentMisses]
	if hits == 0 {
		t.Fatal("warm fleet never hit the resident cache")
	}
	// Every split misses only on first touch per caching slave (plus any
	// early steal); across 10 iterations the hits must dominate.
	if hits <= misses {
		t.Errorf("resident hits %d not dominating misses %d", hits, misses)
	}
	if warmSnap[obs.MetricSchedResidentPlacements] == 0 {
		t.Error("scheduler never recorded a cache-affinity placement")
	}
}

// TestResidentPSOByteIdenticalOnCluster repeats the gate for the
// paper's second iterative workload: PSO's per-iteration state dataset
// is re-read by the convergence check, so residency must change
// nothing about the result while still registering cache traffic.
func TestResidentPSOByteIdenticalOnCluster(t *testing.T) {
	cfg := pso.Config{
		Function: "sphere", Dims: 6, NumSwarms: 4, SwarmSize: 4,
		InnerIters: 3, MaxOuter: 6, Tasks: 4, Seed: 7, CheckEvery: 2,
	}
	run := func(budget int64) (*pso.Result, map[string]int64) {
		reg := core.NewRegistry()
		if err := pso.Register(reg, cfg); err != nil {
			t.Fatal(err)
		}
		rt := obs.New(nil)
		c, err := Start(reg, Options{Slaves: 2, ResidentBudget: budget, Obs: rt})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		job := core.NewJobWith(c.Executor(), core.JobOptions{Pipeline: true, Obs: rt})
		defer job.Close()
		res, err := pso.RunMapReduce(job, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, rt.M().Snapshot()
	}

	cold, _ := run(0)
	warm, warmSnap := run(core.DefaultResidentBudget)
	if cold.Best != warm.Best || cold.OuterIters != warm.OuterIters ||
		cold.Evaluations != warm.Evaluations {
		t.Errorf("PSO diverged: cold best=%v iters=%d evals=%d, warm best=%v iters=%d evals=%d",
			cold.Best, cold.OuterIters, cold.Evaluations,
			warm.Best, warm.OuterIters, warm.Evaluations)
	}
	if warmSnap[obs.MetricResidentHits] == 0 {
		t.Error("PSO check iterations never hit the resident state cache")
	}
}

// TestResidentChaosCachingSlaveDeath kills a slave mid-run: the
// scheduler must drop the dead cache's ownership, surviving slaves
// re-fetch from the shared store, and the result must be bitwise
// identical to an undisturbed non-resident fleet run.
func TestResidentChaosCachingSlaveDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	cfg := kmeansTestConfig()
	points := slowPoints(180, cfg.Dims)
	init, err := kmeans.InitialCentroidsPlusPlus(cfg, points)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := runClusterKMeans(t, 0, points, init)

	reg := core.NewRegistry()
	kmeans.Register(reg)
	rt := obs.New(nil)
	c, err := Start(reg, Options{
		Slaves:            3,
		SharedDir:         t.TempDir(), // buckets must survive the crash
		ResidentBudget:    core.DefaultResidentBudget,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		MaxAttempts:       10,
		TaskLease:         1 * time.Second,
		Obs:               rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Kill a slave after the first iterations have warmed its cache.
	done := make(chan struct{})
	go func() {
		select {
		case <-time.After(150 * time.Millisecond):
			_ = c.KillSlave(1)
		case <-done:
		}
	}()

	job := core.NewJobWith(c.Executor(), core.JobOptions{Pipeline: true, Obs: rt})
	defer job.Close()
	src, err := job.LocalData(kmeans.PointPairs(points), core.OpOpts{Splits: cfg.Tasks, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := kmeans.RunMapReduce(job, cfg, src, init)
	close(done)
	if err != nil {
		t.Fatalf("resident k-means did not survive the crash: %v", err)
	}
	if res.Iterations != ref.Iterations {
		t.Errorf("iterations: chaos %d, reference %d", res.Iterations, ref.Iterations)
	}
	if !sameCentroids(res.Centroids, ref.Centroids) {
		t.Error("centroids diverged from the undisturbed run after caching-slave death")
	}
}
