package halton

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRadicalInverseBase2KnownValues(t *testing.T) {
	// Van der Corput sequence: 1/2, 1/4, 3/4, 1/8, 5/8, 3/8, 7/8, ...
	want := []float64{0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875}
	for i, w := range want {
		if got := RadicalInverse(2, uint64(i+1)); math.Abs(got-w) > 1e-15 {
			t.Errorf("RadicalInverse(2, %d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestRadicalInverseBase3KnownValues(t *testing.T) {
	want := []float64{1.0 / 3, 2.0 / 3, 1.0 / 9, 4.0 / 9, 7.0 / 9, 2.0 / 9, 5.0 / 9, 8.0 / 9}
	for i, w := range want {
		if got := RadicalInverse(3, uint64(i+1)); math.Abs(got-w) > 1e-15 {
			t.Errorf("RadicalInverse(3, %d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestRadicalInverseZero(t *testing.T) {
	if got := RadicalInverse(2, 0); got != 0 {
		t.Errorf("RadicalInverse(2, 0) = %v, want 0", got)
	}
}

func TestRadicalInversePanicsOnBadBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for base 1")
		}
	}()
	RadicalInverse(1, 5)
}

func TestSequenceMatchesRadicalInverse(t *testing.T) {
	for _, base := range []uint64{2, 3, 5, 7, 10} {
		s := NewSequence(base)
		for i := uint64(1); i <= 2000; i++ {
			got := s.Next()
			want := RadicalInverse(base, i)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("base %d index %d: incremental %v, direct %v", base, i, got, want)
			}
		}
	}
}

func TestSequenceMatchesOracleProperty(t *testing.T) {
	f := func(baseSel uint8, startSel uint16, steps uint8) bool {
		bases := []uint64{2, 3, 5}
		base := bases[int(baseSel)%len(bases)]
		start := uint64(startSel)
		s := NewSequenceAt(base, start)
		n := uint64(steps%50) + 1
		for i := uint64(1); i <= n; i++ {
			if math.Abs(s.Next()-RadicalInverse(base, start+i)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSkipEquivalence(t *testing.T) {
	// Skipping k then reading must equal reading from a fresh sequence
	// positioned at the same index.
	a := NewSequence(3)
	for i := 0; i < 100; i++ {
		a.Next()
	}
	a.Skip(57)
	b := NewSequenceAt(3, 157)
	for i := 0; i < 100; i++ {
		av, bv := a.Next(), b.Next()
		if av != bv {
			t.Fatalf("step %d: skip path %v, direct path %v", i, av, bv)
		}
	}
}

func TestIndexTracking(t *testing.T) {
	s := NewSequenceAt(2, 10)
	if s.Index() != 10 {
		t.Errorf("Index after NewSequenceAt(2,10) = %d, want 10", s.Index())
	}
	s.Next()
	if s.Index() != 11 {
		t.Errorf("Index after Next = %d, want 11", s.Index())
	}
}

func TestValuesInUnitInterval(t *testing.T) {
	s := NewSequence(2)
	for i := 0; i < 10000; i++ {
		v := s.Next()
		if v <= 0 || v >= 1 {
			t.Fatalf("index %d: value %v outside (0,1)", i+1, v)
		}
	}
}

func TestLowDiscrepancy(t *testing.T) {
	// A Halton sequence must cover [0,1) much more evenly than random:
	// with n=1000 points and 10 equal bins, every bin count should be
	// within 2 of n/10.
	s := NewSequence(2)
	counts := make([]int, 10)
	const n = 1000
	for i := 0; i < n; i++ {
		counts[int(s.Next()*10)]++
	}
	for b, c := range counts {
		if c < 98 || c > 102 {
			t.Errorf("bin %d: %d points; not low-discrepancy", b, c)
		}
	}
}

func TestSampler2DCoPrimeCoverage(t *testing.T) {
	// 2-D points must not be diagonal-correlated; check mean of X*Y is
	// close to 0.25 (product of independent uniform means).
	s := NewSampler2D(0)
	const n = 10000
	var sum float64
	for i := 0; i < n; i++ {
		p := s.Next()
		sum += p.X * p.Y
	}
	if mean := sum / n; math.Abs(mean-0.25) > 0.005 {
		t.Errorf("mean X*Y = %v, want ~0.25", mean)
	}
}

func TestPiConvergence(t *testing.T) {
	// The whole point: the quarter-circle ratio converges to pi/4
	// quickly thanks to low discrepancy.
	for _, n := range []uint64{1000, 10000, 100000} {
		inside := CountInCircle(0, n)
		pi := 4 * float64(inside) / float64(n)
		tol := 4 / math.Sqrt(float64(n)) // generous even for pseudo-random
		if math.Abs(pi-math.Pi) > tol {
			t.Errorf("n=%d: pi estimate %v off by more than %v", n, pi, tol)
		}
	}
}

func TestCountInCirclePartitioning(t *testing.T) {
	// Splitting the sample range across "tasks" must give the same
	// total as one task; this is exactly the map-task decomposition.
	const total = 30000
	whole := CountInCircle(0, total)
	var split uint64
	for start := uint64(0); start < total; start += 10000 {
		split += CountInCircle(start, 10000)
	}
	if whole != split {
		t.Errorf("partitioned count %d != whole count %d", split, whole)
	}
}

func TestNewSequencePanicsOnBadBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for base 0")
		}
	}()
	NewSequence(0)
}

func BenchmarkNextBase2(b *testing.B) {
	s := NewSequence(2)
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

func BenchmarkRadicalInverseBase2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RadicalInverse(2, uint64(i+1))
	}
}

func BenchmarkSampler2D(b *testing.B) {
	s := NewSampler2D(0)
	var inside uint64
	for i := 0; i < b.N; i++ {
		if s.Next().InUnitCircle() {
			inside++
		}
	}
	_ = inside
}

func BenchmarkCountInCircle1e6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CountInCircle(0, 1e6)
	}
}
