// Package halton generates Halton low-discrepancy (quasi-random)
// sequences. The Pi estimator in §V-B of the Mrs paper draws its sample
// points from 2-dimensional Halton sequences (bases 2 and 3) instead of
// uniform pseudorandom numbers, and notes that the implementation is
// "optimized to minimize the number of function calls and the number of
// comparison operations"; the incremental Sequence type below is that
// optimization — each next point costs amortized O(1) digit updates
// instead of a full radical-inverse recomputation.
package halton

import "fmt"

// RadicalInverse returns the base-b radical inverse of index i: the
// digits of i in base b mirrored about the radix point. It is the
// direct (non-incremental) definition, useful for random access and as
// the test oracle for Sequence.
func RadicalInverse(b uint64, i uint64) float64 {
	if b < 2 {
		panic("halton: base must be >= 2")
	}
	var (
		value float64
		scale = 1.0
	)
	for i > 0 {
		scale /= float64(b)
		value += float64(i%b) * scale
		i /= b
	}
	return value
}

// Sequence incrementally produces the base-b Halton sequence starting
// at index 1. Next runs in amortized O(1) by maintaining the digit
// expansion and the partial sums, the standard fast-Halton scheme.
type Sequence struct {
	base   uint64
	invB   float64
	digits []uint64  // digit i of the current index, least significant first
	radix  []float64 // radix[i] = invB^(i+1)
	sums   []float64 // sums[i] = contribution of digits >= i
	value  float64
	index  uint64
}

// NewSequence returns a base-b incremental Halton sequence positioned
// before index 1 (the first Next returns the value for index 1).
func NewSequence(base uint64) *Sequence {
	if base < 2 {
		panic("halton: base must be >= 2")
	}
	return &Sequence{
		base: base,
		invB: 1 / float64(base),
		// Invariant: len(sums) == len(digits)+1; sums[len(digits)] == 0.
		sums: []float64{0},
	}
}

// NewSequenceAt returns a base-b sequence positioned before index
// start+1; i.e. the first Next returns the value for index start+1.
// Map tasks use this to jump directly to their sample range.
func NewSequenceAt(base uint64, start uint64) *Sequence {
	s := NewSequence(base)
	s.Skip(start)
	return s
}

// Skip advances the sequence position by n without producing values.
// The incremental state is rebuilt once from the target index, so Skip
// is O(log_b index) regardless of n.
func (s *Sequence) Skip(n uint64) {
	s.reseek(s.index + n)
}

// Index returns the index of the most recently produced value (0 if
// none produced yet).
func (s *Sequence) Index() uint64 { return s.index }

func (s *Sequence) reseek(index uint64) {
	s.index = index
	s.digits = s.digits[:0]
	s.radix = s.radix[:0]
	s.sums = s.sums[:0]
	i := index
	scale := 1.0
	for i > 0 {
		scale *= s.invB
		s.digits = append(s.digits, i%s.base)
		s.radix = append(s.radix, scale)
		i /= s.base
	}
	// sums[i] = sum over j >= i of digits[j]*radix[j].
	s.sums = make([]float64, len(s.digits)+1)
	for j := len(s.digits) - 1; j >= 0; j-- {
		s.sums[j] = s.sums[j+1] + float64(s.digits[j])*s.radix[j]
	}
	s.value = 0
	if len(s.sums) > 0 {
		s.value = s.sums[0]
	}
}

// Next advances to the next index and returns its Halton value in (0, 1).
func (s *Sequence) Next() float64 {
	s.index++
	// Increment the base-b digit counter; on carry, rebuild partial sums
	// for the affected prefix only.
	d := 0
	for {
		if d == len(s.digits) {
			// Counter grew a new most-significant digit.
			scale := s.invB
			if d > 0 {
				scale = s.radix[d-1] * s.invB
			}
			s.digits = append(s.digits, 1)
			s.radix = append(s.radix, scale)
			s.sums = append(s.sums, 0)
			break
		}
		s.digits[d]++
		if s.digits[d] < s.base {
			break
		}
		s.digits[d] = 0
		d++
	}
	// Recompute sums[0..d] (digits above d are unchanged).
	for j := d; j >= 0; j-- {
		s.sums[j] = s.sums[j+1] + float64(s.digits[j])*s.radix[j]
	}
	s.value = s.sums[0]
	return s.value
}

// Point2D is one 2-dimensional quasi-random sample.
type Point2D struct{ X, Y float64 }

// Sampler2D produces 2-D Halton points with co-prime bases (2, 3), as
// used by the PiEstimator workload.
type Sampler2D struct {
	x, y *Sequence
}

// NewSampler2D returns a sampler positioned before index start+1.
func NewSampler2D(start uint64) *Sampler2D {
	return &Sampler2D{
		x: NewSequenceAt(2, start),
		y: NewSequenceAt(3, start),
	}
}

// Next returns the next 2-D point.
func (s *Sampler2D) Next() Point2D {
	return Point2D{X: s.x.Next(), Y: s.y.Next()}
}

// InUnitCircle reports whether the point falls inside the quarter unit
// circle centered at the origin corner of the unit square.
func (p Point2D) InUnitCircle() bool {
	return p.X*p.X+p.Y*p.Y <= 1
}

// CountInCircle draws n points starting after index start and returns
// how many fall inside the quarter circle. This is the inner loop of
// the Pi estimator map task.
func CountInCircle(start, n uint64) (inside uint64) {
	s := NewSampler2D(start)
	for i := uint64(0); i < n; i++ {
		if s.Next().InUnitCircle() {
			inside++
		}
	}
	return inside
}

// String implements fmt.Stringer for diagnostics.
func (p Point2D) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }
