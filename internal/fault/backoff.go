package fault

import (
	"sync"
	"time"

	"repro/internal/prand"
)

// Backoff defaults.
const (
	DefaultBackoffBase   = 50 * time.Millisecond
	DefaultBackoffMax    = 2 * time.Second
	DefaultBackoffFactor = 2.0
	DefaultBackoffJitter = 0.5
)

// Backoff computes exponential retry delays with seeded jitter. The
// jitter stream comes from a prand generator, so a fixed seed yields a
// reproducible delay schedule — retry storms in chaos tests are as
// deterministic as the faults that cause them. Delay is safe for
// concurrent use (a slave's poll loop and its in-flight task reports
// share one instance); under concurrency the draws stay race-free but
// their assignment to callers follows goroutine interleaving.
type Backoff struct {
	// Base is the un-jittered delay of attempt 1.
	Base time.Duration
	// Max caps the un-jittered delay.
	Max time.Duration
	// Factor is the per-attempt growth multiplier.
	Factor float64
	// Jitter spreads each delay uniformly over [d*(1-J), d*(1+J)].
	Jitter float64

	mu  sync.Mutex
	rng *prand.MT
}

// NewBackoff returns a Backoff with default shape and the given jitter
// seed.
func NewBackoff(seed uint64) *Backoff {
	return &Backoff{
		Base:   DefaultBackoffBase,
		Max:    DefaultBackoffMax,
		Factor: DefaultBackoffFactor,
		Jitter: DefaultBackoffJitter,
		rng:    prand.Random(seed, 0xbac0ff),
	}
}

// Delay returns the jittered delay for the given 1-based attempt.
// Successive calls consume the jitter stream in order.
func (b *Backoff) Delay(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	base, maxd, factor := b.Base, b.Max, b.Factor
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if maxd <= 0 {
		maxd = DefaultBackoffMax
	}
	if factor < 1 {
		factor = DefaultBackoffFactor
	}
	d := float64(base)
	for i := 1; i < attempt && d < float64(maxd); i++ {
		d *= factor
	}
	if d > float64(maxd) {
		d = float64(maxd)
	}
	j := b.Jitter
	if j < 0 {
		j = 0
	}
	if j > 1 {
		j = 1
	}
	if j > 0 && b.rng != nil {
		b.mu.Lock()
		u := b.rng.Float64()
		b.mu.Unlock()
		d *= 1 - j + 2*j*u
	}
	if d < float64(time.Millisecond) {
		d = float64(time.Millisecond)
	}
	return time.Duration(d)
}
