package fault

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/xmlrpc"
)

func TestDecisionDeterministicAcrossInjectors(t *testing.T) {
	cfg := Config{Seed: 7, RefuseRate: 0.1, DropRate: 0.1, DupRate: 0.1, DelayRate: 0.2, MaxDelay: 30 * time.Millisecond}
	a, b := New(cfg), New(cfg)
	streams := []string{"slave0/get_task", "slave0/task_done", "slave3/data"}
	for i := 0; i < 500; i++ {
		for _, s := range streams {
			if da, db := a.next(s), b.next(s); da != db {
				t.Fatalf("decision %d of %s diverged: %+v vs %+v", i, s, da, db)
			}
		}
	}
	// The recorded schedule replays from the pure function alone.
	for _, ev := range a.Events() {
		if got := cfg.DecisionAt(ev.Stream, ev.Ordinal); got != ev.Decision {
			t.Fatalf("event %s/%d: recorded %+v, replay %+v", ev.Stream, ev.Ordinal, ev.Decision, got)
		}
	}
}

func TestDecisionSchedulingMath(t *testing.T) {
	// Table-driven checks of the failure-scheduling math: rates of zero
	// or one pin the outcome; partitions are mutually exclusive; the
	// delay magnitude respects MaxDelay.
	cases := []struct {
		name string
		cfg  Config
		want func(Decision) bool
	}{
		{"all-zero is clean", Config{Seed: 1},
			func(d Decision) bool { return !d.Faulty() }},
		{"refuse=1 always refuses", Config{Seed: 2, RefuseRate: 1},
			func(d Decision) bool { return d.Refuse && !d.Drop && !d.Duplicate }},
		{"drop=1 always drops", Config{Seed: 3, DropRate: 1},
			func(d Decision) bool { return d.Drop && !d.Refuse && !d.Duplicate }},
		{"dup=1 always duplicates", Config{Seed: 4, DupRate: 1},
			func(d Decision) bool { return d.Duplicate && !d.Refuse && !d.Drop }},
		{"delay=1 bounded by MaxDelay", Config{Seed: 5, DelayRate: 1, MaxDelay: 20 * time.Millisecond},
			func(d Decision) bool { return d.Delay > 0 && d.Delay <= 20*time.Millisecond }},
		{"fates exclusive at mixed rates", Config{Seed: 6, RefuseRate: 0.3, DropRate: 0.3, DupRate: 0.3},
			func(d Decision) bool {
				n := 0
				for _, b := range []bool{d.Refuse, d.Drop, d.Duplicate} {
					if b {
						n++
					}
				}
				return n <= 1
			}},
	}
	for _, tc := range cases {
		for ord := uint64(0); ord < 300; ord++ {
			if d := tc.cfg.DecisionAt("s", ord); !tc.want(d) {
				t.Errorf("%s: ordinal %d got %+v", tc.name, ord, d)
			}
		}
	}
}

func TestDecisionRatesApproximate(t *testing.T) {
	cfg := Config{Seed: 11, RefuseRate: 0.25}
	refused := 0
	const n = 4000
	for ord := uint64(0); ord < n; ord++ {
		if cfg.DecisionAt("rpc", ord).Refuse {
			refused++
		}
	}
	got := float64(refused) / n
	if got < 0.20 || got > 0.30 {
		t.Errorf("refusal rate %.3f, want ~0.25", got)
	}
}

func TestPlanDeterministicAndBounded(t *testing.T) {
	cfg := Config{Seed: 9, Crashes: 2, Hangs: 1, Window: time.Second, HangDur: 300 * time.Millisecond}
	p1, p2 := cfg.Plan(4), cfg.Plan(4)
	if len(p1) != 3 {
		t.Fatalf("plan has %d events, want 3", len(p1))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("plan event %d diverged: %+v vs %+v", i, p1[i], p2[i])
		}
	}
	seen := map[int]bool{}
	for _, ev := range p1 {
		if ev.Slave < 0 || ev.Slave >= 4 {
			t.Errorf("event targets slave %d of 4", ev.Slave)
		}
		if seen[ev.Slave] {
			t.Errorf("slave %d targeted twice", ev.Slave)
		}
		seen[ev.Slave] = true
		if ev.At < 0 || ev.At > time.Second {
			t.Errorf("event at %v outside window", ev.At)
		}
	}
	// Crashes+Hangs never exhausts the cluster: clamped to nSlaves-1.
	greedy := Config{Seed: 9, Crashes: 10, Hangs: 10}
	if got := len(greedy.Plan(3)); got != 2 {
		t.Errorf("clamped plan has %d events, want 2", got)
	}
	if p := (Config{Seed: 9, Crashes: 5}).Plan(1); p != nil {
		t.Errorf("single-slave plan should be empty, got %v", p)
	}
}

func TestRetryBackoffDeterministic(t *testing.T) {
	a, b := NewBackoff(42), NewBackoff(42)
	other := NewBackoff(43)
	var prevUnjittered time.Duration
	differs := false
	for attempt := 1; attempt <= 12; attempt++ {
		da := a.Delay(attempt)
		db := b.Delay(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", attempt, da, db)
		}
		if da != other.Delay(attempt) {
			differs = true
		}
		// Jitter bounds: delay within [d*(1-J), d*(1+J)] of the pure
		// exponential, and never above Max*(1+J).
		d := float64(DefaultBackoffBase)
		for i := 1; i < attempt && d < float64(DefaultBackoffMax); i++ {
			d *= DefaultBackoffFactor
		}
		if d > float64(DefaultBackoffMax) {
			d = float64(DefaultBackoffMax)
		}
		lo := time.Duration(d * (1 - DefaultBackoffJitter))
		hi := time.Duration(d * (1 + DefaultBackoffJitter))
		if da < lo || da > hi {
			t.Errorf("attempt %d: delay %v outside jitter bounds [%v, %v]", attempt, da, lo, hi)
		}
		if time.Duration(d) < prevUnjittered {
			t.Errorf("attempt %d: un-jittered delay shrank", attempt)
		}
		prevUnjittered = time.Duration(d)
	}
	if !differs {
		t.Error("different seeds produced identical schedules")
	}
}

func TestInterceptRefuseAndDuplicate(t *testing.T) {
	srv := xmlrpc.NewServer()
	calls := 0
	srv.Register("echo", func(args []any) (any, error) {
		calls++
		return "ok", nil
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := xmlrpc.NewClient(ts.URL)
	c.Intercept = New(Config{Seed: 1, RefuseRate: 1}).Intercept("r")
	if _, err := c.Call("echo"); err == nil || !strings.Contains(err.Error(), "injected refusal") {
		t.Errorf("refusal not injected: %v", err)
	}
	if calls != 0 {
		t.Errorf("refused call reached the server %d times", calls)
	}

	c.Intercept = New(Config{Seed: 1, DupRate: 1}).Intercept("r")
	res, err := c.Call("echo")
	if err != nil || res != "ok" {
		t.Fatalf("duplicated call: %v, %v", res, err)
	}
	if calls != 2 {
		t.Errorf("duplicate delivery reached the server %d times, want 2", calls)
	}

	calls = 0
	c.Intercept = New(Config{Seed: 1, DropRate: 1}).Intercept("r")
	if _, err := c.Call("echo"); err == nil || !strings.Contains(err.Error(), "response drop") {
		t.Errorf("drop not injected: %v", err)
	}
	if calls != 1 {
		t.Errorf("dropped call reached the server %d times, want 1 (server-side effect persists)", calls)
	}
}

func TestRoundTripperDropTruncatesBody(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()

	client := &http.Client{Transport: New(Config{Seed: 1, DropRate: 1}).RoundTripper("r", nil)}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("truncated body read fully without error")
	}
	if len(data) >= len(payload) {
		t.Errorf("drop delivered the whole %d-byte body", len(data))
	}

	clean := &http.Client{Transport: New(Config{Seed: 1}).RoundTripper("r", nil)}
	resp2, err := clean.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if data, err := io.ReadAll(resp2.Body); err != nil || len(data) != len(payload) {
		t.Errorf("clean injector perturbed the fetch: %d bytes, %v", len(data), err)
	}
}

func TestHangBlocksUntilWindowPasses(t *testing.T) {
	in := New(Config{Seed: 1})
	in.HangFor("r", 60*time.Millisecond)
	intercept := in.Intercept("r")
	start := time.Now()
	if _, err := intercept("m", func() (any, error) { return true, nil }); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("hung call returned after %v, want ≥ ~60ms", elapsed)
	}
}
