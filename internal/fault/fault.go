// Package fault is the deterministic fault-injection layer for the
// distributed runtime, plus the retry/backoff helpers the runtime uses
// to survive what the injector throws.
//
// Every decision the injector makes — refuse a call, drop a response
// after the server handled it, deliver it twice, add latency, crash or
// hang a slave — is a pure function of (seed, stream, ordinal), where a
// stream names one fault site (e.g. "slave0/task_done") and the ordinal
// counts calls through that site. Re-running with the same seed and
// configuration therefore reproduces the identical injection schedule,
// which is what makes chaos runs debuggable: the paper's determinism
// guarantee (§IV-A, prand streams) extended to the failures themselves.
//
// Chaos runs compose with the observability layer (internal/obs): every
// retry the injector provokes is a distinct attempt in the task trace
// (attempt > 1, failed attempts carrying the error string), and the
// scheduler's failure/requeue counters quantify how much recovery work
// a fault mix caused. The chaos suite asserts this linkage. See
// docs/OBSERVABILITY.md.
package fault

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/hash"
	"repro/internal/prand"
	"repro/internal/xmlrpc"
)

// Config describes the fault mix. All rates are probabilities in [0,1]
// evaluated independently per call; Refuse/Drop/Duplicate are mutually
// exclusive outcomes of a single draw, Delay is a separate draw.
type Config struct {
	// Seed drives every injection decision.
	Seed uint64
	// RefuseRate fails a call before it reaches the server (connection
	// refused). The server never sees the request.
	RefuseRate float64
	// DropRate lets the server handle the call, then discards the
	// response (mid-response connection drop). The caller sees an error
	// for work that actually happened — the duplicate-delivery trap.
	DropRate float64
	// DupRate delivers the call twice; the second response is discarded.
	DupRate float64
	// DelayRate adds latency to a call; the delay magnitude is uniform
	// in (0, MaxDelay].
	DelayRate float64
	// MaxDelay bounds injected latency (default 50ms when DelayRate>0).
	MaxDelay time.Duration
	// Crashes is how many slaves the plan kills outright.
	Crashes int
	// Hangs is how many slaves the plan freezes for HangDur.
	Hangs int
	// HangDur is how long a hung slave stays frozen (default 500ms).
	HangDur time.Duration
	// Window is the period over which crashes and hangs are scheduled
	// after cluster start (default 1s).
	Window time.Duration
	// MasterCrashes is how many times the plan kills the master (the
	// cluster restarts it from its journal after MasterRestartAfter).
	// Requires the cluster to run with a journal directory; a crashed
	// master without one cannot come back.
	MasterCrashes int
	// MasterRestartAfter is the outage length between a planned master
	// crash and its restart (default 250ms).
	MasterRestartAfter time.Duration
}

func (c Config) fill() Config {
	if c.MaxDelay <= 0 {
		c.MaxDelay = 50 * time.Millisecond
	}
	if c.HangDur <= 0 {
		c.HangDur = 500 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.MasterRestartAfter <= 0 {
		c.MasterRestartAfter = 250 * time.Millisecond
	}
	return c
}

// Decision is the fate of one intercepted call.
type Decision struct {
	Refuse    bool
	Drop      bool
	Duplicate bool
	Delay     time.Duration
}

// Faulty reports whether the decision perturbs the call at all.
func (d Decision) Faulty() bool {
	return d.Refuse || d.Drop || d.Duplicate || d.Delay > 0
}

// DecisionAt returns the fate of the ordinal-th call through stream.
// It is a pure function: the same (config, stream, ordinal) always
// yields the same decision, independent of goroutine interleaving.
func (c Config) DecisionAt(stream string, ordinal uint64) Decision {
	c = c.fill()
	rng := prand.Random(c.Seed, hash.FNV1a64String(stream), ordinal)
	var d Decision
	u := rng.Float64()
	switch {
	case u < c.RefuseRate:
		d.Refuse = true
	case u < c.RefuseRate+c.DropRate:
		d.Drop = true
	case u < c.RefuseRate+c.DropRate+c.DupRate:
		d.Duplicate = true
	}
	if rng.Float64() < c.DelayRate {
		d.Delay = time.Duration(rng.Float64() * float64(c.MaxDelay))
		if d.Delay <= 0 {
			d.Delay = time.Millisecond
		}
	}
	return d
}

// PlanKind labels a scheduled slave-level event.
type PlanKind int

// Plan event kinds.
const (
	PlanCrash PlanKind = iota
	PlanHang
	// PlanMasterCrash kills the master itself; the cluster restarts it
	// from its journal after the event's Dur.
	PlanMasterCrash
)

// PlanEvent is one scheduled crash or hang.
type PlanEvent struct {
	Kind  PlanKind
	Slave int           // slave index within the cluster (-1 for the master)
	At    time.Duration // offset from cluster start
	Dur   time.Duration // hang duration or master outage (zero for slave crashes)
}

// Plan derives the crash/hang schedule for a cluster of nSlaves. Targets
// are distinct slaves; Crashes+Hangs is clamped to nSlaves-1 so at least
// one slave always survives.
func (c Config) Plan(nSlaves int) []PlanEvent {
	c = c.fill()
	if nSlaves <= 1 {
		return nil
	}
	rng := prand.Random(c.Seed, hash.FNV1a64String("plan"))
	targets := rng.Perm(nSlaves)
	budget := nSlaves - 1
	crashes := min(c.Crashes, budget)
	hangs := min(c.Hangs, budget-crashes)
	var events []PlanEvent
	for i := 0; i < crashes; i++ {
		events = append(events, PlanEvent{
			Kind:  PlanCrash,
			Slave: targets[i],
			At:    time.Duration(rng.Float64() * float64(c.Window)),
		})
	}
	for i := 0; i < hangs; i++ {
		events = append(events, PlanEvent{
			Kind:  PlanHang,
			Slave: targets[crashes+i],
			At:    time.Duration(rng.Float64() * float64(c.Window)),
			Dur:   c.HangDur,
		})
	}
	// Master crashes draw their randomness last, so enabling them never
	// perturbs the slave schedule an existing seed produces.
	for i := 0; i < c.MasterCrashes; i++ {
		events = append(events, PlanEvent{
			Kind:  PlanMasterCrash,
			Slave: -1,
			At:    time.Duration(rng.Float64() * float64(c.Window)),
			Dur:   c.MasterRestartAfter,
		})
	}
	return events
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Event is one recorded injection decision.
type Event struct {
	Stream   string
	Ordinal  uint64
	Decision Decision
}

// Injector applies a Config to live traffic. It hands out xmlrpc
// interceptors for the control plane and http.RoundTrippers for the
// bucket data path, counts calls per stream, and records every decision
// so a run's schedule can be audited and replayed.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	counters map[string]uint64
	events   []Event
	hangs    map[string]time.Time // role -> frozen until
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	return &Injector{
		cfg:      cfg.fill(),
		counters: map[string]uint64{},
		hangs:    map[string]time.Time{},
	}
}

// Config returns the (filled) configuration.
func (in *Injector) Config() Config { return in.cfg }

// next assigns the stream's next ordinal and returns its fate.
func (in *Injector) next(stream string) Decision {
	in.mu.Lock()
	ord := in.counters[stream]
	in.counters[stream] = ord + 1
	d := in.cfg.DecisionAt(stream, ord)
	in.events = append(in.events, Event{Stream: stream, Ordinal: ord, Decision: d})
	in.mu.Unlock()
	return d
}

// Events returns a copy of every decision made so far.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// Plan derives the crash/hang schedule (see Config.Plan).
func (in *Injector) Plan(nSlaves int) []PlanEvent { return in.cfg.Plan(nSlaves) }

// HangFor freezes the role's traffic for d starting now; intercepted
// calls block until the window passes, simulating a stalled process
// that neither works nor heartbeats.
func (in *Injector) HangFor(role string, d time.Duration) {
	in.mu.Lock()
	in.hangs[role] = time.Now().Add(d)
	in.mu.Unlock()
}

func (in *Injector) maybeHang(role string) {
	in.mu.Lock()
	until := in.hangs[role]
	in.mu.Unlock()
	if wait := time.Until(until); wait > 0 {
		time.Sleep(wait)
	}
}

// Intercept returns an xmlrpc.Intercept injecting the configured RPC
// faults for the given role (stream = role + "/" + method).
func (in *Injector) Intercept(role string) xmlrpc.Intercept {
	return func(method string, call func() (any, error)) (any, error) {
		in.maybeHang(role)
		d := in.next(role + "/" + method)
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		if d.Refuse {
			return nil, fmt.Errorf("fault: injected refusal of %s", method)
		}
		res, err := call()
		if d.Duplicate && err == nil {
			// Redeliver; the extra response is discarded, exactly like a
			// client retry racing a slow first response.
			_, _ = call()
		}
		if d.Drop {
			return nil, fmt.Errorf("fault: injected response drop for %s", method)
		}
		return res, err
	}
}

// RoundTripper wraps base with data-path injection for the given role
// (stream = role + "/data"): refusals become transport errors, drops
// truncate the response body mid-read, delays stall the request.
func (in *Injector) RoundTripper(role string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTripper{in: in, stream: role + "/data", role: role, base: base}
}

type faultTripper struct {
	in     *Injector
	stream string
	role   string
	base   http.RoundTripper
}

// CloseIdleConnections forwards pool shutdown to the wrapped transport
// so http.Client.CloseIdleConnections works through the injector.
func (t *faultTripper) CloseIdleConnections() {
	if ci, ok := t.base.(interface{ CloseIdleConnections() }); ok {
		ci.CloseIdleConnections()
	}
}

func (t *faultTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	t.in.maybeHang(t.role)
	d := t.in.next(t.stream)
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	if d.Refuse {
		return nil, fmt.Errorf("fault: injected connection refusal for %s", req.URL)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.Drop {
		// Let roughly half the body through, then sever the stream.
		n := int64(1)
		if resp.ContentLength > 1 {
			n = resp.ContentLength / 2
		}
		resp.Body = &truncBody{rc: resp.Body, remain: n}
	}
	return resp, nil
}

// truncBody forwards remain bytes then fails, imitating a connection
// dropped mid-response.
type truncBody struct {
	rc     io.ReadCloser
	remain int64
}

func (b *truncBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, fmt.Errorf("fault: injected mid-response drop")
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	if err == nil && b.remain <= 0 {
		err = fmt.Errorf("fault: injected mid-response drop")
	}
	return n, err
}

func (b *truncBody) Close() error { return b.rc.Close() }
