package rpcproto

import (
	"reflect"
	"testing"

	"repro/internal/bucket"
	"repro/internal/core"
	"repro/internal/xmlrpc"
)

// wireTrip pushes a value through real XML-RPC marshalling, because the
// decode paths must handle exactly what the wire delivers.
func wireTrip(t *testing.T, v any) any {
	t.Helper()
	data, err := xmlrpc.MarshalResponse(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := xmlrpc.UnmarshalResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSigninReplyRoundTrip(t *testing.T) {
	r := SigninReply{SlaveID: "slave-3", HeartbeatMillis: 750}
	got, err := DecodeSigninReply(wireTrip(t, r.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("got %+v, want %+v", got, r)
	}
}

func TestSigninReplyDefaultsHeartbeat(t *testing.T) {
	got, err := DecodeSigninReply(map[string]any{"slave_id": "s"})
	if err != nil {
		t.Fatal(err)
	}
	if got.HeartbeatMillis <= 0 {
		t.Errorf("heartbeat not defaulted: %+v", got)
	}
}

func TestSigninReplyErrors(t *testing.T) {
	if _, err := DecodeSigninReply("nope"); err == nil {
		t.Error("non-struct accepted")
	}
	if _, err := DecodeSigninReply(map[string]any{}); err == nil {
		t.Error("missing slave_id accepted")
	}
}

func taskAssignment() Assignment {
	return Assignment{
		Status: StatusTask,
		TaskID: 99,
		Spec: &core.TaskSpec{
			Op: &core.Operation{
				Dataset:     5,
				Kind:        core.OpReduce,
				Input:       -1,
				FuncName:    "sum",
				CombineName: "sum",
				Splits:      4,
				Partition:   "hash",
			},
			TaskIndex:   2,
			InputURLs:   []string{"http://n1:9000/data/a", "file:///shared/b"},
			InputFormat: core.FormatKV,
		},
		Deletes: []string{"ds1/t0/s0"},
	}
}

func TestAssignmentRoundTrip(t *testing.T) {
	a := taskAssignment()
	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAssignment(wireTrip(t, enc))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != a.Status || got.TaskID != a.TaskID {
		t.Errorf("status/id: %+v", got)
	}
	if !reflect.DeepEqual(got.Deletes, a.Deletes) {
		t.Errorf("deletes: %v", got.Deletes)
	}
	if !reflect.DeepEqual(got.Spec.InputURLs, a.Spec.InputURLs) {
		t.Errorf("urls: %v", got.Spec.InputURLs)
	}
	if got.Spec.TaskIndex != 2 || got.Spec.InputFormat != core.FormatKV {
		t.Errorf("spec: %+v", got.Spec)
	}
	op := got.Spec.Op
	if op.Dataset != 5 || op.Kind != core.OpReduce || op.FuncName != "sum" ||
		op.CombineName != "sum" || op.Splits != 4 || op.Partition != "hash" {
		t.Errorf("op: %+v", op)
	}
	if op.Codec != "" || op.BlockEncoding != "" {
		t.Errorf("unset data-plane pins should stay empty: %+v", op)
	}
}

func TestAssignmentDataPlanePins(t *testing.T) {
	a := taskAssignment()
	a.Spec.Op.Codec = "lz"
	a.Spec.Op.BlockEncoding = "columnar-dict"
	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAssignment(wireTrip(t, enc))
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Op.Codec != "lz" || got.Spec.Op.BlockEncoding != "columnar-dict" {
		t.Errorf("pins did not round-trip: %+v", got.Spec.Op)
	}

	// An unpinned assignment stays wire-identical to a pre-pin build:
	// the keys are simply absent.
	enc2, err := taskAssignment().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := enc2["codec"]; ok {
		t.Error("empty codec pin was encoded")
	}
	if _, ok := enc2["block_enc"]; ok {
		t.Error("empty block_enc pin was encoded")
	}
}

func TestIdleAndShutdownAssignments(t *testing.T) {
	for _, status := range []string{StatusIdle, StatusShutdown} {
		a := Assignment{Status: status}
		enc, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeAssignment(wireTrip(t, enc))
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != status || got.Spec != nil {
			t.Errorf("%s: %+v", status, got)
		}
	}
}

func TestIdleWithDeletes(t *testing.T) {
	a := Assignment{Status: StatusIdle, Deletes: []string{"x", "y"}}
	enc, _ := a.Encode()
	got, err := DecodeAssignment(wireTrip(t, enc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Deletes, []string{"x", "y"}) {
		t.Errorf("deletes: %v", got.Deletes)
	}
}

func TestAssignmentBadStatus(t *testing.T) {
	if _, err := DecodeAssignment(map[string]any{"status": "wat"}); err == nil {
		t.Error("bad status accepted")
	}
	if _, err := DecodeAssignment(map[string]any{"status": StatusTask}); err == nil {
		t.Error("task without task_id accepted")
	}
	if _, err := DecodeAssignment(42); err == nil {
		t.Error("non-struct accepted")
	}
}

func TestEncodeTaskWithoutSpecFails(t *testing.T) {
	a := Assignment{Status: StatusTask, TaskID: 1}
	if _, err := a.Encode(); err == nil {
		t.Error("encode of spec-less task accepted")
	}
}

func TestDescriptorsRoundTrip(t *testing.T) {
	descs := []bucket.Descriptor{
		{Name: "ds1/t0/s0", URL: "http://n1/d/a", Records: 10, Bytes: 100},
		{Name: "ds1/t0/s1", URL: "file:///x", Records: 0, Bytes: 0},
	}
	got, err := DecodeDescriptors(wireTrip(t, EncodeDescriptors(descs)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, descs) {
		t.Errorf("got %+v, want %+v", got, descs)
	}
}

func TestDescriptorsErrors(t *testing.T) {
	if _, err := DecodeDescriptors("no"); err == nil {
		t.Error("non-array accepted")
	}
	if _, err := DecodeDescriptors([]any{"no"}); err == nil {
		t.Error("non-struct element accepted")
	}
	if _, err := DecodeDescriptors([]any{map[string]any{"name": "x"}}); err == nil {
		t.Error("missing url accepted")
	}
}

func TestEmptyDescriptors(t *testing.T) {
	got, err := DecodeDescriptors(wireTrip(t, EncodeDescriptors(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestAssignmentParamsRoundTrip(t *testing.T) {
	a := taskAssignment()
	a.Spec.Op.Params = []byte{0x00, 0x01, 0xFE, 0xFF}
	enc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAssignment(wireTrip(t, enc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Spec.Op.Params, a.Spec.Op.Params) {
		t.Errorf("params: %v vs %v", got.Spec.Op.Params, a.Spec.Op.Params)
	}
}

func TestAssignmentNoParams(t *testing.T) {
	a := taskAssignment()
	enc, _ := a.Encode()
	got, err := DecodeAssignment(wireTrip(t, enc))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Spec.Op.Params) != 0 {
		t.Errorf("unexpected params %v", got.Spec.Op.Params)
	}
}
