// Package rpcproto defines the typed messages exchanged between the
// master and slaves over XML-RPC, and their conversions to and from
// the generic XML-RPC value types.
package rpcproto

import (
	"errors"
	"fmt"

	"repro/internal/bucket"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/xmlrpc"
)

// Method names served by the master — and, because the master↔slave
// star generalizes to a master↔node tree, by every sub-master: a
// sub-master serves all of these to its children while speaking the
// same methods upward as a client. MethodReportBatch, MethodDrain, and
// MethodListNodes extend the protocol for the hierarchical control
// plane; peers that never send them are unaffected.
const (
	MethodSignin      = "signin"
	MethodGetTask     = "get_task"
	MethodGetTasks    = "get_tasks"
	MethodTaskDone    = "task_done"
	MethodTaskFailed  = "task_failed"
	MethodPing        = "ping"
	MethodReportBatch = "report_batch"
	MethodDrain       = "drain"
	MethodListNodes   = "list_nodes"
)

// Node kinds carried in SigninArgs.
const (
	NodeKindSlave     = "slave"
	NodeKindSubmaster = "submaster"
)

// GetTask response statuses.
const (
	StatusTask     = "task"
	StatusIdle     = "idle"
	StatusShutdown = "shutdown"
)

// FaultUnknownSlave is the XML-RPC fault code the master returns for a
// slave id it no longer recognizes (reaped after silence, or never
// signed in). Slaves react by re-signing in under a fresh id instead of
// retrying blindly, which is how a worker recovers from a hang that
// outlived the heartbeat timeout.
const FaultUnknownSlave = 100

// IsUnknownSlave reports whether an RPC error is the master's
// unknown-slave fault — the signal to re-sign-in. It appears on
// get_task after a reaping, and on task reports delivered to a master
// that restarted from its journal (the restarted master still processes
// the report; the fault just tells the slave to reconcile).
func IsUnknownSlave(err error) bool {
	var f *xmlrpc.Fault
	return errors.As(err, &f) && f.Code == FaultUnknownSlave
}

// SigninReply is the master's answer to a slave's signin.
type SigninReply struct {
	SlaveID         string
	HeartbeatMillis int64
}

// Encode converts the reply to an XML-RPC struct.
func (r SigninReply) Encode() map[string]any {
	return map[string]any{
		"slave_id":         r.SlaveID,
		"heartbeat_millis": r.HeartbeatMillis,
	}
}

// DecodeSigninReply parses a signin reply.
func DecodeSigninReply(v any) (SigninReply, error) {
	st, ok := v.(map[string]any)
	if !ok {
		return SigninReply{}, fmt.Errorf("rpcproto: signin reply is %T", v)
	}
	id, ok := st["slave_id"].(string)
	if !ok || id == "" {
		return SigninReply{}, fmt.Errorf("rpcproto: signin reply missing slave_id")
	}
	hb, _ := st["heartbeat_millis"].(int64)
	if hb <= 0 {
		hb = 500
	}
	return SigninReply{SlaveID: id, HeartbeatMillis: hb}, nil
}

// SigninArgs is the optional first argument of signin: what kind of
// node is joining, where its data plane (or child-facing control
// plane) listens, and how many task slots it offers. Nodes that omit
// it — the original flat protocol — sign in as anonymous slaves, so
// old peers keep working against a tree-aware master.
type SigninArgs struct {
	Kind  string // NodeKindSlave or NodeKindSubmaster ("" = slave)
	Addr  string // advertised address (diagnostics, drain-by-addr)
	Slots int64  // concurrent task slots (aggregated for sub-masters)
}

// Encode converts the args to an XML-RPC struct.
func (a SigninArgs) Encode() map[string]any {
	out := map[string]any{}
	if a.Kind != "" {
		out["kind"] = a.Kind
	}
	if a.Addr != "" {
		out["addr"] = a.Addr
	}
	if a.Slots > 0 {
		out["slots"] = a.Slots
	}
	return out
}

// DecodeSigninArgs parses the optional signin argument; a missing or
// malformed argument decodes as the zero value (an anonymous slave).
func DecodeSigninArgs(args []any) SigninArgs {
	var a SigninArgs
	if len(args) == 0 {
		return a
	}
	st, ok := args[0].(map[string]any)
	if !ok {
		return a
	}
	a.Kind, _ = st["kind"].(string)
	a.Addr, _ = st["addr"].(string)
	a.Slots, _ = st["slots"].(int64)
	return a
}

// Report is one task outcome inside a report_batch: a sub-master
// forwards its children's task_done and task_failed reports upward in
// batches instead of one RPC per task.
type Report struct {
	Done    bool  // true = task_done, false = task_failed
	Job     int64 // the job the task belongs to (batches may span jobs)
	TaskID  int64 // the parent's task id for the assignment
	Outputs []bucket.Descriptor
	Timing  obs.Timing
	Err     string // task_failed error message
}

// EncodeReports converts a batch for the reports argument of
// report_batch.
func EncodeReports(reports []Report) []any {
	out := make([]any, len(reports))
	for i, r := range reports {
		st := map[string]any{
			"done":    r.Done,
			"job":     r.Job,
			"task_id": r.TaskID,
		}
		if r.Done {
			st["outputs"] = EncodeDescriptors(r.Outputs)
			st["timing"] = EncodeTiming(r.Timing)
		} else {
			st["error"] = r.Err
		}
		out[i] = st
	}
	return out
}

// DecodeReports parses the reports argument of report_batch.
func DecodeReports(v any) ([]Report, error) {
	arr, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("rpcproto: reports is %T", v)
	}
	out := make([]Report, len(arr))
	for i, e := range arr {
		st, ok := e.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("rpcproto: report %d is %T", i, e)
		}
		r := Report{}
		r.Done, _ = st["done"].(bool)
		r.Job, _ = st["job"].(int64)
		id, ok := st["task_id"].(int64)
		if !ok {
			return nil, fmt.Errorf("rpcproto: report %d missing task_id", i)
		}
		r.TaskID = id
		if r.Done {
			descs, err := DecodeDescriptors(st["outputs"])
			if err != nil {
				return nil, fmt.Errorf("rpcproto: report %d: %w", i, err)
			}
			r.Outputs = descs
			r.Timing = DecodeTiming(st["timing"])
		} else {
			r.Err, _ = st["error"].(string)
		}
		out[i] = r
	}
	return out, nil
}

// NodeInfo is one row of a list_nodes reply: a node the master (or a
// sub-master) currently tracks, with its per-node task counters for
// fleet diagnostics.
type NodeInfo struct {
	ID        string
	Kind      string
	Addr      string
	Slots     int64
	TasksDone int64
	Draining  bool
}

// EncodeNodeInfos converts a node listing for list_nodes.
func EncodeNodeInfos(nodes []NodeInfo) []any {
	out := make([]any, len(nodes))
	for i, n := range nodes {
		out[i] = map[string]any{
			"id":         n.ID,
			"kind":       n.Kind,
			"addr":       n.Addr,
			"slots":      n.Slots,
			"tasks_done": n.TasksDone,
			"draining":   n.Draining,
		}
	}
	return out
}

// DecodeNodeInfos parses a list_nodes reply.
func DecodeNodeInfos(v any) ([]NodeInfo, error) {
	arr, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("rpcproto: node list is %T", v)
	}
	out := make([]NodeInfo, len(arr))
	for i, e := range arr {
		st, ok := e.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("rpcproto: node %d is %T", i, e)
		}
		n := NodeInfo{}
		n.ID, _ = st["id"].(string)
		n.Kind, _ = st["kind"].(string)
		n.Addr, _ = st["addr"].(string)
		n.Slots, _ = st["slots"].(int64)
		n.TasksDone, _ = st["tasks_done"].(int64)
		n.Draining, _ = st["draining"].(bool)
		if n.ID == "" {
			return nil, fmt.Errorf("rpcproto: node %d missing id", i)
		}
		out[i] = n
	}
	return out, nil
}

// Assignment is the master's answer to get_task.
type Assignment struct {
	Status  string
	TaskID  int64
	Attempt int64 // which attempt of the task this assignment is (1-based)
	Spec    *core.TaskSpec
	Deletes []string // bucket names the slave should remove (piggybacked)
	// GCJobs lists job ids whose intermediate data the slave should
	// reclaim: the master piggybacks a job-complete broadcast on the
	// next get_task of every slave, like Deletes but job-granular.
	GCJobs []int64
}

// Encode converts the assignment to an XML-RPC struct.
func (a Assignment) Encode() (map[string]any, error) {
	out := map[string]any{"status": a.Status}
	if len(a.Deletes) > 0 {
		out["deletes"] = toAnySlice(a.Deletes)
	}
	if len(a.GCJobs) > 0 {
		gc := make([]any, len(a.GCJobs))
		for i, j := range a.GCJobs {
			gc[i] = j
		}
		out["gc_jobs"] = gc
	}
	if a.Status != StatusTask {
		return out, nil
	}
	if a.Spec == nil || a.Spec.Op == nil {
		return nil, fmt.Errorf("rpcproto: task assignment without spec")
	}
	op := a.Spec.Op
	out["task_id"] = a.TaskID
	if a.Spec.Job != 0 {
		out["job_id"] = int64(a.Spec.Job)
	}
	if a.Attempt > 0 {
		out["attempt"] = a.Attempt
	}
	out["dataset"] = int64(op.Dataset)
	out["kind"] = int64(op.Kind)
	out["func"] = op.FuncName
	out["combine"] = op.CombineName
	out["splits"] = int64(op.Splits)
	out["partition"] = op.Partition
	out["task_index"] = int64(a.Spec.TaskIndex)
	out["input_urls"] = toAnySlice(a.Spec.InputURLs)
	out["input_format"] = a.Spec.InputFormat
	if len(op.Params) > 0 {
		out["params"] = op.Params
	}
	if op.Narrow {
		out["narrow"] = true
	}
	// Per-op data-plane pins travel only when set, so assignments to
	// older slaves (which ignore unknown keys) are unchanged without
	// pins.
	if op.Codec != "" {
		out["codec"] = op.Codec
	}
	if op.BlockEncoding != "" {
		out["block_enc"] = op.BlockEncoding
	}
	if op.Resident {
		// Resident tasks also carry the consumed dataset id: it is one
		// third of the slave's cache key, which the slave cannot derive
		// from the URL list alone.
		out["resident"] = true
		out["input_ds"] = int64(a.Spec.InputDataset)
	}
	if a.Spec.TraceID != 0 {
		out["trace_id"] = a.Spec.TraceID
	}
	return out, nil
}

// EncodeAssignments converts a get_tasks response — up to max
// assignments fetched in one round trip — to an XML-RPC array. The
// first element carries any piggybacked deletes/GC broadcasts and the
// poll's status; later elements are always task assignments.
func EncodeAssignments(as []Assignment) (any, error) {
	out := make([]any, len(as))
	for i := range as {
		enc, err := as[i].Encode()
		if err != nil {
			return nil, err
		}
		out[i] = enc
	}
	return out, nil
}

// DecodeAssignments parses a get_tasks response.
func DecodeAssignments(v any) ([]Assignment, error) {
	raw, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("rpcproto: assignments are %T", v)
	}
	as := make([]Assignment, 0, len(raw))
	for _, r := range raw {
		a, err := DecodeAssignment(r)
		if err != nil {
			return nil, err
		}
		as = append(as, a)
	}
	return as, nil
}

// DecodeAssignment parses a get_task response.
func DecodeAssignment(v any) (Assignment, error) {
	st, ok := v.(map[string]any)
	if !ok {
		return Assignment{}, fmt.Errorf("rpcproto: assignment is %T", v)
	}
	a := Assignment{}
	a.Status, _ = st["status"].(string)
	if dels, ok := st["deletes"].([]any); ok {
		for _, d := range dels {
			if s, ok := d.(string); ok {
				a.Deletes = append(a.Deletes, s)
			}
		}
	}
	if gcs, ok := st["gc_jobs"].([]any); ok {
		for _, g := range gcs {
			if j, ok := g.(int64); ok {
				a.GCJobs = append(a.GCJobs, j)
			}
		}
	}
	switch a.Status {
	case StatusIdle, StatusShutdown:
		return a, nil
	case StatusTask:
	default:
		return Assignment{}, fmt.Errorf("rpcproto: bad assignment status %q", a.Status)
	}
	id, ok := st["task_id"].(int64)
	if !ok {
		return Assignment{}, fmt.Errorf("rpcproto: assignment missing task_id")
	}
	a.TaskID = id
	a.Attempt, _ = st["attempt"].(int64)
	kind, _ := st["kind"].(int64)
	dataset, _ := st["dataset"].(int64)
	splits, _ := st["splits"].(int64)
	taskIndex, _ := st["task_index"].(int64)
	fn, _ := st["func"].(string)
	combine, _ := st["combine"].(string)
	part, _ := st["partition"].(string)
	format, _ := st["input_format"].(string)
	params, _ := st["params"].([]byte)
	narrow, _ := st["narrow"].(bool)
	resident, _ := st["resident"].(bool)
	opCodec, _ := st["codec"].(string)
	blockEnc, _ := st["block_enc"].(string)
	inputDS, _ := st["input_ds"].(int64)
	var urls []string
	if raw, ok := st["input_urls"].([]any); ok {
		for _, u := range raw {
			s, ok := u.(string)
			if !ok {
				return Assignment{}, fmt.Errorf("rpcproto: non-string input url %T", u)
			}
			urls = append(urls, s)
		}
	}
	a.Spec = &core.TaskSpec{
		Op: &core.Operation{
			Dataset: int(dataset),
			Kind:    core.OpKind(kind),
			// The slave never resolves the input dataset itself — it
			// receives explicit InputURLs — but Validate requires a
			// plausible id for map/reduce ops.
			Input:         0,
			FuncName:      fn,
			CombineName:   combine,
			Splits:        int(splits),
			Partition:     part,
			Params:        params,
			Narrow:        narrow,
			Resident:      resident,
			Codec:         opCodec,
			BlockEncoding: blockEnc,
		},
		TaskIndex:    int(taskIndex),
		InputDataset: int(inputDS),
		InputURLs:    urls,
		InputFormat:  format,
	}
	a.Spec.TraceID, _ = st["trace_id"].(int64)
	if job, ok := st["job_id"].(int64); ok {
		a.Spec.Job = core.JobID(job)
	}
	if err := a.Spec.Op.Validate(); err != nil {
		return Assignment{}, err
	}
	return a, nil
}

// EncodeDescriptors converts bucket descriptors for task_done.
func EncodeDescriptors(descs []bucket.Descriptor) []any {
	out := make([]any, len(descs))
	for i, d := range descs {
		out[i] = map[string]any{
			"name":    d.Name,
			"url":     d.URL,
			"records": d.Records,
			"bytes":   d.Bytes,
		}
	}
	return out
}

// DecodeDescriptors parses the outputs argument of task_done.
func DecodeDescriptors(v any) ([]bucket.Descriptor, error) {
	arr, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("rpcproto: outputs is %T", v)
	}
	out := make([]bucket.Descriptor, len(arr))
	for i, e := range arr {
		st, ok := e.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("rpcproto: output %d is %T", i, e)
		}
		d := bucket.Descriptor{}
		d.Name, _ = st["name"].(string)
		d.URL, _ = st["url"].(string)
		d.Records, _ = st["records"].(int64)
		d.Bytes, _ = st["bytes"].(int64)
		if d.URL == "" {
			return nil, fmt.Errorf("rpcproto: output %d missing url", i)
		}
		out[i] = d
	}
	return out, nil
}

// EncodeTiming converts a task attempt's measured cost breakdown into
// the optional timing argument of task_done.
func EncodeTiming(t obs.Timing) map[string]any {
	return map[string]any{
		"wall_ns":     t.WallNS,
		"shuffle_ns":  t.ShuffleNS,
		"in_bytes":    t.InBytes,
		"in_records":  t.InRecords,
		"out_bytes":   t.OutBytes,
		"out_records": t.OutRecords,
		"res_hits":    t.ResidentHits,
		"res_misses":  t.ResidentMisses,
	}
}

// DecodeTiming parses the optional timing argument of task_done; any
// malformed or missing field decodes as zero (older slaves simply
// report no breakdown).
func DecodeTiming(v any) obs.Timing {
	st, ok := v.(map[string]any)
	if !ok {
		return obs.Timing{}
	}
	var t obs.Timing
	t.WallNS, _ = st["wall_ns"].(int64)
	t.ShuffleNS, _ = st["shuffle_ns"].(int64)
	t.InBytes, _ = st["in_bytes"].(int64)
	t.InRecords, _ = st["in_records"].(int64)
	t.OutBytes, _ = st["out_bytes"].(int64)
	t.OutRecords, _ = st["out_records"].(int64)
	t.ResidentHits, _ = st["res_hits"].(int64)
	t.ResidentMisses, _ = st["res_misses"].(int64)
	return t
}

func toAnySlice(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}
