// Package rpcproto defines the typed messages exchanged between the
// master and slaves over XML-RPC, and their conversions to and from
// the generic XML-RPC value types.
package rpcproto

import (
	"errors"
	"fmt"

	"repro/internal/bucket"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/xmlrpc"
)

// Method names served by the master.
const (
	MethodSignin     = "signin"
	MethodGetTask    = "get_task"
	MethodTaskDone   = "task_done"
	MethodTaskFailed = "task_failed"
	MethodPing       = "ping"
)

// GetTask response statuses.
const (
	StatusTask     = "task"
	StatusIdle     = "idle"
	StatusShutdown = "shutdown"
)

// FaultUnknownSlave is the XML-RPC fault code the master returns for a
// slave id it no longer recognizes (reaped after silence, or never
// signed in). Slaves react by re-signing in under a fresh id instead of
// retrying blindly, which is how a worker recovers from a hang that
// outlived the heartbeat timeout.
const FaultUnknownSlave = 100

// IsUnknownSlave reports whether an RPC error is the master's
// unknown-slave fault — the signal to re-sign-in. It appears on
// get_task after a reaping, and on task reports delivered to a master
// that restarted from its journal (the restarted master still processes
// the report; the fault just tells the slave to reconcile).
func IsUnknownSlave(err error) bool {
	var f *xmlrpc.Fault
	return errors.As(err, &f) && f.Code == FaultUnknownSlave
}

// SigninReply is the master's answer to a slave's signin.
type SigninReply struct {
	SlaveID         string
	HeartbeatMillis int64
}

// Encode converts the reply to an XML-RPC struct.
func (r SigninReply) Encode() map[string]any {
	return map[string]any{
		"slave_id":         r.SlaveID,
		"heartbeat_millis": r.HeartbeatMillis,
	}
}

// DecodeSigninReply parses a signin reply.
func DecodeSigninReply(v any) (SigninReply, error) {
	st, ok := v.(map[string]any)
	if !ok {
		return SigninReply{}, fmt.Errorf("rpcproto: signin reply is %T", v)
	}
	id, ok := st["slave_id"].(string)
	if !ok || id == "" {
		return SigninReply{}, fmt.Errorf("rpcproto: signin reply missing slave_id")
	}
	hb, _ := st["heartbeat_millis"].(int64)
	if hb <= 0 {
		hb = 500
	}
	return SigninReply{SlaveID: id, HeartbeatMillis: hb}, nil
}

// Assignment is the master's answer to get_task.
type Assignment struct {
	Status  string
	TaskID  int64
	Attempt int64 // which attempt of the task this assignment is (1-based)
	Spec    *core.TaskSpec
	Deletes []string // bucket names the slave should remove (piggybacked)
	// GCJobs lists job ids whose intermediate data the slave should
	// reclaim: the master piggybacks a job-complete broadcast on the
	// next get_task of every slave, like Deletes but job-granular.
	GCJobs []int64
}

// Encode converts the assignment to an XML-RPC struct.
func (a Assignment) Encode() (map[string]any, error) {
	out := map[string]any{"status": a.Status}
	if len(a.Deletes) > 0 {
		out["deletes"] = toAnySlice(a.Deletes)
	}
	if len(a.GCJobs) > 0 {
		gc := make([]any, len(a.GCJobs))
		for i, j := range a.GCJobs {
			gc[i] = j
		}
		out["gc_jobs"] = gc
	}
	if a.Status != StatusTask {
		return out, nil
	}
	if a.Spec == nil || a.Spec.Op == nil {
		return nil, fmt.Errorf("rpcproto: task assignment without spec")
	}
	op := a.Spec.Op
	out["task_id"] = a.TaskID
	if a.Spec.Job != 0 {
		out["job_id"] = int64(a.Spec.Job)
	}
	if a.Attempt > 0 {
		out["attempt"] = a.Attempt
	}
	out["dataset"] = int64(op.Dataset)
	out["kind"] = int64(op.Kind)
	out["func"] = op.FuncName
	out["combine"] = op.CombineName
	out["splits"] = int64(op.Splits)
	out["partition"] = op.Partition
	out["task_index"] = int64(a.Spec.TaskIndex)
	out["input_urls"] = toAnySlice(a.Spec.InputURLs)
	out["input_format"] = a.Spec.InputFormat
	if len(op.Params) > 0 {
		out["params"] = op.Params
	}
	if op.Narrow {
		out["narrow"] = true
	}
	// Per-op data-plane pins travel only when set, so assignments to
	// older slaves (which ignore unknown keys) are unchanged without
	// pins.
	if op.Codec != "" {
		out["codec"] = op.Codec
	}
	if op.BlockEncoding != "" {
		out["block_enc"] = op.BlockEncoding
	}
	if op.Resident {
		// Resident tasks also carry the consumed dataset id: it is one
		// third of the slave's cache key, which the slave cannot derive
		// from the URL list alone.
		out["resident"] = true
		out["input_ds"] = int64(a.Spec.InputDataset)
	}
	if a.Spec.TraceID != 0 {
		out["trace_id"] = a.Spec.TraceID
	}
	return out, nil
}

// DecodeAssignment parses a get_task response.
func DecodeAssignment(v any) (Assignment, error) {
	st, ok := v.(map[string]any)
	if !ok {
		return Assignment{}, fmt.Errorf("rpcproto: assignment is %T", v)
	}
	a := Assignment{}
	a.Status, _ = st["status"].(string)
	if dels, ok := st["deletes"].([]any); ok {
		for _, d := range dels {
			if s, ok := d.(string); ok {
				a.Deletes = append(a.Deletes, s)
			}
		}
	}
	if gcs, ok := st["gc_jobs"].([]any); ok {
		for _, g := range gcs {
			if j, ok := g.(int64); ok {
				a.GCJobs = append(a.GCJobs, j)
			}
		}
	}
	switch a.Status {
	case StatusIdle, StatusShutdown:
		return a, nil
	case StatusTask:
	default:
		return Assignment{}, fmt.Errorf("rpcproto: bad assignment status %q", a.Status)
	}
	id, ok := st["task_id"].(int64)
	if !ok {
		return Assignment{}, fmt.Errorf("rpcproto: assignment missing task_id")
	}
	a.TaskID = id
	a.Attempt, _ = st["attempt"].(int64)
	kind, _ := st["kind"].(int64)
	dataset, _ := st["dataset"].(int64)
	splits, _ := st["splits"].(int64)
	taskIndex, _ := st["task_index"].(int64)
	fn, _ := st["func"].(string)
	combine, _ := st["combine"].(string)
	part, _ := st["partition"].(string)
	format, _ := st["input_format"].(string)
	params, _ := st["params"].([]byte)
	narrow, _ := st["narrow"].(bool)
	resident, _ := st["resident"].(bool)
	opCodec, _ := st["codec"].(string)
	blockEnc, _ := st["block_enc"].(string)
	inputDS, _ := st["input_ds"].(int64)
	var urls []string
	if raw, ok := st["input_urls"].([]any); ok {
		for _, u := range raw {
			s, ok := u.(string)
			if !ok {
				return Assignment{}, fmt.Errorf("rpcproto: non-string input url %T", u)
			}
			urls = append(urls, s)
		}
	}
	a.Spec = &core.TaskSpec{
		Op: &core.Operation{
			Dataset: int(dataset),
			Kind:    core.OpKind(kind),
			// The slave never resolves the input dataset itself — it
			// receives explicit InputURLs — but Validate requires a
			// plausible id for map/reduce ops.
			Input:         0,
			FuncName:      fn,
			CombineName:   combine,
			Splits:        int(splits),
			Partition:     part,
			Params:        params,
			Narrow:        narrow,
			Resident:      resident,
			Codec:         opCodec,
			BlockEncoding: blockEnc,
		},
		TaskIndex:    int(taskIndex),
		InputDataset: int(inputDS),
		InputURLs:    urls,
		InputFormat:  format,
	}
	a.Spec.TraceID, _ = st["trace_id"].(int64)
	if job, ok := st["job_id"].(int64); ok {
		a.Spec.Job = core.JobID(job)
	}
	if err := a.Spec.Op.Validate(); err != nil {
		return Assignment{}, err
	}
	return a, nil
}

// EncodeDescriptors converts bucket descriptors for task_done.
func EncodeDescriptors(descs []bucket.Descriptor) []any {
	out := make([]any, len(descs))
	for i, d := range descs {
		out[i] = map[string]any{
			"name":    d.Name,
			"url":     d.URL,
			"records": d.Records,
			"bytes":   d.Bytes,
		}
	}
	return out
}

// DecodeDescriptors parses the outputs argument of task_done.
func DecodeDescriptors(v any) ([]bucket.Descriptor, error) {
	arr, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("rpcproto: outputs is %T", v)
	}
	out := make([]bucket.Descriptor, len(arr))
	for i, e := range arr {
		st, ok := e.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("rpcproto: output %d is %T", i, e)
		}
		d := bucket.Descriptor{}
		d.Name, _ = st["name"].(string)
		d.URL, _ = st["url"].(string)
		d.Records, _ = st["records"].(int64)
		d.Bytes, _ = st["bytes"].(int64)
		if d.URL == "" {
			return nil, fmt.Errorf("rpcproto: output %d missing url", i)
		}
		out[i] = d
	}
	return out, nil
}

// EncodeTiming converts a task attempt's measured cost breakdown into
// the optional timing argument of task_done.
func EncodeTiming(t obs.Timing) map[string]any {
	return map[string]any{
		"wall_ns":     t.WallNS,
		"shuffle_ns":  t.ShuffleNS,
		"in_bytes":    t.InBytes,
		"in_records":  t.InRecords,
		"out_bytes":   t.OutBytes,
		"out_records": t.OutRecords,
		"res_hits":    t.ResidentHits,
		"res_misses":  t.ResidentMisses,
	}
}

// DecodeTiming parses the optional timing argument of task_done; any
// malformed or missing field decodes as zero (older slaves simply
// report no breakdown).
func DecodeTiming(v any) obs.Timing {
	st, ok := v.(map[string]any)
	if !ok {
		return obs.Timing{}
	}
	var t obs.Timing
	t.WallNS, _ = st["wall_ns"].(int64)
	t.ShuffleNS, _ = st["shuffle_ns"].(int64)
	t.InBytes, _ = st["in_bytes"].(int64)
	t.InRecords, _ = st["in_records"].(int64)
	t.OutBytes, _ = st["out_bytes"].(int64)
	t.OutRecords, _ = st["out_records"].(int64)
	t.ResidentHits, _ = st["res_hits"].(int64)
	t.ResidentMisses, _ = st["res_misses"].(int64)
	return t
}

func toAnySlice(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}
