package rpcproto

import (
	"reflect"
	"testing"

	"repro/internal/bucket"
	"repro/internal/obs"
)

func TestSigninArgsRoundTrip(t *testing.T) {
	a := SigninArgs{Kind: NodeKindSubmaster, Addr: "127.0.0.1:9001", Slots: 16}
	got := DecodeSigninArgs([]any{wireTrip(t, a.Encode())})
	if got != a {
		t.Errorf("got %+v, want %+v", got, a)
	}
}

func TestSigninArgsBackwardCompatible(t *testing.T) {
	// The original flat protocol sends no argument at all; a tree-aware
	// master must treat that as an anonymous slave.
	if got := DecodeSigninArgs(nil); got != (SigninArgs{}) {
		t.Errorf("no-arg signin = %+v, want zero", got)
	}
	if got := DecodeSigninArgs([]any{"garbage"}); got != (SigninArgs{}) {
		t.Errorf("malformed signin arg = %+v, want zero", got)
	}
	// An empty struct encodes to no keys (wire-identical to old peers
	// that send an empty struct).
	if enc := (SigninArgs{}).Encode(); len(enc) != 0 {
		t.Errorf("zero SigninArgs encoded keys: %v", enc)
	}
}

func TestReportsRoundTrip(t *testing.T) {
	reports := []Report{
		{
			Done:   true,
			Job:    3,
			TaskID: 7,
			Outputs: []bucket.Descriptor{
				{Name: "ds1/t0/s0", URL: "http://n1/d/a", Records: 10, Bytes: 100},
			},
			Timing: obs.Timing{WallNS: 5000, InBytes: 100, OutRecords: 10},
		},
		{Done: false, TaskID: 8, Err: "map func panicked"},
		{Done: true, TaskID: 9, Outputs: []bucket.Descriptor{{Name: "x", URL: "file:///x"}}},
	}
	got, err := DecodeReports(wireTrip(t, EncodeReports(reports)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reports) {
		t.Fatalf("got %d reports, want %d", len(got), len(reports))
	}
	if !got[0].Done || got[0].Job != 3 || got[0].TaskID != 7 || !reflect.DeepEqual(got[0].Outputs, reports[0].Outputs) {
		t.Errorf("report 0 = %+v", got[0])
	}
	if got[0].Timing.WallNS != 5000 || got[0].Timing.OutRecords != 10 {
		t.Errorf("report 0 timing = %+v", got[0].Timing)
	}
	if got[1].Done || got[1].TaskID != 8 || got[1].Err != "map func panicked" {
		t.Errorf("report 1 = %+v", got[1])
	}
	if !got[2].Done || len(got[2].Outputs) != 1 {
		t.Errorf("report 2 = %+v", got[2])
	}
}

func TestReportsErrors(t *testing.T) {
	if _, err := DecodeReports("no"); err == nil {
		t.Error("non-array accepted")
	}
	if _, err := DecodeReports([]any{42}); err == nil {
		t.Error("non-struct element accepted")
	}
	if _, err := DecodeReports([]any{map[string]any{"done": true}}); err == nil {
		t.Error("missing task_id accepted")
	}
	if _, err := DecodeReports([]any{map[string]any{"done": true, "task_id": int64(1)}}); err == nil {
		t.Error("done report without outputs accepted")
	}
}

func TestEmptyReports(t *testing.T) {
	got, err := DecodeReports(wireTrip(t, EncodeReports(nil)))
	if err != nil || len(got) != 0 {
		t.Errorf("empty batch = %v, %v", got, err)
	}
}

func TestNodeInfosRoundTrip(t *testing.T) {
	nodes := []NodeInfo{
		{ID: "sm-1", Kind: NodeKindSubmaster, Addr: "127.0.0.1:9001", Slots: 8, TasksDone: 42},
		{ID: "slave-2", Kind: NodeKindSlave, Slots: 2, Draining: true},
	}
	got, err := DecodeNodeInfos(wireTrip(t, EncodeNodeInfos(nodes)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, nodes) {
		t.Errorf("got %+v, want %+v", got, nodes)
	}
}

func TestNodeInfosErrors(t *testing.T) {
	if _, err := DecodeNodeInfos(42); err == nil {
		t.Error("non-array accepted")
	}
	if _, err := DecodeNodeInfos([]any{map[string]any{"kind": "slave"}}); err == nil {
		t.Error("missing id accepted")
	}
}
