// Package kmeans implements iterative MapReduce k-means clustering,
// the first of the iterative algorithms the paper's introduction cites
// as MapReduce-suitable scientific workloads ([2], Zhao et al.). It
// doubles as the exercise for the framework's broadcast-parameter
// mechanism: the current centroids travel to every map task as the
// operation's Params (the role Hadoop's DistributedCache plays), while
// the point set stays put as a static dataset — so the per-iteration
// cost is exactly the framework overhead the paper optimizes.
package kmeans

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kvio"
	"repro/internal/prand"
)

// Function names registered by Register.
const (
	AssignName = "kmeans_assign"
	UpdateName = "kmeans_update"
)

// Config parameterizes a clustering run.
type Config struct {
	// K is the number of clusters.
	K int
	// Dims is the point dimensionality.
	Dims int
	// MaxIters bounds the iteration count.
	MaxIters int
	// Epsilon stops iteration when no centroid moves further than this.
	Epsilon float64
	// Tasks is the number of map splits.
	Tasks int
	// Seed drives deterministic initialization.
	Seed uint64
}

func (c *Config) fill() error {
	if c.K <= 0 {
		c.K = 4
	}
	if c.Dims <= 0 {
		c.Dims = 2
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 50
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-6
	}
	if c.Tasks <= 0 {
		c.Tasks = 4
	}
	return nil
}

// ---------------------------------------------------------------------------
// Wire encodings

// EncodeCentroids packs k centroid vectors as the broadcast params.
func EncodeCentroids(cs [][]float64) []byte {
	out := binary.AppendVarint(nil, int64(len(cs)))
	dims := 0
	if len(cs) > 0 {
		dims = len(cs[0])
	}
	out = binary.AppendVarint(out, int64(dims))
	for _, c := range cs {
		for _, x := range c {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			out = append(out, buf[:]...)
		}
	}
	return out
}

// DecodeCentroids unpacks broadcast params.
func DecodeCentroids(data []byte) ([][]float64, error) {
	k, n := binary.Varint(data)
	if n <= 0 {
		return nil, fmt.Errorf("kmeans: bad centroid params")
	}
	data = data[n:]
	dims, n := binary.Varint(data)
	if n <= 0 {
		return nil, fmt.Errorf("kmeans: bad centroid params")
	}
	data = data[n:]
	if k < 0 || k > 1<<20 || dims < 0 || dims > 1<<20 {
		return nil, fmt.Errorf("kmeans: implausible shape k=%d dims=%d", k, dims)
	}
	if int64(len(data)) != k*dims*8 {
		return nil, fmt.Errorf("kmeans: centroid payload size mismatch")
	}
	out := make([][]float64, k)
	for i := range out {
		out[i] = make([]float64, dims)
		for d := range out[i] {
			out[i][d] = math.Float64frombits(binary.LittleEndian.Uint64(data))
			data = data[8:]
		}
	}
	return out, nil
}

// encodePartial packs a (count, sum-vector) aggregation value.
func encodePartial(count int64, sum []float64) []byte {
	out := binary.AppendVarint(nil, count)
	for _, x := range sum {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		out = append(out, buf[:]...)
	}
	return out
}

func decodePartial(data []byte) (int64, []float64, error) {
	count, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("kmeans: bad partial")
	}
	data = data[n:]
	if len(data)%8 != 0 {
		return 0, nil, fmt.Errorf("kmeans: bad partial payload")
	}
	sum := make([]float64, len(data)/8)
	for i := range sum {
		sum[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return count, sum, nil
}

// ---------------------------------------------------------------------------
// Registration

// Register installs the k-means functions. The assign map is a factory:
// its params carry the iteration's centroids.
func Register(reg *core.Registry) {
	reg.RegisterMapFactory(AssignName, func(params []byte) (core.MapFunc, error) {
		centroids, err := DecodeCentroids(params)
		if err != nil {
			return nil, err
		}
		if len(centroids) == 0 {
			return nil, fmt.Errorf("kmeans: no centroids in params")
		}
		return func(key, value []byte, emit kvio.Emitter) error {
			point, err := codec.DecodeFloat64Slice(value)
			if err != nil {
				return err
			}
			best, bestDist := 0, math.Inf(1)
			for i, c := range centroids {
				if d := sqDist(point, c); d < bestDist {
					best, bestDist = i, d
				}
			}
			return emit.Emit(codec.EncodeVarint(int64(best)), encodePartial(1, point))
		}, nil
	})

	// Update sums partials; it is its own combiner.
	reg.RegisterReduce(UpdateName, func(key []byte, values [][]byte, emit kvio.Emitter) error {
		var total int64
		var sum []float64
		for _, v := range values {
			count, part, err := decodePartial(v)
			if err != nil {
				return err
			}
			if sum == nil {
				sum = make([]float64, len(part))
			}
			if len(part) != len(sum) {
				return fmt.Errorf("kmeans: dimension mismatch in partials")
			}
			for d := range part {
				sum[d] += part[d]
			}
			total += count
		}
		return emit.Emit(key, encodePartial(total, sum))
	})
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// ---------------------------------------------------------------------------
// Data generation

// GeneratePoints synthesizes n points around k true Gaussian clusters
// and returns (points, true centers). Deterministic in cfg.Seed.
func GeneratePoints(cfg Config, n int) ([][]float64, [][]float64, error) {
	if err := cfg.fill(); err != nil {
		return nil, nil, err
	}
	rng := prand.Random(cfg.Seed, 0xC1)
	centers := make([][]float64, cfg.K)
	for i := range centers {
		centers[i] = make([]float64, cfg.Dims)
		for d := range centers[i] {
			centers[i][d] = rng.Float64Range(-100, 100)
		}
	}
	points := make([][]float64, n)
	for p := range points {
		c := centers[p%cfg.K]
		points[p] = make([]float64, cfg.Dims)
		for d := range points[p] {
			points[p][d] = c[d] + rng.NormFloat64()*3
		}
	}
	return points, centers, nil
}

// PointPairs converts points into a dataset's literal pairs.
func PointPairs(points [][]float64) []kvio.Pair {
	pairs := make([]kvio.Pair, len(points))
	for i, p := range points {
		pairs[i] = kvio.Pair{
			Key:   codec.EncodeVarint(int64(i)),
			Value: codec.EncodeFloat64Slice(p),
		}
	}
	return pairs
}

// InitialCentroids picks k distinct points deterministically (the
// classic Forgy initialization driven by the seeded stream).
func InitialCentroids(cfg Config, points [][]float64) ([][]float64, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(points) < cfg.K {
		return nil, fmt.Errorf("kmeans: %d points for k=%d", len(points), cfg.K)
	}
	rng := prand.Random(cfg.Seed, 0xC2)
	perm := rng.Perm(len(points))
	out := make([][]float64, cfg.K)
	for i := 0; i < cfg.K; i++ {
		out[i] = append([]float64(nil), points[perm[i]]...)
	}
	return out, nil
}

// InitialCentroidsPlusPlus implements k-means++ seeding (Arthur &
// Vassilvitskii): the first centroid is a uniform draw; each subsequent
// centroid is drawn with probability proportional to the squared
// distance from the nearest centroid chosen so far. Far more robust to
// the local optima that trap Forgy initialization.
func InitialCentroidsPlusPlus(cfg Config, points [][]float64) ([][]float64, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(points) < cfg.K {
		return nil, fmt.Errorf("kmeans: %d points for k=%d", len(points), cfg.K)
	}
	rng := prand.Random(cfg.Seed, 0xC3)
	out := make([][]float64, 0, cfg.K)
	out = append(out, append([]float64(nil), points[rng.Intn(len(points))]...))
	dist := make([]float64, len(points))
	for len(out) < cfg.K {
		var total float64
		last := out[len(out)-1]
		for i, p := range points {
			d := sqDist(p, last)
			if len(out) == 1 || d < dist[i] {
				dist[i] = d
			}
			total += dist[i]
		}
		if total == 0 {
			// All remaining points coincide with centroids; fall back
			// to an arbitrary distinct pick.
			out = append(out, append([]float64(nil), points[rng.Intn(len(points))]...))
			continue
		}
		target := rng.Float64() * total
		idx := 0
		for i, d := range dist {
			target -= d
			if target <= 0 {
				idx = i
				break
			}
		}
		out = append(out, append([]float64(nil), points[idx]...))
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Drivers

// Result summarizes a clustering run.
type Result struct {
	Centroids  [][]float64
	Iterations int
	Moved      float64 // final maximum centroid movement
	Elapsed    time.Duration
}

// step computes new centroids from aggregated (count, sum) partials;
// clusters that received no points keep their previous centroid.
func step(prev [][]float64, agg map[int64]struct {
	count int64
	sum   []float64
}) ([][]float64, float64) {
	next := make([][]float64, len(prev))
	maxMove := 0.0
	for i := range prev {
		a, ok := agg[int64(i)]
		if !ok || a.count == 0 {
			next[i] = append([]float64(nil), prev[i]...)
			continue
		}
		next[i] = make([]float64, len(prev[i]))
		for d := range next[i] {
			next[i][d] = a.sum[d] / float64(a.count)
		}
		if move := math.Sqrt(sqDist(next[i], prev[i])); move > maxMove {
			maxMove = move
		}
	}
	return next, maxMove
}

// RunMapReduce clusters a points dataset. Register must have been
// called on every participating process.
func RunMapReduce(job *core.Job, cfg Config, points *core.Dataset, initial [][]float64) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	centroids := initial
	start := time.Now()
	res := &Result{}
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		mapped, err := job.Map(points, AssignName, core.OpOpts{
			Splits:    1,
			Partition: "constant",
			Combine:   UpdateName,
			Params:    EncodeCentroids(centroids),
			// points never changes between iterations: pin it in the
			// worker-side resident cache so only iteration 1 shuffles it.
			Resident: true,
		})
		if err != nil {
			return nil, err
		}
		reduced, err := job.Reduce(mapped, UpdateName, core.OpOpts{Splits: 1, Partition: "constant", KeyAligned: true})
		if err != nil {
			return nil, err
		}
		pairs, err := reduced.Collect()
		if err != nil {
			return nil, err
		}
		agg := map[int64]struct {
			count int64
			sum   []float64
		}{}
		for _, kv := range pairs {
			cid, err := codec.DecodeVarint(kv.Key)
			if err != nil {
				return nil, err
			}
			count, sum, err := decodePartial(kv.Value)
			if err != nil {
				return nil, err
			}
			agg[cid] = struct {
				count int64
				sum   []float64
			}{count, sum}
		}
		var moved float64
		centroids, moved = step(centroids, agg)
		res.Iterations = iter
		res.Moved = moved
		_ = reduced.Free()
		_ = mapped.Free()
		if moved <= cfg.Epsilon {
			break
		}
	}
	res.Centroids = centroids
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunSerial is the plain-loop reference implementation.
func RunSerial(cfg Config, points [][]float64, initial [][]float64) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	centroids := initial
	start := time.Now()
	res := &Result{}
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		agg := map[int64]struct {
			count int64
			sum   []float64
		}{}
		for _, p := range points {
			best, bestDist := 0, math.Inf(1)
			for i, c := range centroids {
				if d := sqDist(p, c); d < bestDist {
					best, bestDist = i, d
				}
			}
			a := agg[int64(best)]
			if a.sum == nil {
				a.sum = make([]float64, len(p))
			}
			for d := range p {
				a.sum[d] += p[d]
			}
			a.count++
			agg[int64(best)] = a
		}
		var moved float64
		centroids, moved = step(centroids, agg)
		res.Iterations = iter
		res.Moved = moved
		if moved <= cfg.Epsilon {
			break
		}
	}
	res.Centroids = centroids
	res.Elapsed = time.Since(start)
	return res, nil
}

// Inertia returns the sum of squared distances of points to their
// nearest centroid (the k-means objective; lower is better).
func Inertia(points, centroids [][]float64) float64 {
	var total float64
	for _, p := range points {
		best := math.Inf(1)
		for _, c := range centroids {
			if d := sqDist(p, c); d < best {
				best = d
			}
		}
		total += best
	}
	return total
}
