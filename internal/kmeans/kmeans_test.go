package kmeans

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

func config() Config {
	return Config{K: 3, Dims: 2, MaxIters: 30, Epsilon: 1e-9, Tasks: 3, Seed: 11}
}

func TestCentroidsRoundTrip(t *testing.T) {
	cs := [][]float64{{1, 2}, {3, 4}, {-5, 0.5}}
	got, err := DecodeCentroids(EncodeCentroids(cs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2][0] != -5 || got[1][1] != 4 {
		t.Errorf("got %v", got)
	}
}

func TestCentroidsDecodeErrors(t *testing.T) {
	if _, err := DecodeCentroids(nil); err == nil {
		t.Error("empty accepted")
	}
	enc := EncodeCentroids([][]float64{{1, 2}})
	if _, err := DecodeCentroids(enc[:len(enc)-4]); err == nil {
		t.Error("truncated accepted")
	}
}

func TestPartialRoundTrip(t *testing.T) {
	count, sum, err := decodePartial(encodePartial(7, []float64{1.5, -2}))
	if err != nil {
		t.Fatal(err)
	}
	if count != 7 || sum[0] != 1.5 || sum[1] != -2 {
		t.Errorf("got %d %v", count, sum)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := config()
	a, ca, err := GeneratePoints(cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, cb, err := GeneratePoints(cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 50 || len(ca) != cfg.K {
		t.Fatalf("shapes: %d points, %d centers", len(a), len(ca))
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatal("points not deterministic")
			}
		}
	}
	for i := range ca {
		for d := range ca[i] {
			if ca[i][d] != cb[i][d] {
				t.Fatal("centers not deterministic")
			}
		}
	}
}

func TestInitialCentroidsDistinct(t *testing.T) {
	cfg := config()
	points, _, _ := GeneratePoints(cfg, 30)
	init, err := InitialCentroids(cfg, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(init) != cfg.K {
		t.Fatalf("got %d centroids", len(init))
	}
	if _, err := InitialCentroids(Config{K: 100}, points[:3]); err == nil {
		t.Error("too few points accepted")
	}
}

func TestSerialConverges(t *testing.T) {
	cfg := config()
	points, trueCenters, _ := GeneratePoints(cfg, 300)
	init, err := InitialCentroidsPlusPlus(cfg, points)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSerial(cfg, points, init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= cfg.MaxIters {
		t.Logf("did not fully converge in %d iters (ok for some seeds)", res.Iterations)
	}
	// The converged inertia should match (or beat — fitted centroids
	// track the sample means) the inertia of the true generating
	// centers; that is the noise floor for this data.
	finalInertia := Inertia(points, res.Centroids)
	trueInertia := Inertia(points, trueCenters)
	if finalInertia > trueInertia*1.05 {
		t.Errorf("inertia %v above the true-center floor %v", finalInertia, trueInertia)
	}
	for _, c := range res.Centroids {
		best := math.Inf(1)
		for _, tc := range trueCenters {
			if d := math.Sqrt(sqDist(c, tc)); d < best {
				best = d
			}
		}
		if best > 10 {
			t.Errorf("centroid %v is %.1f away from any true center", c, best)
		}
	}
}

func TestMapReduceMatchesSerialExactly(t *testing.T) {
	cfg := config()
	points, _, _ := GeneratePoints(cfg, 200)
	init, _ := InitialCentroids(cfg, points)

	serial, err := RunSerial(cfg, points, init)
	if err != nil {
		t.Fatal(err)
	}

	reg := core.NewRegistry()
	Register(reg)
	for _, mk := range []func() core.Executor{
		func() core.Executor { return core.NewSerial(reg) },
		func() core.Executor { return core.NewThreads(reg, 4) },
	} {
		exec := mk()
		job := core.NewJob(exec)
		src, err := job.LocalData(PointPairs(points), core.OpOpts{Splits: cfg.Tasks, Partition: "roundrobin"})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunMapReduce(job, cfg, src, init)
		if err != nil {
			t.Fatal(err)
		}
		job.Close()
		exec.Close()
		if res.Iterations != serial.Iterations {
			t.Errorf("iterations: MR %d, serial %d", res.Iterations, serial.Iterations)
		}
		for i := range serial.Centroids {
			for d := range serial.Centroids[i] {
				diff := math.Abs(res.Centroids[i][d] - serial.Centroids[i][d])
				if diff > 1e-9 {
					t.Errorf("centroid %d dim %d: MR %v, serial %v",
						i, d, res.Centroids[i][d], serial.Centroids[i][d])
				}
			}
		}
	}
}

func TestEmptyClusterKeepsCentroid(t *testing.T) {
	// Place an initial centroid far from all points; it must survive
	// unchanged rather than collapse to NaN.
	cfg := Config{K: 2, Dims: 1, MaxIters: 5, Epsilon: 1e-12, Tasks: 1, Seed: 1}
	points := [][]float64{{0}, {1}, {2}}
	init := [][]float64{{1}, {1e9}}
	res, err := RunSerial(cfg, points, init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids[1][0] != 1e9 {
		t.Errorf("empty cluster centroid moved: %v", res.Centroids[1])
	}
	if math.IsNaN(res.Centroids[0][0]) {
		t.Error("NaN centroid")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.K != 4 || cfg.Dims != 2 || cfg.MaxIters != 50 {
		t.Errorf("defaults: %+v", cfg)
	}
}

func BenchmarkKMeansIterationMR(b *testing.B) {
	cfg := Config{K: 4, Dims: 8, MaxIters: 1, Epsilon: 0, Tasks: 4, Seed: 3}
	points, _, _ := GeneratePoints(cfg, 1000)
	init, _ := InitialCentroids(cfg, points)
	reg := core.NewRegistry()
	Register(reg)
	exec := core.NewThreads(reg, 4)
	defer exec.Close()
	job := core.NewJob(exec)
	defer job.Close()
	src, err := job.LocalData(PointPairs(points), core.OpOpts{Splits: 4, Partition: "roundrobin"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunMapReduce(job, cfg, src, init); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPlusPlusSpreadsCentroids(t *testing.T) {
	cfg := config()
	points, trueCenters, _ := GeneratePoints(cfg, 300)
	init, err := InitialCentroidsPlusPlus(cfg, points)
	if err != nil {
		t.Fatal(err)
	}
	// Each true center should have an initial centroid nearby (within
	// the inter-cluster scale), i.e. ++ seeding covers all clusters.
	for _, tc := range trueCenters {
		best := math.Inf(1)
		for _, c := range init {
			if d := math.Sqrt(sqDist(c, tc)); d < best {
				best = d
			}
		}
		if best > 30 {
			t.Errorf("true center %v has no nearby seed (closest %.1f)", tc, best)
		}
	}
}

func TestPlusPlusDegenerate(t *testing.T) {
	cfg := Config{K: 3, Dims: 1, Seed: 5}
	points := [][]float64{{1}, {1}, {1}, {1}}
	init, err := InitialCentroidsPlusPlus(cfg, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(init) != 3 {
		t.Errorf("got %d centroids", len(init))
	}
}

func TestMapReduceDistributedCluster(t *testing.T) {
	// Broadcast params must survive the real XML-RPC path: run k-means
	// on an actual master + slaves deployment and compare with serial.
	cfg := config()
	points, _, _ := GeneratePoints(cfg, 150)
	init, _ := InitialCentroidsPlusPlus(cfg, points)
	serial, err := RunSerial(cfg, points, init)
	if err != nil {
		t.Fatal(err)
	}

	reg := core.NewRegistry()
	Register(reg)
	c, err := cluster.Start(reg, cluster.Options{Slaves: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	job := core.NewJob(c.Executor())
	defer job.Close()
	src, err := job.LocalData(PointPairs(points), core.OpOpts{Splits: 3, Partition: "roundrobin"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMapReduce(job, cfg, src, init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != serial.Iterations {
		t.Errorf("iterations: distributed %d, serial %d", res.Iterations, serial.Iterations)
	}
	for i := range serial.Centroids {
		for d := range serial.Centroids[i] {
			if diff := math.Abs(res.Centroids[i][d] - serial.Centroids[i][d]); diff > 1e-9 {
				t.Errorf("centroid %d dim %d differs by %v", i, d, diff)
			}
		}
	}
}
