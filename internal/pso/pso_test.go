package pso

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestFunctionsAtKnownOptima(t *testing.T) {
	ones := []float64{1, 1, 1, 1}
	if v := Rosenbrock.Eval(ones); v != 0 {
		t.Errorf("Rosenbrock(1..1) = %v", v)
	}
	zeros := make([]float64, 6)
	for _, f := range []Function{Sphere, Rastrigin, Griewank} {
		if v := f.Eval(zeros); math.Abs(v) > 1e-12 {
			t.Errorf("%s(0..0) = %v", f.Name, v)
		}
	}
	if v := Ackley.Eval(zeros); math.Abs(v) > 1e-9 {
		t.Errorf("Ackley(0..0) = %v", v)
	}
}

func TestFunctionsNonNegativeNearOptimum(t *testing.T) {
	f := func(a, b, c float64) bool {
		x := []float64{math.Mod(a, 5), math.Mod(b, 5), math.Mod(c, 5)}
		return Sphere.Eval(x) >= 0 && Rastrigin.Eval(x) >= -1e-9 &&
			Rosenbrock.Eval(x) >= 0 && Griewank.Eval(x) >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFunctionByName(t *testing.T) {
	for _, f := range Functions() {
		got, err := FunctionByName(f.Name)
		if err != nil || got.Name != f.Name {
			t.Errorf("FunctionByName(%q): %v", f.Name, err)
		}
	}
	if _, err := FunctionByName("nope"); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestNewSwarmDeterministic(t *testing.T) {
	a := NewSwarm(Sphere, 10, 5, 3, 42)
	b := NewSwarm(Sphere, 10, 5, 3, 42)
	if a.BestVal != b.BestVal {
		t.Error("same seed gave different swarms")
	}
	c := NewSwarm(Sphere, 10, 5, 4, 42)
	if a.BestVal == c.BestVal {
		t.Error("different swarm ids gave identical populations")
	}
	for _, p := range a.Particles {
		for _, x := range p.Pos {
			if x < Sphere.InitLower || x > Sphere.InitUpper {
				t.Fatalf("init position %v outside init region", x)
			}
		}
	}
}

func TestStepImprovesSphere(t *testing.T) {
	s := NewSwarm(Sphere, 10, 10, 0, 7)
	initial := s.BestVal
	s.StepMany(Sphere, 7, 200)
	if s.BestVal >= initial {
		t.Errorf("no improvement after 200 iters: %v -> %v", initial, s.BestVal)
	}
	if s.BestVal > initial/100 {
		t.Errorf("Sphere should improve dramatically: %v -> %v", initial, s.BestVal)
	}
}

func TestStepDeterministic(t *testing.T) {
	run := func() float64 {
		s := NewSwarm(Rosenbrock, 20, 5, 1, 99)
		s.StepMany(Rosenbrock, 99, 50)
		return s.BestVal
	}
	if run() != run() {
		t.Error("identical runs diverged")
	}
}

func TestStepRespectsBounds(t *testing.T) {
	s := NewSwarm(Sphere, 5, 8, 0, 3)
	s.StepMany(Sphere, 3, 100)
	for _, p := range s.Particles {
		for _, x := range p.Pos {
			if x < Sphere.Lower || x > Sphere.Upper {
				t.Fatalf("position %v escaped bounds", x)
			}
		}
	}
}

func TestPBestMonotone(t *testing.T) {
	s := NewSwarm(Rastrigin, 8, 6, 0, 11)
	prev := make([]float64, len(s.Particles))
	for i, p := range s.Particles {
		prev[i] = p.PBestVal
	}
	for iter := 0; iter < 50; iter++ {
		s.Step(Rastrigin, 11)
		for i, p := range s.Particles {
			if p.PBestVal > prev[i] {
				t.Fatalf("pbest worsened: %v -> %v", prev[i], p.PBestVal)
			}
			prev[i] = p.PBestVal
		}
	}
}

func TestSwarmEncodeDecodeRoundTrip(t *testing.T) {
	s := NewSwarm(Rosenbrock, 25, 5, 7, 123)
	s.StepMany(Rosenbrock, 123, 10)
	s.AbsorbExternal(make([]float64, 25), 0.5)
	got, err := DecodeSwarm(EncodeSwarm(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != s.ID || got.Iter != s.Iter || got.BestVal != s.BestVal {
		t.Errorf("header mismatch: %+v vs %+v", got.ID, s.ID)
	}
	if got.ExtVal != 0.5 {
		t.Errorf("ExtVal = %v", got.ExtVal)
	}
	if len(got.Particles) != len(s.Particles) {
		t.Fatalf("particle count %d vs %d", len(got.Particles), len(s.Particles))
	}
	for i := range s.Particles {
		for d := range s.Particles[i].Pos {
			if got.Particles[i].Pos[d] != s.Particles[i].Pos[d] ||
				got.Particles[i].Vel[d] != s.Particles[i].Vel[d] ||
				got.Particles[i].PBestPos[d] != s.Particles[i].PBestPos[d] {
				t.Fatalf("particle %d dim %d mismatch", i, d)
			}
		}
	}
	// Decoded swarm must continue the exact same trajectory.
	s2 := got
	s.Step(Rosenbrock, 123)
	s2.Step(Rosenbrock, 123)
	if s.BestVal != s2.BestVal {
		t.Error("decoded swarm diverged from original")
	}
}

func TestSwarmEncodeNoExternal(t *testing.T) {
	s := NewSwarm(Sphere, 3, 2, 0, 1)
	got, err := DecodeSwarm(EncodeSwarm(s))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.ExtVal, 1) || got.ExtPos != nil {
		t.Errorf("external state should be empty: %v %v", got.ExtVal, got.ExtPos)
	}
}

func TestBestMessageRoundTrip(t *testing.T) {
	pos := []float64{1.5, -2.5, 3.5}
	val, got, err := DecodeBest(EncodeBest(0.25, pos))
	if err != nil {
		t.Fatal(err)
	}
	if val != 0.25 || len(got) != 3 || got[1] != -2.5 {
		t.Errorf("got %v %v", val, got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeSwarm(nil); err == nil {
		t.Error("empty state accepted")
	}
	if _, err := DecodeSwarm([]byte{tagBest}); err == nil {
		t.Error("wrong tag accepted")
	}
	if _, _, err := DecodeBest([]byte{tagState}); err == nil {
		t.Error("wrong tag accepted for best")
	}
	s := NewSwarm(Sphere, 3, 2, 0, 1)
	enc := EncodeSwarm(s)
	if _, err := DecodeSwarm(enc[:len(enc)/2]); err == nil {
		t.Error("truncated state accepted")
	}
}

func smallConfig() Config {
	return Config{
		Function:   "sphere",
		Dims:       8,
		NumSwarms:  4,
		SwarmSize:  5,
		InnerIters: 5,
		Seed:       2024,
		MaxOuter:   12,
		Tasks:      2,
		CheckEvery: 3,
	}
}

func TestRunSerialConverges(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxOuter = 60
	res, err := RunSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("no history recorded")
	}
	first := res.History[0].Best
	last := res.History[len(res.History)-1].Best
	if last >= first {
		t.Errorf("no convergence: %v -> %v", first, last)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i].Best > res.History[i-1].Best+1e-12 {
			t.Errorf("best increased at %d: %v -> %v", i, res.History[i-1].Best, res.History[i].Best)
		}
		if res.History[i].Evaluations <= res.History[i-1].Evaluations {
			t.Errorf("evaluations not increasing at %d", i)
		}
	}
}

func TestSerialMatchesMapReduceExactly(t *testing.T) {
	// The paper's marquee invariant applied to its marquee workload:
	// the serial baseline and the MapReduce execution produce
	// bit-identical best values at every checkpoint.
	cfg := smallConfig()
	serial, err := RunSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := core.NewRegistry()
	if err := Register(reg, cfg); err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() core.Executor{
		func() core.Executor { return core.NewSerial(reg) },
		func() core.Executor { return core.NewThreads(reg, 4) },
	} {
		exec := mk()
		job := core.NewJob(exec)
		mr, err := RunMapReduce(job, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Close(); err != nil {
			t.Fatal(err)
		}
		exec.Close()
		if len(mr.History) != len(serial.History) {
			t.Fatalf("history lengths differ: %d vs %d", len(mr.History), len(serial.History))
		}
		for i := range mr.History {
			if mr.History[i].Best != serial.History[i].Best {
				t.Errorf("checkpoint %d: MR best %v, serial best %v",
					i, mr.History[i].Best, serial.History[i].Best)
			}
			if mr.History[i].Evaluations != serial.History[i].Evaluations {
				t.Errorf("checkpoint %d: evaluations %d vs %d",
					i, mr.History[i].Evaluations, serial.History[i].Evaluations)
			}
		}
	}
}

func TestTargetStopsRun(t *testing.T) {
	cfg := smallConfig()
	cfg.Target = 1e6 // trivially reached immediately
	cfg.MaxOuter = 50
	res, err := RunSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("serial run did not report convergence")
	}
	if res.OuterIters >= 50 {
		t.Errorf("ran %d iters despite trivial target", res.OuterIters)
	}

	reg := core.NewRegistry()
	if err := Register(reg, cfg); err != nil {
		t.Fatal(err)
	}
	exec := core.NewSerial(reg)
	defer exec.Close()
	job := core.NewJob(exec)
	defer job.Close()
	mres, err := RunMapReduce(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !mres.Converged {
		t.Error("MR run did not report convergence")
	}
}

func TestSingleSwarmNoMessages(t *testing.T) {
	cfg := smallConfig()
	cfg.NumSwarms = 1
	cfg.Tasks = 1
	serial, err := RunSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	if err := Register(reg, cfg); err != nil {
		t.Fatal(err)
	}
	exec := core.NewSerial(reg)
	defer exec.Close()
	job := core.NewJob(exec)
	defer job.Close()
	mr, err := RunMapReduce(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Best != serial.Best {
		t.Errorf("single-swarm MR best %v != serial %v", mr.Best, serial.Best)
	}
}

func TestMigrationHelps(t *testing.T) {
	// With the ring migration channel, isolated swarms share progress;
	// the external best absorbed must never be worse than ignoring it.
	s := NewSwarm(Sphere, 4, 3, 0, 5)
	s.AbsorbExternal([]float64{0.01, 0.01, 0.01, 0.01}, Sphere.Eval([]float64{0.01, 0.01, 0.01, 0.01}))
	before := s.BestVal
	s.StepMany(Sphere, 5, 120)
	if s.BestVal >= before {
		t.Errorf("migrated best did not help: %v -> %v", before, s.BestVal)
	}
	if s.BestVal > before/5 {
		t.Errorf("swarm barely used excellent migrant: %v -> %v", before, s.BestVal)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := Config{Function: "nope"}
	if err := cfg.fill(); err == nil {
		t.Error("bad function accepted")
	}
	cfg = Config{}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.Function != "rosenbrock" || cfg.Dims != 250 {
		t.Errorf("defaults: %+v", cfg)
	}
	cfg = Config{Tasks: 100, NumSwarms: 4}
	cfg.fill()
	if cfg.Tasks != 4 {
		t.Errorf("tasks not clamped to swarms: %d", cfg.Tasks)
	}
}

func BenchmarkRosenbrock250Eval(b *testing.B) {
	x := make([]float64, 250)
	for i := range x {
		x[i] = 1.5
	}
	for i := 0; i < b.N; i++ {
		Rosenbrock.Eval(x)
	}
}

func BenchmarkSwarmStep(b *testing.B) {
	s := NewSwarm(Rosenbrock, 250, 5, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(Rosenbrock, 1)
	}
}

func BenchmarkSwarmEncodeDecode(b *testing.B) {
	s := NewSwarm(Rosenbrock, 250, 5, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := EncodeSwarm(s)
		if _, err := DecodeSwarm(enc); err != nil {
			b.Fatal(err)
		}
	}
}
