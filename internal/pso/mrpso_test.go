package pso

import (
	"math"
	"testing"

	"repro/internal/core"
)

func mrpsoConfig() MRPSOConfig {
	return MRPSOConfig{
		Function:  "sphere",
		Dims:      6,
		Particles: 10,
		Seed:      77,
		MaxIters:  40,
		Tasks:     3,
	}
}

func TestParticleEncodeDecodeRoundTrip(t *testing.T) {
	ps, err := initialParticles(mrpsoConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := ps[3]
	p.NBestPos = append([]float64(nil), p.P.Pos...)
	p.NBestVal = 1.5
	got, err := decodeParticle(encodeParticle(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != p.ID || got.Iter != p.Iter || got.P.PBestVal != p.P.PBestVal || got.NBestVal != 1.5 {
		t.Errorf("header mismatch: %+v", got)
	}
	for d := range p.P.Pos {
		if got.P.Pos[d] != p.P.Pos[d] || got.P.Vel[d] != p.P.Vel[d] {
			t.Fatalf("vector mismatch at %d", d)
		}
	}
}

func TestPBestMsgRoundTrip(t *testing.T) {
	val, pos, err := decodePBestMsg(encodePBestMsg(2.5, []float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if val != 2.5 || len(pos) != 2 || pos[1] != 2 {
		t.Errorf("got %v %v", val, pos)
	}
}

func TestMRPSODecodeErrors(t *testing.T) {
	if _, err := decodeParticle([]byte{tagBest}); err == nil {
		t.Error("wrong tag accepted")
	}
	if _, _, err := decodePBestMsg([]byte{tagParticle}); err == nil {
		t.Error("wrong tag accepted")
	}
}

func TestMRPSOConvergesOnSphere(t *testing.T) {
	cfg := mrpsoConfig()
	reg := core.NewRegistry()
	if err := RegisterMRPSO(reg, cfg); err != nil {
		t.Fatal(err)
	}
	exec := core.NewThreads(reg, 4)
	defer exec.Close()
	job := core.NewJob(exec)
	defer job.Close()
	res, err := RunMRPSO(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Initial positions are in [25, 50]^6, so sphere starts >= 6*625.
	if res.Best > 100 {
		t.Errorf("MRPSO barely improved: best %v", res.Best)
	}
	if res.Evaluations != int64(cfg.Particles*cfg.MaxIters) {
		t.Errorf("Evaluations = %d", res.Evaluations)
	}
}

func TestMRPSOMatchesParticleSerial(t *testing.T) {
	cfg := mrpsoConfig()
	serial, err := RunParticleSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	if err := RegisterMRPSO(reg, cfg); err != nil {
		t.Fatal(err)
	}
	for _, exec := range []core.Executor{core.NewSerial(reg), core.NewThreads(reg, 4)} {
		job := core.NewJob(exec)
		res, err := RunMRPSO(job, cfg)
		if err != nil {
			t.Fatal(err)
		}
		job.Close()
		exec.Close()
		if res.Best != serial.Best {
			t.Errorf("MRPSO best %v != particle-serial best %v", res.Best, serial.Best)
		}
	}
}

func TestMRPSOSingleParticle(t *testing.T) {
	cfg := mrpsoConfig()
	cfg.Particles = 1
	cfg.Tasks = 1
	reg := core.NewRegistry()
	if err := RegisterMRPSO(reg, cfg); err != nil {
		t.Fatal(err)
	}
	exec := core.NewSerial(reg)
	defer exec.Close()
	job := core.NewJob(exec)
	defer job.Close()
	res, err := RunMRPSO(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.Best, 1) {
		t.Error("no best recorded for single particle")
	}
}

func TestMRPSOConfigValidation(t *testing.T) {
	cfg := MRPSOConfig{Function: "bogus"}
	if err := cfg.fill(); err == nil {
		t.Error("bad function accepted")
	}
	cfg = MRPSOConfig{}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.Particles != 20 || cfg.Dims != 50 {
		t.Errorf("defaults: %+v", cfg)
	}
}

func BenchmarkGranularityParticle(b *testing.B) {
	// Fine-grained MRPSO: one particle per record (the formulation the
	// paper says is too fine for trivial objectives).
	cfg := MRPSOConfig{Function: "sphere", Dims: 10, Particles: 40, Seed: 1, MaxIters: 10, Tasks: 4}
	reg := core.NewRegistry()
	if err := RegisterMRPSO(reg, cfg); err != nil {
		b.Fatal(err)
	}
	exec := core.NewThreads(reg, 4)
	defer exec.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := core.NewJob(exec)
		if _, err := RunMRPSO(job, cfg); err != nil {
			b.Fatal(err)
		}
		job.Close()
	}
}

func BenchmarkGranularitySubswarm(b *testing.B) {
	// Apiary subswarms doing the same number of evaluations (40
	// particles x 10 iterations) in one MapReduce iteration.
	cfg := Config{Function: "sphere", Dims: 10, NumSwarms: 8, SwarmSize: 5,
		InnerIters: 10, Seed: 1, MaxOuter: 1, Tasks: 4, CheckEvery: 1}
	reg := core.NewRegistry()
	if err := Register(reg, cfg); err != nil {
		b.Fatal(err)
	}
	exec := core.NewThreads(reg, 4)
	defer exec.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := core.NewJob(exec)
		if _, err := RunMapReduce(job, cfg); err != nil {
			b.Fatal(err)
		}
		job.Close()
	}
}
