package pso

import (
	"fmt"
	"math"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kvio"
	"repro/internal/prand"
)

// This file implements the fine-grained MRPSO formulation the paper
// describes in §V-B (and cites as [5]): "the map function performing
// motion simulation and evaluation of the objective function and the
// reduce function calculating the neighborhood best by combining the
// updated particle with messages from its neighbors." Each record is a
// single particle. The paper notes this granularity is too fine for
// computationally trivial objectives — which is exactly what the
// granularity ablation bench demonstrates against the Apiary subswarm
// version.

// Function names registered by RegisterMRPSO.
const (
	ParticleMoveName  = "mrpso_move"
	ParticleMergeName = "mrpso_merge"
)

// wire tags for MRPSO values.
const (
	tagParticle = 2
	tagPBestMsg = 3
)

// mrParticle is one particle plus its neighborhood-best knowledge.
type mrParticle struct {
	ID       int64
	Iter     int64
	P        Particle
	NBestPos []float64
	NBestVal float64
}

// encodeParticle serializes a particle record.
func encodeParticle(p *mrParticle) []byte {
	out := []byte{tagParticle}
	out = appendVarint(out, p.ID)
	out = appendVarint(out, p.Iter)
	out = appendVarint(out, int64(len(p.P.Pos)))
	out = putFloats(out, p.P.Pos)
	out = putFloats(out, p.P.Vel)
	out = putFloats(out, p.P.PBestPos)
	out = putFloats(out, []float64{p.P.Val, p.P.PBestVal, p.NBestVal})
	if p.NBestPos != nil {
		out = append(out, 1)
		out = putFloats(out, p.NBestPos)
	} else {
		out = append(out, 0)
	}
	return out
}

func decodeParticle(data []byte) (*mrParticle, error) {
	d := &decoder{data: data}
	if tag := d.byte(); tag != tagParticle {
		if d.err == nil {
			d.err = fmt.Errorf("pso: expected particle tag, got %d", tag)
		}
		return nil, d.err
	}
	p := &mrParticle{}
	p.ID = d.varint()
	p.Iter = d.varint()
	dims := int(d.varint())
	if d.err != nil {
		return nil, d.err
	}
	if dims < 0 || dims > 1<<20 {
		return nil, fmt.Errorf("pso: implausible dims %d", dims)
	}
	p.P.Pos = d.floats(dims)
	p.P.Vel = d.floats(dims)
	p.P.PBestPos = d.floats(dims)
	p.P.Val = d.float()
	p.P.PBestVal = d.float()
	p.NBestVal = d.float()
	if d.byte() == 1 {
		p.NBestPos = d.floats(dims)
	}
	if d.err != nil {
		return nil, d.err
	}
	return p, nil
}

// encodePBestMsg serializes a pbest message sent to a neighbor.
func encodePBestMsg(val float64, pos []float64) []byte {
	out := []byte{tagPBestMsg}
	out = appendVarint(out, int64(len(pos)))
	out = putFloats(out, []float64{val})
	out = putFloats(out, pos)
	return out
}

func decodePBestMsg(data []byte) (float64, []float64, error) {
	d := &decoder{data: data}
	if tag := d.byte(); tag != tagPBestMsg {
		if d.err == nil {
			d.err = fmt.Errorf("pso: expected pbest tag, got %d", tag)
		}
		return 0, nil, d.err
	}
	dims := int(d.varint())
	val := d.float()
	pos := d.floats(dims)
	return val, pos, d.err
}

func appendVarint(dst []byte, v int64) []byte {
	return append(dst, codec.EncodeVarint(v)...)
}

// MRPSOConfig parameterizes a fine-grained MRPSO run.
type MRPSOConfig struct {
	Function  string
	Dims      int
	Particles int
	Seed      uint64
	MaxIters  int
	Target    float64
	Tasks     int
}

func (c *MRPSOConfig) fill() error {
	if c.Function == "" {
		c.Function = Rosenbrock.Name
	}
	if _, err := FunctionByName(c.Function); err != nil {
		return err
	}
	if c.Dims <= 0 {
		c.Dims = 50
	}
	if c.Particles <= 0 {
		c.Particles = 20
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 100
	}
	if c.Tasks <= 0 {
		c.Tasks = 4
	}
	return nil
}

// RegisterMRPSO installs the particle-granularity map/reduce functions.
func RegisterMRPSO(reg *core.Registry, cfg MRPSOConfig) error {
	if err := cfg.fill(); err != nil {
		return err
	}
	f, err := FunctionByName(cfg.Function)
	if err != nil {
		return err
	}
	n := int64(cfg.Particles)

	// Move: one particle per call. Update velocity toward pbest and
	// nbest, move, evaluate; send the updated particle to itself and a
	// pbest message to each ring neighbor.
	reg.RegisterMap(ParticleMoveName, func(key, value []byte, emit kvio.Emitter) error {
		p, err := decodeParticle(value)
		if err != nil {
			return err
		}
		rng := prand.Random(cfg.Seed, uint64(p.ID), uint64(p.Iter)+1)
		for d := range p.P.Pos {
			r1, r2 := rng.Float64(), rng.Float64()
			nb := p.P.PBestPos[d]
			if p.NBestPos != nil {
				nb = p.NBestPos[d]
			}
			p.P.Vel[d] = Chi * (p.P.Vel[d] +
				C1*r1*(p.P.PBestPos[d]-p.P.Pos[d]) +
				C2*r2*(nb-p.P.Pos[d]))
			p.P.Pos[d] += p.P.Vel[d]
			if p.P.Pos[d] < f.Lower {
				p.P.Pos[d] = f.Lower
				p.P.Vel[d] = 0
			} else if p.P.Pos[d] > f.Upper {
				p.P.Pos[d] = f.Upper
				p.P.Vel[d] = 0
			}
		}
		p.P.Val = f.Eval(p.P.Pos)
		if p.P.Val < p.P.PBestVal {
			p.P.PBestVal = p.P.Val
			copy(p.P.PBestPos, p.P.Pos)
		}
		p.Iter++
		if err := emit.Emit(key, encodeParticle(p)); err != nil {
			return err
		}
		msg := encodePBestMsg(p.P.PBestVal, p.P.PBestPos)
		left := (p.ID - 1 + n) % n
		right := (p.ID + 1) % n
		for _, nb := range []int64{left, right} {
			if nb == p.ID {
				continue
			}
			if err := emit.Emit(codec.EncodeVarint(nb), msg); err != nil {
				return err
			}
		}
		return nil
	})

	// Merge: fold neighbor pbest messages into the particle's nbest.
	reg.RegisterReduce(ParticleMergeName, func(key []byte, values [][]byte, emit kvio.Emitter) error {
		var p *mrParticle
		type msg struct {
			val float64
			pos []float64
		}
		var msgs []msg
		for _, v := range values {
			tag, err := ValueTag(v)
			if err != nil {
				return err
			}
			switch tag {
			case tagParticle:
				if p != nil {
					return fmt.Errorf("pso: duplicate particle for key %x", key)
				}
				if p, err = decodeParticle(v); err != nil {
					return err
				}
			case tagPBestMsg:
				val, pos, err := decodePBestMsg(v)
				if err != nil {
					return err
				}
				msgs = append(msgs, msg{val, pos})
			default:
				return fmt.Errorf("pso: unknown tag %d in mrpso merge", tag)
			}
		}
		if p == nil {
			return fmt.Errorf("pso: no particle for key %x", key)
		}
		// nbest = best of own pbest and neighbor pbests.
		bestVal := p.P.PBestVal
		bestPos := p.P.PBestPos
		for _, m := range msgs {
			if m.val < bestVal {
				bestVal = m.val
				bestPos = m.pos
			}
		}
		p.NBestVal = bestVal
		p.NBestPos = append([]float64(nil), bestPos...)
		return emit.Emit(key, encodeParticle(p))
	})
	return nil
}

// initialParticles builds the deterministic starting population (ring
// topology over individual particles).
func initialParticles(cfg MRPSOConfig) ([]*mrParticle, error) {
	f, err := FunctionByName(cfg.Function)
	if err != nil {
		return nil, err
	}
	out := make([]*mrParticle, cfg.Particles)
	vspan := f.Upper - f.Lower
	for i := range out {
		rng := prand.Random(cfg.Seed, uint64(i), 0xFACE)
		p := &mrParticle{ID: int64(i), NBestVal: math.Inf(1)}
		p.P.Pos = make([]float64, cfg.Dims)
		p.P.Vel = make([]float64, cfg.Dims)
		p.P.PBestPos = make([]float64, cfg.Dims)
		for d := 0; d < cfg.Dims; d++ {
			p.P.Pos[d] = rng.Float64Range(f.InitLower, f.InitUpper)
			p.P.Vel[d] = rng.Float64Range(-vspan/2, vspan/2)
		}
		p.P.Val = f.Eval(p.P.Pos)
		copy(p.P.PBestPos, p.P.Pos)
		p.P.PBestVal = p.P.Val
		out[i] = p
	}
	return out, nil
}

// RunMRPSO runs the fine-grained formulation as an iterative MapReduce
// program and returns the best value found.
func RunMRPSO(job *core.Job, cfg MRPSOConfig) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	particles, err := initialParticles(cfg)
	if err != nil {
		return nil, err
	}
	pairs := make([]kvio.Pair, len(particles))
	for i, p := range particles {
		pairs[i] = kvio.Pair{Key: codec.EncodeVarint(p.ID), Value: encodeParticle(p)}
	}
	state, err := job.LocalData(pairs, core.OpOpts{Splits: cfg.Tasks})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Best: math.Inf(1)}
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		moved, err := job.Map(state, ParticleMoveName, core.OpOpts{Splits: cfg.Tasks})
		if err != nil {
			return nil, err
		}
		// ParticleMerge emits only the group key, so the reduce is
		// key-aligned: each iteration's reduce splits release as their
		// own task finishes, letting the next iteration's move tasks
		// overlap this iteration's stragglers.
		state, err = job.Reduce(moved, ParticleMergeName, core.OpOpts{Splits: cfg.Tasks, KeyAligned: true})
		if err != nil {
			return nil, err
		}
		res.OuterIters = iter
		res.Evaluations += int64(cfg.Particles)
	}
	final, err := state.Collect()
	if err != nil {
		return nil, err
	}
	for _, kv := range final {
		p, err := decodeParticle(kv.Value)
		if err != nil {
			return nil, err
		}
		if p.P.PBestVal < res.Best {
			res.Best = p.P.PBestVal
		}
	}
	res.Elapsed = time.Since(start)
	res.Converged = cfg.Target > 0 && res.Best <= cfg.Target
	res.History = append(res.History, Point{
		OuterIter:   res.OuterIters,
		Evaluations: res.Evaluations,
		Best:        res.Best,
		Elapsed:     res.Elapsed,
	})
	return res, nil
}

// RunParticleSerial runs the identical particle-level dynamics in a
// plain loop (reference for the equivalence test).
func RunParticleSerial(cfg MRPSOConfig) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	f, _ := FunctionByName(cfg.Function)
	particles, err := initialParticles(cfg)
	if err != nil {
		return nil, err
	}
	n := int64(cfg.Particles)
	start := time.Now()
	res := &Result{Best: math.Inf(1)}
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		// Move every particle (same update as the map function).
		for _, p := range particles {
			rng := prand.Random(cfg.Seed, uint64(p.ID), uint64(p.Iter)+1)
			for d := range p.P.Pos {
				r1, r2 := rng.Float64(), rng.Float64()
				nb := p.P.PBestPos[d]
				if p.NBestPos != nil {
					nb = p.NBestPos[d]
				}
				p.P.Vel[d] = Chi * (p.P.Vel[d] +
					C1*r1*(p.P.PBestPos[d]-p.P.Pos[d]) +
					C2*r2*(nb-p.P.Pos[d]))
				p.P.Pos[d] += p.P.Vel[d]
				if p.P.Pos[d] < f.Lower {
					p.P.Pos[d] = f.Lower
					p.P.Vel[d] = 0
				} else if p.P.Pos[d] > f.Upper {
					p.P.Pos[d] = f.Upper
					p.P.Vel[d] = 0
				}
			}
			p.P.Val = f.Eval(p.P.Pos)
			if p.P.Val < p.P.PBestVal {
				p.P.PBestVal = p.P.Val
				copy(p.P.PBestPos, p.P.Pos)
			}
			p.Iter++
		}
		// Exchange pbests around the ring (same as map-emit/reduce-merge).
		type snap struct {
			val float64
			pos []float64
		}
		snaps := make([]snap, n)
		for i, p := range particles {
			snaps[i] = snap{p.P.PBestVal, append([]float64(nil), p.P.PBestPos...)}
		}
		for i, p := range particles {
			bestVal := p.P.PBestVal
			bestPos := p.P.PBestPos
			for _, j := range []int64{(int64(i) - 1 + n) % n, (int64(i) + 1) % n} {
				if j == int64(i) {
					continue
				}
				if snaps[j].val < bestVal {
					bestVal = snaps[j].val
					bestPos = snaps[j].pos
				}
			}
			p.NBestVal = bestVal
			p.NBestPos = append([]float64(nil), bestPos...)
		}
		res.OuterIters = iter
		res.Evaluations += int64(cfg.Particles)
	}
	for _, p := range particles {
		if p.P.PBestVal < res.Best {
			res.Best = p.P.PBestVal
		}
	}
	res.Elapsed = time.Since(start)
	res.Converged = cfg.Target > 0 && res.Best <= cfg.Target
	res.History = append(res.History, Point{
		OuterIter:   res.OuterIters,
		Evaluations: res.Evaluations,
		Best:        res.Best,
		Elapsed:     res.Elapsed,
	})
	return res, nil
}
