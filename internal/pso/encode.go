package pso

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire tags distinguishing the two value types that flow through the
// PSO MapReduce: full subswarm states and migrated best messages.
const (
	tagState = 0
	tagBest  = 1
)

func putFloats(dst []byte, xs []float64) []byte {
	var buf [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		dst = append(dst, buf[:]...)
	}
	return dst
}

type decoder struct {
	data []byte
	err  error
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data)
	if n <= 0 {
		d.err = fmt.Errorf("pso: truncated varint")
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.data) < 8 {
		d.err = fmt.Errorf("pso: truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data))
	d.data = d.data[8:]
	return v
}

func (d *decoder) floats(n int) []float64 {
	if n < 0 || n > 1<<24 {
		d.err = fmt.Errorf("pso: implausible vector length %d", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.float()
	}
	if d.err != nil {
		return nil
	}
	return out
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.data) == 0 {
		d.err = fmt.Errorf("pso: truncated byte")
		return 0
	}
	b := d.data[0]
	d.data = d.data[1:]
	return b
}

// EncodeSwarm serializes a full subswarm state (tagState).
func EncodeSwarm(s *Swarm) []byte {
	dims := 0
	if len(s.Particles) > 0 {
		dims = len(s.Particles[0].Pos)
	}
	out := []byte{tagState}
	out = binary.AppendVarint(out, s.ID)
	out = binary.AppendVarint(out, s.Iter)
	out = binary.AppendVarint(out, int64(len(s.Particles)))
	out = binary.AppendVarint(out, int64(dims))
	for i := range s.Particles {
		p := &s.Particles[i]
		out = putFloats(out, p.Pos)
		out = putFloats(out, p.Vel)
		out = putFloats(out, p.PBestPos)
		out = putFloats(out, []float64{p.Val, p.PBestVal})
	}
	out = putFloats(out, []float64{s.BestVal})
	out = putFloats(out, s.BestPos[:min(len(s.BestPos), dims)])
	if len(s.BestPos) == 0 {
		// BestPos always has dims entries once any particle exists;
		// encode zeros for the degenerate empty swarm.
		out = putFloats(out, make([]float64, dims))
	}
	if s.ExtPos != nil {
		out = append(out, 1)
		out = putFloats(out, []float64{s.ExtVal})
		out = putFloats(out, s.ExtPos)
	} else {
		out = append(out, 0)
	}
	return out
}

// DecodeSwarm parses a tagState payload.
func DecodeSwarm(data []byte) (*Swarm, error) {
	d := &decoder{data: data}
	if tag := d.byte(); tag != tagState {
		if d.err == nil {
			d.err = fmt.Errorf("pso: expected state tag, got %d", tag)
		}
		return nil, d.err
	}
	s := &Swarm{}
	s.ID = d.varint()
	s.Iter = d.varint()
	n := int(d.varint())
	dims := int(d.varint())
	if d.err != nil {
		return nil, d.err
	}
	if n < 0 || n > 1<<20 || dims < 0 || dims > 1<<20 {
		return nil, fmt.Errorf("pso: implausible swarm shape n=%d dims=%d", n, dims)
	}
	for i := 0; i < n; i++ {
		p := Particle{
			Pos:      d.floats(dims),
			Vel:      d.floats(dims),
			PBestPos: d.floats(dims),
		}
		p.Val = d.float()
		p.PBestVal = d.float()
		if d.err != nil {
			return nil, d.err
		}
		s.Particles = append(s.Particles, p)
	}
	s.BestVal = d.float()
	s.BestPos = d.floats(dims)
	if d.byte() == 1 {
		s.ExtVal = d.float()
		s.ExtPos = d.floats(dims)
	} else {
		s.ExtVal = math.Inf(1)
	}
	if d.err != nil {
		return nil, d.err
	}
	return s, nil
}

// EncodeBest serializes a migrated best message (tagBest).
func EncodeBest(val float64, pos []float64) []byte {
	out := []byte{tagBest}
	out = binary.AppendVarint(out, int64(len(pos)))
	out = putFloats(out, []float64{val})
	out = putFloats(out, pos)
	return out
}

// DecodeBest parses a tagBest payload.
func DecodeBest(data []byte) (float64, []float64, error) {
	d := &decoder{data: data}
	if tag := d.byte(); tag != tagBest {
		if d.err == nil {
			d.err = fmt.Errorf("pso: expected best tag, got %d", tag)
		}
		return 0, nil, d.err
	}
	dims := int(d.varint())
	val := d.float()
	pos := d.floats(dims)
	if d.err != nil {
		return 0, nil, d.err
	}
	return val, pos, nil
}

// ValueTag reports the wire tag of an encoded PSO value.
func ValueTag(data []byte) (byte, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("pso: empty value")
	}
	return data[0], nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
