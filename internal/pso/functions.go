// Package pso implements Particle Swarm Optimization as evaluated in
// §V-B of the Mrs paper: standard constricted PSO (Bratton & Kennedy),
// subswarm/island decomposition in the style of the Apiary topology,
// a serial baseline, and an iterative-MapReduce driver whose map tasks
// move subswarms and whose reduce tasks merge neighbor-best messages.
package pso

import (
	"fmt"
	"math"
)

// Function is an objective to minimize.
type Function struct {
	// Name identifies the function in registries and reports.
	Name string
	// Eval returns the objective value at x.
	Eval func(x []float64) float64
	// Lower and Upper bound the search domain per dimension.
	Lower, Upper float64
	// InitLower and InitUpper bound the (often asymmetric) init region.
	InitLower, InitUpper float64
	// Target is the conventional "solved" threshold.
	Target float64
}

// Rosenbrock is the classic banana valley; the paper's benchmark is
// Rosenbrock in 250 dimensions with target 1e-5.
var Rosenbrock = Function{
	Name: "rosenbrock",
	Eval: func(x []float64) float64 {
		var sum float64
		for i := 0; i+1 < len(x); i++ {
			a := x[i+1] - x[i]*x[i]
			b := 1 - x[i]
			sum += 100*a*a + b*b
		}
		return sum
	},
	Lower: -30, Upper: 30,
	InitLower: 15, InitUpper: 30,
	Target: 1e-5,
}

// Sphere is the trivial unimodal bowl.
var Sphere = Function{
	Name: "sphere",
	Eval: func(x []float64) float64 {
		var sum float64
		for _, v := range x {
			sum += v * v
		}
		return sum
	},
	Lower: -50, Upper: 50,
	InitLower: 25, InitUpper: 50,
	Target: 1e-10,
}

// Rastrigin is highly multimodal with a regular lattice of minima.
var Rastrigin = Function{
	Name: "rastrigin",
	Eval: func(x []float64) float64 {
		sum := 10 * float64(len(x))
		for _, v := range x {
			sum += v*v - 10*math.Cos(2*math.Pi*v)
		}
		return sum
	},
	Lower: -5.12, Upper: 5.12,
	InitLower: 2.56, InitUpper: 5.12,
	Target: 100,
}

// Griewank couples dimensions through a product of cosines.
var Griewank = Function{
	Name: "griewank",
	Eval: func(x []float64) float64 {
		var sum float64
		prod := 1.0
		for i, v := range x {
			sum += v * v / 4000
			prod *= math.Cos(v / math.Sqrt(float64(i+1)))
		}
		return sum - prod + 1
	},
	Lower: -600, Upper: 600,
	InitLower: 300, InitUpper: 600,
	Target: 0.05,
}

// Ackley has an exponentially deep global funnel.
var Ackley = Function{
	Name: "ackley",
	Eval: func(x []float64) float64 {
		n := float64(len(x))
		var sq, cs float64
		for _, v := range x {
			sq += v * v
			cs += math.Cos(2 * math.Pi * v)
		}
		return -20*math.Exp(-0.2*math.Sqrt(sq/n)) - math.Exp(cs/n) + 20 + math.E
	},
	Lower: -32, Upper: 32,
	InitLower: 16, InitUpper: 32,
	Target: 1e-3,
}

// Functions lists the built-in objectives.
func Functions() []Function {
	return []Function{Rosenbrock, Sphere, Rastrigin, Griewank, Ackley}
}

// FunctionByName resolves an objective.
func FunctionByName(name string) (Function, error) {
	for _, f := range Functions() {
		if f.Name == name {
			return f, nil
		}
	}
	return Function{}, fmt.Errorf("pso: unknown function %q", name)
}
