package pso

import (
	"fmt"
	"math"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kvio"
)

// Function names registered by Register. The same names are registered
// in the master and slave processes, parameterized by an identical
// Config, exactly as a Mrs program class exists in every process.
const (
	MoveName  = "pso_move"
	MergeName = "pso_merge"
	BestName  = "pso_best"
	MinName   = "pso_min"
)

// Config parameterizes an Apiary PSO run.
type Config struct {
	// Function is the objective name (resolved via FunctionByName).
	Function string
	// Dims is the dimensionality (the paper uses Rosenbrock-250).
	Dims int
	// NumSwarms is the number of subswarms (islands).
	NumSwarms int
	// SwarmSize is the number of particles per subswarm.
	SwarmSize int
	// InnerIters is how many PSO iterations a map task runs per
	// MapReduce iteration (subswarm granularity, §V-B).
	InnerIters int
	// Seed drives every pseudorandom stream in the run.
	Seed uint64
	// Target stops the run when the global best reaches it (0 disables).
	Target float64
	// MaxOuter bounds the number of MapReduce iterations.
	MaxOuter int
	// Tasks is the number of map/reduce splits (parallelism).
	Tasks int
	// CheckEvery controls how often the convergence check runs, in
	// outer iterations (default 1).
	CheckEvery int
}

func (c *Config) fill() error {
	if c.Function == "" {
		c.Function = Rosenbrock.Name
	}
	if _, err := FunctionByName(c.Function); err != nil {
		return err
	}
	if c.Dims <= 0 {
		c.Dims = 250
	}
	if c.NumSwarms <= 0 {
		c.NumSwarms = 8
	}
	if c.SwarmSize <= 0 {
		c.SwarmSize = 5
	}
	if c.InnerIters <= 0 {
		c.InnerIters = 10
	}
	if c.MaxOuter <= 0 {
		c.MaxOuter = 100
	}
	if c.Tasks <= 0 {
		c.Tasks = c.NumSwarms
	}
	if c.Tasks > c.NumSwarms {
		c.Tasks = c.NumSwarms
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 1
	}
	return nil
}

// Register installs the PSO map/reduce functions bound to cfg.
func Register(reg *core.Registry, cfg Config) error {
	if err := cfg.fill(); err != nil {
		return err
	}
	f, err := FunctionByName(cfg.Function)
	if err != nil {
		return err
	}

	// Move: advance one subswarm InnerIters iterations, then send the
	// updated state to itself and a best-message to each ring neighbor.
	reg.RegisterMap(MoveName, func(key, value []byte, emit kvio.Emitter) error {
		s, err := DecodeSwarm(value)
		if err != nil {
			return err
		}
		s.StepMany(f, cfg.Seed, cfg.InnerIters)
		if err := emit.Emit(key, EncodeSwarm(s)); err != nil {
			return err
		}
		if cfg.NumSwarms > 1 && len(s.BestPos) > 0 {
			msg := EncodeBest(s.BestVal, s.BestPos)
			left := (s.ID - 1 + int64(cfg.NumSwarms)) % int64(cfg.NumSwarms)
			right := (s.ID + 1) % int64(cfg.NumSwarms)
			for _, nb := range []int64{left, right} {
				if nb == s.ID {
					continue
				}
				if err := emit.Emit(codec.EncodeVarint(nb), msg); err != nil {
					return err
				}
			}
		}
		return nil
	})

	// Merge: fold neighbor best-messages into the subswarm state.
	reg.RegisterReduce(MergeName, func(key []byte, values [][]byte, emit kvio.Emitter) error {
		var s *Swarm
		type bestMsg struct {
			val float64
			pos []float64
		}
		var msgs []bestMsg
		for _, v := range values {
			tag, err := ValueTag(v)
			if err != nil {
				return err
			}
			switch tag {
			case tagState:
				if s != nil {
					return fmt.Errorf("pso: two states for key %x", key)
				}
				s, err = DecodeSwarm(v)
				if err != nil {
					return err
				}
			case tagBest:
				val, pos, err := DecodeBest(v)
				if err != nil {
					return err
				}
				msgs = append(msgs, bestMsg{val, pos})
			default:
				return fmt.Errorf("pso: unknown tag %d", tag)
			}
		}
		if s == nil {
			return fmt.Errorf("pso: no state for key %x", key)
		}
		for _, m := range msgs {
			s.AbsorbExternal(m.pos, m.val)
		}
		return emit.Emit(key, EncodeSwarm(s))
	})

	// Best extraction: one record per subswarm under a single key.
	reg.RegisterMap(BestName, func(key, value []byte, emit kvio.Emitter) error {
		s, err := DecodeSwarm(value)
		if err != nil {
			return err
		}
		return emit.Emit([]byte("best"), codec.EncodeFloat64(s.BestVal))
	})

	// Global min: the convergence check's reduce.
	reg.RegisterReduce(MinName, func(key []byte, values [][]byte, emit kvio.Emitter) error {
		best := math.Inf(1)
		for _, v := range values {
			x, err := codec.DecodeFloat64(v)
			if err != nil {
				return err
			}
			if x < best {
				best = x
			}
		}
		return emit.Emit(key, codec.EncodeFloat64(best))
	})
	return nil
}

// Point is one sample of the convergence trajectory (Figure 4's axes:
// best value vs function evaluations and vs wall time).
type Point struct {
	OuterIter   int
	Evaluations int64
	Best        float64
	Elapsed     time.Duration
}

// Result summarizes a PSO run.
type Result struct {
	Best        float64
	OuterIters  int
	Evaluations int64
	Elapsed     time.Duration
	History     []Point
	// Converged reports whether Target was reached.
	Converged bool
}

// evalsPerOuter is the number of function evaluations per outer
// iteration across all subswarms.
func (c *Config) evalsPerOuter() int64 {
	return int64(c.NumSwarms) * int64(c.SwarmSize) * int64(c.InnerIters)
}

// initialSwarms builds the deterministic starting population.
func initialSwarms(cfg Config) ([]*Swarm, error) {
	f, err := FunctionByName(cfg.Function)
	if err != nil {
		return nil, err
	}
	swarms := make([]*Swarm, cfg.NumSwarms)
	for i := range swarms {
		swarms[i] = NewSwarm(f, cfg.Dims, cfg.SwarmSize, int64(i), cfg.Seed)
	}
	return swarms, nil
}

// RunSerial executes the identical Apiary dynamics in a plain loop —
// the paper's serial baseline and the reference for the "all execution
// modes agree" invariant.
func RunSerial(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	f, _ := FunctionByName(cfg.Function)
	swarms, err := initialSwarms(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Best: math.Inf(1)}
	for outer := 0; outer < cfg.MaxOuter; outer++ {
		for _, s := range swarms {
			s.StepMany(f, cfg.Seed, cfg.InnerIters)
		}
		// Exchange bests around the subswarm ring, mirroring the
		// map-emit / reduce-absorb cycle.
		if cfg.NumSwarms > 1 {
			type msg struct {
				val float64
				pos []float64
			}
			inbox := make([][]msg, cfg.NumSwarms)
			for _, s := range swarms {
				if len(s.BestPos) == 0 {
					continue
				}
				left := (int(s.ID) - 1 + cfg.NumSwarms) % cfg.NumSwarms
				right := (int(s.ID) + 1) % cfg.NumSwarms
				for _, nb := range []int{left, right} {
					if nb == int(s.ID) {
						continue
					}
					inbox[nb] = append(inbox[nb], msg{s.BestVal, append([]float64(nil), s.BestPos...)})
				}
			}
			for i, s := range swarms {
				for _, m := range inbox[i] {
					s.AbsorbExternal(m.pos, m.val)
				}
			}
		}
		best := math.Inf(1)
		for _, s := range swarms {
			if s.BestVal < best {
				best = s.BestVal
			}
		}
		res.Best = best
		res.OuterIters = outer + 1
		res.Evaluations += cfg.evalsPerOuter()
		if (outer+1)%cfg.CheckEvery == 0 || outer == cfg.MaxOuter-1 {
			res.History = append(res.History, Point{
				OuterIter:   outer + 1,
				Evaluations: res.Evaluations,
				Best:        best,
				Elapsed:     time.Since(start),
			})
		}
		if cfg.Target > 0 && best <= cfg.Target {
			res.Converged = true
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunMapReduce executes Apiary PSO as an iterative MapReduce program on
// any executor, using the paper's iterative optimizations: operations
// for the next iteration are queued before the previous convergence
// check is inspected, so the check overlaps subsequent computation.
func RunMapReduce(job *core.Job, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	swarms, err := initialSwarms(cfg)
	if err != nil {
		return nil, err
	}
	pairs := make([]kvio.Pair, len(swarms))
	for i, s := range swarms {
		pairs[i] = kvio.Pair{Key: codec.EncodeVarint(s.ID), Value: EncodeSwarm(s)}
	}
	state, err := job.LocalData(pairs, core.OpOpts{Splits: cfg.Tasks})
	if err != nil {
		return nil, err
	}

	start := time.Now()
	res := &Result{Best: math.Inf(1)}

	type check struct {
		outer int
		ds    *core.Dataset
	}
	var pending []check
	// freeable tags superseded datasets with the outer iteration whose
	// completion makes them safe to release: when the check for
	// iteration k has been collected, every operation up to k has
	// executed, so datasets only consumed by iterations <= k can go.
	type retired struct {
		iter int
		ds   *core.Dataset
	}
	var freeable []retired

	inspect := func(c check) (bool, error) {
		pairs, err := c.ds.Collect()
		if err != nil {
			return false, err
		}
		if len(pairs) != 1 {
			return false, fmt.Errorf("pso: convergence check returned %d records", len(pairs))
		}
		best, err := codec.DecodeFloat64(pairs[0].Value)
		if err != nil {
			return false, err
		}
		res.Best = best
		res.OuterIters = c.outer
		res.Evaluations = int64(c.outer) * cfg.evalsPerOuter()
		res.History = append(res.History, Point{
			OuterIter:   c.outer,
			Evaluations: res.Evaluations,
			Best:        best,
			Elapsed:     time.Since(start),
		})
		// Everything up to iteration c.outer is done; free datasets whose
		// last consumer is at or before it.
		kept := freeable[:0]
		for _, r := range freeable {
			if r.iter <= c.outer {
				_ = r.ds.Free()
			} else {
				kept = append(kept, r)
			}
		}
		freeable = kept
		return cfg.Target > 0 && best <= cfg.Target, nil
	}

	for outer := 1; outer <= cfg.MaxOuter; outer++ {
		// state is rebuilt every iteration, but at check iterations it
		// has a second consumer (the BestName evaluation below); marking
		// both Maps Resident turns that second read into a cache hit.
		moved, err := job.Map(state, MoveName, core.OpOpts{Splits: cfg.Tasks, Resident: true})
		if err != nil {
			return nil, err
		}
		// Merge emits only the group key (the swarm id), so the reduce
		// is key-aligned: split s of s_outer is ready as soon as merge
		// task s finishes, and the next iteration's move tasks overlap
		// this iteration's reduce stragglers.
		next, err := job.Reduce(moved, MergeName, core.OpOpts{Splits: cfg.Tasks, KeyAligned: true})
		if err != nil {
			return nil, err
		}
		// state (s_{outer-1}) is last consumed by this iteration's map;
		// moved is last consumed by this iteration's reduce.
		freeable = append(freeable, retired{outer, state}, retired{outer, moved})
		state = next

		if outer%cfg.CheckEvery == 0 || outer == cfg.MaxOuter {
			bm, err := job.Map(state, BestName, core.OpOpts{Splits: 1, Partition: "constant", Resident: true})
			if err != nil {
				return nil, err
			}
			bd, err := job.Reduce(bm, MinName, core.OpOpts{Splits: 1, Partition: "constant", KeyAligned: true})
			if err != nil {
				return nil, err
			}
			pending = append(pending, check{outer: outer, ds: bd})
		}

		// Inspect the oldest check only once a newer one is queued, so
		// the check's communication overlaps the next iteration's
		// computation (the paper's pipelining trick).
		for len(pending) > 1 {
			done, err := inspect(pending[0])
			if err != nil {
				return nil, err
			}
			pending = pending[1:]
			if done {
				res.Converged = true
				res.Elapsed = time.Since(start)
				return res, nil
			}
		}
	}
	for _, c := range pending {
		done, err := inspect(c)
		if err != nil {
			return nil, err
		}
		if done {
			res.Converged = true
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
