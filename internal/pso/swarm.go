package pso

import (
	"math"

	"repro/internal/prand"
)

// Constriction coefficients from Bratton & Kennedy's "Defining a
// Standard for Particle Swarm Optimization" (cited as [9] in the Mrs
// paper).
const (
	Chi = 0.72984
	C1  = 2.05
	C2  = 2.05
)

// Particle is one PSO particle.
type Particle struct {
	Pos      []float64
	Vel      []float64
	Val      float64
	PBestPos []float64
	PBestVal float64
}

// clone deep-copies a particle.
func (p *Particle) clone() Particle {
	return Particle{
		Pos:      append([]float64(nil), p.Pos...),
		Vel:      append([]float64(nil), p.Vel...),
		Val:      p.Val,
		PBestPos: append([]float64(nil), p.PBestPos...),
		PBestVal: p.PBestVal,
	}
}

// Swarm is a group of particles with a ring neighborhood, optionally
// receiving an external (migrated) best from sibling subswarms.
type Swarm struct {
	// ID distinguishes subswarms; it seeds per-task RNG streams.
	ID int64
	// Iter counts completed outer iterations (drives RNG derivation).
	Iter int64
	// Particles in this swarm.
	Particles []Particle
	// BestPos/BestVal track the best pbest ever seen in this swarm.
	BestPos []float64
	BestVal float64
	// ExtPos/ExtVal hold the best value received from neighbor
	// subswarms (the Apiary migration channel). ExtVal is +Inf when
	// nothing has arrived.
	ExtPos []float64
	ExtVal float64
}

// NewSwarm initializes a swarm of n particles in f's init region using
// the deterministic stream Random(seed, id, "init"). The same (seed,
// id) always produces the same swarm, in any execution mode.
func NewSwarm(f Function, dims, n int, id int64, seed uint64) *Swarm {
	rng := prand.Random(seed, uint64(id), 0xA11CE)
	s := &Swarm{
		ID:      id,
		BestVal: math.Inf(1),
		ExtVal:  math.Inf(1),
	}
	vspan := f.Upper - f.Lower
	for i := 0; i < n; i++ {
		p := Particle{
			Pos:      make([]float64, dims),
			Vel:      make([]float64, dims),
			PBestPos: make([]float64, dims),
		}
		for d := 0; d < dims; d++ {
			p.Pos[d] = rng.Float64Range(f.InitLower, f.InitUpper)
			// Standard half-diameter velocity init.
			p.Vel[d] = rng.Float64Range(-vspan/2, vspan/2)
		}
		p.Val = f.Eval(p.Pos)
		copy(p.PBestPos, p.Pos)
		p.PBestVal = p.Val
		if p.PBestVal < s.BestVal {
			s.BestVal = p.PBestVal
			s.BestPos = append([]float64(nil), p.PBestPos...)
		}
		s.Particles = append(s.Particles, p)
	}
	return s
}

// neighborhoodBest returns the best pbest among particle i's ring
// neighbors (itself, left, right), possibly improved by the external
// migrant best which is injected at particle 0.
func (s *Swarm) neighborhoodBest(i int) ([]float64, float64) {
	n := len(s.Particles)
	bestVal := math.Inf(1)
	var bestPos []float64
	consider := func(pos []float64, val float64) {
		if val < bestVal {
			bestVal = val
			bestPos = pos
		}
	}
	for _, j := range []int{(i - 1 + n) % n, i, (i + 1) % n} {
		consider(s.Particles[j].PBestPos, s.Particles[j].PBestVal)
	}
	if i == 0 && s.ExtPos != nil {
		consider(s.ExtPos, s.ExtVal)
	}
	return bestPos, bestVal
}

// Step advances the swarm one iteration with the constricted update,
// using a stream derived from (seed, swarm id, iteration) so that the
// trajectory is identical in serial and distributed execution.
func (s *Swarm) Step(f Function, seed uint64) {
	rng := prand.Random(seed, uint64(s.ID), uint64(s.Iter)+1)
	n := len(s.Particles)
	// Snapshot neighborhood bests first so the update order does not
	// change the dynamics (synchronous PSO).
	nbPos := make([][]float64, n)
	nbVal := make([]float64, n)
	for i := range s.Particles {
		nbPos[i], nbVal[i] = s.neighborhoodBest(i)
	}
	for i := range s.Particles {
		p := &s.Particles[i]
		for d := range p.Pos {
			r1 := rng.Float64()
			r2 := rng.Float64()
			p.Vel[d] = Chi * (p.Vel[d] +
				C1*r1*(p.PBestPos[d]-p.Pos[d]) +
				C2*r2*(nbPos[i][d]-p.Pos[d]))
			p.Pos[d] += p.Vel[d]
			// Clamp to the domain; zero the velocity component at the
			// wall (standard bound handling).
			if p.Pos[d] < f.Lower {
				p.Pos[d] = f.Lower
				p.Vel[d] = 0
			} else if p.Pos[d] > f.Upper {
				p.Pos[d] = f.Upper
				p.Vel[d] = 0
			}
		}
		p.Val = f.Eval(p.Pos)
		if p.Val < p.PBestVal {
			p.PBestVal = p.Val
			copy(p.PBestPos, p.Pos)
			if p.Val < s.BestVal {
				s.BestVal = p.Val
				s.BestPos = append(s.BestPos[:0], p.Pos...)
			}
		}
	}
	s.Iter++
}

// StepMany advances the swarm k iterations (the subswarm inner loop of
// the Apiary decomposition).
func (s *Swarm) StepMany(f Function, seed uint64, k int) {
	for i := 0; i < k; i++ {
		s.Step(f, seed)
	}
}

// AbsorbExternal records a migrated best from a sibling subswarm.
func (s *Swarm) AbsorbExternal(pos []float64, val float64) {
	if val < s.ExtVal {
		s.ExtVal = val
		s.ExtPos = append([]float64(nil), pos...)
	}
}

// Evaluations returns the number of function evaluations performed so
// far (n particles per iteration plus the initial evaluation).
func (s *Swarm) Evaluations() int64 {
	return int64(len(s.Particles)) * (s.Iter + 1)
}

// clone deep-copies the swarm.
func (s *Swarm) clone() *Swarm {
	c := &Swarm{
		ID:      s.ID,
		Iter:    s.Iter,
		BestPos: append([]float64(nil), s.BestPos...),
		BestVal: s.BestVal,
		ExtPos:  append([]float64(nil), s.ExtPos...),
		ExtVal:  s.ExtVal,
	}
	if s.ExtPos == nil {
		c.ExtPos = nil
	}
	for i := range s.Particles {
		c.Particles = append(c.Particles, s.Particles[i].clone())
	}
	return c
}
