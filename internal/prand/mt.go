// Package prand implements the deterministic pseudorandom machinery of
// Mrs (§IV-A of the paper): a from-scratch MT19937-64 Mersenne Twister
// plus the Random(args...) construction that derives an *independent*
// stream for any combination of integer arguments, so that every map or
// reduce task can own a reproducible generator. Identical argument
// tuples yield identical streams in any execution mode, which is what
// makes serial, mock-parallel, and distributed runs of a stochastic
// program produce bit-identical answers.
package prand

import (
	"math"

	"repro/internal/hash"
)

const (
	nn      = 312
	mm      = 156
	matrixA = 0xB5026F5AA96619E9
	upMask  = 0xFFFFFFFF80000000
	lowMask = 0x7FFFFFFF
)

// MT is a 64-bit Mersenne Twister (MT19937-64, Matsumoto & Nishimura).
// It is not safe for concurrent use; each task owns its own instance.
type MT struct {
	state     [nn]uint64
	index     int
	haveSpare bool    // cached second Box-Muller variate present
	spare     float64 // the cached variate
}

// NewMT returns a generator seeded with the canonical single-seed
// initialization.
func NewMT(seed uint64) *MT {
	m := &MT{}
	m.Seed(seed)
	return m
}

// Seed resets the generator state from a single 64-bit seed using the
// reference initialization recurrence.
func (m *MT) Seed(seed uint64) {
	m.state[0] = seed
	for i := uint64(1); i < nn; i++ {
		m.state[i] = 6364136223846793005*(m.state[i-1]^(m.state[i-1]>>62)) + i
	}
	m.index = nn
}

// SeedArray resets the generator from a key array using the reference
// init_by_array64 procedure. This is the entry point used by
// Random(args...): the Mersenne Twister's 312-word state is large
// enough to absorb roughly 300 64-bit arguments without loss, the
// property the paper calls out explicitly.
func (m *MT) SeedArray(key []uint64) {
	m.Seed(19650218)
	i, j := uint64(1), 0
	k := len(key)
	if nn > k {
		k = nn
	}
	for ; k > 0; k-- {
		m.state[i] = (m.state[i] ^ ((m.state[i-1] ^ (m.state[i-1] >> 62)) * 3935559000370003845)) + key[j] + uint64(j)
		i++
		j++
		if i >= nn {
			m.state[0] = m.state[nn-1]
			i = 1
		}
		if j >= len(key) {
			j = 0
		}
	}
	for k = nn - 1; k > 0; k-- {
		m.state[i] = (m.state[i] ^ ((m.state[i-1] ^ (m.state[i-1] >> 62)) * 2862933555777941757)) - i
		i++
		if i >= nn {
			m.state[0] = m.state[nn-1]
			i = 1
		}
	}
	m.state[0] = 1 << 63
	m.index = nn
}

// Uint64 returns the next 64 random bits.
func (m *MT) Uint64() uint64 {
	if m.index >= nn {
		m.generate()
	}
	x := m.state[m.index]
	m.index++
	x ^= (x >> 29) & 0x5555555555555555
	x ^= (x << 17) & 0x71D67FFFEDA60000
	x ^= (x << 37) & 0xFFF7EEE000000000
	x ^= x >> 43
	return x
}

func (m *MT) generate() {
	var x uint64
	for i := 0; i < nn-mm; i++ {
		x = (m.state[i] & upMask) | (m.state[i+1] & lowMask)
		m.state[i] = m.state[i+mm] ^ (x >> 1) ^ ((x & 1) * matrixA)
	}
	for i := nn - mm; i < nn-1; i++ {
		x = (m.state[i] & upMask) | (m.state[i+1] & lowMask)
		m.state[i] = m.state[i+mm-nn] ^ (x >> 1) ^ ((x & 1) * matrixA)
	}
	x = (m.state[nn-1] & upMask) | (m.state[0] & lowMask)
	m.state[nn-1] = m.state[mm-1] ^ (x >> 1) ^ ((x & 1) * matrixA)
	m.index = 0
}

// Float64 returns a uniform float64 in [0, 1) with 53-bit resolution.
func (m *MT) Float64() float64 {
	return float64(m.Uint64()>>11) / (1 << 53)
}

// Float64Range returns a uniform float64 in [lo, hi).
func (m *MT) Float64Range(lo, hi float64) float64 {
	return lo + (hi-lo)*m.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Rejection sampling removes modulo bias.
func (m *MT) Intn(n int) int {
	if n <= 0 {
		panic("prand: Intn requires n > 0")
	}
	max := ^uint64(0) - ^uint64(0)%uint64(n)
	for {
		v := m.Uint64()
		if v < max {
			return int(v % uint64(n))
		}
	}
}

// NormFloat64 returns a standard normal variate via the polar
// Box-Muller method. The spare value is cached.
func (m *MT) NormFloat64() float64 {
	if m.haveSpare {
		m.haveSpare = false
		return m.spare
	}
	for {
		u := 2*m.Float64() - 1
		v := 2*m.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			f := math.Sqrt(-2 * math.Log(s) / s)
			m.spare = v * f
			m.haveSpare = true
			return u * f
		}
	}
}

// Shuffle permutes the n elements addressed by swap using Fisher-Yates.
func (m *MT) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, m.Intn(i+1))
	}
}

// Perm returns a random permutation of [0, n).
func (m *MT) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	m.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Random constructs an independent generator for the argument tuple.
// This mirrors mrs.MapReduce.random(*args): same arguments -> same
// stream; any difference in arguments (including order and count) ->
// an unrelated stream. The base seed distinguishes programs so two
// different programs using the same task indices do not share streams.
func Random(baseSeed uint64, args ...uint64) *MT {
	// Feed the full argument tuple through init_by_array so that every
	// argument independently perturbs the 312-word state, then prepend
	// the combined hash for good measure when args is empty.
	key := make([]uint64, 0, len(args)+2)
	key = append(key, baseSeed, hash.CombineSeeds(args...))
	key = append(key, args...)
	m := &MT{}
	m.SeedArray(key)
	return m
}
