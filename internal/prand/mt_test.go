package prand

import (
	"math"
	"testing"
	"testing/quick"
)

// TestReferenceVectorSeedArray checks against the published output of
// the reference mt19937-64.c test program, which seeds with
// init_by_array64({0x12345, 0x23456, 0x34567, 0x45678}) and prints
// 1000 values; the first ten are below.
func TestReferenceVectorSeedArray(t *testing.T) {
	m := &MT{}
	m.SeedArray([]uint64{0x12345, 0x23456, 0x34567, 0x45678})
	want := []uint64{
		7266447313870364031,
		4946485549665804864,
		16945909448695747420,
		16394063075524226720,
		4873882236456199058,
		14877448043947020171,
		6740343660852211943,
		13857871200353263164,
		5249110015610582907,
		10205081126064480383,
	}
	for i, w := range want {
		if got := m.Uint64(); got != w {
			t.Fatalf("output %d = %d, want %d", i, got, w)
		}
	}
}

func TestSingleSeedDeterministic(t *testing.T) {
	a := NewMT(42)
	b := NewMT(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := NewMT(1)
	b := NewMT(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched %d/100 outputs", same)
	}
}

func TestFloat64Range01(t *testing.T) {
	m := NewMT(7)
	for i := 0; i < 10000; i++ {
		f := m.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	m := NewMT(99)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += m.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestFloat64RangeBounds(t *testing.T) {
	m := NewMT(3)
	for i := 0; i < 1000; i++ {
		f := m.Float64Range(-5, 12)
		if f < -5 || f >= 12 {
			t.Fatalf("Float64Range out of bounds: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	m := NewMT(11)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[m.Intn(7)]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) value %d came up %d/70000; badly skewed", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewMT(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	m := NewMT(23)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := m.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	m := NewMT(5)
	p := m.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleDeterministic(t *testing.T) {
	run := func() []int {
		m := NewMT(77)
		s := []int{0, 1, 2, 3, 4, 5, 6, 7}
		m.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
		return s
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shuffle not deterministic for equal seeds")
		}
	}
}

func TestRandomIndependentStreams(t *testing.T) {
	// Same args -> same stream.
	a := Random(1, 10, 20)
	b := Random(1, 10, 20)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical Random args diverged")
		}
	}
	// Different tuples -> different streams.
	tuples := [][]uint64{
		{},
		{0},
		{1},
		{0, 0},
		{0, 1},
		{1, 0},
		{10, 20},
		{20, 10},
	}
	firsts := map[uint64][]uint64{}
	for _, tup := range tuples {
		v := Random(1, tup...).Uint64()
		if prev, ok := firsts[v]; ok {
			t.Errorf("streams for %v and %v share first output", prev, tup)
		}
		firsts[v] = tup
	}
}

func TestRandomBaseSeedSeparatesPrograms(t *testing.T) {
	a := Random(100, 1, 2).Uint64()
	b := Random(200, 1, 2).Uint64()
	if a == b {
		t.Error("different base seeds produced identical streams")
	}
}

func TestRandomManyArgs(t *testing.T) {
	// The paper notes ~300 64-bit args fit in the MT state; verify a
	// 300-arg tuple works and is sensitive to a change in any position.
	args := make([]uint64, 300)
	for i := range args {
		args[i] = uint64(i)
	}
	base := Random(1, args...).Uint64()
	for _, pos := range []int{0, 150, 299} {
		mod := make([]uint64, len(args))
		copy(mod, args)
		mod[pos]++
		if Random(1, mod...).Uint64() == base {
			t.Errorf("changing arg %d did not change the stream", pos)
		}
	}
}

func TestRandomStreamsUncorrelated(t *testing.T) {
	// Adjacent task indices should produce uncorrelated streams; check
	// the sample correlation of the first 1000 floats is small.
	a := Random(1, 42, 0)
	b := Random(1, 42, 1)
	const n = 1000
	var sa, sb, saa, sbb, sab float64
	for i := 0; i < n; i++ {
		x, y := a.Float64(), b.Float64()
		sa += x
		sb += y
		saa += x * x
		sbb += y * y
		sab += x * y
	}
	cov := sab/n - (sa/n)*(sb/n)
	va := saa/n - (sa/n)*(sa/n)
	vb := sbb/n - (sb/n)*(sb/n)
	corr := cov / math.Sqrt(va*vb)
	if math.Abs(corr) > 0.1 {
		t.Errorf("streams correlated: r = %v", corr)
	}
}

func TestSeedArrayMatchesQuickProperty(t *testing.T) {
	// SeedArray must be deterministic for arbitrary keys.
	f := func(key []uint64) bool {
		if len(key) == 0 {
			key = []uint64{0}
		}
		m1, m2 := &MT{}, &MT{}
		m1.SeedArray(key)
		m2.SeedArray(key)
		return m1.Uint64() == m2.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	m := NewMT(1)
	for i := 0; i < b.N; i++ {
		m.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	m := NewMT(1)
	for i := 0; i < b.N; i++ {
		m.Float64()
	}
}

func BenchmarkRandomConstruction(b *testing.B) {
	// Cost of deriving a fresh independent stream (per task).
	for i := 0; i < b.N; i++ {
		Random(1, uint64(i), 42)
	}
}
