// Package codec provides the key/value serializers used by mrs-go.
//
// At the transport level every key and value is a []byte. The Mrs paper
// stores arbitrary Python objects and attaches serializers to datasets;
// the Go analogue is a small set of explicit codecs plus a registry so a
// dataset can carry the *name* of its codec across the wire and the
// receiving side can reconstruct typed values.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// ErrShortData is returned when a decoder is given fewer bytes than the
// encoding requires.
var ErrShortData = errors.New("codec: short data")

// A Codec converts between a Go value and its byte encoding. Encode
// appends to dst and returns the extended slice; Decode parses exactly
// the bytes it is given.
type Codec interface {
	// Name is the registry identifier carried in dataset metadata.
	Name() string
	Encode(dst []byte, v any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// ---------------------------------------------------------------------------
// Bytes codec

// BytesCodec passes []byte through unmodified.
type BytesCodec struct{}

func (BytesCodec) Name() string { return "bytes" }

func (BytesCodec) Encode(dst []byte, v any) ([]byte, error) {
	b, ok := v.([]byte)
	if !ok {
		return nil, fmt.Errorf("codec: bytes codec got %T", v)
	}
	return append(dst, b...), nil
}

func (BytesCodec) Decode(data []byte) (any, error) {
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// ---------------------------------------------------------------------------
// String codec

// StringCodec encodes strings as raw UTF-8 bytes.
type StringCodec struct{}

func (StringCodec) Name() string { return "string" }

func (StringCodec) Encode(dst []byte, v any) ([]byte, error) {
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("codec: string codec got %T", v)
	}
	return append(dst, s...), nil
}

func (StringCodec) Decode(data []byte) (any, error) {
	return string(data), nil
}

// ---------------------------------------------------------------------------
// Int64 codec

// Int64Codec encodes int64 as 8 big-endian bytes. Big-endian keeps the
// byte ordering of non-negative integers consistent with their numeric
// ordering, which matters for sorted shuffles. Negative values sort
// after positive ones in byte order; use OrderedInt64Codec when full
// numeric ordering is required.
type Int64Codec struct{}

func (Int64Codec) Name() string { return "int64" }

func (Int64Codec) Encode(dst []byte, v any) ([]byte, error) {
	n, ok := toInt64(v)
	if !ok {
		return nil, fmt.Errorf("codec: int64 codec got %T", v)
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(n))
	return append(dst, buf[:]...), nil
}

func (Int64Codec) Decode(data []byte) (any, error) {
	if len(data) != 8 {
		return nil, ErrShortData
	}
	return int64(binary.BigEndian.Uint64(data)), nil
}

// OrderedInt64Codec encodes int64 with the sign bit flipped so that the
// byte ordering equals the numeric ordering across the full range.
type OrderedInt64Codec struct{}

func (OrderedInt64Codec) Name() string { return "oint64" }

func (OrderedInt64Codec) Encode(dst []byte, v any) ([]byte, error) {
	n, ok := toInt64(v)
	if !ok {
		return nil, fmt.Errorf("codec: oint64 codec got %T", v)
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(n)^(1<<63))
	return append(dst, buf[:]...), nil
}

func (OrderedInt64Codec) Decode(data []byte) (any, error) {
	if len(data) != 8 {
		return nil, ErrShortData
	}
	return int64(binary.BigEndian.Uint64(data) ^ (1 << 63)), nil
}

// ---------------------------------------------------------------------------
// Varint codec

// VarintCodec encodes int64 with variable-length zig-zag encoding;
// compact for the small counters that dominate WordCount-style programs.
type VarintCodec struct{}

func (VarintCodec) Name() string { return "varint" }

func (VarintCodec) Encode(dst []byte, v any) ([]byte, error) {
	n, ok := toInt64(v)
	if !ok {
		return nil, fmt.Errorf("codec: varint codec got %T", v)
	}
	return binary.AppendVarint(dst, n), nil
}

func (VarintCodec) Decode(data []byte) (any, error) {
	n, size := binary.Varint(data)
	if size <= 0 || size != len(data) {
		return nil, ErrShortData
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// Float64 codec

// Float64Codec encodes float64 as 8 big-endian IEEE-754 bytes.
type Float64Codec struct{}

func (Float64Codec) Name() string { return "float64" }

func (Float64Codec) Encode(dst []byte, v any) ([]byte, error) {
	f, ok := toFloat64(v)
	if !ok {
		return nil, fmt.Errorf("codec: float64 codec got %T", v)
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(f))
	return append(dst, buf[:]...), nil
}

func (Float64Codec) Decode(data []byte) (any, error) {
	if len(data) != 8 {
		return nil, ErrShortData
	}
	return math.Float64frombits(binary.BigEndian.Uint64(data)), nil
}

// ---------------------------------------------------------------------------
// Float64 slice codec (PSO particle state, numeric vectors)

// Float64SliceCodec encodes []float64 as a varint length followed by
// 8-byte little-endian elements.
type Float64SliceCodec struct{}

func (Float64SliceCodec) Name() string { return "[]float64" }

func (Float64SliceCodec) Encode(dst []byte, v any) ([]byte, error) {
	s, ok := v.([]float64)
	if !ok {
		return nil, fmt.Errorf("codec: []float64 codec got %T", v)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	var buf [8]byte
	for _, f := range s {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		dst = append(dst, buf[:]...)
	}
	return dst, nil
}

func (Float64SliceCodec) Decode(data []byte) (any, error) {
	n, size := binary.Uvarint(data)
	if size <= 0 {
		return nil, ErrShortData
	}
	data = data[size:]
	if uint64(len(data)) != n*8 {
		return nil, ErrShortData
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Helpers for typed encode/decode without going through any.

// PutUint64 appends v big-endian.
func PutUint64(dst []byte, v uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return append(dst, buf[:]...)
}

// Uint64 reads a big-endian uint64.
func Uint64(data []byte) (uint64, error) {
	if len(data) < 8 {
		return 0, ErrShortData
	}
	return binary.BigEndian.Uint64(data), nil
}

// EncodeInt64 returns the Int64Codec encoding of n.
func EncodeInt64(n int64) []byte {
	b, _ := Int64Codec{}.Encode(nil, n)
	return b
}

// DecodeInt64 parses an Int64Codec encoding.
func DecodeInt64(data []byte) (int64, error) {
	v, err := Int64Codec{}.Decode(data)
	if err != nil {
		return 0, err
	}
	return v.(int64), nil
}

// EncodeFloat64 returns the Float64Codec encoding of f.
func EncodeFloat64(f float64) []byte {
	b, _ := Float64Codec{}.Encode(nil, f)
	return b
}

// DecodeFloat64 parses a Float64Codec encoding.
func DecodeFloat64(data []byte) (float64, error) {
	v, err := Float64Codec{}.Decode(data)
	if err != nil {
		return 0, err
	}
	return v.(float64), nil
}

// EncodeVarint returns the VarintCodec encoding of n.
func EncodeVarint(n int64) []byte {
	return binary.AppendVarint(nil, n)
}

// DecodeVarint parses a VarintCodec encoding.
func DecodeVarint(data []byte) (int64, error) {
	n, size := binary.Varint(data)
	if size <= 0 || size != len(data) {
		return 0, ErrShortData
	}
	return n, nil
}

// EncodeFloat64Slice returns the Float64SliceCodec encoding of s.
func EncodeFloat64Slice(s []float64) []byte {
	b, _ := Float64SliceCodec{}.Encode(nil, s)
	return b
}

// DecodeFloat64Slice parses a Float64SliceCodec encoding.
func DecodeFloat64Slice(data []byte) ([]float64, error) {
	v, err := Float64SliceCodec{}.Decode(data)
	if err != nil {
		return nil, err
	}
	return v.([]float64), nil
}

// ---------------------------------------------------------------------------
// Registry

var (
	regMu    sync.RWMutex
	registry = map[string]Codec{}
)

func init() {
	for _, c := range []Codec{
		BytesCodec{}, StringCodec{}, Int64Codec{}, OrderedInt64Codec{},
		VarintCodec{}, Float64Codec{}, Float64SliceCodec{},
	} {
		MustRegister(c)
	}
}

// Register adds c to the global registry. It fails if the name is taken
// by a different codec.
func Register(c Codec) error {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[c.Name()]; ok {
		return fmt.Errorf("codec: %q already registered", c.Name())
	}
	registry[c.Name()] = c
	return nil
}

// MustRegister is Register but panics on error; intended for init-time use.
func MustRegister(c Codec) {
	if err := Register(c); err != nil {
		panic(err)
	}
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := registry[name]
	return c, ok
}

// Names returns the sorted list of registered codec names.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// conversions

func toInt64(v any) (int64, bool) {
	switch n := v.(type) {
	case int64:
		return n, true
	case int:
		return int64(n), true
	case int32:
		return int64(n), true
	case uint32:
		return int64(n), true
	}
	return 0, false
}

func toFloat64(v any) (float64, bool) {
	switch f := v.(type) {
	case float64:
		return f, true
	case float32:
		return float64(f), true
	case int:
		return float64(f), true
	}
	return 0, false
}
