package codec

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestBytesRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		enc, err := BytesCodec{}.Encode(nil, b)
		if err != nil {
			return false
		}
		dec, err := BytesCodec{}.Decode(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec.([]byte), b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesDecodeCopies(t *testing.T) {
	src := []byte("hello")
	dec, err := BytesCodec{}.Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 'X'
	if got := string(dec.([]byte)); got != "hello" {
		t.Errorf("decode aliased input: got %q", got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		enc, err := StringCodec{}.Encode(nil, s)
		if err != nil {
			return false
		}
		dec, err := StringCodec{}.Decode(enc)
		return err == nil && dec.(string) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt64RoundTrip(t *testing.T) {
	f := func(n int64) bool {
		enc := EncodeInt64(n)
		dec, err := DecodeInt64(enc)
		return err == nil && dec == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderedInt64Ordering(t *testing.T) {
	f := func(a, b int64) bool {
		ea, _ := OrderedInt64Codec{}.Encode(nil, a)
		eb, _ := OrderedInt64Codec{}.Encode(nil, b)
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderedInt64RoundTrip(t *testing.T) {
	for _, n := range []int64{math.MinInt64, -1, 0, 1, math.MaxInt64} {
		enc, err := OrderedInt64Codec{}.Encode(nil, n)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := OrderedInt64Codec{}.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if dec.(int64) != n {
			t.Errorf("round trip %d -> %d", n, dec)
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	f := func(n int64) bool {
		enc := EncodeVarint(n)
		dec, err := DecodeVarint(enc)
		return err == nil && dec == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarintRejectsTrailingBytes(t *testing.T) {
	enc := append(EncodeVarint(5), 0xFF)
	if _, err := DecodeVarint(enc); err == nil {
		t.Error("expected error on trailing bytes")
	}
}

func TestVarintCompactness(t *testing.T) {
	if got := len(EncodeVarint(1)); got != 1 {
		t.Errorf("varint(1) is %d bytes, want 1", got)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	f := func(x float64) bool {
		enc := EncodeFloat64(x)
		dec, err := DecodeFloat64(enc)
		if err != nil {
			return false
		}
		return dec == x || (math.IsNaN(dec) && math.IsNaN(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, x := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN()} {
		dec, err := DecodeFloat64(EncodeFloat64(x))
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(dec) != math.Float64bits(x) {
			t.Errorf("round trip %v -> %v", x, dec)
		}
	}
}

func TestFloat64SliceRoundTrip(t *testing.T) {
	f := func(s []float64) bool {
		enc := EncodeFloat64Slice(s)
		dec, err := DecodeFloat64Slice(enc)
		if err != nil || len(dec) != len(s) {
			return false
		}
		for i := range s {
			if math.Float64bits(dec[i]) != math.Float64bits(s[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64SliceEmpty(t *testing.T) {
	dec, err := DecodeFloat64Slice(EncodeFloat64Slice(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Errorf("want empty slice, got %v", dec)
	}
}

func TestShortDataErrors(t *testing.T) {
	codecs := []Codec{Int64Codec{}, OrderedInt64Codec{}, Float64Codec{}}
	for _, c := range codecs {
		if _, err := c.Decode([]byte{1, 2, 3}); err == nil {
			t.Errorf("%s: expected error on short data", c.Name())
		}
	}
	if _, err := (Float64SliceCodec{}).Decode([]byte{10, 0}); err == nil {
		t.Error("[]float64: expected error on truncated data")
	}
}

func TestTypeMismatchErrors(t *testing.T) {
	cases := []struct {
		c Codec
		v any
	}{
		{BytesCodec{}, "not bytes"},
		{StringCodec{}, 42},
		{Int64Codec{}, "nope"},
		{VarintCodec{}, 1.5},
		{Float64Codec{}, "x"},
		{Float64SliceCodec{}, []int{1}},
	}
	for _, c := range cases {
		if _, err := c.c.Encode(nil, c.v); err == nil {
			t.Errorf("%s: expected type error for %T", c.c.Name(), c.v)
		}
	}
}

func TestEncodeAppends(t *testing.T) {
	prefix := []byte("pre")
	out, err := StringCodec{}.Encode(prefix, "fix")
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "prefix" {
		t.Errorf("Encode did not append: %q", out)
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"bytes", "string", "int64", "oint64", "varint", "float64", "[]float64"} {
		c, ok := Lookup(name)
		if !ok {
			t.Errorf("codec %q not registered", name)
			continue
		}
		if c.Name() != name {
			t.Errorf("codec %q reports name %q", name, c.Name())
		}
	}
	if _, ok := Lookup("no-such-codec"); ok {
		t.Error("unexpected codec for bogus name")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	if err := Register(StringCodec{}); err == nil {
		t.Error("expected duplicate registration error")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 7 {
		t.Fatalf("expected at least 7 registered codecs, got %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestIntConversions(t *testing.T) {
	enc, err := Int64Codec{}.Encode(nil, int(7))
	if err != nil {
		t.Fatal(err)
	}
	n, err := DecodeInt64(enc)
	if err != nil || n != 7 {
		t.Errorf("int conversion failed: %d, %v", n, err)
	}
}

func BenchmarkVarintEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		EncodeVarint(int64(i))
	}
}

func BenchmarkFloat64SliceRoundTrip(b *testing.B) {
	s := make([]float64, 250) // Rosenbrock-250 particle dimension
	for i := range s {
		s[i] = float64(i) * 1.5
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := EncodeFloat64Slice(s)
		if _, err := DecodeFloat64Slice(enc); err != nil {
			b.Fatal(err)
		}
	}
}
