package hadoopsim

import (
	"testing"
	"time"
)

func cluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := NewCluster(n, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEmptyJobOverheadIsAtLeast30s(t *testing.T) {
	// The paper's headline: "Hadoop takes at least 30 seconds for each
	// MapReduce operation".
	c := cluster(t, 21)
	ovh, err := c.OverheadEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if ovh < 25*time.Second || ovh > 45*time.Second {
		t.Errorf("empty-job overhead = %v, want ~30s", ovh)
	}
}

func TestMakespanIsSumOfBreakdown(t *testing.T) {
	c := cluster(t, 5)
	res, err := c.Run(Job{Maps: 20, Reduces: 4, MapTime: time.Second,
		ReduceTime: 2 * time.Second, InputFiles: 100, StageInBytes: 1 << 30, StageOutBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.StageIn + res.InputScan + res.Setup + res.MapPhase +
		res.ReducePhase + res.Cleanup + res.StageOut
	if res.Makespan != sum {
		t.Errorf("Makespan %v != breakdown sum %v", res.Makespan, sum)
	}
}

func TestMoreTrackersFasterMaps(t *testing.T) {
	job := Job{Maps: 120, Reduces: 1, MapTime: 10 * time.Second, InputFiles: 1}
	small, err := cluster(t, 4).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	large, err := cluster(t, 21).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if large.MapPhase >= small.MapPhase {
		t.Errorf("21 trackers (%v) not faster than 4 (%v)", large.MapPhase, small.MapPhase)
	}
}

func TestWaveScheduling(t *testing.T) {
	// 8 tasks on 2 trackers × 2 slots = 2 waves; the phase must take
	// at least 2 × (launch + run) regardless of heartbeat luck.
	c := cluster(t, 2)
	res, err := c.Run(Job{Maps: 8, Reduces: 0, MapTime: 5 * time.Second, InputFiles: 1})
	if err != nil {
		t.Fatal(err)
	}
	minimum := 2 * (c.profile.TaskLaunch + 5*time.Second)
	if res.MapPhase < minimum {
		t.Errorf("MapPhase %v below two-wave minimum %v", res.MapPhase, minimum)
	}
	if res.TaskAttempts != 8 {
		t.Errorf("TaskAttempts = %d", res.TaskAttempts)
	}
}

func TestHeartbeatQuantization(t *testing.T) {
	// Even instantaneous tasks pay launch + heartbeat latency.
	c := cluster(t, 1)
	res, err := c.Run(Job{Maps: 1, Reduces: 0, InputFiles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MapPhase < c.profile.TaskLaunch {
		t.Errorf("MapPhase %v less than task launch %v", res.MapPhase, c.profile.TaskLaunch)
	}
}

func TestZeroTaskPhases(t *testing.T) {
	c := cluster(t, 3)
	res, err := c.Run(Job{Maps: 0, Reduces: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.MapPhase != 0 || res.ReducePhase != 0 {
		t.Errorf("empty phases nonzero: %+v", res)
	}
	if res.Makespan != res.Setup+res.Cleanup {
		t.Errorf("Makespan %v", res.Makespan)
	}
}

func TestDeterministic(t *testing.T) {
	job := Job{Maps: 50, Reduces: 10, MapTime: time.Second, ReduceTime: time.Second, InputFiles: 10}
	a, _ := cluster(t, 7).Run(job)
	b, _ := cluster(t, 7).Run(job)
	if a != b {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestFullGutenbergScanDominatesStartup(t *testing.T) {
	// "With the full dataset, Hadoop struggles to load the data …
	// making the start up time alone take nearly nine minutes."
	c := cluster(t, 21)
	res, err := c.Run(Job{Maps: 31173, Reduces: 126, MapTime: 500 * time.Millisecond,
		ReduceTime: 5 * time.Second, InputFiles: 31173})
	if err != nil {
		t.Fatal(err)
	}
	if res.InputScan < 8*time.Minute || res.InputScan > 10*time.Minute {
		t.Errorf("full-corpus scan = %v, want ~9 min", res.InputScan)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewCluster(0, DefaultProfile()); err == nil {
		t.Error("zero trackers accepted")
	}
	p := DefaultProfile()
	p.MapSlots = 0
	if _, err := NewCluster(1, p); err == nil {
		t.Error("zero slots accepted")
	}
	p = DefaultProfile()
	p.HeartbeatInterval = 0
	if _, err := NewCluster(1, p); err == nil {
		t.Error("zero heartbeat accepted")
	}
	c := cluster(t, 1)
	if _, err := c.Run(Job{Maps: -1}); err == nil {
		t.Error("negative maps accepted")
	}
}

func TestIterativeEstimateMatchesPaperExtrapolation(t *testing.T) {
	// "Thus Hadoop would take approximately 2471 * 30 seconds or a
	// little longer than 20 hours."
	c := cluster(t, 21)
	perIter, err := c.OverheadEmpty()
	if err != nil {
		t.Fatal(err)
	}
	total := time.Duration(2471) * perIter
	if total < 18*time.Hour || total > 28*time.Hour {
		t.Errorf("2471 iterations = %v, want ~20h+", total)
	}
}

func BenchmarkSimulateLargeJob(b *testing.B) {
	c, err := NewCluster(21, DefaultProfile())
	if err != nil {
		b.Fatal(err)
	}
	job := Job{Maps: 31173, Reduces: 126, MapTime: 500 * time.Millisecond,
		ReduceTime: 5 * time.Second, InputFiles: 31173}
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(job); err != nil {
			b.Fatal(err)
		}
	}
}
