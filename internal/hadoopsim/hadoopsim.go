// Package hadoopsim is a discrete-event simulator of a 2012-era Hadoop
// (0.20.x) MapReduce cluster: a JobTracker scheduling map and reduce
// tasks onto TaskTracker slots at heartbeat boundaries, per-task JVM
// launch latency, an all-maps-before-reduces barrier, and per-job setup
// and cleanup phases. Combined with internal/hdfssim for staging and
// input-scan costs, it reproduces the Hadoop side of every comparison
// in §V of the Mrs paper — most importantly the ≥30 s per-operation
// overhead that dominates iterative workloads.
//
// The paper's Hadoop numbers come from a private 21-node × 6-core
// cluster; we cannot run that stack, so we simulate its scheduling
// mechanics with documented, calibrated constants (see EXPERIMENTS.md).
package hadoopsim

import (
	"container/heap"
	"fmt"
	"time"

	"repro/internal/hdfssim"
)

// Profile holds the calibrated timing constants.
type Profile struct {
	// HeartbeatInterval is the TaskTracker heartbeat period (Hadoop
	// default: 3 s). Tasks are only assigned at heartbeats, and
	// completions are only learned at heartbeats.
	HeartbeatInterval time.Duration
	// TaskLaunch is the JVM spin-up time per task attempt.
	TaskLaunch time.Duration
	// JobSetup covers job submission, staging the job jar, and the
	// setup task.
	JobSetup time.Duration
	// JobCleanup covers the cleanup task and client notification.
	JobCleanup time.Duration
	// MapSlots and ReduceSlots are per-tracker slot counts.
	MapSlots    int
	ReduceSlots int
	// HDFS is the filesystem cost model (scan/staging).
	HDFS hdfssim.Costs
}

// DefaultProfile returns the calibration used throughout EXPERIMENTS.md.
func DefaultProfile() Profile {
	return Profile{
		HeartbeatInterval: 3 * time.Second,
		TaskLaunch:        2 * time.Second,
		// Setup covers client submission, JobTracker job init, and the
		// setup *task* (which itself costs a heartbeat + JVM launch on
		// a tracker); cleanup covers the cleanup task plus the client's
		// completion poll. Calibrated so an empty job totals ~29-30 s,
		// matching "at least 30 seconds for each MapReduce operation".
		JobSetup:    14 * time.Second,
		JobCleanup:  9 * time.Second,
		MapSlots:    2,
		ReduceSlots: 2,
		HDFS:        hdfssim.DefaultCosts(),
	}
}

// Job describes one MapReduce job to simulate.
type Job struct {
	// Maps and Reduces are task counts.
	Maps    int
	Reduces int
	// MapTime and ReduceTime are per-task compute durations.
	MapTime    time.Duration
	ReduceTime time.Duration
	// InputFiles drives the input-scan (split enumeration) cost.
	InputFiles int
	// StageInBytes/StageOutBytes are copied through HDFS before and
	// after the job (0 for data already resident, as in the paper's
	// WordCount where HDFS is pre-loaded).
	StageInBytes  int64
	StageOutBytes int64
}

// Result is the simulated outcome.
type Result struct {
	// Makespan is total wall time including staging, scan, setup, both
	// phases, and cleanup.
	Makespan time.Duration
	// Breakdown:
	StageIn     time.Duration
	InputScan   time.Duration
	Setup       time.Duration
	MapPhase    time.Duration
	ReducePhase time.Duration
	Cleanup     time.Duration
	StageOut    time.Duration
	// TaskAttempts counts simulated task launches.
	TaskAttempts int
}

// Cluster simulates jobs on a fixed set of trackers.
type Cluster struct {
	profile  Profile
	trackers int
}

// NewCluster returns a simulator with n TaskTrackers.
func NewCluster(n int, p Profile) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hadoopsim: need at least one tracker")
	}
	if p.MapSlots <= 0 || p.ReduceSlots <= 0 {
		return nil, fmt.Errorf("hadoopsim: slot counts must be positive")
	}
	if p.HeartbeatInterval <= 0 {
		return nil, fmt.Errorf("hadoopsim: heartbeat must be positive")
	}
	return &Cluster{profile: p, trackers: n}, nil
}

// event is a tracker heartbeat in the simulated timeline.
type event struct {
	at time.Duration
	tr int // tracker index
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// phase simulates one wave-scheduled phase (maps or reduces) and
// returns its duration and the attempts launched. Tasks are assigned
// only at heartbeats, limited by free slots per tracker; a slot's
// completion is visible to the JobTracker at the tracker's next
// heartbeat after the task (launch + run) finishes.
func (c *Cluster) phase(tasks int, perTask time.Duration, slotsPer int) (time.Duration, int) {
	if tasks == 0 {
		return 0, 0
	}
	hb := c.profile.HeartbeatInterval
	type tracker struct {
		freeSlots int
		busyUntil []time.Duration // per running task, completion time
	}
	trs := make([]tracker, c.trackers)
	for i := range trs {
		trs[i].freeSlots = slotsPer
	}
	var h eventHeap
	// Stagger initial heartbeats across the interval, as real trackers
	// are unsynchronized; deterministic stagger keeps runs repeatable.
	for i := 0; i < c.trackers; i++ {
		heap.Push(&h, event{at: time.Duration(i) * hb / time.Duration(c.trackers), tr: i})
	}
	remaining := tasks
	completed := 0
	attempts := 0
	var finish time.Duration
	for completed < tasks {
		ev := heap.Pop(&h).(event)
		tr := &trs[ev.tr]
		// Collect completions visible at this heartbeat.
		kept := tr.busyUntil[:0]
		for _, end := range tr.busyUntil {
			if end <= ev.at {
				completed++
				tr.freeSlots++
				if end > finish {
					finish = end
				}
			} else {
				kept = append(kept, end)
			}
		}
		tr.busyUntil = kept
		// Assign new tasks to free slots.
		for tr.freeSlots > 0 && remaining > 0 {
			tr.freeSlots--
			remaining--
			attempts++
			end := ev.at + c.profile.TaskLaunch + perTask
			tr.busyUntil = append(tr.busyUntil, end)
		}
		heap.Push(&h, event{at: ev.at + hb, tr: ev.tr})
		// The JobTracker learns of the final completion at the
		// heartbeat that reported it.
		if completed >= tasks {
			finish = ev.at
		}
	}
	return finish, attempts
}

// Run simulates one job.
func (c *Cluster) Run(j Job) (Result, error) {
	if j.Maps < 0 || j.Reduces < 0 {
		return Result{}, fmt.Errorf("hadoopsim: negative task counts")
	}
	var r Result
	p := c.profile
	r.StageIn = p.HDFS.StageTime(j.InputFiles, j.StageInBytes)
	r.InputScan = p.HDFS.ScanTime(j.InputFiles)
	r.Setup = p.JobSetup
	var attempts int
	r.MapPhase, attempts = c.phase(j.Maps, j.MapTime, p.MapSlots)
	r.TaskAttempts += attempts
	r.ReducePhase, attempts = c.phase(j.Reduces, j.ReduceTime, p.ReduceSlots)
	r.TaskAttempts += attempts
	r.Cleanup = p.JobCleanup
	if j.StageOutBytes > 0 {
		r.StageOut = p.HDFS.StageTime(j.Reduces, j.StageOutBytes)
	}
	r.Makespan = r.StageIn + r.InputScan + r.Setup + r.MapPhase + r.ReducePhase + r.Cleanup + r.StageOut
	return r, nil
}

// OverheadEmpty returns the makespan of a minimal (1 map, 1 reduce,
// zero compute, no staging, single input file) job: the per-operation
// overhead that the paper reports as "at least 30 seconds".
func (c *Cluster) OverheadEmpty() (time.Duration, error) {
	res, err := c.Run(Job{Maps: 1, Reduces: 1, InputFiles: 1})
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
