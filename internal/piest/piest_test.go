package piest

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/halton"
	"repro/internal/interp"
)

func runWith(t *testing.T, exec core.Executor, cfg Config) *Result {
	t.Helper()
	job := core.NewJob(exec)
	defer job.Close()
	res, err := Run(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPiSerial(t *testing.T) {
	cfg := Config{Samples: 200_000, Tasks: 4}
	reg := core.NewRegistry()
	Register(reg, cfg)
	exec := core.NewSerial(reg)
	defer exec.Close()
	res := runWith(t, exec, cfg)
	if res.Total != 200_000 {
		t.Errorf("Total = %d", res.Total)
	}
	if res.Error() > 0.01 {
		t.Errorf("pi = %v, error %v too large", res.Pi, res.Error())
	}
}

func TestPiMatchesDirectCount(t *testing.T) {
	// The MapReduce decomposition must count exactly the same points as
	// a single direct pass over the Halton sequence.
	const n = 50_000
	cfg := Config{Samples: n, Tasks: 7}
	reg := core.NewRegistry()
	Register(reg, cfg)
	exec := core.NewThreads(reg, 4)
	defer exec.Close()
	res := runWith(t, exec, cfg)
	direct := halton.CountInCircle(0, n)
	if uint64(res.Inside) != direct {
		t.Errorf("MR inside = %d, direct = %d", res.Inside, direct)
	}
}

func TestPiTaskCountInvariance(t *testing.T) {
	// Any task decomposition gives the identical count.
	const n = 30_000
	var counts []int64
	for _, tasks := range []int{1, 2, 3, 8, 13} {
		cfg := Config{Samples: n, Tasks: tasks}
		reg := core.NewRegistry()
		Register(reg, cfg)
		exec := core.NewSerial(reg)
		res := runWith(t, exec, cfg)
		exec.Close()
		counts = append(counts, res.Inside)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Errorf("task decomposition changed the count: %v", counts)
		}
	}
}

func TestPiAccuracyImprovesWithSamples(t *testing.T) {
	errAt := func(n uint64) float64 {
		cfg := Config{Samples: n, Tasks: 2}
		reg := core.NewRegistry()
		Register(reg, cfg)
		exec := core.NewSerial(reg)
		defer exec.Close()
		return runWith(t, exec, cfg).Error()
	}
	small := errAt(1_000)
	large := errAt(300_000)
	if large >= small {
		t.Errorf("error did not shrink: %v -> %v", small, large)
	}
	if large > 1e-3 {
		t.Errorf("error at 3e5 samples = %v; Halton should do much better", large)
	}
}

func TestInputPairsPartitionExactly(t *testing.T) {
	cfg := Config{Samples: 10, Tasks: 3}
	pairs := InputPairs(cfg)
	if len(pairs) != 3 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	var total uint64
	var next uint64
	for _, p := range pairs {
		start, count, err := decodeRange(p.Value)
		if err != nil {
			t.Fatal(err)
		}
		if start != next {
			t.Errorf("range gap: start %d, want %d", start, next)
		}
		next = start + count
		total += count
	}
	if total != 10 {
		t.Errorf("ranges cover %d samples, want 10", total)
	}
}

func TestDecodeRangeErrors(t *testing.T) {
	if _, _, err := decodeRange(nil); err == nil {
		t.Error("empty range accepted")
	}
	if _, _, err := decodeRange([]byte{2}); err == nil {
		t.Error("half range accepted")
	}
	if _, _, err := decodeRange(append(encodeRange(0, 5), 9)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestTierSimulationSlowsMap(t *testing.T) {
	run := func(tier interp.Tier) time.Duration {
		cfg := Config{Samples: 400_000, Tasks: 1, Tier: tier}
		reg := core.NewRegistry()
		Register(reg, cfg)
		exec := core.NewSerial(reg)
		defer exec.Close()
		start := time.Now()
		runWith(t, exec, cfg)
		return time.Since(start)
	}
	fast := run(interp.C)
	slow := run(interp.CPython)
	if slow < fast {
		t.Errorf("CPython tier (%v) not slower than C tier (%v)", slow, fast)
	}
}

func TestZeroSamplesDefaults(t *testing.T) {
	cfg := Config{}
	cfg.fill()
	if cfg.Samples == 0 || cfg.Tasks != 1 || cfg.Tier != interp.C {
		t.Errorf("defaults: %+v", cfg)
	}
}

func TestResultError(t *testing.T) {
	r := Result{Pi: math.Pi + 0.5}
	if math.Abs(r.Error()-0.5) > 1e-12 {
		t.Errorf("Error = %v", r.Error())
	}
}
