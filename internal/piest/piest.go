// Package piest implements the PiEstimator workload of §V-B: a Monte
// Carlo estimate of pi whose sample points come from 2-D Halton
// sequences (bases 2 and 3). Each map task owns a contiguous range of
// the sample index space, counts points inside the quarter circle, and
// a single reduce aggregates the counts — "computational in nature,
// with no data on disk".
package piest

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/halton"
	"repro/internal/interp"
	"repro/internal/kvio"
)

// Function names registered by Register.
const (
	MapName    = "pi_sample"
	ReduceName = "pi_sum"
)

// Keys used in intermediate records.
var (
	keyInside = []byte("inside")
	keyTotal  = []byte("total")
)

// Config parameterizes a pi estimation run.
type Config struct {
	// Samples is the total number of Halton points to draw.
	Samples uint64
	// Tasks is the number of map tasks splitting the index space.
	Tasks int
	// Tier optionally simulates a slower language runtime by scaling
	// the inner-loop time (see internal/interp). Zero value (C) runs
	// at native speed.
	Tier interp.Tier
}

func (c *Config) fill() {
	if c.Samples == 0 {
		c.Samples = 1 << 20
	}
	if c.Tasks <= 0 {
		c.Tasks = 1
	}
	if c.Tier.Name == "" {
		c.Tier = interp.C
	}
}

// Register installs the pi map/reduce functions bound to cfg.
func Register(reg *core.Registry, cfg Config) {
	cfg.fill()
	reg.RegisterMap(MapName, func(key, value []byte, emit kvio.Emitter) error {
		start, count, err := decodeRange(value)
		if err != nil {
			return err
		}
		t0 := time.Now()
		inside := halton.CountInCircle(start, count)
		if cfg.Tier.Factor > 1 {
			// Simulate a slower runtime executing the same loop: pad
			// with the extra time the modeled interpreter would need.
			time.Sleep(time.Duration(float64(time.Since(t0)) * (cfg.Tier.Factor - 1)))
		}
		if err := emit.Emit(keyInside, codec.EncodeVarint(int64(inside))); err != nil {
			return err
		}
		return emit.Emit(keyTotal, codec.EncodeVarint(int64(count)))
	})
	reg.RegisterReduce(ReduceName, func(key []byte, values [][]byte, emit kvio.Emitter) error {
		var total int64
		for _, v := range values {
			n, err := codec.DecodeVarint(v)
			if err != nil {
				return err
			}
			total += n
		}
		return emit.Emit(key, codec.EncodeVarint(total))
	})
}

// encodeRange packs (start, count) as the map input value.
func encodeRange(start, count uint64) []byte {
	out := codec.EncodeVarint(int64(start))
	return append(out, codec.EncodeVarint(int64(count))...)
}

func decodeRange(v []byte) (start, count uint64, err error) {
	s, n := binary.Varint(v)
	if n <= 0 {
		return 0, 0, fmt.Errorf("piest: bad range")
	}
	c, m := binary.Varint(v[n:])
	if m <= 0 || n+m != len(v) || s < 0 || c < 0 {
		return 0, 0, fmt.Errorf("piest: bad range")
	}
	return uint64(s), uint64(c), nil
}

// InputPairs builds the map inputs: one (taskIndex, range) record per task.
func InputPairs(cfg Config) []kvio.Pair {
	cfg.fill()
	per := cfg.Samples / uint64(cfg.Tasks)
	rem := cfg.Samples % uint64(cfg.Tasks)
	pairs := make([]kvio.Pair, cfg.Tasks)
	var start uint64
	for t := 0; t < cfg.Tasks; t++ {
		count := per
		if uint64(t) < rem {
			count++
		}
		pairs[t] = kvio.Pair{
			Key:   codec.EncodeVarint(int64(t)),
			Value: encodeRange(start, count),
		}
		start += count
	}
	return pairs
}

// Result reports an estimate.
type Result struct {
	Pi      float64
	Inside  int64
	Total   int64
	Elapsed time.Duration
}

// Run estimates pi on the given job. Register must have been called
// with the same Config on every process involved.
func Run(job *core.Job, cfg Config) (*Result, error) {
	cfg.fill()
	start := time.Now()
	src, err := job.LocalData(InputPairs(cfg), core.OpOpts{Splits: cfg.Tasks, Partition: "roundrobin"})
	if err != nil {
		return nil, err
	}
	out, err := job.MapReduce(src, MapName, ReduceName,
		core.OpOpts{Splits: 1, Partition: "constant"},
		core.OpOpts{Splits: 1, Partition: "constant"})
	if err != nil {
		return nil, err
	}
	pairs, err := out.Collect()
	if err != nil {
		return nil, err
	}
	res := &Result{Elapsed: time.Since(start)}
	for _, p := range pairs {
		n, err := codec.DecodeVarint(p.Value)
		if err != nil {
			return nil, err
		}
		switch string(p.Key) {
		case string(keyInside):
			res.Inside = n
		case string(keyTotal):
			res.Total = n
		default:
			return nil, fmt.Errorf("piest: unexpected key %q", p.Key)
		}
	}
	if res.Total == 0 {
		return nil, fmt.Errorf("piest: zero samples counted")
	}
	res.Pi = 4 * float64(res.Inside) / float64(res.Total)
	return res, nil
}

// Error returns the absolute error of an estimate.
func (r *Result) Error() float64 { return math.Abs(r.Pi - math.Pi) }
