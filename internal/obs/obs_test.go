package obs

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestNilSafety(t *testing.T) {
	// Every observability hook must be callable through nil receivers so
	// un-instrumented code paths need no guards.
	var c *Counter
	c.Add(3)
	if got := c.Value(); got != 0 {
		t.Errorf("nil Counter.Value() = %d, want 0", got)
	}
	var m *Metrics
	m.Add("x", 1)
	m.SetGauge("g", func() int64 { return 7 })
	if got := m.Get("x"); got != 0 {
		t.Errorf("nil Metrics.Get = %d, want 0", got)
	}
	if m.Counter("x") != nil {
		t.Error("nil Metrics.Counter should be nil")
	}
	var tr *Tracer
	if id := tr.TaskSubmitted(0, 0, "map", "f"); id != 0 {
		t.Errorf("nil Tracer.TaskSubmitted = %d, want 0", id)
	}
	tr.TaskStarted(1, 1, "w")
	tr.TaskFinished(1, 1, "w", Timing{}, "")
	if tr.NumSpans() != 0 {
		t.Error("nil Tracer should have no spans")
	}
	var rt *Runtime
	if rt.M() != nil || rt.T() != nil {
		t.Error("nil Runtime accessors should return nil components")
	}
	if rt.Clk() == nil {
		t.Error("nil Runtime.Clk should fall back to a real clock")
	}
	rt.M().Add("y", 1)
	rt.T().TaskStarted(5, 1, "w")
}

func TestMetricsCountersAndGauges(t *testing.T) {
	m := NewMetrics()
	m.Add("mrs_tasks_executed_total", 2)
	m.Counter("mrs_tasks_executed_total").Add(3)
	if got := m.Get("mrs_tasks_executed_total"); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	depth := int64(4)
	m.SetGauge("mrs_queue_depth", func() int64 { return depth })
	snap := m.Snapshot()
	if snap["mrs_tasks_executed_total"] != 5 || snap["mrs_queue_depth"] != 4 {
		t.Errorf("snapshot = %v", snap)
	}
	depth = 9
	if got := m.Get("mrs_queue_depth"); got != 9 {
		t.Errorf("gauge = %d, want live value 9", got)
	}
}

func TestWriteProm(t *testing.T) {
	m := NewMetrics()
	m.Add("mrs_b_total", 2)
	m.Add("mrs_a_total", 1)
	m.SetGauge("mrs_gauge", func() int64 { return 3 })
	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ia := strings.Index(out, "mrs_a_total 1")
	ib := strings.Index(out, "mrs_b_total 2")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("counters missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE mrs_a_total counter") {
		t.Errorf("missing counter TYPE line:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE mrs_gauge gauge") ||
		!strings.Contains(out, "mrs_gauge 3") {
		t.Errorf("missing gauge:\n%s", out)
	}
}

func TestTracerLifecycle(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	tr := NewTracer(clk)

	id := tr.TaskSubmitted(2, 7, "reduce", "sum")
	if id == 0 {
		t.Fatal("TaskSubmitted returned 0")
	}
	clk.Advance(time.Millisecond)
	tr.TaskStarted(id, 1, "slave-1")
	clk.Advance(2 * time.Millisecond)
	tr.TaskFinished(id, 1, "slave-1", Timing{WallNS: int64(2 * time.Millisecond), InBytes: 10}, "")

	// Unknown ids and the zero id are ignored, and finishing the same
	// attempt twice records only one span (redelivered reports).
	tr.TaskStarted(0, 1, "x")
	tr.TaskStarted(9999, 1, "x")
	tr.TaskFinished(id, 1, "slave-1", Timing{}, "")
	tr.TaskFinished(9999, 1, "x", Timing{}, "")

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Dataset != 2 || s.Task != 7 || s.Kind != "reduce" || s.Func != "sum" {
		t.Errorf("span identity = %+v", s)
	}
	if s.Attempt != 1 || s.Worker != "slave-1" {
		t.Errorf("span attempt/worker = %d/%q", s.Attempt, s.Worker)
	}
	if got := s.End.Sub(s.Start); got != 2*time.Millisecond {
		t.Errorf("span duration = %v, want 2ms", got)
	}
	if s.Timing.InBytes != 10 {
		t.Errorf("span timing = %+v", s.Timing)
	}
}

func TestTracerRetriesKeepDistinctAttempts(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	tr := NewTracer(clk)
	id := tr.TaskSubmitted(0, 3, "map", "f")
	tr.TaskStarted(id, 1, "slave-0")
	tr.TaskFinished(id, 1, "slave-0", Timing{}, "slave died; requeued")
	tr.TaskStarted(id, 2, "slave-1")
	tr.TaskFinished(id, 2, "slave-1", Timing{}, "")
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Attempt != 1 || spans[0].Err == "" {
		t.Errorf("first attempt = %+v", spans[0])
	}
	if spans[1].Attempt != 2 || spans[1].Err != "" {
		t.Errorf("second attempt = %+v", spans[1])
	}
}

// buildTrace records the same task set in the given submission order;
// the exported file must not depend on that order.
func buildTrace(order []int) []byte {
	clk := clock.NewFake(time.Unix(1000, 0))
	tr := NewTracer(clk)
	ids := map[int]int64{}
	for _, task := range order {
		ids[task] = tr.TaskSubmitted(1, task, "map", "f")
	}
	for _, task := range order {
		tr.TaskStarted(ids[task], 1, "worker-0")
		tr.TaskFinished(ids[task], 1, "worker-0", Timing{WallNS: 5}, "")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func TestChromeTraceDeterministic(t *testing.T) {
	a := buildTrace([]int{0, 1, 2, 3})
	b := buildTrace([]int{3, 1, 0, 2})
	if !bytes.Equal(a, b) {
		t.Errorf("trace export depends on submission order:\n%s\n---\n%s", a, b)
	}
	st, err := ValidateChromeTrace(a)
	if err != nil {
		t.Fatalf("invalid trace: %v\n%s", err, a)
	}
	if st.Spans != 4 || st.Workers != 1 || st.Datasets != 1 || st.MaxAttempt != 1 || st.Errors != 0 {
		t.Errorf("trace stats = %+v", st)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	bad := [][]byte{
		[]byte(`not json`),
		[]byte(`{}`),
		[]byte(`{"traceEvents": "nope"}`),
		[]byte(`{"traceEvents": [{"ph":"X"}]}`),
		[]byte(`{"traceEvents":[{"name":"t","ph":"X","pid":1,"tid":1,"ts":-5,"dur":0,"args":{"dataset":0,"task":0,"attempt":1}}]}`),
	}
	for i, b := range bad {
		if _, err := ValidateChromeTrace(b); err == nil {
			t.Errorf("case %d: expected error for %s", i, b)
		}
	}
}

func TestDebugServer(t *testing.T) {
	rt := New(nil)
	rt.M().Add("mrs_tasks_executed_total", 11)
	srv, err := ServeDebug("127.0.0.1:0", rt, func() string { return "status-marker" })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/debug/status"); !strings.Contains(out, "status-marker") ||
		!strings.Contains(out, "mrs_tasks_executed_total") {
		t.Errorf("/debug/status = %q", out)
	}
	if out := get("/debug/metrics"); !strings.Contains(out, "mrs_tasks_executed_total 11") {
		t.Errorf("/debug/metrics = %q", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
