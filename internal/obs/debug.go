package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
)

// StatusFunc returns one human-readable page of component status; the
// /debug/status handler prepends it to the metrics snapshot.
type StatusFunc func() string

// RegisterDebug mounts the /debug surface on mux:
//
//	/debug/ and /debug/status — plain-text status page
//	/debug/metrics            — Prometheus text exposition
//	/debug/pprof/...          — the standard Go profiling endpoints
//
// status may be nil; rt may be nil (the page then shows no metrics).
func RegisterDebug(mux *http.ServeMux, rt *Runtime, status StatusFunc) {
	statusPage := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if status != nil {
			fmt.Fprintln(w, status())
		}
		snap := rt.M().Snapshot()
		names := make([]string, 0, len(snap))
		for n := range snap {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintln(w, "metrics:")
		for _, n := range names {
			fmt.Fprintf(w, "  %-44s %d\n", n, snap[n])
		}
	}
	mux.HandleFunc("/debug", statusPage)
	mux.HandleFunc("/debug/status", statusPage)
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = rt.M().WriteProm(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// DebugServer is a standalone HTTP listener serving only the /debug
// surface, for processes that have no control-plane HTTP server of
// their own (local executors, slaves) — flag -mrs-debug-addr.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts a debug server on addr (e.g. "localhost:6060").
func ServeDebug(addr string, rt *Runtime, status StatusFunc) (*DebugServer, error) {
	mux := http.NewServeMux()
	RegisterDebug(mux, rt, status)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the listener down.
func (d *DebugServer) Close() error { return d.srv.Close() }
