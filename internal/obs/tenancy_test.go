package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestJobSeries(t *testing.T) {
	if got := JobSeries("mrs_job_tasks_done_total", 0); got != "mrs_job_tasks_done_total" {
		t.Errorf("job 0 series = %q, want bare name", got)
	}
	if got := JobSeries("mrs_job_tasks_done_total", 3); got != `mrs_job_tasks_done_total{job="3"}` {
		t.Errorf("job 3 series = %q", got)
	}
}

// Labeled series share one metric family: a single TYPE line, every
// labeled sample under it.
func TestWritePromLabeledFamilies(t *testing.T) {
	m := NewMetrics()
	m.Add(JobSeries("mrs_job_tasks_done_total", 1), 4)
	m.Add(JobSeries("mrs_job_tasks_done_total", 2), 6)
	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "# TYPE mrs_job_tasks_done_total counter"); n != 1 {
		t.Errorf("family TYPE line appears %d times, want 1:\n%s", n, out)
	}
	if !strings.Contains(out, `mrs_job_tasks_done_total{job="1"} 4`) ||
		!strings.Contains(out, `mrs_job_tasks_done_total{job="2"} 6`) {
		t.Errorf("labeled samples missing:\n%s", out)
	}
}

// Spans from different jobs land in different trace processes: pid is
// the job id, with a named process per job and worker lanes within it.
func TestChromeTracePerJobProcesses(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	tr := NewTracer(clk)

	id0 := tr.TaskSubmitted(1, 0, "map", "m")
	tr.TaskStarted(id0, 1, "w1")
	clk.Advance(time.Millisecond)
	tr.TaskFinished(id0, 1, "w1", Timing{}, "")

	id1 := tr.TaskSubmittedJob(2, 1, 0, "map", "m")
	tr.TaskStarted(id1, 1, "w1")
	clk.Advance(time.Millisecond)
	tr.TaskFinished(id1, 1, "w1", Timing{}, "")

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"pid":0`, `"pid":2`, // one process lane per job
		`"mrs job"`,   // default job's process name
		`"mrs job 2"`, // managed job's process name
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s:\n%s", want, out)
		}
	}
	if _, err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
}
