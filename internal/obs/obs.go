// Package obs is the runtime's zero-dependency observability layer:
// a structured per-task trace recorder that exports Chrome trace-event
// JSON (render a pipelined run as a timeline in chrome://tracing or
// Perfetto), a set of named counters and gauges with a Prometheus-style
// text exposition, and an HTTP /debug surface (status page, metrics,
// pprof). It is threaded through the Job driver, the local executors,
// the scheduler, the master, and the slaves; see docs/OBSERVABILITY.md
// for the operator view.
//
// Everything is nil-safe: a nil *Runtime, *Metrics, *Tracer, or
// *Counter accepts every call as a no-op, so instrumented code needs no
// "is observability on?" branches. Timestamps come from an injectable
// clock (internal/clock), which is what makes trace output
// deterministic under the fake clock in tests.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
)

// Runtime bundles the observability state one process (or one
// in-process cluster) shares: metrics are always present, the tracer
// only when tracing was requested (it retains every span in memory
// until exported).
type Runtime struct {
	// Metrics holds this runtime's counters and gauges.
	Metrics *Metrics
	// Trace records per-task spans when non-nil (see StartTrace).
	Trace *Tracer
	// Clock stamps trace events and task timings. Defaults to the wall
	// clock; tests inject a Fake for deterministic traces.
	Clock clock.Clock
}

// New returns a Runtime with live metrics and no tracer. A nil clk
// selects the wall clock.
func New(clk clock.Clock) *Runtime {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Runtime{Metrics: NewMetrics(), Clock: clk}
}

// StartTrace attaches a fresh Tracer driven by the runtime's clock and
// returns it. No-op (returning nil) on a nil runtime.
func (r *Runtime) StartTrace() *Tracer {
	if r == nil {
		return nil
	}
	r.Trace = NewTracer(r.Clock)
	return r.Trace
}

// M returns the runtime's metrics, nil-safely.
func (r *Runtime) M() *Metrics {
	if r == nil {
		return nil
	}
	return r.Metrics
}

// T returns the runtime's tracer, nil-safely.
func (r *Runtime) T() *Tracer {
	if r == nil {
		return nil
	}
	return r.Trace
}

// Clk returns the runtime's clock, or the wall clock for a nil runtime.
func (r *Runtime) Clk() clock.Clock {
	if r == nil || r.Clock == nil {
		return clock.Real{}
	}
	return r.Clock
}

// ---------------------------------------------------------------------------
// Metrics

// Data-plane metric names. The raw counters measure decoded record
// payload per path (what the task engine consumes); the wire counters
// measure bytes actually moved over the network or shared filesystem,
// which is smaller when compression is on. raw − wire is the
// compression saving, visible in /debug/metrics.
const (
	MetricShuffleBytesDirect = "mrs_shuffle_bytes_direct_total"
	MetricShuffleBytesShared = "mrs_shuffle_bytes_shared_total"
	MetricShuffleBytesLocal  = "mrs_shuffle_bytes_local_total"
	MetricWireBytesDirect    = "mrs_shuffle_wire_bytes_direct_total"
	MetricWireBytesShared    = "mrs_shuffle_wire_bytes_shared_total"
)

// MetricWireBytesCodec names the per-codec wire-byte counter: how many
// wire bytes moved under each negotiated compression codec ("identity",
// "deflate", "lz", ...). Summed across codecs it equals the per-path
// wire totals above; the split shows which codec the fleet actually
// negotiated, which is how a mixed-version identity fallback becomes
// visible in /debug/metrics.
func MetricWireBytesCodec(codec string) string {
	return "mrs_shuffle_wire_bytes_codec_" + codec + "_total"
}

// MetricBlocksColumnar counts columnar blocks written to bucket files —
// the producer-side signal that the columnar data plane is actually in
// use (a fleet pinned to row encoding holds this at zero).
const MetricBlocksColumnar = "mrs_shuffle_blocks_columnar_total"

// MetricWireBytesEncoding names the per-block-kind wire-byte counter
// ("row" or "columnar"). Like the per-codec split it sums to the
// per-path wire totals; the split shows when a mixed-version peer
// forced the row-block transcode fallback.
func MetricWireBytesEncoding(kind string) string {
	return "mrs_shuffle_wire_bytes_encoding_" + kind + "_total"
}

// Durability metric names. Journal counters track write-ahead-log
// activity on the master; the recovery counters count master restarts
// that replayed journaled state and the tasks whose journaled outputs
// let the scheduler skip re-execution.
const (
	MetricJournalRecords     = "mrs_journal_records_total"
	MetricJournalTruncations = "mrs_journal_truncations_total"
	MetricMasterRecoveries   = "mrs_master_recoveries_total"
	MetricRecoveredTasks     = "mrs_master_recovered_tasks_total"
)

// Resident-cache metric names. Hits and misses count per-task lookups
// of Resident-marked input splits (the task engine charges them);
// evictions count LRU displacement under the byte budget, and
// invalidations count entries dropped because the fetch plan changed
// (different producer buckets after recovery). The inserted/reclaimed
// byte counters are both monotonic so they sum correctly across the
// slaves sharing one metrics registry; their difference is the live
// pinned footprint, exported as the MetricResidentPinnedBytes gauge by
// RegisterResidentGauge. GC bytes count reclamation specifically driven
// by the per-job GC broadcast, and the scheduler counter tracks how
// often cache-affinity placement sent a task to the slave already
// holding its resident input.
const (
	MetricResidentHits            = "mrs_resident_hits_total"
	MetricResidentMisses          = "mrs_resident_misses_total"
	MetricResidentEvictions       = "mrs_resident_evictions_total"
	MetricResidentInvalidations   = "mrs_resident_invalidations_total"
	MetricResidentInsertedBytes   = "mrs_resident_inserted_bytes_total"
	MetricResidentReclaimedBytes  = "mrs_resident_reclaimed_bytes_total"
	MetricResidentGCBytes         = "mrs_resident_gc_reclaimed_bytes_total"
	MetricResidentPinnedBytes     = "mrs_resident_pinned_bytes"
	MetricSchedResidentPlacements = "mrs_sched_resident_placements_total"
	MetricPlanReuse               = "mrs_job_input_plan_reuse_total"
)

// Hierarchical-control-plane metric names. The sched counters cover
// straggler handling: late reports are task_done/task_failed deliveries
// arriving after the task's outcome was already settled (duplicate,
// stale-assignee, or post-job-completion straggler reports — previously
// dropped silently), speculative counts duplicate attempts launched by
// the quantile trigger, and wins counts tasks whose accepted completion
// came from a speculative attempt. Drain requeues count leases returned
// by nodes leaving the fleet cleanly. The submaster counters measure
// each tree level's aggregation work: tasks fetched from the parent,
// reports forwarded upward, the batches carrying them (reports/batches
// is the fan-in reduction), children signed in, local retries absorbed
// without escalating to the root, and upward re-sign-ins after a parent
// restart.
const (
	MetricSchedLateReports      = "mrs_sched_late_reports_total"
	MetricSchedSpeculative      = "mrs_sched_speculative_total"
	MetricSchedSpeculativeWins  = "mrs_sched_speculative_wins_total"
	MetricSchedDrainRequeued    = "mrs_sched_drain_requeued_total"
	MetricSubmasterFetched      = "mrs_submaster_tasks_fetched_total"
	MetricSubmasterReports      = "mrs_submaster_reports_forwarded_total"
	MetricSubmasterBatches      = "mrs_submaster_report_batches_total"
	MetricSubmasterChildSignins = "mrs_submaster_child_signins_total"
	MetricSubmasterLocalRetries = "mrs_submaster_local_retries_total"
	MetricSubmasterResignins    = "mrs_submaster_resignins_total"
	MetricMasterDrains          = "mrs_master_drains_total"
	MetricMasterBatchReports    = "mrs_master_batch_reports_total"
)

// RegisterResidentGauge installs the pinned-bytes gauge derived from
// the monotonic inserted/reclaimed counters. Registering is idempotent
// (SetGauge replaces), so every slave sharing the registry may call it.
func RegisterResidentGauge(m *Metrics) {
	m.SetGauge(MetricResidentPinnedBytes, func() int64 {
		return m.Counter(MetricResidentInsertedBytes).Value() -
			m.Counter(MetricResidentReclaimedBytes).Value()
	})
}

// Counter is a monotonically increasing metric. The zero value is
// ready; a nil *Counter discards adds, so hot paths can cache a counter
// pointer without caring whether metrics are wired.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Metrics is a registry of named counters and callback gauges. Names
// follow Prometheus conventions (mrs_tasks_submitted_total and the
// like); WriteProm renders the standard text exposition.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]func() int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{counters: map[string]*Counter{}, gauges: map[string]func() int64{}}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op counter) on a nil registry.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Add increments the named counter by n (creating it if needed).
func (m *Metrics) Add(name string, n int64) {
	m.Counter(name).Add(n)
}

// SetGauge registers (or replaces) a callback gauge; fn is evaluated at
// snapshot time. No-op on a nil registry.
func (m *Metrics) SetGauge(name string, fn func() int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gauges[name] = fn
}

// Get returns the current value of a counter or gauge (0 if absent).
func (m *Metrics) Get(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	c, cok := m.counters[name]
	g, gok := m.gauges[name]
	m.mu.Unlock()
	if cok {
		return c.Value()
	}
	if gok {
		return g()
	}
	return 0
}

// Snapshot evaluates every counter and gauge into one map.
func (m *Metrics) Snapshot() map[string]int64 {
	out := map[string]int64{}
	if m == nil {
		return out
	}
	m.mu.Lock()
	counters := make(map[string]*Counter, len(m.counters))
	for n, c := range m.counters {
		counters[n] = c
	}
	gauges := make(map[string]func() int64, len(m.gauges))
	for n, g := range m.gauges {
		gauges[n] = g
	}
	m.mu.Unlock()
	for n, c := range counters {
		out[n] = c.Value()
	}
	for n, g := range gauges {
		out[n] = g()
	}
	return out
}

// JobSeries returns the per-job labeled series name for a metric:
// `name{job="N"}` for a managed job, or the bare name for job 0 so
// single-job runs keep their legacy series. Labeled series sort after
// their base name in WriteProm's output, keeping each family together.
func JobSeries(name string, job int64) string {
	if job == 0 {
		return name
	}
	return fmt.Sprintf("%s{job=\"%d\"}", name, job)
}

// WriteProm renders the Prometheus text exposition format, sorted by
// metric name so output is stable. A `# TYPE` header is emitted once
// per metric family (the name up to any label braces), so job-labeled
// series share their family's header.
func (m *Metrics) WriteProm(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	kind := map[string]string{}
	for n := range m.counters {
		kind[n] = "counter"
	}
	for n := range m.gauges {
		kind[n] = "gauge"
	}
	m.mu.Unlock()
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	typed := map[string]bool{}
	for _, n := range names {
		fam := n
		if i := strings.IndexByte(n, '{'); i >= 0 {
			fam = n[:i]
		}
		if !typed[fam] {
			typed[fam] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, kind[n]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", n, snap[n]); err != nil {
			return err
		}
	}
	return nil
}
