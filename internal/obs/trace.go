package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
)

// Timing is the per-task-attempt cost breakdown measured by the task
// engine (core.ExecTask) on whichever process ran the task; in the
// distributed runtime it travels back to the master with task_done.
type Timing struct {
	// WallNS is the attempt's total execution wall time.
	WallNS int64
	// ShuffleNS is the portion of WallNS spent blocked in Read calls on
	// input buckets — the data-plane (shuffle) cost. Compute time is
	// WallNS - ShuffleNS.
	ShuffleNS int64
	// InBytes/InRecords count the consumed input split.
	InBytes   int64
	InRecords int64
	// OutBytes/OutRecords count the produced output buckets.
	OutBytes   int64
	OutRecords int64
	// ResidentHits/ResidentMisses count resident-cache lookups for the
	// attempt's input split (at most one lookup per task; both zero for
	// non-Resident operations). Aggregated per op they yield the warm
	// hit rate iterative programs are tuned by.
	ResidentHits   int64
	ResidentMisses int64
}

// Span is one task attempt's lifecycle: submit (driver queued it),
// start (a worker or slave began executing), end (result or error
// reported). Retried tasks produce one span per attempt.
type Span struct {
	TraceID int64
	// Job is the namespace the task ran in (0 = the default single
	// job). Concurrent jobs traced by one tracer export as separate
	// Chrome-trace processes so their timelines do not interleave.
	Job     int64
	Dataset int
	Task    int
	Kind    string // "map" / "reduce"
	Func    string
	Attempt int
	Worker  string
	Submit  time.Time
	Start   time.Time
	End     time.Time
	Timing  Timing
	Err     string // "" on success
}

type spanKey struct {
	id      int64
	attempt int
	worker  string
}

// Tracer records task spans. All methods are nil-safe no-ops, so
// instrumentation can run unconditionally; IDs issued by a nil tracer
// are 0 and 0-IDs are ignored on the start/finish side.
type Tracer struct {
	mu     sync.Mutex
	clk    clock.Clock
	base   time.Time
	nextID int64
	subs   map[int64]*Span // submitted, not yet started (template span)
	open   map[spanKey]*Span
	done   []*Span
}

// NewTracer returns a Tracer stamping events from clk (nil = wall
// clock). The first timestamp taken becomes the trace's time origin.
func NewTracer(clk clock.Clock) *Tracer {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Tracer{
		clk:  clk,
		base: clk.Now(),
		subs: map[int64]*Span{},
		open: map[spanKey]*Span{},
	}
}

// TaskSubmitted records that the driver queued a task and returns its
// trace ID (which travels with the TaskSpec, over RPC if need be).
// Returns 0 on a nil tracer. The span lands in the default job-0
// namespace; multi-tenant drivers use TaskSubmittedJob.
func (t *Tracer) TaskSubmitted(dataset, task int, kind, fn string) int64 {
	return t.TaskSubmittedJob(0, dataset, task, kind, fn)
}

// TaskSubmittedJob is TaskSubmitted within a job's trace namespace:
// the span remembers the job, and the Chrome-trace export gives each
// job its own process lane.
func (t *Tracer) TaskSubmittedJob(job int64, dataset, task int, kind, fn string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := t.nextID
	t.subs[id] = &Span{
		TraceID: id,
		Job:     job,
		Dataset: dataset,
		Task:    task,
		Kind:    kind,
		Func:    fn,
		Submit:  t.clk.Now(),
	}
	return id
}

// TaskStarted records that attempt `attempt` of task `id` began
// executing on the named worker (a local pool worker, a slave, or — in
// a hierarchical fleet — the node a level of the tree dispatched it
// to). Spans are keyed by (id, attempt, worker), so a root master and a
// sub-master may each record their own span for the same attempt: the
// root's span covers the task's residence at its node, the sub-master's
// the execution on the leaf slave. Each level is its own trace lane.
func (t *Tracer) TaskStarted(id int64, attempt int, worker string) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tmpl, ok := t.subs[id]
	if !ok {
		return
	}
	sp := *tmpl // copy submit-time fields; retries share them
	sp.Attempt = attempt
	sp.Worker = worker
	sp.Start = t.clk.Now()
	t.open[spanKey{id, attempt, worker}] = &sp
}

// TaskFinished closes the span for attempt `attempt` of task `id` on
// the named worker with its measured timing and error ("" on success).
// Unknown (never started) spans are ignored, which makes finish paths
// idempotent.
func (t *Tracer) TaskFinished(id int64, attempt int, worker string, tm Timing, errMsg string) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp, ok := t.open[spanKey{id, attempt, worker}]
	if !ok {
		return
	}
	delete(t.open, spanKey{id, attempt, worker})
	sp.End = t.clk.Now()
	sp.Timing = tm
	sp.Err = errMsg
	t.done = append(t.done, sp)
}

// Spans returns a copy of every finished span, in the deterministic
// export order (job, dataset, task, attempt, worker).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.done))
	for i, sp := range t.done {
		out[i] = *sp
	}
	t.mu.Unlock()
	sortSpans(out)
	return out
}

// NumSpans returns the number of finished spans.
func (t *Tracer) NumSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.done)
}

// sortSpans orders spans by logical identity, not by trace ID: trace
// IDs are issued in submission order, which under a concurrent
// scheduler depends on goroutine interleaving, while (dataset, task,
// attempt) is a property of the job itself. With a fake clock (all
// timestamps equal) this makes trace output byte-identical across
// runs on a single-worker executor.
func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, k int) bool {
		a, b := spans[i], spans[k]
		if a.Job != b.Job {
			return a.Job < b.Job
		}
		if a.Dataset != b.Dataset {
			return a.Dataset < b.Dataset
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.Attempt != b.Attempt {
			return a.Attempt < b.Attempt
		}
		return a.Worker < b.Worker
	})
}

// ---------------------------------------------------------------------------
// Chrome trace-event export

// chromeEvent is one entry of the Chrome trace-event JSON format
// (ph "X" = complete event, ph "M" = metadata). Field order is fixed by
// the struct, so marshaling is deterministic.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	Ts   int64       `json:"ts"`
	Dur  *int64      `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Dataset    int    `json:"dataset"`
	Task       int    `json:"task"`
	Attempt    int    `json:"attempt"`
	Func       string `json:"func,omitempty"`
	Worker     string `json:"worker,omitempty"`
	ScheduleUS int64  `json:"schedule_us"`
	WallUS     int64  `json:"wall_us"`
	ShuffleUS  int64  `json:"shuffle_us"`
	InBytes    int64  `json:"in_bytes"`
	InRecords  int64  `json:"in_records"`
	OutBytes   int64  `json:"out_bytes"`
	OutRecords int64  `json:"out_records"`
	// Resident-cache annotations; omitted for non-Resident tasks so
	// pre-residency traces stay byte-identical.
	ResidentHits   int64  `json:"resident_hits,omitempty"`
	ResidentMisses int64  `json:"resident_misses,omitempty"`
	Error          string `json:"error,omitempty"`
}

type chromeWhoIs struct {
	Name string `json:"name"`
}

// metaEvent mirrors chromeEvent for ph "M" rows, whose args carry a
// single name string instead of task details.
type metaEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Ts   int64       `json:"ts"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Args chromeWhoIs `json:"args"`
}

// WriteChromeTrace exports every finished span as Chrome trace-event
// JSON ({"traceEvents": [...]}), loadable in chrome://tracing and
// Perfetto. One ph "X" (complete) event is emitted per task attempt —
// so the X-event count equals the number of task executions — plus ph
// "M" metadata naming each job's process lane and each worker thread
// lane. Each job exports as its own process (pid = job id, the default
// job as pid 0), so concurrent jobs' timelines never interleave.
// Timestamps are microseconds relative to the tracer's creation.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer")
	}
	spans := t.Spans()
	t.mu.Lock()
	base := t.base
	t.mu.Unlock()

	// Stable worker → tid assignment from the sorted worker-name set
	// (shared across jobs so a slave keeps one lane number everywhere),
	// and the sorted set of job ids for the process metadata.
	workerSet := map[string]bool{}
	jobSet := map[int64]map[string]bool{}
	for _, sp := range spans {
		workerSet[sp.Worker] = true
		if jobSet[sp.Job] == nil {
			jobSet[sp.Job] = map[string]bool{}
		}
		jobSet[sp.Job][sp.Worker] = true
	}
	workers := make([]string, 0, len(workerSet))
	for wname := range workerSet {
		workers = append(workers, wname)
	}
	sort.Strings(workers)
	tid := map[string]int{}
	for i, wname := range workers {
		tid[wname] = i + 1
	}
	jobs := make([]int64, 0, len(jobSet))
	for job := range jobSet {
		jobs = append(jobs, job)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i] < jobs[k] })
	if len(jobs) == 0 {
		jobs = []int64{0}
	}

	var buf []byte
	buf = append(buf, `{"displayTimeUnit":"ms","traceEvents":[`...)
	first := true
	emit := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			buf = append(buf, ',', '\n')
		}
		first = false
		buf = append(buf, b...)
		return nil
	}

	for _, job := range jobs {
		name := "mrs job"
		if job != 0 {
			name = fmt.Sprintf("mrs job %d", job)
		}
		if err := emit(metaEvent{Name: "process_name", Ph: "M", Pid: int(job), Args: chromeWhoIs{Name: name}}); err != nil {
			return err
		}
		for _, wname := range workers {
			if !jobSet[job][wname] {
				continue
			}
			if err := emit(metaEvent{Name: "thread_name", Ph: "M", Pid: int(job), Tid: tid[wname], Args: chromeWhoIs{Name: wname}}); err != nil {
				return err
			}
		}
	}
	for _, sp := range spans {
		ts := sp.Start.Sub(base).Microseconds()
		dur := sp.End.Sub(sp.Start).Microseconds()
		if dur < 0 {
			dur = 0
		}
		sched := sp.Start.Sub(sp.Submit).Microseconds()
		if sched < 0 {
			sched = 0
		}
		ev := chromeEvent{
			Name: fmt.Sprintf("ds%d/t%d %s(%s)", sp.Dataset, sp.Task, sp.Kind, sp.Func),
			Cat:  sp.Kind,
			Ph:   "X",
			Ts:   ts,
			Dur:  &dur,
			Pid:  int(sp.Job),
			Tid:  tid[sp.Worker],
			Args: &chromeArgs{
				Dataset:        sp.Dataset,
				Task:           sp.Task,
				Attempt:        sp.Attempt,
				Func:           sp.Func,
				Worker:         sp.Worker,
				ScheduleUS:     sched,
				WallUS:         sp.Timing.WallNS / 1e3,
				ShuffleUS:      sp.Timing.ShuffleNS / 1e3,
				InBytes:        sp.Timing.InBytes,
				InRecords:      sp.Timing.InRecords,
				OutBytes:       sp.Timing.OutBytes,
				OutRecords:     sp.Timing.OutRecords,
				ResidentHits:   sp.Timing.ResidentHits,
				ResidentMisses: sp.Timing.ResidentMisses,
				Error:          sp.Err,
			},
		}
		if err := emit(ev); err != nil {
			return err
		}
	}
	buf = append(buf, "]}\n"...)
	_, err := w.Write(buf)
	return err
}

// ---------------------------------------------------------------------------
// Trace validation (used by cmd/mrs-tracecheck and the test suite)

// TraceStats summarizes a validated trace file.
type TraceStats struct {
	// Spans is the number of ph "X" (task execution) events.
	Spans int
	// Workers is the number of distinct execution lanes (tids) carrying
	// X events.
	Workers int
	// Datasets is the number of distinct dataset ids seen.
	Datasets int
	// MaxAttempt is the largest attempt number seen (>= 1 when Spans>0).
	MaxAttempt int
	// Errors is the number of spans recording a task error.
	Errors int
}

// ValidateChromeTrace parses data as Chrome trace-event JSON and checks
// the invariants the runtime promises: a traceEvents array; every event
// has name/ph/pid/tid; X events have ts >= 0, dur >= 0, and args with
// dataset/task/attempt >= their minimums. Returns summary stats.
func ValidateChromeTrace(data []byte) (TraceStats, error) {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return TraceStats{}, fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return TraceStats{}, fmt.Errorf("trace: missing traceEvents array")
	}
	var st TraceStats
	workers := map[int]bool{}
	datasets := map[int]bool{}
	for i, raw := range doc.TraceEvents {
		var ev struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   *int64 `json:"ts"`
			Dur  *int64 `json:"dur"`
			Tid  *int   `json:"tid"`
			Pid  *int   `json:"pid"`
			Args *struct {
				Dataset *int   `json:"dataset"`
				Task    *int   `json:"task"`
				Attempt *int   `json:"attempt"`
				Error   string `json:"error"`
			} `json:"args"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return st, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if ev.Name == "" || ev.Ph == "" || ev.Pid == nil || ev.Tid == nil {
			return st, fmt.Errorf("trace: event %d: missing name/ph/pid/tid", i)
		}
		if ev.Ph != "X" {
			continue
		}
		switch {
		case ev.Ts == nil || *ev.Ts < 0:
			return st, fmt.Errorf("trace: event %d (%s): bad ts", i, ev.Name)
		case ev.Dur == nil || *ev.Dur < 0:
			return st, fmt.Errorf("trace: event %d (%s): bad dur", i, ev.Name)
		case ev.Args == nil || ev.Args.Dataset == nil || ev.Args.Task == nil || ev.Args.Attempt == nil:
			return st, fmt.Errorf("trace: event %d (%s): missing args.dataset/task/attempt", i, ev.Name)
		case *ev.Args.Dataset < 0 || *ev.Args.Task < 0 || *ev.Args.Attempt < 1:
			return st, fmt.Errorf("trace: event %d (%s): out-of-range dataset/task/attempt", i, ev.Name)
		}
		st.Spans++
		workers[*ev.Tid] = true
		datasets[*ev.Args.Dataset] = true
		if *ev.Args.Attempt > st.MaxAttempt {
			st.MaxAttempt = *ev.Args.Attempt
		}
		if ev.Args.Error != "" {
			st.Errors++
		}
	}
	st.Workers = len(workers)
	st.Datasets = len(datasets)
	return st, nil
}
