// Package interp models the relative performance of the language
// runtimes compared in §V-B of the Mrs paper: Hadoop's Java, Mrs under
// CPython, Mrs under PyPy, and Mrs calling a C inner loop via ctypes.
//
// Substitution note (see DESIGN.md): we cannot run 2012-era CPython,
// PyPy, and JVM binaries here, and the *shape* of Figure 3 depends only
// on two numbers per series — the framework's fixed overhead and the
// per-sample inner-loop cost. We therefore measure the real Go inner
// loop (internal/halton) live and scale it by calibrated per-tier
// factors. The factors are derived from the paper's own claims:
//
//   - "Mrs … a significant performance advantage when task times are
//     less than around 32 seconds": with a 30 s Hadoop overhead and a
//     0.3 s Mrs overhead, equal total time at a 32 s Java-side task
//     requires costPython/costJava ≈ 1.94, i.e. CPython/C ≈ 2.52 when
//     Java/C = 1.30.
//   - "extended to around 40 seconds when using a C module … and the
//     PyPy interpreter": the same algebra at 40 s gives a combined
//     PyPy-tier factor of ≈ 2.27.
//   - "the C function is much faster than the corresponding Java
//     function": C/C = 0.95 < Java/C = 1.30, so the Mrs-with-C series
//     stays below Hadoop everywhere (Figure 3b's key feature).
package interp

import (
	"fmt"
	"time"

	"repro/internal/halton"
)

// Tier is one language runtime in the cost model. Factor is the
// per-inner-loop-iteration cost relative to the measured Go loop.
type Tier struct {
	Name   string
	Factor float64
}

// The calibrated tiers (rationale in the package comment).
var (
	// C is the ctypes inner loop; our Go loop stands in for it.
	C = Tier{Name: "c", Factor: 0.95}
	// Java is Hadoop's runtime (static JIT, slower than C here, per
	// Figure 3b).
	Java = Tier{Name: "java", Factor: 1.30}
	// PyPy is the combined PyPy-plus-C configuration of Figure 3b's
	// narrative claim (crossover extended to ~40 s).
	PyPy = Tier{Name: "pypy", Factor: 2.27}
	// CPython is pure Python under the standard interpreter.
	CPython = Tier{Name: "cpython", Factor: 2.52}
)

// Tiers lists all modeled runtimes.
func Tiers() []Tier { return []Tier{C, Java, PyPy, CPython} }

// ByName resolves a tier.
func ByName(name string) (Tier, error) {
	for _, t := range Tiers() {
		if t.Name == name {
			return t, nil
		}
	}
	return Tier{}, fmt.Errorf("interp: unknown tier %q", name)
}

// Scale converts a measured base duration into this tier's duration.
func (t Tier) Scale(base time.Duration) time.Duration {
	return time.Duration(float64(base) * t.Factor)
}

// ScaleSeconds is Scale for float seconds.
func (t Tier) ScaleSeconds(base float64) float64 { return base * t.Factor }

// CalibrateSampleCost measures the real per-sample cost of the Halton
// pi inner loop (the tier-C baseline) by timing `samples` samples.
func CalibrateSampleCost(samples uint64) time.Duration {
	if samples == 0 {
		samples = 1 << 20
	}
	start := time.Now()
	sink := halton.CountInCircle(0, samples)
	elapsed := time.Since(start)
	_ = sink
	per := elapsed / time.Duration(samples)
	if per <= 0 {
		per = time.Nanosecond
	}
	return per
}

// Model is a fully calibrated analytic model for one framework+tier
// series in Figure 3: total = Startup + Overhead + work/parallelism.
type Model struct {
	// Name labels the series, e.g. "hadoop/java" or "mrs/cpython".
	Name string
	// Startup is paid once per run (Mrs: ~2 s master+slave spin-up;
	// Hadoop in our shape reproduction folds startup into Overhead).
	Startup time.Duration
	// Overhead is paid once per MapReduce operation.
	Overhead time.Duration
	// SampleCost is the per-inner-loop-iteration cost for this series.
	SampleCost time.Duration
	// Parallelism divides the work (number of worker cores).
	Parallelism int
}

// Predict returns the modeled wall time for n samples.
func (m Model) Predict(n uint64) time.Duration {
	p := m.Parallelism
	if p < 1 {
		p = 1
	}
	work := time.Duration(float64(n) * float64(m.SampleCost) / float64(p))
	return m.Startup + m.Overhead + work
}

// CrossoverSamples solves for the sample count at which series a and b
// have equal predicted time; returns 0 if they never cross (same or
// diverging costs).
func CrossoverSamples(a, b Model) uint64 {
	pa, pb := a.Parallelism, b.Parallelism
	if pa < 1 {
		pa = 1
	}
	if pb < 1 {
		pb = 1
	}
	ca := float64(a.SampleCost) / float64(pa)
	cb := float64(b.SampleCost) / float64(pb)
	fixedA := float64(a.Startup + a.Overhead)
	fixedB := float64(b.Startup + b.Overhead)
	dc := ca - cb
	df := fixedB - fixedA
	if dc == 0 || df == 0 {
		return 0
	}
	n := df / dc
	if n <= 0 {
		return 0
	}
	return uint64(n)
}
