package interp

import (
	"testing"
	"time"
)

func TestTierOrdering(t *testing.T) {
	// The calibration must preserve the paper's ordering:
	// C < Java < PyPy < CPython.
	if !(C.Factor < Java.Factor && Java.Factor < PyPy.Factor && PyPy.Factor < CPython.Factor) {
		t.Errorf("tier factors out of order: %v %v %v %v",
			C.Factor, Java.Factor, PyPy.Factor, CPython.Factor)
	}
}

func TestByName(t *testing.T) {
	for _, tier := range Tiers() {
		got, err := ByName(tier.Name)
		if err != nil || got != tier {
			t.Errorf("ByName(%q) = %v, %v", tier.Name, got, err)
		}
	}
	if _, err := ByName("fortran"); err == nil {
		t.Error("unknown tier accepted")
	}
}

func TestScale(t *testing.T) {
	base := 100 * time.Millisecond
	if got := Java.Scale(base); got != 130*time.Millisecond {
		t.Errorf("Java.Scale = %v", got)
	}
	if got := C.ScaleSeconds(10); got != 9.5 {
		t.Errorf("C.ScaleSeconds = %v", got)
	}
}

func TestCalibrateSampleCostPositive(t *testing.T) {
	per := CalibrateSampleCost(1 << 16)
	if per <= 0 {
		t.Fatalf("per-sample cost %v", per)
	}
	if per > time.Millisecond {
		t.Errorf("per-sample cost %v implausibly slow", per)
	}
}

func TestModelPredictComposition(t *testing.T) {
	m := Model{
		Startup:     2 * time.Second,
		Overhead:    300 * time.Millisecond,
		SampleCost:  100 * time.Nanosecond,
		Parallelism: 4,
	}
	got := m.Predict(4_000_000)
	want := 2*time.Second + 300*time.Millisecond + 100*time.Millisecond
	if got != want {
		t.Errorf("Predict = %v, want %v", got, want)
	}
	// Zero parallelism defaults to 1.
	m.Parallelism = 0
	if m.Predict(0) != 2300*time.Millisecond {
		t.Errorf("Predict with no work = %v", m.Predict(0))
	}
}

// TestPaperCrossoverClaims verifies that the calibrated model places
// the Mrs-vs-Hadoop crossovers where the paper reports them: Hadoop
// overtakes Mrs/CPython when the Hadoop-side task time reaches ~32 s,
// and ~40 s for the PyPy tier; the C tier never crosses.
func TestPaperCrossoverClaims(t *testing.T) {
	const perSample = 30 * time.Nanosecond // arbitrary; cancels out
	hadoop := Model{Name: "hadoop/java", Overhead: 30 * time.Second,
		SampleCost: Java.Scale(perSample), Parallelism: 1}
	mk := func(tier Tier) Model {
		return Model{Name: "mrs/" + tier.Name, Overhead: 300 * time.Millisecond,
			SampleCost: tier.Scale(perSample), Parallelism: 1}
	}

	check := func(tier Tier, wantTaskSeconds, tol float64) {
		n := CrossoverSamples(mk(tier), hadoop)
		if n == 0 {
			t.Fatalf("%s: no crossover found", tier.Name)
		}
		taskTime := float64(n) * float64(hadoop.SampleCost) / float64(time.Second)
		if taskTime < wantTaskSeconds-tol || taskTime > wantTaskSeconds+tol {
			t.Errorf("%s crossover at Hadoop task time %.1fs, want ~%.0fs",
				tier.Name, taskTime, wantTaskSeconds)
		}
	}
	check(CPython, 32, 4)
	check(PyPy, 40, 5)

	if n := CrossoverSamples(mk(C), hadoop); n != 0 {
		t.Errorf("C tier should never cross Hadoop, got crossover at %d samples", n)
	}
}

func TestCrossoverDegenerateCases(t *testing.T) {
	a := Model{Overhead: time.Second, SampleCost: 10}
	if CrossoverSamples(a, a) != 0 {
		t.Error("identical models should not cross")
	}
	b := Model{Overhead: 2 * time.Second, SampleCost: 20}
	// b has higher fixed cost AND higher slope: never crosses from above.
	if CrossoverSamples(b, a) != 0 {
		t.Error("strictly dominated model reported a crossing")
	}
}
