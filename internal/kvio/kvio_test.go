package kvio

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"testing/quick"
)

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	f := func(kv [][2][]byte) bool {
		pairs := make([]Pair, len(kv))
		for i, p := range kv {
			pairs[i] = Pair{Key: p[0], Value: p[1]}
		}
		dec, err := Unmarshal(Marshal(pairs))
		if err != nil {
			return false
		}
		return pairsEqual(pairs, dec)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyStream(t *testing.T) {
	dec, err := Unmarshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Errorf("want no pairs, got %v", dec)
	}
}

func TestEmptyKeyAndValue(t *testing.T) {
	in := []Pair{{}, {Key: []byte{}, Value: []byte{}}, StrPair("", "x"), StrPair("x", "")}
	dec, err := Unmarshal(Marshal(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(in) {
		t.Fatalf("got %d pairs, want %d", len(dec), len(in))
	}
	for i := range in {
		if !bytes.Equal(dec[i].Key, in[i].Key) || !bytes.Equal(dec[i].Value, in[i].Value) {
			t.Errorf("pair %d: got %v want %v", i, dec[i], in[i])
		}
	}
}

func TestTruncatedStream(t *testing.T) {
	data := Marshal([]Pair{StrPair("hello", "world")})
	for cut := 1; cut < len(data); cut++ {
		_, err := Unmarshal(data[:cut])
		if err == nil {
			t.Errorf("truncation at %d: expected error", cut)
		}
		if err == io.EOF {
			t.Errorf("truncation at %d: io.EOF should be reserved for clean ends", cut)
		}
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	// Hand-craft a header that declares a huge key.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // uvarint > MaxRecordLen
	_, err := NewReader(&buf).Read()
	if err != ErrRecordTooLarge {
		t.Errorf("got %v, want ErrRecordTooLarge", err)
	}
}

func TestReaderCount(t *testing.T) {
	in := []Pair{StrPair("a", "1"), StrPair("b", "2"), StrPair("c", "3")}
	r := NewReader(bytes.NewReader(Marshal(in)))
	for i := 0; i < len(in); i++ {
		if _, err := r.Read(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if r.Count() != 3 {
		t.Errorf("Count = %d, want 3", r.Count())
	}
}

func TestWriterCounters(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(StrPair("key", "value")); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(StrPair("k", "v")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2 {
		t.Errorf("Count = %d, want 2", w.Count())
	}
	if w.Bytes() != int64(len("keyvalue")+len("kv")) {
		t.Errorf("Bytes = %d", w.Bytes())
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(&failWriter{n: 4})
	big := Pair{Key: make([]byte, 1<<20), Value: nil}
	err1 := w.Write(big)
	if err1 == nil {
		err1 = w.Flush()
	}
	if err1 == nil {
		t.Fatal("expected write error")
	}
	if err2 := w.Write(StrPair("a", "b")); err2 == nil {
		t.Error("expected sticky error on subsequent write")
	}
}

func TestReadAfterError(t *testing.T) {
	data := Marshal([]Pair{StrPair("hello", "world")})
	r := NewReader(bytes.NewReader(data[:3]))
	_, err1 := r.Read()
	if err1 == nil {
		t.Fatal("expected error")
	}
	_, err2 := r.Read()
	if err2 != err1 {
		t.Errorf("error not sticky: %v then %v", err1, err2)
	}
}

func TestPairClone(t *testing.T) {
	p := StrPair("abc", "def")
	c := p.Clone()
	p.Key[0] = 'X'
	p.Value[0] = 'Y'
	if string(c.Key) != "abc" || string(c.Value) != "def" {
		t.Errorf("Clone aliases original: %v", c)
	}
}

func TestKeyLess(t *testing.T) {
	a, b := StrPair("a", ""), StrPair("b", "")
	if !KeyLess(a, b) || KeyLess(b, a) || KeyLess(a, a) {
		t.Error("KeyLess ordering wrong")
	}
}

func TestSliceEmitterCopies(t *testing.T) {
	var e SliceEmitter
	key := []byte("k")
	if err := e.Emit(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	key[0] = 'X'
	if string(e.Pairs[0].Key) != "k" {
		t.Error("SliceEmitter aliased the emitted key")
	}
}

func TestCountingEmitter(t *testing.T) {
	var inner SliceEmitter
	c := CountingEmitter{Next: &inner}
	if err := c.Emit([]byte("ab"), []byte("cde")); err != nil {
		t.Fatal(err)
	}
	if err := c.Emit(nil, nil); err != nil {
		t.Fatal(err)
	}
	if c.Records != 2 || c.Bytes != 5 {
		t.Errorf("Records=%d Bytes=%d, want 2, 5", c.Records, c.Bytes)
	}
	if len(inner.Pairs) != 2 {
		t.Errorf("inner got %d pairs", len(inner.Pairs))
	}
}

func TestCountingEmitterNilNext(t *testing.T) {
	var c CountingEmitter
	if err := c.Emit([]byte("x"), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if c.Records != 1 {
		t.Error("nil-Next CountingEmitter should still count")
	}
}

func TestFuncEmitter(t *testing.T) {
	var got []string
	f := FuncEmitter(func(k, v []byte) error {
		got = append(got, string(k)+"="+string(v))
		return nil
	})
	if err := f.Emit([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"a=1"}) {
		t.Errorf("got %v", got)
	}
}

func TestStreamInterleavedReadWrite(t *testing.T) {
	// Writer output must be readable record-by-record as it streams.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := w.Write(Pair{Key: []byte{byte(i)}, Value: []byte{byte(i >> 8)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i := 0; i < n; i++ {
		p, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if p.Key[0] != byte(i) || p.Value[0] != byte(i>>8) {
			t.Fatalf("record %d mismatch: %v", i, p)
		}
	}
}

func TestReadSharedAliasesBuffer(t *testing.T) {
	in := []Pair{StrPair("first", "1111"), StrPair("second-key", "2222")}
	r := NewReader(bytes.NewReader(Marshal(in)))
	defer r.Release()
	p1, err := r.ReadShared()
	if err != nil {
		t.Fatal(err)
	}
	if string(p1.Key) != "first" || string(p1.Value) != "1111" {
		t.Fatalf("record 0: %v", p1)
	}
	k1 := string(p1.Key) // copy before the buffer is reused
	p2, err := r.ReadShared()
	if err != nil {
		t.Fatal(err)
	}
	if string(p2.Key) != "second-key" || string(p2.Value) != "2222" {
		t.Fatalf("record 1: %v", p2)
	}
	if k1 != "first" {
		t.Fatal("copied key mutated")
	}
	if _, err := r.ReadShared(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReleaseMakesUseFail(t *testing.T) {
	r := NewReader(bytes.NewReader(Marshal([]Pair{StrPair("a", "b")})))
	r.Release()
	r.Release() // idempotent
	if _, err := r.Read(); err != ErrReleased {
		t.Errorf("Read after Release: got %v, want ErrReleased", err)
	}
	if _, err := r.ReadShared(); err != ErrReleased {
		t.Errorf("ReadShared after Release: got %v, want ErrReleased", err)
	}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(StrPair("a", "b")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.Release()
	w.Release() // idempotent
	if err := w.Write(StrPair("c", "d")); err != ErrReleased {
		t.Errorf("Write after Release: got %v, want ErrReleased", err)
	}
	if err := w.Flush(); err != ErrReleased {
		t.Errorf("Flush after Release: got %v, want ErrReleased", err)
	}
}

func BenchmarkWriteRead(b *testing.B) {
	pair := StrPair("some-moderate-key", "some-moderate-value-payload")
	b.SetBytes(int64(len(pair.Key) + len(pair.Value)))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < b.N; i++ {
		if err := w.Write(pair); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if _, err := NewReader(&buf).ReadAll(); err != nil {
		b.Fatal(err)
	}
}
