package kvio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strconv"
	"strings"
	"testing"

	"repro/internal/wirecodec"
)

// columnarStream builds a columnar block stream of pairs with the named
// codec, block size, and key encoding (KeyEncAuto for per-block choice).
func columnarStream(t testing.TB, pairs []Pair, codecName string, blockSize, keyEnc int) []byte {
	t.Helper()
	c, ok := wirecodec.Lookup(codecName)
	if !ok {
		t.Fatalf("codec %q not registered", codecName)
	}
	var buf bytes.Buffer
	w := NewBlockWriterEnc(&buf, c, blockSize, BlockEncoding{Columnar: true, KeyEnc: keyEnc})
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// repetitivePairs emits n records over few distinct keys — the shuffle
// shape dictionary encoding exists for.
func repetitivePairs(n int) []Pair {
	out := make([]Pair, n)
	for i := range out {
		out[i] = StrPair("key-"+strconv.Itoa(i%37), "v"+strconv.Itoa(i))
	}
	return out
}

func keyEncName(enc int) string {
	switch enc {
	case KeyEncAuto:
		return "auto"
	case KeyEncRaw:
		return "raw"
	case KeyEncDict:
		return "dict"
	case KeyEncDelta:
		return "delta"
	}
	return "?"
}

func TestColumnarRoundTripAllCodecsAllKeyEncodings(t *testing.T) {
	for _, mk := range []struct {
		name  string
		pairs []Pair
	}{
		{"distinct", testPairs(3000)},
		{"repetitive", repetitivePairs(3000)},
		{"empty-kv", []Pair{StrPair("", ""), StrPair("k", ""), StrPair("", "v")}},
	} {
		for _, codecName := range wirecodec.Names() {
			for _, keyEnc := range []int{KeyEncAuto, KeyEncRaw, KeyEncDict, KeyEncDelta} {
				for _, blockSize := range []int{1, 700, DefaultBlockSize} {
					name := mk.name + "/" + codecName + "/" + keyEncName(keyEnc) + "/bs=" + strconv.Itoa(blockSize)
					t.Run(name, func(t *testing.T) {
						wire := columnarStream(t, mk.pairs, codecName, blockSize, keyEnc)
						r, err := NewBlockReader(bytes.NewReader(wire))
						if err != nil {
							t.Fatal(err)
						}
						defer r.Release()
						got, err := r.ReadAll()
						if err != nil {
							t.Fatal(err)
						}
						if !pairsEqual(mk.pairs, got) {
							t.Fatalf("round trip mismatch: %d in, %d out", len(mk.pairs), len(got))
						}
					})
				}
			}
		}
	}
}

func TestColumnarNextAnyYieldsColumnarBlocks(t *testing.T) {
	pairs := repetitivePairs(2000)
	wire := columnarStream(t, pairs, wirecodec.LZName, 2048, KeyEncDict)
	r, err := NewBlockReader(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	i := 0
	for {
		rows, cb, recs, err := r.NextAny()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rows != nil || cb == nil {
			t.Fatalf("NextAny on columnar stream returned rows=%v cb=%v", rows != nil, cb != nil)
		}
		if cb.Len() != recs {
			t.Fatalf("cb.Len() = %d, recs = %d", cb.Len(), recs)
		}
		if cb.KeyEncoding() != KeyEncDict {
			t.Fatalf("key encoding = %d, want dict", cb.KeyEncoding())
		}
		if cb.DictLen() < 0 {
			t.Fatal("DictLen < 0 on a dict block")
		}
		var payload int64
		for j := 0; j < cb.Len(); j++ {
			p := pairs[i]
			if !bytes.Equal(cb.Key(j), p.Key) || !bytes.Equal(cb.Value(j), p.Value) {
				t.Fatalf("record %d mismatch: (%q,%q) want %v", i, cb.Key(j), cb.Value(j), p)
			}
			if !bytes.Equal(cb.DictKey(cb.DictIndex(j)), p.Key) {
				t.Fatalf("dict accessor mismatch at record %d", i)
			}
			payload += int64(len(p.Key) + len(p.Value))
			i++
		}
		if cb.PayloadBytes() != payload {
			t.Fatalf("PayloadBytes = %d, want %d", cb.PayloadBytes(), payload)
		}
	}
	if i != len(pairs) {
		t.Fatalf("drained %d records, want %d", i, len(pairs))
	}
}

func TestColumnarAutoKeyEncoding(t *testing.T) {
	// Repetitive keys must pick dict; sorted keys sharing long prefixes
	// must pick delta; incompressible distinct keys fall back to raw.
	long := make([]Pair, 200)
	for i := range long {
		long[i] = StrPair("a-very-long-shared-key-prefix/"+strconv.Itoa(100000+i), "v")
	}
	distinct := make([]Pair, 200)
	for i := range distinct {
		distinct[i] = StrPair(string([]byte{byte(i), byte(i * 7), byte(i * 13)}), "v")
	}
	for _, mk := range []struct {
		name  string
		pairs []Pair
		want  int
	}{
		{"repetitive->dict", repetitivePairs(500), KeyEncDict},
		{"front-codable->delta", long, KeyEncDelta},
		{"distinct->raw", distinct, KeyEncRaw},
	} {
		t.Run(mk.name, func(t *testing.T) {
			wire := columnarStream(t, mk.pairs, wirecodec.IdentityName, 0, KeyEncAuto)
			r, err := NewBlockReader(bytes.NewReader(wire))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Release()
			_, cb, _, err := r.NextAny()
			if err != nil {
				t.Fatal(err)
			}
			if cb.KeyEncoding() != mk.want {
				t.Fatalf("auto chose encoding %s, want %s", keyEncName(cb.KeyEncoding()), keyEncName(mk.want))
			}
		})
	}
}

func TestColumnarNextBlockFlattens(t *testing.T) {
	pairs := repetitivePairs(800)
	wire := columnarStream(t, pairs, wirecodec.DeflateName, 1024, KeyEncAuto)
	r, err := NewBlockReader(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	var got []Pair
	for {
		payload, recs, err := r.NextBlock()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n, err := ScanRecords(payload, func(key, value []byte) error {
			got = append(got, Pair{Key: key, Value: value}.Clone())
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != recs {
			t.Fatalf("flattened block scanned %d records, header said %d", n, recs)
		}
	}
	if !pairsEqual(pairs, got) {
		t.Fatal("NextBlock flatten mismatch")
	}
}

func TestColumnarMixedKindStream(t *testing.T) {
	// Row and columnar blocks interleave freely under one magic: a
	// columnar writer accepts pre-framed row payloads (the transcode
	// surface) without disturbing its own pending records.
	var buf bytes.Buffer
	w := NewBlockWriterEnc(&buf, wirecodec.Identity(), 0, BlockEncoding{Columnar: true, KeyEnc: KeyEncDict})
	var want []Pair
	add := func(p Pair) {
		want = append(want, p)
	}
	for i := 0; i < 10; i++ {
		p := StrPair("col-"+strconv.Itoa(i%3), "v"+strconv.Itoa(i))
		add(p)
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	rowPairs := testPairs(10)
	rowPayload := Marshal(rowPairs)
	for _, p := range rowPairs {
		add(p)
	}
	if err := w.WriteBlock(rowPayload, len(rowPairs)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p := StrPair("tail-"+strconv.Itoa(i%3), "w"+strconv.Itoa(i))
		add(p)
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewBlockReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(want, got) {
		t.Fatalf("mixed-kind stream mismatch: %d in, %d out", len(want), len(got))
	}
}

func TestTranscodeBlocksPreservesColumnarKind(t *testing.T) {
	pairs := repetitivePairs(1500)
	src := columnarStream(t, pairs, wirecodec.IdentityName, 2048, KeyEncDict)
	lz, _ := wirecodec.Lookup(wirecodec.LZName)
	var out bytes.Buffer
	if err := TranscodeBlocks(&out, bytes.NewReader(src), lz); err != nil {
		t.Fatal(err)
	}
	r, err := NewBlockReader(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	var got []Pair
	blocks := 0
	for {
		rows, cb, _, err := r.NextAny()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rows != nil || cb == nil {
			t.Fatal("transcode flattened a columnar block")
		}
		if cb.KeyEncoding() != KeyEncDict {
			t.Fatalf("transcode changed key encoding to %s", keyEncName(cb.KeyEncoding()))
		}
		for i := 0; i < cb.Len(); i++ {
			got = append(got, Pair{Key: cb.Key(i), Value: cb.Value(i)}.Clone())
		}
		blocks++
	}
	if !pairsEqual(pairs, got) {
		t.Fatal("transcoded columnar stream mis-decodes")
	}
	if blocks == 0 {
		t.Fatal("no blocks seen")
	}
}

func TestTranscodeToRowBlocksFlattensColumnar(t *testing.T) {
	pairs := repetitivePairs(1200)
	src := columnarStream(t, pairs, wirecodec.LZName, 4096, KeyEncAuto)
	lz, _ := wirecodec.Lookup(wirecodec.LZName)
	var out bytes.Buffer
	if err := TranscodeToRowBlocks(&out, bytes.NewReader(src), lz); err != nil {
		t.Fatal(err)
	}
	r, err := NewBlockReader(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	var got []Pair
	for {
		rows, cb, _, err := r.NextAny()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if cb != nil {
			t.Fatal("TranscodeToRowBlocks left a columnar block in the stream")
		}
		if _, err := ScanRecords(rows, func(key, value []byte) error {
			got = append(got, Pair{Key: key, Value: value}.Clone())
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !pairsEqual(pairs, got) {
		t.Fatal("row-block fallback mis-decodes")
	}
}

func TestTranscodeToRecordsFlattensColumnar(t *testing.T) {
	pairs := repetitivePairs(900)
	src := columnarStream(t, pairs, wirecodec.DeflateName, 2048, KeyEncAuto)
	var out bytes.Buffer
	if err := TranscodeToRecords(&out, bytes.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	// The result must be a pure legacy stream a pre-block Reader parses.
	r := NewReader(bytes.NewReader(out.Bytes()))
	defer r.Release()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(pairs, got) {
		t.Fatal("TranscodeToRecords on columnar stream mis-decodes")
	}
}

// columnarIdentityLayout computes the offsets of the key and value
// payloads of a single-block identity columnar stream, so corruption
// tests can target one column at a time.
func columnarIdentityLayout(t *testing.T, wire []byte, keys, vals [][]byte, keyEnc int) (keyOff, keyLen, valOff, valLen int) {
	t.Helper()
	keyLen = 0
	switch keyEnc {
	case KeyEncRaw:
		for _, k := range keys {
			keyLen += uvarintLen(uint64(len(k))) + len(k)
		}
	default:
		t.Fatalf("layout helper only supports raw key encoding")
	}
	for _, v := range vals {
		valLen += uvarintLen(uint64(len(v))) + len(v)
	}
	valOff = len(wire) - valLen
	keyOff = valOff - keyLen
	if keyOff < len(BlockMagic) {
		t.Fatalf("layout arithmetic broken: keyOff=%d", keyOff)
	}
	return
}

func TestColumnarPerColumnCRC(t *testing.T) {
	pairs := testPairs(50)
	keys := make([][]byte, len(pairs))
	vals := make([][]byte, len(pairs))
	for i, p := range pairs {
		keys[i], vals[i] = p.Key, p.Value
	}
	wire := columnarStream(t, pairs, wirecodec.IdentityName, 0, KeyEncRaw)
	keyOff, _, valOff, _ := columnarIdentityLayout(t, wire, keys, vals, KeyEncRaw)
	for _, mk := range []struct {
		name string
		off  int
	}{
		{"key column", keyOff},
		{"value column", valOff},
	} {
		t.Run(mk.name, func(t *testing.T) {
			bad := append([]byte(nil), wire...)
			bad[mk.off] ^= 0x5A
			r, err := NewBlockReader(bytes.NewReader(bad))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Release()
			_, err = r.ReadAll()
			if !errors.Is(err, ErrBlockChecksum) {
				t.Fatalf("corrupt %s: got %v, want ErrBlockChecksum", mk.name, err)
			}
			if !strings.Contains(err.Error(), mk.name) {
				t.Fatalf("checksum error does not name the column: %v", err)
			}
		})
	}
}

func TestColumnarTruncatedStream(t *testing.T) {
	pairs := testPairs(200)
	wire := columnarStream(t, pairs, wirecodec.LZName, 0, KeyEncRaw)
	for _, cut := range []int{len(BlockMagic) + 1, len(BlockMagic) + 8, len(wire) / 2, len(wire) - 1} {
		r, err := NewBlockReader(bytes.NewReader(wire[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		_, err = r.ReadAll()
		if err == nil || err == io.EOF {
			t.Fatalf("truncated at %d: no error", cut)
		}
		r.Release()
	}
}

func TestColumnarRejectsBadDeltaPrefix(t *testing.T) {
	// A delta record claiming a shared prefix longer than the previous
	// key must be rejected, not read out of bounds.
	keyCol := binary.AppendUvarint(nil, 5) // shared=5 with no previous key
	keyCol = binary.AppendUvarint(keyCol, 0)
	valCol := binary.AppendUvarint(nil, 0) // one empty value
	var buf bytes.Buffer
	w := NewBlockWriter(&buf, nil, 0)
	if err := w.WriteColumnarRaw(1, KeyEncDelta, keyCol, valCol); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewBlockReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	if _, err := r.ReadAll(); !errors.Is(err, ErrBlockCorrupt) {
		t.Fatalf("bad delta prefix: got %v, want ErrBlockCorrupt", err)
	}
}

func TestColumnarWriterCounters(t *testing.T) {
	pairs := repetitivePairs(500)
	var buf bytes.Buffer
	w := NewBlockWriterEnc(&buf, wirecodec.Identity(), 1024, BlockEncoding{Columnar: true, KeyEnc: KeyEncAuto})
	var payload int64
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
		payload += int64(len(p.Key) + len(p.Value))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(pairs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(pairs))
	}
	if w.Bytes() != payload {
		t.Fatalf("Bytes = %d, want %d", w.Bytes(), payload)
	}
	if w.ColumnarBlocks() == 0 {
		t.Fatal("ColumnarBlocks = 0 after columnar writes")
	}
}

func TestParseBlockEncoding(t *testing.T) {
	for name, want := range map[string]BlockEncoding{
		"":               {},
		EncRow:           {},
		EncColumnar:      {Columnar: true, KeyEnc: KeyEncAuto},
		EncColumnarRaw:   {Columnar: true, KeyEnc: KeyEncRaw},
		EncColumnarDict:  {Columnar: true, KeyEnc: KeyEncDict},
		EncColumnarDelta: {Columnar: true, KeyEnc: KeyEncDelta},
	} {
		got, err := ParseBlockEncoding(name)
		if err != nil || got != want {
			t.Fatalf("ParseBlockEncoding(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseBlockEncoding("zebra"); err == nil {
		t.Fatal("unknown encoding accepted")
	}
}
