package kvio

// Block framing: the batched record format that replaced per-record
// wire framing. A block stream is
//
//	magic | block*
//
// where each block is
//
//	uvarint records      record count (0 allowed)
//	uvarint rawLen       uncompressed payload bytes
//	uvarint nameLen|name compression codec wire name (internal/wirecodec)
//	uvarint payloadLen   stored payload bytes
//	crc32   (4 bytes LE) IEEE CRC of the stored payload
//	payload              codec-compressed record run
//
// and the payload decompresses to `records` records in the classic
// per-record framing (uvarint keyLen|key|uvarint valueLen|value).
// Compression and integrity checking run once per ~BlockSize bytes
// instead of once per record, the header makes every block
// self-describing (a reader needs no out-of-band codec agreement), and
// a decoded block can be handed to the shuffle sorter as one arena slab
// (Sorter.AddBlock) without copying record bytes again.
//
// The magic is chosen so no valid legacy stream can begin with it: its
// first five bytes decode as a uvarint key length far above
// MaxRecordLen, which legacy writers never produce and legacy readers
// reject. NewAnyReader uses this to take byte streams of either framing
// and pick the right reader, which is what keeps mixed-version fleets
// and pre-block at-rest files readable.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/wirecodec"
)

// BlockMagic prefixes every block-framed stream.
var BlockMagic = [6]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x1F, 0x01}

// DefaultBlockSize is the target uncompressed payload per block.
// 64 KiB amortizes codec and CRC setup over many records while keeping
// the decode working set inside L2.
const DefaultBlockSize = 64 << 10

// MaxBlockLen bounds a single block's raw and stored payload,
// protecting readers from corrupted or adversarial headers.
const MaxBlockLen = 1 << 27

// Block-framing errors. ErrBlockChecksum means the stored payload did
// not match its header CRC; ErrBlockCorrupt covers every other
// malformed-header or malformed-payload case.
var (
	ErrBlockChecksum = errors.New("kvio: block checksum mismatch")
	ErrBlockCorrupt  = errors.New("kvio: corrupt block")
)

// ---------------------------------------------------------------------------
// BlockWriter

// BlockWriter serializes pairs into a block-framed stream. Records
// accumulate uncompressed until the target block size is reached, then
// the whole run is compressed, checksummed, and emitted as one block.
// Close (or Flush) emits the final partial block.
type BlockWriter struct {
	w         io.Writer
	codec     wirecodec.Codec
	blockSize int

	raw   []byte // pending records in per-record framing
	recs  int    // records pending in raw
	comp  bytes.Buffer
	wrote bool // magic emitted

	n     int64 // records written (total)
	bytes int64 // payload bytes written (keys+values, no framing)
	err   error
}

// NewBlockWriter returns a BlockWriter on w compressing each block with
// codec (nil = identity). blockSize <= 0 selects DefaultBlockSize.
func NewBlockWriter(w io.Writer, codec wirecodec.Codec, blockSize int) *BlockWriter {
	if codec == nil {
		codec = wirecodec.Identity()
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &BlockWriter{w: w, codec: codec, blockSize: blockSize, raw: make([]byte, 0, blockSize+1024)}
}

// Write appends one record to the pending block, emitting a block when
// the target size is reached.
func (w *BlockWriter) Write(p Pair) error {
	if w.err != nil {
		return w.err
	}
	w.raw = binary.AppendUvarint(w.raw, uint64(len(p.Key)))
	w.raw = append(w.raw, p.Key...)
	w.raw = binary.AppendUvarint(w.raw, uint64(len(p.Value)))
	w.raw = append(w.raw, p.Value...)
	w.recs++
	w.n++
	w.bytes += int64(len(p.Key) + len(p.Value))
	if len(w.raw) >= w.blockSize {
		w.err = w.emitBlock()
	}
	return w.err
}

// writeMagic emits the stream prefix once.
func (w *BlockWriter) writeMagic() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	_, err := w.w.Write(BlockMagic[:])
	return err
}

// emit compresses, checksums, and writes one block of raw record bytes.
func (w *BlockWriter) emit(raw []byte, recs int) error {
	if err := w.writeMagic(); err != nil {
		return err
	}
	if recs == 0 {
		return nil
	}
	name := w.codec.Name()
	payload := raw
	if name != wirecodec.IdentityName {
		w.comp.Reset()
		cw := w.codec.NewWriter(&w.comp)
		if _, err := cw.Write(raw); err != nil {
			cw.Close()
			return err
		}
		if err := cw.Close(); err != nil {
			return err
		}
		payload = w.comp.Bytes()
	}
	var hdr [4*binary.MaxVarintLen64 + 64]byte
	n := binary.PutUvarint(hdr[:], uint64(recs))
	n += binary.PutUvarint(hdr[n:], uint64(len(raw)))
	n += binary.PutUvarint(hdr[n:], uint64(len(name)))
	n += copy(hdr[n:], name)
	n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.ChecksumIEEE(payload))
	n += 4
	if _, err := w.w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.w.Write(payload)
	return err
}

// emitBlock writes the pending records as one block.
func (w *BlockWriter) emitBlock() error {
	err := w.emit(w.raw, w.recs)
	w.raw = w.raw[:0]
	w.recs = 0
	return err
}

// WriteBlock emits a pre-framed record run (records in legacy framing,
// e.g. a payload handed over by BlockReader.NextBlock) as one block,
// flushing any pending per-record writes first so order is preserved.
// This is the transcoding path: a server re-encoding an at-rest block
// file under a different codec never parses individual records.
func (w *BlockWriter) WriteBlock(payload []byte, recs int) error {
	if w.err != nil {
		return w.err
	}
	if w.err = w.emitBlock(); w.err != nil {
		return w.err
	}
	if w.err = w.emit(payload, recs); w.err != nil {
		return w.err
	}
	w.n += int64(recs)
	w.bytes += int64(len(payload)) // includes record framing; close enough for accounting
	return nil
}

// Flush emits the pending partial block (and the stream magic, so even
// an empty stream is well-formed block framing).
func (w *BlockWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.emitBlock()
	return w.err
}

// Close flushes; the writer must not be used afterwards.
func (w *BlockWriter) Close() error {
	return w.Flush()
}

// Count returns the number of records written so far.
func (w *BlockWriter) Count() int64 { return w.n }

// Bytes returns the payload bytes written so far (pre-compression).
func (w *BlockWriter) Bytes() int64 { return w.bytes }

// ---------------------------------------------------------------------------
// BlockReader

// BlockReader parses a block-framed stream. It verifies each block's
// CRC before decompressing, resolves the block's codec from the
// wirecodec registry, and serves records either one at a time (Read /
// ReadShared) or a whole decoded block at once (NextBlock, the
// zero-copy path into the shuffle sorter).
type BlockReader struct {
	br       *bufio.Reader
	ownsBuf  bool // br came from the shared pool
	block    []byte
	off      int
	recsLeft int
	payload  []byte // compressed-payload scratch
	n        int64
	rawBytes int64
	err      error
}

// NewBlockReader returns a BlockReader on r, consuming and verifying
// the stream magic.
func NewBlockReader(r io.Reader) (*BlockReader, error) {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	got, err := br.Peek(len(BlockMagic))
	if err != nil || !bytes.Equal(got, BlockMagic[:]) {
		br.Reset(nil)
		readerPool.Put(br)
		if err != nil && err != io.EOF {
			return nil, err
		}
		return nil, fmt.Errorf("%w: missing block magic", ErrBlockCorrupt)
	}
	br.Discard(len(BlockMagic))
	return &BlockReader{br: br, ownsBuf: true}, nil
}

// newBlockReaderAt wraps an existing bufio whose magic has already been
// consumed; used by NewAnyReader after sniffing.
func newBlockReaderAt(br *bufio.Reader, ownsBuf bool) *BlockReader {
	return &BlockReader{br: br, ownsBuf: ownsBuf}
}

// Release returns pooled state. Safe to call more than once.
func (r *BlockReader) Release() {
	if r.br != nil && r.ownsBuf {
		r.br.Reset(nil)
		readerPool.Put(r.br)
	}
	r.br = nil
	r.block = nil
	r.payload = nil
	if r.err == nil {
		r.err = ErrReleased
	}
}

// Count returns the number of records read so far.
func (r *BlockReader) Count() int64 { return r.n }

// RawBytes returns the decoded (pre-compression) payload bytes
// consumed so far, including blocks handed off via NextBlock.
func (r *BlockReader) RawBytes() int64 { return r.rawBytes }

// readHeader parses one block header. An io.EOF before the first
// header byte is the clean end of stream.
func (r *BlockReader) readHeader() (recs, rawLen int, codec wirecodec.Codec, payloadLen int, crc uint32, err error) {
	u := func(atStart bool) (int, error) {
		v, uerr := binary.ReadUvarint(r.br)
		if uerr != nil {
			if uerr == io.EOF && !atStart {
				return 0, io.ErrUnexpectedEOF
			}
			return 0, uerr
		}
		if v > MaxBlockLen {
			return 0, fmt.Errorf("%w: length %d exceeds MaxBlockLen", ErrBlockCorrupt, v)
		}
		return int(v), nil
	}
	if recs, err = u(true); err != nil {
		return
	}
	if rawLen, err = u(false); err != nil {
		return
	}
	nameLen, err := u(false)
	if err != nil {
		return
	}
	if nameLen > 64 {
		err = fmt.Errorf("%w: codec name length %d", ErrBlockCorrupt, nameLen)
		return
	}
	var nameBuf [64]byte
	if _, err = io.ReadFull(r.br, nameBuf[:nameLen]); err != nil {
		err = noEOF(err)
		return
	}
	name := string(nameBuf[:nameLen])
	var ok bool
	if codec, ok = wirecodec.Lookup(name); !ok {
		err = fmt.Errorf("%w: unknown codec %q", ErrBlockCorrupt, name)
		return
	}
	if payloadLen, err = u(false); err != nil {
		return
	}
	var crcBuf [4]byte
	if _, err = io.ReadFull(r.br, crcBuf[:]); err != nil {
		err = noEOF(err)
		return
	}
	crc = binary.LittleEndian.Uint32(crcBuf[:])
	return
}

// loadBlock reads, verifies, and decodes the next block into dst
// (grown as needed) and returns the decoded payload and record count.
// io.EOF means a clean end of stream.
func (r *BlockReader) loadBlock(dst []byte) ([]byte, int, error) {
	for {
		recs, rawLen, codec, payloadLen, crc, err := r.readHeader()
		if err != nil {
			return nil, 0, err
		}
		if recs == 0 && rawLen == 0 && payloadLen == 0 {
			continue // empty block: legal, carries nothing
		}
		if cap(r.payload) < payloadLen {
			r.payload = make([]byte, payloadLen)
		}
		payload := r.payload[:payloadLen]
		if _, err := io.ReadFull(r.br, payload); err != nil {
			return nil, 0, noEOF(err)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, 0, ErrBlockChecksum
		}
		if cap(dst) < rawLen {
			dst = make([]byte, rawLen)
		}
		dst = dst[:rawLen]
		if codec.Name() == wirecodec.IdentityName {
			if payloadLen != rawLen {
				return nil, 0, fmt.Errorf("%w: identity block %d != raw %d", ErrBlockCorrupt, payloadLen, rawLen)
			}
			copy(dst, payload)
		} else {
			cr := codec.NewReader(bytes.NewReader(payload))
			_, err := io.ReadFull(cr, dst)
			if err == nil {
				// The payload must decode to exactly rawLen bytes.
				var one [1]byte
				if n, _ := cr.Read(one[:]); n != 0 {
					err = fmt.Errorf("%w: payload longer than header rawLen", ErrBlockCorrupt)
				}
			}
			cr.Close()
			if err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					err = fmt.Errorf("%w: payload shorter than header rawLen", ErrBlockCorrupt)
				}
				return nil, 0, err
			}
		}
		r.rawBytes += int64(rawLen)
		return dst, recs, nil
	}
}

// NextBlock returns the next decoded block payload and its record
// count, transferring ownership of the returned slice to the caller
// (it is never reused by the reader) — the zero-copy handoff consumed
// by shuffle.Sorter.AddBlock. It must not be mixed with Read/ReadShared
// on a partially consumed block. io.EOF signals a clean end of stream.
func (r *BlockReader) NextBlock() ([]byte, int, error) {
	if r.err != nil {
		return nil, 0, r.err
	}
	if r.off != len(r.block) {
		return nil, 0, fmt.Errorf("kvio: NextBlock mid-block")
	}
	data, recs, err := r.loadBlock(nil)
	if err != nil {
		r.err = err
		return nil, 0, err
	}
	r.n += int64(recs)
	return data, recs, nil
}

// advance ensures the current block has at least one unread record.
func (r *BlockReader) advance() error {
	for r.recsLeft == 0 {
		if r.off != len(r.block) {
			return fmt.Errorf("%w: %d payload bytes beyond last record", ErrBlockCorrupt, len(r.block)-r.off)
		}
		block, recs, err := r.loadBlock(r.block)
		if err != nil {
			return err
		}
		r.block, r.recsLeft, r.off = block, recs, 0
	}
	return nil
}

// next parses one record out of the current block, returning slices
// into the block buffer (valid until the next read call).
func (r *BlockReader) next() (Pair, error) {
	if r.err != nil {
		return Pair{}, r.err
	}
	if err := r.advance(); err != nil {
		r.err = err
		return Pair{}, err
	}
	rest := r.block[r.off:]
	key, value, used, err := scanOne(rest)
	if err != nil {
		r.err = err
		return Pair{}, err
	}
	r.off += used
	r.recsLeft--
	r.n++
	return Pair{Key: key, Value: value}, nil
}

// ReadShared returns the next record; the slices alias the reader's
// block buffer and are valid only until the next read call.
func (r *BlockReader) ReadShared() (Pair, error) { return r.next() }

// Read returns the next record as freshly allocated slices.
func (r *BlockReader) Read() (Pair, error) {
	p, err := r.next()
	if err != nil {
		return Pair{}, err
	}
	return p.Clone(), nil
}

// ReadAll drains the stream into a slice.
func (r *BlockReader) ReadAll() ([]Pair, error) {
	var out []Pair
	for {
		p, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

// noEOF maps io.EOF to io.ErrUnexpectedEOF (the stream tore mid-block).
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ---------------------------------------------------------------------------
// Record scanning within a decoded block

// scanOne parses one framed record at the head of data, returning
// subslices (no copies) and the bytes consumed.
func scanOne(data []byte) (key, value []byte, used int, err error) {
	klen, n := binary.Uvarint(data)
	if n <= 0 || klen > MaxRecordLen {
		return nil, nil, 0, fmt.Errorf("%w: bad key length", ErrBlockCorrupt)
	}
	used = n
	if uint64(len(data)-used) < klen {
		return nil, nil, 0, fmt.Errorf("%w: truncated key", ErrBlockCorrupt)
	}
	key = data[used : used+int(klen)]
	used += int(klen)
	vlen, n := binary.Uvarint(data[used:])
	if n <= 0 || vlen > MaxRecordLen {
		return nil, nil, 0, fmt.Errorf("%w: bad value length", ErrBlockCorrupt)
	}
	used += n
	if uint64(len(data)-used) < vlen {
		return nil, nil, 0, fmt.Errorf("%w: truncated value", ErrBlockCorrupt)
	}
	value = data[used : used+int(vlen)]
	used += int(vlen)
	return key, value, used, nil
}

// ScanRecords walks every record in a decoded block payload, passing
// subslices of data to fn (no copies). It is the parse half of the
// zero-copy handoff: shuffle.Sorter.AddBlock adopts the block buffer
// and scans pairs out of it in place.
func ScanRecords(data []byte, fn func(key, value []byte) error) (int, error) {
	recs := 0
	for len(data) > 0 {
		key, value, used, err := scanOne(data)
		if err != nil {
			return recs, err
		}
		data = data[used:]
		recs++
		if err := fn(key, value); err != nil {
			return recs, err
		}
	}
	return recs, nil
}

// ---------------------------------------------------------------------------
// Framing-agnostic reading

// RecordReader is the read interface shared by the legacy per-record
// Reader and the BlockReader, so consumers can take streams of either
// framing.
type RecordReader interface {
	// Read returns the next record as retainable fresh allocations.
	Read() (Pair, error)
	// ReadShared returns the next record in internal buffers valid only
	// until the next read call.
	ReadShared() (Pair, error)
	// ReadAll drains the stream.
	ReadAll() ([]Pair, error)
	// Count returns records read so far.
	Count() int64
	// Release recycles pooled state; the reader is unusable afterwards.
	Release()
}

// TranscodeBlocks rewrites a block stream from src onto dst with every
// block re-compressed under codec c, block boundaries and record counts
// preserved. Payloads move block-at-a-time without record parsing.
func TranscodeBlocks(dst io.Writer, src io.Reader, c wirecodec.Codec) error {
	br, err := NewBlockReader(src)
	if err != nil {
		return err
	}
	defer br.Release()
	bw := NewBlockWriter(dst, c, 0)
	for {
		payload, recs, err := br.NextBlock()
		if err == io.EOF {
			return bw.Close()
		}
		if err != nil {
			return err
		}
		if err := bw.WriteBlock(payload, recs); err != nil {
			return err
		}
	}
}

// TranscodeToRecords flattens a block stream from src into a legacy
// per-record stream on dst — block payloads already are legacy-framed
// record runs, so this is decode-and-concatenate, no record parsing.
// It is how a block-file server talks to a pre-block client.
func TranscodeToRecords(dst io.Writer, src io.Reader) error {
	br, err := NewBlockReader(src)
	if err != nil {
		return err
	}
	defer br.Release()
	for {
		payload, _, err := br.NextBlock()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if _, err := dst.Write(payload); err != nil {
			return err
		}
	}
}

// NewAnyReader sniffs the stream's framing and returns the matching
// reader: block framing if the stream opens with BlockMagic (which no
// valid legacy stream can), the legacy per-record reader otherwise.
// This is how every consumer stays compatible with both at-rest forms
// and with peers from before the block data plane.
func NewAnyReader(r io.Reader) RecordReader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	got, err := br.Peek(len(BlockMagic))
	if err == nil && bytes.Equal(got, BlockMagic[:]) {
		br.Discard(len(BlockMagic))
		return newBlockReaderAt(br, true)
	}
	return &Reader{r: br}
}
