package kvio

// Block framing: the batched record format that replaced per-record
// wire framing. A block stream is
//
//	magic | block*
//
// where each block is
//
//	uvarint records      record count (0 allowed)
//	uvarint rawLen       uncompressed payload bytes
//	uvarint nameLen|name compression codec wire name (internal/wirecodec)
//	uvarint payloadLen   stored payload bytes
//	crc32   (4 bytes LE) IEEE CRC of the stored payload
//	payload              codec-compressed record run
//
// and the payload decompresses to `records` records in the classic
// per-record framing (uvarint keyLen|key|uvarint valueLen|value). This
// is the row block kind; the same stream can also carry columnar blocks
// (colblock.go), discriminated per block by a sentinel first uvarint,
// which store keys and values as independently compressed and
// checksummed column segments.
// Compression and integrity checking run once per ~BlockSize bytes
// instead of once per record, the header makes every block
// self-describing (a reader needs no out-of-band codec agreement), and
// a decoded block can be handed to the shuffle sorter as one arena slab
// (Sorter.AddBlock) without copying record bytes again.
//
// The magic is chosen so no valid legacy stream can begin with it: its
// first five bytes decode as a uvarint key length far above
// MaxRecordLen, which legacy writers never produce and legacy readers
// reject. NewAnyReader uses this to take byte streams of either framing
// and pick the right reader, which is what keeps mixed-version fleets
// and pre-block at-rest files readable.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/wirecodec"
)

// BlockMagic prefixes every block-framed stream.
var BlockMagic = [6]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x1F, 0x01}

// DefaultBlockSize is the target uncompressed payload per block.
// 64 KiB amortizes codec and CRC setup over many records while keeping
// the decode working set inside L2.
const DefaultBlockSize = 64 << 10

// MaxBlockLen bounds a single block's raw and stored payload,
// protecting readers from corrupted or adversarial headers.
const MaxBlockLen = 1 << 27

// Block-framing errors. ErrBlockChecksum means the stored payload did
// not match its header CRC; ErrBlockCorrupt covers every other
// malformed-header or malformed-payload case.
var (
	ErrBlockChecksum = errors.New("kvio: block checksum mismatch")
	ErrBlockCorrupt  = errors.New("kvio: corrupt block")
)

// ---------------------------------------------------------------------------
// BlockWriter

// BlockWriter serializes pairs into a block-framed stream. Records
// accumulate uncompressed until the target block size is reached, then
// the whole run is compressed, checksummed, and emitted as one block.
// Close (or Flush) emits the final partial block.
type BlockWriter struct {
	w         io.Writer
	codec     wirecodec.Codec
	blockSize int
	enc       BlockEncoding // block kind emitted by Write (row or columnar)

	raw   []byte // pending records in per-record framing
	recs  int    // records pending in raw
	comp  bytes.Buffer
	wrote bool // magic emitted

	// columnar emit scratch (colblock.go)
	colKeys   [][]byte
	colVal    []byte
	colKey    []byte
	colSeen   map[string]uint32
	compCol   bytes.Buffer
	colBlocks int64

	n     int64 // records written (total)
	bytes int64 // payload bytes written (keys+values, no framing)
	err   error
}

// NewBlockWriter returns a BlockWriter on w compressing each block with
// codec (nil = identity). blockSize <= 0 selects DefaultBlockSize.
func NewBlockWriter(w io.Writer, codec wirecodec.Codec, blockSize int) *BlockWriter {
	return NewBlockWriterEnc(w, codec, blockSize, BlockEncoding{})
}

// NewBlockWriterEnc is NewBlockWriter with an explicit block encoding:
// the zero BlockEncoding emits row blocks, a Columnar encoding emits
// columnar blocks (colblock.go) from the same Write/Flush surface.
func NewBlockWriterEnc(w io.Writer, codec wirecodec.Codec, blockSize int, enc BlockEncoding) *BlockWriter {
	if codec == nil {
		codec = wirecodec.Identity()
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &BlockWriter{w: w, codec: codec, blockSize: blockSize, enc: enc, raw: make([]byte, 0, blockSize+1024)}
}

// Write appends one record to the pending block, emitting a block when
// the target size is reached.
func (w *BlockWriter) Write(p Pair) error {
	if w.err != nil {
		return w.err
	}
	w.raw = binary.AppendUvarint(w.raw, uint64(len(p.Key)))
	w.raw = append(w.raw, p.Key...)
	w.raw = binary.AppendUvarint(w.raw, uint64(len(p.Value)))
	w.raw = append(w.raw, p.Value...)
	w.recs++
	w.n++
	w.bytes += int64(len(p.Key) + len(p.Value))
	if len(w.raw) >= w.blockSize {
		w.err = w.emitBlock()
	}
	return w.err
}

// writeMagic emits the stream prefix once.
func (w *BlockWriter) writeMagic() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	_, err := w.w.Write(BlockMagic[:])
	return err
}

// emit compresses, checksums, and writes one block of raw record
// bytes, in the writer's configured block kind.
func (w *BlockWriter) emit(raw []byte, recs int) error {
	if w.enc.Columnar {
		return w.emitColumnar(raw, recs)
	}
	if err := w.writeMagic(); err != nil {
		return err
	}
	if recs == 0 {
		return nil
	}
	name := w.codec.Name()
	payload := raw
	if name != wirecodec.IdentityName {
		w.comp.Reset()
		cw := w.codec.NewWriter(&w.comp)
		if _, err := cw.Write(raw); err != nil {
			cw.Close()
			return err
		}
		if err := cw.Close(); err != nil {
			return err
		}
		payload = w.comp.Bytes()
	}
	var hdr [4*binary.MaxVarintLen64 + 64]byte
	n := binary.PutUvarint(hdr[:], uint64(recs))
	n += binary.PutUvarint(hdr[n:], uint64(len(raw)))
	n += binary.PutUvarint(hdr[n:], uint64(len(name)))
	n += copy(hdr[n:], name)
	n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.ChecksumIEEE(payload))
	n += 4
	if _, err := w.w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.w.Write(payload)
	return err
}

// emitBlock writes the pending records as one block.
func (w *BlockWriter) emitBlock() error {
	err := w.emit(w.raw, w.recs)
	w.raw = w.raw[:0]
	w.recs = 0
	return err
}

// WriteBlock emits a pre-framed record run (records in legacy framing,
// e.g. a payload handed over by BlockReader.NextBlock) as one block,
// flushing any pending per-record writes first so order is preserved.
// This is the transcoding path: a server re-encoding an at-rest block
// file under a different codec never parses individual records.
func (w *BlockWriter) WriteBlock(payload []byte, recs int) error {
	if w.err != nil {
		return w.err
	}
	if w.err = w.emitBlock(); w.err != nil {
		return w.err
	}
	if w.err = w.emit(payload, recs); w.err != nil {
		return w.err
	}
	w.n += int64(recs)
	w.bytes += int64(len(payload)) // includes record framing; close enough for accounting
	return nil
}

// Flush emits the pending partial block (and the stream magic, so even
// an empty stream is well-formed block framing).
func (w *BlockWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.emitBlock()
	return w.err
}

// Close flushes; the writer must not be used afterwards.
func (w *BlockWriter) Close() error {
	return w.Flush()
}

// Count returns the number of records written so far.
func (w *BlockWriter) Count() int64 { return w.n }

// Bytes returns the payload bytes written so far (pre-compression).
func (w *BlockWriter) Bytes() int64 { return w.bytes }

// ---------------------------------------------------------------------------
// BlockReader

// BlockReader parses a block-framed stream. It verifies each block's
// CRC before decompressing, resolves the block's codec from the
// wirecodec registry, and serves records either one at a time (Read /
// ReadShared) or a whole decoded block at once (NextBlock, the
// zero-copy path into the shuffle sorter).
type BlockReader struct {
	br       *bufio.Reader
	ownsBuf  bool // br came from the shared pool
	block    []byte
	off      int
	recsLeft int
	payload  []byte // compressed-payload scratch
	n        int64
	rawBytes int64
	err      error
}

// NewBlockReader returns a BlockReader on r, consuming and verifying
// the stream magic.
func NewBlockReader(r io.Reader) (*BlockReader, error) {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	got, err := br.Peek(len(BlockMagic))
	if err != nil || !bytes.Equal(got, BlockMagic[:]) {
		br.Reset(nil)
		readerPool.Put(br)
		if err != nil && err != io.EOF {
			return nil, err
		}
		return nil, fmt.Errorf("%w: missing block magic", ErrBlockCorrupt)
	}
	br.Discard(len(BlockMagic))
	return &BlockReader{br: br, ownsBuf: true}, nil
}

// newBlockReaderAt wraps an existing bufio whose magic has already been
// consumed; used by NewAnyReader after sniffing.
func newBlockReaderAt(br *bufio.Reader, ownsBuf bool) *BlockReader {
	return &BlockReader{br: br, ownsBuf: ownsBuf}
}

// Release returns pooled state. Safe to call more than once.
func (r *BlockReader) Release() {
	if r.br != nil && r.ownsBuf {
		r.br.Reset(nil)
		readerPool.Put(r.br)
	}
	r.br = nil
	r.block = nil
	r.payload = nil
	if r.err == nil {
		r.err = ErrReleased
	}
}

// Count returns the number of records read so far.
func (r *BlockReader) Count() int64 { return r.n }

// RawBytes returns the decoded (pre-compression) payload bytes
// consumed so far, including blocks handed off via NextBlock.
func (r *BlockReader) RawBytes() int64 { return r.rawBytes }

// colSegHdr is one column segment's header within a columnar block.
type colSegHdr struct {
	rawLen     int
	codec      wirecodec.Codec
	payloadLen int
	crc        uint32
}

// blockHdr is one parsed block header of either kind. A row block uses
// seg alone (its single payload); a columnar block uses key and val.
type blockHdr struct {
	columnar bool
	recs     int
	keyEnc   int
	seg      colSegHdr // row payload
	key, val colSegHdr // columnar columns
}

// rawColumns is a columnar block's decompressed-but-still-key-encoded
// column bytes, the unit the column transcoding path moves.
type rawColumns struct {
	keyEnc   int
	key, val []byte
}

// u reads one bounds-checked header uvarint. An io.EOF at a block start
// is the clean end of stream; anywhere else the stream tore mid-header.
func (r *BlockReader) u(atStart bool) (int, error) {
	v, uerr := binary.ReadUvarint(r.br)
	if uerr != nil {
		if uerr == io.EOF && !atStart {
			return 0, io.ErrUnexpectedEOF
		}
		return 0, uerr
	}
	if v > MaxBlockLen {
		return 0, fmt.Errorf("%w: length %d exceeds MaxBlockLen", ErrBlockCorrupt, v)
	}
	return int(v), nil
}

// readSeg parses one column-segment header (rawLen, codec, payloadLen,
// CRC) — also the shape of a row block header after its record count.
func (r *BlockReader) readSeg() (s colSegHdr, err error) {
	if s.rawLen, err = r.u(false); err != nil {
		return
	}
	nameLen, err := r.u(false)
	if err != nil {
		return
	}
	if nameLen > 64 {
		err = fmt.Errorf("%w: codec name length %d", ErrBlockCorrupt, nameLen)
		return
	}
	var nameBuf [64]byte
	if _, err = io.ReadFull(r.br, nameBuf[:nameLen]); err != nil {
		err = noEOF(err)
		return
	}
	name := string(nameBuf[:nameLen])
	var ok bool
	if s.codec, ok = wirecodec.Lookup(name); !ok {
		err = fmt.Errorf("%w: unknown codec %q", ErrBlockCorrupt, name)
		return
	}
	if s.payloadLen, err = r.u(false); err != nil {
		return
	}
	var crcBuf [4]byte
	if _, err = io.ReadFull(r.br, crcBuf[:]); err != nil {
		err = noEOF(err)
		return
	}
	s.crc = binary.LittleEndian.Uint32(crcBuf[:])
	return
}

// readHeader parses one block header of either kind. The first uvarint
// discriminates: the colMarker sentinel (deliberately above MaxBlockLen,
// so pre-columnar readers fail it deterministically) introduces a
// columnar block, anything within bounds is a row block's record count.
// An io.EOF before the first header byte is the clean end of stream.
func (r *BlockReader) readHeader() (h blockHdr, err error) {
	first, uerr := binary.ReadUvarint(r.br)
	if uerr != nil {
		err = uerr
		return
	}
	if first == colMarker {
		h.columnar = true
		if h.recs, err = r.u(false); err != nil {
			return
		}
		if h.keyEnc, err = r.u(false); err != nil {
			return
		}
		if h.keyEnc > KeyEncDelta {
			err = fmt.Errorf("%w: unknown key encoding %d", ErrBlockCorrupt, h.keyEnc)
			return
		}
		if h.key, err = r.readSeg(); err != nil {
			return
		}
		h.val, err = r.readSeg()
		return
	}
	if first > MaxBlockLen {
		err = fmt.Errorf("%w: length %d exceeds MaxBlockLen", ErrBlockCorrupt, first)
		return
	}
	h.recs = int(first)
	h.seg, err = r.readSeg()
	return
}

// decodeSeg reads one segment's stored payload, verifies its CRC, and
// decodes it into dst (grown as needed; pass nil for a fresh,
// caller-owned allocation).
func (r *BlockReader) decodeSeg(s colSegHdr, what string, dst []byte) ([]byte, error) {
	identity := s.codec.Name() == wirecodec.IdentityName
	if identity && s.payloadLen != s.rawLen {
		return nil, fmt.Errorf("%w: %s identity payload %d != raw %d", ErrBlockCorrupt, what, s.payloadLen, s.rawLen)
	}
	if cap(dst) < s.rawLen {
		dst = make([]byte, s.rawLen)
	}
	dst = dst[:s.rawLen]
	if identity {
		// Identity stores the raw bytes verbatim: read and CRC them in
		// place, no staging.
		if _, err := io.ReadFull(r.br, dst); err != nil {
			return nil, noEOF(err)
		}
		if crc32.ChecksumIEEE(dst) != s.crc {
			return nil, fmt.Errorf("%w (%s)", ErrBlockChecksum, what)
		}
		return dst, nil
	}
	if cap(r.payload) < s.payloadLen {
		r.payload = make([]byte, s.payloadLen)
	}
	payload := r.payload[:s.payloadLen]
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return nil, noEOF(err)
	}
	if crc32.ChecksumIEEE(payload) != s.crc {
		return nil, fmt.Errorf("%w (%s)", ErrBlockChecksum, what)
	}
	cr := s.codec.NewReader(bytes.NewReader(payload))
	_, err := io.ReadFull(cr, dst)
	if err == nil {
		// The payload must decode to exactly rawLen bytes.
		var one [1]byte
		if n, _ := cr.Read(one[:]); n != 0 {
			err = fmt.Errorf("%w: %s payload longer than header rawLen", ErrBlockCorrupt, what)
		}
	}
	cr.Close()
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("%w: %s payload shorter than header rawLen", ErrBlockCorrupt, what)
		}
		return nil, err
	}
	return dst, nil
}

// nextRaw reads the next non-empty block and returns its decompressed
// content without record parsing: a row block's legacy-framed payload
// (decoded into dst, grown as needed), or a columnar block's raw column
// bytes (always freshly allocated, ownership to the caller). io.EOF
// means a clean end of stream.
func (r *BlockReader) nextRaw(dst []byte) ([]byte, *rawColumns, int, error) {
	for {
		h, err := r.readHeader()
		if err != nil {
			return nil, nil, 0, err
		}
		if h.columnar {
			if h.recs == 0 && h.key.rawLen == 0 && h.val.rawLen == 0 &&
				h.key.payloadLen == 0 && h.val.payloadLen == 0 {
				continue // empty block: legal, carries nothing
			}
			key, err := r.decodeSeg(h.key, "key column", nil)
			if err != nil {
				return nil, nil, 0, err
			}
			val, err := r.decodeSeg(h.val, "value column", nil)
			if err != nil {
				return nil, nil, 0, err
			}
			r.rawBytes += int64(h.key.rawLen + h.val.rawLen)
			return nil, &rawColumns{keyEnc: h.keyEnc, key: key, val: val}, h.recs, nil
		}
		if h.recs == 0 && h.seg.rawLen == 0 && h.seg.payloadLen == 0 {
			continue // empty block: legal, carries nothing
		}
		dst, err = r.decodeSeg(h.seg, "block", dst)
		if err != nil {
			return nil, nil, 0, err
		}
		r.rawBytes += int64(h.seg.rawLen)
		return dst, nil, h.recs, nil
	}
}

// NextAny returns the next decoded block in its native kind: a row
// block's legacy-framed payload in rows, or a columnar block in cb
// (exactly one is non-nil). Ownership of the returned data transfers to
// the caller — this is the zero-copy handoff into the shuffle sorter,
// which adopts row payloads via AddBlock and columnar blocks via
// AddColumnar. io.EOF signals a clean end of stream.
func (r *BlockReader) NextAny() (rows []byte, cb *ColumnarBlock, recs int, err error) {
	if r.err != nil {
		return nil, nil, 0, r.err
	}
	if r.off != len(r.block) {
		return nil, nil, 0, fmt.Errorf("kvio: NextAny mid-block")
	}
	rows, rc, recs, err := r.nextRaw(nil)
	if err != nil {
		r.err = err
		return nil, nil, 0, err
	}
	if rc != nil {
		if cb, err = decodeColumnar(recs, rc.keyEnc, rc.key, rc.val); err != nil {
			r.err = err
			return nil, nil, 0, err
		}
	}
	r.n += int64(recs)
	return rows, cb, recs, nil
}

// NextBlock returns the next block as a decoded legacy-framed payload
// and its record count, transferring ownership of the returned slice to
// the caller (it is never reused by the reader). Columnar blocks are
// flattened to row form — consumers that can exploit the columnar
// layout should use NextAny instead. It must not be mixed with
// Read/ReadShared on a partially consumed block. io.EOF signals a clean
// end of stream.
func (r *BlockReader) NextBlock() ([]byte, int, error) {
	rows, cb, recs, err := r.NextAny()
	if err != nil {
		return nil, 0, err
	}
	if cb != nil {
		rows = cb.AppendRows(nil)
	}
	return rows, recs, nil
}

// advance ensures the current block has at least one unread record.
func (r *BlockReader) advance() error {
	for r.recsLeft == 0 {
		if r.off != len(r.block) {
			return fmt.Errorf("%w: %d payload bytes beyond last record", ErrBlockCorrupt, len(r.block)-r.off)
		}
		block, rc, recs, err := r.nextRaw(r.block)
		if err != nil {
			return err
		}
		if rc != nil {
			cb, err := decodeColumnar(recs, rc.keyEnc, rc.key, rc.val)
			if err != nil {
				return err
			}
			block = cb.AppendRows(r.block[:0]) // reuse the row buffer's capacity
		}
		r.block, r.recsLeft, r.off = block, recs, 0
	}
	return nil
}

// next parses one record out of the current block, returning slices
// into the block buffer (valid until the next read call).
func (r *BlockReader) next() (Pair, error) {
	if r.err != nil {
		return Pair{}, r.err
	}
	if err := r.advance(); err != nil {
		r.err = err
		return Pair{}, err
	}
	rest := r.block[r.off:]
	key, value, used, err := scanOne(rest)
	if err != nil {
		r.err = err
		return Pair{}, err
	}
	r.off += used
	r.recsLeft--
	r.n++
	return Pair{Key: key, Value: value}, nil
}

// ReadShared returns the next record; the slices alias the reader's
// block buffer and are valid only until the next read call.
func (r *BlockReader) ReadShared() (Pair, error) { return r.next() }

// Read returns the next record as freshly allocated slices.
func (r *BlockReader) Read() (Pair, error) {
	p, err := r.next()
	if err != nil {
		return Pair{}, err
	}
	return p.Clone(), nil
}

// ReadAll drains the stream into a slice.
func (r *BlockReader) ReadAll() ([]Pair, error) {
	var out []Pair
	for {
		p, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

// noEOF maps io.EOF to io.ErrUnexpectedEOF (the stream tore mid-block).
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ---------------------------------------------------------------------------
// Record scanning within a decoded block

// scanOne parses one framed record at the head of data, returning
// subslices (no copies) and the bytes consumed.
func scanOne(data []byte) (key, value []byte, used int, err error) {
	klen, n := binary.Uvarint(data)
	if n <= 0 || klen > MaxRecordLen {
		return nil, nil, 0, fmt.Errorf("%w: bad key length", ErrBlockCorrupt)
	}
	used = n
	if uint64(len(data)-used) < klen {
		return nil, nil, 0, fmt.Errorf("%w: truncated key", ErrBlockCorrupt)
	}
	key = data[used : used+int(klen)]
	used += int(klen)
	vlen, n := binary.Uvarint(data[used:])
	if n <= 0 || vlen > MaxRecordLen {
		return nil, nil, 0, fmt.Errorf("%w: bad value length", ErrBlockCorrupt)
	}
	used += n
	if uint64(len(data)-used) < vlen {
		return nil, nil, 0, fmt.Errorf("%w: truncated value", ErrBlockCorrupt)
	}
	value = data[used : used+int(vlen)]
	used += int(vlen)
	return key, value, used, nil
}

// ScanRecords walks every record in a decoded block payload, passing
// subslices of data to fn (no copies). It is the parse half of the
// zero-copy handoff: shuffle.Sorter.AddBlock adopts the block buffer
// and scans pairs out of it in place.
func ScanRecords(data []byte, fn func(key, value []byte) error) (int, error) {
	recs := 0
	for len(data) > 0 {
		key, value, used, err := scanOne(data)
		if err != nil {
			return recs, err
		}
		data = data[used:]
		recs++
		if err := fn(key, value); err != nil {
			return recs, err
		}
	}
	return recs, nil
}

// ---------------------------------------------------------------------------
// Framing-agnostic reading

// RecordReader is the read interface shared by the legacy per-record
// Reader and the BlockReader, so consumers can take streams of either
// framing.
type RecordReader interface {
	// Read returns the next record as retainable fresh allocations.
	Read() (Pair, error)
	// ReadShared returns the next record in internal buffers valid only
	// until the next read call.
	ReadShared() (Pair, error)
	// ReadAll drains the stream.
	ReadAll() ([]Pair, error)
	// Count returns records read so far.
	Count() int64
	// Release recycles pooled state; the reader is unusable afterwards.
	Release()
}

// TranscodeBlocks rewrites a block stream from src onto dst with every
// block re-compressed under codec c, block boundaries, kinds, and
// record counts preserved. Row payloads move block-at-a-time and
// columnar blocks move column-at-a-time — neither path parses records
// or re-derives a key encoding.
func TranscodeBlocks(dst io.Writer, src io.Reader, c wirecodec.Codec) error {
	br, err := NewBlockReader(src)
	if err != nil {
		return err
	}
	defer br.Release()
	bw := NewBlockWriter(dst, c, 0)
	for {
		payload, rc, recs, err := br.nextRaw(nil)
		if err == io.EOF {
			return bw.Close()
		}
		if err != nil {
			return err
		}
		if rc != nil {
			err = bw.WriteColumnarRaw(recs, rc.keyEnc, rc.key, rc.val)
		} else {
			err = bw.WriteBlock(payload, recs)
		}
		if err != nil {
			return err
		}
	}
}

// TranscodeToRowBlocks rewrites a block stream from src onto dst as row
// blocks only, compressed under codec c: row blocks move verbatim
// (re-compressed), columnar blocks are flattened to the interleaved
// form. This is the mixed-version fallback a data server uses for a
// peer that advertises block codecs but not the columnar kind.
func TranscodeToRowBlocks(dst io.Writer, src io.Reader, c wirecodec.Codec) error {
	br, err := NewBlockReader(src)
	if err != nil {
		return err
	}
	defer br.Release()
	bw := NewBlockWriter(dst, c, 0)
	for {
		payload, recs, err := br.NextBlock() // flattens columnar blocks
		if err == io.EOF {
			return bw.Close()
		}
		if err != nil {
			return err
		}
		if err := bw.WriteBlock(payload, recs); err != nil {
			return err
		}
	}
}

// TranscodeToRecords flattens a block stream from src into a legacy
// per-record stream on dst. Row payloads already are legacy-framed
// record runs and are concatenated without parsing; columnar blocks are
// re-framed row by row. It is how a block-file server talks to a
// pre-block client.
func TranscodeToRecords(dst io.Writer, src io.Reader) error {
	br, err := NewBlockReader(src)
	if err != nil {
		return err
	}
	defer br.Release()
	for {
		payload, _, err := br.NextBlock()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if _, err := dst.Write(payload); err != nil {
			return err
		}
	}
}

// NewAnyReader sniffs the stream's framing and returns the matching
// reader: block framing if the stream opens with BlockMagic (which no
// valid legacy stream can), the legacy per-record reader otherwise.
// This is how every consumer stays compatible with both at-rest forms
// and with peers from before the block data plane.
func NewAnyReader(r io.Reader) RecordReader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	got, err := br.Peek(len(BlockMagic))
	if err == nil && bytes.Equal(got, BlockMagic[:]) {
		br.Discard(len(BlockMagic))
		return newBlockReaderAt(br, true)
	}
	return &Reader{r: br}
}
