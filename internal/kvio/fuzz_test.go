package kvio

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/wirecodec"
)

// FuzzReader throws arbitrary bytes — truncated, corrupt, over-length
// headers — at the Reader and checks the decode invariants: no panics,
// io.EOF only at a clean record boundary, errors are sticky, and the
// shared-buffer path decodes exactly the same record sequence as the
// allocating path.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add(Marshal([]Pair{StrPair("hello", "world")}))
	f.Add(Marshal([]Pair{{}, StrPair("", "x"), StrPair("x", "")}))
	// Truncated mid-record.
	f.Add(Marshal([]Pair{StrPair("abcdef", "ghijkl")})[:5])
	// Header declaring a key larger than MaxRecordLen.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	// Header declaring more bytes than follow.
	f.Add([]byte{0x20, 'a', 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		owned := NewReader(bytes.NewReader(data))
		shared := NewReader(bytes.NewReader(data))
		defer owned.Release()
		defer shared.Release()
		for {
			po, eo := owned.Read()
			ps, es := shared.ReadShared()
			if eo != es {
				t.Fatalf("Read err %v != ReadShared err %v", eo, es)
			}
			if eo != nil {
				// Sticky: the same error again, no state advance.
				if _, e2 := owned.Read(); e2 != eo {
					t.Fatalf("error not sticky: %v then %v", eo, e2)
				}
				break
			}
			if !bytes.Equal(po.Key, ps.Key) || !bytes.Equal(po.Value, ps.Value) {
				t.Fatalf("Read %v != ReadShared %v", po, ps)
			}
		}
		if owned.Count() != shared.Count() {
			t.Fatalf("record counts diverge: %d vs %d", owned.Count(), shared.Count())
		}
	})
}

// FuzzRoundTrip drives arbitrary pairs through Writer→Reader and checks
// byte-exact recovery — for the legacy per-record framing (allocating
// and shared read paths) and for block framing under every registered
// codec at a small block size that forces multi-block streams.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("key"), []byte("value"), []byte("k2"), []byte(""))
	f.Add([]byte{}, []byte{}, []byte{0}, []byte{0xFF})
	// Seed the magic bytes as record content: block framing must not be
	// confused by payloads that contain its own stream prefix.
	f.Add(BlockMagic[:], BlockMagic[:], []byte{0xFF}, BlockMagic[:3])
	f.Fuzz(func(t *testing.T, k1, v1, k2, v2 []byte) {
		in := []Pair{{Key: k1, Value: v1}, {Key: k2, Value: v2}}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, p := range in {
			if err := w.Write(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		w.Release()
		wire := buf.Bytes()

		out, err := Unmarshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		if !pairsEqual(in, out) {
			t.Fatalf("round trip mismatch: in %v out %v", in, out)
		}

		r := NewReader(bytes.NewReader(wire))
		defer r.Release()
		for i, want := range in {
			got, err := r.ReadShared()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) {
				t.Fatalf("shared record %d: got %v want %v", i, got, want)
			}
		}
		if _, err := r.ReadShared(); err != io.EOF {
			t.Fatalf("want clean EOF, got %v", err)
		}

		// Block framing under every codec, decoded via the sniffing
		// reader — the path every mixed-framing consumer takes.
		for _, name := range wirecodec.Names() {
			c, _ := wirecodec.Lookup(name)
			var bbuf bytes.Buffer
			bw := NewBlockWriter(&bbuf, c, 16)
			for _, p := range in {
				if err := bw.Write(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := bw.Close(); err != nil {
				t.Fatal(err)
			}
			br := NewAnyReader(bytes.NewReader(bbuf.Bytes()))
			bout, err := br.ReadAll()
			br.Release()
			if err != nil {
				t.Fatalf("%s block decode: %v", name, err)
			}
			if !pairsEqual(in, bout) {
				t.Fatalf("%s block round trip mismatch: in %v out %v", name, in, bout)
			}
		}
	})
}

// blockSeed builds a block-framed stream for fuzz corpora.
func blockSeed(pairs []Pair, codecName string, blockSize int) []byte {
	c, ok := wirecodec.Lookup(codecName)
	if !ok {
		panic("unknown codec " + codecName)
	}
	var buf bytes.Buffer
	w := NewBlockWriter(&buf, c, blockSize)
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// columnarSeed builds a columnar block stream for fuzz corpora.
func columnarSeed(pairs []Pair, codecName string, blockSize, keyEnc int) []byte {
	c, ok := wirecodec.Lookup(codecName)
	if !ok {
		panic("unknown codec " + codecName)
	}
	var buf bytes.Buffer
	w := NewBlockWriterEnc(&buf, c, blockSize, BlockEncoding{Columnar: true, KeyEnc: keyEnc})
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzBlockReader throws arbitrary bytes at the block reader via
// NewAnyReader: no panics, no infinite loops, and a valid prefix of
// records before any error. The corpus seeds both framings and both
// block kinds plus the torn/corrupt/zero-record shapes named in the
// block format's contract.
func FuzzBlockReader(f *testing.F) {
	pairs := []Pair{StrPair("hello", "world"), {}, StrPair("", "x"), StrPair("x", "")}
	legacy := Marshal(pairs)
	f.Add(legacy)                                           // legacy framing
	f.Add(blockSeed(pairs, wirecodec.IdentityName, 0))      // identity blocks
	f.Add(blockSeed(pairs, wirecodec.DeflateName, 8))       // multi-block deflate
	f.Add(blockSeed(pairs, wirecodec.LZName, 8))            // multi-block lz
	f.Add(BlockMagic[:])                                    // empty block stream
	f.Add(append(append([]byte{}, BlockMagic[:]...), 0x00)) // torn header
	torn := blockSeed(pairs, wirecodec.LZName, 8)
	f.Add(torn[:len(torn)-2]) // torn payload
	crc := append([]byte(nil), blockSeed(pairs, wirecodec.IdentityName, 0)...)
	crc[len(crc)-1] ^= 0xFF
	f.Add(crc) // corrupt checksum
	// Zero-record block followed by a real one (see TestBlockZeroRecordBlock).
	f.Add(blockSeed(nil, wirecodec.IdentityName, 0))
	// Columnar frames: every key encoding, plus one per codec.
	for _, keyEnc := range []int{KeyEncRaw, KeyEncDict, KeyEncDelta} {
		f.Add(columnarSeed(pairs, wirecodec.IdentityName, 0, keyEnc))
	}
	f.Add(columnarSeed(pairs, wirecodec.DeflateName, 8, KeyEncAuto))
	f.Add(columnarSeed(pairs, wirecodec.LZName, 8, KeyEncAuto))
	// Truncated column segments: cut mid key column and mid value column.
	col := columnarSeed(pairs, wirecodec.IdentityName, 0, KeyEncRaw)
	var valLen int
	for _, p := range pairs {
		valLen += uvarintLen(uint64(len(p.Value))) + len(p.Value)
	}
	f.Add(col[:len(col)-valLen-2]) // ends inside the key column payload
	f.Add(col[:len(col)-1])        // ends inside the value column payload
	// Mismatched per-column CRCs: flip one byte in each column payload.
	badKey := append([]byte(nil), col...)
	badKey[len(col)-valLen-2] ^= 0x5A
	f.Add(badKey)
	badVal := append([]byte(nil), col...)
	badVal[len(col)-1] ^= 0x5A
	f.Add(badVal)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewAnyReader(bytes.NewReader(data))
		defer r.Release()
		for {
			_, err := r.ReadShared()
			if err != nil {
				// Sticky: the same error again, no state advance.
				if _, e2 := r.ReadShared(); e2 != err {
					t.Fatalf("error not sticky: %v then %v", err, e2)
				}
				break
			}
		}
	})
}

// FuzzBlockNextBlock checks the zero-copy path decodes the same record
// sequence as the per-record path on arbitrary input.
func FuzzBlockNextBlock(f *testing.F) {
	pairs := []Pair{StrPair("k", "v"), StrPair("key2", "value2")}
	f.Add(blockSeed(pairs, wirecodec.LZName, 8))
	f.Add(blockSeed(pairs, wirecodec.IdentityName, 0))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		recR, err := NewBlockReader(bytes.NewReader(data))
		if err != nil {
			return // not a block stream; nothing to compare
		}
		defer recR.Release()
		blkR, err := NewBlockReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("second NewBlockReader disagreed: %v", err)
		}
		defer blkR.Release()

		var fromBlocks []Pair
		var blockErr error
		for {
			blk, _, err := blkR.NextBlock()
			if err == io.EOF {
				break
			}
			if err != nil {
				blockErr = err
				break
			}
			if _, err := ScanRecords(blk, func(k, v []byte) error {
				fromBlocks = append(fromBlocks, Pair{Key: k, Value: v}.Clone())
				return nil
			}); err != nil {
				blockErr = err
				break
			}
		}
		var fromRecords []Pair
		var recErr error
		for {
			p, err := recR.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				recErr = err
				break
			}
			fromRecords = append(fromRecords, p)
		}
		if (blockErr == nil) != (recErr == nil) {
			t.Fatalf("paths disagree on validity: block %v, record %v", blockErr, recErr)
		}
		if blockErr == nil && !pairsEqual(fromBlocks, fromRecords) {
			t.Fatalf("NextBlock path decoded %d records, Read path %d", len(fromBlocks), len(fromRecords))
		}
	})
}
