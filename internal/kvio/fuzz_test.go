package kvio

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader throws arbitrary bytes — truncated, corrupt, over-length
// headers — at the Reader and checks the decode invariants: no panics,
// io.EOF only at a clean record boundary, errors are sticky, and the
// shared-buffer path decodes exactly the same record sequence as the
// allocating path.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add(Marshal([]Pair{StrPair("hello", "world")}))
	f.Add(Marshal([]Pair{{}, StrPair("", "x"), StrPair("x", "")}))
	// Truncated mid-record.
	f.Add(Marshal([]Pair{StrPair("abcdef", "ghijkl")})[:5])
	// Header declaring a key larger than MaxRecordLen.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	// Header declaring more bytes than follow.
	f.Add([]byte{0x20, 'a', 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		owned := NewReader(bytes.NewReader(data))
		shared := NewReader(bytes.NewReader(data))
		defer owned.Release()
		defer shared.Release()
		for {
			po, eo := owned.Read()
			ps, es := shared.ReadShared()
			if eo != es {
				t.Fatalf("Read err %v != ReadShared err %v", eo, es)
			}
			if eo != nil {
				// Sticky: the same error again, no state advance.
				if _, e2 := owned.Read(); e2 != eo {
					t.Fatalf("error not sticky: %v then %v", eo, e2)
				}
				break
			}
			if !bytes.Equal(po.Key, ps.Key) || !bytes.Equal(po.Value, ps.Value) {
				t.Fatalf("Read %v != ReadShared %v", po, ps)
			}
		}
		if owned.Count() != shared.Count() {
			t.Fatalf("record counts diverge: %d vs %d", owned.Count(), shared.Count())
		}
	})
}

// FuzzRoundTrip drives arbitrary pairs through Writer→Reader and checks
// byte-exact recovery, for both the allocating and shared read paths.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("key"), []byte("value"), []byte("k2"), []byte(""))
	f.Add([]byte{}, []byte{}, []byte{0}, []byte{0xFF})
	f.Fuzz(func(t *testing.T, k1, v1, k2, v2 []byte) {
		in := []Pair{{Key: k1, Value: v1}, {Key: k2, Value: v2}}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, p := range in {
			if err := w.Write(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		w.Release()
		wire := buf.Bytes()

		out, err := Unmarshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		if !pairsEqual(in, out) {
			t.Fatalf("round trip mismatch: in %v out %v", in, out)
		}

		r := NewReader(bytes.NewReader(wire))
		defer r.Release()
		for i, want := range in {
			got, err := r.ReadShared()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) {
				t.Fatalf("shared record %d: got %v want %v", i, got, want)
			}
		}
		if _, err := r.ReadShared(); err != io.EOF {
			t.Fatalf("want clean EOF, got %v", err)
		}
	})
}
