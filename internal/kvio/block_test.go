package kvio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"strconv"
	"strings"
	"testing"

	"repro/internal/wirecodec"
)

// blockStream builds a block-framed stream of pairs with the named
// codec and block size.
func blockStream(t testing.TB, pairs []Pair, codecName string, blockSize int) []byte {
	t.Helper()
	c, ok := wirecodec.Lookup(codecName)
	if !ok {
		t.Fatalf("codec %q not registered", codecName)
	}
	var buf bytes.Buffer
	w := NewBlockWriter(&buf, c, blockSize)
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testPairs(n int) []Pair {
	out := make([]Pair, n)
	for i := range out {
		out[i] = StrPair("key-"+strconv.Itoa(i), "value-payload-"+strconv.Itoa(i*7))
	}
	return out
}

func TestBlockRoundTripAllCodecs(t *testing.T) {
	pairs := testPairs(5000)
	for _, name := range wirecodec.Names() {
		for _, blockSize := range []int{1, 512, DefaultBlockSize} {
			t.Run(name+"/bs="+strconv.Itoa(blockSize), func(t *testing.T) {
				wire := blockStream(t, pairs, name, blockSize)
				r, err := NewBlockReader(bytes.NewReader(wire))
				if err != nil {
					t.Fatal(err)
				}
				defer r.Release()
				got, err := r.ReadAll()
				if err != nil {
					t.Fatal(err)
				}
				if !pairsEqual(pairs, got) {
					t.Fatalf("round trip mismatch: %d in, %d out", len(pairs), len(got))
				}
				if r.Count() != int64(len(pairs)) {
					t.Fatalf("Count = %d, want %d", r.Count(), len(pairs))
				}
			})
		}
	}
}

func TestBlockEmptyStream(t *testing.T) {
	wire := blockStream(t, nil, wirecodec.IdentityName, 0)
	if !bytes.Equal(wire, BlockMagic[:]) {
		t.Fatalf("empty stream = %x, want just the magic", wire)
	}
	r, err := NewBlockReader(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want clean EOF on empty stream, got %v", err)
	}
}

// TestBlockZeroRecordBlock checks that an explicit zero-record block in
// the stream is legal and skipped.
func TestBlockZeroRecordBlock(t *testing.T) {
	pairs := testPairs(10)
	wire := blockStream(t, pairs, wirecodec.IdentityName, 0)
	// Splice an empty block (records=0, rawLen=0, name="identity",
	// payloadLen=0, crc of empty) right after the magic.
	var empty []byte
	empty = binary.AppendUvarint(empty, 0)
	empty = binary.AppendUvarint(empty, 0)
	empty = binary.AppendUvarint(empty, uint64(len(wirecodec.IdentityName)))
	empty = append(empty, wirecodec.IdentityName...)
	empty = binary.AppendUvarint(empty, 0)
	empty = binary.LittleEndian.AppendUint32(empty, crc32.ChecksumIEEE(nil))
	spliced := append(append(append([]byte(nil), wire[:len(BlockMagic)]...), empty...), wire[len(BlockMagic):]...)

	r, err := NewBlockReader(bytes.NewReader(spliced))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(pairs, got) {
		t.Fatal("zero-record block changed the decoded records")
	}
}

func TestBlockChecksumDetectsCorruption(t *testing.T) {
	pairs := testPairs(100)
	for _, name := range []string{wirecodec.IdentityName, wirecodec.LZName, wirecodec.DeflateName} {
		t.Run(name, func(t *testing.T) {
			wire := blockStream(t, pairs, name, 0)
			// Flip one payload byte near the end (past magic + header).
			bad := append([]byte(nil), wire...)
			bad[len(bad)-3] ^= 0x40
			r, err := NewBlockReader(bytes.NewReader(bad))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Release()
			_, err = r.ReadAll()
			if !errors.Is(err, ErrBlockChecksum) {
				t.Fatalf("flipped payload byte: got %v, want ErrBlockChecksum", err)
			}
		})
	}
}

func TestBlockTornStream(t *testing.T) {
	pairs := testPairs(2000)
	wire := blockStream(t, pairs, wirecodec.LZName, 4096)
	for _, cut := range []int{len(BlockMagic) + 1, len(wire) / 2, len(wire) - 1} {
		r, err := NewBlockReader(bytes.NewReader(wire[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		_, err = r.ReadAll()
		r.Release()
		if err == nil || err == io.EOF {
			t.Fatalf("torn stream at %d decoded cleanly", cut)
		}
	}
}

func TestBlockUnknownCodecErrors(t *testing.T) {
	wire := blockStream(t, testPairs(5), wirecodec.IdentityName, 0)
	// The codec name "identity" starts right after magic + 3 uvarints;
	// corrupt its first letter so lookup fails.
	bad := append([]byte(nil), wire...)
	i := bytes.Index(bad, []byte(wirecodec.IdentityName))
	if i < 0 {
		t.Fatal("codec name not found in wire form")
	}
	bad[i] = 'X'
	r, err := NewBlockReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	if _, err := r.ReadAll(); !errors.Is(err, ErrBlockCorrupt) {
		t.Fatalf("unknown codec: got %v, want ErrBlockCorrupt", err)
	}
}

func TestBlockMagicIsLegacyPoison(t *testing.T) {
	// The design guarantee behind NewAnyReader: a legacy reader must
	// reject a block stream deterministically — and, since the magic is
	// recognizable, with a version-aware error naming the minimum reader
	// instead of a generic size complaint.
	for _, mk := range []struct {
		name string
		data []byte
	}{
		{"bare magic", BlockMagic[:]},
		{"row blocks", blockStream(t, testPairs(10), wirecodec.IdentityName, 0)},
		{"columnar blocks", columnarStream(t, testPairs(10), wirecodec.IdentityName, 0, KeyEncAuto)},
	} {
		t.Run(mk.name, func(t *testing.T) {
			r := NewReader(bytes.NewReader(mk.data))
			defer r.Release()
			_, err := r.Read()
			if !errors.Is(err, ErrBlockStream) {
				t.Fatalf("legacy read of block stream: got %v, want ErrBlockStream", err)
			}
			if !strings.Contains(err.Error(), "version 0x01") {
				t.Fatalf("error is not version-aware: %v", err)
			}
			if !strings.Contains(err.Error(), "NewBlockReader") {
				t.Fatalf("error does not name the minimum reader: %v", err)
			}
		})
	}
	// A genuinely oversized record length (not the magic) still reports
	// ErrRecordTooLarge.
	big := binary.AppendUvarint(nil, uint64(MaxRecordLen)+1)
	r := NewReader(bytes.NewReader(big))
	defer r.Release()
	if _, err := r.Read(); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized record: got %v, want ErrRecordTooLarge", err)
	}
}

func TestNewAnyReaderSniffsFraming(t *testing.T) {
	pairs := testPairs(300)
	legacy := Marshal(pairs)
	block := blockStream(t, pairs, wirecodec.LZName, 1024)
	for label, wire := range map[string][]byte{"legacy": legacy, "block": block} {
		t.Run(label, func(t *testing.T) {
			r := NewAnyReader(bytes.NewReader(wire))
			defer r.Release()
			got, err := r.ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			if !pairsEqual(pairs, got) {
				t.Fatalf("%s framing mis-decoded via NewAnyReader", label)
			}
		})
	}
	// Streams shorter than the magic must fall back to legacy framing.
	t.Run("short", func(t *testing.T) {
		r := NewAnyReader(bytes.NewReader(Marshal([]Pair{{}})))
		defer r.Release()
		got, err := r.ReadAll()
		if err != nil || len(got) != 1 {
			t.Fatalf("short legacy stream: %v, %d records", err, len(got))
		}
	})
}

func TestBlockNextBlockOwnership(t *testing.T) {
	pairs := testPairs(1000)
	wire := blockStream(t, pairs, wirecodec.DeflateName, 2048)
	r, err := NewBlockReader(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	var (
		blocks  [][]byte
		decoded []Pair
		total   int
	)
	for {
		data, recs, err := r.NextBlock()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, data)
		total += recs
		n, err := ScanRecords(data, func(k, v []byte) error {
			decoded = append(decoded, Pair{Key: k, Value: v}) // aliases data — ownership is ours
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != recs {
			t.Fatalf("ScanRecords found %d records, header said %d", n, recs)
		}
	}
	if total != len(pairs) {
		t.Fatalf("NextBlock total %d records, want %d", total, len(pairs))
	}
	if !pairsEqual(pairs, decoded) {
		t.Fatal("aliased pairs from adopted blocks diverge from input")
	}
	// Distinct blocks must be distinct allocations (ownership transfer,
	// no internal reuse).
	for i := 1; i < len(blocks); i++ {
		if len(blocks[i]) > 0 && len(blocks[i-1]) > 0 && &blocks[i][0] == &blocks[i-1][0] {
			t.Fatal("NextBlock reused a handed-off buffer")
		}
	}
}

func TestBlockNextBlockMidBlockErrors(t *testing.T) {
	wire := blockStream(t, testPairs(50), wirecodec.IdentityName, 0)
	r, err := NewBlockReader(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	if _, err := r.ReadShared(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.NextBlock(); err == nil {
		t.Fatal("NextBlock mid-block succeeded; want error")
	}
}

func TestBlockWriterCounters(t *testing.T) {
	pairs := testPairs(100)
	var want int64
	for _, p := range pairs {
		want += int64(len(p.Key) + len(p.Value))
	}
	var buf bytes.Buffer
	w := NewBlockWriter(&buf, nil, 0)
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(pairs)) || w.Bytes() != want {
		t.Fatalf("counters: %d records / %d bytes, want %d / %d", w.Count(), w.Bytes(), len(pairs), want)
	}
}

func TestScanRecordsRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"bad-keylen":      {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		"truncated-key":   {0x10, 'a'},
		"truncated-value": append([]byte{0x01, 'k', 0x10}, 'v'),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ScanRecords(data, func(k, v []byte) error { return nil })
			if !errors.Is(err, ErrBlockCorrupt) {
				t.Fatalf("got %v, want ErrBlockCorrupt", err)
			}
		})
	}
}
