package kvio

import (
	"bytes"
	"io"
	"testing"
)

// benchStream builds one record stream of n copies of a moderate pair.
func benchStream(n int) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	p := StrPair("some-moderate-key", "some-moderate-value-payload")
	for i := 0; i < n; i++ {
		if err := w.Write(p); err != nil {
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	w.Release()
	return buf.Bytes()
}

func BenchmarkWriterWrite(b *testing.B) {
	p := StrPair("some-moderate-key", "some-moderate-value-payload")
	b.SetBytes(int64(len(p.Key) + len(p.Value)))
	b.ReportAllocs()
	w := NewWriter(io.Discard)
	defer w.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(p); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkReaderRead(b *testing.B) {
	data := benchStream(b.N)
	b.SetBytes(int64(len("some-moderate-key") + len("some-moderate-value-payload")))
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(bytes.NewReader(data))
	defer r.Release()
	for i := 0; i < b.N; i++ {
		if _, err := r.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderReadShared(b *testing.B) {
	data := benchStream(b.N)
	b.SetBytes(int64(len("some-moderate-key") + len("some-moderate-value-payload")))
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(bytes.NewReader(data))
	defer r.Release()
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadShared(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewReaderPooled measures the per-stream setup cost — with
// pooled buffers this should not allocate the 64 KiB bufio buffer.
func BenchmarkNewReaderPooled(b *testing.B) {
	data := benchStream(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(data))
		if _, err := r.Read(); err != nil {
			b.Fatal(err)
		}
		r.Release()
	}
}
