package kvio

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/wirecodec"
)

// benchStream builds one record stream of n copies of a moderate pair.
func benchStream(n int) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	p := StrPair("some-moderate-key", "some-moderate-value-payload")
	for i := 0; i < n; i++ {
		if err := w.Write(p); err != nil {
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	w.Release()
	return buf.Bytes()
}

func BenchmarkWriterWrite(b *testing.B) {
	p := StrPair("some-moderate-key", "some-moderate-value-payload")
	b.SetBytes(int64(len(p.Key) + len(p.Value)))
	b.ReportAllocs()
	w := NewWriter(io.Discard)
	defer w.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(p); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkReaderRead(b *testing.B) {
	data := benchStream(b.N)
	b.SetBytes(int64(len("some-moderate-key") + len("some-moderate-value-payload")))
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(bytes.NewReader(data))
	defer r.Release()
	for i := 0; i < b.N; i++ {
		if _, err := r.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderReadShared(b *testing.B) {
	data := benchStream(b.N)
	b.SetBytes(int64(len("some-moderate-key") + len("some-moderate-value-payload")))
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(bytes.NewReader(data))
	defer r.Release()
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadShared(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewReaderPooled measures the per-stream setup cost — with
// pooled buffers this should not allocate the 64 KiB bufio buffer.
func BenchmarkNewReaderPooled(b *testing.B) {
	data := benchStream(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(data))
		if _, err := r.Read(); err != nil {
			b.Fatal(err)
		}
		r.Release()
	}
}

// benchBlockStream builds one block-framed stream of n copies of a
// moderate pair with the named codec.
func benchBlockStream(n int, codecName string) []byte {
	c, ok := wirecodec.Lookup(codecName)
	if !ok {
		panic("unknown codec " + codecName)
	}
	var buf bytes.Buffer
	w := NewBlockWriter(&buf, c, 0)
	p := StrPair("some-moderate-key", "some-moderate-value-payload")
	for i := 0; i < n; i++ {
		if err := w.Write(p); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func BenchmarkBlockWriterWrite(b *testing.B) {
	p := StrPair("some-moderate-key", "some-moderate-value-payload")
	for _, name := range []string{wirecodec.IdentityName, wirecodec.LZName} {
		b.Run(name, func(b *testing.B) {
			c, _ := wirecodec.Lookup(name)
			b.SetBytes(int64(len(p.Key) + len(p.Value)))
			b.ReportAllocs()
			w := NewBlockWriter(io.Discard, c, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Write(p); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkBlockReaderReadShared(b *testing.B) {
	for _, name := range []string{wirecodec.IdentityName, wirecodec.LZName} {
		b.Run(name, func(b *testing.B) {
			data := benchBlockStream(b.N, name)
			b.SetBytes(int64(len("some-moderate-key") + len("some-moderate-value-payload")))
			b.ReportAllocs()
			b.ResetTimer()
			r, err := NewBlockReader(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			defer r.Release()
			for i := 0; i < b.N; i++ {
				if _, err := r.ReadShared(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchColumnarStream builds a columnar stream of n records over a
// repetitive key set — the shuffle shape the column split targets.
func benchColumnarStream(n int, codecName string, keyEnc int) []byte {
	c, ok := wirecodec.Lookup(codecName)
	if !ok {
		panic("unknown codec " + codecName)
	}
	var buf bytes.Buffer
	w := NewBlockWriterEnc(&buf, c, 0, BlockEncoding{Columnar: true, KeyEnc: keyEnc})
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = "some-moderate-key-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	for i := 0; i < n; i++ {
		p := StrPair(keys[i%len(keys)], "some-moderate-value-payload")
		if err := w.Write(p); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// BenchmarkBlockColumnarScan measures the columnar decode hot path:
// NextAny plus a key/value visit of every record. Per-block work
// amortizes across the block's records, so allocs/op must hold at 0.
func BenchmarkBlockColumnarScan(b *testing.B) {
	for _, mk := range []struct {
		codec  string
		keyEnc int
		name   string
	}{
		{wirecodec.IdentityName, KeyEncRaw, "identity/raw"},
		{wirecodec.IdentityName, KeyEncDict, "identity/dict"},
		{wirecodec.IdentityName, KeyEncDelta, "identity/delta"},
		{wirecodec.LZName, KeyEncDict, "lz/dict"},
	} {
		b.Run(mk.name, func(b *testing.B) {
			data := benchColumnarStream(b.N, mk.codec, mk.keyEnc)
			b.SetBytes(int64(len("some-moderate-key-xx") + len("some-moderate-value-payload")))
			b.ReportAllocs()
			b.ResetTimer()
			r, err := NewBlockReader(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			defer r.Release()
			seen := 0
			var sink int
			for seen < b.N {
				_, cb, recs, err := r.NextAny()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < cb.Len(); i++ {
					sink += len(cb.Key(i)) + len(cb.Value(i))
				}
				seen += recs
			}
			if sink == 0 && b.N > 0 {
				b.Fatal("scan visited nothing")
			}
		})
	}
}

// BenchmarkBlockNextBlock measures the zero-copy batch path: decode a
// block and scan records in place, no per-record copies.
func BenchmarkBlockNextBlock(b *testing.B) {
	for _, name := range []string{wirecodec.IdentityName, wirecodec.LZName} {
		b.Run(name, func(b *testing.B) {
			data := benchBlockStream(b.N, name)
			b.SetBytes(int64(len("some-moderate-key") + len("some-moderate-value-payload")))
			b.ReportAllocs()
			b.ResetTimer()
			r, err := NewBlockReader(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			defer r.Release()
			seen := 0
			for seen < b.N {
				blk, recs, err := r.NextBlock()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ScanRecords(blk, func(k, v []byte) error { return nil }); err != nil {
					b.Fatal(err)
				}
				seen += recs
			}
		})
	}
}
