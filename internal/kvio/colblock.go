package kvio

// Columnar block framing: the second block kind carried inside a
// BlockMagic stream. A row block stores its records as one interleaved
// legacy-framed run; a columnar block splits them into two independent
// column segments — all keys, then all values — each compressed under
// its own codec and protected by its own CRC:
//
//	uvarint colMarker    block-kind sentinel (> MaxBlockLen, see below)
//	uvarint records      record count
//	uvarint keyEnc       key column encoding (KeyEncRaw/Dict/Delta)
//	colSeg  key column   uvarint rawLen | uvarint nameLen|name |
//	                     uvarint payloadLen | crc32 (4 bytes LE)
//	colSeg  value column same shape
//	key payload          keyEnc-encoded keys, codec-compressed
//	value payload        uvarint valueLen|value per record, compressed
//
// The sentinel is MaxBlockLen+1: row-only readers bounds-check the
// first header uvarint against MaxBlockLen, so a columnar block fails
// them deterministically instead of being misparsed, while upgraded
// readers recognize the exact value and switch layouts. Both kinds can
// interleave freely in one stream (a transcode can append row blocks to
// a columnar file), and the stream keeps the same magic and at-rest
// sniffing as before.
//
// The key column supports three encodings:
//
//	raw   uvarint keyLen|key per record
//	dict  uvarint dictN | dictN × (uvarint len|bytes) |
//	      records × uvarint index — entries in first-appearance order
//	delta uvarint sharedPrefixLen | uvarint suffixLen | suffix per
//	      record (front coding against the previous key)
//
// dict is the shuffle workhorse: scientific workloads emit few distinct
// keys, and a dict block lets the sorter group records by dictionary
// slot — one key comparison per distinct key per block instead of one
// per record.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/wirecodec"
)

// colMarker is the block-kind sentinel: the first header uvarint of a
// columnar block. It exceeds MaxBlockLen so pre-columnar block readers
// reject it as a corrupt length rather than misreading the layout.
const colMarker = MaxBlockLen + 1

// Key column encodings, as stored in the columnar block header.
const (
	KeyEncAuto  = -1 // writer-side only: pick per block, never stored
	KeyEncRaw   = 0
	KeyEncDict  = 1
	KeyEncDelta = 2
)

// Block encoding names accepted by ParseBlockEncoding and carried in
// per-op overrides and flags.
const (
	EncRow           = "row"
	EncColumnar      = "columnar" // auto key encoding per block
	EncColumnarRaw   = "columnar-raw"
	EncColumnarDict  = "columnar-dict"
	EncColumnarDelta = "columnar-delta"
)

// BlockEncoding selects which block kind a BlockWriter emits and, for
// columnar blocks, how the key column is encoded. The zero value is row
// framing.
type BlockEncoding struct {
	Columnar bool
	KeyEnc   int // KeyEncAuto/Raw/Dict/Delta; meaningful when Columnar
}

// ParseBlockEncoding maps a wire/flag name to a BlockEncoding. The
// empty string and "row" select row framing; "columnar" selects
// columnar blocks with a per-block automatic key encoding; the
// "columnar-raw/-dict/-delta" forms pin the key encoding.
func ParseBlockEncoding(name string) (BlockEncoding, error) {
	switch name {
	case "", EncRow:
		return BlockEncoding{}, nil
	case EncColumnar:
		return BlockEncoding{Columnar: true, KeyEnc: KeyEncAuto}, nil
	case EncColumnarRaw:
		return BlockEncoding{Columnar: true, KeyEnc: KeyEncRaw}, nil
	case EncColumnarDict:
		return BlockEncoding{Columnar: true, KeyEnc: KeyEncDict}, nil
	case EncColumnarDelta:
		return BlockEncoding{Columnar: true, KeyEnc: KeyEncDelta}, nil
	}
	return BlockEncoding{}, fmt.Errorf("kvio: unknown block encoding %q (have %s, %s, %s, %s, %s)",
		name, EncRow, EncColumnar, EncColumnarRaw, EncColumnarDict, EncColumnarDelta)
}

// String renders the encoding in ParseBlockEncoding's vocabulary.
func (e BlockEncoding) String() string {
	if !e.Columnar {
		return EncRow
	}
	switch e.KeyEnc {
	case KeyEncRaw:
		return EncColumnarRaw
	case KeyEncDict:
		return EncColumnarDict
	case KeyEncDelta:
		return EncColumnarDelta
	}
	return EncColumnar
}

// ---------------------------------------------------------------------------
// Decoded columnar blocks

// ColumnarBlock is one decoded columnar block. Keys and values are
// views into buffers owned by the block (ownership transfers to the
// consumer with the block, per BlockReader.NextAny), so the shuffle
// sorter can adopt a block and alias records out of it without copies.
// Value bytes are never parsed beyond their length prefixes: the value
// column is walked once for offsets at decode time and the payload
// bytes themselves move only when a group is emitted or spilled.
type ColumnarBlock struct {
	keyEnc  int
	keys    [][]byte // per-record key views (raw, delta)
	dict    [][]byte // dict: entries in first-appearance order
	idx     []uint32 // dict: per-record entry index
	vals    [][]byte // per-record value views
	payload int64    // summed key+value bytes (no framing)
}

// Len returns the record count.
func (cb *ColumnarBlock) Len() int { return len(cb.vals) }

// KeyEncoding returns the block's key column encoding.
func (cb *ColumnarBlock) KeyEncoding() int { return cb.keyEnc }

// Key returns record i's key (a view into block-owned memory).
func (cb *ColumnarBlock) Key(i int) []byte {
	if cb.dict != nil {
		return cb.dict[cb.idx[i]]
	}
	return cb.keys[i]
}

// Value returns record i's value (a view into block-owned memory).
func (cb *ColumnarBlock) Value(i int) []byte { return cb.vals[i] }

// PayloadBytes returns the summed key+value payload bytes, the figure
// input accounting charges for the block.
func (cb *ColumnarBlock) PayloadBytes() int64 { return cb.payload }

// DictLen returns the dictionary size for a dict-encoded block and -1
// for any other key encoding. A non-negative result enables the
// sorter's group-per-dictionary-slot fast path.
func (cb *ColumnarBlock) DictLen() int {
	if cb.dict == nil {
		return -1
	}
	return len(cb.dict)
}

// DictKey returns dictionary entry j of a dict-encoded block.
func (cb *ColumnarBlock) DictKey(j int) []byte { return cb.dict[j] }

// DictIndex returns record i's dictionary slot in a dict-encoded block.
func (cb *ColumnarBlock) DictIndex(i int) int { return int(cb.idx[i]) }

// AppendRows re-frames the block's records in the legacy interleaved
// form (uvarint keyLen|key|uvarint valueLen|value) onto dst — the
// flatten path that serves row-only consumers and pre-block peers.
func (cb *ColumnarBlock) AppendRows(dst []byte) []byte {
	for i := range cb.vals {
		key, value := cb.Key(i), cb.vals[i]
		dst = binary.AppendUvarint(dst, uint64(len(key)))
		dst = append(dst, key...)
		dst = binary.AppendUvarint(dst, uint64(len(value)))
		dst = append(dst, value...)
	}
	return dst
}

// decodeColumnar builds a ColumnarBlock from the decompressed column
// payloads. keyRaw and valRaw ownership transfers to the block; raw and
// dict key views alias keyRaw directly, so only delta encoding copies
// key bytes (front coding must materialize each full key once).
func decodeColumnar(recs, keyEnc int, keyRaw, valRaw []byte) (*ColumnarBlock, error) {
	cb := &ColumnarBlock{keyEnc: keyEnc}

	// Value column: one varint walk to record the views; value bytes are
	// not touched.
	cb.vals = make([][]byte, recs)
	data := valRaw
	for i := range cb.vals {
		vlen, n := binary.Uvarint(data)
		if n <= 0 || vlen > MaxRecordLen || uint64(len(data)-n) < vlen {
			return nil, fmt.Errorf("%w: value column truncated at record %d", ErrBlockCorrupt, i)
		}
		cb.vals[i] = data[n : n+int(vlen)]
		cb.payload += int64(vlen)
		data = data[n+int(vlen):]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d bytes beyond last value", ErrBlockCorrupt, len(data))
	}

	switch keyEnc {
	case KeyEncRaw:
		cb.keys = make([][]byte, recs)
		data = keyRaw
		for i := range cb.keys {
			klen, n := binary.Uvarint(data)
			if n <= 0 || klen > MaxRecordLen || uint64(len(data)-n) < klen {
				return nil, fmt.Errorf("%w: key column truncated at record %d", ErrBlockCorrupt, i)
			}
			cb.keys[i] = data[n : n+int(klen)]
			cb.payload += int64(klen)
			data = data[n+int(klen):]
		}
		if len(data) != 0 {
			return nil, fmt.Errorf("%w: %d bytes beyond last key", ErrBlockCorrupt, len(data))
		}
	case KeyEncDict:
		data = keyRaw
		dictN, n := binary.Uvarint(data)
		if n <= 0 || dictN > uint64(MaxBlockLen) {
			return nil, fmt.Errorf("%w: bad dictionary size", ErrBlockCorrupt)
		}
		data = data[n:]
		cb.dict = make([][]byte, dictN)
		for j := range cb.dict {
			klen, n := binary.Uvarint(data)
			if n <= 0 || klen > MaxRecordLen || uint64(len(data)-n) < klen {
				return nil, fmt.Errorf("%w: dictionary truncated at entry %d", ErrBlockCorrupt, j)
			}
			cb.dict[j] = data[n : n+int(klen)]
			data = data[n+int(klen):]
		}
		cb.idx = make([]uint32, recs)
		for i := range cb.idx {
			ix, n := binary.Uvarint(data)
			if n <= 0 || ix >= dictN {
				return nil, fmt.Errorf("%w: bad dictionary index at record %d", ErrBlockCorrupt, i)
			}
			cb.idx[i] = uint32(ix)
			cb.payload += int64(len(cb.dict[ix]))
			data = data[n:]
		}
		if len(data) != 0 {
			return nil, fmt.Errorf("%w: %d bytes beyond last index", ErrBlockCorrupt, len(data))
		}
	case KeyEncDelta:
		// Front coding can only be decoded forward, and the decoded size
		// is not in the header: size it with a first pass so the key
		// buffer is a single exact allocation (appends mid-decode would
		// strand earlier views in stale arrays).
		total := uint64(0)
		data = keyRaw
		for i := 0; i < recs; i++ {
			shared, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, fmt.Errorf("%w: key column truncated at record %d", ErrBlockCorrupt, i)
			}
			data = data[n:]
			suffix, n := binary.Uvarint(data)
			if n <= 0 || uint64(len(data)-n) < suffix {
				return nil, fmt.Errorf("%w: key column truncated at record %d", ErrBlockCorrupt, i)
			}
			data = data[n+int(suffix):]
			total += shared + suffix
			if shared+suffix > MaxRecordLen || total > uint64(MaxBlockLen) {
				return nil, fmt.Errorf("%w: delta keys decode beyond bounds", ErrBlockCorrupt)
			}
		}
		if len(data) != 0 {
			return nil, fmt.Errorf("%w: %d bytes beyond last key", ErrBlockCorrupt, len(data))
		}
		buf := make([]byte, 0, total)
		cb.keys = make([][]byte, recs)
		var prev []byte
		data = keyRaw
		for i := range cb.keys {
			shared, n := binary.Uvarint(data)
			data = data[n:]
			suffix, n := binary.Uvarint(data)
			data = data[n:]
			if shared > uint64(len(prev)) {
				return nil, fmt.Errorf("%w: delta prefix %d exceeds previous key at record %d", ErrBlockCorrupt, shared, i)
			}
			start := len(buf)
			buf = append(buf, prev[:shared]...)
			buf = append(buf, data[:suffix]...)
			data = data[suffix:]
			prev = buf[start:len(buf):len(buf)]
			cb.keys[i] = prev
			cb.payload += int64(len(prev))
		}
	default:
		return nil, fmt.Errorf("%w: unknown key encoding %d", ErrBlockCorrupt, keyEnc)
	}
	return cb, nil
}

// ---------------------------------------------------------------------------
// Key column encoding (writer side)

// chooseKeyEnc picks the cheapest key encoding for one block's keys:
// dict when the distinct-key count is at most half the records and the
// table pays for itself, delta when front coding saves at least 1/16 of
// the raw column, raw otherwise. Deterministic in the key sequence, so
// re-executed task attempts emit identical bytes.
func chooseKeyEnc(keys [][]byte, seen map[string]uint32) int {
	rawBytes := 0
	for _, k := range keys {
		rawBytes += uvarintLen(uint64(len(k))) + len(k)
	}
	clear(seen)
	dictBytes := 0
	for _, k := range keys {
		if _, ok := seen[string(k)]; !ok {
			seen[string(k)] = uint32(len(seen))
			dictBytes += uvarintLen(uint64(len(k))) + len(k)
		}
	}
	if 2*len(seen) <= len(keys) && dictBytes+len(keys) < rawBytes {
		return KeyEncDict
	}
	deltaBytes := 0
	var prev []byte
	for _, k := range keys {
		shared := commonPrefix(prev, k)
		deltaBytes += uvarintLen(uint64(shared)) + uvarintLen(uint64(len(k)-shared)) + len(k) - shared
		prev = k
	}
	if 16*deltaBytes <= 15*rawBytes {
		return KeyEncDelta
	}
	return KeyEncRaw
}

// encodeKeyColumn appends the keyEnc encoding of keys to dst. seen is
// the writer's reusable dictionary scratch (dict encoding only).
func encodeKeyColumn(dst []byte, keyEnc int, keys [][]byte, seen map[string]uint32) []byte {
	switch keyEnc {
	case KeyEncDict:
		clear(seen)
		order := make([][]byte, 0, 16)
		for _, k := range keys {
			if _, ok := seen[string(k)]; !ok {
				seen[string(k)] = uint32(len(seen))
				order = append(order, k)
			}
		}
		dst = binary.AppendUvarint(dst, uint64(len(order)))
		for _, k := range order {
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = append(dst, k...)
		}
		for _, k := range keys {
			dst = binary.AppendUvarint(dst, uint64(seen[string(k)]))
		}
	case KeyEncDelta:
		var prev []byte
		for _, k := range keys {
			shared := commonPrefix(prev, k)
			dst = binary.AppendUvarint(dst, uint64(shared))
			dst = binary.AppendUvarint(dst, uint64(len(k)-shared))
			dst = append(dst, k[shared:]...)
			prev = k
		}
	default: // KeyEncRaw
		for _, k := range keys {
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = append(dst, k...)
		}
	}
	return dst
}

// commonPrefix returns the length of the longest common prefix of a
// and b.
func commonPrefix(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// uvarintLen returns the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// ---------------------------------------------------------------------------
// Columnar emit (BlockWriter)

// emitColumnar writes one columnar block from a pending legacy-framed
// record run: the run is split into a key list and a value column, the
// key column is encoded per the writer's (or the per-block automatic)
// key encoding, and each column is compressed and checksummed
// independently.
func (w *BlockWriter) emitColumnar(raw []byte, recs int) error {
	if err := w.writeMagic(); err != nil {
		return err
	}
	if recs == 0 {
		return nil
	}
	keys := w.colKeys[:0]
	val := w.colVal[:0]
	for data := raw; len(data) > 0; {
		key, value, used, err := scanOne(data)
		if err != nil {
			return err
		}
		keys = append(keys, key)
		val = binary.AppendUvarint(val, uint64(len(value)))
		val = append(val, value...)
		data = data[used:]
	}
	w.colKeys, w.colVal = keys, val
	if w.colSeen == nil {
		w.colSeen = make(map[string]uint32)
	}
	keyEnc := w.enc.KeyEnc
	if keyEnc == KeyEncAuto {
		keyEnc = chooseKeyEnc(keys, w.colSeen)
	}
	w.colKey = encodeKeyColumn(w.colKey[:0], keyEnc, keys, w.colSeen)
	return w.emitColumns(recs, keyEnc, w.colKey, val)
}

// compressColumn returns the stored form of one raw column under the
// writer's codec, falling back to identity when compression does not
// shrink it — each column carries its own codec name, so the choice is
// per column per block.
func (w *BlockWriter) compressColumn(raw []byte, scratch *bytes.Buffer) ([]byte, string, error) {
	name := w.codec.Name()
	if name == wirecodec.IdentityName {
		return raw, wirecodec.IdentityName, nil
	}
	scratch.Reset()
	cw := w.codec.NewWriter(scratch)
	if _, err := cw.Write(raw); err != nil {
		cw.Close()
		return nil, "", err
	}
	if err := cw.Close(); err != nil {
		return nil, "", err
	}
	if scratch.Len() >= len(raw) {
		return raw, wirecodec.IdentityName, nil
	}
	return scratch.Bytes(), name, nil
}

// emitColumns writes one columnar block from already-encoded raw
// columns; the shared tail of emitColumnar and WriteColumnarRaw.
func (w *BlockWriter) emitColumns(recs, keyEnc int, keyCol, valCol []byte) error {
	if err := w.writeMagic(); err != nil {
		return err
	}
	if recs == 0 {
		return nil
	}
	keyPayload, keyName, err := w.compressColumn(keyCol, &w.comp)
	if err != nil {
		return err
	}
	valPayload, valName, err := w.compressColumn(valCol, &w.compCol)
	if err != nil {
		return err
	}
	var hdr [9*binary.MaxVarintLen64 + 2*64 + 8]byte
	n := binary.PutUvarint(hdr[:], uint64(colMarker))
	n += binary.PutUvarint(hdr[n:], uint64(recs))
	n += binary.PutUvarint(hdr[n:], uint64(keyEnc))
	seg := func(rawLen int, name string, payload []byte) {
		n += binary.PutUvarint(hdr[n:], uint64(rawLen))
		n += binary.PutUvarint(hdr[n:], uint64(len(name)))
		n += copy(hdr[n:], name)
		n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
		binary.LittleEndian.PutUint32(hdr[n:], crc32.ChecksumIEEE(payload))
		n += 4
	}
	seg(len(keyCol), keyName, keyPayload)
	seg(len(valCol), valName, valPayload)
	if _, err := w.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(keyPayload); err != nil {
		return err
	}
	if _, err := w.w.Write(valPayload); err != nil {
		return err
	}
	w.colBlocks++
	return nil
}

// WriteColumnarRaw emits one columnar block from its raw (decompressed
// but still key-encoded) column bytes, flushing pending per-record
// writes first. This is the columnar transcoding path: re-compressing a
// block under a different codec moves whole columns and never re-parses
// records or re-derives the key encoding.
func (w *BlockWriter) WriteColumnarRaw(recs, keyEnc int, keyCol, valCol []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.err = w.emitBlock(); w.err != nil {
		return w.err
	}
	if w.err = w.emitColumns(recs, keyEnc, keyCol, valCol); w.err != nil {
		return w.err
	}
	w.n += int64(recs)
	w.bytes += int64(len(keyCol) + len(valCol)) // includes column framing; close enough for accounting
	return nil
}

// ColumnarBlocks returns how many columnar blocks the writer emitted,
// feeding the mrs_shuffle_blocks_columnar_total counter.
func (w *BlockWriter) ColumnarBlocks() int64 { return w.colBlocks }
