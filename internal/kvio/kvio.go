// Package kvio defines the key-value pair type and the length-prefixed
// binary record-stream format used for all intermediate data in mrs-go.
//
// The format of a record stream is a sequence of records:
//
//	uvarint keyLen | keyLen bytes | uvarint valueLen | valueLen bytes
//
// terminated by EOF. The format is self-delimiting, streamable, and
// independent of the key/value codecs (which live in internal/codec).
package kvio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// MaxRecordLen bounds a single key or value, protecting readers from
// corrupted or adversarial streams.
const MaxRecordLen = 1 << 30

// ErrRecordTooLarge is returned when a stream declares a key or value
// larger than MaxRecordLen.
var ErrRecordTooLarge = errors.New("kvio: record exceeds MaxRecordLen")

// ErrReleased is returned by operations on a released Reader or Writer.
var ErrReleased = errors.New("kvio: use after Release")

// ErrBlockStream is returned by the pre-block per-record Reader when
// the stream opens with the block-framing magic: the data (row or
// columnar blocks alike) needs at least kvio.NewBlockReader — or
// kvio.NewAnyReader, which sniffs the framing — not this Reader.
var ErrBlockStream = errors.New("kvio: stream is block-framed; minimum reader: kvio.NewBlockReader (or kvio.NewAnyReader)")

// blockMagicLen is the uvarint the first bytes of BlockMagic decode to.
// A legacy Reader that sees it at a record boundary is pointed at a
// block stream, and the byte after it is the stream's version tag.
var blockMagicLen = func() uint64 {
	v, _ := binary.Uvarint(BlockMagic[:])
	return v
}()

// bufSize is the bufio buffer size shared by readers and writers. 64 KiB
// amortizes syscall and HTTP-body read costs over many small records.
const bufSize = 64 << 10

// Readers and writers churn through the runtime at one per bucket per
// task, and each carries a 64 KiB bufio buffer; pooling the buffers
// keeps the shuffle's steady-state allocation rate independent of
// bucket count. Release returns a buffer to its pool.
var (
	readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, bufSize) }}
	writerPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, bufSize) }}
)

// Pair is one key-value record. Key and Value are raw encoded bytes.
type Pair struct {
	Key   []byte
	Value []byte
}

// String renders a pair for debugging.
func (p Pair) String() string {
	return fmt.Sprintf("(%q, %q)", p.Key, p.Value)
}

// Clone returns a deep copy of p.
func (p Pair) Clone() Pair {
	return Pair{Key: append([]byte(nil), p.Key...), Value: append([]byte(nil), p.Value...)}
}

// KeyLess reports whether a's key sorts before b's key.
func KeyLess(a, b Pair) bool { return bytes.Compare(a.Key, b.Key) < 0 }

// StrPair builds a Pair from strings; a convenience for text workloads.
func StrPair(key, value string) Pair {
	return Pair{Key: []byte(key), Value: []byte(value)}
}

// ---------------------------------------------------------------------------
// Writer

// Writer serializes pairs to an io.Writer in record-stream format.
type Writer struct {
	w     *bufio.Writer
	n     int64 // records written
	bytes int64 // payload bytes written (keys+values, not framing)
	err   error
}

// NewWriter returns a Writer on w. Its buffer comes from a shared pool;
// call Release (after Flush) when done with the Writer to recycle it.
func NewWriter(w io.Writer) *Writer {
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return &Writer{w: bw}
}

// Release returns the Writer's buffer to the pool. The Writer must not
// be used afterwards; buffered but unflushed records are lost, so call
// Flush first. Safe to call more than once.
func (w *Writer) Release() {
	if w.w == nil {
		return
	}
	w.w.Reset(nil)
	writerPool.Put(w.w)
	w.w = nil
	if w.err == nil {
		w.err = ErrReleased
	}
}

// Write appends one record.
func (w *Writer) Write(p Pair) error {
	if w.err != nil {
		return w.err
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(p.Key)))
	if _, err := w.w.Write(hdr[:n]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(p.Key); err != nil {
		w.err = err
		return err
	}
	n = binary.PutUvarint(hdr[:], uint64(len(p.Value)))
	if _, err := w.w.Write(hdr[:n]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(p.Value); err != nil {
		w.err = err
		return err
	}
	w.n++
	w.bytes += int64(len(p.Key) + len(p.Value))
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// Count returns the number of records written so far.
func (w *Writer) Count() int64 { return w.n }

// Bytes returns the payload bytes written so far.
func (w *Writer) Bytes() int64 { return w.bytes }

// ---------------------------------------------------------------------------
// Reader

// Reader parses a record stream. Read returns io.EOF at a clean end of
// stream and io.ErrUnexpectedEOF if the stream ends mid-record.
type Reader struct {
	r      *bufio.Reader
	n      int64
	err    error
	shared []byte // ReadShared's reused record buffer
}

// NewReader returns a Reader on r. Its buffer comes from a shared pool;
// call Release when done with the Reader to recycle it.
func NewReader(r io.Reader) *Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return &Reader{r: br}
}

// Release returns the Reader's buffer to the pool. The Reader must not
// be used afterwards. Safe to call more than once.
func (r *Reader) Release() {
	if r.r == nil {
		return
	}
	r.r.Reset(nil)
	readerPool.Put(r.r)
	r.r = nil
	r.shared = nil
	if r.err == nil {
		r.err = ErrReleased
	}
}

// Read returns the next record. The returned slices are freshly
// allocated and safe to retain.
func (r *Reader) Read() (Pair, error) {
	if r.err != nil {
		return Pair{}, r.err
	}
	key, err := r.readChunk(true)
	if err != nil {
		r.err = err
		return Pair{}, err
	}
	value, err := r.readChunk(false)
	if err != nil {
		r.err = err
		return Pair{}, err
	}
	r.n++
	return Pair{Key: key, Value: value}, nil
}

// ReadShared returns the next record using an internal buffer that is
// reused across calls: the returned slices are valid only until the
// next Read/ReadShared call. Steady-state it allocates nothing, which
// makes it the right call for consumers that copy or immediately
// serialize what they read (the sorter, bucket writers).
func (r *Reader) ReadShared() (Pair, error) {
	if r.err != nil {
		return Pair{}, r.err
	}
	klen, err := r.readLen(true)
	if err != nil {
		r.err = err
		return Pair{}, err
	}
	if cap(r.shared) < klen {
		r.shared = make([]byte, 0, max(klen, 1<<10))
	}
	key := r.shared[:klen]
	if err := r.fill(key); err != nil {
		r.err = err
		return Pair{}, err
	}
	vlen, err := r.readLen(false)
	if err != nil {
		r.err = err
		return Pair{}, err
	}
	if cap(r.shared) < klen+vlen {
		grown := make([]byte, 0, max(klen+vlen, 2*cap(r.shared)))
		grown = append(grown, key...)
		r.shared = grown[:cap(grown)]
		key = r.shared[:klen]
	}
	value := r.shared[klen : klen+vlen]
	if err := r.fill(value); err != nil {
		r.err = err
		return Pair{}, err
	}
	r.n++
	return Pair{Key: key, Value: value}, nil
}

// readChunk reads one uvarint-prefixed chunk into a fresh allocation.
// atRecordStart selects whether EOF is clean (between records) or
// unexpected (mid-record).
func (r *Reader) readChunk(atRecordStart bool) ([]byte, error) {
	size, err := r.readLen(atRecordStart)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if err := r.fill(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// readLen reads one uvarint length prefix and bounds-checks it.
func (r *Reader) readLen(atRecordStart bool) (int, error) {
	size, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF && !atRecordStart {
			return 0, io.ErrUnexpectedEOF
		}
		return 0, err
	}
	if size > MaxRecordLen {
		if atRecordStart && size == blockMagicLen {
			// The "record" is the block-framing magic: fail with the
			// version and the minimum reader instead of a size complaint.
			if ver, verr := r.r.ReadByte(); verr == nil {
				return 0, fmt.Errorf("%w (stream version 0x%02x)", ErrBlockStream, ver)
			}
			return 0, ErrBlockStream
		}
		return 0, ErrRecordTooLarge
	}
	return int(size), nil
}

// fill reads exactly len(buf) bytes, mapping a short read to
// io.ErrUnexpectedEOF (the stream ended mid-record).
func (r *Reader) fill(buf []byte) error {
	if _, err := io.ReadFull(r.r, buf); err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// Count returns the number of records read so far.
func (r *Reader) Count() int64 { return r.n }

// ReadAll drains the stream into a slice.
func (r *Reader) ReadAll() ([]Pair, error) {
	var out []Pair
	for {
		p, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

// ---------------------------------------------------------------------------
// In-memory helpers

// Marshal encodes pairs into a single record-stream buffer.
func Marshal(pairs []Pair) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			// bytes.Buffer writes cannot fail.
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	w.Release()
	return buf.Bytes()
}

// Unmarshal decodes a record-stream buffer produced by Marshal.
func Unmarshal(data []byte) ([]Pair, error) {
	r := NewReader(bytes.NewReader(data))
	defer r.Release()
	return r.ReadAll()
}

// ---------------------------------------------------------------------------
// Emitters and sinks

// Emitter receives the output records of a map or reduce call.
type Emitter interface {
	Emit(key, value []byte) error
}

// SliceEmitter accumulates emitted pairs in memory.
type SliceEmitter struct {
	Pairs []Pair
}

// Emit appends a deep copy of (key, value).
func (e *SliceEmitter) Emit(key, value []byte) error {
	e.Pairs = append(e.Pairs, Pair{
		Key:   append([]byte(nil), key...),
		Value: append([]byte(nil), value...),
	})
	return nil
}

// FuncEmitter adapts a function to the Emitter interface.
type FuncEmitter func(key, value []byte) error

// Emit calls the wrapped function.
func (f FuncEmitter) Emit(key, value []byte) error { return f(key, value) }

// CountingEmitter forwards to Next and counts records and bytes;
// used for progress accounting and bench instrumentation.
type CountingEmitter struct {
	Next    Emitter
	Records int64
	Bytes   int64
}

// Emit forwards one record and updates counters.
func (c *CountingEmitter) Emit(key, value []byte) error {
	c.Records++
	c.Bytes += int64(len(key) + len(value))
	if c.Next == nil {
		return nil
	}
	return c.Next.Emit(key, value)
}
