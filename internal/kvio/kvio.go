// Package kvio defines the key-value pair type and the length-prefixed
// binary record-stream format used for all intermediate data in mrs-go.
//
// The format of a record stream is a sequence of records:
//
//	uvarint keyLen | keyLen bytes | uvarint valueLen | valueLen bytes
//
// terminated by EOF. The format is self-delimiting, streamable, and
// independent of the key/value codecs (which live in internal/codec).
package kvio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxRecordLen bounds a single key or value, protecting readers from
// corrupted or adversarial streams.
const MaxRecordLen = 1 << 30

// ErrRecordTooLarge is returned when a stream declares a key or value
// larger than MaxRecordLen.
var ErrRecordTooLarge = errors.New("kvio: record exceeds MaxRecordLen")

// Pair is one key-value record. Key and Value are raw encoded bytes.
type Pair struct {
	Key   []byte
	Value []byte
}

// String renders a pair for debugging.
func (p Pair) String() string {
	return fmt.Sprintf("(%q, %q)", p.Key, p.Value)
}

// Clone returns a deep copy of p.
func (p Pair) Clone() Pair {
	return Pair{Key: append([]byte(nil), p.Key...), Value: append([]byte(nil), p.Value...)}
}

// KeyLess reports whether a's key sorts before b's key.
func KeyLess(a, b Pair) bool { return bytes.Compare(a.Key, b.Key) < 0 }

// StrPair builds a Pair from strings; a convenience for text workloads.
func StrPair(key, value string) Pair {
	return Pair{Key: []byte(key), Value: []byte(value)}
}

// ---------------------------------------------------------------------------
// Writer

// Writer serializes pairs to an io.Writer in record-stream format.
type Writer struct {
	w     *bufio.Writer
	n     int64 // records written
	bytes int64 // payload bytes written (keys+values, not framing)
	err   error
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10)}
}

// Write appends one record.
func (w *Writer) Write(p Pair) error {
	if w.err != nil {
		return w.err
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(p.Key)))
	if _, err := w.w.Write(hdr[:n]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(p.Key); err != nil {
		w.err = err
		return err
	}
	n = binary.PutUvarint(hdr[:], uint64(len(p.Value)))
	if _, err := w.w.Write(hdr[:n]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(p.Value); err != nil {
		w.err = err
		return err
	}
	w.n++
	w.bytes += int64(len(p.Key) + len(p.Value))
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// Count returns the number of records written so far.
func (w *Writer) Count() int64 { return w.n }

// Bytes returns the payload bytes written so far.
func (w *Writer) Bytes() int64 { return w.bytes }

// ---------------------------------------------------------------------------
// Reader

// Reader parses a record stream. Read returns io.EOF at a clean end of
// stream and io.ErrUnexpectedEOF if the stream ends mid-record.
type Reader struct {
	r   *bufio.Reader
	n   int64
	err error
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Read returns the next record. The returned slices are freshly
// allocated and safe to retain.
func (r *Reader) Read() (Pair, error) {
	if r.err != nil {
		return Pair{}, r.err
	}
	key, err := r.readChunk(true)
	if err != nil {
		r.err = err
		return Pair{}, err
	}
	value, err := r.readChunk(false)
	if err != nil {
		r.err = err
		return Pair{}, err
	}
	r.n++
	return Pair{Key: key, Value: value}, nil
}

// readChunk reads one uvarint-prefixed chunk. atRecordStart selects
// whether EOF is clean (between records) or unexpected (mid-record).
func (r *Reader) readChunk(atRecordStart bool) ([]byte, error) {
	size, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF && !atRecordStart {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if size > MaxRecordLen {
		return nil, ErrRecordTooLarge
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// Count returns the number of records read so far.
func (r *Reader) Count() int64 { return r.n }

// ReadAll drains the stream into a slice.
func (r *Reader) ReadAll() ([]Pair, error) {
	var out []Pair
	for {
		p, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

// ---------------------------------------------------------------------------
// In-memory helpers

// Marshal encodes pairs into a single record-stream buffer.
func Marshal(pairs []Pair) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, p := range pairs {
		if err := w.Write(p); err != nil {
			// bytes.Buffer writes cannot fail.
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// Unmarshal decodes a record-stream buffer produced by Marshal.
func Unmarshal(data []byte) ([]Pair, error) {
	return NewReader(bytes.NewReader(data)).ReadAll()
}

// ---------------------------------------------------------------------------
// Emitters and sinks

// Emitter receives the output records of a map or reduce call.
type Emitter interface {
	Emit(key, value []byte) error
}

// SliceEmitter accumulates emitted pairs in memory.
type SliceEmitter struct {
	Pairs []Pair
}

// Emit appends a deep copy of (key, value).
func (e *SliceEmitter) Emit(key, value []byte) error {
	e.Pairs = append(e.Pairs, Pair{
		Key:   append([]byte(nil), key...),
		Value: append([]byte(nil), value...),
	})
	return nil
}

// FuncEmitter adapts a function to the Emitter interface.
type FuncEmitter func(key, value []byte) error

// Emit calls the wrapped function.
func (f FuncEmitter) Emit(key, value []byte) error { return f(key, value) }

// CountingEmitter forwards to Next and counts records and bytes;
// used for progress accounting and bench instrumentation.
type CountingEmitter struct {
	Next    Emitter
	Records int64
	Bytes   int64
}

// Emit forwards one record and updates counters.
func (c *CountingEmitter) Emit(key, value []byte) error {
	c.Records++
	c.Bytes += int64(len(key) + len(value))
	if c.Next == nil {
		return nil
	}
	return c.Next.Emit(key, value)
}
