package wirecodec

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, c Codec, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := c.NewWriter(&buf)
	// Write in uneven slices to exercise frame boundaries.
	for off := 0; off < len(data); {
		n := min(1+off%4093, len(data)-off)
		if _, err := w.Write(data[off : off+n]); err != nil {
			t.Fatalf("%s write: %v", c.Name(), err)
		}
		off += n
	}
	if err := w.Close(); err != nil {
		t.Fatalf("%s close: %v", c.Name(), err)
	}
	r := c.NewReader(bytes.NewReader(buf.Bytes()))
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("%s read: %v", c.Name(), err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("%s reader close: %v", c.Name(), err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("%s round trip mismatch: %d bytes in, %d out", c.Name(), len(data), len(got))
	}
	return buf.Bytes()
}

// corpusCases cover empty, tiny, highly repetitive, overlapping-copy
// (RLE), multi-frame, and incompressible inputs.
func corpusCases() map[string][]byte {
	rng := rand.New(rand.NewSource(7))
	random := make([]byte, 3*lzFrameRaw+17)
	rng.Read(random)
	return map[string][]byte{
		"empty":          nil,
		"one":            []byte("x"),
		"short":          []byte("hello, world"),
		"rle":            bytes.Repeat([]byte{0xAB}, 100_000),
		"repetitive":     []byte(strings.Repeat("the quick brown fox jumps over the lazy dog ", 5000)),
		"incompressible": random,
		"frame-exact":    bytes.Repeat([]byte("abcdefgh"), lzFrameRaw/8),
	}
}

func TestAllCodecsRoundTrip(t *testing.T) {
	for _, name := range Names() {
		c, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed for a listed name", name)
		}
		for label, data := range corpusCases() {
			t.Run(name+"/"+label, func(t *testing.T) {
				roundTrip(t, c, data)
			})
		}
	}
}

func TestLZCompresses(t *testing.T) {
	c, _ := Lookup(LZName)
	data := []byte(strings.Repeat("repetitive shuffle payload ", 10000))
	wire := roundTrip(t, c, data)
	if len(wire) >= len(data)/2 {
		t.Errorf("lz compressed %d bytes to %d; want at least 2x on repetitive data", len(data), len(wire))
	}
}

func TestLZIncompressibleOverheadBounded(t *testing.T) {
	c, _ := Lookup(LZName)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 2*lzFrameRaw)
	rng.Read(data)
	wire := roundTrip(t, c, data)
	// Stored frames add only the two uvarint headers per 64 KiB.
	if overhead := len(wire) - len(data); overhead > 16 {
		t.Errorf("incompressible overhead %d bytes; want <= 16", overhead)
	}
}

func TestLZCorruptInputErrors(t *testing.T) {
	c, _ := Lookup(LZName)
	var buf bytes.Buffer
	w := c.NewWriter(&buf)
	w.Write([]byte(strings.Repeat("abcd", 1000)))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	// Note: a flipped byte deep inside a literal run is undetectable
	// at this layer by design — LZ frames carry no checksum; integrity
	// is the record-block header's CRC (internal/kvio). These cases are
	// the structural corruptions the decoder itself must reject.
	cases := map[string][]byte{
		"truncated-header":  wire[:1],
		"truncated-body":    wire[:len(wire)-3],
		"huge-rawlen":       {0xFF, 0xFF, 0xFF, 0x7F, 0x00},
		"complen-gt-rawlen": {0x04, 0x7F, 0x00},
		"bad-offset":        {0x04, 0x02, 0x09, 0x05}, // copy back-referencing before start
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			r := c.NewReader(bytes.NewReader(data))
			defer r.Close()
			if _, err := io.ReadAll(r); err == nil {
				t.Error("corrupt stream decoded without error")
			}
		})
	}
}

func TestDeflateReaderPoolRecycles(t *testing.T) {
	c, _ := Lookup(DeflateName)
	data := []byte(strings.Repeat("pooled deflate state ", 500))
	// Sequential uses must be able to share pooled state without
	// corrupting each other; run enough cycles to hit the pool.
	for i := 0; i < 8; i++ {
		roundTrip(t, c, data)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	if err := Register(identityCodec{}); err == nil {
		t.Fatal("re-registering identity succeeded; want already-registered error")
	}
	if err := Register(badName{}); err == nil {
		t.Fatal("registering an empty codec name succeeded")
	}
}

type badName struct{ identityCodec }

func (badName) Name() string { return "" }

func TestNegotiate(t *testing.T) {
	cases := []struct {
		accept string
		want   string
	}{
		{"lz,deflate,identity", LZName},
		{"deflate,identity", DeflateName},
		{"identity", IdentityName},
		{"zstd-from-the-future", IdentityName}, // unknown name → identity
		{"", IdentityName},
		{" deflate ; q=0.5 , lz ", LZName}, // whitespace and q-params tolerated
		{"deflate,zstd9000", DeflateName},  // best mutual among known names
	}
	for _, tc := range cases {
		got := Negotiate(ParseAccept(tc.accept))
		if got.Name() != tc.want {
			t.Errorf("Negotiate(%q) = %s, want %s", tc.accept, got.Name(), tc.want)
		}
	}
}

func TestAcceptHeaderPreferenceOrder(t *testing.T) {
	h := AcceptHeader()
	names := ParseAccept(h)
	if len(names) < 3 {
		t.Fatalf("AcceptHeader %q lists %d codecs; want >= 3", h, len(names))
	}
	if names[len(names)-1] != IdentityName {
		t.Errorf("identity must be the last-resort codec in %q", h)
	}
	if names[0] != LZName {
		t.Errorf("lz should lead the preference order in %q", h)
	}
}

func FuzzLZRoundTrip(f *testing.F) {
	f.Add([]byte("hello"))
	f.Add(bytes.Repeat([]byte("ab"), 5000))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, _ := Lookup(LZName)
		var buf bytes.Buffer
		w := c.NewWriter(&buf)
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r := c.NewReader(bytes.NewReader(buf.Bytes()))
		defer r.Close()
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("lz round trip mismatch")
		}
	})
}

// FuzzLZReader feeds arbitrary bytes to the decoder: it must never
// panic and never return success for data that is not a valid stream it
// itself could have produced.
func FuzzLZReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 0x00, 'h', 'e', 'l', 'l', 'o'})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, _ := Lookup(LZName)
		r := c.NewReader(bytes.NewReader(data))
		defer r.Close()
		io.Copy(io.Discard, r)
	})
}

func BenchmarkCodecCompress(b *testing.B) {
	data := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog ", 2048))
	for _, name := range []string{IdentityName, DeflateName, LZName} {
		c, _ := Lookup(name)
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := c.NewWriter(io.Discard)
				w.Write(data)
				w.Close()
			}
		})
	}
}

func BenchmarkCodecDecompress(b *testing.B) {
	data := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog ", 2048))
	for _, name := range []string{IdentityName, DeflateName, LZName} {
		c, _ := Lookup(name)
		var buf bytes.Buffer
		w := c.NewWriter(&buf)
		w.Write(data)
		w.Close()
		wire := buf.Bytes()
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := c.NewReader(bytes.NewReader(wire))
				io.Copy(io.Discard, r)
				r.Close()
			}
		})
	}
}

func TestAcceptsBlock(t *testing.T) {
	cases := []struct {
		header, kind string
		want         bool
	}{
		{"", BlockKindRow, true},       // pre-columnar peer: row only
		{"", BlockKindColumnar, false}, // absent header never admits columnar
		{AcceptBlocksHeader(), BlockKindRow, true},
		{AcceptBlocksHeader(), BlockKindColumnar, true},
		{"row", BlockKindColumnar, false},
		{" row , columnar ; q=0.9 ", BlockKindColumnar, true},
		{"columnar", BlockKindRow, false},
	}
	for _, tc := range cases {
		if got := AcceptsBlock(tc.header, tc.kind); got != tc.want {
			t.Errorf("AcceptsBlock(%q, %q) = %v, want %v", tc.header, tc.kind, got, tc.want)
		}
	}
}
