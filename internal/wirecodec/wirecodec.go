// Package wirecodec is the registry of streaming compression codecs
// used by the intermediate-data plane. It is the compression analogue
// of internal/codec's key/value serializer registry: every codec has a
// wire name that travels inside record-block headers and in the HTTP
// negotiation headers, so any node can decode data it did not produce
// and mixed-version fleets degrade to identity instead of failing.
//
// Three codecs are always registered:
//
//	identity  no compression; the guaranteed-mutual fallback
//	deflate   DEFLATE at BestSpeed (compress/flate), pooled
//	lz        an LZ77 byte-oriented format (see lz.go): much faster
//	          than deflate at a worse ratio — the right trade for
//	          shuffle data that is written once and read once
//
// Negotiation is Accept-Encoding-shaped: a client advertises the codec
// names it can decode (AcceptHeader), the server picks the best mutual
// one (Negotiate), and names neither side knows resolve to identity, so
// a fleet mixing versions keeps working at the cost of compression.
package wirecodec

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Codec is one streaming compression algorithm. NewWriter/NewReader
// wrap a stream; implementations pool their state, so every writer must
// be Closed and every reader Closed when drained to recycle it.
type Codec interface {
	// Name is the wire identifier carried in block headers and
	// negotiation headers ("identity", "deflate", "lz", ...).
	Name() string
	// Ext is the at-rest file-name suffix for data compressed with this
	// codec ("" for identity, ".fz" for deflate, ".lz" for lz).
	Ext() string
	// NewWriter returns a compressing writer on dst. Close flushes the
	// final block and recycles pooled state; it does not close dst.
	NewWriter(dst io.Writer) io.WriteCloser
	// NewReader returns a decompressing reader on src. Close recycles
	// pooled state; it does not close src.
	NewReader(src io.Reader) io.ReadCloser
}

// AppendOption is implemented by codecs whose compressed frames can be
// concatenated (every built-in codec qualifies); kept as an interface
// hook for future codecs with stream trailers.

// ---------------------------------------------------------------------------
// Identity codec

// IdentityName is the wire name of the no-op codec.
const IdentityName = "identity"

type identityCodec struct{}

func (identityCodec) Name() string { return IdentityName }
func (identityCodec) Ext() string  { return "" }

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

func (identityCodec) NewWriter(dst io.Writer) io.WriteCloser { return nopWriteCloser{dst} }

func (identityCodec) NewReader(src io.Reader) io.ReadCloser { return io.NopCloser(src) }

// Identity returns the registered identity codec.
func Identity() Codec { return identityCodec{} }

// ---------------------------------------------------------------------------
// Registry

var (
	regMu    sync.RWMutex
	registry = map[string]Codec{}
	// prefer is the server-side preference order used by negotiation,
	// best first. Codecs registered by external packages are appended in
	// registration order, after the built-ins and before identity.
	prefer []string
)

func init() {
	// Registration order fixes the negotiation preference: lz first
	// (cheapest CPU per wire byte saved), then deflate, identity last.
	MustRegister(lzCodec{})
	MustRegister(deflateCodec{})
	MustRegister(identityCodec{})
}

// Register adds c to the registry. It fails if the name is already
// taken — two codecs silently shadowing each other would corrupt every
// stream negotiated under the shared name.
func Register(c Codec) error {
	regMu.Lock()
	defer regMu.Unlock()
	name := c.Name()
	if name == "" {
		return fmt.Errorf("wirecodec: empty codec name")
	}
	if _, ok := registry[name]; ok {
		return fmt.Errorf("wirecodec: %q already registered", name)
	}
	registry[name] = c
	// Identity stays the last resort regardless of registration order.
	if name == IdentityName {
		prefer = append(prefer, name)
	} else if n := len(prefer); n > 0 && prefer[n-1] == IdentityName {
		prefer = append(prefer[:n-1], name, IdentityName)
	} else {
		prefer = append(prefer, name)
	}
	return nil
}

// MustRegister is Register but panics on error; for init-time use.
func MustRegister(c Codec) {
	if err := Register(c); err != nil {
		panic(err)
	}
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := registry[name]
	return c, ok
}

// Names returns the sorted list of registered codec names.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Negotiation

// CodecHeader is the response header naming the codec a block-framed
// HTTP body was served with, and RequestHeader is the request header a
// block-capable client uses to advertise the codecs it decodes. These
// are distinct from Accept-/Content-Encoding, which carry the legacy
// whole-stream deflate negotiation for pre-block peers.
const (
	RequestHeader = "X-Mrs-Accept-Codec"
	CodecHeader   = "X-Mrs-Codec"
)

// AcceptHeader renders the client advertisement: every registered codec
// name in preference order, comma separated.
func AcceptHeader() string {
	regMu.RLock()
	defer regMu.RUnlock()
	return strings.Join(prefer, ",")
}

// ParseAccept splits a RequestHeader value into trimmed names. Quality
// parameters (";q=") are tolerated and ignored.
func ParseAccept(header string) []string {
	var out []string
	for _, part := range strings.Split(header, ",") {
		name, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if name != "" {
			out = append(out, name)
		}
	}
	return out
}

// Negotiate picks the best mutual codec: the earliest name in the
// server's preference order that the client also advertised. Names the
// registry does not know are skipped, and a client list with no mutual
// codec resolves to identity — the fallback that keeps mixed-version
// fleets exchanging data.
func Negotiate(accepted []string) Codec {
	set := make(map[string]bool, len(accepted))
	for _, name := range accepted {
		set[name] = true
	}
	regMu.RLock()
	defer regMu.RUnlock()
	for _, name := range prefer {
		if set[name] {
			return registry[name]
		}
	}
	return identityCodec{}
}

// Accepts reports whether name appears in the accepted list.
func Accepts(accepted []string, name string) bool {
	for _, a := range accepted {
		if a == name {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Block-kind negotiation
//
// Orthogonal to the codec axis: a block stream's blocks are either
// row-framed or columnar (see internal/kvio). Columnar frames poison
// pre-columnar block readers, so a client advertises the kinds it can
// decode and a server holding columnar data transcodes down to row
// blocks for peers that never sent the header.

// BlockAcceptHeader is the request header advertising the block kinds
// the client decodes; BlockEncHeader is the response header naming the
// kind actually served. An absent BlockAcceptHeader means the peer
// predates columnar frames and must be served row blocks only.
const (
	BlockAcceptHeader = "X-Mrs-Accept-Block"
	BlockEncHeader    = "X-Mrs-Block-Encoding"
)

// Block kind names carried in the block negotiation headers.
const (
	BlockKindRow      = "row"
	BlockKindColumnar = "columnar"
)

// AcceptBlocksHeader renders the client's block-kind advertisement.
func AcceptBlocksHeader() string {
	return BlockKindRow + "," + BlockKindColumnar
}

// AcceptsBlock reports whether the BlockAcceptHeader value header
// admits the given block kind. The empty header — a pre-columnar peer —
// admits only row blocks.
func AcceptsBlock(header, kind string) bool {
	if header == "" {
		return kind == BlockKindRow
	}
	for _, part := range strings.Split(header, ",") {
		name, _, _ := strings.Cut(part, ";")
		if strings.TrimSpace(name) == kind {
			return true
		}
	}
	return false
}
