package wirecodec

import (
	"compress/flate"
	"io"
	"sync"
)

// DeflateName is the wire name of the DEFLATE codec. It matches the
// HTTP Content-Encoding token so the legacy whole-stream negotiation
// and the block-header codec name agree.
const DeflateName = "deflate"

// DeflateExt marks at-rest data compressed with deflate. This is the
// historical ".fz" bucket suffix, now owned by the codec.
const DeflateExt = ".fz"

// flate writers and readers carry megabyte-scale dictionaries and
// tables whose initialization dwarfs the compression work for typical
// blocks, so both are pooled and Reset between uses.
var (
	flateWriterPool sync.Pool
	flateReaderPool sync.Pool
)

type deflateCodec struct{}

func (deflateCodec) Name() string { return DeflateName }
func (deflateCodec) Ext() string  { return DeflateExt }

// deflateWriter wraps a pooled *flate.Writer; Close flushes the final
// flate block and returns the writer to the pool.
type deflateWriter struct {
	fw *flate.Writer
}

func (w *deflateWriter) Write(p []byte) (int, error) { return w.fw.Write(p) }

func (w *deflateWriter) Close() error {
	if w.fw == nil {
		return nil
	}
	err := w.fw.Close()
	flateWriterPool.Put(w.fw)
	w.fw = nil
	return err
}

func (deflateCodec) NewWriter(dst io.Writer) io.WriteCloser {
	if v := flateWriterPool.Get(); v != nil {
		fw := v.(*flate.Writer)
		fw.Reset(dst)
		return &deflateWriter{fw: fw}
	}
	// BestSpeed: shuffle data is written once and read once; cheap
	// compression that halves the wire beats a better ratio that stalls
	// the producer. The error is impossible for a valid level.
	fw, _ := flate.NewWriter(dst, flate.BestSpeed)
	return &deflateWriter{fw: fw}
}

// deflateReader wraps a pooled flate reader; Close recycles it. The
// pool only ever holds readers proven to implement flate.Resetter — the
// capability is asserted once at pool-fill time, so the take side can
// never panic on a reader that lost the interface (e.g. after a stdlib
// or codec swap); such readers are simply dropped instead of pooled.
type deflateReader struct {
	fr io.ReadCloser
}

func (r *deflateReader) Read(p []byte) (int, error) { return r.fr.Read(p) }

func (r *deflateReader) Close() error {
	if r.fr == nil {
		return nil
	}
	err := r.fr.Close()
	if _, ok := r.fr.(flate.Resetter); ok {
		flateReaderPool.Put(r.fr)
	}
	r.fr = nil
	return err
}

func (deflateCodec) NewReader(src io.Reader) io.ReadCloser {
	if v := flateReaderPool.Get(); v != nil {
		fr := v.(io.ReadCloser)
		// Safe: only Resetters enter the pool (see deflateReader.Close).
		if err := fr.(flate.Resetter).Reset(src, nil); err == nil {
			return &deflateReader{fr: fr}
		}
	}
	return &deflateReader{fr: flate.NewReader(src)}
}
